// Machine-readable benchmark export: `go test -run TestWriteBenchJSON
// -benchjson BENCH_campaign.json .` measures the campaign-engine
// benchmarks via testing.Benchmark and writes their headline numbers as
// JSON. CI uploads the file as an artifact on every push, so the
// engine's performance trajectory is tracked across commits instead of
// living only in scrollback.
package reinforce

import (
	"encoding/json"
	"flag"
	"os"
	"testing"

	"github.com/r2r/reinforce/internal/report"
)

var (
	benchJSON       = flag.String("benchjson", "", "write campaign benchmark results as JSON to this file")
	benchJSONPatch  = flag.String("benchjson-patch", "", "write patch/order-2 benchmark results as JSON to this file")
	benchJSONCorpus = flag.String("benchjson-corpus", "", "write corpus-runner benchmark results as JSON to this file")
	benchJSONPrune  = flag.String("benchjson-prune", "", "write equivalence-pruning benchmark results as JSON to this file")
)

// BenchRecord is one benchmark's machine-readable result. Allocation
// figures come from testing.Benchmark's always-on memory accounting, so
// allocation regressions are tracked alongside throughput.
type BenchRecord struct {
	Name        string             `json:"name"`
	Iters       int                `json:"iterations"`
	NsPerOp     int64              `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// namedBench is one entry of an exported benchmark set.
type namedBench struct {
	name string
	fn   func(*testing.B)
}

// writeBenchJSON measures a benchmark set and writes (then round-trip
// validates) its JSON export.
func writeBenchJSON(t *testing.T, path string, benches []namedBench) {
	t.Helper()
	var records []BenchRecord
	for _, b := range benches {
		res := testing.Benchmark(b.fn)
		rec := BenchRecord{
			Name:        b.name,
			Iters:       res.N,
			NsPerOp:     res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		}
		if len(res.Extra) > 0 {
			rec.Metrics = map[string]float64{}
			for k, v := range res.Extra {
				rec.Metrics[k] = v
			}
		}
		records = append(records, rec)
		t.Logf("%s: %d ns/op %v", rec.Name, rec.NsPerOp, rec.Metrics)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := report.WriteJSON(f, records); err != nil {
		t.Fatal(err)
	}
	var back []BenchRecord
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("written benchmark JSON invalid: %v", err)
	}
	if len(back) != len(records) {
		t.Fatalf("round-trip lost records: %d of %d", len(back), len(records))
	}
}

// TestWriteBenchJSON runs the campaign benchmark suite and exports the
// results; it is a no-op unless -benchjson is set (CI's perf-tracking
// step), so the regular test run stays fast.
func TestWriteBenchJSON(t *testing.T) {
	if *benchJSON == "" {
		t.Skip("enable with -benchjson PATH")
	}
	writeBenchJSON(t, *benchJSON, []namedBench{
		{"FaultCampaign", BenchmarkFaultCampaign},
		{"CampaignEngineBitflip", BenchmarkCampaignEngineBitflip},
		{"CampaignSessionReuse", BenchmarkCampaignSessionReuse},
		{"CampaignBatch", BenchmarkCampaignBatch},
		{"CampaignNewModels", BenchmarkCampaignNewModels},
		{"CampaignOrder2", BenchmarkCampaignOrder2},
		{"Emulator", BenchmarkEmulator},
	})
}

// TestWriteBenchPatchJSON exports the patch fixed-point and order-2
// pair benchmarks as BENCH_patch.json — the trajectory that makes the
// incremental engine's speedups (memo reuse, store replay, snapshot
// tree vs per-pair) visible across commits. No-op unless
// -benchjson-patch is set.
func TestWriteBenchPatchJSON(t *testing.T) {
	if *benchJSONPatch == "" {
		t.Skip("enable with -benchjson-patch PATH")
	}
	writeBenchJSON(t, *benchJSONPatch, []namedBench{
		{"PatchFixedPoint", BenchmarkPatchFixedPoint},
		{"PatchFixedPointWarm", BenchmarkPatchFixedPointWarm},
		{"PatchOrder2FixedPoint", BenchmarkPatchOrder2FixedPoint},
		{"Order2PairSweep", BenchmarkOrder2PairSweep},
		{"Order2PairSweepPerPair", BenchmarkOrder2PairSweepPerPair},
	})
}

// TestWriteBenchPruneJSON exports the equivalence-pruning benchmarks as
// BENCH_prune.json: the pruned order-2 pair sweep next to the
// exhaustive baseline it must beat, the hardened-binary sweep where
// inheritance dominates, the order-3 triple throughput the pruner
// unlocks, and the static-verifier catalog pass whose analyses the
// StaticInert screen reuses. No-op unless -benchjson-prune is set.
func TestWriteBenchPruneJSON(t *testing.T) {
	if *benchJSONPrune == "" {
		t.Skip("enable with -benchjson-prune PATH")
	}
	writeBenchJSON(t, *benchJSONPrune, []namedBench{
		{"Order2PairSweep", BenchmarkOrder2PairSweep},
		{"Order2PairSweepPruned", BenchmarkOrder2PairSweepPruned},
		{"Order2PairSweepPrunedHardened", BenchmarkOrder2PairSweepPrunedHardened},
		{"Order3TripleSweep", BenchmarkOrder3TripleSweep},
		{"VerifyCatalog", BenchmarkVerifyCatalog},
	})
}
