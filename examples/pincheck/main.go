// Pincheck walks the paper's first case study (§V-C) through the
// Faulter+Patcher pipeline with full visibility: the baseline fault
// campaign, every patching iteration, the residual analysis under the
// single-bit-flip model, and the final disassembly.
//
//	go run ./examples/pincheck
package main

import (
	"fmt"
	"log"

	"github.com/r2r/reinforce"
)

func main() {
	c := reinforce.Pincheck()
	bin := c.MustBuild()

	fmt.Println("case study: pincheck (paper §V-C)")
	fmt.Print(reinforce.Describe(bin))

	// Baseline campaigns under both fault models.
	for _, model := range []reinforce.Model{reinforce.ModelSkip, reinforce.ModelBitFlip} {
		rep, err := reinforce.FaultScan(bin, c.Good, c.Bad, model)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s campaign on the unprotected binary:\n  %s\n", model, rep.Summary())
		for _, s := range rep.VulnerableSites() {
			fmt.Printf("  %#x %-10s %d successful fault(s)\n", s.Addr, s.Mnemonic, s.Count)
		}
	}

	// The iterative loop, narrated.
	fmt.Println("\nfaulter+patcher iterations (both models):")
	res, err := reinforce.HardenFaulterPatcher(bin, reinforce.FaulterPatcherOptions{
		Good: c.Good,
		Bad:  c.Bad,
		Log:  func(s string) { fmt.Println("  " + s) },
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nresult:")
	fmt.Print(indent(res.Summary()))

	// Oracle check: the hardened binary still behaves exactly like the
	// original on both inputs.
	if err := c.Check(res.Binary); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\noracle check passed: hardened binary grants and denies correctly")

	// Residual bit-flip points live inside the protection patterns
	// (the paper reports the same ~50% ceiling).
	if n := len(res.Final.Successful()); n > 0 {
		fmt.Printf("\n%d residual bit-flip point(s) remain inside protection code —\n", n)
		fmt.Println("the paper reports the same: skip faults fully resolved, bit flips halved")
	}

	listing, err := reinforce.Disassemble(res.Binary)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhardened binary (%d bytes of code):\n%s", res.Binary.CodeSize(), indent(listing))
}

func indent(s string) string {
	out := ""
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			if i > start {
				out += "  " + s[start:i] + "\n"
			} else if i < len(s) {
				out += "\n"
			}
			start = i + 1
		}
	}
	return out
}
