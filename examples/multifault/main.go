// Multifault: why single-fault hardening is not enough, and what
// closing the gap costs.
//
// The paper's pincheck case study is hardened with the single-fault
// Faulter+Patcher pipeline until no individual instruction skip works,
// then attacked with *fault pairs* — two coordinated skips in one run
// (one removing a protected computation, the other its verification
// branch). The order-1-hardened binary falls; re-hardening with
// `Order: 2` escalates the pair sites to the chained order-2 patterns
// and the pair campaign comes back clean.
//
//	go run ./examples/multifault
package main

import (
	"fmt"
	"log"

	"github.com/r2r/reinforce"
)

func main() {
	c := reinforce.Pincheck()
	bin := c.MustBuild()

	// 1. Single-fault hardening: the paper's pipeline, converged.
	order1, err := reinforce.HardenFaulterPatcher(bin, reinforce.FaulterPatcherOptions{
		Good: c.Good, Bad: c.Bad,
		Models: []reinforce.Model{reinforce.ModelSkip},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("order-1 hardened: %d iterations, code size %+.1f%%, clean under single skips\n",
		len(order1.Iterations), order1.Overhead()*100)

	// 2. Attack it with fault pairs.
	pairs, err := reinforce.FaultScanOrder2(order1.Binary, c.Good, c.Bad, 0, reinforce.ModelSkip)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\norder-2 attack on it: %d pairs simulated, %d SUCCESSFUL\n",
		len(pairs.Pairs), len(pairs.SuccessfulPairs()))
	for _, p := range pairs.SuccessfulPairs() {
		fmt.Printf("  %s\n  ^ one skip removes the computation, the other its check\n", p.Pair)
	}

	// 3. Re-harden at order 2: sites of successful pairs escalate to
	//    the chained double-verification patterns.
	order2, err := reinforce.HardenFaulterPatcher(bin, reinforce.FaulterPatcherOptions{
		Good: c.Good, Bad: c.Bad,
		Models: []reinforce.Model{reinforce.ModelSkip},
		Order:  2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\norder-2 hardened: code size %+.1f%% (was %+.1f%%)\n",
		order2.Overhead()*100, order1.Overhead()*100)

	// 4. Attack again.
	pairs2, err := reinforce.FaultScanOrder2(order2.Binary, c.Good, c.Bad, 0, reinforce.ModelSkip)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("order-2 attack on it: %d pairs simulated, %d successful\n",
		len(pairs2.Pairs), len(pairs2.SuccessfulPairs()))
	if len(pairs2.SuccessfulPairs()) == 0 && order2.PairConverged() {
		fmt.Println("\nno pair of instruction skips grants access any more")
	}

	// The hardened binary still works.
	r, err := reinforce.Run(order2.Binary, c.Good)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("functional check: correct PIN -> %q... (exit %d)\n", r.Stdout[:15], r.ExitCode)
}
