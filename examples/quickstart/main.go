// Quickstart: find fault-injection vulnerabilities in a binary and fix
// them, in about thirty lines.
//
// A tiny door-lock firmware is assembled from source, attacked with the
// instruction-skip fault model, hardened with the Faulter+Patcher
// pipeline, and attacked again — the second campaign comes back clean.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/r2r/reinforce"
)

const doorLock = `
.text
_start:
	mov rax, 0                ; read(0, code_buf, 4)
	mov rdi, 0
	lea rsi, [rip+code_buf]
	mov rdx, 4
	syscall
	mov eax, dword ptr [rip+code_buf]
	cmp eax, dword ptr [rip+door_code]
	jne locked
open:
	mov rax, 1
	mov rdi, 1
	lea rsi, [rip+msg_open]
	mov rdx, 5
	syscall
	mov rax, 60
	mov rdi, 0
	syscall
locked:
	mov rax, 1
	mov rdi, 1
	lea rsi, [rip+msg_shut]
	mov rdx, 5
	syscall
	mov rax, 60
	mov rdi, 1
	syscall
.rodata
door_code: .ascii "4242"
msg_open:  .ascii "open\n"
msg_shut:  .ascii "shut\n"
.bss
code_buf: .zero 4
`

func main() {
	bin, err := reinforce.Assemble(doorLock)
	if err != nil {
		log.Fatal(err)
	}
	good, bad := []byte("4242"), []byte("0000")

	// 1. Attack the unprotected binary.
	before, err := reinforce.FaultScan(bin, good, bad, reinforce.ModelSkip)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("unprotected:", before.Summary())
	for _, s := range before.VulnerableSites() {
		fmt.Printf("  skipping the %s at %#x opens the door without the code\n", s.Mnemonic, s.Addr)
	}

	// 2. Harden it (fault-simulation-driven, targeted patching).
	res, err := reinforce.HardenFaulterPatcher(bin, reinforce.FaulterPatcherOptions{
		Good:   good,
		Bad:    bad,
		Models: []reinforce.Model{reinforce.ModelSkip},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhardened in %d iterations, code size %+.1f%%\n",
		len(res.Iterations), res.Overhead()*100)

	// 3. Attack the hardened binary.
	after, err := reinforce.FaultScan(res.Binary, good, bad, reinforce.ModelSkip)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("hardened:   ", after.Summary())
	if len(after.Successful()) == 0 {
		fmt.Println("\nevery instruction-skip attack is now caught or harmless")
	}

	// The hardened binary still works.
	r, err := reinforce.Run(res.Binary, good)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("functional check: correct code -> %q (exit %d)\n", r.Stdout, r.ExitCode)
}
