// Bootloader walks the paper's second case study (§V-C) through the
// Hybrid compiler–binary pipeline (§IV-C): the secure bootloader is
// lifted to compiler IR, its conditional branches are hardened with the
// UID-checksum countermeasure (§V-B, Algorithm 1, Fig. 5), and the IR is
// lowered back to a runnable binary that the fault campaign can no
// longer defeat with instruction skips.
//
//	go run ./examples/bootloader
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/r2r/reinforce"
)

func main() {
	c := reinforce.Bootloader()
	bin := c.MustBuild()

	fmt.Println("case study: secure bootloader (paper §V-C)")
	fmt.Print(reinforce.Describe(bin))

	// Show a slice of the lifted IR — what the Hybrid pipeline operates
	// on (the hash loop is the interesting part).
	irText, err := reinforce.LiftIR(bin)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nlifted IR around the hash loop:")
	fmt.Print(snippet(irText, "hash_loop:", 14))

	// Run the Hybrid pipeline.
	res, err := reinforce.HardenHybrid(bin, reinforce.HybridOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhybrid pipeline: protected %d conditional branches\n", res.Stats.BranchesProtected)
	fmt.Printf("  IR instructions: %d -> %d\n", res.IRInstsLifted, res.IRInstsHardened)
	fmt.Printf("  code size: %d -> %d bytes (%.2f%% overhead; paper reports 48.67%% with Rev.ng+LLVM)\n",
		res.OriginalCodeSize, res.Binary.CodeSize(), res.Overhead()*100)

	// The hardened bootloader must still boot good firmware and refuse
	// tampered firmware.
	if err := c.Check(res.Binary); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  oracle check passed: boots release firmware, refuses tampered firmware")

	// Evaluate the countermeasure: instruction-skip campaign before and
	// after.
	ev, err := reinforce.Evaluate(bin, res.Binary, c.Good, c.Bad, reinforce.ModelSkip)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninstruction-skip campaign:\n")
	fmt.Printf("  before: %s\n", ev.Before.Summary())
	fmt.Printf("  after:  %s\n", ev.After.Summary())
	if ev.SuccessAfter() == 0 {
		fmt.Println("  all skip attacks on the boot decision are now detected (exit 42 / FAULT)")
	}
}

// snippet extracts n lines starting at the first line containing marker.
func snippet(text, marker string, n int) string {
	lines := strings.Split(text, "\n")
	for i, l := range lines {
		if strings.Contains(l, marker) {
			end := i + n
			if end > len(lines) {
				end = len(lines)
			}
			out := ""
			for _, s := range lines[i:end] {
				out += "  " + s + "\n"
			}
			return out
		}
	}
	return "  (marker not found)\n"
}
