// Tradeoff reproduces the paper's §IV-D discussion ("Choosing the Right
// Method") with live numbers: for both case studies it runs the
// Faulter+Patcher pipeline, the Hybrid pipeline, and the blanket
// duplication baselines, then prints the Table-V-style comparison and
// the guidance that follows from it.
//
// Duplication is compared per rewriting substrate (see
// docs/COUNTERMEASURES.md):
// targeted patching vs duplicating every instruction on the reassembly
// route, and branch hardening vs duplicating every IR computation on
// the lift/lower route — so each comparison isolates the countermeasure
// cost from the rewriter's own overhead.
//
//	go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"

	"github.com/r2r/reinforce"
	"github.com/r2r/reinforce/internal/harden"
)

func main() {
	fmt.Println("countermeasure cost trade-off (paper §IV-D / Table V / §V-C)")
	fmt.Println()
	fmt.Printf("%-12s  %16s  %16s  %16s  %16s\n",
		"case study", "F+P (targeted)", "dup (reasm)", "Hybrid (harden)", "dup (IR)")
	fmt.Printf("%-12s  %16s  %16s  %16s  %16s\n",
		"----------", "--------------", "-----------", "---------------", "--------")

	type row struct {
		name               string
		fp, dup, hy, dupIR float64
	}
	var rows []row
	for _, c := range []*reinforce.Case{reinforce.Pincheck(), reinforce.Bootloader()} {
		bin := c.MustBuild()

		fp, err := reinforce.HardenFaulterPatcher(bin, reinforce.FaulterPatcherOptions{
			Good: c.Good, Bad: c.Bad,
		})
		if err != nil {
			log.Fatal(err)
		}
		hy, err := reinforce.HardenHybrid(bin, reinforce.HybridOptions{})
		if err != nil {
			log.Fatal(err)
		}
		dup, err := reinforce.DuplicationBaseline(bin)
		if err != nil {
			log.Fatal(err)
		}
		dupIR, err := harden.DuplicationIR(bin)
		if err != nil {
			log.Fatal(err)
		}
		for _, hb := range []*reinforce.Binary{fp.Binary, hy.Binary, dup.Binary, dupIR.Binary} {
			if err := c.Check(hb); err != nil {
				log.Fatal(err)
			}
		}
		r := row{
			name: c.Name,
			fp:   fp.Overhead() * 100, dup: dup.Overhead() * 100,
			hy: hy.Overhead() * 100, dupIR: dupIR.Overhead() * 100,
		}
		rows = append(rows, r)
		fmt.Printf("%-12s  %15.2f%%  %15.2f%%  %15.2f%%  %15.2f%%\n",
			r.name, r.fp, r.dup, r.hy, r.dupIR)
	}

	fmt.Println()
	fmt.Println("paper's Table V for reference: pincheck 17.61% (F+P) / 85.88% (Hybrid),")
	fmt.Println("bootloader 19.67% / 48.67%; blanket duplication bound >= 300%")
	fmt.Println()
	fmt.Println("guidance (paper §IV-D):")
	fmt.Println("  - size-constrained embedded targets: Faulter+Patcher — smallest")
	fmt.Println("    footprint, only vulnerable points pay")
	fmt.Println("  - when size is not critical: Hybrid — guaranteed, automated")
	fmt.Println("    insertion of arbitrarily complex countermeasures at IR level")
	fmt.Println("  - blanket duplication: never competitive on its substrate")

	for _, r := range rows {
		if r.fp >= r.dup {
			fmt.Printf("\nWARNING: targeted >= blanket on reassembly substrate for %s\n", r.name)
		}
		if r.hy >= r.dupIR {
			fmt.Printf("\nWARNING: hardening >= duplication on IR substrate for %s\n", r.name)
		}
	}
}
