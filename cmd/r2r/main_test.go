package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/r2r/reinforce"
	"github.com/r2r/reinforce/internal/cases"
)

var update = flag.Bool("update", false, "rewrite golden files")

// writeCase builds a case study into a temp dir and returns the binary
// path plus its oracle inputs.
func writeCase(t *testing.T, c *cases.Case) (path string, good, bad string) {
	t.Helper()
	bin := c.MustBuild()
	img, err := bin.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	path = filepath.Join(t.TempDir(), c.Name+".elf")
	if err := os.WriteFile(path, img, 0o755); err != nil {
		t.Fatal(err)
	}
	return path, string(c.Good), string(c.Bad)
}

// normalizeJSON zeroes the wall-clock fields so golden comparisons are
// deterministic, and re-indents canonically.
func normalizeJSON(t *testing.T, data []byte) string {
	t.Helper()
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	var scrub func(any)
	scrub = func(n any) {
		switch x := n.(type) {
		case map[string]any:
			delete(x, "elapsed_ms")
			for _, vv := range x {
				scrub(vv)
			}
		case []any:
			for _, vv := range x {
				scrub(vv)
			}
		}
	}
	scrub(v)
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(out) + "\n"
}

// checkGolden compares normalized JSON against a golden file
// (regenerate with `go test ./cmd/r2r -run Golden -update`).
func checkGolden(t *testing.T, name string, got string) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden file (regenerate with -update if intended)\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

// TestCampaignJSONGolden pins the `r2r campaign -json` output schema:
// summary fields, per-model breakdowns, and vulnerable sites for the
// pincheck case. The engine is deterministic, so values — not just
// structure — are stable.
func TestCampaignJSONGolden(t *testing.T) {
	bin, good, bad := writeCase(t, cases.Pincheck())
	var out bytes.Buffer
	err := cmdCampaign([]string{"-good", good, "-bad", bad, "-model", "skip,bitflip", "-q", "-json", bin}, &out)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "campaign_pincheck.json", normalizeJSON(t, out.Bytes()))
}

// TestCampaignOrder2JSONGolden pins the order-2 summary schema — the
// order2 block with the pair-stage outcome counts.
func TestCampaignOrder2JSONGolden(t *testing.T) {
	bin, good, bad := writeCase(t, cases.Pincheck())
	var out bytes.Buffer
	err := cmdCampaign([]string{"-good", good, "-bad", bad, "-model", "skip",
		"-order", "2", "-max-pairs", "64", "-q", "-json", bin}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := normalizeJSON(t, out.Bytes())
	if !strings.Contains(got, `"order2"`) {
		t.Fatalf("order-2 summary missing the order2 block:\n%s", got)
	}
	checkGolden(t, "campaign_pincheck_order2.json", got)
}

// TestPatchOrder2JSONGolden pins the `r2r patch -order 2 -json` export:
// order-1 iterations, pair iterations, and the convergence verdict.
func TestPatchOrder2JSONGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full order-2 Faulter+Patcher pipeline; run without -short")
	}
	bin, good, bad := writeCase(t, cases.Pincheck())
	var out bytes.Buffer
	err := cmdPatch([]string{"-good", good, "-bad", bad, "-model", "skip",
		"-order", "2", "-max-pairs", "1024", "-o", bin + ".h2", "-json", bin}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := normalizeJSON(t, out.Bytes())
	for _, want := range []string{`"pair_iterations"`, `"pair_converged": true`, `"final_pair_success": 0`} {
		if !strings.Contains(got, want) {
			t.Errorf("patch JSON missing %s:\n%s", want, got)
		}
	}
	checkGolden(t, "patch_pincheck_order2.json", got)
}

// TestCampaignUnknownModelListsCatalog: the fix for the opaque
// -model failure — the error must enumerate the registered models.
func TestCampaignUnknownModelListsCatalog(t *testing.T) {
	bin, good, bad := writeCase(t, cases.Pincheck())
	err := cmdCampaign([]string{"-good", good, "-bad", bad, "-model", "skipp", "-q", bin}, &bytes.Buffer{})
	if err == nil {
		t.Fatal("unknown model accepted")
	}
	for _, want := range []string{"skipp", "registered:", "instruction-skip", "single-bit-flip", "multi-instruction-skip"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// TestCampaignRejectsBadOrder and friends: flag-value validation that
// lives in the command layer, above the flag parser.
func TestCampaignRejectsBadOrder(t *testing.T) {
	err := cmdCampaign([]string{"-order", "3", "x.elf"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "order") {
		t.Errorf("order 3 not rejected: %v", err)
	}
}

func TestPatchRejectsBadOrder(t *testing.T) {
	err := cmdPatch([]string{"-order", "0", "x.elf"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "order") {
		t.Errorf("order 0 not rejected: %v", err)
	}
}

func TestHybridRejectsUnknownHarden(t *testing.T) {
	err := cmdHybrid([]string{"-harden", "mystery", "x.elf"})
	if err == nil || !strings.Contains(err.Error(), "mystery") {
		t.Errorf("unknown -harden not rejected: %v", err)
	}
}

func TestCampaignRejectsUnknownFlag(t *testing.T) {
	err := cmdCampaign([]string{"-frobnicate"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "frobnicate") {
		t.Errorf("unknown flag not rejected: %v", err)
	}
}

// TestCorpusJSONGolden pins the `r2r corpus -json` schema: one summary
// per (case, order) cell plus the corpus aggregate, each with the
// shared-store cache accounting.
func TestCorpusJSONGolden(t *testing.T) {
	var out bytes.Buffer
	err := cmdCorpus([]string{"-cases", "pincheck,otpauth", "-model", "skip",
		"-max-faults", "200", "-max-pairs", "64", "-workers", "2", "-q", "-json"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := normalizeJSON(t, out.Bytes())
	for _, want := range []string{`"name": "pincheck/o1"`, `"name": "otpauth/o2"`, `"name": "corpus"`, `"cache"`, `"order2"`} {
		if !strings.Contains(got, want) {
			t.Errorf("corpus JSON missing %s", want)
		}
	}
	checkGolden(t, "corpus_small.json", got)
}

// TestCorpusRejectsUsageErrors: the corpus command classifies bad
// input as usage (exit 2 in main), not runtime failure.
func TestCorpusRejectsUsageErrors(t *testing.T) {
	cases := map[string][]string{
		"positional args": {"x.elf"},
		"bad order":       {"-order", "4"},
		"unknown case":    {"-cases", "nonesuch"},
		"unknown model":   {"-model", "skipp"},
	}
	for name, args := range cases {
		err := cmdCorpus(args, &bytes.Buffer{})
		var ue usageError
		if err == nil || !errors.As(err, &ue) {
			t.Errorf("%s: want usage error, got %v", name, err)
		}
	}
}

// TestOracleJSONGolden pins the `r2r oracle -json` schema: one report
// per case with pipeline, hardened digest, input count, and divergence
// census. The pipeline and generators are deterministic, so values are
// stable, and the paper cases must show zero divergences.
func TestOracleJSONGolden(t *testing.T) {
	var out bytes.Buffer
	err := cmdOracle([]string{"-cases", "pincheck,bootloader", "-n", "16", "-json"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := normalizeJSON(t, out.Bytes())
	for _, want := range []string{`"case": "pincheck"`, `"case": "bootloader"`,
		`"pipeline": "hybrid"`, `"divergences": 0`, `"hardened_digest"`} {
		if !strings.Contains(got, want) {
			t.Errorf("oracle JSON missing %s", want)
		}
	}
	checkGolden(t, "oracle_paper_cases.json", got)
}

// TestOracleUsageErrors: argument validation is usage (exit 2), not
// runtime failure.
func TestOracleUsageErrors(t *testing.T) {
	cases := map[string][]string{
		"one positional":   {"orig.elf"},
		"three positional": {"a.elf", "b.elf", "c.elf"},
		"bad pipeline":     {"-harden", "mystery"},
		"zero inputs":      {"-n", "0"},
		"unknown case":     {"-cases", "nonesuch"},
	}
	for name, args := range cases {
		err := cmdOracle(args, &bytes.Buffer{})
		var ue usageError
		if err == nil || !errors.As(err, &ue) {
			t.Errorf("%s: want usage error, got %v", name, err)
		}
	}
}

// TestOracleDetectsDivergence: differencing two behaviorally different
// binaries reports divergences in the output and fails as a runtime
// error — the contract the CI smoke job relies on for its exit code.
func TestOracleDetectsDivergence(t *testing.T) {
	pin, _, _ := writeCase(t, cases.Pincheck())
	boot, _, _ := writeCase(t, cases.Bootloader())
	var out bytes.Buffer
	err := cmdOracle([]string{"-n", "8", pin, boot}, &out)
	var ue usageError
	if err == nil || errors.As(err, &ue) {
		t.Fatalf("divergent pair: want runtime error, got %v", err)
	}
	if !strings.Contains(err.Error(), "divergence") {
		t.Errorf("error does not mention divergences: %v", err)
	}
	if !strings.Contains(out.String(), "diverges on") {
		t.Errorf("report does not itemize divergences:\n%s", out.String())
	}
}

// TestVerifyCatalogCleanGolden pins the `r2r verify -json` output for
// hardened catalog artifacts: the empty findings array is the
// structural proof the CI gate relies on, pinned as a golden file so a
// verifier regression (spurious findings) or a silently weakened check
// surface both show up as drift.
func TestVerifyCatalogCleanGolden(t *testing.T) {
	var out bytes.Buffer
	err := cmdVerify([]string{"-cases", "pincheck", "-json"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "verify_pincheck.json", normalizeJSON(t, out.Bytes()))
}

// TestVerifyUnhardenedBinary: verifying a baseline binary reports its
// unguarded exits and fails as a runtime error (exit 1), the contract
// the CI gate's exit code relies on.
func TestVerifyUnhardenedBinary(t *testing.T) {
	bin, _, _ := writeCase(t, cases.Pincheck())
	var out bytes.Buffer
	err := cmdVerify([]string{bin}, &out)
	var ue usageError
	if err == nil || errors.As(err, &ue) {
		t.Fatalf("unhardened binary: want runtime error, got %v", err)
	}
	if !strings.Contains(err.Error(), "invariant violation") {
		t.Errorf("error does not count violations: %v", err)
	}
	if !strings.Contains(out.String(), "check-coverage") {
		t.Errorf("report does not name the failing check:\n%s", out.String())
	}
}

// TestVerifyUsageErrors: argument validation is usage (exit 2), not
// runtime failure.
func TestVerifyUsageErrors(t *testing.T) {
	cases := map[string][]string{
		"two positional": {"a.elf", "b.elf"},
		"bad pipeline":   {"-pipeline", "mystery"},
		"unknown case":   {"-cases", "nonesuch"},
	}
	for name, args := range cases {
		err := cmdVerify(args, &bytes.Buffer{})
		var ue usageError
		if err == nil || !errors.As(err, &ue) {
			t.Errorf("%s: want usage error, got %v", name, err)
		}
	}
}

// TestHybridEmitRoundTrip: `r2r hybrid -emit` writes a standalone ELF
// that loads back with the digest the command reported — and that the
// rest of the toolchain (loadBinary, the emulator) accepts.
func TestHybridEmitRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the hybrid pipeline; run without -short")
	}
	bin, good, _ := writeCase(t, cases.Pincheck())
	emitted := filepath.Join(t.TempDir(), "pincheck.hard.elf")
	err := cmdHybrid([]string{"-o", bin + ".hybrid", "-emit", emitted, bin})
	if err != nil {
		t.Fatal(err)
	}
	re, err := loadBinary(emitted)
	if err != nil {
		t.Fatalf("emitted ELF does not load back: %v", err)
	}
	if err := re.Validate(); err != nil {
		t.Fatalf("emitted ELF fails Validate: %v", err)
	}
	res, err := reinforce.Run(re, []byte(good))
	if err != nil || res.ExitCode != 0 {
		t.Errorf("emitted hardened binary rejects the accepted input: exit %d, %v", res.ExitCode, err)
	}
	if !strings.Contains(string(res.Stdout), "ACCESS GRANTED") {
		t.Errorf("emitted hardened binary stdout = %q", res.Stdout)
	}
}

// TestUsageErrorClassification: the exit-code convention — usage
// failures are usageError (exit 2), runtime failures are not (exit 1).
func TestUsageErrorClassification(t *testing.T) {
	var ue usageError
	if err := cmdCampaign([]string{"-order", "3", "x.elf"}, &bytes.Buffer{}); !errors.As(err, &ue) {
		t.Errorf("bad -order should be a usage error, got %v", err)
	}
	if err := cmdCampaign([]string{"-frobnicate"}, &bytes.Buffer{}); !errors.As(err, &ue) {
		t.Errorf("unknown flag should be a usage error, got %v", err)
	}
	if err := cmdCampaign([]string{"-shard", "9/4", "x.elf"}, &bytes.Buffer{}); !errors.As(err, &ue) {
		t.Errorf("bad -shard should be a usage error, got %v", err)
	}
	if err := cmdRun([]string{"/nonexistent.elf"}); err == nil || errors.As(err, &ue) {
		t.Errorf("unreadable binary should be a runtime error, got %v", err)
	}
}
