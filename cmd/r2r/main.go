// Command r2r is the rewrite-to-reinforce command line tool: assemble,
// run, trace, fault-scan, and harden static x86-64 binaries, and
// regenerate the paper's evaluation tables.
//
// Usage:
//
//	r2r asm -o prog.elf prog.s          assemble a program
//	r2r info prog.elf                   sections, entry, code size
//	r2r disasm prog.elf                 symbolized disassembly
//	r2r run [-in STR] prog.elf          execute in the emulator
//	r2r trace [-in STR] prog.elf        dynamic instruction trace
//	r2r lift prog.elf                   print the compiler IR
//	r2r faults -good G -bad B prog.elf  fault-injection campaign
//	r2r campaign -good G -bad B prog.elf ...        batch campaigns (sharded, JSON/CSV)
//	r2r patch -good G -bad B -o out.elf prog.elf    Faulter+Patcher pipeline
//	r2r hybrid -o out.elf prog.elf                  Hybrid pipeline
//	r2r cases -dir DIR                  write the case studies to disk
//	r2r experiments [-only NAME]        regenerate the paper's tables
//	r2r pipeline                        describe the two pipelines
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/r2r/reinforce"
	"github.com/r2r/reinforce/internal/campaign"
	"github.com/r2r/reinforce/internal/experiments"
	"github.com/r2r/reinforce/internal/fault"
	"github.com/r2r/reinforce/internal/report"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "asm":
		err = cmdAsm(args)
	case "info":
		err = cmdInfo(args)
	case "disasm":
		err = cmdDisasm(args)
	case "run":
		err = cmdRun(args)
	case "trace":
		err = cmdTrace(args)
	case "lift":
		err = cmdLift(args)
	case "faults":
		err = cmdFaults(args)
	case "campaign":
		err = cmdCampaign(args)
	case "patch":
		err = cmdPatch(args)
	case "hybrid":
		err = cmdHybrid(args)
	case "cases":
		err = cmdCases(args)
	case "cfg":
		err = cmdCFG(args)
	case "experiments":
		err = cmdExperiments(args)
	case "pipeline":
		err = cmdPipeline()
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "r2r: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "r2r %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `r2r — rewrite binaries to reinforce them against fault injection

commands:
  asm -o OUT IN.s                assemble to a static ELF
  info BIN                       entry, sections, code size
  disasm BIN                     symbolized disassembly
  run [-in STR] BIN              execute in the emulator
  trace [-in STR] BIN            record the dynamic instruction trace
  lift BIN                       print the lifted compiler IR
  faults -good G -bad B [-model MODELS] BIN
                                 run a fault-injection campaign
  campaign -good G -bad B [-model MODELS] [-order 1|2] [-max-pairs N]
           [-workers N] [-shard i/n] [-json|-csv] [-q] BIN [BIN...]
                                 batch campaigns on the parallel engine
                                 with sharding and JSON/CSV export;
                                 -order 2 adds multi-fault pairs
  patch -good G -bad B [-model ...] [-o OUT] BIN
                                 harden via the Faulter+Patcher pipeline
  hybrid [-o OUT] BIN            harden via the Hybrid (lift/lower) pipeline
  cases -dir DIR                 emit the pincheck/bootloader case studies
  cfg [-harden] BIN              CFG of the lifted IR in Graphviz dot
                                 (figures 4/5 with -harden)
  experiments [-only NAME]       regenerate the paper's tables and claims
  pipeline                       describe the two pipelines

MODELS is a comma-separated list of fault models: skip, bitflip,
reg-flip, multi-skip, data-flip — or both (skip+bitflip), all.
`)
}

func loadBinary(path string) (*reinforce.Binary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return reinforce.ParseELF(data)
}

func saveBinary(bin *reinforce.Binary, path string) error {
	img, err := bin.Bytes()
	if err != nil {
		return err
	}
	return os.WriteFile(path, img, 0o755)
}

func cmdAsm(args []string) error {
	fs := flag.NewFlagSet("asm", flag.ExitOnError)
	out := fs.String("o", "a.elf", "output path")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("want exactly one source file")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	bin, err := reinforce.Assemble(string(src))
	if err != nil {
		return err
	}
	if err := saveBinary(bin, *out); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes of code)\n", *out, bin.CodeSize())
	return nil
}

func cmdInfo(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("want exactly one binary")
	}
	bin, err := loadBinary(args[0])
	if err != nil {
		return err
	}
	fmt.Print(reinforce.Describe(bin))
	return nil
}

func cmdDisasm(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("want exactly one binary")
	}
	bin, err := loadBinary(args[0])
	if err != nil {
		return err
	}
	listing, err := reinforce.Disassemble(bin)
	if err != nil {
		return err
	}
	fmt.Print(listing)
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	in := fs.String("in", "", "stdin contents")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("want exactly one binary")
	}
	bin, err := loadBinary(fs.Arg(0))
	if err != nil {
		return err
	}
	res, err := reinforce.Run(bin, []byte(*in))
	if err != nil {
		return fmt.Errorf("crashed after %d steps: %w", res.Steps, err)
	}
	os.Stdout.Write(res.Stdout)
	os.Stderr.Write(res.Stderr)
	fmt.Printf("[exit %d after %d steps]\n", res.ExitCode, res.Steps)
	return nil
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	in := fs.String("in", "", "stdin contents")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("want exactly one binary")
	}
	bin, err := loadBinary(fs.Arg(0))
	if err != nil {
		return err
	}
	tr := reinforce.CaptureTrace(bin, []byte(*in))
	for _, e := range tr.Entries {
		fmt.Printf("%#x\n", e.Addr)
	}
	fmt.Println(tr.Summary())
	return nil
}

func cmdLift(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("want exactly one binary")
	}
	bin, err := loadBinary(args[0])
	if err != nil {
		return err
	}
	irText, err := reinforce.LiftIR(bin)
	if err != nil {
		return err
	}
	fmt.Print(irText)
	return nil
}

func parseModels(s string) ([]reinforce.Model, error) {
	return reinforce.ParseModels(s)
}

func cmdFaults(args []string) error {
	fs := flag.NewFlagSet("faults", flag.ExitOnError)
	good := fs.String("good", "", "accepted input")
	bad := fs.String("bad", "", "rejected input")
	model := fs.String("model", "both", "comma-separated fault models: skip, bitflip, reg-flip, multi-skip, data-flip, both, all")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("want exactly one binary")
	}
	models, err := parseModels(*model)
	if err != nil {
		return err
	}
	bin, err := loadBinary(fs.Arg(0))
	if err != nil {
		return err
	}
	rep, err := reinforce.FaultScan(bin, []byte(*good), []byte(*bad), models...)
	if err != nil {
		return err
	}
	fmt.Println(rep.Summary())
	for _, s := range rep.VulnerableSites() {
		fmt.Printf("  vulnerable: %#x %-8s (%d successful faults, class %s)\n",
			s.Addr, s.Mnemonic, s.Count, fault.Classify(s.Op))
	}
	return nil
}

// cmdCampaign drives the parallel campaign engine: one or more
// binaries swept under the same oracles, with optional sharding,
// order-2 multi-fault pairs, and machine-readable output.
func cmdCampaign(args []string) error {
	fs := flag.NewFlagSet("campaign", flag.ExitOnError)
	good := fs.String("good", "", "accepted input")
	bad := fs.String("bad", "", "rejected input")
	model := fs.String("model", "both", "comma-separated fault models: skip, bitflip, reg-flip, multi-skip, data-flip, both, all")
	order := fs.Int("order", 1, "fault order: 1 = single faults, 2 = add fault pairs pruned from the order-1 sweep")
	maxPairs := fs.Int("max-pairs", 0, "order-2 pair budget (default 4096)")
	workers := fs.Int("workers", 0, "parallel simulations per campaign (default GOMAXPROCS)")
	shardSpec := fs.String("shard", "", "simulate only shard i/n of each fault list (e.g. 0/4); with -order 2 the shard applies to the pair list")
	jsonOut := fs.Bool("json", false, "emit JSON summaries on stdout")
	csvOut := fs.Bool("csv", false, "emit CSV summaries on stdout")
	quiet := fs.Bool("q", false, "suppress the stderr progress meter")
	fs.Parse(args)
	if fs.NArg() < 1 {
		return fmt.Errorf("want at least one binary")
	}
	if *order != 1 && *order != 2 {
		return fmt.Errorf("unsupported fault order %d: want 1 or 2", *order)
	}
	models, err := parseModels(*model)
	if err != nil {
		return err
	}
	var shard campaign.Shard
	if *shardSpec != "" {
		if _, err := fmt.Sscanf(*shardSpec, "%d/%d", &shard.Index, &shard.Count); err != nil {
			return fmt.Errorf("bad -shard %q: want i/n", *shardSpec)
		}
	}

	var jobs []campaign.Job
	for _, path := range fs.Args() {
		bin, err := loadBinary(path)
		if err != nil {
			return err
		}
		jobs = append(jobs, campaign.Job{
			Name: filepath.Base(path),
			Campaign: fault.Campaign{
				Binary: bin,
				Good:   []byte(*good),
				Bad:    []byte(*bad),
				Models: models,
			},
		})
	}

	opt := campaign.Options{Workers: *workers, Shard: shard, MaxPairs: *maxPairs}
	if !*quiet {
		opt.Progress = func(p campaign.Progress) {
			// Redraw sparingly: every 256 injections and at completion.
			if p.Done%256 == 0 || p.Done == p.Total {
				fmt.Fprintf(os.Stderr, "\r[%d/%d %s] %d/%d injections",
					p.JobIndex+1, p.Jobs, p.Job, p.Done, p.Total)
				if p.Done == p.Total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}

	var sums []campaign.Summary
	if *order == 2 {
		// Order-2 runs per binary: the pair list is derived from each
		// binary's own order-1 sweep, so there is no batch fast path.
		for _, job := range jobs {
			start := time.Now()
			rep, err := campaign.RunOrder2(job.Campaign, opt)
			if err != nil {
				return fmt.Errorf("%s: %w", job.Name, err)
			}
			sum := campaign.SummarizeOrder2(job.Name, rep)
			sum.ElapsedMS = time.Since(start).Milliseconds()
			sums = append(sums, sum)
		}
	} else {
		results := campaign.RunAll(jobs, opt)
		for _, r := range results {
			if r.Err != nil {
				return fmt.Errorf("%s: %w", r.Name, r.Err)
			}
			sum := campaign.Summarize(r.Name, r.Report)
			sum.ElapsedMS = r.Elapsed.Milliseconds()
			sums = append(sums, sum)
		}
	}
	switch {
	case *jsonOut:
		return campaign.WriteJSON(os.Stdout, sums)
	case *csvOut:
		return campaign.WriteCSV(os.Stdout, sums)
	}
	fmt.Print(campaign.SummaryTable(sums))
	for _, sum := range sums {
		for _, site := range sum.Sites {
			fmt.Printf("  %s vulnerable: %#x %-8s (%d successful faults, class %s)\n",
				sum.Name, site.Addr, site.Mnemonic, site.Successes, site.Class)
		}
	}
	return nil
}

func cmdPatch(args []string) error {
	fs := flag.NewFlagSet("patch", flag.ExitOnError)
	good := fs.String("good", "", "accepted input")
	bad := fs.String("bad", "", "rejected input")
	model := fs.String("model", "both", "comma-separated fault models to harden against")
	out := fs.String("o", "", "output path (default: overwrite input with .hardened suffix)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("want exactly one binary")
	}
	models, err := parseModels(*model)
	if err != nil {
		return err
	}
	bin, err := loadBinary(fs.Arg(0))
	if err != nil {
		return err
	}
	res, err := reinforce.HardenFaulterPatcher(bin, reinforce.FaulterPatcherOptions{
		Good:   []byte(*good),
		Bad:    []byte(*bad),
		Models: models,
		Log:    func(s string) { fmt.Println(s) },
	})
	if err != nil {
		return err
	}
	fmt.Print(res.Summary())
	path := *out
	if path == "" {
		path = fs.Arg(0) + ".hardened"
	}
	if err := saveBinary(res.Binary, path); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func cmdHybrid(args []string) error {
	fs := flag.NewFlagSet("hybrid", flag.ExitOnError)
	out := fs.String("o", "", "output path (default: input + .hybrid)")
	dumpAsm := fs.Bool("S", false, "print the generated assembly")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("want exactly one binary")
	}
	bin, err := loadBinary(fs.Arg(0))
	if err != nil {
		return err
	}
	res, err := reinforce.HardenHybrid(bin, reinforce.HybridOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("protected %d branches; code size %d -> %d bytes (%.2f%% overhead)\n",
		res.Stats.BranchesProtected, res.OriginalCodeSize, res.Binary.CodeSize(), res.Overhead()*100)
	if *dumpAsm {
		fmt.Print(res.Asm)
	}
	path := *out
	if path == "" {
		path = fs.Arg(0) + ".hybrid"
	}
	if err := saveBinary(res.Binary, path); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func cmdCases(args []string) error {
	fs := flag.NewFlagSet("cases", flag.ExitOnError)
	dir := fs.String("dir", ".", "output directory")
	fs.Parse(args)
	for _, c := range []*reinforce.Case{reinforce.Pincheck(), reinforce.Bootloader()} {
		srcPath := filepath.Join(*dir, c.Name+".s")
		if err := os.WriteFile(srcPath, []byte(c.Source), 0o644); err != nil {
			return err
		}
		bin, err := c.Build()
		if err != nil {
			return err
		}
		binPath := filepath.Join(*dir, c.Name+".elf")
		if err := saveBinary(bin, binPath); err != nil {
			return err
		}
		goodPath := filepath.Join(*dir, c.Name+".good")
		if err := os.WriteFile(goodPath, c.Good, 0o644); err != nil {
			return err
		}
		badPath := filepath.Join(*dir, c.Name+".bad")
		if err := os.WriteFile(badPath, c.Bad, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s, %s, %s, %s\n", srcPath, binPath, goodPath, badPath)
	}
	return nil
}

func cmdCFG(args []string) error {
	fs := flag.NewFlagSet("cfg", flag.ExitOnError)
	hardened := fs.Bool("harden", false, "apply conditional branch hardening first (figure 5)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("want exactly one binary")
	}
	bin, err := loadBinary(fs.Arg(0))
	if err != nil {
		return err
	}
	dot, err := reinforce.CFGDot(bin, *hardened)
	if err != nil {
		return err
	}
	fmt.Print(dot)
	return nil
}

func cmdExperiments(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ExitOnError)
	only := fs.String("only", "", "run a single experiment: table4, table5, skip, bitflip, class, dup, figures, beyond")
	fs.Parse(args)

	type exp struct {
		name string
		run  func() (*report.Table, error)
	}
	all := []exp{
		{"table4", func() (*report.Table, error) { t, _, err := experiments.TableIV(); return t, err }},
		{"table5", func() (*report.Table, error) { t, _, err := experiments.TableV(); return t, err }},
		{"skip", func() (*report.Table, error) { t, _, err := experiments.ClaimSkip(); return t, err }},
		{"bitflip", func() (*report.Table, error) { t, _, err := experiments.ClaimBitflip(); return t, err }},
		{"class", func() (*report.Table, error) { t, _, err := experiments.ClaimClass(); return t, err }},
		{"dup", func() (*report.Table, error) { t, _, err := experiments.ClaimDup(); return t, err }},
		{"figures", func() (*report.Table, error) { t, _, err := experiments.Figures(); return t, err }},
		{"beyond", func() (*report.Table, error) { t, _, err := experiments.TableBeyond(); return t, err }},
	}
	ran := 0
	for _, e := range all {
		if *only != "" && e.name != *only {
			continue
		}
		tab, err := e.run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Println(tab)
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("unknown experiment %q", *only)
	}
	return nil
}

func cmdPipeline() error {
	fmt.Print(strings.TrimLeft(`
Rewrite-to-reinforce pipelines (paper Fig. 2 and 3)

Faulter+Patcher (reassembleable disassembly, targeted):

    binary ──▶ faulter (emulated fault campaign: skip / bit flip)
                  │ list of successful faults
                  ▼
               patcher (Tables I-III local patterns at each site)
                  │ reassemble
                  ▼
          patched binary ──▶ faulter again ... until no fault remains
                             or none is fixable (fixed point)

Hybrid compiler-binary (full translation, holistic):

    binary ──▶ lift to compiler IR (CPU cells, explicit flags)
                  │ cleanup passes (cellprop, const fold, flag DCE)
                  ▼
               conditional branch hardening pass (§V-B, Alg. 1, Fig. 5):
                  per-block UIDs, duplicated edge checksums D1/D2,
                  re-evaluated comparison C2, per-edge validation chains
                  │ countermeasure-safe cleanup
                  ▼
               lower to x86-64 (cells in .vcpu, cmp/br fusion)
                  │
                  ▼
          hardened binary ──▶ same faulter verifies the result
`, "\n"))
	return nil
}
