// Command r2r is the rewrite-to-reinforce command line tool: assemble,
// run, trace, fault-scan, and harden static x86-64 binaries, and
// regenerate the paper's evaluation tables.
//
// Usage:
//
//	r2r asm -o prog.elf prog.s          assemble a program
//	r2r info prog.elf                   sections, entry, code size
//	r2r disasm prog.elf                 symbolized disassembly
//	r2r run [-in STR] prog.elf          execute in the emulator
//	r2r trace [-in STR] prog.elf        dynamic instruction trace
//	r2r lift prog.elf                   print the compiler IR
//	r2r faults -good G -bad B prog.elf  fault-injection campaign
//	r2r campaign -good G -bad B prog.elf ...        batch campaigns (sharded, JSON/CSV)
//	r2r corpus [-cases LIST] [-order 1|2|3] ...     batched sweep across the case-study corpus
//	r2r patch -good G -bad B -o out.elf prog.elf    Faulter+Patcher pipeline
//	r2r hybrid -o out.elf prog.elf                  Hybrid pipeline
//	r2r oracle [-cases LIST] [-harden P] ...        differential-execution oracle
//	r2r verify [-cases LIST] [-pipeline P] [BIN]    static countermeasure verifier
//	r2r cases -dir DIR                  write the case studies to disk
//	r2r experiments [-only NAME]        regenerate the paper's tables
//	r2r pipeline                        describe the two pipelines
//
// The flag surface of every subcommand is defined in internal/cli,
// shared with the docs checker (tools/doccheck).
//
// Exit codes follow the usual convention: 0 on success, 1 on a runtime
// failure (unreadable binary, failed pipeline, failed campaign), 2 on a
// usage error (unknown command or flag, bad flag value, wrong argument
// count).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/r2r/reinforce"
	"github.com/r2r/reinforce/internal/bir"
	"github.com/r2r/reinforce/internal/campaign"
	"github.com/r2r/reinforce/internal/cases"
	"github.com/r2r/reinforce/internal/cli"
	"github.com/r2r/reinforce/internal/emit"
	"github.com/r2r/reinforce/internal/experiments"
	"github.com/r2r/reinforce/internal/fault"
	"github.com/r2r/reinforce/internal/oracle"
	"github.com/r2r/reinforce/internal/passes"
	"github.com/r2r/reinforce/internal/patch"
	"github.com/r2r/reinforce/internal/report"
	"github.com/r2r/reinforce/internal/static"
)

// usageError marks a command-line failure (bad flag, bad flag value,
// wrong argument count) as opposed to a runtime one; main exits 2 for
// usage errors and 1 for everything else, the convention README
// documents.
type usageError struct{ err error }

func (e usageError) Error() string { return e.err.Error() }
func (e usageError) Unwrap() error { return e.err }

// usagef builds a usage error like fmt.Errorf.
func usagef(format string, args ...any) error {
	return usageError{err: fmt.Errorf(format, args...)}
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "asm":
		err = cmdAsm(args)
	case "info":
		err = cmdInfo(args)
	case "disasm":
		err = cmdDisasm(args)
	case "run":
		err = cmdRun(args)
	case "trace":
		err = cmdTrace(args)
	case "lift":
		err = cmdLift(args)
	case "faults":
		err = cmdFaults(args)
	case "campaign":
		err = cmdCampaign(args, os.Stdout)
	case "corpus":
		err = cmdCorpus(args, os.Stdout)
	case "patch":
		err = cmdPatch(args, os.Stdout)
	case "hybrid":
		err = cmdHybrid(args)
	case "oracle":
		err = cmdOracle(args, os.Stdout)
	case "verify":
		err = cmdVerify(args, os.Stdout)
	case "cases":
		err = cmdCases(args)
	case "cfg":
		err = cmdCFG(args)
	case "experiments":
		err = cmdExperiments(args)
	case "pipeline":
		err = cmdPipeline()
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "r2r: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "r2r %s: %v\n", cmd, err)
		var ue usageError
		if errors.As(err, &ue) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `r2r — rewrite binaries to reinforce them against fault injection

commands:
  asm -o OUT IN.s                assemble to a static ELF
  info BIN                       entry, sections, code size
  disasm BIN                     symbolized disassembly
  run [-in STR] BIN              execute in the emulator
  trace [-in STR] BIN            record the dynamic instruction trace
  lift BIN                       print the lifted compiler IR
  faults -good G -bad B [-model MODELS] BIN
                                 run a fault-injection campaign
  campaign -good G -bad B [-model MODELS] [-order 1|2] [-max-pairs N]
           [-workers N] [-shard i/n] [-prune] [-json|-csv] [-q]
           [-cpuprofile F] [-memprofile F] BIN [BIN...]
                                 batch campaigns on the parallel engine
                                 with sharding and JSON/CSV export;
                                 -order 2 adds multi-fault pairs; -prune
                                 classifies equivalent injections without
                                 simulating them (bit-identical results)
  corpus [-cases LIST] [-model MODELS] [-order 1|2|3] [-max-pairs N]
         [-max-triples N] [-max-faults N] [-workers N] [-parallel-cells N]
         [-cache-dir DIR] [-prune] [-json|-csv] [-q]
         [-cpuprofile F] [-memprofile F]
                                 sweep the registered case-study corpus
                                 as one batched, cache-sharing run with
                                 per-case and aggregate survival reports;
                                 -order 3 adds the budget-capped, pruned
                                 triple stage; -parallel-cells N runs up
                                 to N cases concurrently on one shared
                                 worker pool (results bit-identical)
  patch -good G -bad B [-model ...] [-order 1|2] [-max-pairs N]
        [-json|-csv] [-o OUT] [-emit ELF] BIN
                                 harden via the Faulter+Patcher pipeline;
                                 -order 2 escalates fault-pair sites to
                                 the order-2-aware patterns; -emit also
                                 writes a standalone runnable ELF
  hybrid [-harden branch|order2] [-o OUT] [-emit ELF] BIN
                                 harden via the Hybrid (lift/lower)
                                 pipeline; order2 adds the skip-window
                                 multi-fault countermeasure pass; -emit
                                 also writes a standalone runnable ELF
  oracle [-cases LIST] [-harden hybrid|order2|patch] [-n N] [-seed S]
         [-variants N] [-workers N] [-json|-csv] [ORIG HARDENED]
                                 differential-execution oracle: harden
                                 each case, generate N inputs, and
                                 assert original/hardened equivalence
                                 off the fault path (exit status, output
                                 bytes, crash class); with two binary
                                 arguments, difference those instead
  verify [-cases LIST] [-pipeline hybrid|order2|patch|all] [-json|-csv] [BIN]
                                 statically prove the hardening
                                 invariants, no simulation: catalog mode
                                 hardens each case through the selected
                                 pipelines and verifies check coverage,
                                 skip-window spacing, and doubled
                                 compares; with a binary argument, runs
                                 the machine-level check-coverage proof
                                 on it; any finding exits 1
  cases -dir DIR                 emit the registered case-study corpus
  cfg [-harden] BIN              CFG of the lifted IR in Graphviz dot
                                 (figures 4/5 with -harden)
  experiments [-only NAME]       regenerate the paper's tables and claims
  pipeline                       describe the two pipelines

MODELS is a comma-separated list of fault models: skip, bitflip,
reg-flip, multi-skip, data-flip — or both (skip+bitflip), all.
`)
}

// parse runs a subcommand's flag set over args. The cli package builds
// silent flag sets (errors returned, nothing printed), so -h/-help is
// handled here: print the flag defaults to stderr and exit 0 — a help
// request is not an error. Parse failures are usage errors (exit 2).
func parse(fs *flag.FlagSet, args []string) error {
	err := fs.Parse(args)
	if errors.Is(err, flag.ErrHelp) {
		fmt.Fprintf(os.Stderr, "usage: r2r %s [flags] ...\nflags:\n", fs.Name())
		fs.SetOutput(os.Stderr)
		fs.PrintDefaults()
		os.Exit(0)
	}
	if err != nil {
		return usageError{err: err}
	}
	return nil
}

func loadBinary(path string) (*reinforce.Binary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return reinforce.ParseELF(data)
}

func saveBinary(bin *reinforce.Binary, path string) error {
	img, err := bin.Bytes()
	if err != nil {
		return err
	}
	return os.WriteFile(path, img, 0o755)
}

func cmdAsm(args []string) error {
	fs, f := cli.Asm()
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return usagef("want exactly one source file")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	bin, err := reinforce.Assemble(string(src))
	if err != nil {
		return err
	}
	if err := saveBinary(bin, f.Out); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes of code)\n", f.Out, bin.CodeSize())
	return nil
}

func cmdInfo(args []string) error {
	if len(args) != 1 {
		return usagef("want exactly one binary")
	}
	bin, err := loadBinary(args[0])
	if err != nil {
		return err
	}
	fmt.Print(reinforce.Describe(bin))
	return nil
}

func cmdDisasm(args []string) error {
	if len(args) != 1 {
		return usagef("want exactly one binary")
	}
	bin, err := loadBinary(args[0])
	if err != nil {
		return err
	}
	listing, err := reinforce.Disassemble(bin)
	if err != nil {
		return err
	}
	fmt.Print(listing)
	return nil
}

func cmdRun(args []string) error {
	fs, f := cli.Run()
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return usagef("want exactly one binary")
	}
	bin, err := loadBinary(fs.Arg(0))
	if err != nil {
		return err
	}
	res, err := reinforce.Run(bin, []byte(f.In))
	if err != nil {
		return fmt.Errorf("crashed after %d steps: %w", res.Steps, err)
	}
	os.Stdout.Write(res.Stdout)
	os.Stderr.Write(res.Stderr)
	fmt.Printf("[exit %d after %d steps]\n", res.ExitCode, res.Steps)
	return nil
}

func cmdTrace(args []string) error {
	fs, f := cli.Trace()
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return usagef("want exactly one binary")
	}
	bin, err := loadBinary(fs.Arg(0))
	if err != nil {
		return err
	}
	tr := reinforce.CaptureTrace(bin, []byte(f.In))
	for _, e := range tr.Entries {
		fmt.Printf("%#x\n", e.Addr)
	}
	fmt.Println(tr.Summary())
	return nil
}

func cmdLift(args []string) error {
	if len(args) != 1 {
		return usagef("want exactly one binary")
	}
	bin, err := loadBinary(args[0])
	if err != nil {
		return err
	}
	irText, err := reinforce.LiftIR(bin)
	if err != nil {
		return err
	}
	fmt.Print(irText)
	return nil
}

// parseModels resolves a -model flag value; failures are usage errors.
func parseModels(s string) ([]reinforce.Model, error) {
	models, err := reinforce.ParseModels(s)
	if err != nil {
		return nil, usageError{err: err}
	}
	return models, nil
}

func cmdFaults(args []string) error {
	fs, f := cli.Faults()
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return usagef("want exactly one binary")
	}
	models, err := parseModels(f.Model)
	if err != nil {
		return err
	}
	bin, err := loadBinary(fs.Arg(0))
	if err != nil {
		return err
	}
	rep, err := reinforce.FaultScan(bin, []byte(f.Good), []byte(f.Bad), models...)
	if err != nil {
		return err
	}
	fmt.Println(rep.Summary())
	for _, s := range rep.VulnerableSites() {
		fmt.Printf("  vulnerable: %#x %-8s (%d successful faults, class %s)\n",
			s.Addr, s.Mnemonic, s.Count, fault.Classify(s.Op))
	}
	return nil
}

// openStore builds the content-addressed campaign result cache behind
// -cache-dir, or nil when the flag is unset (no caching).
func openStore(dir string) (*campaign.Store, error) {
	if dir == "" {
		return nil, nil
	}
	return campaign.NewStore(dir)
}

// progressMeter builds the standard stderr progress callback shared by
// the campaign and corpus commands, or nil under -q. It redraws
// sparingly: every 256 injections and at completion.
func progressMeter(quiet bool) func(campaign.Progress) {
	if quiet {
		return nil
	}
	return func(p campaign.Progress) {
		if p.Done%256 == 0 || p.Done == p.Total {
			fmt.Fprintf(os.Stderr, "\r[%d/%d %s] %d/%d injections",
				p.JobIndex+1, p.Jobs, p.Job, p.Done, p.Total)
			if p.Done == p.Total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
}

// writeSummaries emits campaign summaries in the selected format: JSON,
// CSV, or the text table followed by the per-site vulnerability lines.
func writeSummaries(out io.Writer, asJSON, asCSV bool, sums []campaign.Summary) error {
	switch {
	case asJSON:
		return campaign.WriteJSON(out, sums)
	case asCSV:
		return campaign.WriteCSV(out, sums)
	}
	fmt.Fprint(out, campaign.SummaryTable(sums))
	for _, sum := range sums {
		for _, site := range sum.Sites {
			fmt.Fprintf(out, "  %s vulnerable: %#x %-8s (%d successful faults, class %s)\n",
				sum.Name, site.Addr, site.Mnemonic, site.Successes, site.Class)
		}
	}
	return nil
}

// profileTo starts a CPU profile (when cpuPath is non-empty) and
// returns an idempotent stop function that ends it and, when memPath is
// non-empty, writes a garbage-collected heap profile. Callers defer the
// stop (so early errors still end the CPU profile) and also invoke it
// explicitly on the success path to surface profile-write errors.
func profileTo(cpuPath, memPath string) (func() error, error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	done := false
	return func() error {
		if done {
			return nil
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // report live allocations, not GC timing luck
			if err := pprof.WriteHeapProfile(f); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

// cmdCampaign drives the parallel campaign engine: one or more
// binaries swept under the same oracles, with optional sharding,
// order-2 multi-fault pairs, and machine-readable output.
func cmdCampaign(args []string, out io.Writer) error {
	fs, f := cli.Campaign()
	if err := parse(fs, args); err != nil {
		return err
	}
	stopProf, err := profileTo(f.CPUProfile, f.MemProfile)
	if err != nil {
		return err
	}
	defer stopProf()
	if fs.NArg() < 1 {
		return usagef("want at least one binary")
	}
	if f.Order != 1 && f.Order != 2 {
		return usagef("unsupported fault order %d: want 1 or 2", f.Order)
	}
	models, err := parseModels(f.Model)
	if err != nil {
		return err
	}
	shard, err := campaign.ParseShard(f.Shard)
	if err != nil {
		return usageError{err: err}
	}
	store, err := openStore(f.CacheDir)
	if err != nil {
		return err
	}

	var jobs []campaign.Job
	for _, path := range fs.Args() {
		bin, err := loadBinary(path)
		if err != nil {
			return err
		}
		jobs = append(jobs, campaign.Job{
			Name: filepath.Base(path),
			Campaign: fault.Campaign{
				Binary: bin,
				Good:   []byte(f.Good),
				Bad:    []byte(f.Bad),
				Models: models,
			},
		})
	}

	opt := campaign.Options{Workers: f.Workers, Shard: shard, MaxPairs: f.MaxPairs, Store: store,
		Prune: f.Prune, Progress: progressMeter(f.Quiet)}

	var sums []campaign.Summary
	if f.Order == 2 {
		// Order-2 runs per binary: the pair list is derived from each
		// binary's own order-1 sweep, so there is no batch fast path.
		for _, job := range jobs {
			start := time.Now()
			var rep *campaign.Order2Report
			var cache campaign.CacheStats
			var prune *fault.PruneStats
			if store != nil {
				res, err := campaign.RunOrder2Incremental(job.Campaign, opt, nil)
				if err != nil {
					return fmt.Errorf("%s: %w", job.Name, err)
				}
				rep, cache, prune = res.Report, res.Cache, res.Prune
			} else {
				// No cache requested: RunOrder2Result keeps the plain
				// simulation hot path (no footprint recording) while
				// still surfacing the prune accounting.
				res, err := campaign.RunOrder2Result(job.Campaign, opt)
				if err != nil {
					return fmt.Errorf("%s: %w", job.Name, err)
				}
				rep, prune = res.Report, res.Prune
			}
			sum := campaign.SummarizeOrder2(job.Name, rep)
			sum.ElapsedMS = time.Since(start).Milliseconds()
			if store != nil {
				sum.Cache = &cache
			}
			sum.Prune = prune
			sums = append(sums, sum)
		}
	} else {
		results := campaign.RunAll(jobs, opt)
		for _, r := range results {
			if r.Err != nil {
				return fmt.Errorf("%s: %w", r.Name, r.Err)
			}
			sum := campaign.Summarize(r.Name, r.Report)
			sum.ElapsedMS = r.Elapsed.Milliseconds()
			if store != nil {
				cache := r.Cache
				sum.Cache = &cache
			}
			sum.Prune = r.Prune
			sums = append(sums, sum)
		}
	}
	if err := stopProf(); err != nil {
		return err
	}
	return writeSummaries(out, f.JSON, f.CSV, sums)
}

// corpusStepLimit is the reference-run budget corpus campaigns use —
// generous enough for hardened variants of every registered case.
const corpusStepLimit = 32 << 20

// cmdCorpus sweeps the registered case-study corpus as one batched,
// cache-sharing run: every selected case at order 1 (and, by default,
// order 2), sharing one content-addressed store, with per-case and
// aggregate survival summaries.
func cmdCorpus(args []string, out io.Writer) error {
	fs, f := cli.Corpus()
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return usagef("corpus takes no positional arguments (case studies come from -cases)")
	}
	if f.Order < 1 || f.Order > 3 {
		return usagef("unsupported fault order %d: want 1, 2 or 3", f.Order)
	}
	stopProf, err := profileTo(f.CPUProfile, f.MemProfile)
	if err != nil {
		return err
	}
	defer stopProf()
	models, err := parseModels(f.Model)
	if err != nil {
		return err
	}
	selected, err := cases.ParseCases(f.Cases)
	if err != nil {
		return usageError{err: err}
	}
	store, err := openStore(f.CacheDir)
	if err != nil {
		return err
	}
	if store != nil {
		// Batch disk writes behind the sweep; Close flushes what's
		// still pending before the summaries are written.
		store.EnableWriteBehind(0, 0)
		defer store.Close()
	}

	var jobs []campaign.CorpusJob
	for _, c := range selected {
		bin, err := c.Build()
		if err != nil {
			return fmt.Errorf("%s: %w", c.Name, err)
		}
		jobs = append(jobs, campaign.CorpusJob{
			Case: c.Name,
			Campaign: fault.Campaign{
				Binary: bin, Good: c.Good, Bad: c.Bad,
				Models: models, StepLimit: corpusStepLimit,
				DedupSites: f.Dedup, MaxFaults: f.MaxFaults,
			},
		})
	}
	orders := []int{1}
	for o := 2; o <= f.Order; o++ {
		orders = append(orders, o)
	}
	opt := campaign.CorpusOptions{
		Options: campaign.Options{Workers: f.Workers, MaxPairs: f.MaxPairs,
			MaxTriples: f.MaxTriples, Store: store,
			Prune: f.Prune, Progress: progressMeter(f.Quiet)},
		Orders:        orders,
		ParallelCells: f.ParallelCells,
	}
	res, err := campaign.RunCorpus(jobs, opt)
	if err != nil {
		return err
	}
	if errs := res.Errs(); len(errs) > 0 {
		// Surface every failing cell, not just the first — the sweep
		// deliberately continued past each one.
		return errors.Join(errs...)
	}
	if store != nil {
		// Flush the write-behind queue before the summaries go out, so
		// a warm re-run over the same -cache-dir sees every entry.
		store.Close()
	}
	if err := stopProf(); err != nil {
		return err
	}
	return writeSummaries(out, f.JSON, f.CSV, res.Summaries())
}

func cmdPatch(args []string, out io.Writer) error {
	fs, f := cli.Patch()
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return usagef("want exactly one binary")
	}
	if f.Order != 1 && f.Order != 2 {
		return usagef("unsupported hardening order %d: want 1 or 2", f.Order)
	}
	models, err := parseModels(f.Model)
	if err != nil {
		return err
	}
	bin, err := loadBinary(fs.Arg(0))
	if err != nil {
		return err
	}
	store, err := openStore(f.CacheDir)
	if err != nil {
		return err
	}
	quiet := f.JSON || f.CSV
	opt := reinforce.FaulterPatcherOptions{
		Good:     []byte(f.Good),
		Bad:      []byte(f.Bad),
		Models:   models,
		Order:    f.Order,
		MaxPairs: f.MaxPairs,
		Store:    store,
	}
	if !quiet {
		opt.Log = func(s string) { fmt.Fprintln(out, s) }
	}
	res, err := reinforce.HardenFaulterPatcher(bin, opt)
	if err != nil {
		return err
	}
	// Post-pass gate: prove the order-2 pattern invariants on the
	// patched program before anything is written. The driver only
	// escalates sites its pair campaign proved vulnerable, so a
	// converged run may contain no order-2 pattern at all — nothing to
	// verify then.
	if f.Order == 2 && hasOrder2(res.Program) {
		if vfs := static.VerifyBIR(res.Program, birConfig()); len(vfs) > 0 {
			for _, fd := range vfs {
				fmt.Fprintln(os.Stderr, fd.String())
			}
			return fmt.Errorf("static verification failed: %d hardening invariant violation(s)", len(vfs))
		}
	}
	path := f.Out
	if path == "" {
		path = fs.Arg(0) + ".hardened"
	}
	if err := saveBinary(res.Binary, path); err != nil {
		return err
	}
	var emitted string
	if f.Emit != "" {
		digest, err := emit.WriteFile(f.Emit, res.Binary)
		if err != nil {
			return err
		}
		emitted = fmt.Sprintf("emitted %s (digest %s)\n", f.Emit, digest)
	}
	switch {
	case f.JSON:
		return res.WriteJSON(out)
	case f.CSV:
		return res.WriteCSV(out)
	}
	fmt.Fprint(out, res.Summary())
	fmt.Fprintf(out, "wrote %s\n", path)
	fmt.Fprint(out, emitted)
	return nil
}

func cmdHybrid(args []string) error {
	fs, f := cli.Hybrid()
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return usagef("want exactly one binary")
	}
	opt := reinforce.HybridOptions{}
	switch f.Harden {
	case "", "branch":
	case "order2":
		opt.SkipWindow = true
	default:
		return usagef("unknown -harden %q: want branch or order2", f.Harden)
	}
	bin, err := loadBinary(fs.Arg(0))
	if err != nil {
		return err
	}
	res, err := reinforce.HardenHybrid(bin, opt)
	if err != nil {
		return err
	}
	// Post-pass gate: prove the countermeasure invariants on the
	// artifact before it is written anywhere.
	vfs, err := verifyHybridResult(res, opt.SkipWindow)
	if err != nil {
		return err
	}
	if len(vfs) > 0 {
		for _, fd := range vfs {
			fmt.Fprintln(os.Stderr, fd.String())
		}
		return fmt.Errorf("static verification failed: %d hardening invariant violation(s)", len(vfs))
	}
	fmt.Printf("protected %d branches; code size %d -> %d bytes (%.2f%% overhead)\n",
		res.Stats.BranchesProtected, res.OriginalCodeSize, res.Binary.CodeSize(), res.Overhead()*100)
	if opt.SkipWindow {
		fmt.Printf("skip-window: %d blocks instrumented, %d computations duplicated, %d counter increments\n",
			res.SWStats.BlocksInstrumented, res.SWStats.Duplicated, res.SWStats.Increments)
	}
	if f.DumpAsm {
		fmt.Print(res.Asm)
	}
	path := f.Out
	if path == "" {
		path = fs.Arg(0) + ".hybrid"
	}
	if err := saveBinary(res.Binary, path); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	if f.Emit != "" {
		digest, err := emit.WriteFile(f.Emit, res.Binary)
		if err != nil {
			return err
		}
		fmt.Printf("emitted %s (digest %s)\n", f.Emit, digest)
	}
	return nil
}

// cmdOracle runs the differential-execution oracle: with no positional
// arguments, each selected catalog case is hardened through the chosen
// pipeline and differenced against its original across a generated
// input corpus (plus optional fuzz variants); with two binaries, those
// are differenced directly under a case-agnostic corpus. Any divergence
// is a runtime failure (exit 1) after the report is written.
func cmdOracle(args []string, out io.Writer) error {
	fs, f := cli.Oracle()
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 0 && fs.NArg() != 2 {
		return usagef("want no binaries (catalog mode) or exactly two (ORIG HARDENED)")
	}
	if f.N < 1 {
		return usagef("-n %d: want at least one input", f.N)
	}
	opt := oracle.Options{Workers: f.Workers}

	var reports []*oracle.CaseReport
	if fs.NArg() == 2 {
		orig, err := loadBinary(fs.Arg(0))
		if err != nil {
			return err
		}
		hard, err := loadBinary(fs.Arg(1))
		if err != nil {
			return err
		}
		start := time.Now()
		rep := oracle.Diff(orig, hard, oracle.GenericInputs(f.N, f.Seed, 0), opt)
		reports = append(reports, &oracle.CaseReport{
			Case:           filepath.Base(fs.Arg(0)),
			Pipeline:       "external",
			HardenedDigest: hard.Digest(),
			Inputs:         rep.Inputs,
			Divergences:    rep.Divergences,
			Divergent:      rep.Divergent,
			Truncated:      rep.Truncated,
			ElapsedMS:      time.Since(start).Milliseconds(),
		})
	} else {
		selected, err := cases.ParseCases(f.Cases)
		if err != nil {
			return usageError{err: err}
		}
		switch f.Harden {
		case oracle.PipelineHybrid, oracle.PipelineOrder2, oracle.PipelinePatch:
		default:
			return usagef("unknown -harden %q: want %s, %s or %s",
				f.Harden, oracle.PipelineHybrid, oracle.PipelineOrder2, oracle.PipelinePatch)
		}
		for _, c := range selected {
			rep, err := oracle.RunCase(c, f.Harden, f.N, f.Seed, opt)
			if err != nil {
				return err
			}
			reports = append(reports, rep)
			for _, v := range oracle.Variants(c, f.Variants, f.Seed) {
				vrep, err := oracle.RunCase(v, f.Harden, f.N, f.Seed, opt)
				if err != nil {
					return err
				}
				vrep.Variant = true
				reports = append(reports, vrep)
			}
		}
	}

	if err := writeOracleReports(out, f.JSON, f.CSV, reports); err != nil {
		return err
	}
	divergences := 0
	for _, r := range reports {
		divergences += r.Divergences
	}
	if divergences > 0 {
		return fmt.Errorf("%d behavioral divergence(s) between original and hardened binaries", divergences)
	}
	return nil
}

// writeOracleReports renders oracle reports in the selected format:
// JSON, CSV, or a text table followed by itemized divergences.
func writeOracleReports(out io.Writer, asJSON, asCSV bool, reports []*oracle.CaseReport) error {
	if asJSON {
		return report.WriteJSON(out, reports)
	}
	tab := &report.Table{
		Title:  "Differential-execution oracle — original vs hardened, off the fault path",
		Header: []string{"case", "pipeline", "inputs", "divergences", "hardened digest"},
	}
	for _, r := range reports {
		name := r.Case
		if r.Variant {
			name += " (variant)"
		}
		tab.AddRow(name, r.Pipeline, fmt.Sprint(r.Inputs), fmt.Sprint(r.Divergences), r.HardenedDigest[:12])
	}
	if asCSV {
		return tab.WriteCSV(out)
	}
	fmt.Fprint(out, tab)
	for _, r := range reports {
		for _, d := range r.Divergent {
			fmt.Fprintf(out, "  %s: input %d (%s) diverges on %s: original %s, hardened %s\n",
				r.Case, d.Index, d.Input, d.Field, d.Original, d.Hardened)
		}
		if r.Truncated {
			fmt.Fprintf(out, "  %s: divergence list truncated (%d total)\n", r.Case, r.Divergences)
		}
	}
	return nil
}

// cmdVerify runs the static countermeasure verifier: with no
// positional arguments, each selected catalog case is hardened through
// the selected pipelines and its artifact is proven against the
// matching invariants (machine check coverage and — for order2 — the
// IR skip-window structure for the hybrid route; doubled compares and
// the fault-handler shape for the patch route); with a binary
// argument, the machine-level check-coverage proof runs on it
// directly. Findings are a runtime failure (exit 1) after the report
// is written; an empty report is a structural proof, not a sampled
// verdict.
func cmdVerify(args []string, out io.Writer) error {
	fs, f := cli.Verify()
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() > 1 {
		return usagef("want at most one binary")
	}

	var findings []static.Finding
	artifacts := 0
	if fs.NArg() == 1 {
		bin, err := loadBinary(fs.Arg(0))
		if err != nil {
			return err
		}
		a, err := static.Analyze(bin)
		if err != nil {
			return err
		}
		findings = a.CheckCoverage()
		artifacts = 1
	} else {
		selected, err := cases.ParseCases(f.Cases)
		if err != nil {
			return usageError{err: err}
		}
		pipelines, err := verifyPipelines(f.Pipeline)
		if err != nil {
			return err
		}
		for _, c := range selected {
			for _, p := range pipelines {
				pf, err := verifyCase(c, p)
				if err != nil {
					return fmt.Errorf("%s/%s: %w", c.Name, p, err)
				}
				findings = append(findings, tagFindings(c.Name+"."+p, pf)...)
				artifacts++
			}
		}
	}

	switch {
	case f.JSON:
		if err := static.WriteFindingsJSON(out, findings); err != nil {
			return err
		}
	case f.CSV:
		if err := static.WriteFindingsCSV(out, findings); err != nil {
			return err
		}
	default:
		for _, fd := range findings {
			fmt.Fprintln(out, fd.String())
		}
		fmt.Fprintf(out, "verified %d artifact(s): %d finding(s)\n", artifacts, len(findings))
	}
	if len(findings) > 0 {
		return fmt.Errorf("%d hardening invariant violation(s)", len(findings))
	}
	return nil
}

// verifyPipelines expands the -pipeline flag value.
func verifyPipelines(s string) ([]string, error) {
	switch s {
	case "all":
		return []string{"hybrid", "order2", "patch"}, nil
	case "hybrid", "order2", "patch":
		return []string{s}, nil
	}
	return nil, usagef("unknown -pipeline %q: want hybrid, order2, patch or all", s)
}

// verifyCase hardens one catalog case through one pipeline and proves
// the invariants that pipeline promises.
func verifyCase(c *cases.Case, pipeline string) ([]static.Finding, error) {
	bin, err := c.Build()
	if err != nil {
		return nil, err
	}
	switch pipeline {
	case "hybrid", "order2":
		res, err := reinforce.HardenHybrid(bin, reinforce.HybridOptions{SkipWindow: pipeline == "order2"})
		if err != nil {
			return nil, err
		}
		return verifyHybridResult(res, pipeline == "order2")
	case "patch":
		// The blanket order-2 patterns exercise every pattern shape
		// without a simulation campaign; the Faulter+Patcher driver
		// gates its own output (see cmdPatch).
		res, err := patch.HardenAll(bin, patch.StyleOrder2)
		if err != nil {
			return nil, err
		}
		return static.VerifyBIR(res.Program, birConfig()), nil
	}
	return nil, usagef("unknown pipeline %q", pipeline)
}

// verifyHybridResult proves a hybrid artifact: the machine-level check
// coverage of the lowered binary and, when the skip-window pass ran,
// the IR-level spacing/counter/two-stage structure of the module it
// was lowered from.
func verifyHybridResult(res *reinforce.HybridResult, skipWindow bool) ([]static.Finding, error) {
	a, err := static.Analyze(res.Binary)
	if err != nil {
		return nil, err
	}
	findings := a.CheckCoverage()
	if skipWindow {
		findings = append(findings, static.VerifyIR(res.Module, irConfig())...)
	}
	return findings, nil
}

// irConfig and birConfig bind the verifier to the toolchain's actual
// cell names, skip window, and fault-handler label.
func irConfig() static.IRConfig {
	return static.IRConfig{OkCell: passes.CellSWOk, CtrCell: passes.CellStepCtr, Window: passes.DefaultSkipWindow}
}

func birConfig() static.BIRConfig {
	return static.BIRConfig{FaultHandler: patch.FaulthandlerLabel}
}

// hasOrder2 reports whether any instruction carries an order-2
// pattern mark.
func hasOrder2(p *bir.Program) bool {
	for _, b := range p.Blocks {
		for i := range b.Insts {
			if b.Insts[i].Order2 {
				return true
			}
		}
	}
	return false
}

// tagFindings prefixes each finding's location with the artifact it
// came from (case.pipeline).
func tagFindings(tag string, fs []static.Finding) []static.Finding {
	out := make([]static.Finding, len(fs))
	for i, f := range fs {
		if f.Where == "" {
			f.Where = tag
		} else {
			f.Where = tag + "/" + f.Where
		}
		out[i] = f
	}
	return out
}

func cmdCases(args []string) error {
	fs, f := cli.Cases()
	if err := parse(fs, args); err != nil {
		return err
	}
	for _, c := range cases.Corpus() {
		srcPath := filepath.Join(f.Dir, c.Name+".s")
		if err := os.WriteFile(srcPath, []byte(c.Source), 0o644); err != nil {
			return err
		}
		bin, err := c.Build()
		if err != nil {
			return err
		}
		binPath := filepath.Join(f.Dir, c.Name+".elf")
		if err := saveBinary(bin, binPath); err != nil {
			return err
		}
		goodPath := filepath.Join(f.Dir, c.Name+".good")
		if err := os.WriteFile(goodPath, c.Good, 0o644); err != nil {
			return err
		}
		badPath := filepath.Join(f.Dir, c.Name+".bad")
		if err := os.WriteFile(badPath, c.Bad, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s, %s, %s, %s\n", srcPath, binPath, goodPath, badPath)
	}
	return nil
}

func cmdCFG(args []string) error {
	fs, f := cli.CFG()
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return usagef("want exactly one binary")
	}
	bin, err := loadBinary(fs.Arg(0))
	if err != nil {
		return err
	}
	dot, err := reinforce.CFGDot(bin, f.Harden)
	if err != nil {
		return err
	}
	fmt.Print(dot)
	return nil
}

func cmdExperiments(args []string) error {
	fs, f := cli.Experiments()
	if err := parse(fs, args); err != nil {
		return err
	}

	type exp struct {
		name string
		run  func() (*report.Table, error)
	}
	all := []exp{
		{"table4", func() (*report.Table, error) { t, _, err := experiments.TableIV(); return t, err }},
		{"table5", func() (*report.Table, error) { t, _, err := experiments.TableV(); return t, err }},
		{"skip", func() (*report.Table, error) { t, _, err := experiments.ClaimSkip(); return t, err }},
		{"bitflip", func() (*report.Table, error) { t, _, err := experiments.ClaimBitflip(); return t, err }},
		{"class", func() (*report.Table, error) { t, _, err := experiments.ClaimClass(); return t, err }},
		{"dup", func() (*report.Table, error) { t, _, err := experiments.ClaimDup(); return t, err }},
		{"figures", func() (*report.Table, error) { t, _, err := experiments.Figures(); return t, err }},
		{"beyond", func() (*report.Table, error) { t, _, err := experiments.TableBeyond(); return t, err }},
		{"beyond2", func() (*report.Table, error) { t, _, err := experiments.TableBeyond2(); return t, err }},
		{"beyond3", func() (*report.Table, error) { t, _, err := experiments.TableBeyond3(); return t, err }},
		{"corpus", func() (*report.Table, error) { t, _, err := experiments.TableCorpus(); return t, err }},
		{"variants", func() (*report.Table, error) { t, _, err := experiments.TableVariants(); return t, err }},
	}
	ran := 0
	for _, e := range all {
		if f.Only != "" && e.name != f.Only {
			continue
		}
		tab, err := e.run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Println(tab)
		ran++
	}
	if ran == 0 {
		return usagef("unknown experiment %q", f.Only)
	}
	return nil
}

func cmdPipeline() error {
	fmt.Print(strings.TrimLeft(`
Rewrite-to-reinforce pipelines (paper Fig. 2 and 3)

Faulter+Patcher (reassembleable disassembly, targeted):

    binary ──▶ faulter (emulated fault campaign: skip / bit flip)
                  │ list of successful faults
                  ▼
               patcher (Tables I-III local patterns at each site)
                  │ reassemble
                  ▼
          patched binary ──▶ faulter again ... until no fault remains
                             or none is fixable (fixed point)
                  │ with -order 2: fault *pairs* next, escalating the
                  ▼ sites of successful pairs to order-2 patterns
          multi-fault-hardened binary

Hybrid compiler-binary (full translation, holistic):

    binary ──▶ lift to compiler IR (CPU cells, explicit flags)
                  │ cleanup passes (cellprop, const fold, flag DCE)
                  ▼
               conditional branch hardening pass (§V-B, Alg. 1, Fig. 5):
                  per-block UIDs, duplicated edge checksums D1/D2,
                  re-evaluated comparison C2, per-edge validation chains
                  │ with -harden order2: the skip-window pass next —
                  │ spaced duplicates, step counters, chained checks
                  │ countermeasure-safe cleanup
                  ▼
               lower to x86-64 (cells in .vcpu, cmp/br fusion)
                  │
                  ▼
          hardened binary ──▶ same faulter verifies the result
`, "\n"))
	return nil
}
