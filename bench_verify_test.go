// Benchmark for the static countermeasure verifier: full catalog
// verification (CFG recovery, dataflow, check-coverage proof) over the
// Faulter+Patcher-hardened corpus. This is the price the post-pass
// gates add to `r2r patch` and `r2r hybrid`, and the baseline the
// BENCH_prune.json trajectory tracks next to the pair-sweep numbers
// the StaticInert screen feeds.
package reinforce

import (
	"testing"

	"github.com/r2r/reinforce/internal/cases"
	"github.com/r2r/reinforce/internal/elf"
	"github.com/r2r/reinforce/internal/fault"
	"github.com/r2r/reinforce/internal/harden"
	"github.com/r2r/reinforce/internal/static"
)

// BenchmarkVerifyCatalog measures Analyze + CheckCoverage across every
// hardened corpus binary per iteration. Hardening happens once in
// setup; the timed loop is purely the verifier, so artifacts/s is the
// cost of a clean `r2r verify` verdict.
func BenchmarkVerifyCatalog(b *testing.B) {
	var bins []*elf.Binary
	for _, c := range cases.Corpus() {
		res, err := harden.FaulterPatcher(c.MustBuild(), harden.FaulterPatcherOptions{
			Good: c.Good, Bad: c.Bad, Models: []fault.Model{fault.ModelSkip},
		})
		if err != nil {
			b.Fatal(err)
		}
		bins = append(bins, res.Binary)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, bin := range bins {
			an, err := static.Analyze(bin)
			if err != nil {
				b.Fatal(err)
			}
			if fs := an.CheckCoverage(); len(fs) != 0 {
				b.Fatalf("hardened catalog binary failed verification: %v", fs)
			}
		}
	}
	b.ReportMetric(float64(len(bins)*b.N)/b.Elapsed().Seconds(), "artifacts/s")
}
