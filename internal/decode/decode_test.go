package decode

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"github.com/r2r/reinforce/internal/encode"
	"github.com/r2r/reinforce/internal/isa"
)

func mustDecode(t *testing.T, b []byte) isa.Inst {
	t.Helper()
	in, err := Decode(b, 0x1000)
	if err != nil {
		t.Fatalf("Decode(% X): %v", b, err)
	}
	return in
}

func TestDecodeGolden(t *testing.T) {
	tests := []struct {
		bytes []byte
		want  string // Intel-syntax rendering
	}{
		{[]byte{0x48, 0x89, 0xD8}, "mov rax, rbx"},
		{[]byte{0x48, 0x8B, 0x43, 0x04}, "mov rax, qword ptr [rbx+4]"},
		{[]byte{0x48, 0x3B, 0x59, 0x04}, "cmp rbx, qword ptr [rcx+4]"},
		{[]byte{0x53}, "push rbx"},
		{[]byte{0x41, 0x50}, "push r8"},
		{[]byte{0x9C}, "pushfq"},
		{[]byte{0x48, 0xC7, 0xC0, 0x3C, 0x00, 0x00, 0x00}, "mov rax, 60"},
		{[]byte{0x48, 0x31, 0xC0}, "xor rax, rax"},
		{[]byte{0x48, 0x8D, 0x64, 0x24, 0x80}, "lea rsp, qword ptr [rsp-128]"},
		{[]byte{0x0F, 0x94, 0xC0}, "sete al"},
		{[]byte{0x80, 0xF9, 0x01}, "cmp cl, 1"},
		{[]byte{0x48, 0x0F, 0xB6, 0xC1}, "movzx rax, cl"},
		{[]byte{0x0F, 0x05}, "syscall"},
		{[]byte{0xC3}, "ret"},
		{[]byte{0x90}, "nop"},
		{[]byte{0xF4}, "hlt"},
		{[]byte{0x0F, 0x0B}, "ud2"},
		{[]byte{0x48, 0xFF, 0xC9}, "dec rcx"},
		{[]byte{0x48, 0xF7, 0xD0}, "not rax"},
		{[]byte{0x49, 0x8B, 0x45, 0x00}, "mov rax, qword ptr [r13]"},
		{[]byte{0xB8, 0x01, 0x00, 0x00, 0x00}, "mov eax, 1"},
		{[]byte{0x31, 0xC0}, "xor eax, eax"},
		{[]byte{0x3C, 0x05}, "cmp al, 5"},                           // ALU form 4: AL, imm8
		{[]byte{0xA8, 0x01}, "test al, 1"},                          // TEST AL, imm8
		{[]byte{0x48, 0x3D, 0x10, 0x00, 0x00, 0x00}, "cmp rax, 16"}, // form 5
	}
	for _, tt := range tests {
		in := mustDecode(t, tt.bytes)
		if got := in.String(); got != tt.want {
			t.Errorf("Decode(% X) = %q, want %q", tt.bytes, got, tt.want)
		}
		if in.EncLen != len(tt.bytes) {
			t.Errorf("Decode(% X): EncLen = %d, want %d", tt.bytes, in.EncLen, len(tt.bytes))
		}
	}
}

func TestDecodeBranchTarget(t *testing.T) {
	// jmp rel32 +0x10 at 0x1000: target = 0x1000 + 5 + 0x10.
	in := mustDecode(t, []byte{0xE9, 0x10, 0x00, 0x00, 0x00})
	if in.Target != 0x1015 {
		t.Errorf("jmp target = %#x, want 0x1015", in.Target)
	}
	// je rel8 -2 at 0x1000: target = 0x1000 + 2 - 2 = 0x1000.
	in = mustDecode(t, []byte{0x74, 0xFE})
	if in.Target != 0x1000 {
		t.Errorf("je target = %#x, want 0x1000", in.Target)
	}
	if in.Op != isa.JCC || in.Cond != isa.CondE {
		t.Errorf("je decoded as %v/%v", in.Op, in.Cond)
	}
	// call rel32 -5 at 0x1000: target = 0x1000.
	in = mustDecode(t, []byte{0xE8, 0xFB, 0xFF, 0xFF, 0xFF})
	if in.Target != 0x1000 {
		t.Errorf("call target = %#x, want 0x1000", in.Target)
	}
}

func TestDecodeErrors(t *testing.T) {
	tests := []struct {
		name  string
		bytes []byte
		want  error
	}{
		{"empty", nil, ErrTruncated},
		{"truncated modrm", []byte{0x48, 0x8B}, ErrTruncated},
		{"truncated imm", []byte{0x48, 0xC7, 0xC0, 0x3C}, ErrTruncated},
		{"invalid opcode 06", []byte{0x06}, ErrInvalidOpcode},
		{"operand-size prefix", []byte{0x66, 0x90}, ErrUnsupported},
		{"lock prefix", []byte{0xF0, 0x48, 0x89, 0xD8}, ErrUnsupported},
		{"rep prefix", []byte{0xF3, 0x90}, ErrUnsupported},
		{"double REX", []byte{0x48, 0x48, 0x89, 0xD8}, ErrInvalidOpcode},
		{"indirect call", []byte{0xFF, 0xD0}, ErrUnsupported},
		{"indirect jmp", []byte{0xFF, 0xE0}, ErrUnsupported},
		{"int3", []byte{0xCC}, ErrInvalidOpcode},
		{"high byte reg rm", []byte{0x88, 0xE0}, ErrUnsupported},  // mov al, ah-ish
		{"high byte reg reg", []byte{0x88, 0xC4}, ErrUnsupported}, // mov ah, al-ish
		{"0f invalid", []byte{0x0F, 0xFF}, ErrInvalidOpcode},
		{"group3 /1", []byte{0xF7, 0xC8}, ErrUnsupported},
		{"shift /0", []byte{0xC1, 0xC0, 0x01}, ErrUnsupported},
		{"group11 /1", []byte{0xC7, 0xC8, 0x00, 0x00, 0x00, 0x00}, ErrInvalidOpcode},
		{"rex nop (xchg)", []byte{0x41, 0x90}, ErrInvalidOpcode},
	}
	for _, tt := range tests {
		_, err := Decode(tt.bytes, 0)
		if !errors.Is(err, tt.want) {
			t.Errorf("%s: err = %v, want %v", tt.name, err, tt.want)
		}
	}
}

// stripMeta clears decoder metadata so decoded instructions can be
// compared against hand-built ones.
func stripMeta(in isa.Inst) isa.Inst {
	in.Addr = 0
	in.EncLen = 0
	in.Target = 0
	return in
}

// TestRoundTrip checks encode->decode identity over a hand-picked corpus
// covering every supported form.
func TestRoundTrip(t *testing.T) {
	corpus := []isa.Inst{
		isa.NewInst(isa.MOV, isa.R(isa.RAX), isa.R(isa.R15)),
		isa.NewInst(isa.MOV, isa.R(isa.R12), isa.M(isa.RSP, 24)),
		isa.NewInst(isa.MOV, isa.M(isa.R13, -7), isa.R(isa.RBP)),
		isa.NewInst(isa.MOV, isa.R(isa.RSI), isa.Imm(-1)),
		isa.NewInst(isa.MOV, isa.R(isa.RSI), isa.Imm(1<<40)),
		isa.NewInst(isa.MOV, isa.Rb(isa.RDI), isa.Imm8(0x7F)),
		isa.NewInst(isa.MOV, isa.M8(isa.RAX, 1), isa.Imm8(-1)),
		isa.NewInst(isa.MOV, isa.M(isa.RDI, 0), isa.Imm(123456)),
		isa.NewInst(isa.MOV, isa.R(isa.RDX), isa.MRIP(-64)),
		isa.NewInst(isa.MOVZX, isa.R(isa.R9), isa.Rb(isa.R10)),
		isa.NewInst(isa.MOVSX, isa.R(isa.RAX), isa.M8(isa.RBX, 3)),
		isa.NewInst(isa.LEA, isa.R(isa.RSP), isa.M(isa.RSP, -128)),
		isa.NewInst(isa.LEA, isa.R(isa.RAX), isa.MSIB(isa.RBX, isa.R14, 4, 100)),
		isa.NewInst(isa.ADD, isa.R(isa.RAX), isa.R(isa.RBX)),
		isa.NewInst(isa.ADC, isa.R(isa.RAX), isa.R(isa.RBX)),
		isa.NewInst(isa.SBB, isa.R(isa.RCX), isa.M(isa.RDX, 8)),
		isa.NewInst(isa.SUB, isa.R(isa.RSP), isa.Imm(4096)),
		isa.NewInst(isa.XOR, isa.M(isa.RBX, 0), isa.R(isa.RCX)),
		isa.NewInst(isa.AND, isa.R(isa.R8), isa.Imm(255)),
		isa.NewInst(isa.OR, isa.R(isa.R9), isa.Imm(-2)),
		isa.NewInst(isa.CMP, isa.Rb(isa.RCX), isa.Imm8(1)),
		isa.NewInst(isa.CMP, isa.M8(isa.R13, 0), isa.Imm8(3)),
		isa.NewInst(isa.TEST, isa.R(isa.RDI), isa.R(isa.RDI)),
		isa.NewInst(isa.TEST, isa.R(isa.RDI), isa.Imm(7)),
		isa.NewInst(isa.NOT, isa.R(isa.R11)),
		isa.NewInst(isa.NEG, isa.M(isa.RSI, 16)),
		isa.NewInst(isa.INC, isa.R(isa.RAX)),
		isa.NewInst(isa.DEC, isa.M(isa.RBP, -8)),
		isa.NewInst(isa.SHL, isa.R(isa.RAX), isa.Imm8(63)),
		isa.NewInst(isa.SHR, isa.R(isa.RBX), isa.Imm8(7)),
		isa.NewInst(isa.SAR, isa.R(isa.RCX), isa.Imm8(1)),
		isa.NewInst(isa.IMUL, isa.R(isa.RAX), isa.M(isa.RBX, 0)),
		isa.NewInst(isa.PUSH, isa.R(isa.RBP)),
		isa.NewInst(isa.POP, isa.R(isa.R15)),
		isa.NewInst(isa.PUSHFQ),
		isa.NewInst(isa.POPFQ),
		isa.NewInst(isa.JMP, isa.Imm(1234)),
		isa.NewJcc(isa.CondLE, -1234),
		isa.NewInst(isa.CALL, isa.Imm(0)),
		isa.NewInst(isa.RET),
		isa.NewSetcc(isa.CondA, isa.RDX),
		isa.NewSetcc(isa.CondNE, isa.RSI),
		isa.NewInst(isa.SYSCALL),
		isa.NewInst(isa.NOP),
		isa.NewInst(isa.HLT),
		isa.NewInst(isa.UD2),
	}
	for _, in := range corpus {
		b, err := encode.Encode(in)
		if err != nil {
			t.Errorf("encode %q: %v", in.String(), err)
			continue
		}
		got, err := Decode(b, 0)
		if err != nil {
			t.Errorf("decode %q (% X): %v", in.String(), b, err)
			continue
		}
		if !reflect.DeepEqual(stripMeta(got), in) {
			t.Errorf("round trip %q: got %+v, want %+v (bytes % X)", in.String(), stripMeta(got), in, b)
		}
	}
}

// randInst builds a random encodable instruction in canonical form.
func randInst(r *rand.Rand) isa.Inst {
	anyReg := func() isa.Reg { return isa.Reg(r.Intn(16)) }
	randMem := func(width uint8) isa.Operand {
		m := isa.Mem{Base: isa.NoReg, Index: isa.NoReg, Scale: 1}
		switch r.Intn(4) {
		case 0: // RIP-relative
			m.RIPRel = true
			m.Disp = int32(r.Int63())
		case 1: // base only
			m.Base = anyReg()
			m.Disp = int32(r.Int63())
		case 2: // base+index
			m.Base = anyReg()
			for {
				m.Index = anyReg()
				if m.Index != isa.RSP {
					break
				}
			}
			m.Scale = 1 << r.Intn(4)
			m.Disp = int32(r.Int63())
		case 3: // small disp to exercise disp8
			m.Base = anyReg()
			m.Disp = int32(r.Intn(256) - 128)
		}
		return isa.Operand{Kind: isa.KindMem, Width: width, Mem: m}
	}

	switch r.Intn(12) {
	case 0: // mov reg64, imm
		return isa.NewInst(isa.MOV, isa.R(anyReg()), isa.Imm(r.Int63()-r.Int63()))
	case 1: // mov reg/mem 64
		if r.Intn(2) == 0 {
			return isa.NewInst(isa.MOV, isa.R(anyReg()), randMem(8))
		}
		return isa.NewInst(isa.MOV, randMem(8), isa.R(anyReg()))
	case 2: // ALU reg/reg or reg/mem, 64-bit
		op := isa.ADD + isa.Op(r.Intn(8))
		if r.Intn(2) == 0 {
			return isa.NewInst(op, isa.R(anyReg()), isa.R(anyReg()))
		}
		return isa.NewInst(op, randMem(8), isa.R(anyReg()))
	case 3: // ALU imm
		op := isa.ADD + isa.Op(r.Intn(8))
		return isa.NewInst(op, isa.R(anyReg()), isa.Imm(int64(int32(r.Uint32()))))
	case 4: // byte ALU
		op := isa.ADD + isa.Op(r.Intn(8))
		return isa.NewInst(op, isa.Rb(anyReg()), isa.Imm8(int64(r.Intn(256)-128)))
	case 5: // push/pop
		if r.Intn(2) == 0 {
			return isa.NewInst(isa.PUSH, isa.R(anyReg()))
		}
		return isa.NewInst(isa.POP, isa.R(anyReg()))
	case 6: // branches
		rel := int64(int32(r.Uint32()))
		switch r.Intn(3) {
		case 0:
			return isa.NewInst(isa.JMP, isa.Imm(rel))
		case 1:
			return isa.NewInst(isa.CALL, isa.Imm(rel))
		default:
			return isa.NewJcc(isa.Cond(r.Intn(16)), rel)
		}
	case 7: // setcc
		return isa.NewSetcc(isa.Cond(r.Intn(16)), anyReg())
	case 8: // shifts
		ops := []isa.Op{isa.SHL, isa.SHR, isa.SAR}
		return isa.NewInst(ops[r.Intn(3)], isa.R(anyReg()), isa.Imm8(int64(r.Intn(64))))
	case 9: // unary
		ops := []isa.Op{isa.NOT, isa.NEG, isa.INC, isa.DEC}
		if r.Intn(2) == 0 {
			return isa.NewInst(ops[r.Intn(4)], isa.R(anyReg()))
		}
		return isa.NewInst(ops[r.Intn(4)], randMem(8))
	case 10: // movzx/movsx
		ops := []isa.Op{isa.MOVZX, isa.MOVSX}
		if r.Intn(2) == 0 {
			return isa.NewInst(ops[r.Intn(2)], isa.R(anyReg()), isa.Rb(anyReg()))
		}
		return isa.NewInst(ops[r.Intn(2)], isa.R(anyReg()), randMem(1))
	default: // lea
		return isa.NewInst(isa.LEA, isa.R(anyReg()), randMem(8))
	}
}

// TestRoundTripProperty is the encode->decode property test over a large
// random instruction population.
func TestRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(20211128)) // arXiv submission date as seed
	const n = 20000
	for i := 0; i < n; i++ {
		in := randInst(r)
		b, err := encode.Encode(in)
		if err != nil {
			t.Fatalf("#%d encode %q: %v", i, in.String(), err)
		}
		got, err := Decode(b, 0)
		if err != nil {
			t.Fatalf("#%d decode %q (% X): %v", i, in.String(), b, err)
		}
		if !reflect.DeepEqual(stripMeta(got), in) {
			t.Fatalf("#%d round trip %q: got %+v, want %+v (bytes % X)", i, in.String(), stripMeta(got), in, b)
		}
	}
}

// TestDecodeTotality feeds random bytes to the decoder and requires it
// to terminate without panicking, either decoding or erroring.
func TestDecodeTotality(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	buf := make([]byte, 16)
	for i := 0; i < 50000; i++ {
		r.Read(buf)
		in, err := Decode(buf, 0x400000)
		if err == nil && in.EncLen == 0 {
			t.Fatalf("decoded zero-length instruction from % X", buf)
		}
	}
}

// TestDecodeLengthConsistency: re-decoding the encoded bytes of a decoded
// instruction must give the same length (decode is deterministic on its
// own output).
func TestDecodeLengthConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		in := randInst(r)
		b := encode.MustEncode(in)
		d1, err := Decode(b, 0)
		if err != nil {
			t.Fatal(err)
		}
		if d1.EncLen != len(b) {
			t.Fatalf("EncLen %d != len %d for %q", d1.EncLen, len(b), in.String())
		}
	}
}
