// Package decode disassembles x86-64 machine code in the supported
// subset back into isa.Inst values.
//
// The decoder is deliberately strict but total: any byte sequence either
// decodes to a supported instruction with an exact length, or returns an
// error. This totality is what gives the single-bit-flip fault model its
// semantics — a flipped instruction byte either re-decodes into a
// different valid instruction (silent behavioural change) or raises a
// decode fault (program crash), just as on hardware.
package decode

import (
	"errors"
	"fmt"

	"github.com/r2r/reinforce/internal/isa"
)

// Errors returned by Decode. All of them mean "the machine would fault".
var (
	ErrTruncated     = errors.New("decode: truncated instruction")
	ErrInvalidOpcode = errors.New("decode: invalid opcode")
	ErrUnsupported   = errors.New("decode: unsupported instruction")
)

// MaxInstLen is the architectural maximum x86 instruction length.
const MaxInstLen = 15

type cursor struct {
	code []byte
	pos  int
}

func (c *cursor) byte() (byte, error) {
	if c.pos >= len(c.code) || c.pos >= MaxInstLen {
		return 0, ErrTruncated
	}
	b := c.code[c.pos]
	c.pos++
	return b, nil
}

func (c *cursor) int8() (int64, error) {
	b, err := c.byte()
	return int64(int8(b)), err
}

func (c *cursor) int32() (int64, error) {
	var v uint32
	for i := 0; i < 4; i++ {
		b, err := c.byte()
		if err != nil {
			return 0, err
		}
		v |= uint32(b) << (8 * i)
	}
	return int64(int32(v)), nil
}

func (c *cursor) int64() (int64, error) {
	var v uint64
	for i := 0; i < 8; i++ {
		b, err := c.byte()
		if err != nil {
			return 0, err
		}
		v |= uint64(b) << (8 * i)
	}
	return int64(v), nil
}

// rexInfo holds a decoded REX prefix.
type rexInfo struct {
	present    bool
	w, r, x, b bool
}

// Decode decodes one instruction at the start of code, assumed to live
// at virtual address addr. It fills Addr, EncLen and, for branches,
// Target.
func Decode(code []byte, addr uint64) (isa.Inst, error) {
	c := &cursor{code: code}
	var rex rexInfo

	op, err := c.byte()
	if err != nil {
		return isa.Inst{}, err
	}

	// Legacy prefixes we do not support: operand/address size, segment
	// overrides, LOCK, REP. They decode as faults in this subset.
	switch op {
	case 0x66, 0x67, 0x2E, 0x36, 0x3E, 0x26, 0x64, 0x65, 0xF0, 0xF2, 0xF3:
		return isa.Inst{}, fmt.Errorf("%w: prefix %#02x", ErrUnsupported, op)
	}

	if op >= 0x40 && op <= 0x4F {
		rex = rexInfo{present: true, w: op&8 != 0, r: op&4 != 0, x: op&2 != 0, b: op&1 != 0}
		op, err = c.byte()
		if err != nil {
			return isa.Inst{}, err
		}
		// A second REX (or any prefix after REX) is invalid.
		if op >= 0x40 && op <= 0x4F {
			return isa.Inst{}, fmt.Errorf("%w: repeated REX", ErrInvalidOpcode)
		}
	}

	in, err := decodeOpcode(c, rex, op)
	if err != nil {
		return isa.Inst{}, err
	}
	in.Addr = addr
	in.EncLen = c.pos
	if in.Op.IsBranch() {
		in.Target = addr + uint64(c.pos) + uint64(in.Dst.Imm)
	}
	return in, nil
}

// gprWidth gives the operand width for non-byte register ops.
func gprWidth(rex rexInfo) uint8 {
	if rex.w {
		return 8
	}
	return 4
}

func decodeOpcode(c *cursor, rex rexInfo, op byte) (isa.Inst, error) {
	switch {
	case op == 0x0F:
		return decode0F(c, rex)

	// ALU group: 00-3B in blocks of 8 per operation.
	case op < 0x40 && op&7 <= 5:
		return decodeALU(c, rex, op)

	case op >= 0x50 && op <= 0x57:
		r := isa.Reg(op-0x50) | rexBReg(rex)
		return isa.NewInst(isa.PUSH, isa.R(r)), nil
	case op >= 0x58 && op <= 0x5F:
		r := isa.Reg(op-0x58) | rexBReg(rex)
		return isa.NewInst(isa.POP, isa.R(r)), nil

	case op >= 0x70 && op <= 0x7F:
		rel, err := c.int8()
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.NewJcc(isa.Cond(op&0x0F), rel), nil

	case op == 0x80, op == 0x81, op == 0x83:
		return decodeALUImm(c, rex, op)

	case op == 0x84, op == 0x85:
		w := uint8(1)
		if op == 0x85 {
			w = gprWidth(rex)
		}
		m, err := decodeModRM(c, rex, w)
		if err != nil {
			return isa.Inst{}, err
		}
		if err := m.checkReg8(w); err != nil {
			return isa.Inst{}, err
		}
		return isa.NewInst(isa.TEST, m.rm, m.regOperand(w)), nil

	case op == 0x88, op == 0x89:
		w := uint8(1)
		if op == 0x89 {
			w = gprWidth(rex)
		}
		m, err := decodeModRM(c, rex, w)
		if err != nil {
			return isa.Inst{}, err
		}
		if err := m.checkReg8(w); err != nil {
			return isa.Inst{}, err
		}
		return isa.NewInst(isa.MOV, m.rm, m.regOperand(w)), nil

	case op == 0x8A, op == 0x8B:
		w := uint8(1)
		if op == 0x8B {
			w = gprWidth(rex)
		}
		m, err := decodeModRM(c, rex, w)
		if err != nil {
			return isa.Inst{}, err
		}
		if err := m.checkReg8(w); err != nil {
			return isa.Inst{}, err
		}
		return isa.NewInst(isa.MOV, m.regOperand(w), m.rm), nil

	case op == 0x8D:
		m, err := decodeModRM(c, rex, 8)
		if err != nil {
			return isa.Inst{}, err
		}
		if m.rm.Kind != isa.KindMem {
			return isa.Inst{}, fmt.Errorf("%w: lea with register source", ErrInvalidOpcode)
		}
		return isa.NewInst(isa.LEA, m.regOperand(8), m.rm), nil

	case op == 0x90 && !rex.present:
		return isa.NewInst(isa.NOP), nil

	case op == 0x9C:
		return isa.NewInst(isa.PUSHFQ), nil
	case op == 0x9D:
		return isa.NewInst(isa.POPFQ), nil

	case op == 0xA8: // TEST AL, imm8
		imm, err := c.int8()
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.NewInst(isa.TEST, isa.Rb(isa.RAX), isa.Imm8(imm)), nil
	case op == 0xA9: // TEST eAX/rAX, imm32
		imm, err := c.int32()
		if err != nil {
			return isa.Inst{}, err
		}
		w := gprWidth(rex)
		dst := isa.R(isa.RAX)
		dst.Width = w
		src := isa.Imm(imm)
		src.Width = w
		return isa.NewInst(isa.TEST, dst, src), nil

	case op >= 0xB0 && op <= 0xB7:
		imm, err := c.int8()
		if err != nil {
			return isa.Inst{}, err
		}
		r := isa.Reg(op-0xB0) | rexBReg(rex)
		if !rex.present && r >= isa.RSP && r <= isa.RDI {
			return isa.Inst{}, fmt.Errorf("%w: high-byte registers", ErrUnsupported)
		}
		return isa.NewInst(isa.MOV, isa.Rb(r), isa.Imm8(imm)), nil

	case op >= 0xB8 && op <= 0xBF:
		r := isa.Reg(op-0xB8) | rexBReg(rex)
		if rex.w {
			imm, err := c.int64()
			if err != nil {
				return isa.Inst{}, err
			}
			return isa.NewInst(isa.MOV, isa.R(r), isa.Imm(imm)), nil
		}
		imm, err := c.int32()
		if err != nil {
			return isa.Inst{}, err
		}
		dst := isa.Rd(r)
		src := isa.Imm(imm)
		src.Width = 4
		return isa.NewInst(isa.MOV, dst, src), nil

	case op == 0xC0, op == 0xC1, op == 0xD0, op == 0xD1:
		return decodeShift(c, rex, op)

	case op == 0xC3:
		return isa.NewInst(isa.RET), nil

	case op == 0xC6, op == 0xC7:
		w := uint8(1)
		if op == 0xC7 {
			w = gprWidth(rex)
		}
		m, err := decodeModRM(c, rex, w)
		if err != nil {
			return isa.Inst{}, err
		}
		if m.reg != 0 {
			return isa.Inst{}, fmt.Errorf("%w: group 11 /%d", ErrInvalidOpcode, m.reg)
		}
		var imm int64
		if w == 1 {
			imm, err = c.int8()
		} else {
			imm, err = c.int32()
		}
		if err != nil {
			return isa.Inst{}, err
		}
		src := isa.Imm(imm)
		src.Width = w
		return isa.NewInst(isa.MOV, m.rm, src), nil

	case op == 0xE8, op == 0xE9:
		rel, err := c.int32()
		if err != nil {
			return isa.Inst{}, err
		}
		mnem := isa.CALL
		if op == 0xE9 {
			mnem = isa.JMP
		}
		return isa.NewInst(mnem, isa.Imm(rel)), nil

	case op == 0xEB:
		rel, err := c.int8()
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.NewInst(isa.JMP, isa.Imm(rel)), nil

	case op == 0xF4:
		return isa.NewInst(isa.HLT), nil

	case op == 0xF6, op == 0xF7:
		return decodeGroup3(c, rex, op)

	case op == 0xFE, op == 0xFF:
		return decodeGroup45(c, rex, op)
	}
	return isa.Inst{}, fmt.Errorf("%w: %#02x", ErrInvalidOpcode, op)
}

func rexBReg(rex rexInfo) isa.Reg {
	if rex.b {
		return 8
	}
	return 0
}

func decode0F(c *cursor, rex rexInfo) (isa.Inst, error) {
	op, err := c.byte()
	if err != nil {
		return isa.Inst{}, err
	}
	switch {
	case op == 0x05:
		return isa.NewInst(isa.SYSCALL), nil
	case op == 0x0B:
		return isa.NewInst(isa.UD2), nil
	case op >= 0x80 && op <= 0x8F:
		rel, err := c.int32()
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.NewJcc(isa.Cond(op&0x0F), rel), nil
	case op >= 0x90 && op <= 0x9F:
		m, err := decodeModRM(c, rex, 1)
		if err != nil {
			return isa.Inst{}, err
		}
		in := isa.Inst{Op: isa.SETCC, Cond: isa.Cond(op & 0x0F), Dst: m.rm}
		return in, nil
	case op == 0xAF:
		w := gprWidth(rex)
		m, err := decodeModRM(c, rex, w)
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.NewInst(isa.IMUL, m.regOperand(w), m.rm), nil
	case op == 0xB6, op == 0xBE:
		w := gprWidth(rex)
		m, err := decodeModRM(c, rex, 1) // source is 8-bit
		if err != nil {
			return isa.Inst{}, err
		}
		mnem := isa.MOVZX
		if op == 0xBE {
			mnem = isa.MOVSX
		}
		return isa.NewInst(mnem, m.regOperand(w), m.rm), nil
	}
	return isa.Inst{}, fmt.Errorf("%w: 0f %#02x", ErrInvalidOpcode, op)
}

func decodeALU(c *cursor, rex rexInfo, op byte) (isa.Inst, error) {
	digit := op >> 3
	mnem := isa.ADD + isa.Op(digit)
	form := op & 7
	switch form {
	case 0, 1: // r/m, r
		w := uint8(1)
		if form == 1 {
			w = gprWidth(rex)
		}
		m, err := decodeModRM(c, rex, w)
		if err != nil {
			return isa.Inst{}, err
		}
		if err := m.checkReg8(w); err != nil {
			return isa.Inst{}, err
		}
		return isa.NewInst(mnem, m.rm, m.regOperand(w)), nil
	case 2, 3: // r, r/m
		w := uint8(1)
		if form == 3 {
			w = gprWidth(rex)
		}
		m, err := decodeModRM(c, rex, w)
		if err != nil {
			return isa.Inst{}, err
		}
		if err := m.checkReg8(w); err != nil {
			return isa.Inst{}, err
		}
		return isa.NewInst(mnem, m.regOperand(w), m.rm), nil
	case 4: // AL, imm8
		imm, err := c.int8()
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.NewInst(mnem, isa.Rb(isa.RAX), isa.Imm8(imm)), nil
	case 5: // eAX/rAX, imm32
		imm, err := c.int32()
		if err != nil {
			return isa.Inst{}, err
		}
		w := gprWidth(rex)
		dst := isa.R(isa.RAX)
		dst.Width = w
		src := isa.Imm(imm)
		src.Width = w
		return isa.NewInst(mnem, dst, src), nil
	}
	return isa.Inst{}, fmt.Errorf("%w: %#02x", ErrInvalidOpcode, op)
}

func decodeALUImm(c *cursor, rex rexInfo, op byte) (isa.Inst, error) {
	w := uint8(1)
	if op != 0x80 {
		w = gprWidth(rex)
	}
	m, err := decodeModRM(c, rex, w)
	if err != nil {
		return isa.Inst{}, err
	}
	mnem := isa.ADD + isa.Op(m.reg)
	var imm int64
	if op == 0x81 {
		imm, err = c.int32()
	} else {
		imm, err = c.int8()
	}
	if err != nil {
		return isa.Inst{}, err
	}
	src := isa.Imm(imm)
	if op == 0x80 {
		src.Width = 1
	} else {
		src.Width = w
	}
	return isa.NewInst(mnem, m.rm, src), nil
}

func decodeShift(c *cursor, rex rexInfo, op byte) (isa.Inst, error) {
	w := uint8(1)
	if op == 0xC1 || op == 0xD1 {
		w = gprWidth(rex)
	}
	m, err := decodeModRM(c, rex, w)
	if err != nil {
		return isa.Inst{}, err
	}
	var mnem isa.Op
	switch m.reg {
	case 4:
		mnem = isa.SHL
	case 5:
		mnem = isa.SHR
	case 7:
		mnem = isa.SAR
	default:
		return isa.Inst{}, fmt.Errorf("%w: shift group /%d", ErrUnsupported, m.reg)
	}
	var imm int64 = 1
	if op == 0xC0 || op == 0xC1 {
		imm, err = c.int8()
		if err != nil {
			return isa.Inst{}, err
		}
		imm &= 0x3F
	}
	return isa.NewInst(mnem, m.rm, isa.Imm8(imm)), nil
}

func decodeGroup3(c *cursor, rex rexInfo, op byte) (isa.Inst, error) {
	w := uint8(1)
	if op == 0xF7 {
		w = gprWidth(rex)
	}
	m, err := decodeModRM(c, rex, w)
	if err != nil {
		return isa.Inst{}, err
	}
	switch m.reg {
	case 0: // TEST r/m, imm
		var imm int64
		if w == 1 {
			imm, err = c.int8()
		} else {
			imm, err = c.int32()
		}
		if err != nil {
			return isa.Inst{}, err
		}
		src := isa.Imm(imm)
		src.Width = w
		if w == 1 {
			src.Width = 1
		}
		return isa.NewInst(isa.TEST, m.rm, src), nil
	case 2:
		return isa.NewInst(isa.NOT, m.rm), nil
	case 3:
		return isa.NewInst(isa.NEG, m.rm), nil
	default:
		return isa.Inst{}, fmt.Errorf("%w: group 3 /%d", ErrUnsupported, m.reg)
	}
}

func decodeGroup45(c *cursor, rex rexInfo, op byte) (isa.Inst, error) {
	w := uint8(1)
	if op == 0xFF {
		w = gprWidth(rex)
	}
	m, err := decodeModRM(c, rex, w)
	if err != nil {
		return isa.Inst{}, err
	}
	switch m.reg {
	case 0:
		return isa.NewInst(isa.INC, m.rm), nil
	case 1:
		return isa.NewInst(isa.DEC, m.rm), nil
	default:
		// Indirect call/jmp and push r/m exist here on real hardware;
		// this subset treats them as faults.
		return isa.Inst{}, fmt.Errorf("%w: group 4/5 /%d", ErrUnsupported, m.reg)
	}
}

// modrm is a decoded ModRM (+SIB, +disp) cluster.
type modrm struct {
	reg        uint8       // reg field with REX.R applied (register number or /digit)
	rm         isa.Operand // register or memory operand with width set
	w          uint8
	rexPresent bool
}

// regOperand materializes the reg field as a register operand of width w.
func (m modrm) regOperand(w uint8) isa.Operand {
	op := isa.Operand{Kind: isa.KindReg, Width: w, Reg: isa.Reg(m.reg)}
	return op
}

// checkReg8 rejects byte-width reg fields that would select the
// unmodelled high-byte registers (AH/CH/DH/BH) when no REX is present.
func (m modrm) checkReg8(w uint8) error {
	if w == 1 && !m.rexPresent && m.reg >= 4 && m.reg <= 7 {
		return fmt.Errorf("%w: high-byte registers", ErrUnsupported)
	}
	return nil
}

func decodeModRM(c *cursor, rex rexInfo, width uint8) (modrm, error) {
	b, err := c.byte()
	if err != nil {
		return modrm{}, err
	}
	mod := b >> 6
	reg := (b >> 3) & 7
	rm := b & 7
	if rex.r {
		reg |= 8
	}
	out := modrm{reg: reg, w: width, rexPresent: rex.present}

	if mod == 3 {
		r := isa.Reg(rm)
		if rex.b {
			r |= 8
		}
		if width == 1 && !rex.present && r >= isa.RSP && r <= isa.RDI {
			return modrm{}, fmt.Errorf("%w: high-byte registers", ErrUnsupported)
		}
		out.rm = isa.Operand{Kind: isa.KindReg, Width: width, Reg: r}
		return out, nil
	}

	mem := isa.Mem{Base: isa.NoReg, Index: isa.NoReg, Scale: 1}
	dispSize := 0
	switch mod {
	case 1:
		dispSize = 1
	case 2:
		dispSize = 4
	}

	if rm == 4 { // SIB
		sib, err := c.byte()
		if err != nil {
			return modrm{}, err
		}
		ss := sib >> 6
		idx := (sib >> 3) & 7
		base := sib & 7
		if rex.x {
			idx |= 8
		}
		if idx != 4 { // index=100 with REX.X=0 means "none"
			mem.Index = isa.Reg(idx)
			mem.Scale = 1 << ss
		}
		if base == 5 && mod == 0 {
			dispSize = 4 // no base, disp32
		} else {
			b := isa.Reg(base)
			if rex.b {
				b |= 8
			}
			mem.Base = b
		}
	} else if rm == 5 && mod == 0 {
		// RIP-relative.
		mem.RIPRel = true
		dispSize = 4
	} else {
		r := isa.Reg(rm)
		if rex.b {
			r |= 8
		}
		mem.Base = r
	}

	switch dispSize {
	case 1:
		d, err := c.int8()
		if err != nil {
			return modrm{}, err
		}
		mem.Disp = int32(d)
	case 4:
		d, err := c.int32()
		if err != nil {
			return modrm{}, err
		}
		mem.Disp = int32(d)
	}

	out.rm = isa.Operand{Kind: isa.KindMem, Width: width, Mem: mem}
	return out, nil
}
