package emu

import (
	"math/bits"

	"github.com/r2r/reinforce/internal/isa"
)

// widthMask returns the value mask for a 1/4/8-byte operand width.
func widthMask(w uint8) uint64 {
	switch w {
	case 1:
		return 0xFF
	case 4:
		return 0xFFFFFFFF
	default:
		return ^uint64(0)
	}
}

// signBit returns the sign-bit mask for the width.
func signBit(w uint8) uint64 { return 1 << (uint(w)*8 - 1) }

// flagState manipulates the arithmetic flags inside an RFLAGS value.
type flagState struct{ rflags *uint64 }

func (f flagState) set(mask uint64, on bool) {
	if on {
		*f.rflags |= mask
	} else {
		*f.rflags &^= mask
	}
}

// setSZP sets SF, ZF and PF from a result of the given width.
func (f flagState) setSZP(r uint64, w uint8) {
	r &= widthMask(w)
	f.set(isa.FlagZF, r == 0)
	f.set(isa.FlagSF, r&signBit(w) != 0)
	f.set(isa.FlagPF, bits.OnesCount8(uint8(r))&1 == 0)
}

// addFlags computes r = a + b + carryIn at width w and sets CF/OF/AF/SZP
// per the x86 ADD/ADC definitions.
func (f flagState) addFlags(a, b, carryIn uint64, w uint8) uint64 {
	mask := widthMask(w)
	a &= mask
	b &= mask
	var r uint64
	var cf bool
	if w == 8 {
		var c1, c2 uint64
		r, c1 = bits.Add64(a, b, 0)
		r, c2 = bits.Add64(r, carryIn, 0)
		cf = c1+c2 != 0
	} else {
		full := a + b + carryIn
		r = full & mask
		cf = full > mask
	}
	f.set(isa.FlagCF, cf)
	f.set(isa.FlagOF, (^(a^b)&(a^r))&signBit(w) != 0)
	f.set(isa.FlagAF, (a^b^r)&0x10 != 0)
	f.setSZP(r, w)
	return r
}

// subFlags computes r = a - b - borrowIn at width w and sets flags per
// the x86 SUB/SBB/CMP definitions.
func (f flagState) subFlags(a, b, borrowIn uint64, w uint8) uint64 {
	mask := widthMask(w)
	a &= mask
	b &= mask
	var r uint64
	var cf bool
	if w == 8 {
		var b1, b2 uint64
		r, b1 = bits.Sub64(a, b, 0)
		r, b2 = bits.Sub64(r, borrowIn, 0)
		cf = b1+b2 != 0
	} else {
		need := b + borrowIn
		cf = a < need
		r = (a - need) & mask
	}
	f.set(isa.FlagCF, cf)
	f.set(isa.FlagOF, ((a^b)&(a^r))&signBit(w) != 0)
	f.set(isa.FlagAF, (a^b^r)&0x10 != 0)
	f.setSZP(r, w)
	return r
}

// logicFlags sets flags for AND/OR/XOR/TEST: CF=OF=0, AF cleared
// (architecturally undefined; cleared for determinism), SZP from result.
func (f flagState) logicFlags(r uint64, w uint8) {
	f.set(isa.FlagCF, false)
	f.set(isa.FlagOF, false)
	f.set(isa.FlagAF, false)
	f.setSZP(r, w)
}

// incFlags sets flags for INC (CF preserved).
func (f flagState) incFlags(a uint64, w uint8) uint64 {
	mask := widthMask(w)
	a &= mask
	r := (a + 1) & mask
	f.set(isa.FlagOF, r == signBit(w)) // only overflow case: max positive + 1
	f.set(isa.FlagAF, (a^1^r)&0x10 != 0)
	f.setSZP(r, w)
	return r
}

// decFlags sets flags for DEC (CF preserved).
func (f flagState) decFlags(a uint64, w uint8) uint64 {
	mask := widthMask(w)
	a &= mask
	r := (a - 1) & mask
	f.set(isa.FlagOF, a == signBit(w)) // min negative - 1 overflows
	f.set(isa.FlagAF, (a^1^r)&0x10 != 0)
	f.setSZP(r, w)
	return r
}

// shlFlags computes a << count and sets CF to the last bit shifted out;
// OF follows the count==1 definition, else cleared for determinism.
func (f flagState) shlFlags(a uint64, count uint, w uint8) uint64 {
	mask := widthMask(w)
	a &= mask
	if count == 0 {
		return a
	}
	bitsW := uint(w) * 8
	var cf bool
	if count <= bitsW {
		cf = a&(1<<(bitsW-count)) != 0
	}
	r := (a << count) & mask
	f.set(isa.FlagCF, cf)
	if count == 1 {
		f.set(isa.FlagOF, (r&signBit(w) != 0) != cf)
	} else {
		f.set(isa.FlagOF, false)
	}
	f.set(isa.FlagAF, false)
	f.setSZP(r, w)
	return r
}

// shrFlags computes a >> count (logical) with CF = last bit out.
func (f flagState) shrFlags(a uint64, count uint, w uint8) uint64 {
	mask := widthMask(w)
	a &= mask
	if count == 0 {
		return a
	}
	var cf bool
	if count <= uint(w)*8 {
		cf = a&(1<<(count-1)) != 0
	}
	r := a >> count
	f.set(isa.FlagCF, cf)
	if count == 1 {
		f.set(isa.FlagOF, a&signBit(w) != 0)
	} else {
		f.set(isa.FlagOF, false)
	}
	f.set(isa.FlagAF, false)
	f.setSZP(r, w)
	return r
}

// sarFlags computes a >> count (arithmetic) with CF = last bit out.
func (f flagState) sarFlags(a uint64, count uint, w uint8) uint64 {
	mask := widthMask(w)
	a &= mask
	if count == 0 {
		return a
	}
	bitsW := uint(w) * 8
	// Sign-extend a to 64 bits first.
	sa := int64(a<<(64-bitsW)) >> (64 - bitsW)
	var cf bool
	if count <= bitsW {
		cf = (sa>>(count-1))&1 != 0
	} else {
		cf = sa < 0
	}
	if count >= 64 {
		count = 63
	}
	r := uint64(sa>>count) & mask
	f.set(isa.FlagCF, cf)
	f.set(isa.FlagOF, false)
	f.set(isa.FlagAF, false)
	f.setSZP(r, w)
	return r
}

// imulFlags computes the two-operand signed multiply and sets CF=OF when
// the product does not fit the destination width. SZP are set from the
// result for determinism (architecturally undefined).
func (f flagState) imulFlags(a, b uint64, w uint8) uint64 {
	bitsW := uint(w) * 8
	sa := int64(a<<(64-bitsW)) >> (64 - bitsW)
	sb := int64(b<<(64-bitsW)) >> (64 - bitsW)
	var overflow bool
	var r uint64
	if w == 8 {
		hi, lo := bits.Mul64(uint64(sa), uint64(sb))
		r = lo
		// For signed multiply the product fits iff hi is the sign
		// extension of lo.
		signExt := uint64(0)
		if lo&(1<<63) != 0 {
			signExt = ^uint64(0)
		}
		overflow = hi != signExt
		// Correct hi for signed operands (bits.Mul64 is unsigned):
		// hi_signed = hi - (a<0 ? b : 0) - (b<0 ? a : 0).
		hiS := hi
		if sa < 0 {
			hiS -= uint64(sb)
		}
		if sb < 0 {
			hiS -= uint64(sa)
		}
		overflow = hiS != signExt
	} else {
		p := sa * sb
		r = uint64(p) & widthMask(w)
		back := int64(r<<(64-bitsW)) >> (64 - bitsW)
		overflow = back != p
	}
	f.set(isa.FlagCF, overflow)
	f.set(isa.FlagOF, overflow)
	f.set(isa.FlagAF, false)
	f.setSZP(r, w)
	return r
}
