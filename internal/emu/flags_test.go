package emu

import (
	"math/rand"
	"testing"

	"github.com/r2r/reinforce/internal/isa"
)

// TestCmpMatchesGoComparisons is the core flag-correctness property: a
// CMP must set flags such that every condition code agrees with the
// corresponding Go comparison, across widths.
func TestCmpMatchesGoComparisons(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	widths := []uint8{1, 4, 8}
	for i := 0; i < 200000; i++ {
		w := widths[r.Intn(3)]
		mask := widthMask(w)
		a := r.Uint64() & mask
		b := r.Uint64() & mask
		if r.Intn(4) == 0 {
			b = a // force equality cases
		}
		var rflags uint64
		f := flagState{&rflags}
		f.subFlags(a, b, 0, w)

		bitsW := uint(w) * 8
		sa := int64(a<<(64-bitsW)) >> (64 - bitsW)
		sb := int64(b<<(64-bitsW)) >> (64 - bitsW)

		diff := (a - b) & widthMask(w) // SF is the sign of the truncated difference
		checks := []struct {
			cond isa.Cond
			want bool
		}{
			{isa.CondE, a == b},
			{isa.CondNE, a != b},
			{isa.CondB, a < b},
			{isa.CondAE, a >= b},
			{isa.CondBE, a <= b},
			{isa.CondA, a > b},
			{isa.CondL, sa < sb},
			{isa.CondGE, sa >= sb},
			{isa.CondLE, sa <= sb},
			{isa.CondG, sa > sb},
			{isa.CondS, diff&signBit(w) != 0},
		}
		for _, c := range checks {
			if got := isa.CondHolds(c.cond, rflags); got != c.want {
				t.Fatalf("w=%d a=%#x b=%#x cond=%v: got %v, want %v (rflags=%#x)",
					w, a, b, c.cond, got, c.want, rflags)
			}
		}
	}
}

// TestAddSubInverse: for random values, ADD then SUB returns the
// original and the flags of the SUB match a CMP of the intermediate.
func TestAddSubInverse(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 50000; i++ {
		w := []uint8{1, 4, 8}[r.Intn(3)]
		a := r.Uint64() & widthMask(w)
		b := r.Uint64() & widthMask(w)
		var rf uint64
		f := flagState{&rf}
		sum := f.addFlags(a, b, 0, w)
		back := f.subFlags(sum, b, 0, w)
		if back != a&widthMask(w) {
			t.Fatalf("w=%d: (a+b)-b = %#x, want %#x", w, back, a)
		}
	}
}

// TestAddCarryChain: ADC with carry behaves like 128-bit addition on
// two 64-bit limbs.
func TestAddCarryChain(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		aLo, aHi := r.Uint64(), r.Uint64()
		bLo, bHi := r.Uint64(), r.Uint64()
		var rf uint64
		f := flagState{&rf}
		lo := f.addFlags(aLo, bLo, 0, 8)
		carry := uint64(0)
		if rf&isa.FlagCF != 0 {
			carry = 1
		}
		hi := f.addFlags(aHi, bHi, carry, 8)

		// Reference via math/bits semantics.
		wantLo := aLo + bLo
		c := uint64(0)
		if wantLo < aLo {
			c = 1
		}
		wantHi := aHi + bHi + c
		if lo != wantLo || hi != wantHi {
			t.Fatalf("128-bit add mismatch: got %#x:%#x want %#x:%#x", hi, lo, wantHi, wantLo)
		}
	}
}

func TestZeroAndSignFlags(t *testing.T) {
	var rf uint64
	f := flagState{&rf}
	f.setSZP(0, 8)
	if rf&isa.FlagZF == 0 || rf&isa.FlagSF != 0 {
		t.Error("ZF/SF wrong for 0")
	}
	f.setSZP(1<<63, 8)
	if rf&isa.FlagZF != 0 || rf&isa.FlagSF == 0 {
		t.Error("ZF/SF wrong for min-int64")
	}
	f.setSZP(0x80, 1)
	if rf&isa.FlagSF == 0 {
		t.Error("SF wrong for 0x80 byte")
	}
	// PF: parity of low byte only.
	f.setSZP(0x3, 8) // two bits -> even parity -> PF set
	if rf&isa.FlagPF == 0 {
		t.Error("PF wrong for 0x3")
	}
	f.setSZP(0x1, 8) // one bit -> odd parity -> PF clear
	if rf&isa.FlagPF != 0 {
		t.Error("PF wrong for 0x1")
	}
	f.setSZP(0x1FF, 8) // low byte 0xFF: eight bits -> even
	if rf&isa.FlagPF == 0 {
		t.Error("PF must consider low byte only")
	}
}

func TestIncDecOverflowEdges(t *testing.T) {
	var rf uint64
	f := flagState{&rf}

	// INC max-positive overflows to min-negative and sets OF.
	r := f.incFlags(0x7F, 1)
	if r != 0x80 || rf&isa.FlagOF == 0 {
		t.Errorf("inc 0x7f: r=%#x OF=%v", r, rf&isa.FlagOF != 0)
	}
	// DEC min-negative overflows and sets OF.
	r = f.decFlags(0x80, 1)
	if r != 0x7F || rf&isa.FlagOF == 0 {
		t.Errorf("dec 0x80: r=%#x OF=%v", r, rf&isa.FlagOF != 0)
	}
	// INC/DEC preserve CF.
	rf = isa.FlagCF
	f.incFlags(5, 8)
	if rf&isa.FlagCF == 0 {
		t.Error("INC clobbered CF")
	}
	f.decFlags(5, 8)
	if rf&isa.FlagCF == 0 {
		t.Error("DEC clobbered CF")
	}
}

func TestShiftFlags(t *testing.T) {
	var rf uint64
	f := flagState{&rf}

	// SHL out of the top bit sets CF.
	r := f.shlFlags(0x8000000000000000, 1, 8)
	if r != 0 || rf&isa.FlagCF == 0 || rf&isa.FlagZF == 0 {
		t.Errorf("shl msb: r=%#x rflags=%#x", r, rf)
	}
	// SHR of 1 by 1 sets CF and ZF.
	r = f.shrFlags(1, 1, 8)
	if r != 0 || rf&isa.FlagCF == 0 || rf&isa.FlagZF == 0 {
		t.Errorf("shr 1: r=%#x rflags=%#x", r, rf)
	}
	// SAR keeps the sign.
	r = f.sarFlags(0xFF, 4, 1)
	if r != 0xFF {
		t.Errorf("sar 0xff>>4 = %#x, want 0xff (sign fill)", r)
	}
	r = f.shrFlags(0xFF, 4, 1)
	if r != 0x0F {
		t.Errorf("shr 0xff>>4 = %#x, want 0x0f", r)
	}
	// Shift by zero leaves value (and flags) alone.
	rf = isa.FlagCF
	r = f.shlFlags(42, 0, 8)
	if r != 42 || rf != isa.FlagCF {
		t.Errorf("shift by 0 changed state: r=%d rflags=%#x", r, rf)
	}
}

func TestImulOverflow(t *testing.T) {
	var rf uint64
	f := flagState{&rf}

	r := f.imulFlags(3, 5, 8)
	if r != 15 || rf&isa.FlagCF != 0 || rf&isa.FlagOF != 0 {
		t.Errorf("3*5: r=%d rflags=%#x", r, rf)
	}
	// Negative small product: fits, no overflow.
	f.imulFlags(uint64(^uint64(0)), 7, 8) // -1 * 7
	if rf&isa.FlagCF != 0 {
		t.Error("-1*7 flagged as overflow")
	}
	// Large product overflows.
	f.imulFlags(1<<62, 4, 8)
	if rf&isa.FlagCF == 0 || rf&isa.FlagOF == 0 {
		t.Error("1<<62 * 4 not flagged as overflow")
	}
	// Byte-width overflow.
	f.imulFlags(100, 2, 1)
	if rf&isa.FlagCF == 0 {
		t.Error("100*2 fits in int8? should overflow")
	}
	f.imulFlags(10, 2, 1)
	if rf&isa.FlagCF != 0 {
		t.Error("10*2 flagged as byte overflow")
	}
}

// TestImulMatchesGo cross-checks imul against Go's native signed
// multiplication for random inputs.
func TestImulMatchesGo(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 50000; i++ {
		a, b := r.Uint64(), r.Uint64()
		var rf uint64
		f := flagState{&rf}
		got := f.imulFlags(a, b, 8)
		want := uint64(int64(a) * int64(b))
		if got != want {
			t.Fatalf("imul %#x*%#x = %#x, want %#x", a, b, got, want)
		}
	}
}
