package emu

import (
	"fmt"

	"github.com/r2r/reinforce/internal/isa"
)

// Linux x86-64 syscall numbers supported by the emulator.
const (
	sysRead      = 0
	sysWrite     = 1
	sysExit      = 60
	sysExitGroup = 231
)

// Linux errno values (returned negative, as the kernel ABI does).
const (
	errnoBADF  = 9
	errnoFAULT = 14
)

// maxIOChunk bounds a single read/write so a fault-corrupted length
// cannot make the emulator allocate gigabytes. It plays the role of the
// kernel's MAX_RW_COUNT: like Linux, oversized counts are clamped to it
// and the syscall returns a partial transfer, rather than failing — so
// a fault that corrupts a length register degrades the way the real ABI
// would instead of taking an emulator-only -EFAULT exit.
const maxIOChunk = 1 << 20

// ioCount resolves a syscall's raw count register against the chunk
// bound: counts above maxIOChunk (including values whose sign bit is
// set, which a size_t-taking kernel treats as huge) clamp to it.
func ioCount(raw uint64) int {
	if raw > maxIOChunk {
		return maxIOChunk
	}
	return int(raw)
}

// syscall implements the Linux syscall ABI subset. Like real hardware,
// it clobbers RCX (return RIP) and R11 (RFLAGS).
func (m *Machine) syscall(next uint64) error {
	nr := m.Regs[isa.RAX]
	a0 := m.Regs[isa.RDI]
	a1 := m.Regs[isa.RSI]
	a2 := m.Regs[isa.RDX]

	m.Regs[isa.RCX] = next
	m.Regs[isa.R11] = m.Rflags

	ret := func(v int64) { m.Regs[isa.RAX] = uint64(v) }

	switch nr {
	case sysRead:
		if a0 != 0 {
			ret(-errnoBADF)
			return nil
		}
		n := ioCount(a2)
		remain := len(m.Stdin) - m.inPos
		if n > remain {
			n = remain
		}
		if n > 0 {
			if err := m.Mem.Write(a1, m.Stdin[m.inPos:m.inPos+n]); err != nil {
				ret(-errnoFAULT)
				return nil
			}
			m.inPos += n
		}
		ret(int64(n))
		return nil

	case sysWrite:
		if a0 != 1 && a0 != 2 {
			ret(-errnoBADF)
			return nil
		}
		n := ioCount(a2)
		buf := make([]byte, n)
		if err := m.Mem.Read(a1, buf); err != nil {
			ret(-errnoFAULT)
			return nil
		}
		if a0 == 1 {
			m.Stdout = append(m.Stdout, buf...)
		} else {
			m.Stderr = append(m.Stderr, buf...)
		}
		ret(int64(n))
		return nil

	case sysExit, sysExitGroup:
		m.Exited = true
		m.ExitCode = int(int32(uint32(a0)))
		return nil
	}
	return fmt.Errorf("%w: %d", ErrBadSyscall, nr)
}
