package emu

import (
	"fmt"

	"github.com/r2r/reinforce/internal/elf"
)

const pageSize = 0x1000

// PageSize is the granularity of the paged address space, exported for
// footprint consumers: Machine.PageLog records fetched pages at this
// granularity, and the campaign cache compares patched-byte ranges
// against footprints page by page.
const PageSize = pageSize

// AccessKind labels a memory access for fault reporting.
type AccessKind uint8

// Access kinds.
const (
	AccessRead AccessKind = iota
	AccessWrite
	AccessExec
)

// String names the access kind for fault messages.
func (k AccessKind) String() string {
	switch k {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessExec:
		return "execute"
	}
	return "?"
}

// MemFault reports an illegal memory access: the emulator equivalent of
// a segmentation fault.
type MemFault struct {
	Addr uint64
	Kind AccessKind
}

// Error implements the error interface.
func (e *MemFault) Error() string {
	return fmt.Sprintf("emu: memory fault: %s at %#x", e.Kind, e.Addr)
}

type page struct {
	data [pageSize]byte
	perm uint32

	// cow marks the page as shared with a frozen Snapshot: it must be
	// cloned into a private copy before the first write. The flag is only
	// ever set while freezing (single-threaded); machines resumed from a
	// snapshot read it concurrently and clone into their own page tables,
	// so the frozen page itself is never mutated.
	cow bool
}

// region is a mapped address range whose pages materialize lazily on
// first touch. Fault campaigns create thousands of short-lived machines;
// allocating the (mostly untouched) stack eagerly would dominate their
// cost.
type region struct {
	addr, size uint64
	perm       uint32
}

// tlbEntry caches one resolved page lookup.
type tlbEntry struct {
	pa uint64
	p  *page
}

// tlbSize is the number of direct-mapped TLB slots. Hot loops touch a
// handful of pages (code, stack, data), so a small table hits almost
// always.
const tlbSize = 16

// Memory is a sparse paged address space with per-page permissions.
// A resumed memory (see Snapshot) layers a small private page table
// over a frozen base: reads fall through to the base, writes clone the
// touched page into the private table first.
type Memory struct {
	pages   map[uint64]*page // private overlay; may be nil until first use
	base    map[uint64]*page // frozen snapshot pages, shared read-only; may be nil
	regions []region

	// tlb memoizes lookupPage: a direct-mapped cache over the two page
	// maps, holding only non-nil results. Every site that changes the
	// visible mapping for an address inserts into m.pages and must go
	// through setPage, which keeps the affected slot coherent; freezing
	// and mapping never remap an address, so they need no flush.
	tlb [tlbSize]tlbEntry

	// codeGen increments whenever executable bytes may have changed
	// (Poke/FlipBit, or a store into an executable page); the machine's
	// decoded-instruction cache keys off it.
	codeGen uint64

	// frozen marks a memory that donated its pages to a Snapshot: its
	// page objects are shared with an immutable image, so the memory
	// must never be recycled into the allocation pools (see pool.go).
	frozen bool
}

// setPage installs pa -> p in the private overlay and keeps the TLB
// coherent. Every insert into m.pages must go through it.
func (m *Memory) setPage(pa uint64, p *page) {
	if m.pages == nil {
		m.pages = make(map[uint64]*page, 8)
	}
	m.pages[pa] = p
	m.tlb[(pa>>12)&(tlbSize-1)] = tlbEntry{pa: pa, p: p}
}

// clonePage replaces a copy-on-write page with a private mutable copy
// in this address space's overlay and returns the copy. Every write
// path must go through it before mutating a shared page.
func (m *Memory) clonePage(pa uint64, p *page) *page {
	q := pagePool.Get().(*page)
	q.data = p.data
	q.perm = p.perm
	q.cow = false
	m.setPage(pa, q)
	return q
}

// lookupPage returns the visible page containing pa (private overlay
// first, then the frozen base), without materializing anything.
func (m *Memory) lookupPage(pa uint64) *page {
	if e := &m.tlb[(pa>>12)&(tlbSize-1)]; e.pa == pa && e.p != nil {
		return e.p
	}
	if m.pages != nil {
		if p, ok := m.pages[pa]; ok {
			m.tlb[(pa>>12)&(tlbSize-1)] = tlbEntry{pa: pa, p: p}
			return p
		}
	}
	if m.base != nil {
		if p, ok := m.base[pa]; ok {
			m.tlb[(pa>>12)&(tlbSize-1)] = tlbEntry{pa: pa, p: p}
			return p
		}
	}
	return nil
}

// execSpan returns the address range covered by executable regions
// (the span a machine-private micro-op translation indexes, see
// uop.go).
func (m *Memory) execSpan() (lo, hi uint64) {
	first := true
	for _, r := range m.regions {
		if r.perm&elf.FlagExec == 0 {
			continue
		}
		if first || r.addr < lo {
			lo = r.addr
		}
		if first || r.addr+r.size > hi {
			hi = r.addr + r.size
		}
		first = false
	}
	return lo, hi
}

// CodeGeneration returns the current code-mutation epoch.
func (m *Memory) CodeGeneration() uint64 { return m.codeGen }

// NewMemory returns an empty address space.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

// Map makes [addr, addr+size) accessible with the given permissions,
// zero-filled. Overlapping maps widen permissions.
func (m *Memory) Map(addr, size uint64, perm uint32) {
	m.regions = append(m.regions, region{addr: addr, size: size, perm: perm})
	// Already-materialized pages in range get their perms widened
	// (cloning shared pages first — permissions are per-machine state).
	lo := addr &^ (pageSize - 1)
	hi := addr + size
	if spanPages := (hi - lo + pageSize - 1) / pageSize; spanPages <= uint64(len(m.pages)+len(m.base)) {
		for a := lo; a < hi; a += pageSize {
			if p := m.lookupPage(a); p != nil {
				if p.cow {
					p = m.clonePage(a, p)
				}
				p.perm |= perm
			}
		}
		return
	}
	// Large mapping (a fresh stack), few materialized pages: visiting
	// the page tables beats probing every page of the range.
	for a, p := range m.pages {
		if a >= lo && a < hi {
			if p.cow { // a frozen donor's overlay pages are shared
				p = m.clonePage(a, p)
			}
			p.perm |= perm
		}
	}
	for a, p := range m.base {
		if a >= lo && a < hi {
			if _, shadowed := m.pages[a]; !shadowed {
				m.clonePage(a, p).perm |= perm
			}
		}
	}
}

// LoadSection maps and fills a binary section.
func (m *Memory) LoadSection(s *elf.Section) {
	m.Map(s.Addr, s.Size(), s.Flags)
	m.writeRaw(s.Addr, s.Data)
}

// regionPerm returns the union of region permissions covering the page
// containing addr, and whether any region covers it.
func (m *Memory) regionPerm(pageAddr uint64) (uint32, bool) {
	var perm uint32
	found := false
	for _, r := range m.regions {
		if pageAddr+pageSize > r.addr && pageAddr < r.addr+r.size {
			perm |= r.perm
			found = true
		}
	}
	return perm, found
}

// page returns the materialized page containing addr, creating it from
// a covering region if needed. Returns nil for unmapped addresses.
func (m *Memory) page(addr uint64) *page {
	pa := addr &^ (pageSize - 1)
	if p := m.lookupPage(pa); p != nil {
		return p
	}
	perm, ok := m.regionPerm(pa)
	if !ok {
		return nil
	}
	p := materializePage(perm)
	m.setPage(pa, p)
	return p
}

// writablePage returns a page safe to mutate: copy-on-write pages are
// cloned into this address space first. Returns nil for unmapped
// addresses.
func (m *Memory) writablePage(addr uint64) *page {
	pa := addr &^ (pageSize - 1)
	p := m.lookupPage(pa)
	switch {
	case p == nil:
		perm, ok := m.regionPerm(pa)
		if !ok {
			return nil
		}
		p = materializePage(perm)
		m.setPage(pa, p)
	case p.cow:
		p = m.clonePage(pa, p)
	}
	return p
}

func (m *Memory) writeRaw(addr uint64, data []byte) {
	for i := 0; i < len(data); {
		a := addr + uint64(i)
		p := m.writablePage(a)
		n := copy(p.data[a&(pageSize-1):], data[i:])
		i += n
	}
}

// permAt returns the effective permissions of the page containing addr
// without materializing it.
func (m *Memory) permAt(pageAddr uint64) (uint32, bool) {
	if p := m.lookupPage(pageAddr); p != nil {
		return p.perm, true
	}
	return m.regionPerm(pageAddr)
}

// check validates an access of n bytes starting at addr.
func (m *Memory) check(addr uint64, n int, kind AccessKind) error {
	var need uint32
	switch kind {
	case AccessRead:
		need = elf.FlagRead
	case AccessWrite:
		need = elf.FlagWrite
	case AccessExec:
		need = elf.FlagExec
	}
	// Address-space wraparound (e.g. a fault-corrupted stack pointer
	// near 2^64) is always invalid.
	if addr+uint64(n) < addr {
		return &MemFault{Addr: addr, Kind: kind}
	}
	for a := addr &^ (pageSize - 1); a < addr+uint64(n); a += pageSize {
		perm, ok := m.permAt(a)
		if !ok || perm&need == 0 {
			fa := addr
			if a > addr {
				fa = a
			}
			return &MemFault{Addr: fa, Kind: kind}
		}
	}
	return nil
}

// Read copies n bytes at addr into buf, enforcing read permission.
func (m *Memory) Read(addr uint64, buf []byte) error {
	if err := m.check(addr, len(buf), AccessRead); err != nil {
		return err
	}
	m.readRaw(addr, buf)
	return nil
}

func (m *Memory) readRaw(addr uint64, buf []byte) {
	for i := 0; i < len(buf); {
		pa := (addr + uint64(i)) &^ (pageSize - 1)
		off := (addr + uint64(i)) & (pageSize - 1)
		p := m.lookupPage(pa)
		if p == nil {
			buf[i] = 0
			i++
			continue
		}
		n := copy(buf[i:], p.data[off:])
		i += n
	}
}

// Write copies data to addr, enforcing write permission.
func (m *Memory) Write(addr uint64, data []byte) error {
	if err := m.check(addr, len(data), AccessWrite); err != nil {
		return err
	}
	// Self-modifying code support: stores that touch executable pages
	// invalidate decoded-instruction caches.
	for a := addr &^ (pageSize - 1); a < addr+uint64(len(data)); a += pageSize {
		if perm, ok := m.permAt(a); ok && perm&elf.FlagExec != 0 {
			m.codeGen++
			break
		}
	}
	m.writeRaw(addr, data)
	return nil
}

// ReadUint reads a little-endian unsigned integer of the given byte
// width with read permission enforcement.
func (m *Memory) ReadUint(addr uint64, width uint8) (uint64, error) {
	// Fast path: the access sits in one materialized readable page, so
	// a single lookup serves it (this is every operand load of the hot
	// interpreter loop).
	if off := addr & (pageSize - 1); off+uint64(width) <= pageSize {
		if p := m.lookupPage(addr &^ (pageSize - 1)); p != nil && p.perm&elf.FlagRead != 0 {
			var v uint64
			for i := uint8(0); i < width; i++ {
				v |= uint64(p.data[off+uint64(i)]) << (8 * i)
			}
			return v, nil
		}
	}
	var buf [8]byte
	if err := m.Read(addr, buf[:width]); err != nil {
		return 0, err
	}
	var v uint64
	for i := uint8(0); i < width; i++ {
		v |= uint64(buf[i]) << (8 * i)
	}
	return v, nil
}

// WriteUint writes a little-endian unsigned integer of the given width.
func (m *Memory) WriteUint(addr uint64, v uint64, width uint8) error {
	// Fast path mirroring ReadUint: one page, writable, no region scan.
	if off := addr & (pageSize - 1); off+uint64(width) <= pageSize {
		pa := addr &^ (pageSize - 1)
		if p := m.lookupPage(pa); p != nil && p.perm&elf.FlagWrite != 0 {
			if p.perm&elf.FlagExec != 0 {
				m.codeGen++ // self-modifying store, like Write
			}
			if p.cow {
				p = m.clonePage(pa, p)
			}
			for i := uint8(0); i < width; i++ {
				p.data[off+uint64(i)] = byte(v >> (8 * i))
			}
			return nil
		}
	}
	var buf [8]byte
	for i := uint8(0); i < width; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	return m.Write(addr, buf[:width])
}

// Fetch copies up to n instruction bytes at addr into buf, enforcing
// execute permission on the first byte (and as many following bytes as
// are executable, so instructions ending at a segment boundary still
// decode). It returns the number of bytes available.
func (m *Memory) Fetch(addr uint64, buf []byte) (int, error) {
	if err := m.check(addr, 1, AccessExec); err != nil {
		return 0, err
	}
	n := 0
	for n < len(buf) {
		a := addr + uint64(n)
		p := m.page(a)
		if p == nil || p.perm&elf.FlagExec == 0 {
			break
		}
		// Copy the rest of the page in one go instead of a byte per
		// page lookup (instruction fetches are up to 15 bytes).
		n += copy(buf[n:], p.data[a&(pageSize-1):])
	}
	return n, nil
}

// Poke overwrites a single byte ignoring permissions. The fault injector
// uses it to mutate instruction bytes the way a hardware glitch would.
func (m *Memory) Poke(addr uint64, b byte) error {
	p := m.writablePage(addr)
	if p == nil {
		return &MemFault{Addr: addr, Kind: AccessWrite}
	}
	m.codeGen++
	p.data[addr&(pageSize-1)] = b
	return nil
}

// Peek reads a single byte ignoring permissions.
func (m *Memory) Peek(addr uint64) (byte, error) {
	p := m.page(addr)
	if p == nil {
		return 0, &MemFault{Addr: addr, Kind: AccessRead}
	}
	return p.data[addr&(pageSize-1)], nil
}

// FlipBit toggles one bit at addr (bit 0..7), ignoring permissions.
func (m *Memory) FlipBit(addr uint64, bit uint) error {
	b, err := m.Peek(addr)
	if err != nil {
		return err
	}
	return m.Poke(addr, b^(1<<bit))
}

// PokeData overwrites a single byte ignoring permissions, like Poke,
// but only invalidates decoded-code caches when the byte actually lives
// in an executable page. The data-fault models glitch operand cells on
// every injection; evicting the warm shared code cache for a write that
// cannot alias code would make those campaigns decode-bound. Writes go
// through the copy-on-write machinery, so snapshot pages stay intact.
func (m *Memory) PokeData(addr uint64, b byte) error {
	p := m.writablePage(addr)
	if p == nil {
		return &MemFault{Addr: addr, Kind: AccessWrite}
	}
	if p.perm&elf.FlagExec != 0 {
		m.codeGen++
	}
	p.data[addr&(pageSize-1)] = b
	return nil
}

// FlipDataBit toggles one bit at addr (bit 0..7) with PokeData's
// cache-preserving semantics — the transient-data-fault primitive.
func (m *Memory) FlipDataBit(addr uint64, bit uint) error {
	b, err := m.Peek(addr)
	if err != nil {
		return err
	}
	return m.PokeData(addr, b^(1<<bit))
}
