// Package emu is an interpreting emulator for the x86-64 subset running
// static Linux-style binaries: 16 GPRs, RFLAGS, paged memory, a small
// syscall surface (read/write/exit) and deterministic execution.
//
// It plays the role Qiling/Unicorn play in the paper: the substrate the
// faulter drives to simulate instruction-skip and bit-flip faults and to
// observe whether the program's externally visible behaviour (stdout +
// exit status) changes. Two additions make exhaustive campaigns cheap
// and fault models composable: copy-on-write machine snapshots
// (snapshot.go) that let thousands of injection runs fork a shared
// golden run, and chaining fetch/step hooks
// (Config.AddFetchHook/AddStepHook) so several faults can compose onto
// one run (order-2 pair campaigns).
package emu

import (
	"errors"
	"fmt"

	"github.com/r2r/reinforce/internal/decode"
	"github.com/r2r/reinforce/internal/elf"
	"github.com/r2r/reinforce/internal/isa"
)

// Execution faults (crashes, in the fault-model sense).
var (
	ErrStepLimit  = errors.New("emu: step limit exceeded")
	ErrHalted     = errors.New("emu: hlt/ud2 executed")
	ErrBadSyscall = errors.New("emu: unsupported syscall")
	ErrNotExited  = errors.New("emu: program did not exit")
)

// Default run limits.
const (
	DefaultStepLimit = 4 << 20
	DefaultStackSize = 2 << 20
	DefaultStackTop  = 0x7FFF_FFF0_0000
)

// StepAction is returned by a StepHook to control execution of the
// decoded instruction.
type StepAction uint8

// Step actions.
const (
	ActContinue StepAction = iota
	ActSkip                // skip the instruction (instruction-skip fault model)
)

// Config parameterizes a Machine.
type Config struct {
	Stdin     []byte
	StepLimit uint64
	StackSize uint64
	StackTop  uint64

	// RecordTrace captures each executed instruction's address and
	// length (before any skip decision).
	RecordTrace bool

	// RecordPages captures the code pages the run fetches from (see
	// Machine.PageLog) — the execution footprint incremental campaign
	// caches compare against the bytes a patch round changed.
	RecordPages bool

	// SingleStep forces the per-step interpreter even where the
	// predecoded micro-op fast path (uop.go) would apply. The two
	// engines are bit-identical by contract; this knob exists so
	// differential tests and fuzzers can prove it, never for
	// correctness. Default off: the fast path is always on.
	SingleStep bool

	// FetchHook runs before each fetch; the fault injector uses it to
	// mutate instruction bytes at a precise dynamic step index.
	FetchHook func(m *Machine)

	// StepHook runs after decode, before execution. The instruction is
	// shared with the machine's caches and must not be mutated.
	StepHook func(m *Machine, in *isa.Inst) StepAction

	// Hook arming window, maintained by the hook adders below: hooks
	// may only act during steps s with hookStart <= s < hookEnd (s is
	// the machine's pre-increment step counter — the dynamic trace
	// index of the instruction about to execute). Outside the window
	// the machine may dispatch predecoded micro-op blocks without
	// calling the hooks at all; inside it, it single-steps so every
	// hook observes every step. Hooks installed without a window
	// (plain adders, or direct field assignment) arm the machine
	// forever, preserving exact historical semantics.
	hookStart uint64
	hookEnd   uint64
	hookWin   bool // some hook declared a bounded window
	hookAll   bool // some hook has no declared window: arm forever
}

// armedWindow resolves the step range during which installed hooks
// must be able to observe execution: empty when no hooks are set,
// [start, end) when every hook declared a window, all steps otherwise.
func (c *Config) armedWindow() (start, end uint64) {
	if c.FetchHook == nil && c.StepHook == nil {
		return 0, 0
	}
	if c.hookWin && !c.hookAll {
		return c.hookStart, c.hookEnd
	}
	return 0, ^uint64(0)
}

// noteWindow unions [start, end) into the config's hook arming window.
// Hooks that were installed before any window was declared (direct
// field assignment) have unknown reach, so they pin the machine to the
// single-step path forever.
func (c *Config) noteWindow(start, end uint64) {
	if (c.FetchHook != nil || c.StepHook != nil) && !c.hookWin && !c.hookAll {
		c.hookAll = true
	}
	if !c.hookWin {
		c.hookWin = true
		c.hookStart, c.hookEnd = start, end
		return
	}
	if start < c.hookStart {
		c.hookStart = start
	}
	if end > c.hookEnd {
		c.hookEnd = end
	}
}

// chainFetchHook appends h to the fetch-hook chain without touching
// the arming window.
func (c *Config) chainFetchHook(h func(m *Machine)) {
	if prev := c.FetchHook; prev != nil {
		c.FetchHook = func(m *Machine) { prev(m); h(m) }
	} else {
		c.FetchHook = h
	}
}

// chainStepHook appends h to the step-hook chain without touching the
// arming window.
func (c *Config) chainStepHook(h func(m *Machine, in *isa.Inst) StepAction) {
	if prev := c.StepHook; prev != nil {
		c.StepHook = func(m *Machine, in *isa.Inst) StepAction {
			a := prev(m, in)
			if b := h(m, in); b == ActSkip {
				return ActSkip
			}
			return a
		}
	} else {
		c.StepHook = h
	}
}

// AddFetchHook chains h after any already-installed fetch hook, so
// several fault models can be composed onto one run (the order-2
// multi-fault campaigns inject two independent faults this way). The
// hook declares no arming window, so it keeps the machine on the
// single-step path for the whole run; hooks that only act inside a
// bounded step range should use AddFetchHookWindow.
func (c *Config) AddFetchHook(h func(m *Machine)) {
	c.hookAll = true
	c.chainFetchHook(h)
}

// AddFetchHookWindow chains h like AddFetchHook and declares that h
// only acts during steps s with start <= s < end (pre-increment step
// counter, i.e. dynamic trace indices). Outside the union of all
// declared windows the machine may run predecoded micro-op blocks
// without invoking any hook — a window that is too narrow is a
// soundness bug, exactly like a too-early EffectHorizon.
func (c *Config) AddFetchHookWindow(h func(m *Machine), start, end uint64) {
	c.noteWindow(start, end)
	c.chainFetchHook(h)
}

// AddStepHook chains h after any already-installed step hook. Hooks
// compose permissively: if any hook in the chain asks to skip the
// instruction, it is skipped (later hooks still run, so their own
// step-indexed state machines observe every step). Like AddFetchHook,
// the hook declares no arming window and disables the micro-op fast
// path for the whole run.
func (c *Config) AddStepHook(h func(m *Machine, in *isa.Inst) StepAction) {
	c.hookAll = true
	c.chainStepHook(h)
}

// AddStepHookWindow chains h like AddStepHook and declares its arming
// window [start, end) in pre-increment step counts, with the same
// contract as AddFetchHookWindow.
func (c *Config) AddStepHookWindow(h func(m *Machine, in *isa.Inst) StepAction, start, end uint64) {
	c.noteWindow(start, end)
	c.chainStepHook(h)
}

// TraceEntry is one executed instruction in a recorded trace.
type TraceEntry struct {
	Addr uint64
	Len  int
	Op   isa.Op
	Cond isa.Cond
}

// Machine is a single-threaded virtual CPU plus address space.
type Machine struct {
	Regs   [isa.NumRegs]uint64
	RIP    uint64
	Rflags uint64
	Mem    *Memory

	Stdin  []byte
	inPos  int
	Stdout []byte
	Stderr []byte

	Steps     uint64
	StepLimit uint64

	Exited   bool
	ExitCode int

	Trace       []TraceEntry
	recordTrace bool

	// pageLog maps each fetched code page to the step count at its
	// first fetch (see PageLog); lastPage short-circuits the common
	// same-page case. Nil unless Config.RecordPages was set.
	pageLog  map[uint64]uint64
	lastPage uint64

	fetchHook func(m *Machine)
	stepHook  func(m *Machine, in *isa.Inst) StepAction

	fetchBuf [decode.MaxInstLen]byte

	// Decoded-instruction cache, keyed by address and invalidated when
	// Memory.CodeGeneration changes (pokes, bit flips, self-modifying
	// stores). Fault campaigns execute the same instructions millions
	// of times; decoding once per address is the difference between
	// minutes and seconds per campaign. Allocated lazily: machines fully
	// served by a shared CodeCache never touch it.
	icache    map[uint64]*isa.Inst
	icacheGen uint64

	// icacheBase is an optional dense read-only cache seeded from a
	// Snapshot's golden run; it is consulted first and dropped as soon
	// as the code mutates. Never written (it is shared across machines).
	icacheBase *CodeCache

	// Micro-op fast path (uop.go). prog is an optional shared
	// predecoded program seeded from a Snapshot; priv holds blocks this
	// machine translated itself (lazily, keyed by entry address, valid
	// for privGen). armStart/armEnd is the union of the config's hook
	// arming windows: while Steps is inside [armStart, armEnd) — or
	// when singleStep, trace recording, or page logging is on — the
	// machine single-steps so hooks and recorders observe every
	// instruction; everywhere else RunUntil dispatches straight-line
	// micro-op blocks.
	prog       *Program
	priv       *privProg
	privGen    uint64
	armStart   uint64
	armEnd     uint64
	singleStep bool
}

// CodeCache is an immutable decoded-code cache, dense over the code
// address range so the per-step lookup is an index instead of a map
// hash. It is built once from a finished golden run and shared
// read-only by every machine resumed from the run's snapshots.
type CodeCache struct {
	base  uint64
	gen   uint64 // memory code generation the cache is valid for
	insts []isa.Inst
	have  []bool
}

// maxCodeCacheSpan bounds the dense cache's address range (the code of
// any plausible rewritten binary is far below this; a sparse decode map
// spanning more indicates address-space games not worth caching).
const maxCodeCacheSpan = 16 << 20

// BuildCodeCache converts a machine's decode map (see DecodeCache)
// into a dense cache. Returns nil when there is nothing to cache or
// the addresses span an implausibly large range.
func BuildCodeCache(insts map[uint64]*isa.Inst, gen uint64) *CodeCache {
	if len(insts) == 0 {
		return nil
	}
	lo, hi := uint64(1<<63), uint64(0)
	for a := range insts {
		if a < lo {
			lo = a
		}
		if a > hi {
			hi = a
		}
	}
	span := hi - lo + 1
	if span > maxCodeCacheSpan {
		return nil
	}
	cc := &CodeCache{
		base:  lo,
		gen:   gen,
		insts: make([]isa.Inst, span),
		have:  make([]bool, span),
	}
	for a, in := range insts {
		cc.insts[a-lo] = *in
		cc.have[a-lo] = true
	}
	return cc
}

// lookup returns the cached instruction at addr, or nil.
func (c *CodeCache) lookup(addr uint64) *isa.Inst {
	off := addr - c.base
	if off < uint64(len(c.have)) && c.have[off] {
		return &c.insts[off]
	}
	return nil
}

// New builds a machine with the binary's sections mapped, a stack, and
// RIP at the entry point.
func New(bin *elf.Binary, cfg Config) *Machine {
	if cfg.StepLimit == 0 {
		cfg.StepLimit = DefaultStepLimit
	}
	if cfg.StackSize == 0 {
		cfg.StackSize = DefaultStackSize
	}
	if cfg.StackTop == 0 {
		cfg.StackTop = DefaultStackTop
	}
	mem := memoryPool.Get().(*Memory)
	if mem.pages == nil {
		mem.pages = make(map[uint64]*page)
	}
	m := resumeMachine()
	m.Mem = mem
	m.Stdin = cfg.Stdin
	m.StepLimit = cfg.StepLimit
	m.recordTrace = cfg.RecordTrace
	m.fetchHook = cfg.FetchHook
	m.stepHook = cfg.StepHook
	m.singleStep = cfg.SingleStep
	m.armStart, m.armEnd = cfg.armedWindow()
	if cfg.RecordPages {
		m.pageLog = make(map[uint64]uint64, 8)
		m.lastPage = ^uint64(0)
	}
	for _, s := range bin.Sections {
		m.Mem.LoadSection(s)
	}
	m.Mem.Map(cfg.StackTop-cfg.StackSize, cfg.StackSize, elf.FlagRead|elf.FlagWrite)
	m.Regs[isa.RSP] = cfg.StackTop - 64 // a little headroom like a real loader
	m.RIP = bin.Entry
	m.Rflags = isa.FlagsFixed
	return m
}

// Result summarizes a finished (or crashed) run.
type Result struct {
	Exited   bool
	ExitCode int
	Steps    uint64
	Stdout   []byte
	Stderr   []byte
}

// Run executes until exit, fault, or step limit. The returned error is
// nil only for a clean exit via the exit syscall.
func (m *Machine) Run() (Result, error) {
	// Steps can never reach MaxUint64 before StepLimit, so this is the
	// plain run-to-completion loop.
	res, _, err := m.RunUntil(^uint64(0))
	return res, err
}

// notePage records the code page containing addr in the page log, at
// the current step count, if it is not already logged.
func (m *Machine) notePage(addr uint64) {
	pa := addr &^ (pageSize - 1)
	if pa == m.lastPage {
		return
	}
	m.lastPage = pa
	if _, ok := m.pageLog[pa]; !ok {
		m.pageLog[pa] = m.Steps
	}
}

// PageLog returns the fetch footprint of a run recorded with
// Config.RecordPages: every code page the machine fetched instruction
// bytes from (including the page of a failed fetch), mapped to the step
// count at its first fetch. The fault-campaign cache uses the key set
// as the run's code footprint and the step values to slice the
// reference run's footprint at a snapshot boundary. Callers must not
// mutate the map.
func (m *Machine) PageLog() map[uint64]uint64 { return m.pageLog }

// RunUntil executes until the machine has completed `stop` steps, or
// until exit, fault, or step limit, whichever comes first. It returns
// exactly like Run, plus done=true when the run finished (exited or
// errored) before reaching the stop step — done=false means the
// machine is paused at an instruction boundary with Steps == stop and
// can be snapshotted or stepped further. The order-2 snapshot tree
// pauses a first-fault run this way once the fault's hooks are inert,
// snapshots it, and forks the snapshot per second fault.
func (m *Machine) RunUntil(stop uint64) (Result, bool, error) {
	var err error
	for !m.Exited && m.Steps < stop {
		if m.Steps >= m.StepLimit {
			err = ErrStepLimit
			break
		}
		// Superstep dispatch: outside hook arming windows (and without
		// recorders attached) execution proceeds through predecoded
		// micro-op blocks, pausing exactly at fastLimit — the next stop
		// boundary, step limit, or hook window start. The single-step
		// interpreter below handles everything the fast path declines.
		if lim := m.fastLimit(stop); lim > m.Steps {
			moved, ferr := m.runFast(lim)
			if ferr != nil {
				err = ferr
				break
			}
			if moved {
				continue
			}
		}
		if err = m.Step(); err != nil {
			break
		}
	}
	res := Result{
		Exited:   m.Exited,
		ExitCode: m.ExitCode,
		Steps:    m.Steps,
		Stdout:   m.Stdout,
		Stderr:   m.Stderr,
	}
	return res, m.Exited || err != nil, err
}

// Step executes one instruction.
func (m *Machine) Step() error {
	if m.fetchHook != nil {
		m.fetchHook(m)
	}
	if m.pageLog != nil {
		m.notePage(m.RIP)
	}
	gen := m.Mem.CodeGeneration()
	if m.icacheBase != nil && gen != m.icacheBase.gen {
		m.icacheBase = nil // seeded cache is stale once code mutates
	}
	var in *isa.Inst
	if m.icacheBase != nil {
		in = m.icacheBase.lookup(m.RIP)
	}
	if in == nil {
		if m.icache == nil || gen != m.icacheGen {
			m.icache = make(map[uint64]*isa.Inst, 64)
			m.icacheGen = gen
		}
		in = m.icache[m.RIP]
	}
	if in == nil {
		n, err := m.Mem.Fetch(m.RIP, m.fetchBuf[:])
		if err != nil {
			return err
		}
		dec, err := decode.Decode(m.fetchBuf[:n], m.RIP)
		if err != nil {
			// A decode-failure crash depends on every fetched byte and,
			// when the window was truncated, on the page that cut it
			// short — log them so the footprint invalidates if either
			// changes (the successful-decode path logs its tail page
			// below, after EncLen is known).
			if m.pageLog != nil {
				if n > 1 {
					m.notePage(m.RIP + uint64(n) - 1)
				}
				if n < len(m.fetchBuf) {
					m.notePage(m.RIP + uint64(n))
				}
			}
			return fmt.Errorf("at %#x: %w", m.RIP, err)
		}
		in = &dec
		m.icache[m.RIP] = in
	}
	if m.pageLog != nil && in.EncLen > 1 {
		// An instruction straddling a page boundary fetched from both
		// pages; log the tail page too.
		m.notePage(m.RIP + uint64(in.EncLen) - 1)
	}
	if m.recordTrace {
		m.Trace = append(m.Trace, TraceEntry{Addr: m.RIP, Len: in.EncLen, Op: in.Op, Cond: in.Cond})
	}
	m.Steps++
	if m.stepHook != nil {
		if m.stepHook(m, in) == ActSkip {
			m.RIP += uint64(in.EncLen)
			return nil
		}
	}
	return m.exec(in)
}

// reg reads a register at the given width (zero-extended).
func (m *Machine) reg(r isa.Reg, w uint8) uint64 {
	return m.Regs[r] & widthMask(w)
}

// setReg writes a register with x86-64 width semantics: 64-bit writes
// replace, 32-bit writes zero-extend, 8-bit writes merge the low byte.
func (m *Machine) setReg(r isa.Reg, v uint64, w uint8) {
	switch w {
	case 8:
		m.Regs[r] = v
	case 4:
		m.Regs[r] = v & 0xFFFFFFFF
	case 1:
		m.Regs[r] = (m.Regs[r] &^ 0xFF) | (v & 0xFF)
	}
}

// OperandAddr computes the effective address a memory operand resolves
// to in the machine's current state (RIP-relative addressing uses the
// instruction's decoder metadata). Fault injectors use it to locate the
// memory cell an instruction is about to access; op must be a KindMem
// operand of in.
func (m *Machine) OperandAddr(in *isa.Inst, op *isa.Operand) uint64 {
	return m.effAddr(in, &op.Mem)
}

// FlipRegBit toggles one bit (0..63) of a general-purpose register —
// the register-fault primitive. Resumed machines carry private register
// files, so flipping a register never leaks into the snapshot the run
// was forked from.
func (m *Machine) FlipRegBit(r isa.Reg, bit uint) {
	m.Regs[r] ^= 1 << (bit & 63)
}

// effAddr computes the effective address of a memory operand for the
// instruction (RIP-relative uses the end of the instruction).
func (m *Machine) effAddr(in *isa.Inst, mem *isa.Mem) uint64 {
	if mem.RIPRel {
		return in.Addr + uint64(in.EncLen) + uint64(int64(mem.Disp))
	}
	var a uint64
	if mem.Base != isa.NoReg {
		a = m.Regs[mem.Base]
	}
	if mem.Index != isa.NoReg {
		a += m.Regs[mem.Index] * uint64(mem.Scale)
	}
	return a + uint64(int64(mem.Disp))
}

// readOperand loads the value of a reg/imm/mem operand.
func (m *Machine) readOperand(in *isa.Inst, op *isa.Operand) (uint64, error) {
	switch op.Kind {
	case isa.KindReg:
		return m.reg(op.Reg, op.Width), nil
	case isa.KindImm:
		return uint64(op.Imm) & widthMask(op.Width), nil
	case isa.KindMem:
		return m.Mem.ReadUint(m.effAddr(in, &op.Mem), op.Width)
	}
	return 0, fmt.Errorf("emu: read of empty operand in %s", in)
}

// writeOperand stores a value to a reg/mem operand.
func (m *Machine) writeOperand(in *isa.Inst, op *isa.Operand, v uint64) error {
	switch op.Kind {
	case isa.KindReg:
		m.setReg(op.Reg, v, op.Width)
		return nil
	case isa.KindMem:
		return m.Mem.WriteUint(m.effAddr(in, &op.Mem), v, op.Width)
	}
	return fmt.Errorf("emu: write to bad operand in %s", in)
}

func (m *Machine) push64(v uint64) error {
	m.Regs[isa.RSP] -= 8
	return m.Mem.WriteUint(m.Regs[isa.RSP], v, 8)
}

func (m *Machine) pop64() (uint64, error) {
	v, err := m.Mem.ReadUint(m.Regs[isa.RSP], 8)
	if err != nil {
		return 0, err
	}
	m.Regs[isa.RSP] += 8
	return v, nil
}

// exec executes a decoded instruction and advances RIP.
func (m *Machine) exec(in *isa.Inst) error {
	next := in.Addr + uint64(in.EncLen)
	f := flagState{&m.Rflags}

	switch in.Op {
	case isa.MOV:
		v, err := m.readOperand(in, &in.Src)
		if err != nil {
			return err
		}
		if err := m.writeOperand(in, &in.Dst, v); err != nil {
			return err
		}

	case isa.MOVZX:
		v, err := m.readOperand(in, &in.Src)
		if err != nil {
			return err
		}
		m.setReg(in.Dst.Reg, v&0xFF, in.Dst.Width)

	case isa.MOVSX:
		v, err := m.readOperand(in, &in.Src)
		if err != nil {
			return err
		}
		m.setReg(in.Dst.Reg, uint64(int64(int8(v))), in.Dst.Width)

	case isa.LEA:
		m.setReg(in.Dst.Reg, m.effAddr(in, &in.Src.Mem), in.Dst.Width)

	case isa.ADD, isa.ADC, isa.SUB, isa.SBB, isa.CMP, isa.AND, isa.OR, isa.XOR:
		a, err := m.readOperand(in, &in.Dst)
		if err != nil {
			return err
		}
		b, err := m.readOperand(in, &in.Src)
		if err != nil {
			return err
		}
		w := in.Dst.Width
		carry := uint64(0)
		if m.Rflags&isa.FlagCF != 0 {
			carry = 1
		}
		var r uint64
		switch in.Op {
		case isa.ADD:
			r = f.addFlags(a, b, 0, w)
		case isa.ADC:
			r = f.addFlags(a, b, carry, w)
		case isa.SUB, isa.CMP:
			r = f.subFlags(a, b, 0, w)
		case isa.SBB:
			r = f.subFlags(a, b, carry, w)
		case isa.AND:
			r = (a & b) & widthMask(w)
			f.logicFlags(r, w)
		case isa.OR:
			r = (a | b) & widthMask(w)
			f.logicFlags(r, w)
		case isa.XOR:
			r = (a ^ b) & widthMask(w)
			f.logicFlags(r, w)
		}
		if in.Op != isa.CMP {
			if err := m.writeOperand(in, &in.Dst, r); err != nil {
				return err
			}
		}

	case isa.TEST:
		a, err := m.readOperand(in, &in.Dst)
		if err != nil {
			return err
		}
		b, err := m.readOperand(in, &in.Src)
		if err != nil {
			return err
		}
		f.logicFlags(a&b&widthMask(in.Dst.Width), in.Dst.Width)

	case isa.NOT:
		a, err := m.readOperand(in, &in.Dst)
		if err != nil {
			return err
		}
		if err := m.writeOperand(in, &in.Dst, ^a&widthMask(in.Dst.Width)); err != nil {
			return err
		}

	case isa.NEG:
		a, err := m.readOperand(in, &in.Dst)
		if err != nil {
			return err
		}
		r := f.subFlags(0, a, 0, in.Dst.Width)
		if err := m.writeOperand(in, &in.Dst, r); err != nil {
			return err
		}

	case isa.INC, isa.DEC:
		a, err := m.readOperand(in, &in.Dst)
		if err != nil {
			return err
		}
		var r uint64
		if in.Op == isa.INC {
			r = f.incFlags(a, in.Dst.Width)
		} else {
			r = f.decFlags(a, in.Dst.Width)
		}
		if err := m.writeOperand(in, &in.Dst, r); err != nil {
			return err
		}

	case isa.SHL, isa.SHR, isa.SAR:
		a, err := m.readOperand(in, &in.Dst)
		if err != nil {
			return err
		}
		count := uint(in.Src.Imm) & 0x3F
		var r uint64
		switch in.Op {
		case isa.SHL:
			r = f.shlFlags(a, count, in.Dst.Width)
		case isa.SHR:
			r = f.shrFlags(a, count, in.Dst.Width)
		case isa.SAR:
			r = f.sarFlags(a, count, in.Dst.Width)
		}
		if err := m.writeOperand(in, &in.Dst, r); err != nil {
			return err
		}

	case isa.IMUL:
		a, err := m.readOperand(in, &in.Dst)
		if err != nil {
			return err
		}
		b, err := m.readOperand(in, &in.Src)
		if err != nil {
			return err
		}
		r := f.imulFlags(a, b, in.Dst.Width)
		m.setReg(in.Dst.Reg, r, in.Dst.Width)

	case isa.PUSH:
		if err := m.push64(m.Regs[in.Dst.Reg]); err != nil {
			return err
		}

	case isa.POP:
		v, err := m.pop64()
		if err != nil {
			return err
		}
		m.Regs[in.Dst.Reg] = v

	case isa.PUSHFQ:
		if err := m.push64(m.Rflags); err != nil {
			return err
		}

	case isa.POPFQ:
		v, err := m.pop64()
		if err != nil {
			return err
		}
		// Only the arithmetic flags are writable in this subset; the
		// fixed bits stay as the architecture defines for user mode.
		m.Rflags = isa.FlagsFixed | (v & isa.FlagsArithMask)

	case isa.JMP:
		m.RIP = in.Target
		return nil

	case isa.JCC:
		if isa.CondHolds(in.Cond, m.Rflags) {
			m.RIP = in.Target
			return nil
		}

	case isa.CALL:
		if err := m.push64(next); err != nil {
			return err
		}
		m.RIP = in.Target
		return nil

	case isa.RET:
		v, err := m.pop64()
		if err != nil {
			return err
		}
		m.RIP = v
		return nil

	case isa.SETCC:
		v := uint64(0)
		if isa.CondHolds(in.Cond, m.Rflags) {
			v = 1
		}
		if err := m.writeOperand(in, &in.Dst, v); err != nil {
			return err
		}

	case isa.SYSCALL:
		if err := m.syscall(next); err != nil {
			return err
		}

	case isa.NOP:
		// nothing

	case isa.HLT, isa.UD2:
		return fmt.Errorf("at %#x: %w", in.Addr, ErrHalted)

	default:
		return fmt.Errorf("emu: at %#x: unimplemented op %s", in.Addr, in.Op)
	}

	m.RIP = next
	return nil
}
