package emu

import (
	"errors"
	"testing"

	"github.com/r2r/reinforce/internal/asm"
	"github.com/r2r/reinforce/internal/elf"
	"github.com/r2r/reinforce/internal/isa"
)

// run assembles and runs a program, failing the test on assembly errors.
func run(t *testing.T, src string, cfg Config) (Result, error) {
	t.Helper()
	bin, err := asm.Assemble(src, nil)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := New(bin, cfg)
	return m.Run()
}

// mustExit runs a program and requires a clean exit with the given code.
func mustExit(t *testing.T, src string, cfg Config, wantCode int) Result {
	t.Helper()
	res, err := run(t, src, cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !res.Exited || res.ExitCode != wantCode {
		t.Fatalf("exit = (%v, %d), want (true, %d)", res.Exited, res.ExitCode, wantCode)
	}
	return res
}

const exitStub = `
	mov rax, 60
	syscall
`

func TestHelloWorld(t *testing.T) {
	src := `
.text
_start:
	mov rax, 1
	mov rdi, 1
	lea rsi, [rip+msg]
	mov rdx, msg_len
	syscall
	mov rax, 60
	mov rdi, 0
	syscall
.rodata
msg: .ascii "hello, world\n"
.equ msg_len, . - msg
`
	res := mustExit(t, src, Config{}, 0)
	if string(res.Stdout) != "hello, world\n" {
		t.Errorf("stdout = %q", res.Stdout)
	}
}

func TestReadStdin(t *testing.T) {
	src := `
.text
_start:
	mov rax, 0
	mov rdi, 0
	lea rsi, [rip+buf]
	mov rdx, 8
	syscall
	mov rdi, rax       ; exit code = bytes read
	mov rax, 60
	syscall
.bss
buf: .zero 8
`
	res := mustExit(t, src, Config{Stdin: []byte("abcd")}, 4)
	_ = res
	// Reading again past EOF returns 0.
	src2 := `
.text
_start:
	mov rax, 0
	mov rdi, 0
	lea rsi, [rip+buf]
	mov rdx, 8
	syscall
	mov rax, 0
	mov rdi, 0
	lea rsi, [rip+buf]
	mov rdx, 8
	syscall
	mov rdi, rax
	mov rax, 60
	syscall
.bss
buf: .zero 8
`
	mustExit(t, src2, Config{Stdin: []byte("abcd")}, 0)
}

func TestArithmeticAndLoops(t *testing.T) {
	// Sum 1..10 = 55.
	src := `
.text
_start:
	xor rax, rax
	mov rcx, 10
loop:
	add rax, rcx
	dec rcx
	jne loop
	mov rdi, rax
	mov rax, 60
	syscall
`
	mustExit(t, src, Config{}, 55)
}

func TestCallRetStack(t *testing.T) {
	src := `
.text
_start:
	mov rdi, 5
	call double
	call double
	mov rdi, rax
	mov rax, 60
	syscall
double:
	mov rax, rdi
	add rax, rax
	mov rdi, rax
	ret
`
	mustExit(t, src, Config{}, 20)
}

func TestPushPopPushfqPopfq(t *testing.T) {
	src := `
.text
_start:
	mov rbx, 123
	push rbx
	mov rbx, 0
	pop rbx            ; rbx = 123 again
	cmp rbx, 123
	jne bad
	; flags survive pushfq/popfq across a clobbering op
	cmp rbx, 123       ; ZF=1
	pushfq
	cmp rbx, 999       ; ZF=0
	popfq
	jne bad            ; must NOT branch: restored ZF=1
	mov rdi, 0
	mov rax, 60
	syscall
bad:
	mov rdi, 1
	mov rax, 60
	syscall
`
	mustExit(t, src, Config{}, 0)
}

func TestSetccMovzx(t *testing.T) {
	src := `
.text
_start:
	mov rax, 7
	cmp rax, 3
	setg cl            ; 7 > 3 -> cl = 1
	movzx rdi, cl
	cmp rax, 100
	setg cl            ; 7 > 100 -> cl = 0
	movzx rax, cl
	add rdi, rax       ; rdi = 1
	mov rax, 60
	syscall
`
	mustExit(t, src, Config{}, 1)
}

func Test32BitZeroExtension(t *testing.T) {
	// Writing a 32-bit register clears the upper half (x86-64 rule).
	src := `
.text
_start:
	mov rax, -1        ; all ones
	mov eax, 5         ; must zero bits 32..63
	shr rax, 32
	mov rdi, rax       ; 0 if zero-extended
	mov rax, 60
	syscall
`
	mustExit(t, src, Config{}, 0)
}

func TestByteRegisterMerge(t *testing.T) {
	// Writing an 8-bit register preserves bits 8..63.
	src := `
.text
_start:
	mov rax, 0x1100
	mov al, 0x22       ; rax = 0x1122
	mov rdi, rax
	sub rdi, 0x1122
	mov rax, 60
	syscall
`
	mustExit(t, src, Config{}, 0)
}

func TestMovsxSignExtension(t *testing.T) {
	src := `
.text
_start:
	mov cl, 0xFF       ; -1 as int8
	movsx rax, cl      ; rax = -1
	add rax, 1         ; 0
	mov rdi, rax
	mov rax, 60
	syscall
`
	mustExit(t, src, Config{}, 0)
}

func TestMemoryOperandsSIB(t *testing.T) {
	src := `
.text
_start:
	lea rbx, [rip+table]
	mov rcx, 2
	mov rax, [rbx+rcx*8]   ; table[2] = 30
	mov rdi, rax
	mov rax, 60
	syscall
.data
table: .quad 10
       .quad 20
       .quad 30
       .quad 40
`
	mustExit(t, src, Config{}, 30)
}

func TestCrashUnmappedRead(t *testing.T) {
	src := `
.text
_start:
	mov rax, [rbx]     ; rbx = 0: unmapped
` + exitStub
	_, err := run(t, src, Config{})
	var mf *MemFault
	if !errors.As(err, &mf) || mf.Kind != AccessRead {
		t.Errorf("err = %v, want read MemFault", err)
	}
}

func TestCrashWriteToROData(t *testing.T) {
	src := `
.text
_start:
	lea rbx, [rip+konst]
	mov qword ptr [rbx], 1
` + exitStub + `
.rodata
konst: .quad 5
`
	_, err := run(t, src, Config{})
	var mf *MemFault
	if !errors.As(err, &mf) || mf.Kind != AccessWrite {
		t.Errorf("err = %v, want write MemFault", err)
	}
}

func TestCrashHlt(t *testing.T) {
	_, err := run(t, ".text\n_start:\n\thlt\n", Config{})
	if !errors.Is(err, ErrHalted) {
		t.Errorf("err = %v, want ErrHalted", err)
	}
	_, err = run(t, ".text\n_start:\n\tud2\n", Config{})
	if !errors.Is(err, ErrHalted) {
		t.Errorf("ud2: err = %v, want ErrHalted", err)
	}
}

func TestStepLimit(t *testing.T) {
	src := ".text\n_start:\nspin:\n\tjmp spin\n"
	_, err := run(t, src, Config{StepLimit: 1000})
	if !errors.Is(err, ErrStepLimit) {
		t.Errorf("err = %v, want ErrStepLimit", err)
	}
}

func TestUnknownSyscall(t *testing.T) {
	src := ".text\n_start:\n\tmov rax, 9999\n\tsyscall\n"
	_, err := run(t, src, Config{})
	if !errors.Is(err, ErrBadSyscall) {
		t.Errorf("err = %v, want ErrBadSyscall", err)
	}
}

func TestBadFDWrite(t *testing.T) {
	// write to fd 5 returns -EBADF; program exits with that (masked).
	src := `
.text
_start:
	mov rax, 1
	mov rdi, 5
	lea rsi, [rip+msg]
	mov rdx, 1
	syscall
	cmp rax, -9
	je good
	mov rdi, 1
	mov rax, 60
	syscall
good:
	mov rdi, 0
	mov rax, 60
	syscall
.rodata
msg: .ascii "x"
`
	mustExit(t, src, Config{}, 0)
}

func TestSyscallClobbersRCXandR11(t *testing.T) {
	src := `
.text
_start:
	mov rcx, 42
	mov r11, 42
	mov rax, 1
	mov rdi, 1
	lea rsi, [rip+msg]
	mov rdx, 1
	syscall
	cmp rcx, 42        ; must have been clobbered with return RIP
	je bad
	mov rdi, 0
	mov rax, 60
	syscall
bad:
	mov rdi, 1
	mov rax, 60
	syscall
.rodata
msg: .ascii "y"
`
	mustExit(t, src, Config{}, 0)
}

func TestTraceRecording(t *testing.T) {
	src := `
.text
_start:
	mov rax, 60
	mov rdi, 0
	syscall
`
	bin, err := asm.Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := New(bin, Config{RecordTrace: true})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(m.Trace) != 3 {
		t.Fatalf("trace length = %d, want 3", len(m.Trace))
	}
	if m.Trace[0].Addr != bin.Entry {
		t.Errorf("trace[0] = %#x, want entry %#x", m.Trace[0].Addr, bin.Entry)
	}
	if m.Trace[2].Op != isa.SYSCALL {
		t.Errorf("trace[2].Op = %v, want syscall", m.Trace[2].Op)
	}
}

func TestSkipHook(t *testing.T) {
	// Skipping the "mov rdi, 1" leaves rdi = 0 from the xor.
	src := `
.text
_start:
	xor rdi, rdi
	mov rdi, 1
	mov rax, 60
	syscall
`
	bin, err := asm.Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	step := 0
	m := New(bin, Config{StepHook: func(m *Machine, in *isa.Inst) StepAction {
		step++
		if step == 2 { // the mov rdi, 1
			return ActSkip
		}
		return ActContinue
	}})
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 0 {
		t.Errorf("exit = %d, want 0 (mov skipped)", res.ExitCode)
	}
}

func TestFetchHookBitflip(t *testing.T) {
	// Flip a bit in "mov rdi, 2" turning the immediate 2 into 3
	// (bit 0 of the imm byte) just before it executes.
	src := `
.text
_start:
	mov rdi, 2
	mov rax, 60
	syscall
`
	bin, err := asm.Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	flipped := false
	m := New(bin, Config{FetchHook: func(m *Machine) {
		if !flipped && m.Steps == 0 {
			// mov rdi, 2 is REX.W C7 C7 imm32; imm starts at byte 3.
			if err := m.Mem.FlipBit(m.RIP+3, 0); err != nil {
				t.Fatal(err)
			}
			flipped = true
		}
	}})
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 3 {
		t.Errorf("exit = %d, want 3 (bitflipped immediate)", res.ExitCode)
	}
}

func TestStackDiscipline(t *testing.T) {
	// Deep call chain exercising stack growth.
	src := `
.text
_start:
	mov rcx, 100
	call recurse
	mov rdi, 0
	mov rax, 60
	syscall
recurse:
	dec rcx
	je done
	call recurse
done:
	ret
`
	mustExit(t, src, Config{}, 0)
}

func TestExitCodeTruncation(t *testing.T) {
	// exit(300) keeps 300 in our Result (int32 semantics, no & 0xff:
	// the faulter compares full codes).
	src := ".text\n_start:\n\tmov rax, 60\n\tmov rdi, 300\n\tsyscall\n"
	mustExit(t, src, Config{}, 300)
}

func TestWriteLargeCount(t *testing.T) {
	// A fault-corrupted huge count must not blow up the host.
	src := `
.text
_start:
	mov rax, 1
	mov rdi, 1
	lea rsi, [rip+msg]
	mov rdx, 0x7fffffffffffffff
	syscall
	cmp rax, -14
	je ok
	mov rdi, 1
	mov rax, 60
	syscall
ok:
	mov rdi, 0
	mov rax, 60
	syscall
.rodata
msg: .ascii "x"
`
	mustExit(t, src, Config{}, 0)
}

func TestRunResultFieldsOnCrash(t *testing.T) {
	src := `
.text
_start:
	mov rax, 1
	mov rdi, 1
	lea rsi, [rip+msg]
	mov rdx, 3
	syscall
	hlt
.rodata
msg: .ascii "abc"
`
	res, err := run(t, src, Config{})
	if err == nil {
		t.Fatal("expected crash")
	}
	if string(res.Stdout) != "abc" {
		t.Errorf("stdout before crash = %q", res.Stdout)
	}
	if res.Exited {
		t.Error("Exited true on crash")
	}
}

func TestNewMapsEverything(t *testing.T) {
	bin := &elf.Binary{
		Entry: 0x401000,
		Sections: []*elf.Section{
			{Name: ".text", Addr: 0x401000, Data: []byte{0xF4}, Flags: elf.FlagRead | elf.FlagExec},
		},
	}
	m := New(bin, Config{})
	if m.RIP != 0x401000 {
		t.Errorf("RIP = %#x", m.RIP)
	}
	if m.Regs[isa.RSP] == 0 {
		t.Error("RSP not initialized")
	}
	if m.Rflags&isa.FlagIF == 0 {
		t.Error("IF not set in initial rflags")
	}
}
