package emu

import (
	"testing"

	"github.com/r2r/reinforce/internal/asm"
	"github.com/r2r/reinforce/internal/isa"
)

// TestPushfqBitLayout pins the architectural RFLAGS image: the cmp
// pattern of Table II depends on pushfq snapshots being comparable, and
// the lifter's compose/decompose must agree with the emulator bit for
// bit.
func TestPushfqBitLayout(t *testing.T) {
	// cmp rax, rbx with rax==rbx sets ZF and PF; rflags image must be
	// fixed-bits | ZF | PF.
	src := `
.text
_start:
	mov rax, 7
	mov rbx, 7
	cmp rax, rbx
	pushfq
	pop rdi           ; exit code = low byte of rflags
	and rdi, 0xff
	mov rax, 60
	syscall
`
	bin, err := asm.Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(bin, Config{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	want := int((isa.FlagsFixed | isa.FlagZF | isa.FlagPF) & 0xFF)
	if res.ExitCode != want {
		t.Errorf("rflags low byte = %#x, want %#x", res.ExitCode, want)
	}
}

func TestPushfqCarrySign(t *testing.T) {
	// 0 - 1 sets CF, SF, AF, PF(0xFF has 8 bits -> even parity).
	src := `
.text
_start:
	xor rax, rax
	mov rbx, 1
	sub rax, rbx
	pushfq
	pop rdi
	and rdi, 0xff
	mov rax, 60
	syscall
`
	bin, err := asm.Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(bin, Config{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	want := int((isa.FlagsFixed | isa.FlagCF | isa.FlagSF | isa.FlagAF | isa.FlagPF) & 0xFF)
	if res.ExitCode != want {
		t.Errorf("rflags low byte = %#x, want %#x", res.ExitCode, want)
	}
}

// TestPopfqRoundTripArbitraryFlags: any arithmetic-flag combination
// written via popfq must read back identically via pushfq.
func TestPopfqRoundTripArbitraryFlags(t *testing.T) {
	for img := uint64(0); img < 1<<6; img++ {
		// Spread the 6 arithmetic flags over their architectural bits.
		flags := uint64(0)
		bits := []uint64{isa.FlagCF, isa.FlagPF, isa.FlagAF, isa.FlagZF, isa.FlagSF, isa.FlagOF}
		for i, b := range bits {
			if img&(1<<i) != 0 {
				flags |= b
			}
		}
		src := `
.text
_start:
	mov rax, ` + itoa(int64(flags)) + `
	push rax
	popfq
	pushfq
	pop rdi
	mov rax, 60
	syscall
`
		bin, err := asm.Assemble(src, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := New(bin, Config{}).Run()
		if err != nil {
			t.Fatal(err)
		}
		want := int(int32(isa.FlagsFixed | flags))
		if res.ExitCode != want {
			t.Fatalf("flags %#x: round trip = %#x, want %#x", flags, res.ExitCode, want)
		}
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [24]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
