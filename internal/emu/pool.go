// Allocation pools for the fault-campaign fan-out. A campaign resumes
// tens of thousands of short-lived machines from snapshots; each one
// used to allocate a Machine, a Memory, and every page it dirtied,
// making the garbage collector a visible fraction of campaign time.
// The pools recycle all three through Machine.Release, which the fault
// executors call once a fork's Result has been extracted.
package emu

import "sync"

// pagePool recycles 4 KiB page frames. clonePage and the materializing
// paths draw from it; Release returns every private (non-cow) overlay
// page.
var pagePool = sync.Pool{New: func() any { return new(page) }}

// materializePage returns a zeroed page frame with the given
// permissions, reusing a pooled frame when one is available.
func materializePage(perm uint32) *page {
	p := pagePool.Get().(*page)
	*p = page{perm: perm}
	return p
}

// machinePool and memoryPool recycle the fixed-size shells around the
// pages. Snapshot.Resume draws from them.
var (
	machinePool = sync.Pool{New: func() any { return new(Machine) }}
	memoryPool  = sync.Pool{New: func() any { return new(Memory) }}
)

// privPool recycles machine-private micro-op translations — the
// index, uop stream, and instruction slab keep their capacity across
// machines, so a recycled translation usually re-translates without
// allocating.
var privPool = sync.Pool{New: func() any { return new(privProg) }}

// resumeMachine returns a pooled, zeroed Machine shell.
func resumeMachine() *Machine {
	m := machinePool.Get().(*Machine)
	*m = Machine{}
	return m
}

// Release returns the machine, its address space, and all private
// overlay pages to the allocation pools. The machine must not be used
// afterwards. Calling Release is optional (the garbage collector
// remains correct without it) and is a no-op for machines whose memory
// donated pages to a Snapshot — frozen page tables are shared with
// immutable images and resumed siblings, so they must stay live.
//
// Safe to call after the Result has been extracted: Result.Stdout and
// Stderr are the machine's own heap slices (never pooled), and
// copy-on-write pages in the overlay are skipped (they belong to the
// snapshot that marked them).
func (m *Machine) Release() {
	if m == nil || m.Mem == nil || m.Mem.frozen {
		return
	}
	if p := m.priv; p != nil {
		m.priv = nil
		privPool.Put(p)
	}
	mem := m.Mem
	for pa, p := range mem.pages {
		delete(mem.pages, pa)
		if p.cow {
			// Shared with a frozen image; not ours to recycle.
			continue
		}
		pagePool.Put(p)
	}
	pages := mem.pages // keep the cleared map's buckets
	*mem = Memory{pages: pages}
	memoryPool.Put(mem)
	*m = Machine{}
	machinePool.Put(m)
}
