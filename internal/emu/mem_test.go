package emu

import (
	"bytes"
	"errors"
	"testing"

	"github.com/r2r/reinforce/internal/elf"
)

func TestMemoryReadWrite(t *testing.T) {
	m := NewMemory()
	m.Map(0x1000, 0x2000, elf.FlagRead|elf.FlagWrite)

	if err := m.Write(0x1800, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if err := m.Read(0x1800, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte{1, 2, 3, 4}) {
		t.Errorf("read back % X", buf)
	}
}

func TestMemoryCrossPage(t *testing.T) {
	m := NewMemory()
	m.Map(0x1000, 0x2000, elf.FlagRead|elf.FlagWrite)
	data := make([]byte, 100)
	for i := range data {
		data[i] = byte(i)
	}
	// Straddle the 0x2000 page boundary.
	if err := m.Write(0x1FD0, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 100)
	if err := m.Read(0x1FD0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Error("cross-page data mismatch")
	}
	v, err := m.ReadUint(0x1FFC, 8)
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	for i := 7; i >= 0; i-- {
		want = want<<8 | uint64(data[0x2C+i])
	}
	if v != want {
		t.Errorf("ReadUint cross page = %#x, want %#x", v, want)
	}
}

func TestMemoryFaults(t *testing.T) {
	m := NewMemory()
	m.Map(0x1000, 0x1000, elf.FlagRead)
	m.Map(0x5000, 0x1000, elf.FlagRead|elf.FlagExec)

	var mf *MemFault
	if err := m.Write(0x1000, []byte{1}); !errors.As(err, &mf) || mf.Kind != AccessWrite {
		t.Errorf("write to read-only: %v", err)
	}
	if err := m.Read(0x9000, make([]byte, 1)); !errors.As(err, &mf) || mf.Kind != AccessRead {
		t.Errorf("read unmapped: %v", err)
	}
	if _, err := m.Fetch(0x1000, make([]byte, 4)); !errors.As(err, &mf) || mf.Kind != AccessExec {
		t.Errorf("fetch from non-exec: %v", err)
	}
	if _, err := m.Fetch(0x5000, make([]byte, 4)); err != nil {
		t.Errorf("fetch from exec: %v", err)
	}
	// Partial range fault: write spans into unmapped page.
	if err := m.Write(0x1FF0, make([]byte, 64)); err == nil {
		t.Error("write spanning unmapped page succeeded")
	}
}

func TestFetchStopsAtSegmentEnd(t *testing.T) {
	m := NewMemory()
	m.Map(0x1000, 0x1000, elf.FlagRead|elf.FlagExec)
	buf := make([]byte, 15)
	n, err := m.Fetch(0x1FFD, buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("fetched %d bytes at segment end, want 3", n)
	}
}

func TestPokePeekFlip(t *testing.T) {
	m := NewMemory()
	m.Map(0x1000, 0x1000, elf.FlagRead|elf.FlagExec) // not writable

	if err := m.Poke(0x1004, 0xAB); err != nil {
		t.Fatal(err)
	}
	b, err := m.Peek(0x1004)
	if err != nil || b != 0xAB {
		t.Fatalf("peek = %#x, %v", b, err)
	}
	if err := m.FlipBit(0x1004, 1); err != nil {
		t.Fatal(err)
	}
	b, _ = m.Peek(0x1004)
	if b != 0xA9 {
		t.Errorf("after flip bit 1: %#x, want 0xA9", b)
	}
	if err := m.Poke(0xFFFF_0000, 1); err == nil {
		t.Error("poke to unmapped succeeded")
	}
	if err := m.FlipBit(0xFFFF_0000, 0); err == nil {
		t.Error("flip in unmapped succeeded")
	}
}

func TestLoadSection(t *testing.T) {
	m := NewMemory()
	m.LoadSection(&elf.Section{
		Name:  ".text",
		Addr:  0x401000,
		Data:  []byte{0x90, 0xC3},
		Flags: elf.FlagRead | elf.FlagExec,
	})
	buf := make([]byte, 2)
	if _, err := m.Fetch(0x401000, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0x90 || buf[1] != 0xC3 {
		t.Errorf("loaded bytes % X", buf)
	}
	// BSS-style section with MemSize > len(Data).
	m.LoadSection(&elf.Section{
		Name:    ".bss",
		Addr:    0x600000,
		MemSize: 8192,
		Flags:   elf.FlagRead | elf.FlagWrite,
	})
	if err := m.Write(0x601000, []byte{1}); err != nil {
		t.Errorf("bss tail not mapped: %v", err)
	}
}

func TestPermWidening(t *testing.T) {
	m := NewMemory()
	m.Map(0x1000, 0x1000, elf.FlagRead)
	m.Map(0x1000, 0x1000, elf.FlagWrite)
	if err := m.Write(0x1000, []byte{1}); err != nil {
		t.Errorf("widened perm write failed: %v", err)
	}
	if err := m.Read(0x1000, make([]byte, 1)); err != nil {
		t.Errorf("original perm read failed: %v", err)
	}
}
