// Micro-op fast path: the emulator's hot loop rewritten around a
// predecoded, closure-free instruction stream.
//
// The single-step interpreter (Step in machine.go) pays per-step costs
// that exist only to support hooks, recorders, and self-modifying
// code: hook nil checks, page logging, code-generation checks, decode
// cache lookups, and the operand-kind switches inside exec. Fault
// campaigns execute the same golden instructions millions of times
// with all of that machinery idle, so each decoded instruction is
// translated once into a compact micro-op (uop) — operand kinds
// resolved, immediates pre-masked, RIP-relative addresses folded —
// and straight-line runs dispatch uops back to back off one switch.
//
// Two uop sources exist. A Program is translated once from a golden
// run's CodeCache and shared read-only by every machine resumed from
// the run's snapshots (dense index, like the decode cache it mirrors).
// Machines without a seeded program (cold starts, or after code
// mutated) translate private blocks lazily from their own memory.
//
// Correctness contract: the fast path is bit-identical to Step. It
// only runs while no hook arming window is open and no recorder is
// attached (Machine.fastLimit), errors leave RIP at the faulting
// instruction with the step already counted exactly like Step, RunUntil
// boundaries pause at precise step counts, and a uop that may write
// memory re-checks the code generation so self-modifying stores drop
// back to the interpreter before a stale block executes. The
// differential fuzz target (FuzzFastPathDifferential) and the campaign
// parity tests enforce the contract.
package emu

import (
	"github.com/r2r/reinforce/internal/decode"
	"github.com/r2r/reinforce/internal/isa"
)

// uop kinds. uGeneric falls back to the interpreter's exec switch for
// anything not worth specializing (rare ops, odd operand shapes).
const (
	uGeneric uint8 = iota
	uNop
	uMovRR // mov reg, reg
	uMovRI // mov reg, imm
	uMovRM // mov reg, [mem]
	uMovMR // mov [mem], reg
	uMovMI // mov [mem], imm
	uMovzxR
	uMovzxM
	uMovsxR
	uMovsxM
	uLea
	uAluRR // add/adc/sub/sbb/cmp/and/or/xor/test/imul reg, reg
	uAluRI
	uAluRM
	uAluMR
	uAluMI
	uShiftR // shl/shr/sar reg, imm
	uUnaryR // not/neg/inc/dec reg
	uPush
	uPop
	uPushfq
	uPopfq
	uSetccR
	uJmp
	uJcc
	uCall
	uRet
	uSyscall
)

// uop flags.
const (
	// uFlagCF: the executor sets RIP itself (branches, ret, syscall,
	// and the generic fallback); the block runner re-resolves the
	// stream at the new RIP.
	uFlagCF uint8 = 1 << iota
	// uFlagSeq: the next uop in the stream is this one's fall-through
	// successor, so the runner advances by index instead of lookup.
	uFlagSeq
	// uFlagMemW: the uop may write memory; the runner re-checks the
	// code generation afterwards and bails out if a store touched
	// executable bytes (self-modifying code).
	uFlagMemW
)

// uop is one predecoded instruction: operand kinds resolved at
// translation time so execution is a flat switch with no per-step
// decode, map, or operand-kind dispatch.
type uop struct {
	kind   uint8
	flags  uint8
	width  uint8 // destination operand width
	width2 uint8 // source operand width
	scale  uint8
	op     isa.Op
	cond   isa.Cond
	dst    isa.Reg
	src    isa.Reg
	base   isa.Reg // memory base (NoReg: disp is absolute)
	index  isa.Reg // memory index (NoReg: none)
	imm    int64   // pre-masked immediate / shift count
	disp   int64   // displacement; absolute address when RIP-relative
	addr   uint64  // instruction address
	next   uint64  // fall-through address (addr + encoded length)
	target uint64  // branch target
	inst   *isa.Inst
}

// setMem resolves a memory operand at translation time: RIP-relative
// operands fold to an absolute address (matching effAddr's
// Addr+EncLen+Disp), register forms keep base/index/scale/disp.
func (u *uop) setMem(in *isa.Inst, mem *isa.Mem) {
	if mem.RIPRel {
		u.base, u.index = isa.NoReg, isa.NoReg
		u.disp = int64(in.Addr + uint64(in.EncLen) + uint64(int64(mem.Disp)))
		return
	}
	u.base, u.index, u.scale = mem.Base, mem.Index, mem.Scale
	u.disp = int64(mem.Disp)
}

// uaddr computes the uop's effective memory address in the machine's
// current state, mirroring effAddr bit for bit.
func (m *Machine) uaddr(u *uop) uint64 {
	a := uint64(u.disp)
	if u.base != isa.NoReg {
		a += m.Regs[u.base]
	}
	if u.index != isa.NoReg {
		a += m.Regs[u.index] * uint64(u.scale)
	}
	return a
}

// maskImm pre-applies readOperand's immediate masking.
func maskImm(op *isa.Operand) int64 {
	return int64(uint64(op.Imm) & widthMask(op.Width))
}

// translateInst translates one decoded instruction into *u. Anything
// outside the specialized shapes keeps kind uGeneric and executes
// through the interpreter's exec switch (bit-identical by
// construction); the shared inst pointer must therefore stay valid as
// long as the uop, so callers translating from a transient decode
// result must clone it when the result is generic.
func translateInst(in *isa.Inst, u *uop) {
	*u = uop{
		kind:   uGeneric,
		flags:  uFlagCF, // exec sets RIP itself
		op:     in.Op,
		cond:   in.Cond,
		width:  in.Dst.Width,
		width2: in.Src.Width,
		dst:    in.Dst.Reg,
		src:    in.Src.Reg,
		addr:   in.Addr,
		next:   in.Addr + uint64(in.EncLen),
		target: in.Target,
		inst:   in,
	}
	regDst := in.Dst.Kind == isa.KindReg
	memDst := in.Dst.Kind == isa.KindMem
	regSrc := in.Src.Kind == isa.KindReg
	immSrc := in.Src.Kind == isa.KindImm
	memSrc := in.Src.Kind == isa.KindMem

	specialize := func(kind uint8, flags uint8) {
		u.kind = kind
		u.flags = flags
		u.inst = nil // specialized uops never consult the decoded form
	}

	switch in.Op {
	case isa.MOV:
		switch {
		case regDst && regSrc:
			specialize(uMovRR, 0)
		case regDst && immSrc:
			u.imm = maskImm(&in.Src)
			specialize(uMovRI, 0)
		case regDst && memSrc:
			u.setMem(in, &in.Src.Mem)
			specialize(uMovRM, 0)
		case memDst && regSrc:
			u.setMem(in, &in.Dst.Mem)
			specialize(uMovMR, uFlagMemW)
		case memDst && immSrc:
			u.imm = maskImm(&in.Src)
			u.setMem(in, &in.Dst.Mem)
			specialize(uMovMI, uFlagMemW)
		}

	case isa.MOVZX, isa.MOVSX:
		sx := in.Op == isa.MOVSX
		switch {
		case regDst && regSrc:
			if sx {
				specialize(uMovsxR, 0)
			} else {
				specialize(uMovzxR, 0)
			}
		case regDst && memSrc:
			u.setMem(in, &in.Src.Mem)
			if sx {
				specialize(uMovsxM, 0)
			} else {
				specialize(uMovzxM, 0)
			}
		}

	case isa.LEA:
		if regDst && memSrc {
			u.setMem(in, &in.Src.Mem)
			specialize(uLea, 0)
		}

	case isa.ADD, isa.ADC, isa.SUB, isa.SBB, isa.CMP,
		isa.AND, isa.OR, isa.XOR, isa.TEST, isa.IMUL:
		// CMP and TEST never write their destination, so the memory
		// forms carry no store flag; IMUL's destination is always a
		// register in this subset.
		w := uint8(0)
		if memDst && in.Op != isa.CMP && in.Op != isa.TEST {
			w = uFlagMemW
		}
		switch {
		case regDst && regSrc:
			specialize(uAluRR, 0)
		case regDst && immSrc:
			u.imm = maskImm(&in.Src)
			specialize(uAluRI, 0)
		case regDst && memSrc:
			u.setMem(in, &in.Src.Mem)
			specialize(uAluRM, 0)
		case memDst && regSrc:
			u.setMem(in, &in.Dst.Mem)
			specialize(uAluMR, w)
		case memDst && immSrc:
			u.imm = maskImm(&in.Src)
			u.setMem(in, &in.Dst.Mem)
			specialize(uAluMI, w)
		}

	case isa.SHL, isa.SHR, isa.SAR:
		// exec reads the count from Src.Imm unconditionally, so only
		// the immediate-count register form is specialized.
		if regDst && immSrc {
			u.imm = int64(uint(in.Src.Imm) & 0x3F)
			specialize(uShiftR, 0)
		}

	case isa.NOT, isa.NEG, isa.INC, isa.DEC:
		if regDst {
			specialize(uUnaryR, 0)
		}

	case isa.PUSH:
		if regDst {
			specialize(uPush, uFlagMemW)
		}

	case isa.POP:
		if regDst {
			specialize(uPop, 0)
		}

	case isa.PUSHFQ:
		specialize(uPushfq, uFlagMemW)

	case isa.POPFQ:
		specialize(uPopfq, 0)

	case isa.SETCC:
		if regDst {
			specialize(uSetccR, 0)
		}

	case isa.JMP:
		specialize(uJmp, uFlagCF)

	case isa.JCC:
		specialize(uJcc, uFlagCF)

	case isa.CALL:
		specialize(uCall, uFlagCF)

	case isa.RET:
		specialize(uRet, uFlagCF)

	case isa.SYSCALL:
		specialize(uSyscall, uFlagCF)

	case isa.NOP:
		specialize(uNop, 0)
	}
}

// aluCompute evaluates an ALU uop's result and flags exactly like the
// corresponding exec cases. For CMP and TEST the result is discarded
// by the caller; TEST sets flags here like exec's dedicated case.
func (m *Machine) aluCompute(op isa.Op, a, b uint64, w uint8) uint64 {
	f := flagState{&m.Rflags}
	switch op {
	case isa.ADD:
		return f.addFlags(a, b, 0, w)
	case isa.ADC:
		carry := uint64(0)
		if m.Rflags&isa.FlagCF != 0 {
			carry = 1
		}
		return f.addFlags(a, b, carry, w)
	case isa.SUB, isa.CMP:
		return f.subFlags(a, b, 0, w)
	case isa.SBB:
		borrow := uint64(0)
		if m.Rflags&isa.FlagCF != 0 {
			borrow = 1
		}
		return f.subFlags(a, b, borrow, w)
	case isa.AND:
		r := (a & b) & widthMask(w)
		f.logicFlags(r, w)
		return r
	case isa.OR:
		r := (a | b) & widthMask(w)
		f.logicFlags(r, w)
		return r
	case isa.XOR:
		r := (a ^ b) & widthMask(w)
		f.logicFlags(r, w)
		return r
	case isa.TEST:
		f.logicFlags(a&b&widthMask(w), w)
		return 0
	case isa.IMUL:
		return f.imulFlags(a, b, w)
	}
	return 0
}

// execUop executes one micro-op. Non-control-flow uops do not update
// RIP (the block runner maintains it lazily); control-flow uops
// (uFlagCF) set RIP exactly like exec. On error the caller restores
// RIP to u.addr, matching the interpreter's state after a failed exec.
func (m *Machine) execUop(u *uop) error {
	switch u.kind {
	case uNop:

	case uMovRR:
		m.setReg(u.dst, m.reg(u.src, u.width2), u.width)
	case uMovRI:
		m.setReg(u.dst, uint64(u.imm), u.width)
	case uMovRM:
		v, err := m.Mem.ReadUint(m.uaddr(u), u.width2)
		if err != nil {
			return err
		}
		m.setReg(u.dst, v, u.width)
	case uMovMR:
		return m.Mem.WriteUint(m.uaddr(u), m.reg(u.src, u.width2), u.width)
	case uMovMI:
		return m.Mem.WriteUint(m.uaddr(u), uint64(u.imm), u.width)

	case uMovzxR:
		m.setReg(u.dst, m.reg(u.src, u.width2)&0xFF, u.width)
	case uMovzxM:
		v, err := m.Mem.ReadUint(m.uaddr(u), u.width2)
		if err != nil {
			return err
		}
		m.setReg(u.dst, v&0xFF, u.width)
	case uMovsxR:
		m.setReg(u.dst, uint64(int64(int8(m.reg(u.src, u.width2)))), u.width)
	case uMovsxM:
		v, err := m.Mem.ReadUint(m.uaddr(u), u.width2)
		if err != nil {
			return err
		}
		m.setReg(u.dst, uint64(int64(int8(v))), u.width)

	case uLea:
		m.setReg(u.dst, m.uaddr(u), u.width)

	case uAluRR:
		r := m.aluCompute(u.op, m.reg(u.dst, u.width), m.reg(u.src, u.width2), u.width)
		if u.op != isa.CMP && u.op != isa.TEST {
			m.setReg(u.dst, r, u.width)
		}
	case uAluRI:
		r := m.aluCompute(u.op, m.reg(u.dst, u.width), uint64(u.imm), u.width)
		if u.op != isa.CMP && u.op != isa.TEST {
			m.setReg(u.dst, r, u.width)
		}
	case uAluRM:
		b, err := m.Mem.ReadUint(m.uaddr(u), u.width2)
		if err != nil {
			return err
		}
		r := m.aluCompute(u.op, m.reg(u.dst, u.width), b, u.width)
		if u.op != isa.CMP && u.op != isa.TEST {
			m.setReg(u.dst, r, u.width)
		}
	case uAluMR, uAluMI:
		addr := m.uaddr(u)
		a, err := m.Mem.ReadUint(addr, u.width)
		if err != nil {
			return err
		}
		b := uint64(u.imm)
		if u.kind == uAluMR {
			b = m.reg(u.src, u.width2)
		}
		r := m.aluCompute(u.op, a, b, u.width)
		if u.op != isa.CMP && u.op != isa.TEST {
			return m.Mem.WriteUint(addr, r, u.width)
		}

	case uShiftR:
		f := flagState{&m.Rflags}
		a := m.reg(u.dst, u.width)
		count := uint(u.imm)
		var r uint64
		switch u.op {
		case isa.SHL:
			r = f.shlFlags(a, count, u.width)
		case isa.SHR:
			r = f.shrFlags(a, count, u.width)
		case isa.SAR:
			r = f.sarFlags(a, count, u.width)
		}
		m.setReg(u.dst, r, u.width)

	case uUnaryR:
		f := flagState{&m.Rflags}
		a := m.reg(u.dst, u.width)
		var r uint64
		switch u.op {
		case isa.NOT:
			r = ^a & widthMask(u.width)
		case isa.NEG:
			r = f.subFlags(0, a, 0, u.width)
		case isa.INC:
			r = f.incFlags(a, u.width)
		case isa.DEC:
			r = f.decFlags(a, u.width)
		}
		m.setReg(u.dst, r, u.width)

	case uPush:
		return m.push64(m.Regs[u.dst])
	case uPop:
		v, err := m.pop64()
		if err != nil {
			return err
		}
		m.Regs[u.dst] = v
	case uPushfq:
		return m.push64(m.Rflags)
	case uPopfq:
		v, err := m.pop64()
		if err != nil {
			return err
		}
		m.Rflags = isa.FlagsFixed | (v & isa.FlagsArithMask)

	case uSetccR:
		v := uint64(0)
		if isa.CondHolds(u.cond, m.Rflags) {
			v = 1
		}
		m.setReg(u.dst, v, u.width)

	case uJmp:
		m.RIP = u.target
	case uJcc:
		if isa.CondHolds(u.cond, m.Rflags) {
			m.RIP = u.target
		} else {
			m.RIP = u.next
		}
	case uCall:
		if err := m.push64(u.next); err != nil {
			return err
		}
		m.RIP = u.target
	case uRet:
		v, err := m.pop64()
		if err != nil {
			return err
		}
		m.RIP = v
	case uSyscall:
		if err := m.syscall(u.next); err != nil {
			return err
		}
		m.RIP = u.next

	default: // uGeneric
		return m.exec(u.inst)
	}
	return nil
}

// Program is an immutable predecoded micro-op stream, dense over a
// CodeCache's address range. Built once from a finished golden run
// and shared read-only by every machine resumed from the run's
// snapshots (see Snapshot.SeedProgram), exactly like the decode cache
// it is derived from.
type Program struct {
	base uint64
	gen  uint64  // memory code generation the stream is valid for
	idx  []int32 // addr-base -> uop index + 1; 0 = not translated
	uops []uop
}

// TranslateProgram predecodes a golden run's code cache into a shared
// micro-op program. Nil-safe: no cache, no program.
func TranslateProgram(cc *CodeCache) *Program {
	if cc == nil {
		return nil
	}
	n := 0
	for _, ok := range cc.have {
		if ok {
			n++
		}
	}
	p := &Program{
		base: cc.base,
		gen:  cc.gen,
		idx:  make([]int32, len(cc.have)),
		uops: make([]uop, 0, n),
	}
	prev := -1
	for off := range cc.have {
		if !cc.have[off] {
			continue
		}
		p.uops = append(p.uops, uop{})
		i := len(p.uops) - 1
		// The cache's instructions are stable for the program's
		// lifetime, so generic uops may point straight into it.
		translateInst(&cc.insts[off], &p.uops[i])
		p.idx[off] = int32(i + 1)
		if prev >= 0 {
			if pu := &p.uops[prev]; pu.flags&uFlagCF == 0 && pu.next == p.uops[i].addr {
				pu.flags |= uFlagSeq
			}
		}
		prev = i
	}
	return p
}

// maxPrivBlock bounds lazily translated private blocks; RunUntil's
// outer loop stitches longer straight-line runs from several blocks.
const maxPrivBlock = 64

// maxPrivSpan bounds the executable address span a machine-private
// translation index will cover (the index costs 4 bytes per code
// byte). Binaries beyond it run on the single-step interpreter — the
// pre-fast-path behavior, bit-identical by definition.
const maxPrivSpan = 1 << 20

// privProg is a machine-private incremental micro-op translation,
// dense over the binary's executable span like the shared Program but
// grown block by block as execution reaches new addresses. Machines
// whose code mutated away from the shared Program (bit-flip forks,
// self-modifying stores) rebuild here from their own memory.
type privProg struct {
	base    uint64
	idx     []int32 // addr-base -> uop index + 1; 0 unknown, -1 untranslatable
	uops    []uop
	insts   []isa.Inst // slab backing generic uops' stable decode copies
	touched []int32    // idx offsets written since the last reset
}

// privReset (re)initializes the private translation for the current
// code generation, reusing the previous buffers. Returns nil when the
// executable span is too large to index densely.
func (m *Machine) privReset(gen uint64) *privProg {
	lo, hi := m.Mem.execSpan()
	if hi <= lo || hi-lo > maxPrivSpan {
		return nil
	}
	p := m.priv
	if p == nil {
		p = privPool.Get().(*privProg)
		m.priv = p
	}
	p.base = lo
	// Zero only the index entries the previous translation wrote when
	// that beats wiping the whole index — bit-flip forks reset once per
	// fork after translating a handful of blocks, so this is the
	// difference between O(blocks) and O(code span) per fork. The index
	// is all-zero outside touched entries (every write is tracked), so
	// either branch restores the all-zero invariant across the full
	// backing array.
	if len(p.touched) < len(p.idx)/8 {
		for _, off := range p.touched {
			p.idx[off] = 0
		}
	} else {
		clear(p.idx)
	}
	p.touched = p.touched[:0]
	// Keep len(p.idx) exactly the span: a pooled index longer than the
	// span would let out-of-span addresses translate instead of falling
	// back to the interpreter's permission checks.
	if span := hi - lo; uint64(cap(p.idx)) < span {
		p.idx = make([]int32, span)
	} else {
		p.idx = p.idx[:span]
	}
	p.uops = p.uops[:0]
	p.insts = p.insts[:0]
	m.privGen = gen
	return p
}

// translateBlock decodes a straight-line block starting at addr from
// the machine's own memory into the private translation, ending at
// the first control-flow uop, a decode failure, an already-translated
// address (the block merges into the existing stream), or the size
// cap. Every instruction in the block gets its own index entry, so
// branches into the middle of a translated block resolve without
// retranslation. Returns the index of addr's uop, or -1 when the
// first instruction is untranslatable — the caller single-steps and
// the interpreter reproduces the exact error.
func (m *Machine) translateBlock(p *privProg, addr uint64) int {
	start := len(p.uops)
	pc := addr
	for len(p.uops)-start < maxPrivBlock {
		off := pc - p.base
		if off >= uint64(len(p.idx)) || p.idx[off] != 0 {
			break // left the span, or merged into a translated stream
		}
		n, err := m.Mem.Fetch(pc, m.fetchBuf[:])
		if err != nil {
			break
		}
		dec, err := decode.Decode(m.fetchBuf[:n], pc)
		if err != nil {
			break
		}
		p.uops = append(p.uops, uop{})
		u := &p.uops[len(p.uops)-1]
		translateInst(&dec, u)
		if u.kind == uGeneric {
			// The decode result is loop-local; generic uops consult it
			// at execution time, so give them a stable copy in the
			// translation's slab. A grown slab strands its old backing
			// array, but earlier uops' pointers into it stay valid.
			// Specialized uops (the overwhelming majority) need none.
			p.insts = append(p.insts, dec)
			u.inst = &p.insts[len(p.insts)-1]
		}
		if len(p.uops)-1 > start {
			// The previous uop is never control flow (the loop would
			// have ended), so the new uop is its fall-through successor.
			p.uops[len(p.uops)-2].flags |= uFlagSeq
		}
		p.idx[off] = int32(len(p.uops))
		p.touched = append(p.touched, int32(off))
		if u.flags&uFlagCF != 0 {
			break
		}
		pc = u.next
	}
	if len(p.uops) == start {
		if off := addr - p.base; off < uint64(len(p.idx)) {
			p.idx[off] = -1
			p.touched = append(p.touched, int32(off))
		}
		return -1
	}
	return start
}

// fastLookup resolves the micro-op stream containing addr: the shared
// program first, then the machine-private translation, growing it on
// demand. Streams are only served while their code generation matches
// memory; a stale private translation is reset wholesale. Returns a
// nil stream when addr has no translation (the caller single-steps).
func (m *Machine) fastLookup(addr uint64) ([]uop, int) {
	gen := m.Mem.codeGen
	if p := m.prog; p != nil && p.gen == gen {
		if off := addr - p.base; off < uint64(len(p.idx)) {
			if i := p.idx[off]; i > 0 {
				return p.uops, int(i - 1)
			}
		}
	}
	p := m.priv
	if p == nil || m.privGen != gen {
		if p = m.privReset(gen); p == nil {
			return nil, -1
		}
	}
	off := addr - p.base
	if off >= uint64(len(p.idx)) {
		return nil, -1
	}
	i := p.idx[off]
	if i == 0 {
		if j := m.translateBlock(p, addr); j >= 0 {
			return p.uops, j
		}
		return nil, -1
	}
	if i < 0 {
		return nil, -1
	}
	return p.uops, int(i - 1)
}

// fastLimit returns the step count up to which the machine may run on
// the micro-op fast path right now: the caller's stop boundary,
// clamped by the step limit and by the start of the hook arming
// window. Zero (or any value <= Steps) means single-step: a recorder
// is attached, single-stepping was forced, or Steps is inside the
// arming window.
func (m *Machine) fastLimit(stop uint64) uint64 {
	if m.singleStep || m.recordTrace || m.pageLog != nil {
		return 0
	}
	lim := stop
	if m.StepLimit < lim {
		lim = m.StepLimit
	}
	if m.armEnd > m.armStart {
		if m.Steps >= m.armStart && m.Steps < m.armEnd {
			return 0
		}
		if m.Steps < m.armStart && m.armStart < lim {
			lim = m.armStart
		}
	}
	return lim
}

// runFast executes micro-ops until limit, exit, an un-translated
// address, or an error. It reports whether any step executed (moved ==
// false means the caller must single-step to make progress). RIP is
// valid on every return path; errors are returned with RIP at the
// faulting instruction and the step counted, exactly like Step.
func (m *Machine) runFast(limit uint64) (bool, error) {
	uops, i := m.fastLookup(m.RIP)
	if i < 0 {
		return false, nil
	}
	gen := m.Mem.codeGen
	moved := false
	for {
		if m.Steps >= limit {
			m.RIP = uops[i].addr
			return moved, nil
		}
		u := &uops[i]
		m.Steps++
		if err := m.execUop(u); err != nil {
			m.RIP = u.addr
			return true, err
		}
		moved = true
		if u.flags&uFlagCF != 0 {
			if m.Exited {
				return true, nil
			}
			uops, i = m.fastLookup(m.RIP)
			if i < 0 {
				return true, nil
			}
			gen = m.Mem.codeGen
			continue
		}
		if u.flags&uFlagMemW != 0 && m.Mem.codeGen != gen {
			// A store touched executable bytes: the stream may now be
			// stale. Surface at the fall-through and let the outer loop
			// re-resolve against the new generation.
			m.RIP = u.next
			return true, nil
		}
		if u.flags&uFlagSeq != 0 {
			i++
			continue
		}
		m.RIP = u.next
		uops, i = m.fastLookup(m.RIP)
		if i < 0 {
			return true, nil
		}
		gen = m.Mem.codeGen
	}
}
