package emu

import (
	"github.com/r2r/reinforce/internal/isa"
)

// memImage is a frozen view of an address space: a page table whose
// pages are shared copy-on-write with the donor machine and with every
// machine resumed from the snapshot.
type memImage struct {
	pages   map[uint64]*page
	regions []region
	codeGen uint64
}

// freeze marks every visible page copy-on-write and returns an
// immutable image holding the union of the base and private page
// tables. The donor memory keeps working: its next write to a frozen
// page clones it privately first.
func (m *Memory) freeze() memImage {
	pages := make(map[uint64]*page, len(m.pages)+len(m.base))
	for a, p := range m.base {
		pages[a] = p // already cow from the freeze that shared them
	}
	for a, p := range m.pages {
		p.cow = true
		pages[a] = p
	}
	// The donor's pages now back an immutable image, so the donor must
	// never be recycled into the allocation pools (see Release).
	m.frozen = true
	return memImage{pages: pages, regions: m.regions, codeGen: m.codeGen}
}

// resumeMemory builds a private address space layered over a frozen
// image: no pages are copied up front, reads fall through to the
// image, and writes clone single pages on demand. The shell comes from
// the allocation pool; Release returns it.
func resumeMemory(img memImage) *Memory {
	mem := memoryPool.Get().(*Memory)
	pages := mem.pages // cleared by Release; keep the buckets
	*mem = Memory{pages: pages, base: img.pages, regions: img.regions, codeGen: img.codeGen}
	return mem
}

// Snapshot is an immutable machine image taken at an instruction
// boundary. Any number of machines can be resumed from it concurrently;
// memory pages are shared copy-on-write, so a resume costs one small
// map copy instead of re-loading the binary and re-zeroing the stack.
//
// Fault campaigns are the intended user: the golden run is executed
// once, snapshots are taken along the way, and each of the thousands of
// injection runs forks from the nearest snapshot instead of replaying
// the whole prefix from _start (the state-reuse trick that makes
// exhaustive fault simulation tractable, cf. ARMORY).
type Snapshot struct {
	regs   [isa.NumRegs]uint64
	rip    uint64
	rflags uint64
	steps  uint64

	stdin  []byte
	inPos  int
	stdout []byte // capacity-clamped: resumed appends reallocate
	stderr []byte

	mem memImage

	// Optional warm decoded-code cache, shared read-only by all resumed
	// machines while their code generation still matches.
	code *CodeCache

	// Optional predecoded micro-op program (TranslateProgram), shared
	// read-only like the decode cache it is derived from.
	prog *Program
}

// Snapshot freezes the machine's current state. The machine remains
// usable afterwards (its next write to any frozen page clones it).
// Must not be called concurrently with resumed machines running; the
// intended sequence is: run + snapshot single-threaded, then fan out.
func (m *Machine) Snapshot() *Snapshot {
	return &Snapshot{
		regs:   m.Regs,
		rip:    m.RIP,
		rflags: m.Rflags,
		steps:  m.Steps,
		stdin:  m.Stdin,
		inPos:  m.inPos,
		stdout: m.Stdout[:len(m.Stdout):len(m.Stdout)],
		stderr: m.Stderr[:len(m.Stderr):len(m.Stderr)],
		mem:    m.Mem.freeze(),
	}
}

// Steps returns the number of instructions executed before the snapshot
// was taken.
func (s *Snapshot) Steps() uint64 { return s.steps }

// SeedDecodeCache attaches a warm decoded-code cache (built with
// BuildCodeCache from a finished golden run) so resumed machines skip
// re-decoding instructions the golden run already decoded. Ignored when
// the cache's code generation does not match the snapshot's.
func (s *Snapshot) SeedDecodeCache(cache *CodeCache) {
	if cache != nil && cache.gen == s.mem.codeGen {
		s.code = cache
	}
}

// SeedProgram attaches a shared predecoded micro-op program (built
// with TranslateProgram from a finished golden run) so resumed
// machines dispatch micro-op blocks instead of re-translating them.
// Ignored when the program's code generation does not match the
// snapshot's.
func (s *Snapshot) SeedProgram(p *Program) {
	if p != nil && p.gen == s.mem.codeGen {
		s.prog = p
	}
}

// Resume forks a fresh machine from the snapshot. cfg supplies the run
// controls (StepLimit, hooks, RecordTrace); cfg.Stdin, when non-nil,
// replaces the snapshot's input stream (only meaningful for snapshots
// taken before the first read). StepLimit counts total steps including
// the snapshot's prefix, so absolute step budgets behave identically to
// a from-scratch run.
func (s *Snapshot) Resume(cfg Config) *Machine {
	if cfg.StepLimit == 0 {
		cfg.StepLimit = DefaultStepLimit
	}
	m := resumeMachine()
	m.Regs = s.regs
	m.RIP = s.rip
	m.Rflags = s.rflags
	m.Steps = s.steps
	m.Mem = resumeMemory(s.mem)
	m.Stdin = s.stdin
	m.inPos = s.inPos
	m.Stdout = s.stdout
	m.Stderr = s.stderr
	m.StepLimit = cfg.StepLimit
	m.recordTrace = cfg.RecordTrace
	m.fetchHook = cfg.FetchHook
	m.stepHook = cfg.StepHook
	m.singleStep = cfg.SingleStep
	m.armStart, m.armEnd = cfg.armedWindow()
	if cfg.RecordPages {
		m.pageLog = make(map[uint64]uint64, 8)
		m.lastPage = ^uint64(0)
	}
	if cfg.Stdin != nil {
		m.Stdin = cfg.Stdin
	}
	if s.code != nil && s.code.gen == m.Mem.CodeGeneration() {
		m.icacheBase = s.code
	}
	if s.prog != nil && s.prog.gen == m.Mem.CodeGeneration() {
		m.prog = s.prog
	}
	return m
}

// DecodeCache exposes the machine's decoded-instruction cache and the
// code generation it is valid for, so a finished golden run can donate
// its decode work to a Snapshot (via BuildCodeCache). The caller must
// not mutate the map or the instructions it points to.
func (m *Machine) DecodeCache() (map[uint64]*isa.Inst, uint64) {
	return m.icache, m.icacheGen
}
