package emu

import (
	"testing"

	"github.com/r2r/reinforce/internal/asm"
	"github.com/r2r/reinforce/internal/elf"
	"github.com/r2r/reinforce/internal/isa"
)

// TestAddStepHookChains: chained step hooks all run, and any ActSkip in
// the chain skips the instruction.
func TestAddStepHookChains(t *testing.T) {
	src := `
.text
_start:
	mov rdi, 0
	mov rdi, 1
	mov rax, 60
	syscall
`
	bin, err := asm.Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	var calls [2]int
	cfg := Config{}
	cfg.AddStepHook(func(m *Machine, in *isa.Inst) StepAction {
		calls[0]++
		return ActContinue
	})
	cfg.AddStepHook(func(m *Machine, in *isa.Inst) StepAction {
		calls[1]++
		if m.Steps-1 == 1 { // skip "mov rdi, 1"
			return ActSkip
		}
		return ActContinue
	})
	res, err := New(bin, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 0 {
		t.Errorf("exit = %d, want 0 (second hook's skip not honored)", res.ExitCode)
	}
	if calls[0] != int(res.Steps) || calls[1] != int(res.Steps) {
		t.Errorf("hook calls = %v, want both %d", calls, res.Steps)
	}
}

// TestAddStepHookFirstSkipWins: a skip decided by the first hook
// survives chaining a passive second hook.
func TestAddStepHookFirstSkipWins(t *testing.T) {
	src := `
.text
_start:
	mov rdi, 0
	mov rdi, 1
	mov rax, 60
	syscall
`
	bin, err := asm.Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{}
	cfg.AddStepHook(func(m *Machine, in *isa.Inst) StepAction {
		if m.Steps-1 == 1 {
			return ActSkip
		}
		return ActContinue
	})
	cfg.AddStepHook(func(m *Machine, in *isa.Inst) StepAction { return ActContinue })
	res, err := New(bin, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 0 {
		t.Errorf("exit = %d, want 0 (first hook's skip dropped by chaining)", res.ExitCode)
	}
}

// TestAddFetchHookChains: both fetch hooks observe every fetch.
func TestAddFetchHookChains(t *testing.T) {
	src := `
.text
_start:
	mov rax, 60
	mov rdi, 7
	syscall
`
	bin, err := asm.Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	var a, b int
	cfg := Config{}
	cfg.AddFetchHook(func(m *Machine) { a++ })
	cfg.AddFetchHook(func(m *Machine) { b++ })
	res, err := New(bin, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if a != int(res.Steps) || b != int(res.Steps) {
		t.Errorf("fetch hook calls = (%d, %d), want both %d", a, b, res.Steps)
	}
}

// TestFlipRegBit: flipping a register bit from a step hook changes the
// observable behaviour exactly as a register fault should.
func TestFlipRegBit(t *testing.T) {
	src := `
.text
_start:
	mov rdi, 0
	mov rax, 60
	syscall
`
	bin, err := asm.Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{}
	cfg.AddStepHook(func(m *Machine, in *isa.Inst) StepAction {
		if m.Steps-1 == 2 { // just before the exit syscall executes
			m.FlipRegBit(isa.RDI, 2)
		}
		return ActContinue
	})
	res, err := New(bin, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 4 {
		t.Errorf("exit = %d, want 4 (rdi bit 2 flipped)", res.ExitCode)
	}
}

// TestOperandAddr: the exported effective-address computation matches
// what execution actually accesses, including RIP-relative operands.
func TestOperandAddr(t *testing.T) {
	src := `
.text
_start:
	mov rax, [rip+cell]
	mov rdi, rax
	mov rax, 60
	syscall
.rodata
cell: .byte 9
`
	bin, err := asm.Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got uint64
	cfg := Config{}
	cfg.AddStepHook(func(m *Machine, in *isa.Inst) StepAction {
		if m.Steps-1 == 0 {
			if mem := in.MemOperand(); mem != nil {
				got = m.OperandAddr(in, mem)
			}
		}
		return ActContinue
	})
	m := New(bin, cfg)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	b, err := m.Mem.Peek(got)
	if err != nil {
		t.Fatalf("OperandAddr returned unmapped address %#x: %v", got, err)
	}
	if b != 9 {
		t.Errorf("byte at operand address %#x = %d, want 9", got, b)
	}
}

// TestFlipDataBitPreservesCodeCache: data-cell pokes must not bump the
// code generation (that would evict shared decode caches on every
// data-fault injection), while pokes into executable pages still must.
func TestFlipDataBitPreservesCodeCache(t *testing.T) {
	mem := NewMemory()
	mem.Map(0x1000, 0x1000, elf.FlagRead|elf.FlagWrite)  // data
	mem.Map(0x401000, 0x1000, elf.FlagRead|elf.FlagExec) // code
	if err := mem.Write(0x1000, []byte{0xAA}); err != nil {
		t.Fatal(err)
	}
	gen := mem.CodeGeneration()
	if err := mem.FlipDataBit(0x1000, 1); err != nil {
		t.Fatal(err)
	}
	if mem.CodeGeneration() != gen {
		t.Error("data-page flip bumped the code generation")
	}
	b, _ := mem.Peek(0x1000)
	if b != 0xA8 {
		t.Errorf("byte = %#x, want 0xA8", b)
	}
	if err := mem.FlipDataBit(0x401000, 0); err != nil {
		t.Fatal(err)
	}
	if mem.CodeGeneration() == gen {
		t.Error("exec-page flip did not bump the code generation")
	}
	if err := mem.FlipDataBit(0x9999_0000, 0); err == nil {
		t.Error("flip of unmapped address succeeded")
	}
}

// TestFlipDataBitCOW: a data flip on a machine resumed from a snapshot
// clones the page; the snapshot's view stays pristine.
func TestFlipDataBitCOW(t *testing.T) {
	src := `
.text
_start:
	mov rax, 60
	mov rdi, 0
	syscall
.rodata
cell: .byte 5
`
	bin, err := asm.Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := New(bin, Config{})
	var addr uint64
	for _, s := range bin.Sections {
		if s.Name == ".rodata" {
			addr = s.Addr
		}
	}
	if addr == 0 {
		t.Fatal("no .rodata section")
	}
	snap := m.Snapshot()
	forked := snap.Resume(Config{})
	if err := forked.Mem.FlipDataBit(addr, 1); err != nil {
		t.Fatal(err)
	}
	if b, _ := forked.Mem.Peek(addr); b != 7 {
		t.Errorf("forked byte = %d, want 7", b)
	}
	pristine := snap.Resume(Config{})
	if b, _ := pristine.Mem.Peek(addr); b != 5 {
		t.Errorf("snapshot byte = %d after fork mutation, want 5 (COW broken)", b)
	}
}
