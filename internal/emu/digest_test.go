package emu

import (
	"testing"

	"github.com/r2r/reinforce/internal/asm"
	"github.com/r2r/reinforce/internal/isa"
)

// digestProg touches registers, memory, and stdout, so every digested
// state component is exercised.
const digestProg = `
.text
_start:
	mov rbx, 7
	mov [rip+cell], rbx
	mov rax, 1
	mov rdi, 1
	lea rsi, [rip+msg]
	mov rdx, 3
	syscall
	mov rax, 60
	mov rdi, 0
	syscall
.data
cell: .quad 0
msg: .ascii "ok\n"
`

func digestMachine(t *testing.T) *Machine {
	t.Helper()
	bin, err := asm.Assemble(digestProg, nil)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return New(bin, Config{})
}

// TestStateDigestDeterministic: two machines stepped to the same point
// of the same program digest identically, and every intermediate step
// digests differently from the last (the program never revisits a
// state).
func TestStateDigestDeterministic(t *testing.T) {
	a, b := digestMachine(t), digestMachine(t)
	seen := map[[32]byte]uint64{}
	for !a.Exited {
		da, db := a.StateDigest(), b.StateDigest()
		if da != db {
			t.Fatalf("step %d: identical machines digest differently", a.Steps)
		}
		if prev, dup := seen[da]; dup {
			t.Fatalf("steps %d and %d share a digest", prev, a.Steps)
		}
		seen[da] = a.Steps
		if err := a.Step(); err != nil {
			t.Fatalf("step: %v", err)
		}
		if err := b.Step(); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
}

// TestStateDigestZeroPageCanonical: materializing a region page without
// changing its (zero) content must not change the digest — resumed
// forks materialize stack pages lazily, so the digest has to be
// canonical over that difference.
func TestStateDigestZeroPageCanonical(t *testing.T) {
	a, b := digestMachine(t), digestMachine(t)
	before := a.StateDigest()
	// Touch an untouched stack page on one machine: a zero write
	// materializes the page without changing visible memory.
	sp := a.Regs[isa.RSP]
	target := (sp - 4*PageSize) &^ uint64(PageSize-1)
	if err := a.Mem.Write(target, []byte{0}); err != nil {
		t.Fatalf("write: %v", err)
	}
	if got := a.StateDigest(); got != before {
		t.Fatalf("materializing an all-zero page changed the digest")
	}
	if got := a.StateDigest(); got != b.StateDigest() {
		t.Fatalf("machines diverged after zero-write")
	}
	// A real write must change it.
	if err := a.Mem.Write(target, []byte{1}); err != nil {
		t.Fatalf("write: %v", err)
	}
	if got := a.StateDigest(); got == before {
		t.Fatalf("non-zero write did not change the digest")
	}
}

// TestStateDigestSnapshotFork: a machine resumed from a snapshot
// digests identically to its donor at the snapshot point, including
// pages shared copy-on-write.
func TestStateDigestSnapshotFork(t *testing.T) {
	m := digestMachine(t)
	for i := 0; i < 3; i++ {
		if err := m.Step(); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
	want := m.StateDigest()
	fork := m.Snapshot().Resume(Config{})
	if got := fork.StateDigest(); got != want {
		t.Fatalf("fork digest differs from donor at the snapshot point")
	}
	// Divergence after the fork is visible in both directions.
	if err := fork.Step(); err != nil {
		t.Fatalf("fork step: %v", err)
	}
	if fork.StateDigest() == want {
		t.Fatalf("fork digest unchanged after stepping")
	}
	if m.StateDigest() != want {
		t.Fatalf("donor digest changed by forking")
	}
}
