package emu

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"sort"
)

// StateDigest returns a canonical SHA-256 digest of the machine's
// complete architectural state: registers, RIP, flags, step counter,
// exit status, the I/O streams (including the consumed-input position),
// and the content of every mapped page. Two machines with equal digests
// under the same run configuration (step limit, hooks) behave
// identically from here on — the soundness foundation of the campaign
// engine's state-hash equivalence pruning (fault.PairPruner): a faulted
// run whose digest matches the reference run's at the same step has
// provably re-converged, and one that matches another faulted run's
// inherits its continuation outcome.
//
// Run configuration is deliberately outside the digest: hooks and the
// step limit are not machine state, so callers must only compare
// digests of machines they would continue under identical
// configuration.
func (m *Machine) StateDigest() [32]byte {
	h := sha256.New()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for _, r := range m.Regs {
		put(r)
	}
	put(m.RIP)
	put(m.Rflags)
	put(m.Steps)
	if m.Exited {
		put(1)
	} else {
		put(0)
	}
	put(uint64(int64(m.ExitCode)))
	put(uint64(m.inPos))
	put(uint64(len(m.Stdin)))
	h.Write(m.Stdin)
	put(uint64(len(m.Stdout)))
	h.Write(m.Stdout)
	put(uint64(len(m.Stderr)))
	h.Write(m.Stderr)
	m.Mem.hashInto(h)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// hashInto writes the canonical page walk into h: ascending page
// addresses, each page's content prefixed by its address. The walk is
// canonical with respect to lazy materialization — all-zero pages are
// skipped, so a region page reads the same whether it was materialized
// (and never written, or written back to zero) or is still virtual
// (reads of unmaterialized region pages return zero bytes either way).
// Page permissions are derived from the region list, which resumed
// machines share with their snapshot, so they carry no per-machine
// state and stay outside the digest.
func (m *Memory) hashInto(h hash.Hash) {
	addrs := make([]uint64, 0, len(m.pages)+len(m.base))
	for a := range m.pages {
		addrs = append(addrs, a)
	}
	for a := range m.base {
		if m.pages != nil {
			if _, shadowed := m.pages[a]; shadowed {
				continue
			}
		}
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	var zero [pageSize]byte
	var abuf [8]byte
	for _, a := range addrs {
		p := m.lookupPage(a)
		if p.data == zero {
			continue
		}
		binary.LittleEndian.PutUint64(abuf[:], a)
		h.Write(abuf[:])
		h.Write(p.data[:])
	}
}
