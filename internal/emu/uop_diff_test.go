package emu_test

import (
	"bytes"
	"testing"

	"github.com/r2r/reinforce/internal/cases"
	"github.com/r2r/reinforce/internal/emu"
	"github.com/r2r/reinforce/internal/isa"
)

// sameResult compares two complete runs: exit status, step count, and
// both output streams must match bit for bit, as must the error state.
func sameResult(t *testing.T, label string, rf emu.Result, ef error, rs emu.Result, es error) {
	t.Helper()
	if (ef == nil) != (es == nil) {
		t.Fatalf("%s: error divergence: fast=%v slow=%v", label, ef, es)
	}
	if ef != nil && es != nil && ef.Error() != es.Error() {
		t.Fatalf("%s: error text divergence: fast=%v slow=%v", label, ef, es)
	}
	if rf.Exited != rs.Exited || rf.ExitCode != rs.ExitCode {
		t.Fatalf("%s: exit divergence: fast=(%v,%d) slow=(%v,%d)",
			label, rf.Exited, rf.ExitCode, rs.Exited, rs.ExitCode)
	}
	if rf.Steps != rs.Steps {
		t.Fatalf("%s: step divergence: fast=%d slow=%d", label, rf.Steps, rs.Steps)
	}
	if !bytes.Equal(rf.Stdout, rs.Stdout) || !bytes.Equal(rf.Stderr, rs.Stderr) {
		t.Fatalf("%s: output divergence: fast=(%q,%q) slow=(%q,%q)",
			label, rf.Stdout, rf.Stderr, rs.Stdout, rs.Stderr)
	}
}

// TestFastPathDifferential: for every case study and both inputs, the
// micro-op fast path (the default) and the forced single-step
// interpreter must produce bit-identical runs. This is the fast path's
// core contract — it is an execution strategy, never a semantic change.
func TestFastPathDifferential(t *testing.T) {
	for _, c := range cases.All() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			bin, err := c.Build()
			if err != nil {
				t.Fatal(err)
			}
			for _, in := range [][]byte{c.Good, c.Bad} {
				rf, ef := emu.New(bin, emu.Config{Stdin: in}).Run()
				rs, es := emu.New(bin, emu.Config{Stdin: in, SingleStep: true}).Run()
				sameResult(t, string(in), rf, ef, rs, es)
			}
		})
	}
}

// TestFastPathHookWindowParity: a windowed hook must observe exactly
// what the same hook observes on the single-step interpreter — the
// fast path has to drop to single-stepping across the armed window and
// may not skip past the hook's firing step.
func TestFastPathHookWindowParity(t *testing.T) {
	c := cases.Pincheck()
	bin, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range []uint64{0, 1, 17, 100, 1000} {
		runWith := func(singleStep bool) (uint64, []uint64, emu.Result, error) {
			var fired []uint64
			cfg := emu.Config{Stdin: c.Bad, SingleStep: singleStep}
			cfg.AddStepHookWindow(func(m *emu.Machine, in *isa.Inst) emu.StepAction {
				if m.Steps-1 == step {
					fired = append(fired, m.RIP)
					return emu.ActSkip
				}
				return emu.ActContinue
			}, step, step+1)
			m := emu.New(bin, cfg)
			res, err := m.Run()
			return res.Steps, fired, res, err
		}
		_, firedF, rf, ef := runWith(false)
		_, firedS, rs, es := runWith(true)
		if len(firedF) != len(firedS) {
			t.Fatalf("step %d: hook fired %d times fast, %d slow", step, len(firedF), len(firedS))
		}
		for i := range firedF {
			if firedF[i] != firedS[i] {
				t.Fatalf("step %d: hook saw RIP %#x fast, %#x slow", step, firedF[i], firedS[i])
			}
		}
		sameResult(t, "hooked run", rf, ef, rs, es)
	}
}

// TestFastPathSnapshotResumeParity: forking a mid-run snapshot must be
// bit-identical between the fast path and the interpreter, including
// when the fork carries an armed hook window (the injection pattern).
func TestFastPathSnapshotResumeParity(t *testing.T) {
	c := cases.Pincheck()
	bin, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	full, _ := emu.New(bin, emu.Config{Stdin: c.Bad}).Run()
	if full.Steps < 8 {
		t.Fatalf("trace too short to fork: %d steps", full.Steps)
	}
	at, hook := full.Steps/2, full.Steps/2+full.Steps/4
	m := emu.New(bin, emu.Config{Stdin: c.Bad})
	if _, done, err := m.RunUntil(at); done || err != nil {
		t.Fatalf("prefix run ended early: done=%v err=%v", done, err)
	}
	snap := m.Snapshot()
	fork := func(singleStep bool) (emu.Result, error) {
		cfg := emu.Config{SingleStep: singleStep}
		cfg.AddStepHookWindow(func(m *emu.Machine, in *isa.Inst) emu.StepAction {
			if m.Steps-1 == hook {
				return emu.ActSkip
			}
			return emu.ActContinue
		}, hook, hook+1)
		m2 := snap.Resume(cfg)
		res, err := m2.Run()
		m2.Release()
		return res, err
	}
	rf, ef := fork(false)
	rs, es := fork(true)
	sameResult(t, "fork", rf, ef, rs, es)
}

// TestReleaseReuseIdentical: recycling machines through Release must
// never leak state between runs — a pooled machine replays exactly
// like a fresh one.
func TestReleaseReuseIdentical(t *testing.T) {
	c := cases.Pincheck()
	bin, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	ref, eref := emu.New(bin, emu.Config{Stdin: c.Good}).Run()
	for i := 0; i < 32; i++ {
		in, want, ewant := c.Good, ref, eref
		if i%2 == 1 {
			in = c.Bad
		}
		m := emu.New(bin, emu.Config{Stdin: in})
		res, err := m.Run()
		if i%2 == 1 {
			// Alternating inputs through the same pools: only compare
			// the invariant halves.
			if err == nil != (res.Exited) && !res.Exited {
				t.Fatalf("iteration %d: inconsistent result", i)
			}
		} else {
			sameResult(t, "pooled rerun", res, err, want, ewant)
		}
		m.Release()
	}
}
