package emu

import (
	"math/rand"
	"testing"

	"github.com/r2r/reinforce/internal/elf"
)

// TestMachineTotalityOnRandomCode: executing arbitrary bytes must never
// panic the emulator — every run ends in a clean exit, a classified
// fault, or the step limit. This is the property the bit-flip fault
// model leans on (mutated instruction streams are arbitrary bytes).
func TestMachineTotalityOnRandomCode(t *testing.T) {
	r := rand.New(rand.NewSource(0xFA117))
	for trial := 0; trial < 2000; trial++ {
		code := make([]byte, 64)
		r.Read(code)
		bin := &elf.Binary{
			Entry: 0x401000,
			Sections: []*elf.Section{
				{Name: ".text", Addr: 0x401000, Data: code, Flags: elf.FlagRead | elf.FlagExec},
				{Name: ".data", Addr: 0x600000, Data: make([]byte, 4096), Flags: elf.FlagRead | elf.FlagWrite},
			},
		}
		m := New(bin, Config{Stdin: []byte("fuzz"), StepLimit: 10000})
		res, err := m.Run()
		if err == nil && !res.Exited {
			t.Fatalf("trial %d: run finished without exit or error", trial)
		}
	}
}

// TestMachineTotalityOnMutatedProgram: take a valid program and flip
// every bit of its text one at a time; no mutation may panic or hang the
// emulator beyond its budget.
func TestMachineTotalityOnMutatedProgram(t *testing.T) {
	code := [][]byte{
		{0x48, 0xC7, 0xC0, 0x3C, 0x00, 0x00, 0x00}, // mov rax, 60
		{0x48, 0x31, 0xFF},                         // xor rdi, rdi
		{0x0F, 0x05},                               // syscall
	}
	var text []byte
	for _, c := range code {
		text = append(text, c...)
	}
	for bit := 0; bit < len(text)*8; bit++ {
		mutated := append([]byte(nil), text...)
		mutated[bit/8] ^= 1 << (bit % 8)
		bin := &elf.Binary{
			Entry: 0x401000,
			Sections: []*elf.Section{
				{Name: ".text", Addr: 0x401000, Data: mutated, Flags: elf.FlagRead | elf.FlagExec},
			},
		}
		m := New(bin, Config{StepLimit: 10000})
		res, err := m.Run()
		if err == nil && !res.Exited {
			t.Fatalf("bit %d: no exit and no error", bit)
		}
	}
}

// TestICacheInvalidation: executing self-modified code must see the new
// bytes (the decoded-instruction cache keys off the memory generation).
func TestICacheInvalidation(t *testing.T) {
	// Program: first run of the loop writes a new immediate into the
	// exit-code mov, then jumps back over it.
	//   _start:
	//     mov rdi, 1          ; patched below to mov rdi, 9
	//     cmp rbx, 0
	//     jne exit            ; second pass exits
	//     mov rbx, 1
	//     lea rcx, [rip+_start]  -> via mov rcx, 0x401000
	//     mov byte ptr [rcx+3], 9   ; rewrite the imm of "mov rdi, 1"
	//     jmp _start
	//   exit: mov rax, 60; syscall
	bin := &elf.Binary{
		Entry: 0x401000,
		Sections: []*elf.Section{
			{
				Name: ".text", Addr: 0x401000,
				Flags: elf.FlagRead | elf.FlagWrite | elf.FlagExec, // writable text for the test
				Data: mustText(t,
					[]byte{0x48, 0xC7, 0xC7, 0x01, 0x00, 0x00, 0x00}, // mov rdi, 1
					[]byte{0x48, 0x83, 0xFB, 0x00},                   // cmp rbx, 0
					[]byte{0x0F, 0x85, 0x17, 0x00, 0x00, 0x00},       // jne +0x17 (exit)
					[]byte{0x48, 0xC7, 0xC3, 0x01, 0x00, 0x00, 0x00}, // mov rbx, 1
					[]byte{0x48, 0xC7, 0xC1, 0x00, 0x10, 0x40, 0x00}, // mov rcx, 0x401000
					[]byte{0xC6, 0x41, 0x03, 0x09},                   // mov byte [rcx+3], 9
					[]byte{0xE9, 0xD8, 0xFF, 0xFF, 0xFF},             // jmp _start (-0x28)
					[]byte{0x48, 0xC7, 0xC0, 0x3C, 0x00, 0x00, 0x00}, // exit: mov rax, 60
					[]byte{0x0F, 0x05},                               // syscall
				),
			},
		},
	}
	m := New(bin, Config{StepLimit: 1000})
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 9 {
		t.Errorf("exit = %d, want 9 (self-modified immediate not observed)", res.ExitCode)
	}
}

// FuzzUopTranslator: differential fuzzing of the micro-op fast path
// against the single-step interpreter. Arbitrary bytes become the text
// section of a minimal binary and run under both execution strategies;
// any divergence in exit status, step count, or output is a bug in the
// translator or a micro-op executor (the interpreter is the spec).
func FuzzUopTranslator(f *testing.F) {
	// A clean exit, the self-modifying icache program, a hot
	// arithmetic loop, stack traffic, and a decode-failure prefix.
	f.Add([]byte{
		0x48, 0xC7, 0xC0, 0x3C, 0x00, 0x00, 0x00, // mov rax, 60
		0x48, 0x31, 0xFF, // xor rdi, rdi
		0x0F, 0x05, // syscall
	})
	f.Add([]byte{
		0x48, 0xC7, 0xC1, 0x20, 0x00, 0x00, 0x00, // mov rcx, 32
		0x48, 0x01, 0xC8, // add rax, rcx
		0x48, 0xFF, 0xC9, // dec rcx
		0x75, 0xF8, // jne -8
		0x0F, 0x05, // syscall (rax garbage -> fault or exit)
	})
	f.Add([]byte{
		0x50, 0x53, 0x51, // push rax/rbx/rcx
		0x59, 0x5B, 0x58, // pop rcx/rbx/rax
		0x9C, 0x9D, // pushfq; popfq
		0xC3, // ret into the void
	})
	f.Add([]byte{0x0F, 0xFF, 0xFF}) // undecodable
	f.Add([]byte{0xEB, 0xFE})       // jmp self (step-limit path)
	f.Fuzz(func(t *testing.T, code []byte) {
		if len(code) == 0 || len(code) > 1024 {
			return
		}
		run := func(singleStep bool) (Result, error) {
			bin := &elf.Binary{
				Entry: 0x401000,
				Sections: []*elf.Section{
					{Name: ".text", Addr: 0x401000, Data: append([]byte(nil), code...), Flags: elf.FlagRead | elf.FlagWrite | elf.FlagExec},
					{Name: ".data", Addr: 0x600000, Data: make([]byte, 4096), Flags: elf.FlagRead | elf.FlagWrite},
				},
			}
			m := New(bin, Config{Stdin: []byte("fuzz"), StepLimit: 4096, SingleStep: singleStep})
			res, err := m.Run()
			m.Release()
			return res, err
		}
		rf, ef := run(false)
		rs, es := run(true)
		if (ef == nil) != (es == nil) {
			t.Fatalf("error divergence: fast=%v slow=%v", ef, es)
		}
		if ef != nil && es != nil && ef.Error() != es.Error() {
			t.Fatalf("error text divergence: fast=%v slow=%v", ef, es)
		}
		if rf.Exited != rs.Exited || rf.ExitCode != rs.ExitCode || rf.Steps != rs.Steps {
			t.Fatalf("run divergence: fast=(%v,%d,%d) slow=(%v,%d,%d)",
				rf.Exited, rf.ExitCode, rf.Steps, rs.Exited, rs.ExitCode, rs.Steps)
		}
		if string(rf.Stdout) != string(rs.Stdout) || string(rf.Stderr) != string(rs.Stderr) {
			t.Fatalf("output divergence: fast=%q/%q slow=%q/%q", rf.Stdout, rf.Stderr, rs.Stdout, rs.Stderr)
		}
	})
}

func mustText(t *testing.T, chunks ...[]byte) []byte {
	t.Helper()
	var out []byte
	for _, c := range chunks {
		out = append(out, c...)
	}
	return out
}
