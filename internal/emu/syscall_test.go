package emu

import "testing"

// readProg reads count bytes into a 16-byte buffer, exits with the
// syscall's return value truncated to a byte (so tests can observe the
// transfer count without parsing stdout).
func readProg(count string) string {
	return `
.text
_start:
	mov rax, 0
	mov rdi, 0
	lea rsi, [rip+buf]
	mov rdx, ` + count + `
	syscall
	mov rdi, rax
	mov rax, 60
	syscall
.bss
buf: .zero 16
`
}

// TestReadOversizedCountClamps: a count above maxIOChunk — the shape a
// fault-corrupted length register takes — clamps to the chunk bound and
// returns the partial transfer, like the kernel's MAX_RW_COUNT clamp,
// instead of an emulator-only -EFAULT.
func TestReadOversizedCountClamps(t *testing.T) {
	for _, count := range []string{
		"0x200000",           // 2 MiB: above the chunk bound
		"0x8000000000000000", // sign bit set: huge size_t
		"0xffffffffffffffff", // (size_t)-1, the classic corrupted length
	} {
		res := mustExit(t, readProg(count), Config{Stdin: []byte("abcdefgh")}, 8)
		if res.ExitCode != 8 {
			t.Errorf("count %s: read returned %d, want 8 (stdin length)", count, res.ExitCode)
		}
	}
}

// TestReadClampStopsAtBuffer: after clamping, the transfer is still
// bounded by what is actually available and mapped — the read lands the
// stdin bytes in the buffer exactly as a well-sized read would.
func TestReadClampStopsAtBuffer(t *testing.T) {
	src := `
.text
_start:
	mov rax, 0
	mov rdi, 0
	lea rsi, [rip+buf]
	mov rdx, 0xffffffffffffffff
	syscall
	mov rax, [rip+buf]
	mov rbx, 0x3837363534333231  ; "12345678" little-endian
	cmp rax, rbx
	jne bad
	mov rax, 60
	mov rdi, 0
	syscall
bad:
	mov rax, 60
	mov rdi, 1
	syscall
.bss
buf: .zero 16
`
	mustExit(t, src, Config{Stdin: []byte("12345678")}, 0)
}

// TestWriteOversizedCountClamped: an oversized write count clamps
// instead of erroring; the transfer then fails with -EFAULT only
// because the clamped range genuinely runs off the mapped buffer —
// the same failure the kernel's copy_from_user would hit.
func TestWriteOversizedCountClamped(t *testing.T) {
	src := `
.text
_start:
	mov rax, 1
	mov rdi, 1
	lea rsi, [rip+msg]
	mov rdx, 0xffffffffffffffff
	syscall
	mov rdi, rax
	neg rdi
	mov rax, 60
	syscall
.rodata
msg: .ascii "x"
`
	// 14 = EFAULT: the clamped 1 MiB range extends past the data page.
	mustExit(t, src, Config{}, 14)
}

// TestWriteInChunkBound: a write whose count fits the chunk bound is
// unaffected by the clamp.
func TestWriteInChunkBound(t *testing.T) {
	src := `
.text
_start:
	mov rax, 1
	mov rdi, 1
	lea rsi, [rip+msg]
	mov rdx, msg_len
	syscall
	mov rax, 60
	mov rdi, 0
	syscall
.rodata
msg: .ascii "ok\n"
.equ msg_len, . - msg
`
	res := mustExit(t, src, Config{}, 0)
	if string(res.Stdout) != "ok\n" {
		t.Errorf("stdout = %q", res.Stdout)
	}
}

func TestIOCount(t *testing.T) {
	cases := []struct {
		raw  uint64
		want int
	}{
		{0, 0},
		{8, 8},
		{maxIOChunk, maxIOChunk},
		{maxIOChunk + 1, maxIOChunk},
		{1 << 63, maxIOChunk},
		{^uint64(0), maxIOChunk},
	}
	for _, tc := range cases {
		if got := ioCount(tc.raw); got != tc.want {
			t.Errorf("ioCount(%#x) = %d, want %d", tc.raw, got, tc.want)
		}
	}
}
