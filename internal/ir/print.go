package ir

import (
	"fmt"
	"strings"
)

// String renders the module in an LLVM-flavoured textual form.
func (m *Module) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s\n", m.Name)
	if len(m.Cells) > 0 {
		sb.WriteString("cells:")
		for i, c := range m.Cells {
			if i > 0 {
				sb.WriteString(",")
			}
			fmt.Fprintf(&sb, " %s:%s", c.Name, c.Ty)
		}
		sb.WriteString("\n")
	}
	for _, f := range m.Funcs {
		sb.WriteString("\n")
		sb.WriteString(f.String())
	}
	return sb.String()
}

// String renders one function.
func (f *Function) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s() {\n", f.Name)
	for _, b := range f.Blocks {
		if b.UID != 0 {
			fmt.Fprintf(&sb, "%s:            ; uid=%#x\n", b.Name, b.UID)
		} else {
			fmt.Fprintf(&sb, "%s:\n", b.Name)
		}
		for _, in := range b.Insts {
			fmt.Fprintf(&sb, "  %s\n", in.String())
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// String renders one instruction.
func (i *Instr) String() string {
	fn := (*Function)(nil)
	if i.blk != nil {
		fn = i.blk.fn
	}
	arg := func(n int) string { return i.Args[n].valueString(fn) }

	switch i.Op {
	case OpBin:
		return fmt.Sprintf("%%%d = %s %s %s, %s", i.id, i.Bin, i.Ty, arg(0), arg(1))
	case OpICmp:
		return fmt.Sprintf("%%%d = icmp %s %s %s, %s", i.id, i.Pred, i.Args[0].Type(), arg(0), arg(1))
	case OpZExt:
		return fmt.Sprintf("%%%d = zext %s %s to %s", i.id, i.Args[0].Type(), arg(0), i.Ty)
	case OpSExt:
		return fmt.Sprintf("%%%d = sext %s %s to %s", i.id, i.Args[0].Type(), arg(0), i.Ty)
	case OpTrunc:
		return fmt.Sprintf("%%%d = trunc %s %s to %s", i.id, i.Args[0].Type(), arg(0), i.Ty)
	case OpSelect:
		return fmt.Sprintf("%%%d = select %s, %s %s, %s", i.id, arg(0), i.Ty, arg(1), arg(2))
	case OpLoad:
		return fmt.Sprintf("%%%d = load %s, [%s]", i.id, i.Ty, arg(0))
	case OpStore:
		return fmt.Sprintf("store %s %s, [%s]", i.Args[0].Type(), arg(0), arg(1))
	case OpCellRead:
		return fmt.Sprintf("%%%d = cellread %s @%s", i.id, i.Ty, i.Cell)
	case OpCellWrite:
		return fmt.Sprintf("cellwrite @%s, %s", i.Cell, arg(0))
	case OpCall:
		name := "?"
		if i.Callee != nil {
			name = i.Callee.Name
		}
		return fmt.Sprintf("call @%s()", name)
	case OpSyscall:
		return "syscall"
	case OpBr:
		return fmt.Sprintf("br %s, label %%%s, label %%%s", arg(0), i.Then.Name, i.Else.Name)
	case OpJmp:
		return fmt.Sprintf("jmp label %%%s", i.Then.Name)
	case OpRet:
		return "ret"
	case OpHalt:
		return "halt"
	case OpFaultResp:
		return "faultresp"
	}
	return "?"
}
