package ir

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/r2r/reinforce/internal/elf"
)

// buildExitModule returns a module whose entry writes "hi\n" and exits
// with the byte read from stdin (or 7 when stdin is empty).
func buildExitModule(t *testing.T) *Module {
	t.Helper()
	m := NewModule("test")
	for _, r := range []string{"rax", "rdi", "rsi", "rdx", "rcx", "r11", "rsp"} {
		m.EnsureCell(r, I64)
	}
	f := m.NewFunc("_start")
	m.EntryFunc = "_start"

	entry := f.NewBlock("entry")
	b := NewBuilder(entry)

	const buf = 0x600000
	// read(0, buf, 1)
	b.CellWrite("rax", C64(0))
	b.CellWrite("rdi", C64(0))
	b.CellWrite("rsi", C64(buf))
	b.CellWrite("rdx", C64(1))
	b.Syscall()
	nread := b.CellRead("rax")
	got := b.ICmp(EQ, nread, C64(1))

	some := f.NewBlock("some")
	none := f.NewBlock("none")
	b.Br(got, some, none)

	bs := NewBuilder(some)
	v := bs.Load(I8, C64(buf))
	code := bs.ZExt(v, I64)
	bs.CellWrite("rdi", code)
	bs.CellWrite("rax", C64(60))
	bs.Syscall()
	bs.Ret()

	bn := NewBuilder(none)
	bn.CellWrite("rdi", C64(7))
	bn.CellWrite("rax", C64(60))
	bn.Syscall()
	bn.Ret()

	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
	return m
}

func dataSection() *elf.Section {
	return &elf.Section{Name: ".data", Addr: 0x600000, Data: make([]byte, 64), Flags: elf.FlagRead | elf.FlagWrite}
}

func TestExecBasics(t *testing.T) {
	m := buildExitModule(t)
	res, err := Exec(m, ExecConfig{Stdin: []byte{42}, Sections: []*elf.Section{dataSection()}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exited || res.ExitCode != 42 {
		t.Errorf("exit = (%v, %d), want (true, 42)", res.Exited, res.ExitCode)
	}
	res, err = Exec(m, ExecConfig{Sections: []*elf.Section{dataSection()}})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 7 {
		t.Errorf("empty stdin: exit = %d, want 7", res.ExitCode)
	}
}

func TestExecWriteAndFault(t *testing.T) {
	m := NewModule("w")
	for _, r := range []string{"rax", "rdi", "rsi", "rdx", "rcx", "r11"} {
		m.EnsureCell(r, I64)
	}
	f := m.NewFunc("_start")
	m.EntryFunc = "_start"
	blk := f.NewBlock("entry")
	b := NewBuilder(blk)
	// Store 'O','K' into memory, write(1, buf, 2), then faultresp.
	const buf = 0x600010
	b.Store(C8('O'), C64(buf))
	b.Store(C8('K'), C64(buf+1))
	b.CellWrite("rax", C64(1))
	b.CellWrite("rdi", C64(1))
	b.CellWrite("rsi", C64(buf))
	b.CellWrite("rdx", C64(2))
	b.Syscall()
	b.FaultResp()
	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
	res, err := Exec(m, ExecConfig{Sections: []*elf.Section{dataSection()}})
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Stdout) != "OK" {
		t.Errorf("stdout = %q", res.Stdout)
	}
	if !res.Faulted || res.ExitCode != 42 || string(res.Stderr) != "FAULT\n" {
		t.Errorf("fault response wrong: %+v", res)
	}
}

func TestExecHaltAndLimits(t *testing.T) {
	m := NewModule("h")
	f := m.NewFunc("_start")
	m.EntryFunc = "_start"
	blk := f.NewBlock("entry")
	NewBuilder(blk).Halt()
	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
	if _, err := Exec(m, ExecConfig{}); !errors.Is(err, ErrInterpHalt) {
		t.Errorf("halt: err = %v", err)
	}

	// Infinite loop trips the step limit.
	m2 := NewModule("l")
	f2 := m2.NewFunc("_start")
	m2.EntryFunc = "_start"
	spin := f2.NewBlock("spin")
	NewBuilder(spin).Jmp(spin)
	if err := Verify(m2); err != nil {
		t.Fatal(err)
	}
	if _, err := Exec(m2, ExecConfig{StepLimit: 100}); !errors.Is(err, ErrInterpLimit) {
		t.Errorf("loop: err = %v", err)
	}
}

func TestExecCallDepth(t *testing.T) {
	m := NewModule("r")
	f := m.NewFunc("_start")
	m.EntryFunc = "_start"
	blk := f.NewBlock("entry")
	b := NewBuilder(blk)
	b.Call(f) // unbounded recursion
	b.Ret()
	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
	if _, err := Exec(m, ExecConfig{MaxDepth: 10}); !errors.Is(err, ErrInterpDepth) {
		t.Errorf("recursion: err = %v", err)
	}
}

func TestVerifyRejections(t *testing.T) {
	build := func(f func(m *Module, fn *Function, b *Builder)) error {
		m := NewModule("v")
		m.EnsureCell("rax", I64)
		fn := m.NewFunc("_start")
		m.EntryFunc = "_start"
		blk := fn.NewBlock("entry")
		b := NewBuilder(blk)
		f(m, fn, b)
		return Verify(m)
	}

	cases := []struct {
		name string
		f    func(m *Module, fn *Function, b *Builder)
	}{
		{"unterminated", func(m *Module, fn *Function, b *Builder) {
			b.Add(C64(1), C64(2))
		}},
		{"terminator mid-block", func(m *Module, fn *Function, b *Builder) {
			b.Ret()
			b.Add(C64(1), C64(2))
			// no final terminator either, but mid-block hits first
		}},
		{"type mismatch bin", func(m *Module, fn *Function, b *Builder) {
			b.Bin(Add, C64(1), C8(2))
			b.Ret()
		}},
		{"icmp mixed types", func(m *Module, fn *Function, b *Builder) {
			b.ICmp(EQ, C64(1), C8(1))
			b.Ret()
		}},
		{"br non-i1", func(m *Module, fn *Function, b *Builder) {
			v := b.Add(C64(1), C64(1))
			other := fn.NewBlock("o")
			NewBuilder(other).Ret()
			b.Br(v, other, other)
		}},
		{"zext narrowing", func(m *Module, fn *Function, b *Builder) {
			b.ZExt(C64(1), I8)
			b.Ret()
		}},
		{"trunc widening", func(m *Module, fn *Function, b *Builder) {
			b.Trunc(C8(1), I64)
			b.Ret()
		}},
		{"cross-block value use", func(m *Module, fn *Function, b *Builder) {
			v := b.Add(C64(1), C64(1))
			second := fn.NewBlock("second")
			b.Jmp(second)
			b2 := NewBuilder(second)
			b2.Add(v, C64(1)) // illegal: v from another block
			b2.Ret()
		}},
		{"load non-i64 address", func(m *Module, fn *Function, b *Builder) {
			b.Load(I64, C8(0))
			b.Ret()
		}},
	}
	for _, tc := range cases {
		if err := build(tc.f); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: err = %v, want ErrInvalid", tc.name, err)
		}
	}
}

func TestVerifyRejectsUnregisteredCell(t *testing.T) {
	m := NewModule("c")
	fn := m.NewFunc("_start")
	m.EntryFunc = "_start"
	blk := fn.NewBlock("entry")
	// Bypass the builder's panic by constructing the instruction raw.
	blk.Insts = append(blk.Insts,
		&Instr{Op: OpCellRead, Ty: I64, Cell: "bogus", blk: blk, id: 1},
		&Instr{Op: OpRet, blk: blk, id: 2},
	)
	if err := Verify(m); !errors.Is(err, ErrInvalid) {
		t.Errorf("err = %v, want ErrInvalid", err)
	}
}

func TestBuilderPanicsOnUnknownCell(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on unregistered cell")
		}
	}()
	m := NewModule("p")
	f := m.NewFunc("f")
	b := NewBuilder(f.NewBlock("e"))
	b.CellRead("nope")
}

func TestPrinter(t *testing.T) {
	m := buildExitModule(t)
	s := m.String()
	for _, want := range []string{
		"module test", "cells:", "func _start()",
		"entry:", "syscall", "icmp eq", "br %", "label %some",
		"load i8", "zext i8", "cellwrite @rdi", "ret",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("printed module missing %q:\n%s", want, s)
		}
	}
}

func TestInstMix(t *testing.T) {
	m := buildExitModule(t)
	mix := m.InstMix()
	if mix["syscall"] != 3 || mix["icmp"] != 1 || mix["br"] != 1 || mix["ret"] != 2 {
		t.Errorf("mix = %v", mix)
	}
}

// TestEvalBinMatchesGo cross-checks the interpreter's arithmetic against
// native Go semantics.
func TestEvalBinMatchesGo(t *testing.T) {
	f := func(a, b uint64) bool {
		if evalBin(Add, I64, a, b) != a+b {
			return false
		}
		if evalBin(Sub, I64, a, b) != a-b {
			return false
		}
		if evalBin(Mul, I64, a, b) != a*b {
			return false
		}
		if evalBin(And, I64, a, b) != a&b {
			return false
		}
		if evalBin(Xor, I64, a, b) != a^b {
			return false
		}
		sh := b % 64
		if evalBin(Shl, I64, a, sh) != a<<sh {
			return false
		}
		if evalBin(LShr, I64, a, sh) != a>>sh {
			return false
		}
		if evalBin(AShr, I64, a, sh) != uint64(int64(a)>>sh) {
			return false
		}
		// 8-bit wraparound.
		if evalBin(Add, I8, a, b) != (a+b)&0xFF {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestEvalICmpMatchesGo cross-checks comparisons including sign
// handling at narrow widths.
func TestEvalICmpMatchesGo(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 20000; i++ {
		a, b := r.Uint64(), r.Uint64()
		if evalICmp(ULT, I64, a, b) != (a < b) {
			t.Fatal("ult")
		}
		if evalICmp(SLT, I64, a, b) != (int64(a) < int64(b)) {
			t.Fatal("slt")
		}
		if evalICmp(SGE, I8, a, b) != (int8(a) >= int8(b)) {
			t.Fatal("sge i8")
		}
		if evalICmp(EQ, I8, a, b) != (uint8(a) == uint8(b)) {
			t.Fatal("eq i8")
		}
	}
}

func TestSignExtend(t *testing.T) {
	if signExtend(0x80, I8) != 0xFFFFFFFFFFFFFF80 {
		t.Error("sext 0x80")
	}
	if signExtend(0x7F, I8) != 0x7F {
		t.Error("sext 0x7f")
	}
	if signExtend(1, I1) != ^uint64(0) {
		t.Error("sext i1 1")
	}
}

func TestShiftOverflowDefined(t *testing.T) {
	if evalBin(Shl, I64, 1, 64) != 0 {
		t.Error("shl 64 must be 0")
	}
	if evalBin(LShr, I64, ^uint64(0), 100) != 0 {
		t.Error("lshr 100 must be 0")
	}
	if evalBin(AShr, I64, 1<<63, 100) != ^uint64(0) {
		t.Error("ashr overflow must sign-fill")
	}
}

func TestCellRegistry(t *testing.T) {
	m := NewModule("cells")
	c1 := m.EnsureCell("rax", I64)
	c2 := m.EnsureCell("rax", I64)
	if c1 != c2 || len(m.Cells) != 1 {
		t.Error("EnsureCell not idempotent")
	}
	if ty, ok := m.CellType("rax"); !ok || ty != I64 {
		t.Error("CellType lookup failed")
	}
	if _, ok := m.CellType("zf"); ok {
		t.Error("CellType invented a cell")
	}
}

func TestInsertBefore(t *testing.T) {
	m := NewModule("ins")
	f := m.NewFunc("f")
	m.EntryFunc = "f"
	blk := f.NewBlock("e")
	b := NewBuilder(blk)
	b.Add(C64(1), C64(2))
	b.Ret()

	clone := &Instr{Op: OpBin, Ty: I64, Bin: Add, Args: []Value{C64(3), C64(4)}}
	InsertBefore(blk, 1, []*Instr{clone})
	if len(blk.Insts) != 3 {
		t.Fatalf("len = %d", len(blk.Insts))
	}
	if blk.Insts[1] != clone {
		t.Error("insert position wrong")
	}
	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
}
