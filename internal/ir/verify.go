package ir

import (
	"errors"
	"fmt"
)

// ErrInvalid wraps all verification failures.
var ErrInvalid = errors.New("ir: invalid module")

// Verify checks module well-formedness:
//
//   - every block ends with exactly one terminator (and none earlier);
//   - instruction operands are block-local and defined before use
//     (constants are always fine);
//   - operand and result types are consistent per opcode;
//   - branch targets belong to the same function;
//   - cells are registered with matching types;
//   - calls target functions of the same module;
//   - the entry function exists.
func Verify(m *Module) error {
	fail := func(f *Function, b *Block, format string, args ...any) error {
		loc := ""
		if f != nil {
			loc = f.Name
		}
		if b != nil {
			loc += ":" + b.Name
		}
		return fmt.Errorf("%w: %s: %s", ErrInvalid, loc, fmt.Sprintf(format, args...))
	}

	if m.EntryFunc != "" && m.Func(m.EntryFunc) == nil {
		return fail(nil, nil, "entry function %q missing", m.EntryFunc)
	}

	for _, f := range m.Funcs {
		blockSet := make(map[*Block]bool, len(f.Blocks))
		names := make(map[string]bool, len(f.Blocks))
		for _, b := range f.Blocks {
			blockSet[b] = true
			if names[b.Name] {
				return fail(f, b, "duplicate block name")
			}
			names[b.Name] = true
		}
		if len(f.Blocks) == 0 {
			return fail(f, nil, "function has no blocks")
		}

		for _, b := range f.Blocks {
			if len(b.Insts) == 0 {
				return fail(f, b, "empty block")
			}
			defined := make(map[*Instr]bool, len(b.Insts))
			for idx, in := range b.Insts {
				isLast := idx == len(b.Insts)-1
				if in.IsTerminator() != isLast {
					if isLast {
						return fail(f, b, "block does not end with a terminator")
					}
					return fail(f, b, "terminator %s in the middle of a block", in.MnemonicString())
				}
				for ai, arg := range in.Args {
					switch v := arg.(type) {
					case *Const:
						// always fine
					case *Instr:
						if v.Ty == Void {
							return fail(f, b, "inst %d uses void value", idx)
						}
						if v.blk != b || !defined[v] {
							return fail(f, b, "inst %d arg %d is not block-local-dominating", idx, ai)
						}
					case nil:
						return fail(f, b, "inst %d arg %d is nil", idx, ai)
					default:
						return fail(f, b, "inst %d arg %d has unknown value kind", idx, ai)
					}
				}
				if err := checkTypes(m, f, b, in); err != nil {
					return err
				}
				if in.Op == OpBr || in.Op == OpJmp {
					if in.Then == nil || !blockSet[in.Then] {
						return fail(f, b, "branch target not in function")
					}
					if in.Op == OpBr && (in.Else == nil || !blockSet[in.Else]) {
						return fail(f, b, "false branch target not in function")
					}
				}
				if in.Op == OpCall {
					if in.Callee == nil || m.Func(in.Callee.Name) != in.Callee {
						return fail(f, b, "call to foreign or missing function")
					}
				}
				defined[in] = true
			}
		}
	}
	return nil
}

func checkTypes(m *Module, f *Function, b *Block, in *Instr) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s:%s: %s: %s", ErrInvalid, f.Name, b.Name,
			in.MnemonicString(), fmt.Sprintf(format, args...))
	}
	argTy := func(i int) Type { return in.Args[i].Type() }

	switch in.Op {
	case OpBin:
		if len(in.Args) != 2 {
			return fail("wants 2 args, has %d", len(in.Args))
		}
		if argTy(0) != in.Ty || argTy(1) != in.Ty {
			return fail("operand types %v,%v do not match result %v", argTy(0), argTy(1), in.Ty)
		}
		if in.Ty == Void || in.Ty == I1 && in.Bin != Xor && in.Bin != And && in.Bin != Or {
			return fail("bad result type %v", in.Ty)
		}
	case OpICmp:
		if len(in.Args) != 2 || in.Ty != I1 {
			return fail("icmp must compare 2 args into i1")
		}
		if argTy(0) != argTy(1) {
			return fail("compared types differ: %v vs %v", argTy(0), argTy(1))
		}
	case OpZExt, OpSExt:
		if len(in.Args) != 1 || in.Ty.Bits() <= argTy(0).Bits() {
			return fail("extension must widen (%v -> %v)", argTy(0), in.Ty)
		}
	case OpTrunc:
		if len(in.Args) != 1 || in.Ty.Bits() >= argTy(0).Bits() {
			return fail("truncation must narrow (%v -> %v)", argTy(0), in.Ty)
		}
	case OpSelect:
		if len(in.Args) != 3 || argTy(0) != I1 || argTy(1) != in.Ty || argTy(2) != in.Ty {
			return fail("select wants (i1, T, T) -> T")
		}
	case OpLoad:
		if len(in.Args) != 1 || argTy(0) != I64 || in.Ty == Void {
			return fail("load wants i64 address")
		}
	case OpStore:
		if len(in.Args) != 2 || argTy(1) != I64 {
			return fail("store wants (value, i64 address)")
		}
	case OpCellRead:
		ty, ok := m.CellType(in.Cell)
		if !ok {
			return fail("unregistered cell %q", in.Cell)
		}
		if in.Ty != ty {
			return fail("cell %q is %v, read as %v", in.Cell, ty, in.Ty)
		}
	case OpCellWrite:
		ty, ok := m.CellType(in.Cell)
		if !ok {
			return fail("unregistered cell %q", in.Cell)
		}
		if len(in.Args) != 1 || argTy(0) != ty {
			return fail("cell %q is %v, written as %v", in.Cell, ty, argTy(0))
		}
	case OpBr:
		if len(in.Args) != 1 || argTy(0) != I1 {
			return fail("br wants an i1 condition")
		}
	case OpJmp, OpRet, OpHalt, OpFaultResp, OpSyscall, OpCall:
		if len(in.Args) != 0 {
			return fail("wants no args")
		}
	}
	return nil
}
