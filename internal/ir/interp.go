package ir

import (
	"errors"
	"fmt"

	"github.com/r2r/reinforce/internal/elf"
	"github.com/r2r/reinforce/internal/emu"
)

// Interpreter errors.
var (
	ErrInterpHalt  = errors.New("ir: halt executed")
	ErrInterpLimit = errors.New("ir: step limit exceeded")
	ErrInterpDepth = errors.New("ir: call depth exceeded")
	ErrNoEntry     = errors.New("ir: module has no entry function")
)

// ExecConfig parameterizes a reference-interpreter run.
type ExecConfig struct {
	Stdin     []byte
	StepLimit uint64
	MaxDepth  int

	// Sections to map into the flat memory (typically the data
	// sections of the binary the module was lifted from).
	Sections []*elf.Section

	StackTop  uint64
	StackSize uint64
}

// ExecResult mirrors emu.Result so lifted modules can be compared
// against machine execution differentially.
type ExecResult struct {
	Exited   bool
	ExitCode int
	Stdout   []byte
	Stderr   []byte
	Steps    uint64
	Faulted  bool // a FaultResp fired
}

// interp is one interpreter run.
type interp struct {
	mod   *Module
	cells map[string]uint64
	mem   *emu.Memory

	stdin []byte
	inPos int

	res   ExecResult
	limit uint64
	depth int
	maxD  int
}

// Exec runs the module's entry function under the reference
// interpreter. The returned error is nil for a clean exit (including a
// FaultResp, which exits with code 42 like the machine-level handler).
func Exec(m *Module, cfg ExecConfig) (ExecResult, error) {
	entry := m.Func(m.EntryFunc)
	if entry == nil {
		return ExecResult{}, ErrNoEntry
	}
	if cfg.StepLimit == 0 {
		cfg.StepLimit = emu.DefaultStepLimit
	}
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 256
	}
	if cfg.StackTop == 0 {
		cfg.StackTop = emu.DefaultStackTop
	}
	if cfg.StackSize == 0 {
		cfg.StackSize = emu.DefaultStackSize
	}

	it := &interp{
		mod:   m,
		cells: make(map[string]uint64, len(m.Cells)),
		mem:   emu.NewMemory(),
		stdin: cfg.Stdin,
		limit: cfg.StepLimit,
		maxD:  cfg.MaxDepth,
	}
	for _, s := range cfg.Sections {
		it.mem.LoadSection(s)
	}
	it.mem.Map(cfg.StackTop-cfg.StackSize, cfg.StackSize, elf.FlagRead|elf.FlagWrite)
	if _, ok := m.CellType("rsp"); ok {
		it.cells["rsp"] = cfg.StackTop - 64
	}

	err := it.call(entry)
	if err != nil {
		return it.res, err
	}
	return it.res, nil
}

// call executes one function to completion (ret, exit, or fault).
func (it *interp) call(f *Function) error {
	if it.depth >= it.maxD {
		return ErrInterpDepth
	}
	it.depth++
	defer func() { it.depth-- }()

	vals := make([]uint64, f.nextID+1)
	blk := f.Entry()
	for {
		next, done, err := it.execBlock(blk, vals)
		if err != nil || done {
			return err
		}
		if next == nil {
			return nil // ret
		}
		blk = next
	}
}

// execBlock runs one block. It returns the successor block (nil for
// ret) and done=true when the program exited.
func (it *interp) execBlock(b *Block, vals []uint64) (*Block, bool, error) {
	for _, in := range b.Insts {
		if it.res.Steps >= it.limit {
			return nil, false, ErrInterpLimit
		}
		it.res.Steps++
		if it.res.Exited {
			return nil, true, nil
		}

		get := func(n int) uint64 {
			switch v := in.Args[n].(type) {
			case *Const:
				return v.Val & v.Ty.Mask()
			case *Instr:
				return vals[v.id]
			}
			panic("ir: unknown value kind")
		}

		switch in.Op {
		case OpBin:
			vals[in.id] = evalBin(in.Bin, in.Ty, get(0), get(1))
		case OpICmp:
			if evalICmp(in.Pred, in.Args[0].Type(), get(0), get(1)) {
				vals[in.id] = 1
			} else {
				vals[in.id] = 0
			}
		case OpZExt:
			vals[in.id] = get(0) & in.Args[0].Type().Mask()
		case OpSExt:
			vals[in.id] = signExtend(get(0), in.Args[0].Type()) & in.Ty.Mask()
		case OpTrunc:
			vals[in.id] = get(0) & in.Ty.Mask()
		case OpSelect:
			if get(0)&1 != 0 {
				vals[in.id] = get(1)
			} else {
				vals[in.id] = get(2)
			}
		case OpLoad:
			v, err := it.mem.ReadUint(get(0), uint8(in.Ty.Bits()/8))
			if err != nil {
				return nil, false, err
			}
			vals[in.id] = v
		case OpStore:
			w := uint8(in.Args[0].Type().Bits() / 8)
			if w == 0 {
				w = 1 // i1 stores one byte
			}
			if err := it.mem.WriteUint(get(1), get(0), w); err != nil {
				return nil, false, err
			}
		case OpCellRead:
			vals[in.id] = it.cells[in.Cell] & in.Ty.Mask()
		case OpCellWrite:
			ty, _ := it.mod.CellType(in.Cell)
			it.cells[in.Cell] = get(0) & ty.Mask()
		case OpCall:
			if err := it.call(in.Callee); err != nil {
				return nil, false, err
			}
			if it.res.Exited {
				return nil, true, nil
			}
		case OpSyscall:
			if err := it.syscall(); err != nil {
				return nil, false, err
			}
			if it.res.Exited {
				return nil, true, nil
			}
		case OpBr:
			if get(0)&1 != 0 {
				return in.Then, false, nil
			}
			return in.Else, false, nil
		case OpJmp:
			return in.Then, false, nil
		case OpRet:
			return nil, false, nil
		case OpHalt:
			return nil, false, ErrInterpHalt
		case OpFaultResp:
			it.res.Stderr = append(it.res.Stderr, []byte("FAULT\n")...)
			it.res.Exited = true
			it.res.ExitCode = 42
			it.res.Faulted = true
			return nil, true, nil
		default:
			return nil, false, fmt.Errorf("ir: unknown opcode %d", in.Op)
		}
	}
	return nil, false, fmt.Errorf("ir: block %s fell off the end", b.Name)
}

// EvalBin evaluates a binary operation at a type (compile-time folding
// uses the same semantics as the interpreter).
func EvalBin(kind BinKind, ty Type, a, b uint64) uint64 { return evalBin(kind, ty, a, b) }

// EvalICmp evaluates a comparison at a type.
func EvalICmp(p Pred, ty Type, a, b uint64) bool { return evalICmp(p, ty, a, b) }

// SignExtendValue sign-extends v from the given type to 64 bits.
func SignExtendValue(v uint64, from Type) uint64 { return signExtend(v, from) }

func signExtend(v uint64, from Type) uint64 {
	bits := from.Bits()
	if bits == 0 || bits == 64 {
		return v
	}
	return uint64(int64(v<<(64-bits)) >> (64 - bits))
}

func evalBin(kind BinKind, ty Type, a, b uint64) uint64 {
	mask := ty.Mask()
	a &= mask
	b &= mask
	var r uint64
	switch kind {
	case Add:
		r = a + b
	case Sub:
		r = a - b
	case Mul:
		r = a * b
	case And:
		r = a & b
	case Or:
		r = a | b
	case Xor:
		r = a ^ b
	case Shl:
		if b >= uint64(ty.Bits()) {
			r = 0
		} else {
			r = a << b
		}
	case LShr:
		if b >= uint64(ty.Bits()) {
			r = 0
		} else {
			r = a >> b
		}
	case AShr:
		sa := signExtend(a, ty)
		sh := b
		if sh >= uint64(ty.Bits()) {
			sh = uint64(ty.Bits()) - 1
		}
		r = uint64(int64(sa) >> sh)
	}
	return r & mask
}

func evalICmp(p Pred, ty Type, a, b uint64) bool {
	a &= ty.Mask()
	b &= ty.Mask()
	sa, sb := int64(signExtend(a, ty)), int64(signExtend(b, ty))
	switch p {
	case EQ:
		return a == b
	case NE:
		return a != b
	case ULT:
		return a < b
	case ULE:
		return a <= b
	case UGT:
		return a > b
	case UGE:
		return a >= b
	case SLT:
		return sa < sb
	case SLE:
		return sa <= sb
	case SGT:
		return sa > sb
	case SGE:
		return sa >= sb
	}
	return false
}

// syscall implements the same Linux subset as the machine emulator,
// reading and writing the architectural register cells.
func (it *interp) syscall() error {
	cell := func(n string) uint64 { return it.cells[n] }
	set := func(n string, v uint64) { it.cells[n] = v }

	nr := cell("rax")
	a0, a1, a2 := cell("rdi"), cell("rsi"), cell("rdx")

	// Hardware clobbers on syscall.
	set("rcx", 0)
	set("r11", 0)

	ret := func(v int64) { set("rax", uint64(v)) }
	const maxIO = 1 << 20

	switch nr {
	case 0: // read
		if a0 != 0 {
			ret(-9)
			return nil
		}
		n := int(a2)
		if n < 0 || n > maxIO {
			ret(-14)
			return nil
		}
		remain := len(it.stdin) - it.inPos
		if n > remain {
			n = remain
		}
		if n > 0 {
			buf := it.stdin[it.inPos : it.inPos+n]
			for i, c := range buf {
				if err := it.mem.WriteUint(a1+uint64(i), uint64(c), 1); err != nil {
					ret(-14)
					return nil
				}
			}
			it.inPos += n
		}
		ret(int64(n))
	case 1: // write
		if a0 != 1 && a0 != 2 {
			ret(-9)
			return nil
		}
		n := int(a2)
		if n < 0 || n > maxIO {
			ret(-14)
			return nil
		}
		buf := make([]byte, n)
		if err := it.mem.Read(a1, buf); err != nil {
			ret(-14)
			return nil
		}
		if a0 == 1 {
			it.res.Stdout = append(it.res.Stdout, buf...)
		} else {
			it.res.Stderr = append(it.res.Stderr, buf...)
		}
		ret(int64(n))
	case 60, 231: // exit / exit_group
		it.res.Exited = true
		it.res.ExitCode = int(int32(uint32(a0)))
	default:
		return fmt.Errorf("ir: unsupported syscall %d", nr)
	}
	return nil
}
