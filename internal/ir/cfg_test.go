package ir

import (
	"strings"
	"testing"
)

func buildDiamond(t *testing.T) (*Module, *Function) {
	t.Helper()
	m := NewModule("cfg")
	m.EnsureCell("rax", I64)
	f := m.NewFunc("f")
	m.EntryFunc = "f"

	entry := f.NewBlock("entry")
	left := f.NewBlock("left")
	right := f.NewBlock("right")
	exit := f.NewBlock("exit")

	b := NewBuilder(entry)
	v := b.CellRead("rax")
	c := b.ICmp(EQ, v, C64(0))
	b.Br(c, left, right)

	NewBuilder(left).Jmp(exit)
	NewBuilder(right).Jmp(exit)
	NewBuilder(exit).Ret()

	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
	return m, f
}

func TestSuccessors(t *testing.T) {
	_, f := buildDiamond(t)
	entry := f.Block("entry")
	succ := entry.Successors()
	if len(succ) != 2 || succ[0].Name != "left" || succ[1].Name != "right" {
		t.Fatalf("entry successors = %v", succ)
	}
	if got := f.Block("left").Successors(); len(got) != 1 || got[0].Name != "exit" {
		t.Fatalf("left successors = %v", got)
	}
	if got := f.Block("exit").Successors(); got != nil {
		t.Fatalf("exit successors = %v, want nil", got)
	}
}

func TestCensus(t *testing.T) {
	_, f := buildDiamond(t)
	c := f.Census()
	if c.Blocks != 4 || c.Edges != 4 || c.CondBrs != 1 || c.FaultResps != 0 {
		t.Errorf("census = %+v", c)
	}
}

func TestDotCFG(t *testing.T) {
	_, f := buildDiamond(t)
	f.Block("entry").UID = 0xABC
	dot := DotCFG(f)
	for _, want := range []string{
		`digraph "f"`,
		`"entry" -> "left" [label="T"]`,
		`"entry" -> "right" [label="F"]`,
		`"left" -> "exit"`,
		`uid=0xabc`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot missing %q:\n%s", want, dot)
		}
	}
}

func TestDotCFGColorsFaultResp(t *testing.T) {
	m := NewModule("flt")
	f := m.NewFunc("f")
	m.EntryFunc = "f"
	entry := f.NewBlock("entry")
	flt := f.NewBlock("x_t1_1") // validation-style name
	NewBuilder(entry).Jmp(flt)
	NewBuilder(flt).FaultResp()
	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
	dot := DotCFG(f)
	// FaultResp wins over the validation name heuristic.
	if !strings.Contains(dot, "lightblue") || !strings.Contains(dot, "abort()") {
		t.Errorf("fault-response block not colour-coded:\n%s", dot)
	}
}
