package ir

import (
	"fmt"
	"strings"
)

// Successors returns a block's control-flow successors in (then, else)
// order.
func (b *Block) Successors() []*Block {
	t := b.Terminator()
	if t == nil {
		return nil
	}
	switch t.Op {
	case OpBr:
		return []*Block{t.Then, t.Else}
	case OpJmp:
		return []*Block{t.Then}
	}
	return nil
}

// CFGCensus summarizes a function's control-flow graph.
type CFGCensus struct {
	Blocks     int
	Edges      int
	CondBrs    int
	FaultResps int
}

// Census computes the function's CFG statistics.
func (f *Function) Census() CFGCensus {
	var c CFGCensus
	for _, b := range f.Blocks {
		c.Blocks++
		c.Edges += len(b.Successors())
		if t := b.Terminator(); t != nil {
			switch t.Op {
			case OpBr:
				c.CondBrs++
			case OpFaultResp:
				c.FaultResps++
			}
		}
	}
	return c
}

// DotCFG renders the function's control-flow graph in Graphviz dot
// syntax (paper Figures 4 and 5 are exactly such drawings). Validation
// and fault-response blocks introduced by the branch hardening pass are
// colour-coded like the paper's figure: green for checksum validations,
// blue for fault responses, orange annotations for the expected edge
// checksums.
func DotCFG(f *Function) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", f.Name)
	sb.WriteString("  node [shape=box, fontname=\"monospace\"];\n")
	for _, b := range f.Blocks {
		label := b.Name
		attrs := ""
		switch {
		case b.Terminator() != nil && b.Terminator().Op == OpFaultResp:
			attrs = ", style=filled, fillcolor=lightblue"
			label += "\\nabort()"
		case strings.Contains(b.Name, "_t1_") || strings.Contains(b.Name, "_t2_") ||
			strings.Contains(b.Name, "_f1_") || strings.Contains(b.Name, "_f2_"):
			attrs = ", style=filled, fillcolor=palegreen"
			label += "\\nvalidate checksum"
		}
		if b.UID != 0 {
			label += fmt.Sprintf("\\nuid=%#x", b.UID)
		}
		fmt.Fprintf(&sb, "  %q [label=\"%s\"%s];\n", b.Name, label, attrs)
	}
	for _, b := range f.Blocks {
		succ := b.Successors()
		switch len(succ) {
		case 1:
			fmt.Fprintf(&sb, "  %q -> %q;\n", b.Name, succ[0].Name)
		case 2:
			fmt.Fprintf(&sb, "  %q -> %q [label=\"T\"];\n", b.Name, succ[0].Name)
			fmt.Fprintf(&sb, "  %q -> %q [label=\"F\"];\n", b.Name, succ[1].Name)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
