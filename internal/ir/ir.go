// Package ir is the compiler intermediate representation the Hybrid
// pipeline lifts binaries into (paper §IV-C). It is deliberately
// LLVM-flavoured: a module holds functions, functions hold basic blocks,
// blocks hold typed instructions, and transformation passes operate on
// that hierarchy — the property the paper exploits to implement complex
// countermeasures "at a higher level of abstraction".
//
// Two deviations from LLVM keep lifted machine code simple and the
// lowering honest:
//
//   - Virtual CPU state (registers, flags, and pass-introduced slots
//     like the branch-hardening checksums) lives in named Cells, read
//     and written by CellRead/CellWrite. This mirrors Rev.ng's CPU state
//     globals and avoids SSA construction over machine registers.
//   - Values are block-local: an instruction result may only be used
//     inside its own block. Cross-block dataflow goes through cells or
//     memory. The verifier enforces this, and the lowering exploits it.
package ir

import "fmt"

// Type is an IR value type.
type Type uint8

// Types.
const (
	Void Type = iota
	I1
	I8
	I32
	I64
)

func (t Type) String() string {
	switch t {
	case Void:
		return "void"
	case I1:
		return "i1"
	case I8:
		return "i8"
	case I32:
		return "i32"
	case I64:
		return "i64"
	}
	return "?"
}

// Bits returns the bit width of the type (0 for void).
func (t Type) Bits() uint {
	switch t {
	case I1:
		return 1
	case I8:
		return 8
	case I32:
		return 32
	case I64:
		return 64
	}
	return 0
}

// Mask returns the value mask for the type.
func (t Type) Mask() uint64 {
	if t == I64 {
		return ^uint64(0)
	}
	if t == Void {
		return 0
	}
	return 1<<t.Bits() - 1
}

// Value is an SSA-ish value: a constant or an instruction result.
type Value interface {
	Type() Type
	valueString(fn *Function) string
}

// Const is a typed integer constant.
type Const struct {
	Ty  Type
	Val uint64 // truncated to the type's width
}

// Type implements Value.
func (c *Const) Type() Type { return c.Ty }

func (c *Const) valueString(*Function) string {
	if c.Ty == I1 {
		return fmt.Sprintf("%d", c.Val&1)
	}
	return fmt.Sprintf("%d", int64(c.Val))
}

// C64 makes an i64 constant.
func C64(v uint64) *Const { return &Const{Ty: I64, Val: v} }

// C8 makes an i8 constant.
func C8(v uint64) *Const { return &Const{Ty: I8, Val: v & 0xFF} }

// C1 makes an i1 constant.
func C1(b bool) *Const {
	if b {
		return &Const{Ty: I1, Val: 1}
	}
	return &Const{Ty: I1, Val: 0}
}

// Op is an instruction opcode.
type Op uint8

// Opcodes.
const (
	OpBin Op = iota
	OpICmp
	OpZExt
	OpSExt
	OpTrunc
	OpSelect
	OpLoad
	OpStore
	OpCellRead
	OpCellWrite
	OpCall
	OpSyscall
	OpBr
	OpJmp
	OpRet
	OpHalt
	OpFaultResp
)

// BinKind is the arithmetic/logic operation of an OpBin.
type BinKind uint8

// Binary operation kinds.
const (
	Add BinKind = iota
	Sub
	Mul
	And
	Or
	Xor
	Shl
	LShr
	AShr
)

var binNames = [...]string{"add", "sub", "mul", "and", "or", "xor", "shl", "lshr", "ashr"}

func (b BinKind) String() string {
	if int(b) < len(binNames) {
		return binNames[b]
	}
	return "?"
}

// Pred is an integer comparison predicate.
type Pred uint8

// Comparison predicates.
const (
	EQ Pred = iota
	NE
	ULT
	ULE
	UGT
	UGE
	SLT
	SLE
	SGT
	SGE
)

var predNames = [...]string{"eq", "ne", "ult", "ule", "ugt", "uge", "slt", "sle", "sgt", "sge"}

func (p Pred) String() string {
	if int(p) < len(predNames) {
		return predNames[p]
	}
	return "?"
}

// Instr is one IR instruction. Non-void instructions are Values.
type Instr struct {
	Op   Op
	Ty   Type    // result type (Void for effects/terminators)
	Bin  BinKind // OpBin
	Pred Pred    // OpICmp
	Cell string  // OpCellRead / OpCellWrite
	Args []Value

	Then *Block // OpBr true-target / OpJmp target
	Else *Block // OpBr false-target

	Callee *Function // OpCall

	// Dup links a countermeasure-inserted clone back to the original
	// instruction it re-executes (nil for everything else). Hardening
	// passes set it; the static verifier uses it to check that clones
	// are spaced far enough from their originals.
	Dup *Instr

	id  int // assigned by the builder; unique per function
	blk *Block
}

// Type implements Value.
func (i *Instr) Type() Type { return i.Ty }

// Block returns the containing basic block.
func (i *Instr) Block() *Block { return i.blk }

// ID returns the function-unique instruction number (0 when the
// instruction was never attached through a builder).
func (i *Instr) ID() int { return i.id }

// IsTerminator reports whether the instruction ends a block.
func (i *Instr) IsTerminator() bool {
	switch i.Op {
	case OpBr, OpJmp, OpRet, OpHalt, OpFaultResp:
		return true
	}
	return false
}

func (i *Instr) valueString(fn *Function) string {
	return fmt.Sprintf("%%%d", i.id)
}

// BlockRole tags a block with the structural role a hardening pass
// assigned it, so static verification can find the countermeasure
// skeleton without pattern-matching instruction soup.
type BlockRole uint8

// Block roles. RoleNone is the zero value: any block no pass claimed.
const (
	RoleNone BlockRole = iota
	// RoleSWBody is a block the skip-window pass instrumented: step
	// counter, spaced clones, and the first-stage validation branch.
	RoleSWBody
	// RoleSWCheck2 is a skip-window second-stage check block: it
	// re-reads the parked validation bit from its cell.
	RoleSWCheck2
	// RoleSWCont is the continuation block holding an instrumented
	// block's original terminator.
	RoleSWCont
	// RoleSWFault is a fault-response block the skip-window pass
	// created as the detection target of its validation branches.
	RoleSWFault
)

var roleNames = [...]string{"none", "sw-body", "sw-chk2", "sw-cont", "sw-flt"}

func (r BlockRole) String() string {
	if int(r) < len(roleNames) {
		return roleNames[r]
	}
	return "?"
}

// Block is a basic block: a label plus instructions ending in a
// terminator.
type Block struct {
	Name  string
	Insts []*Instr

	fn *Function

	// UID is the compile-time unique block identifier the conditional
	// branch hardening countermeasure assigns (paper §V-B).
	UID uint64

	// Role records which countermeasure structure the block belongs to
	// (RoleNone unless a hardening pass claimed it).
	Role BlockRole
}

// Func returns the containing function.
func (b *Block) Func() *Function { return b.fn }

// Terminator returns the block's final instruction, or nil if the block
// is empty or unterminated.
func (b *Block) Terminator() *Instr {
	if len(b.Insts) == 0 {
		return nil
	}
	last := b.Insts[len(b.Insts)-1]
	if !last.IsTerminator() {
		return nil
	}
	return last
}

// Function is a lifted machine function: no parameters, no return value;
// all state flows through cells and memory (the Rev.ng convention).
type Function struct {
	Name   string
	Blocks []*Block

	mod    *Module
	nextID int
}

// Module returns the containing module.
func (f *Function) Module() *Module { return f.mod }

// Entry returns the entry block.
func (f *Function) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// Block returns the named block, or nil.
func (f *Function) Block(name string) *Block {
	for _, b := range f.Blocks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// NewBlock appends a new named block.
func (f *Function) NewBlock(name string) *Block {
	b := &Block{Name: name, fn: f}
	f.Blocks = append(f.Blocks, b)
	return b
}

// NumInsts counts instructions in the function.
func (f *Function) NumInsts() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Insts)
	}
	return n
}

// Cell describes one virtual CPU state slot.
type Cell struct {
	Name string
	Ty   Type
}

// Module is a whole lifted program.
type Module struct {
	Name  string
	Funcs []*Function

	// EntryFunc names the function executed first.
	EntryFunc string

	// Cells is the virtual CPU state, in registration order (the
	// lowering assigns storage in this order).
	Cells []Cell

	cellIndex map[string]int
}

// NewModule creates an empty module.
func NewModule(name string) *Module {
	return &Module{Name: name, cellIndex: make(map[string]int)}
}

// NewFunc appends a new empty function.
func (m *Module) NewFunc(name string) *Function {
	f := &Function{Name: name, mod: m}
	m.Funcs = append(m.Funcs, f)
	return f
}

// Func returns the named function, or nil.
func (m *Module) Func(name string) *Function {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// EnsureCell registers (or fetches) a named cell.
func (m *Module) EnsureCell(name string, ty Type) Cell {
	if m.cellIndex == nil {
		m.cellIndex = make(map[string]int)
	}
	if i, ok := m.cellIndex[name]; ok {
		return m.Cells[i]
	}
	c := Cell{Name: name, Ty: ty}
	m.cellIndex[name] = len(m.Cells)
	m.Cells = append(m.Cells, c)
	return c
}

// CellType returns the type of a registered cell.
func (m *Module) CellType(name string) (Type, bool) {
	if m.cellIndex == nil {
		return Void, false
	}
	i, ok := m.cellIndex[name]
	if !ok {
		return Void, false
	}
	return m.Cells[i].Ty, true
}

// NumInsts counts instructions in the module.
func (m *Module) NumInsts() int {
	n := 0
	for _, f := range m.Funcs {
		n += f.NumInsts()
	}
	return n
}

// InstMix tallies instruction kinds across the module — the metric of
// the paper's Table IV ("qualitative overhead").
func (m *Module) InstMix() map[string]int {
	mix := make(map[string]int)
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Insts {
				mix[in.MnemonicString()]++
			}
		}
	}
	return mix
}

// MnemonicString names the instruction kind for statistics ("add",
// "icmp", "br", ...).
func (i *Instr) MnemonicString() string {
	switch i.Op {
	case OpBin:
		return i.Bin.String()
	case OpICmp:
		return "icmp"
	case OpZExt:
		return "zext"
	case OpSExt:
		return "sext"
	case OpTrunc:
		return "trunc"
	case OpSelect:
		return "select"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpCellRead:
		return "cellread"
	case OpCellWrite:
		return "cellwrite"
	case OpCall:
		return "call"
	case OpSyscall:
		return "syscall"
	case OpBr:
		return "br"
	case OpJmp:
		return "jmp"
	case OpRet:
		return "ret"
	case OpHalt:
		return "halt"
	case OpFaultResp:
		return "faultresp"
	}
	return "?"
}
