package ir

import "fmt"

// Builder appends instructions to a block. Create one per block with
// NewBuilder; helpers return the new instruction as a Value where it
// produces one.
type Builder struct {
	blk *Block
}

// NewBuilder returns a builder appending to b.
func NewBuilder(b *Block) *Builder { return &Builder{blk: b} }

// Block returns the block under construction.
func (bd *Builder) Block() *Block { return bd.blk }

// SetBlock retargets the builder.
func (bd *Builder) SetBlock(b *Block) { bd.blk = b }

func (bd *Builder) append(i *Instr) *Instr {
	i.blk = bd.blk
	fn := bd.blk.fn
	fn.nextID++
	i.id = fn.nextID
	bd.blk.Insts = append(bd.blk.Insts, i)
	return i
}

// Bin appends a binary operation; operands must share the result type.
func (bd *Builder) Bin(kind BinKind, a, b Value) Value {
	return bd.append(&Instr{Op: OpBin, Ty: a.Type(), Bin: kind, Args: []Value{a, b}})
}

// Convenience wrappers for the common binary ops.

// Add appends an addition.
func (bd *Builder) Add(a, b Value) Value { return bd.Bin(Add, a, b) }

// Sub appends a subtraction.
func (bd *Builder) Sub(a, b Value) Value { return bd.Bin(Sub, a, b) }

// Mul appends a multiplication.
func (bd *Builder) Mul(a, b Value) Value { return bd.Bin(Mul, a, b) }

// And appends a bitwise and.
func (bd *Builder) And(a, b Value) Value { return bd.Bin(And, a, b) }

// Or appends a bitwise or.
func (bd *Builder) Or(a, b Value) Value { return bd.Bin(Or, a, b) }

// Xor appends a bitwise xor.
func (bd *Builder) Xor(a, b Value) Value { return bd.Bin(Xor, a, b) }

// Not appends x ^ -1.
func (bd *Builder) Not(a Value) Value {
	return bd.Xor(a, &Const{Ty: a.Type(), Val: a.Type().Mask()})
}

// ICmp appends an integer comparison producing i1.
func (bd *Builder) ICmp(p Pred, a, b Value) Value {
	return bd.append(&Instr{Op: OpICmp, Ty: I1, Pred: p, Args: []Value{a, b}})
}

// ZExt appends a zero extension.
func (bd *Builder) ZExt(v Value, to Type) Value {
	return bd.append(&Instr{Op: OpZExt, Ty: to, Args: []Value{v}})
}

// SExt appends a sign extension.
func (bd *Builder) SExt(v Value, to Type) Value {
	return bd.append(&Instr{Op: OpSExt, Ty: to, Args: []Value{v}})
}

// Trunc appends a truncation.
func (bd *Builder) Trunc(v Value, to Type) Value {
	return bd.append(&Instr{Op: OpTrunc, Ty: to, Args: []Value{v}})
}

// Select appends cond ? a : b.
func (bd *Builder) Select(cond, a, b Value) Value {
	return bd.append(&Instr{Op: OpSelect, Ty: a.Type(), Args: []Value{cond, a, b}})
}

// Load appends a flat-memory load of the given type from an i64 address.
func (bd *Builder) Load(ty Type, addr Value) Value {
	return bd.append(&Instr{Op: OpLoad, Ty: ty, Args: []Value{addr}})
}

// Store appends a flat-memory store.
func (bd *Builder) Store(val, addr Value) *Instr {
	return bd.append(&Instr{Op: OpStore, Ty: Void, Args: []Value{val, addr}})
}

// CellRead appends a read of a named cell (registered on the module).
func (bd *Builder) CellRead(cell string) Value {
	ty, ok := bd.blk.fn.mod.CellType(cell)
	if !ok {
		panic(fmt.Sprintf("ir: CellRead of unregistered cell %q", cell))
	}
	return bd.append(&Instr{Op: OpCellRead, Ty: ty, Cell: cell})
}

// CellWrite appends a write of a named cell.
func (bd *Builder) CellWrite(cell string, v Value) *Instr {
	if _, ok := bd.blk.fn.mod.CellType(cell); !ok {
		panic(fmt.Sprintf("ir: CellWrite of unregistered cell %q", cell))
	}
	return bd.append(&Instr{Op: OpCellWrite, Ty: Void, Cell: cell, Args: []Value{v}})
}

// Call appends a call to another function (CPU-state convention: no
// arguments, no result).
func (bd *Builder) Call(f *Function) *Instr {
	return bd.append(&Instr{Op: OpCall, Ty: Void, Callee: f})
}

// Syscall appends the syscall intrinsic (reads/writes the register
// cells per the Linux x86-64 ABI).
func (bd *Builder) Syscall() *Instr {
	return bd.append(&Instr{Op: OpSyscall, Ty: Void})
}

// Br appends a conditional branch terminator.
func (bd *Builder) Br(cond Value, then, els *Block) *Instr {
	return bd.append(&Instr{Op: OpBr, Ty: Void, Args: []Value{cond}, Then: then, Else: els})
}

// Jmp appends an unconditional branch terminator.
func (bd *Builder) Jmp(target *Block) *Instr {
	return bd.append(&Instr{Op: OpJmp, Ty: Void, Then: target})
}

// Ret appends a return terminator.
func (bd *Builder) Ret() *Instr {
	return bd.append(&Instr{Op: OpRet, Ty: Void})
}

// Halt appends the abnormal-stop terminator (hlt/ud2 semantics).
func (bd *Builder) Halt() *Instr {
	return bd.append(&Instr{Op: OpHalt, Ty: Void})
}

// FaultResp appends the fault-response terminator: control transfers to
// the program's fault handler and never returns (paper Fig. 5's
// flt_resp blocks).
func (bd *Builder) FaultResp() *Instr {
	return bd.append(&Instr{Op: OpFaultResp, Ty: Void})
}

// Renumber re-attaches every instruction of b to its function: the
// block back-pointer is refreshed (instructions may have been moved
// between blocks) and instructions without an id get a fresh one.
func Renumber(f *Function, b *Block) {
	for _, in := range b.Insts {
		in.blk = b
		if in.id == 0 {
			f.nextID++
			in.id = f.nextID
		}
	}
}

// InsertBefore splices a prebuilt instruction list at position idx of
// block b, renumbering ids. Used by passes that clone computations.
func InsertBefore(b *Block, idx int, insts []*Instr) {
	fn := b.fn
	for _, in := range insts {
		in.blk = b
		fn.nextID++
		in.id = fn.nextID
	}
	tail := append([]*Instr{}, b.Insts[idx:]...)
	b.Insts = append(b.Insts[:idx], append(insts, tail...)...)
}
