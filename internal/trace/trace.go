// Package trace captures and compares execution traces. The faulter uses
// a recorded trace of the "bad" input run to enumerate dynamic fault
// injection points (paper §IV-B1: "for each offset in that trace ...").
package trace

import (
	"fmt"

	"github.com/r2r/reinforce/internal/elf"
	"github.com/r2r/reinforce/internal/emu"
)

// Trace is a recorded instruction-level execution trace together with
// the run's outcome.
type Trace struct {
	Entries []emu.TraceEntry
	Result  emu.Result
	Err     error // non-nil if the traced run crashed
}

// Capture runs the binary on the given stdin and records its trace.
func Capture(bin *elf.Binary, stdin []byte, stepLimit uint64) *Trace {
	m := emu.New(bin, emu.Config{
		Stdin:       stdin,
		StepLimit:   stepLimit,
		RecordTrace: true,
	})
	res, err := m.Run()
	return &Trace{Entries: m.Trace, Result: res, Err: err}
}

// Len returns the number of executed instructions.
func (t *Trace) Len() int { return len(t.Entries) }

// Sites returns the unique instruction addresses in execution order of
// first appearance.
func (t *Trace) Sites() []uint64 {
	seen := make(map[uint64]bool, len(t.Entries))
	var out []uint64
	for _, e := range t.Entries {
		if !seen[e.Addr] {
			seen[e.Addr] = true
			out = append(out, e.Addr)
		}
	}
	return out
}

// FirstDivergence returns the first index at which two traces execute
// different addresses, or -1 if one is a prefix of the other (equal
// lengths with no divergence also return -1).
func FirstDivergence(a, b *Trace) int {
	n := len(a.Entries)
	if len(b.Entries) < n {
		n = len(b.Entries)
	}
	for i := 0; i < n; i++ {
		if a.Entries[i].Addr != b.Entries[i].Addr {
			return i
		}
	}
	return -1
}

// Summary renders a short human-readable description.
func (t *Trace) Summary() string {
	status := "exit"
	detail := fmt.Sprintf("code %d", t.Result.ExitCode)
	if t.Err != nil {
		status = "crash"
		detail = t.Err.Error()
	}
	return fmt.Sprintf("%d instructions, %d unique sites, %s (%s)",
		t.Len(), len(t.Sites()), status, detail)
}
