package trace

import (
	"strings"
	"testing"

	"github.com/r2r/reinforce/internal/asm"
)

const branchy = `
.text
_start:
	mov rax, 0
	mov rdi, 0
	lea rsi, [rip+buf]
	mov rdx, 1
	syscall
	mov al, [rip+buf]
	cmp al, 'y'
	jne no
yes:
	mov rax, 60
	mov rdi, 0
	syscall
no:
	mov rax, 60
	mov rdi, 1
	syscall
.bss
buf: .zero 1
`

func TestCaptureAndSites(t *testing.T) {
	bin, err := asm.Assemble(branchy, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := Capture(bin, []byte("y"), 0)
	if tr.Err != nil {
		t.Fatal(tr.Err)
	}
	if tr.Result.ExitCode != 0 {
		t.Fatalf("exit = %d", tr.Result.ExitCode)
	}
	if tr.Len() != 11 {
		t.Errorf("trace length = %d, want 11", tr.Len())
	}
	if len(tr.Sites()) != tr.Len() {
		t.Errorf("straight-line run: sites %d != len %d", len(tr.Sites()), tr.Len())
	}
}

func TestSitesDedupInLoop(t *testing.T) {
	src := `
.text
_start:
	mov rcx, 5
loop:
	dec rcx
	jne loop
	mov rax, 60
	mov rdi, 0
	syscall
`
	bin, err := asm.Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := Capture(bin, nil, 0)
	if tr.Err != nil {
		t.Fatal(tr.Err)
	}
	// 1 + 5*2 + 3 = 14 executed, but only 6 unique addresses.
	if tr.Len() != 14 {
		t.Errorf("trace length = %d, want 14", tr.Len())
	}
	if got := len(tr.Sites()); got != 6 {
		t.Errorf("unique sites = %d, want 6", got)
	}
}

func TestFirstDivergence(t *testing.T) {
	bin, err := asm.Assemble(branchy, nil)
	if err != nil {
		t.Fatal(err)
	}
	good := Capture(bin, []byte("y"), 0)
	bad := Capture(bin, []byte("n"), 0)
	div := FirstDivergence(good, bad)
	if div < 0 {
		t.Fatal("traces did not diverge")
	}
	// Divergence happens right after the conditional jump executes:
	// both traces contain the jne at the same index, then split.
	if good.Entries[div-1].Addr != bad.Entries[div-1].Addr {
		t.Error("entry before divergence differs")
	}
	same := FirstDivergence(good, good)
	if same != -1 {
		t.Errorf("self-divergence = %d, want -1", same)
	}
}

func TestSummary(t *testing.T) {
	bin, err := asm.Assemble(branchy, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := Capture(bin, []byte("y"), 0)
	s := tr.Summary()
	if !strings.Contains(s, "instructions") || !strings.Contains(s, "exit") {
		t.Errorf("summary = %q", s)
	}
	// Crashing run.
	crash := Capture(bin, []byte("y"), 2) // step limit 2
	if crash.Err == nil {
		t.Fatal("expected step-limit crash")
	}
	if !strings.Contains(crash.Summary(), "crash") {
		t.Errorf("crash summary = %q", crash.Summary())
	}
}
