package passes

import (
	"fmt"

	"github.com/r2r/reinforce/internal/ir"
)

// Cells used by the skip-window hardening countermeasure.
const (
	// CellStepCtr is the per-block step counter: reset on block entry,
	// incremented between instructions, verified against the block's
	// static increment count before any fault-response-free exit.
	CellStepCtr = "sw.ctr"
	// CellSWOk carries the block's combined validation bit across the
	// two-stage check (values may not cross block boundaries).
	CellSWOk = "sw.ok"
	// CellSWCond carries a duplicated branch condition across the check
	// blocks, like DuplicateAll's dup.cond.
	CellSWCond = "sw.cond"
)

// DefaultSkipWindow is the widest instruction-skip window the pass
// defends against by construction — the MaxWindow of the built-in
// multi-instruction-skip fault model.
const DefaultSkipWindow = 4

// incrementEvery is the step-counter cadence: one increment per this
// many block instructions (plus one after the final instruction and
// between clones).
const incrementEvery = 2

// SkipWindowHarden is the multi-fault-resistant duplication pass: the
// order-2 countermeasure the single-fault schemes of the paper lack
// (cf. Boespflug et al., Moro et al.). It reuses DuplicateAll's
// duplicate-and-compare machinery but arranges redundancy so that no
// single glitch window — and no pair of single-instruction skips — can
// remove a computation together with its verification:
//
//   - redundant computations are *spaced*: every clone is emitted in a
//     separate region at the end of its block, always more than Window
//     instructions after the original, so one contiguous skip of up to
//     Window instructions cannot cover both;
//   - blocks carry a *step counter* (CellStepCtr): reset on entry,
//     incremented between instructions, and verified against the
//     block's static increment count before every fault-response-free
//     exit — a sustained glitch that swallows a whole check region also
//     swallows increments and is caught by the count;
//   - validation is *chained* in two stages: the combined agreement-and-
//     count bit gates the exit directly, and is also parked in CellSWOk
//     and re-checked from the cell in a second block, so an order-2
//     attack that skips a computation and the first check branch still
//     runs into the second.
//
// Defeating the scheme requires at least three coordinated faults: one
// for the computation, one per validation stage — one order beyond the
// order-2 campaigns the engine simulates.
type SkipWindowHarden struct {
	// Window is the maximum skip-window width to resist (0 means
	// DefaultSkipWindow). Clones are spaced by more than Window
	// instructions from their originals.
	Window int

	// Stats is filled during Run when non-nil.
	Stats *SkipWindowStats
}

// SkipWindowStats reports what the pass did.
type SkipWindowStats struct {
	BlocksInstrumented int
	BlocksSkipped      int // terminator-only and fault-response blocks
	Duplicated         int // computations cloned into the spaced region
	Increments         int // step-counter increments inserted
	Checks             int // two-stage validation chains added
}

// Name implements Pass.
func (SkipWindowHarden) Name() string { return "skip-window-harden" }

// Run implements Pass.
func (p SkipWindowHarden) Run(m *ir.Module) error {
	window := p.Window
	if window <= 0 {
		window = DefaultSkipWindow
	}
	stats := p.Stats
	if stats == nil {
		stats = &SkipWindowStats{}
	}
	m.EnsureCell(CellStepCtr, ir.I64)
	m.EnsureCell(CellSWOk, ir.I1)
	m.EnsureCell(CellSWCond, ir.I1)

	seq := 0
	for _, f := range m.Funcs {
		// Snapshot: the pass appends check blocks while iterating.
		original := append([]*ir.Block{}, f.Blocks...)
		for _, b := range original {
			seq++
			if err := skipWindowBlock(f, b, window, stats, seq); err != nil {
				return err
			}
		}
	}
	return nil
}

// swIncrement appends a step-counter increment (read, add 1, write) to
// the instruction list.
func swIncrement(insts []*ir.Instr) []*ir.Instr {
	rd := &ir.Instr{Op: ir.OpCellRead, Ty: ir.I64, Cell: CellStepCtr}
	add := &ir.Instr{Op: ir.OpBin, Ty: ir.I64, Bin: ir.Add, Args: []ir.Value{rd, ir.C64(1)}}
	wr := &ir.Instr{Op: ir.OpCellWrite, Ty: ir.Void, Cell: CellStepCtr, Args: []ir.Value{add}}
	return append(insts, rd, add, wr)
}

// safeToCloneAtEnd reports whether re-executing instruction in (at
// position pos of the original list) just before the terminator is
// sound: loads need memory unchanged until then, cell reads need the
// cell unwritten, and calls/syscalls invalidate both. Pure computations
// are always safe — their operands are block-local SSA values.
func safeToCloneAtEnd(orig []*ir.Instr, pos int, in *ir.Instr) bool {
	switch in.Op {
	case ir.OpLoad:
		for i := pos + 1; i < len(orig)-1; i++ {
			switch orig[i].Op {
			case ir.OpStore, ir.OpCall, ir.OpSyscall:
				return false
			}
		}
	case ir.OpCellRead:
		for i := pos + 1; i < len(orig)-1; i++ {
			x := orig[i]
			if x.Op == ir.OpCellWrite && x.Cell == in.Cell {
				return false
			}
			if x.Op == ir.OpCall || x.Op == ir.OpSyscall {
				return false
			}
		}
	}
	return true
}

// skipWindowBlock rewrites one block. Layout of the result:
//
//	b:    ctr := 0
//	      inst₁ ; ctr++ ; inst₂ ; ctr++ ; … ; instₙ ; ctr++
//	      ctr++                      (boundary spacer)
//	      clone₁ ; agree₁ ; ctr++ ; clone₂ ; agree₂ ; ∧ ; ctr++ ; …
//	      ok := agree₁ ∧ … ∧ (ctr == K)
//	      sw.ok := ok
//	      br ok, chk2, flt
//	chk2: br sw.ok, cont, flt        (re-read from the cell)
//	cont: original terminator
//	flt:  faultresp
func skipWindowBlock(f *ir.Function, b *ir.Block, window int, stats *SkipWindowStats, seq int) error {
	term := b.Terminator()
	if term == nil {
		return fmt.Errorf("skip-window-harden: unterminated block %s", b.Name)
	}
	// Fault-response blocks are the detection exit itself; blocks with
	// no body have nothing to count or duplicate.
	if term.Op == ir.OpFaultResp || len(b.Insts) == 1 {
		stats.BlocksSkipped++
		return nil
	}

	orig := b.Insts
	body := orig[:len(orig)-1]

	// Phase 1: originals interleaved with counter increments.
	newInsts := []*ir.Instr{{Op: ir.OpCellWrite, Ty: ir.Void, Cell: CellStepCtr, Args: []ir.Value{ir.C64(0)}}}
	increments := 0
	var dups []*ir.Instr // originals to clone, in order
	for i, in := range body {
		newInsts = append(newInsts, in)
		// One counter increment per incrementEvery originals: dense
		// enough that a sustained skip window either damages an
		// increment (count check) or stays inside a duplicated
		// computation (agreement check), cheap enough to keep the
		// instrumented block in the same size regime as blanket
		// duplication.
		if (i+1)%incrementEvery == 0 || i == len(body)-1 {
			newInsts = swIncrement(newInsts)
			increments++
		}
		if duplicable(in) && safeToCloneAtEnd(orig, i, in) {
			dups = append(dups, in)
		}
	}

	// Boundary spacer: together with the last original's increment this
	// puts more than `window` instructions between the final original
	// and the first clone (each increment is 3 IR instructions and
	// lowers to at least as many machine instructions).
	spacers := (window + 2) / 3
	if spacers < 1 {
		spacers = 1
	}
	for i := 0; i < spacers; i++ {
		newInsts = swIncrement(newInsts)
		increments++
	}

	// Phase 2: the spaced clone region. Each clone re-executes its
	// original's computation on the original's operands (duplicate
	// reads), and the agreement bits fold into one conjunction.
	var okChain *ir.Instr
	for _, in := range dups {
		clone := &ir.Instr{Op: in.Op, Ty: in.Ty, Bin: in.Bin, Pred: in.Pred, Cell: in.Cell,
			Args: append([]ir.Value{}, in.Args...), Dup: in}
		agree := &ir.Instr{Op: ir.OpICmp, Ty: ir.I1, Pred: ir.EQ, Args: []ir.Value{in, clone}}
		newInsts = append(newInsts, clone, agree)
		if okChain == nil {
			okChain = agree
		} else {
			okChain = &ir.Instr{Op: ir.OpBin, Ty: ir.I1, Bin: ir.And, Args: []ir.Value{okChain, agree}}
			newInsts = append(newInsts, okChain)
		}
		newInsts = swIncrement(newInsts)
		increments++
		stats.Duplicated++
	}

	// Final validation: counter against its static count, conjoined
	// with the agreement chain.
	ctrRead := &ir.Instr{Op: ir.OpCellRead, Ty: ir.I64, Cell: CellStepCtr}
	ctrOK := &ir.Instr{Op: ir.OpICmp, Ty: ir.I1, Pred: ir.EQ, Args: []ir.Value{ctrRead, ir.C64(uint64(increments))}}
	newInsts = append(newInsts, ctrRead, ctrOK)
	ok := ctrOK
	if okChain != nil {
		both := &ir.Instr{Op: ir.OpBin, Ty: ir.I1, Bin: ir.And, Args: []ir.Value{okChain, ctrOK}}
		newInsts = append(newInsts, both)
		ok = both
	}
	parkOK := &ir.Instr{Op: ir.OpCellWrite, Ty: ir.Void, Cell: CellSWOk, Args: []ir.Value{ok}}
	newInsts = append(newInsts, parkOK)

	// Continuation: the original terminator, with a block-local branch
	// condition carried through a cell (as in DuplicateAll).
	cont := f.NewBlock(fmt.Sprintf("%s_sw_ok_%d", b.Name, seq))
	cont.Role = ir.RoleSWCont
	if term.Op == ir.OpBr {
		if cond, isInst := term.Args[0].(*ir.Instr); isInst {
			carry := &ir.Instr{Op: ir.OpCellWrite, Ty: ir.Void, Cell: CellSWCond, Args: []ir.Value{cond}}
			newInsts = append(newInsts, carry)
			reread := &ir.Instr{Op: ir.OpCellRead, Ty: ir.I1, Cell: CellSWCond}
			term.Args[0] = reread
			cont.Insts = append(cont.Insts, reread)
		}
	}
	cont.Insts = append(cont.Insts, term)

	flt := f.NewBlock(fmt.Sprintf("%s_sw_flt_%d", b.Name, seq))
	flt.Role = ir.RoleSWFault
	ir.NewBuilder(flt).FaultResp()

	// Second-stage check: re-read the parked bit from the cell. An
	// attack that skips a computation and the first check branch still
	// has to get past this one.
	chk2 := f.NewBlock(fmt.Sprintf("%s_sw_chk2_%d", b.Name, seq))
	chk2.Role = ir.RoleSWCheck2
	b2 := ir.NewBuilder(chk2)
	b2.Br(b2.CellRead(CellSWOk), cont, flt)

	placeAfter(f, b, []*ir.Block{chk2, cont, flt})

	check := &ir.Instr{Op: ir.OpBr, Ty: ir.Void, Args: []ir.Value{ok}, Then: chk2, Else: flt}
	newInsts = append(newInsts, check)
	b.Insts = newInsts
	b.Role = ir.RoleSWBody
	ir.Renumber(f, b)
	ir.Renumber(f, cont)
	stats.Increments += increments
	stats.Checks++
	stats.BlocksInstrumented++
	return nil
}
