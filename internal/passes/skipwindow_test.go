package passes

import (
	"strings"
	"testing"

	"github.com/r2r/reinforce/internal/ir"
)

func TestSkipWindowHardenPreservesBehaviour(t *testing.T) {
	res := liftSrc(t, pincheckSrc)
	before := behaviours(t, res, pinInputs)
	if err := Run(res.Module, SkipWindowHarden{}); err != nil {
		t.Fatal(err)
	}
	after := behaviours(t, res, pinInputs)
	sameBehaviour(t, "skip-window", before, after)
	for _, r := range after {
		if r.Faulted {
			t.Error("fault response fired without a fault")
		}
	}
}

func TestSkipWindowHardenStructure(t *testing.T) {
	res := liftSrc(t, pincheckSrc)
	f := res.Module.Func("_start")
	blocksBefore := len(f.Blocks)

	var stats SkipWindowStats
	if err := Run(res.Module, SkipWindowHarden{Stats: &stats}); err != nil {
		t.Fatal(err)
	}
	if stats.BlocksInstrumented == 0 {
		t.Fatal("no blocks instrumented")
	}
	// Every instrumented block adds a chk2, a continuation, and a
	// fault-response block.
	if got, want := len(f.Blocks)-blocksBefore, 3*stats.BlocksInstrumented; got != want {
		t.Errorf("blocks added = %d, want %d (3 per instrumented block)", got, want)
	}
	if stats.Duplicated == 0 {
		t.Error("no computations duplicated")
	}
	if stats.Increments < stats.Duplicated {
		t.Errorf("increments = %d < duplicated = %d: counter not interleaved",
			stats.Increments, stats.Duplicated)
	}
	for _, cell := range []string{CellStepCtr, CellSWOk, CellSWCond} {
		if _, ok := res.Module.CellType(cell); !ok {
			t.Errorf("cell %q not registered", cell)
		}
	}
	s := res.Module.String()
	for _, want := range []string{"cellwrite @sw.ctr", "cellread i64 @sw.ctr", "cellwrite @sw.ok", "cellread i1 @sw.ok", "faultresp"} {
		if !strings.Contains(s, want) {
			t.Errorf("module missing %q", want)
		}
	}
}

// TestSkipWindowSpacing checks the pass's defining property: a clone
// never sits within Window instructions of its original.
func TestSkipWindowSpacing(t *testing.T) {
	const window = DefaultSkipWindow
	res := liftSrc(t, pincheckSrc)
	if err := Run(res.Module, SkipWindowHarden{Window: window}); err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Module.Funcs {
		for _, b := range f.Blocks {
			pos := map[*ir.Instr]int{}
			for i, in := range b.Insts {
				pos[in] = i
			}
			for i, in := range b.Insts {
				// A clone is an ICmp EQ whose two args are distinct
				// instructions with identical op/shape (the agree check
				// compares original against clone, clone at i-1).
				if in.Op != ir.OpICmp || in.Pred != ir.EQ || len(in.Args) != 2 {
					continue
				}
				origV, ok1 := in.Args[0].(*ir.Instr)
				cloneV, ok2 := in.Args[1].(*ir.Instr)
				if !ok1 || !ok2 || pos[cloneV] != i-1 || origV.Op != cloneV.Op {
					continue
				}
				if d := pos[cloneV] - pos[origV]; d <= window {
					t.Errorf("%s:%s: clone of inst %d at %d — distance %d <= window %d",
						f.Name, b.Name, pos[origV], pos[cloneV], d, window)
				}
			}
		}
	}
}

// TestSkipWindowDetectsCounterCorruption simulates a sustained glitch:
// a step-counter increment is deleted (as a multi-instruction skip
// would), and the block's count check must divert to the fault
// response.
func TestSkipWindowDetectsCounterCorruption(t *testing.T) {
	res := liftSrc(t, pincheckSrc)
	if err := Run(res.Module, SkipWindowHarden{}); err != nil {
		t.Fatal(err)
	}
	// Delete one increment triple (cellread ctr; add; cellwrite ctr)
	// from the entry block.
	f := res.Module.Func("_start")
	entry := f.Entry()
	removed := false
	for i := 0; i+2 < len(entry.Insts); i++ {
		a, b, c := entry.Insts[i], entry.Insts[i+1], entry.Insts[i+2]
		if a.Op == ir.OpCellRead && a.Cell == CellStepCtr &&
			b.Op == ir.OpBin && b.Bin == ir.Add &&
			c.Op == ir.OpCellWrite && c.Cell == CellStepCtr {
			entry.Insts = append(entry.Insts[:i], entry.Insts[i+3:]...)
			removed = true
			break
		}
	}
	if !removed {
		t.Fatal("no increment triple found in entry block")
	}
	if err := ir.Verify(res.Module); err != nil {
		t.Fatal(err)
	}
	r, err := ir.Exec(res.Module, ir.ExecConfig{Stdin: []byte("00000000"), Sections: res.Data})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Faulted || r.ExitCode != 42 {
		t.Errorf("deleted increment not detected: %+v", r)
	}
}

// TestSkipWindowDetectsDuplicationMismatch corrupts a duplicated
// computation's result cell-style (flip the parked validation bit's
// source by deleting a clone) and expects detection via the agreement
// chain.
func TestSkipWindowDetectsParkedBitMismatch(t *testing.T) {
	res := liftSrc(t, pincheckSrc)
	if err := Run(res.Module, SkipWindowHarden{}); err != nil {
		t.Fatal(err)
	}
	// Overwrite the parked sw.ok bit with constant false right after it
	// is written in the entry block: the second-stage check must fire
	// even though the first branch saw the true value... and vice versa.
	// Here we corrupt the *cell*, so stage 2 diverts.
	f := res.Module.Func("_start")
	entry := f.Entry()
	for i, in := range entry.Insts {
		if in.Op == ir.OpCellWrite && in.Cell == CellSWOk {
			wr := &ir.Instr{Op: ir.OpCellWrite, Ty: ir.Void, Cell: CellSWOk, Args: []ir.Value{ir.C1(false)}}
			ir.InsertBefore(entry, i+1, []*ir.Instr{wr})
			break
		}
	}
	if err := ir.Verify(res.Module); err != nil {
		t.Fatal(err)
	}
	r, err := ir.Exec(res.Module, ir.ExecConfig{Stdin: []byte("00000000"), Sections: res.Data})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Faulted || r.ExitCode != 42 {
		t.Errorf("corrupted parked bit not detected: %+v", r)
	}
}

func TestSkipWindowAfterBranchHarden(t *testing.T) {
	// The order-2 Hybrid pipeline: branch hardening, then skip-window
	// hardening, then countermeasure-safe cleanup.
	res := liftSrc(t, pincheckSrc)
	before := behaviours(t, res, pinInputs)
	ps := append([]Pass{BranchHarden{}, SkipWindowHarden{}}, PostHardenCleanup()...)
	if err := Run(res.Module, ps...); err != nil {
		t.Fatal(err)
	}
	sameBehaviour(t, "branch+skip-window", before, behaviours(t, res, pinInputs))
	s := res.Module.String()
	if !strings.Contains(s, "@chk.d1") || !strings.Contains(s, "@sw.ctr") {
		t.Error("cleanup removed a countermeasure")
	}
}

func TestSkipWindowLoopedProgram(t *testing.T) {
	src := `
.text
_start:
	mov rax, 0
	mov rdi, 0
	lea rsi, [rip+buf]
	mov rdx, 8
	syscall
	xor rax, rax
	mov rcx, 8
	lea rbx, [rip+buf]
sum:
	movzx rdx, byte ptr [rbx]
	add rax, rdx
	inc rbx
	dec rcx
	jne sum
	cmp rax, 520
	jne deny
	mov rdi, 0
	mov rax, 60
	syscall
deny:
	mov rdi, 1
	mov rax, 60
	syscall
.bss
buf: .zero 8
`
	res := liftSrc(t, src)
	inputs := [][]byte{
		{65, 65, 65, 65, 65, 65, 65, 65},
		{1, 2, 3, 4, 5, 6, 7, 8},
	}
	before := behaviours(t, res, inputs)
	ps := append([]Pass{SkipWindowHarden{}}, PostHardenCleanup()...)
	if err := Run(res.Module, ps...); err != nil {
		t.Fatal(err)
	}
	sameBehaviour(t, "skip-window loop", before, behaviours(t, res, inputs))
}
