// Package passes contains the IR transformation passes of the Hybrid
// pipeline:
//
//   - BranchHarden — the paper's conditional branch hardening
//     countermeasure (§V-B, Algorithm 1, Fig. 5);
//   - DuplicateAll — the blanket instruction-duplication baseline the
//     paper prices at >= 300% (§V-C);
//   - SkipWindowHarden — the order-2 countermeasure (beyond the
//     paper): duplicate computations spaced beyond the widest skip
//     window, per-block step counters, and two-stage chained
//     validation, so neither a sustained glitch nor a pair of
//     instruction skips removes a computation with its check;
//   - supporting cleanups (cell propagation, local constant folding,
//     dead flag elimination) that keep the lift→lower round trip's
//     code growth honest.
package passes

import (
	"fmt"

	"github.com/r2r/reinforce/internal/ir"
)

// Pass is a named module transformation.
type Pass interface {
	Name() string
	Run(m *ir.Module) error
}

// Run applies passes in order, verifying the module after each.
func Run(m *ir.Module, ps ...Pass) error {
	for _, p := range ps {
		if err := p.Run(m); err != nil {
			return fmt.Errorf("passes: %s: %w", p.Name(), err)
		}
		if err := ir.Verify(m); err != nil {
			return fmt.Errorf("passes: %s broke the module: %w", p.Name(), err)
		}
	}
	return nil
}

// CleanupPipeline returns the standard optimization sequence run on a
// freshly lifted module, BEFORE any countermeasure pass (CellProp would
// collapse a countermeasure's duplicated computations — see its doc).
func CleanupPipeline() []Pass {
	return []Pass{CellProp{}, LocalOpt{}, FlagDCE{}}
}

// PostHardenCleanup returns the countermeasure-safe cleanup run after
// hardening passes: no forwarding, only constant folding and dead flag
// elimination (which cannot touch the live checksum cells or the
// duplicated reads feeding the re-evaluated branch).
func PostHardenCleanup() []Pass {
	return []Pass{LocalOpt{}, FlagDCE{}}
}
