package passes

import (
	"github.com/r2r/reinforce/internal/ir"
)

// FlagDCE removes cell writes whose value is never observed, plus the
// pure instructions that only fed them. The lifter materializes all six
// arithmetic flags after every ALU instruction; almost all of those
// writes are dead (the next ALU instruction overwrites them before any
// branch reads them), and deleting them is what keeps the Hybrid
// pipeline's code-size overhead in the same regime the paper reports.
//
// The analysis is a standard backward liveness over cells with
// conservative boundaries: Ret and Call treat every cell as live;
// Syscall reads the argument cells and writes rax/rcx/r11; Halt and
// FaultResp end the program, so nothing is live past them.
type FlagDCE struct{}

// Name implements Pass.
func (FlagDCE) Name() string { return "flagdce" }

// syscallReads are the cells the syscall intrinsic may consume.
var syscallReads = []string{"rax", "rdi", "rsi", "rdx", "r10", "r8", "r9"}

// syscallWrites are the cells the syscall intrinsic overwrites.
var syscallWrites = []string{"rax", "rcx", "r11"}

// Run implements Pass.
func (FlagDCE) Run(m *ir.Module) error {
	for _, f := range m.Funcs {
		runFlagDCEFunc(m, f)
	}
	return nil
}

type cellSet map[string]bool

func (s cellSet) clone() cellSet {
	c := make(cellSet, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func (s cellSet) addAll(m *ir.Module) {
	for _, c := range m.Cells {
		s[c.Name] = true
	}
}

func runFlagDCEFunc(m *ir.Module, f *ir.Function) {
	// Per-block gen/kill.
	gen := make(map[*ir.Block]cellSet)
	kill := make(map[*ir.Block]cellSet)
	for _, b := range f.Blocks {
		g, k := cellSet{}, cellSet{}
		for _, in := range b.Insts {
			switch in.Op {
			case ir.OpCellRead:
				if !k[in.Cell] {
					g[in.Cell] = true
				}
			case ir.OpCellWrite:
				k[in.Cell] = true
			case ir.OpCall, ir.OpRet:
				g.addAll(m) // conservative: everything may be read
			case ir.OpSyscall:
				for _, c := range syscallReads {
					if !k[c] {
						g[c] = true
					}
				}
				for _, c := range syscallWrites {
					k[c] = true
				}
			}
		}
		gen[b] = g
		kill[b] = k
	}

	// Backward dataflow to fixpoint.
	liveIn := make(map[*ir.Block]cellSet)
	liveOut := make(map[*ir.Block]cellSet)
	for _, b := range f.Blocks {
		liveIn[b] = cellSet{}
		liveOut[b] = cellSet{}
	}
	succs := func(b *ir.Block) []*ir.Block {
		t := b.Terminator()
		if t == nil {
			return nil
		}
		switch t.Op {
		case ir.OpBr:
			return []*ir.Block{t.Then, t.Else}
		case ir.OpJmp:
			return []*ir.Block{t.Then}
		}
		return nil
	}
	changed := true
	for changed {
		changed = false
		for i := len(f.Blocks) - 1; i >= 0; i-- {
			b := f.Blocks[i]
			out := cellSet{}
			for _, s := range succs(b) {
				for c := range liveIn[s] {
					out[c] = true
				}
			}
			in := gen[b].clone()
			for c := range out {
				if !kill[b][c] {
					in[c] = true
				}
			}
			if len(out) != len(liveOut[b]) || len(in) != len(liveIn[b]) {
				changed = true
			}
			liveOut[b] = out
			liveIn[b] = in
		}
	}

	// Remove dead cell writes walking each block backward.
	for _, b := range f.Blocks {
		live := liveOut[b].clone()
		dead := make(map[*ir.Instr]bool)
		for i := len(b.Insts) - 1; i >= 0; i-- {
			in := b.Insts[i]
			switch in.Op {
			case ir.OpCellWrite:
				if !live[in.Cell] {
					dead[in] = true
					continue
				}
				delete(live, in.Cell)
			case ir.OpCellRead:
				live[in.Cell] = true
			case ir.OpCall, ir.OpRet:
				live.addAll(m)
			case ir.OpSyscall:
				for _, c := range syscallWrites {
					delete(live, c)
				}
				for _, c := range syscallReads {
					live[c] = true
				}
			}
		}
		if len(dead) > 0 {
			removeInsts(b, dead)
		}
		// Sweep pure instructions that lost all users.
		sweepDeadValues(b)
	}
}

// removeInsts drops the marked instructions from a block.
func removeInsts(b *ir.Block, dead map[*ir.Instr]bool) {
	out := b.Insts[:0]
	for _, in := range b.Insts {
		if !dead[in] {
			out = append(out, in)
		}
	}
	b.Insts = out
}

// pure reports whether an instruction has no side effects (so it is
// removable when unused). Loads are pure in this memory model.
func pure(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpBin, ir.OpICmp, ir.OpZExt, ir.OpSExt, ir.OpTrunc,
		ir.OpSelect, ir.OpCellRead, ir.OpLoad:
		return true
	}
	return false
}

// sweepDeadValues removes unused pure instructions in a block
// (single backward sweep suffices because uses are block-local and
// forward-only).
func sweepDeadValues(b *ir.Block) {
	used := make(map[*ir.Instr]bool)
	for i := len(b.Insts) - 1; i >= 0; i-- {
		in := b.Insts[i]
		if pure(in) && !used[in] {
			continue // dead; do not mark its args
		}
		for _, a := range in.Args {
			if ai, ok := a.(*ir.Instr); ok {
				used[ai] = true
			}
		}
	}
	out := b.Insts[:0]
	for _, in := range b.Insts {
		if pure(in) && !used[in] {
			continue
		}
		out = append(out, in)
	}
	b.Insts = out
}
