package passes

import (
	"strings"
	"testing"

	"github.com/r2r/reinforce/internal/asm"
	"github.com/r2r/reinforce/internal/ir"
	"github.com/r2r/reinforce/internal/lift"
)

const pincheckSrc = `
.text
_start:
	mov rax, 0
	mov rdi, 0
	lea rsi, [rip+buf]
	mov rdx, 8
	syscall
	mov rax, [rip+buf]
	mov rbx, [rip+pin]
	cmp rax, rbx
	jne deny
grant:
	mov rax, 1
	mov rdi, 1
	lea rsi, [rip+ok]
	mov rdx, 8
	syscall
	mov rax, 60
	mov rdi, 0
	syscall
deny:
	mov rax, 1
	mov rdi, 1
	lea rsi, [rip+no]
	mov rdx, 7
	syscall
	mov rax, 60
	mov rdi, 1
	syscall
.rodata
pin: .ascii "1234ABCD"
ok:  .ascii "GRANTED\n"
no:  .ascii "DENIED\n"
.bss
buf: .zero 8
`

func liftSrc(t *testing.T, src string) *lift.Result {
	t.Helper()
	bin, err := asm.Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := lift.Lift(bin)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// behaviours runs the module on the listed inputs.
func behaviours(t *testing.T, res *lift.Result, inputs [][]byte) []ir.ExecResult {
	t.Helper()
	out := make([]ir.ExecResult, len(inputs))
	for i, in := range inputs {
		r, err := ir.Exec(res.Module, ir.ExecConfig{Stdin: in, Sections: res.Data})
		if err != nil {
			t.Fatalf("input %q: %v", in, err)
		}
		out[i] = r
	}
	return out
}

var pinInputs = [][]byte{
	[]byte("1234ABCD"), []byte("00000000"), []byte(""), []byte("1234ABCX"),
}

func sameBehaviour(t *testing.T, label string, a, b []ir.ExecResult) {
	t.Helper()
	for i := range a {
		if a[i].ExitCode != b[i].ExitCode || string(a[i].Stdout) != string(b[i].Stdout) {
			t.Errorf("%s: input %d diverged: (%q,%d) vs (%q,%d)",
				label, i, a[i].Stdout, a[i].ExitCode, b[i].Stdout, b[i].ExitCode)
		}
	}
}

func TestFlagDCEShrinksAndPreserves(t *testing.T) {
	res := liftSrc(t, pincheckSrc)
	before := behaviours(t, res, pinInputs)
	nBefore := res.Module.NumInsts()

	if err := Run(res.Module, FlagDCE{}); err != nil {
		t.Fatal(err)
	}
	nAfter := res.Module.NumInsts()
	if nAfter >= nBefore {
		t.Errorf("FlagDCE did not shrink: %d -> %d", nBefore, nAfter)
	}
	// Most flag computation is dead in straight-line code; expect a
	// large cut.
	if float64(nAfter) > 0.7*float64(nBefore) {
		t.Errorf("FlagDCE only cut %d -> %d; expected more", nBefore, nAfter)
	}
	after := behaviours(t, res, pinInputs)
	sameBehaviour(t, "flagdce", before, after)
}

func TestFlagDCEKeepsLiveFlags(t *testing.T) {
	// The cmp feeding jne must keep its zf write.
	res := liftSrc(t, pincheckSrc)
	if err := Run(res.Module, FlagDCE{}); err != nil {
		t.Fatal(err)
	}
	s := res.Module.String()
	if !strings.Contains(s, "cellwrite @zf") {
		t.Error("zf write eliminated but jne reads it")
	}
	if !strings.Contains(s, "cellread i1 @zf") {
		t.Error("zf read missing")
	}
}

func TestFlagDCEAcrossBlocks(t *testing.T) {
	// Flags set in one block, consumed after an unconditional jump in
	// another: liveness must keep them.
	src := `
.text
_start:
	mov rax, 0
	mov rdi, 0
	lea rsi, [rip+buf]
	mov rdx, 1
	syscall
	movzx rax, byte ptr [rip+buf]
	cmp rax, 5
	jmp check
check:
	jne differ
	mov rdi, 10
	mov rax, 60
	syscall
differ:
	mov rdi, 20
	mov rax, 60
	syscall
.bss
buf: .zero 1
`
	res := liftSrc(t, src)
	before := behaviours(t, res, [][]byte{{5}, {6}})
	if err := Run(res.Module, FlagDCE{}); err != nil {
		t.Fatal(err)
	}
	after := behaviours(t, res, [][]byte{{5}, {6}})
	sameBehaviour(t, "cross-block flags", before, after)
	if before[0].ExitCode != 10 || before[1].ExitCode != 20 {
		t.Fatalf("baseline behaviour wrong: %+v", before)
	}
}

func TestLocalOptFolds(t *testing.T) {
	m := ir.NewModule("fold")
	m.EnsureCell("rax", ir.I64)
	m.EnsureCell("rdi", ir.I64)
	f := m.NewFunc("_start")
	m.EntryFunc = "_start"
	blk := f.NewBlock("entry")
	b := ir.NewBuilder(blk)
	v := b.Add(ir.C64(40), ir.C64(2)) // fold -> 42
	w := b.Xor(v, ir.C64(0))          // identity -> 42
	x := b.Mul(w, ir.C64(1))          // identity -> 42
	y := b.Select(ir.C1(true), x, ir.C64(7))
	b.CellWrite("rdi", y)
	b.CellWrite("rax", ir.C64(60))
	b.Syscall()
	b.Ret()
	if err := Run(m, LocalOpt{}); err != nil {
		t.Fatal(err)
	}
	// All the arithmetic should be folded away.
	mix := m.InstMix()
	if mix["add"]+mix["xor"]+mix["mul"]+mix["select"] != 0 {
		t.Errorf("folds missed: %v\n%s", mix, m)
	}
	r, err := ir.Exec(m, ir.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if r.ExitCode != 42 {
		t.Errorf("exit = %d, want 42", r.ExitCode)
	}
}

func TestLocalOptPreservesBehaviour(t *testing.T) {
	res := liftSrc(t, pincheckSrc)
	before := behaviours(t, res, pinInputs)
	if err := Run(res.Module, LocalOpt{}); err != nil {
		t.Fatal(err)
	}
	after := behaviours(t, res, pinInputs)
	sameBehaviour(t, "localopt", before, after)
}

func TestCleanupPipeline(t *testing.T) {
	res := liftSrc(t, pincheckSrc)
	before := behaviours(t, res, pinInputs)
	n0 := res.Module.NumInsts()
	if err := Run(res.Module, CleanupPipeline()...); err != nil {
		t.Fatal(err)
	}
	if res.Module.NumInsts() >= n0 {
		t.Error("cleanup pipeline did not shrink module")
	}
	sameBehaviour(t, "cleanup", before, behaviours(t, res, pinInputs))
}

func TestBranchHardenStructure(t *testing.T) {
	res := liftSrc(t, pincheckSrc)
	f := res.Module.Func("_start")
	blocksBefore := len(f.Blocks)

	var stats HardenStats
	if err := Run(res.Module, BranchHarden{Stats: &stats}); err != nil {
		t.Fatal(err)
	}
	if stats.BranchesProtected != 1 {
		t.Fatalf("protected %d branches, want 1", stats.BranchesProtected)
	}
	// Fig. 5: two validation blocks per edge plus a fault-response per
	// edge = 6 new blocks for one branch.
	if got := len(f.Blocks) - blocksBefore; got != 6 {
		t.Errorf("blocks added = %d, want 6", got)
	}
	// Checksum cells registered.
	if _, ok := res.Module.CellType(CellD1); !ok {
		t.Error("chk.d1 cell missing")
	}
	// UIDs assigned and unique on the original (pre-pass) blocks; the
	// inserted validation blocks carry no UID.
	seen := map[uint64]bool{}
	withUID := 0
	for _, b := range f.Blocks {
		if b.UID == 0 {
			continue
		}
		withUID++
		if seen[b.UID] {
			t.Errorf("duplicate UID %#x", b.UID)
		}
		seen[b.UID] = true
	}
	if withUID != blocksBefore {
		t.Errorf("blocks with UIDs = %d, want %d (the original blocks)", withUID, blocksBefore)
	}
	s := res.Module.String()
	for _, want := range []string{"cellwrite @chk.d1", "cellwrite @chk.d2", "faultresp", "cellread i64 @chk.d1"} {
		if !strings.Contains(s, want) {
			t.Errorf("module missing %q", want)
		}
	}
}

func TestBranchHardenPreservesBehaviour(t *testing.T) {
	res := liftSrc(t, pincheckSrc)
	before := behaviours(t, res, pinInputs)
	if err := Run(res.Module, BranchHarden{}); err != nil {
		t.Fatal(err)
	}
	after := behaviours(t, res, pinInputs)
	sameBehaviour(t, "branch-harden", before, after)
	// No fault-response fired in a clean run.
	for _, r := range after {
		if r.Faulted {
			t.Error("fault response fired without a fault")
		}
	}
}

func TestBranchHardenDuplicatesComparison(t *testing.T) {
	res := liftSrc(t, pincheckSrc)
	mixBefore := res.Module.InstMix()
	if err := Run(res.Module, BranchHarden{}); err != nil {
		t.Fatal(err)
	}
	mixAfter := res.Module.InstMix()
	// Algorithm 1 adds 2 zext, 2 sub (mask), 2 xor (not), 4 and, 2 or
	// per protected branch, plus the cloned comparison slice.
	if d := mixAfter["zext"] - mixBefore["zext"]; d < 2 {
		t.Errorf("zext delta = %d, want >= 2", d)
	}
	if d := mixAfter["and"] - mixBefore["and"]; d < 4 {
		t.Errorf("and delta = %d, want >= 4", d)
	}
	if d := mixAfter["icmp"] - mixBefore["icmp"]; d < 4 {
		t.Errorf("icmp delta = %d, want >= 4 (2 validations x 2 stages)", d)
	}
	if d := mixAfter["cellread"] - mixBefore["cellread"]; d < 4 {
		t.Errorf("cellread delta = %d: comparison not re-executed + validations", d)
	}
}

// TestBranchHardenDetectsCorruption simulates the fault the scheme is
// designed for: the stored checksum (D1) is corrupted between
// computation and validation; the run must end in the fault response.
func TestBranchHardenDetectsCorruption(t *testing.T) {
	res := liftSrc(t, pincheckSrc)
	if err := Run(res.Module, BranchHarden{}); err != nil {
		t.Fatal(err)
	}
	// Inject: flip chk.d1 right after it is written (simulating a
	// register fault between D1 and its validation).
	f := res.Module.Func("_start")
	for _, b := range f.Blocks {
		for i, in := range b.Insts {
			if in.Op == ir.OpCellWrite && in.Cell == CellD1 {
				// Build: read d1; xor 1<<17; write back.
				rd := &ir.Instr{Op: ir.OpCellRead, Ty: ir.I64, Cell: CellD1}
				fl := &ir.Instr{Op: ir.OpBin, Ty: ir.I64, Bin: ir.Xor, Args: []ir.Value{rd, ir.C64(1 << 17)}}
				wr := &ir.Instr{Op: ir.OpCellWrite, Ty: ir.Void, Cell: CellD1, Args: []ir.Value{fl}}
				ir.InsertBefore(b, i+1, []*ir.Instr{rd, fl, wr})
				goto injected
			}
		}
	}
injected:
	if err := ir.Verify(res.Module); err != nil {
		t.Fatal(err)
	}
	r, err := ir.Exec(res.Module, ir.ExecConfig{Stdin: []byte("00000000"), Sections: res.Data})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Faulted || r.ExitCode != 42 {
		t.Errorf("corrupted checksum not detected: %+v", r)
	}
}

func TestBranchHardenChecksumKinds(t *testing.T) {
	for _, kind := range []ChecksumKind{ChecksumXOR, ChecksumAddRot} {
		res := liftSrc(t, pincheckSrc)
		before := behaviours(t, res, pinInputs)
		if err := Run(res.Module, BranchHarden{Checksum: kind}); err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
		sameBehaviour(t, "checksum kind", before, behaviours(t, res, pinInputs))
	}
}

func TestBranchHardenThenCleanup(t *testing.T) {
	// The full Hybrid IR pipeline: harden, then clean.
	res := liftSrc(t, pincheckSrc)
	before := behaviours(t, res, pinInputs)
	ps := append([]Pass{BranchHarden{}}, PostHardenCleanup()...)
	if err := Run(res.Module, ps...); err != nil {
		t.Fatal(err)
	}
	sameBehaviour(t, "harden+cleanup", before, behaviours(t, res, pinInputs))
	// The protection must survive the cleanup.
	s := res.Module.String()
	if !strings.Contains(s, "faultresp") || !strings.Contains(s, "@chk.d1") {
		t.Error("cleanup removed the countermeasure")
	}
}

func TestHardenLoopedProgram(t *testing.T) {
	src := `
.text
_start:
	mov rax, 0
	mov rdi, 0
	lea rsi, [rip+buf]
	mov rdx, 8
	syscall
	xor rax, rax
	mov rcx, 8
	lea rbx, [rip+buf]
sum:
	movzx rdx, byte ptr [rbx]
	add rax, rdx
	inc rbx
	dec rcx
	jne sum
	cmp rax, 520
	jne deny
	mov rdi, 0
	mov rax, 60
	syscall
deny:
	mov rdi, 1
	mov rax, 60
	syscall
.bss
buf: .zero 8
`
	res := liftSrc(t, src)
	inputs := [][]byte{
		{65, 65, 65, 65, 65, 65, 65, 65}, // sums to 520
		{1, 2, 3, 4, 5, 6, 7, 8},
	}
	before := behaviours(t, res, inputs)
	if before[0].ExitCode != 0 || before[1].ExitCode != 1 {
		t.Fatalf("baseline wrong: %+v", before)
	}
	var stats HardenStats
	ps := append([]Pass{BranchHarden{Stats: &stats}}, PostHardenCleanup()...)
	if err := Run(res.Module, ps...); err != nil {
		t.Fatal(err)
	}
	if stats.BranchesProtected != 2 {
		t.Errorf("protected %d branches, want 2 (loop + pin compare)", stats.BranchesProtected)
	}
	sameBehaviour(t, "looped", before, behaviours(t, res, inputs))
}
