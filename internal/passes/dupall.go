package passes

import (
	"fmt"

	"github.com/r2r/reinforce/internal/ir"
)

// DuplicateAll is the IR-level formulation of the paper's blanket
// duplication baseline (§V-C: "duplicating every instruction, which is
// the go-to protection scheme against fault injection"): every
// computational instruction is executed twice, the results are compared,
// and a per-block conjunction of the comparisons gates entry into the
// block's successor — mismatch diverts to a fault-response block.
//
// This is the scheme the conditional branch hardening pass is measured
// against on the Hybrid substrate; both run through the same lift,
// cleanup and lowering stages, so their overheads compare the
// countermeasures rather than the rewriter.
type DuplicateAll struct {
	// Stats is filled during Run when non-nil.
	Stats *DupAllStats
}

// DupAllStats reports what the pass did.
type DupAllStats struct {
	Duplicated int // instructions executed twice
	Checks     int // per-block validations inserted
}

// Name implements Pass.
func (DuplicateAll) Name() string { return "duplicate-all" }

// duplicable reports whether re-executing the instruction is safe and
// meaningful: pure computations, register-cell reads, and memory loads
// (duplicate reads are the paper's own redundancy mechanism — each
// machine instruction's duplication re-reads its register and memory
// operands).
func duplicable(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpBin, ir.OpICmp, ir.OpZExt, ir.OpSExt, ir.OpTrunc, ir.OpSelect,
		ir.OpLoad, ir.OpCellRead:
		return in.Ty != ir.Void
	}
	return false
}

// Run implements Pass.
func (p DuplicateAll) Run(m *ir.Module) error {
	stats := p.Stats
	if stats == nil {
		stats = &DupAllStats{}
	}
	seq := 0
	for _, f := range m.Funcs {
		original := append([]*ir.Block{}, f.Blocks...)
		for _, b := range original {
			seq++
			if err := dupBlock(f, b, stats, seq); err != nil {
				return err
			}
		}
	}
	return nil
}

func dupBlock(f *ir.Function, b *ir.Block, stats *DupAllStats, seq int) error {
	term := b.Terminator()
	if term == nil {
		return fmt.Errorf("duplicate-all: unterminated block %s", b.Name)
	}

	// Duplicate each computational instruction in place and fold the
	// agreement bits into one conjunction.
	var newInsts []*ir.Instr
	var okChain *ir.Instr
	for _, in := range b.Insts[:len(b.Insts)-1] {
		newInsts = append(newInsts, in)
		if !duplicable(in) {
			continue
		}
		clone := &ir.Instr{Op: in.Op, Ty: in.Ty, Bin: in.Bin, Pred: in.Pred, Cell: in.Cell,
			Args: append([]ir.Value{}, in.Args...)}
		agree := &ir.Instr{Op: ir.OpICmp, Ty: ir.I1, Pred: ir.EQ, Args: []ir.Value{in, clone}}
		newInsts = append(newInsts, clone, agree)
		if okChain == nil {
			okChain = agree
		} else {
			okChain = &ir.Instr{Op: ir.OpBin, Ty: ir.I1, Bin: ir.And, Args: []ir.Value{okChain, agree}}
			newInsts = append(newInsts, okChain)
		}
		stats.Duplicated++
	}
	if okChain == nil {
		return nil // nothing to protect in this block
	}

	// Split: the terminator moves into a continuation block reached
	// only when every duplicated computation agreed. A conditional
	// terminator's block-local condition travels through a dedicated
	// cell (values may not cross block boundaries).
	cont := f.NewBlock(fmt.Sprintf("%s_dup_ok_%d", b.Name, seq))
	if term.Op == ir.OpBr {
		if cond, ok := term.Args[0].(*ir.Instr); ok {
			cell := f.Module().EnsureCell(dupCondCell, ir.I1)
			carry := &ir.Instr{Op: ir.OpCellWrite, Ty: ir.Void, Cell: cell.Name, Args: []ir.Value{cond}}
			newInsts = append(newInsts, carry)
			reread := &ir.Instr{Op: ir.OpCellRead, Ty: ir.I1, Cell: cell.Name}
			term.Args[0] = reread
			cont.Insts = append(cont.Insts, reread)
		}
	}
	cont.Insts = append(cont.Insts, term)
	flt := f.NewBlock(fmt.Sprintf("%s_dup_flt_%d", b.Name, seq))
	ir.NewBuilder(flt).FaultResp()
	placeAfter(f, b, []*ir.Block{cont, flt})

	check := &ir.Instr{Op: ir.OpBr, Ty: ir.Void, Args: []ir.Value{okChain}, Then: cont, Else: flt}
	newInsts = append(newInsts, check)
	b.Insts = newInsts
	renumber(f, b)
	renumber(f, cont)
	stats.Checks++
	return nil
}

// dupCondCell carries branch conditions across the per-block check.
const dupCondCell = "dup.cond"

// renumber reassigns ids to instructions missing one (inserted raw).
func renumber(f *ir.Function, b *ir.Block) {
	ir.Renumber(f, b)
}
