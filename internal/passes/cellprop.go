package passes

import (
	"github.com/r2r/reinforce/internal/ir"
)

// CellProp forwards cell stores to block-local loads: a CellRead whose
// cell was written earlier in the same block (with no intervening call)
// is replaced by the written value. Combined with FlagDCE this turns the
// lifted flag traffic into direct dataflow — in particular, a lifted
// cmp+jcc pair becomes an icmp feeding a br, which the lowering then
// fuses into a machine cmp+jcc.
//
// SECURITY NOTE: this pass must run BEFORE BranchHarden, never after.
// The hardening countermeasure's strength comes from physically
// duplicated reads and checksum computations; forwarding would collapse
// C2 onto C1 and remove exactly the redundancy the countermeasure
// depends on (the paper's §IV-C3 remark that back-end steps must keep
// countermeasures "retained unchanged" is this hazard).
type CellProp struct{}

// Name implements Pass.
func (CellProp) Name() string { return "cellprop" }

// Run implements Pass.
func (CellProp) Run(m *ir.Module) error {
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			propBlock(b)
			sweepDeadValues(b)
		}
	}
	return nil
}

func propBlock(b *ir.Block) {
	lastVal := make(map[string]ir.Value)
	repl := make(map[*ir.Instr]ir.Value)
	resolve := func(v ir.Value) ir.Value {
		for {
			in, ok := v.(*ir.Instr)
			if !ok {
				return v
			}
			r, ok := repl[in]
			if !ok {
				return v
			}
			v = r
		}
	}

	for _, in := range b.Insts {
		for i, a := range in.Args {
			in.Args[i] = resolve(a)
		}
		switch in.Op {
		case ir.OpCellRead:
			if v, ok := lastVal[in.Cell]; ok {
				repl[in] = v
			}
		case ir.OpCellWrite:
			lastVal[in.Cell] = in.Args[0]
		case ir.OpCall:
			lastVal = make(map[string]ir.Value)
		case ir.OpSyscall:
			for _, c := range syscallWrites {
				delete(lastVal, c)
			}
		}
	}
}
