package passes

import (
	"fmt"

	"github.com/r2r/reinforce/internal/ir"
)

// Checksum cells used by the branch hardening countermeasure.
const (
	CellD1 = "chk.d1"
	CellD2 = "chk.d2"
)

// ChecksumKind selects the edge-checksum function h (paper §V-B: "The
// simplicity level of the h function can be decided based on the
// required security properties").
type ChecksumKind uint8

// Checksum functions.
const (
	// ChecksumXOR is the paper's example: h = UIDdst ^ UIDsrc.
	ChecksumXOR ChecksumKind = iota
	// ChecksumAddRot mixes harder: h = rotl(UIDsrc,13) + UIDdst
	// (ablation target; same runtime cost profile).
	ChecksumAddRot
)

func (k ChecksumKind) combine(src, dst uint64) uint64 {
	switch k {
	case ChecksumAddRot:
		return (src<<13 | src>>(64-13)) + dst
	default:
		return dst ^ src
	}
}

// BranchHarden implements the paper's conditional branch hardening
// (§V-B, Algorithm 1, Fig. 5):
//
//   - every basic block gets a compile-time unique ID;
//   - before each protected conditional branch, the edge checksum
//     h(UIDsrc, UIDdst, cmp_res) is computed twice (D1, D2) from the
//     comparison result C1, using the branchless mask construction of
//     Algorithm 1, and stored in dedicated cells;
//   - the comparison is re-evaluated (C2) by cloning its computation
//     (re-reading its inputs — redundancy through duplicate reads), and
//     the branch dispatches on C2;
//   - each outgoing edge gets a two-stage validation chain (Fig. 5's
//     BB2_1/BB2_2) checking D1 then D2 against the edge's expected
//     constant, diverting to a fault-response block on mismatch.
//
// A fault that skips or inverts one comparison evaluation makes C2
// disagree with the checksum derived from C1 and is caught; defeating
// the scheme requires injecting the identical fault into both
// evaluations (paper §V-B).
type BranchHarden struct {
	Checksum ChecksumKind

	// Stats is filled during Run when non-nil.
	Stats *HardenStats
}

// HardenStats reports what the pass did.
type HardenStats struct {
	BranchesProtected int
	BranchesSkipped   int // constant conditions, unclonable slices
	BlocksAdded       int
	ChecksumReuses    int // C2 fell back to C1 (unsafe-to-clone slice)
}

// Name implements Pass.
func (BranchHarden) Name() string { return "branch-harden" }

// Run implements Pass.
func (p BranchHarden) Run(m *ir.Module) error {
	m.EnsureCell(CellD1, ir.I64)
	m.EnsureCell(CellD2, ir.I64)

	stats := p.Stats
	if stats == nil {
		stats = &HardenStats{}
	}

	uid := uint64(0)
	nextUID := func() uint64 {
		uid++
		// Spread the IDs so single bit flips cannot map one valid
		// checksum onto another, but keep them in 31 bits: checksum
		// constants then fit x86-64 imm32 fields and validation costs
		// one instruction less per use. Odd multiplier mod 2^31 keeps
		// the sequence injective.
		v := (uid * 2654435761) & 0x7FFFFFFF
		if v == 0 {
			v = 0x2545F491
		}
		return v
	}
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			if b.UID == 0 {
				b.UID = nextUID()
			}
		}
	}

	seq := 0
	for _, f := range m.Funcs {
		// Snapshot: the pass appends validation blocks while iterating.
		original := append([]*ir.Block{}, f.Blocks...)
		for _, b := range original {
			term := b.Terminator()
			if term == nil || term.Op != ir.OpBr {
				continue
			}
			if _, isConst := term.Args[0].(*ir.Const); isConst {
				stats.BranchesSkipped++
				continue
			}
			seq++
			if err := hardenBranch(f, b, term, p.Checksum, stats, seq); err != nil {
				return err
			}
		}
	}
	return nil
}

// hardenBranch rewrites one conditional branch per Fig. 5.
func hardenBranch(f *ir.Function, src *ir.Block, br *ir.Instr, ck ChecksumKind, stats *HardenStats, seq int) error {
	cond, ok := br.Args[0].(*ir.Instr)
	if !ok {
		return fmt.Errorf("branch-harden: non-instruction condition in %s", src.Name)
	}
	tdst, fdst := br.Then, br.Else
	constT := ck.combine(src.UID, tdst.UID)
	constF := ck.combine(src.UID, fdst.UID)

	// Position of the terminator (last instruction).
	idx := len(src.Insts) - 1

	// Algorithm 1: checksum = (~mask & constT) | (mask & constF),
	// mask = zext(cmp_res) - 1. Emitted twice (D1, D2) from C1.
	var inserted []*ir.Instr
	emitChecksum := func(cell string) {
		ext := &ir.Instr{Op: ir.OpZExt, Ty: ir.I64, Args: []ir.Value{cond}}
		mask := &ir.Instr{Op: ir.OpBin, Ty: ir.I64, Bin: ir.Sub, Args: []ir.Value{ext, ir.C64(1)}}
		notm := &ir.Instr{Op: ir.OpBin, Ty: ir.I64, Bin: ir.Xor, Args: []ir.Value{mask, ir.C64(^uint64(0))}}
		t1 := &ir.Instr{Op: ir.OpBin, Ty: ir.I64, Bin: ir.And, Args: []ir.Value{notm, ir.C64(constT)}}
		t2 := &ir.Instr{Op: ir.OpBin, Ty: ir.I64, Bin: ir.And, Args: []ir.Value{mask, ir.C64(constF)}}
		sum := &ir.Instr{Op: ir.OpBin, Ty: ir.I64, Bin: ir.Or, Args: []ir.Value{t1, t2}}
		wr := &ir.Instr{Op: ir.OpCellWrite, Ty: ir.Void, Cell: cell, Args: []ir.Value{sum}}
		inserted = append(inserted, ext, mask, notm, t1, t2, sum, wr)
	}
	emitChecksum(CellD1)
	emitChecksum(CellD2)

	// C2: clone the comparison's computation (duplicate reads).
	c2Insts, c2Val := cloneSlice(src, cond, idx)
	if c2Val == nil {
		c2Val = cond // unsafe to re-execute; fall back to C1
		stats.ChecksumReuses++
	} else {
		inserted = append(inserted, c2Insts...)
	}
	ir.InsertBefore(src, idx, inserted)

	// Per-edge validation chains.
	mkEdge := func(side string, expect uint64, dst *ir.Block) (v1, v2, flt *ir.Block) {
		flt = f.NewBlock(fmt.Sprintf("flt_resp_%s%d", side, seq))
		ir.NewBuilder(flt).FaultResp()

		v2 = f.NewBlock(fmt.Sprintf("%s_%s2_%d", src.Name, side, seq))
		b2 := ir.NewBuilder(v2)
		d2 := b2.CellRead(CellD2)
		ok2 := b2.ICmp(ir.EQ, d2, ir.C64(expect))
		b2.Br(ok2, dst, flt)

		v1 = f.NewBlock(fmt.Sprintf("%s_%s1_%d", src.Name, side, seq))
		b1 := ir.NewBuilder(v1)
		d1 := b1.CellRead(CellD1)
		ok1 := b1.ICmp(ir.EQ, d1, ir.C64(expect))
		b1.Br(ok1, v2, flt)

		stats.BlocksAdded += 3
		return v1, v2, flt
	}
	t1, t2, fltT := mkEdge("t", constT, tdst)
	f1, f2, fltF := mkEdge("f", constF, fdst)

	// Lay the chains out directly after the source block in
	// fall-through order — the lowering then needs one conditional jump
	// per validation instead of jcc+jmp pairs to end-of-function
	// blocks.
	placeAfter(f, src, []*ir.Block{t1, t2, fltT, f1, f2, fltF})

	// Re-point the branch at the validation chains, on C2.
	br.Args[0] = c2Val
	br.Then = t1
	br.Else = f1
	stats.BranchesProtected++
	return nil
}

// placeAfter moves the given blocks (already in f.Blocks) to sit
// directly after block b, preserving their relative order.
func placeAfter(f *ir.Function, b *ir.Block, blocks []*ir.Block) {
	moving := make(map[*ir.Block]bool, len(blocks))
	for _, blk := range blocks {
		moving[blk] = true
	}
	var out []*ir.Block
	for _, blk := range f.Blocks {
		if moving[blk] {
			continue
		}
		out = append(out, blk)
		if blk == b {
			out = append(out, blocks...)
		}
	}
	f.Blocks = out
}

// cloneSlice duplicates the backward slice of value v inside block b
// (pure ops, cell reads, loads), verifying re-execution at position
// insertAt is safe: no store/call/syscall between a cloned load and the
// insertion point, and no intervening write to a cloned cell. It
// returns the cloned instructions and the clone of v, or (nil, nil)
// when re-execution would be unsound.
func cloneSlice(b *ir.Block, v *ir.Instr, insertAt int) ([]*ir.Instr, ir.Value) {
	pos := make(map[*ir.Instr]int, len(b.Insts))
	for i, in := range b.Insts {
		pos[in] = i
	}
	vPos, ok := pos[v]
	if !ok {
		return nil, nil
	}

	// Collect the slice (DFS), checking clonability.
	slice := map[*ir.Instr]bool{}
	var visit func(in *ir.Instr) bool
	visit = func(in *ir.Instr) bool {
		if slice[in] {
			return true
		}
		if !pure(in) {
			return false
		}
		if _, inBlock := pos[in]; !inBlock {
			return false
		}
		switch in.Op {
		case ir.OpLoad:
			// Memory must be unchanged between the load and insertAt.
			for i := pos[in] + 1; i < insertAt; i++ {
				switch b.Insts[i].Op {
				case ir.OpStore, ir.OpCall, ir.OpSyscall:
					return false
				}
			}
		case ir.OpCellRead:
			// The cell must be unchanged between the read and insertAt.
			for i := pos[in] + 1; i < insertAt; i++ {
				x := b.Insts[i]
				if x.Op == ir.OpCellWrite && x.Cell == in.Cell {
					return false
				}
				if x.Op == ir.OpCall || x.Op == ir.OpSyscall {
					return false
				}
			}
		}
		for _, a := range in.Args {
			if ai, ok := a.(*ir.Instr); ok {
				if !visit(ai) {
					return false
				}
			}
		}
		slice[in] = true
		return true
	}
	if !visit(v) {
		return nil, nil
	}
	_ = vPos

	// Clone in original order, remapping operands.
	cloneOf := make(map[*ir.Instr]*ir.Instr, len(slice))
	var out []*ir.Instr
	for i := 0; i <= vPos; i++ {
		in := b.Insts[i]
		if !slice[in] {
			continue
		}
		c := &ir.Instr{Op: in.Op, Ty: in.Ty, Bin: in.Bin, Pred: in.Pred, Cell: in.Cell}
		c.Args = make([]ir.Value, len(in.Args))
		for ai, a := range in.Args {
			if av, ok := a.(*ir.Instr); ok {
				if mapped, ok := cloneOf[av]; ok {
					c.Args[ai] = mapped
					continue
				}
			}
			c.Args[ai] = a
		}
		cloneOf[in] = c
		out = append(out, c)
	}
	return out, cloneOf[v]
}
