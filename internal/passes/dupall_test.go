package passes

import (
	"strings"
	"testing"

	"github.com/r2r/reinforce/internal/elf"
	"github.com/r2r/reinforce/internal/ir"
)

func TestDuplicateAllStructure(t *testing.T) {
	res := liftSrc(t, pincheckSrc)
	if err := Run(res.Module, CleanupPipeline()...); err != nil {
		t.Fatal(err)
	}
	before := res.Module.NumInsts()

	var stats DupAllStats
	if err := Run(res.Module, DuplicateAll{Stats: &stats}); err != nil {
		t.Fatal(err)
	}
	if stats.Duplicated == 0 || stats.Checks == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	// Duplication at least doubles the computational payload: every
	// duplicated instruction adds a clone and a comparison.
	after := res.Module.NumInsts()
	if after < before+2*stats.Duplicated {
		t.Errorf("insts %d -> %d with %d duplicated: growth too small", before, after, stats.Duplicated)
	}
	s := res.Module.String()
	for _, want := range []string{"_dup_ok_", "_dup_flt_", "faultresp"} {
		if !strings.Contains(s, want) {
			t.Errorf("module missing %q", want)
		}
	}
}

func TestDuplicateAllPreservesBehaviour(t *testing.T) {
	res := liftSrc(t, pincheckSrc)
	if err := Run(res.Module, CleanupPipeline()...); err != nil {
		t.Fatal(err)
	}
	before := behaviours(t, res, pinInputs)
	ps := append([]Pass{DuplicateAll{}}, PostHardenCleanup()...)
	if err := Run(res.Module, ps...); err != nil {
		t.Fatal(err)
	}
	after := behaviours(t, res, pinInputs)
	sameBehaviour(t, "duplicate-all", before, after)
	for _, r := range after {
		if r.Faulted {
			t.Error("fault response fired without a fault")
		}
	}
}

// TestDuplicateAllDetectsDivergence corrupts one clone's input so the
// agreement check must fire.
func TestDuplicateAllDetectsDivergence(t *testing.T) {
	res := liftSrc(t, pincheckSrc)
	if err := Run(res.Module, CleanupPipeline()...); err != nil {
		t.Fatal(err)
	}
	if err := Run(res.Module, DuplicateAll{}); err != nil {
		t.Fatal(err)
	}
	// Find an agreement icmp (its two args are an instruction and its
	// clone) and skew the clone by replacing the comparison with a
	// constant-false — simulating divergent duplicate computations.
	f := res.Module.Func("_start")
	done := false
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			if done || in.Op != ir.OpICmp || in.Pred != ir.EQ || len(in.Args) != 2 {
				continue
			}
			a, aok := in.Args[0].(*ir.Instr)
			c, cok := in.Args[1].(*ir.Instr)
			if aok && cok && a.Op == c.Op && a.Ty == ir.I64 {
				in.Pred = ir.NE // invert agreement: now always "disagree"
				done = true
			}
		}
	}
	if !done {
		t.Skip("no agreement comparison found to corrupt")
	}
	r, err := ir.Exec(res.Module, ir.ExecConfig{Stdin: pinInputs[1], Sections: dataSectionsOf(t)})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Faulted {
		t.Errorf("corrupted duplication not detected: %+v", r)
	}
}

func dataSectionsOf(t *testing.T) []*elf.Section {
	t.Helper()
	res := liftSrc(t, pincheckSrc)
	return res.Data
}
