package passes

import (
	"github.com/r2r/reinforce/internal/ir"
)

// LocalOpt performs block-local constant folding and algebraic
// simplification: instructions whose operands are constants are
// evaluated at compile time, and identities (x+0, x^0, x&-1, x|0,
// select on a constant condition, zext/trunc of constants) collapse.
// Downstream users are rewired to the folded constants; the dead
// originals are swept afterwards.
type LocalOpt struct{}

// Name implements Pass.
func (LocalOpt) Name() string { return "localopt" }

// Run implements Pass.
func (LocalOpt) Run(m *ir.Module) error {
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			foldBlock(b)
			sweepDeadValues(b)
		}
	}
	return nil
}

func foldBlock(b *ir.Block) {
	// Map of replaced instruction -> replacement value.
	repl := make(map[*ir.Instr]ir.Value)
	resolve := func(v ir.Value) ir.Value {
		for {
			in, ok := v.(*ir.Instr)
			if !ok {
				return v
			}
			r, ok := repl[in]
			if !ok {
				return v
			}
			v = r
		}
	}

	for _, in := range b.Insts {
		for i, a := range in.Args {
			in.Args[i] = resolve(a)
		}
		simplifyCmpZero(in)
		if v := fold(in); v != nil {
			repl[in] = v
		}
	}
}

// simplifyCmpZero rewrites `icmp eq/ne (sub a, b), 0` into
// `icmp eq/ne a, b` in place — the dominant pattern left behind by
// lifting cmp's zero-flag computation.
func simplifyCmpZero(in *ir.Instr) {
	if in.Op != ir.OpICmp || (in.Pred != ir.EQ && in.Pred != ir.NE) {
		return
	}
	z, ok := asConst(in.Args[1])
	if !ok || z.Val&z.Ty.Mask() != 0 {
		return
	}
	sub, ok := in.Args[0].(*ir.Instr)
	if !ok || sub.Op != ir.OpBin || sub.Bin != ir.Sub {
		return
	}
	in.Args[0] = sub.Args[0]
	in.Args[1] = sub.Args[1]
}

// asConst extracts a constant operand.
func asConst(v ir.Value) (*ir.Const, bool) {
	c, ok := v.(*ir.Const)
	return c, ok
}

// fold returns a replacement value for the instruction, or nil.
func fold(in *ir.Instr) ir.Value {
	switch in.Op {
	case ir.OpBin:
		a, aok := asConst(in.Args[0])
		x, xok := asConst(in.Args[1])
		if aok && xok {
			return &ir.Const{Ty: in.Ty, Val: ir.EvalBin(in.Bin, in.Ty, a.Val, x.Val)}
		}
		// Identities with a constant on either side.
		if xok {
			switch {
			case x.Val == 0 && (in.Bin == ir.Add || in.Bin == ir.Sub || in.Bin == ir.Or ||
				in.Bin == ir.Xor || in.Bin == ir.Shl || in.Bin == ir.LShr || in.Bin == ir.AShr):
				return in.Args[0]
			case x.Val&in.Ty.Mask() == in.Ty.Mask() && in.Bin == ir.And:
				return in.Args[0]
			case x.Val == 0 && in.Bin == ir.And:
				return &ir.Const{Ty: in.Ty, Val: 0}
			case x.Val == 1 && in.Bin == ir.Mul:
				return in.Args[0]
			}
		}
		if aok {
			switch {
			case a.Val == 0 && (in.Bin == ir.Add || in.Bin == ir.Or || in.Bin == ir.Xor):
				return in.Args[1]
			case a.Val == 0 && in.Bin == ir.And:
				return &ir.Const{Ty: in.Ty, Val: 0}
			case a.Val == 1 && in.Bin == ir.Mul:
				return in.Args[1]
			}
		}
	case ir.OpICmp:
		a, aok := asConst(in.Args[0])
		x, xok := asConst(in.Args[1])
		if aok && xok {
			return ir.C1(ir.EvalICmp(in.Pred, in.Args[0].Type(), a.Val, x.Val))
		}
	case ir.OpZExt:
		if c, ok := asConst(in.Args[0]); ok {
			return &ir.Const{Ty: in.Ty, Val: c.Val & c.Ty.Mask()}
		}
	case ir.OpSExt:
		if c, ok := asConst(in.Args[0]); ok {
			return &ir.Const{Ty: in.Ty, Val: ir.SignExtendValue(c.Val, c.Ty) & in.Ty.Mask()}
		}
	case ir.OpTrunc:
		if c, ok := asConst(in.Args[0]); ok {
			return &ir.Const{Ty: in.Ty, Val: c.Val & in.Ty.Mask()}
		}
	case ir.OpSelect:
		if c, ok := asConst(in.Args[0]); ok {
			if c.Val&1 != 0 {
				return in.Args[1]
			}
			return in.Args[2]
		}
	}
	return nil
}
