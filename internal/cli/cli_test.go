package cli

import (
	"flag"
	"strings"
	"testing"
)

func TestSpecsUniqueAndWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Specs() {
		if s.Name == "" {
			t.Fatal("spec with empty name")
		}
		if seen[s.Name] {
			t.Errorf("duplicate spec %q", s.Name)
		}
		seen[s.Name] = true
		if s.Flags == nil {
			t.Errorf("%s: nil flag constructor", s.Name)
			continue
		}
		fs := s.Flags()
		if fs == nil {
			t.Errorf("%s: constructor returned nil flag set", s.Name)
		}
		if s.MaxArgs >= 0 && s.MinArgs > s.MaxArgs {
			t.Errorf("%s: MinArgs %d > MaxArgs %d", s.Name, s.MinArgs, s.MaxArgs)
		}
	}
	for _, name := range []string{"campaign", "patch", "hybrid", "experiments", "oracle", "verify"} {
		if !seen[name] {
			t.Errorf("spec %q missing", name)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("campaign"); !ok {
		t.Error("campaign not found")
	}
	if _, ok := Lookup("bogus"); ok {
		t.Error("bogus command found")
	}
}

func TestCampaignFlagDefaults(t *testing.T) {
	fs, f := Campaign()
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if f.Order != 1 || f.Model != "both" || f.MaxPairs != 0 || f.JSON || f.CSV || f.Quiet {
		t.Errorf("unexpected defaults: %+v", f)
	}
}

func TestCampaignOrder2Flags(t *testing.T) {
	fs, f := Campaign()
	err := fs.Parse([]string{"-good", "G", "-bad", "B", "-model", "skip",
		"-order", "2", "-max-pairs", "128", "-shard", "0/4", "-json", "-q", "bin.elf"})
	if err != nil {
		t.Fatal(err)
	}
	if f.Order != 2 || f.MaxPairs != 128 || f.Shard != "0/4" || !f.JSON || !f.Quiet {
		t.Errorf("order-2 flags misparsed: %+v", f)
	}
	if fs.NArg() != 1 || fs.Arg(0) != "bin.elf" {
		t.Errorf("positional args misparsed: %v", fs.Args())
	}
}

func TestPatchOrder2Flags(t *testing.T) {
	fs, f := Patch()
	if err := fs.Parse([]string{"-order", "2", "-max-pairs", "64", "-csv", "bin.elf"}); err != nil {
		t.Fatal(err)
	}
	if f.Order != 2 || f.MaxPairs != 64 || !f.CSV {
		t.Errorf("patch order-2 flags misparsed: %+v", f)
	}
}

func TestHybridHardenFlag(t *testing.T) {
	fs, f := Hybrid()
	if err := fs.Parse([]string{"-harden", "order2", "bin.elf"}); err != nil {
		t.Fatal(err)
	}
	if f.Harden != "order2" {
		t.Errorf("harden = %q", f.Harden)
	}
	fs, f = Hybrid()
	if err := fs.Parse([]string{"bin.elf"}); err != nil {
		t.Fatal(err)
	}
	if f.Harden != "branch" {
		t.Errorf("default harden = %q, want branch", f.Harden)
	}
}

func TestEmitFlag(t *testing.T) {
	fs, f := Patch()
	if err := fs.Parse([]string{"-emit", "out.elf", "bin.elf"}); err != nil {
		t.Fatal(err)
	}
	if f.Emit != "out.elf" {
		t.Errorf("patch emit = %q", f.Emit)
	}
	hfs, h := Hybrid()
	if err := hfs.Parse([]string{"-emit", "h.elf", "bin.elf"}); err != nil {
		t.Fatal(err)
	}
	if h.Emit != "h.elf" {
		t.Errorf("hybrid emit = %q", h.Emit)
	}
	hfs, h = Hybrid()
	if err := hfs.Parse([]string{"bin.elf"}); err != nil {
		t.Fatal(err)
	}
	if h.Emit != "" {
		t.Errorf("emit default = %q, want empty (emission is opt-in)", h.Emit)
	}
}

func TestOracleFlagDefaults(t *testing.T) {
	fs, f := Oracle()
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if f.Cases != "all" || f.Harden != "hybrid" || f.N != 64 ||
		f.Variants != 0 || f.Workers != 0 || f.Seed != 1 || f.JSON || f.CSV {
		t.Errorf("unexpected oracle defaults: %+v", f)
	}
}

func TestOracleFlags(t *testing.T) {
	fs, f := Oracle()
	err := fs.Parse([]string{"-cases", "pincheck,bootloader", "-harden", "patch",
		"-n", "128", "-variants", "3", "-workers", "4", "-seed", "99", "-json"})
	if err != nil {
		t.Fatal(err)
	}
	if f.Cases != "pincheck,bootloader" || f.Harden != "patch" || f.N != 128 ||
		f.Variants != 3 || f.Workers != 4 || f.Seed != 99 || !f.JSON {
		t.Errorf("oracle flags misparsed: %+v", f)
	}
	spec, ok := Lookup("oracle")
	if !ok {
		t.Fatal("oracle spec missing")
	}
	// Zero positional args sweeps the catalog; two difference a pair of
	// on-disk binaries.
	if spec.MinArgs != 0 || spec.MaxArgs != 2 {
		t.Errorf("oracle arity = [%d,%d], want [0,2]", spec.MinArgs, spec.MaxArgs)
	}
}

func TestVerifyFlags(t *testing.T) {
	fs, f := Verify()
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if f.Cases != "all" || f.Pipeline != "all" || f.JSON || f.CSV {
		t.Errorf("unexpected verify defaults: %+v", f)
	}
	fs, f = Verify()
	if err := fs.Parse([]string{"-cases", "pincheck", "-pipeline", "order2", "-json"}); err != nil {
		t.Fatal(err)
	}
	if f.Cases != "pincheck" || f.Pipeline != "order2" || !f.JSON {
		t.Errorf("verify flags misparsed: %+v", f)
	}
	spec, ok := Lookup("verify")
	if !ok {
		t.Fatal("verify spec missing")
	}
	// Zero positional args verifies the hardened catalog; one verifies
	// an on-disk binary.
	if spec.MinArgs != 0 || spec.MaxArgs != 1 {
		t.Errorf("verify arity = [%d,%d], want [0,1]", spec.MinArgs, spec.MaxArgs)
	}
}

func TestUnknownFlagIsAnError(t *testing.T) {
	fs, _ := Campaign()
	err := fs.Parse([]string{"-no-such-flag"})
	if err == nil {
		t.Fatal("unknown flag accepted")
	}
	if !strings.Contains(err.Error(), "no-such-flag") {
		t.Errorf("error does not name the flag: %v", err)
	}
	if err == flag.ErrHelp {
		t.Error("unexpected ErrHelp")
	}
}
