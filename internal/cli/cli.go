// Package cli defines the r2r subcommand surface — every command's
// flag set and argument arity — as data. Both the CLI binary
// (cmd/r2r) and the documentation checker (tools/doccheck) consume the
// same definitions, so a flag added, renamed, or removed here is
// validated against every `./r2r …` invocation quoted in README and
// docs by the CI docs job: command-line drift breaks the build instead
// of the documentation.
package cli

import (
	"flag"
	"io"
)

// modelHelp documents the -model syntax once for every command that
// accepts it.
const modelHelp = "comma-separated fault models: skip, bitflip, reg-flip, multi-skip, data-flip, both, all"

// newFS builds a silent flag set: parse errors are returned, not
// printed, so callers control the error surface.
func newFS(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

// AsmFlags are the `r2r asm` flags.
type AsmFlags struct {
	Out string
}

// Asm builds the `r2r asm` flag set.
func Asm() (*flag.FlagSet, *AsmFlags) {
	fs, f := newFS("asm"), &AsmFlags{}
	fs.StringVar(&f.Out, "o", "a.elf", "output path")
	return fs, f
}

// RunFlags are the `r2r run` / `r2r trace` flags.
type RunFlags struct {
	In string
}

// Run builds the `r2r run` flag set.
func Run() (*flag.FlagSet, *RunFlags) {
	fs, f := newFS("run"), &RunFlags{}
	fs.StringVar(&f.In, "in", "", "stdin contents")
	return fs, f
}

// Trace builds the `r2r trace` flag set.
func Trace() (*flag.FlagSet, *RunFlags) {
	fs, f := newFS("trace"), &RunFlags{}
	fs.StringVar(&f.In, "in", "", "stdin contents")
	return fs, f
}

// FaultsFlags are the `r2r faults` flags.
type FaultsFlags struct {
	Good, Bad, Model string
}

// Faults builds the `r2r faults` flag set.
func Faults() (*flag.FlagSet, *FaultsFlags) {
	fs, f := newFS("faults"), &FaultsFlags{}
	fs.StringVar(&f.Good, "good", "", "accepted input")
	fs.StringVar(&f.Bad, "bad", "", "rejected input")
	fs.StringVar(&f.Model, "model", "both", modelHelp)
	return fs, f
}

// cacheDirHelp documents the -cache-dir syntax once for every command
// that accepts it.
const cacheDirHelp = "directory for the content-addressed campaign result cache (reruns over unchanged binaries replay from it)"

// CampaignFlags are the `r2r campaign` flags.
type CampaignFlags struct {
	Good, Bad, Model, Shard string
	CacheDir                string
	CPUProfile, MemProfile  string
	Order, MaxPairs         int
	Workers                 int
	Prune                   bool
	JSON, CSV, Quiet        bool
}

// pruneHelp documents the -prune switch once for every command that
// accepts it.
const pruneHelp = "classify statically decidable and state-equivalent injections without simulating them (results are bit-identical; the summary gains prune accounting columns)"

// Campaign builds the `r2r campaign` flag set.
func Campaign() (*flag.FlagSet, *CampaignFlags) {
	fs, f := newFS("campaign"), &CampaignFlags{}
	fs.StringVar(&f.Good, "good", "", "accepted input")
	fs.StringVar(&f.Bad, "bad", "", "rejected input")
	fs.StringVar(&f.Model, "model", "both", modelHelp)
	fs.IntVar(&f.Order, "order", 1, "fault order: 1 = single faults, 2 = add fault pairs pruned from the order-1 sweep")
	fs.IntVar(&f.MaxPairs, "max-pairs", 0, "order-2 pair budget (default 4096)")
	fs.IntVar(&f.Workers, "workers", 0, "parallel simulations per campaign (default GOMAXPROCS)")
	fs.StringVar(&f.Shard, "shard", "", "simulate only shard i/n of each fault list (e.g. 0/4); with -order 2 the shard applies to the pair list")
	fs.StringVar(&f.CacheDir, "cache-dir", "", cacheDirHelp)
	fs.BoolVar(&f.Prune, "prune", false, pruneHelp)
	fs.BoolVar(&f.JSON, "json", false, "emit JSON summaries on stdout")
	fs.BoolVar(&f.CSV, "csv", false, "emit CSV summaries on stdout")
	fs.BoolVar(&f.Quiet, "q", false, "suppress the stderr progress meter")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", cpuProfileHelp)
	fs.StringVar(&f.MemProfile, "memprofile", "", memProfileHelp)
	return fs, f
}

// cpuProfileHelp and memProfileHelp document the pprof switches once
// for every command that accepts them.
const (
	cpuProfileHelp = "write a CPU profile of the run to this file (inspect with go tool pprof)"
	memProfileHelp = "write an allocation profile taken at exit to this file (inspect with go tool pprof)"
)

// CorpusFlags are the `r2r corpus` flags.
type CorpusFlags struct {
	Cases, Model, CacheDir                 string
	CPUProfile, MemProfile                 string
	Order, MaxPairs, MaxTriples, MaxFaults int
	Workers, ParallelCells                 int
	Dedup, Prune                           bool
	JSON, CSV, Quiet                       bool
}

// Corpus builds the `r2r corpus` flag set.
func Corpus() (*flag.FlagSet, *CorpusFlags) {
	fs, f := newFS("corpus"), &CorpusFlags{}
	fs.StringVar(&f.Cases, "cases", "all", "comma-separated case studies from the registered catalog, or all")
	fs.StringVar(&f.Model, "model", "both", modelHelp)
	fs.IntVar(&f.Order, "order", 2, "maximum fault order: 1 = single-fault sweeps only, 2 = add the fault-pair stage per case (the order-1 sweep is shared through the store), 3 = add the budget-capped pruned fault-triple stage")
	fs.IntVar(&f.MaxPairs, "max-pairs", 0, "order-2 pair budget per case (default 4096)")
	fs.IntVar(&f.MaxTriples, "max-triples", 0, "order-3 triple budget per case (default 2048)")
	fs.IntVar(&f.MaxFaults, "max-faults", 0, "cap injections per campaign (0 = unlimited; the CI smoke budget)")
	fs.IntVar(&f.Workers, "workers", 0, "global simulation worker budget shared by every concurrently running cell (default GOMAXPROCS)")
	fs.IntVar(&f.ParallelCells, "parallel-cells", 1, "case chains executed concurrently on the shared worker pool (1 = sequential; results are bit-identical either way)")
	fs.BoolVar(&f.Dedup, "dedup", true, "fault each static site once instead of every dynamic occurrence (corpus-scale default; -dedup=false is the paper's exhaustive mode)")
	fs.StringVar(&f.CacheDir, "cache-dir", "", cacheDirHelp)
	fs.BoolVar(&f.Prune, "prune", false, pruneHelp)
	fs.BoolVar(&f.JSON, "json", false, "emit JSON summaries (per case plus the corpus aggregate) on stdout")
	fs.BoolVar(&f.CSV, "csv", false, "emit CSV summaries on stdout")
	fs.BoolVar(&f.Quiet, "q", false, "suppress the stderr progress meter")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", cpuProfileHelp)
	fs.StringVar(&f.MemProfile, "memprofile", "", memProfileHelp)
	return fs, f
}

// emitHelp documents the -emit switch once for both hardening
// commands.
const emitHelp = "also write the hardened binary as a standalone program-header-only ELF executable to this path (round-trip-verified through the loader)"

// PatchFlags are the `r2r patch` flags.
type PatchFlags struct {
	Good, Bad, Model, Out string
	Emit                  string
	CacheDir              string
	Order, MaxPairs       int
	JSON, CSV             bool
}

// Patch builds the `r2r patch` flag set.
func Patch() (*flag.FlagSet, *PatchFlags) {
	fs, f := newFS("patch"), &PatchFlags{}
	fs.StringVar(&f.Good, "good", "", "accepted input")
	fs.StringVar(&f.Bad, "bad", "", "rejected input")
	fs.StringVar(&f.Model, "model", "both", modelHelp)
	fs.StringVar(&f.Out, "o", "", "output path (default: input with .hardened suffix)")
	fs.StringVar(&f.Emit, "emit", "", emitHelp)
	fs.IntVar(&f.Order, "order", 1, "hardening order: 1 = single-fault fixed point, 2 = escalate sites of successful fault pairs to order-2 patterns")
	fs.IntVar(&f.MaxPairs, "max-pairs", 0, "order-2 pair budget per escalation round (default 4096)")
	fs.StringVar(&f.CacheDir, "cache-dir", "", cacheDirHelp)
	fs.BoolVar(&f.JSON, "json", false, "emit the iteration history as JSON on stdout")
	fs.BoolVar(&f.CSV, "csv", false, "emit the iteration history as CSV on stdout")
	return fs, f
}

// HybridFlags are the `r2r hybrid` flags.
type HybridFlags struct {
	Out, Harden string
	Emit        string
	DumpAsm     bool
}

// Hybrid builds the `r2r hybrid` flag set.
func Hybrid() (*flag.FlagSet, *HybridFlags) {
	fs, f := newFS("hybrid"), &HybridFlags{}
	fs.StringVar(&f.Out, "o", "", "output path (default: input + .hybrid)")
	fs.StringVar(&f.Harden, "harden", "branch", "countermeasure set: branch (conditional branch hardening) or order2 (branch + skip-window multi-fault hardening)")
	fs.StringVar(&f.Emit, "emit", "", emitHelp)
	fs.BoolVar(&f.DumpAsm, "S", false, "print the generated assembly")
	return fs, f
}

// OracleFlags are the `r2r oracle` flags.
type OracleFlags struct {
	Cases, Harden string
	N, Variants   int
	Workers       int
	Seed          uint64
	JSON, CSV     bool
}

// Oracle builds the `r2r oracle` flag set.
func Oracle() (*flag.FlagSet, *OracleFlags) {
	fs, f := newFS("oracle"), &OracleFlags{}
	fs.StringVar(&f.Cases, "cases", "all", "comma-separated case studies from the registered catalog, or all")
	fs.StringVar(&f.Harden, "harden", "hybrid", "hardening pipeline under test: hybrid, order2 (hybrid + skip window) or patch (Faulter+Patcher)")
	fs.IntVar(&f.N, "n", 64, "generated inputs per differential run")
	fs.IntVar(&f.Variants, "variants", 0, "additionally screen N fuzz-generated variants per case and difference each survivor")
	fs.IntVar(&f.Workers, "workers", 0, "parallel input evaluations (default GOMAXPROCS; results are worker-count invariant)")
	fs.Uint64Var(&f.Seed, "seed", 1, "seed of the deterministic input and variant generators")
	fs.BoolVar(&f.JSON, "json", false, "emit per-case reports as JSON on stdout")
	fs.BoolVar(&f.CSV, "csv", false, "emit per-case reports as CSV on stdout")
	return fs, f
}

// VerifyFlags are the `r2r verify` flags.
type VerifyFlags struct {
	Cases, Pipeline string
	JSON, CSV       bool
}

// Verify builds the `r2r verify` flag set.
func Verify() (*flag.FlagSet, *VerifyFlags) {
	fs, f := newFS("verify"), &VerifyFlags{}
	fs.StringVar(&f.Cases, "cases", "all", "comma-separated case studies from the registered catalog, or all")
	fs.StringVar(&f.Pipeline, "pipeline", "all", "hardening pipelines to verify: hybrid (branch hardening), order2 (branch + skip window), patch (blanket order-2 patterns), or all")
	fs.BoolVar(&f.JSON, "json", false, "emit findings as a JSON array on stdout")
	fs.BoolVar(&f.CSV, "csv", false, "emit findings as CSV on stdout")
	return fs, f
}

// CasesFlags are the `r2r cases` flags.
type CasesFlags struct {
	Dir string
}

// Cases builds the `r2r cases` flag set.
func Cases() (*flag.FlagSet, *CasesFlags) {
	fs, f := newFS("cases"), &CasesFlags{}
	fs.StringVar(&f.Dir, "dir", ".", "output directory")
	return fs, f
}

// CFGFlags are the `r2r cfg` flags.
type CFGFlags struct {
	Harden bool
}

// CFG builds the `r2r cfg` flag set.
func CFG() (*flag.FlagSet, *CFGFlags) {
	fs, f := newFS("cfg"), &CFGFlags{}
	fs.BoolVar(&f.Harden, "harden", false, "apply conditional branch hardening first (figure 5)")
	return fs, f
}

// ExperimentsFlags are the `r2r experiments` flags.
type ExperimentsFlags struct {
	Only string
}

// Experiments builds the `r2r experiments` flag set.
func Experiments() (*flag.FlagSet, *ExperimentsFlags) {
	fs, f := newFS("experiments"), &ExperimentsFlags{}
	fs.StringVar(&f.Only, "only", "", "run a single experiment: table4, table5, skip, bitflip, class, dup, figures, beyond, beyond2, beyond3, corpus, variants")
	return fs, f
}

// Spec describes one subcommand for validation: its flag surface and
// positional-argument arity.
type Spec struct {
	Name    string
	MinArgs int
	MaxArgs int // < 0 means unbounded
	Flags   func() *flag.FlagSet
}

// noFlags builds an empty flag set for flagless commands.
func noFlags(name string) func() *flag.FlagSet {
	return func() *flag.FlagSet { return newFS(name) }
}

// Specs returns every r2r subcommand. The docs checker parses each
// documented invocation against the matching spec.
func Specs() []Spec {
	return []Spec{
		{"asm", 1, 1, func() *flag.FlagSet { fs, _ := Asm(); return fs }},
		{"info", 1, 1, noFlags("info")},
		{"disasm", 1, 1, noFlags("disasm")},
		{"run", 1, 1, func() *flag.FlagSet { fs, _ := Run(); return fs }},
		{"trace", 1, 1, func() *flag.FlagSet { fs, _ := Trace(); return fs }},
		{"lift", 1, 1, noFlags("lift")},
		{"faults", 1, 1, func() *flag.FlagSet { fs, _ := Faults(); return fs }},
		{"campaign", 1, -1, func() *flag.FlagSet { fs, _ := Campaign(); return fs }},
		{"corpus", 0, 0, func() *flag.FlagSet { fs, _ := Corpus(); return fs }},
		{"patch", 1, 1, func() *flag.FlagSet { fs, _ := Patch(); return fs }},
		{"hybrid", 1, 1, func() *flag.FlagSet { fs, _ := Hybrid(); return fs }},
		{"oracle", 0, 2, func() *flag.FlagSet { fs, _ := Oracle(); return fs }},
		{"verify", 0, 1, func() *flag.FlagSet { fs, _ := Verify(); return fs }},
		{"cases", 0, 0, func() *flag.FlagSet { fs, _ := Cases(); return fs }},
		{"cfg", 1, 1, func() *flag.FlagSet { fs, _ := CFG(); return fs }},
		{"experiments", 0, 0, func() *flag.FlagSet { fs, _ := Experiments(); return fs }},
		{"pipeline", 0, 0, noFlags("pipeline")},
		{"help", 0, 0, noFlags("help")},
	}
}

// Lookup resolves a subcommand name.
func Lookup(name string) (Spec, bool) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}
