package static

// Dominator tree over the CFG, via the Cooper–Harvey–Kennedy iterative
// algorithm on a reverse postorder: simple, allocation-light, and fast
// on the modest graphs this toolchain produces. Unreachable blocks get
// no immediate dominator.

// postorder returns the blocks reachable from entry in postorder.
func (g *CFG) postorder() []*Block {
	var order []*Block
	state := make(map[*Block]uint8, len(g.Blocks)) // 0 new, 1 open, 2 done
	type frame struct {
		b *Block
		i int
	}
	if g.Entry == nil {
		return nil
	}
	stack := []frame{{b: g.Entry}}
	state[g.Entry] = 1
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.i < len(f.b.Succs) {
			s := f.b.Succs[f.i]
			f.i++
			if state[s] == 0 {
				state[s] = 1
				stack = append(stack, frame{b: s})
			}
			continue
		}
		state[f.b] = 2
		order = append(order, f.b)
		stack = stack[:len(stack)-1]
	}
	return order
}

// Dominators computes immediate dominators for every reachable block.
// The entry block dominates itself; unreachable blocks keep a nil idom.
func (g *CFG) Dominators() {
	for _, b := range g.Blocks {
		b.idom = nil
	}
	if g.Entry == nil {
		return
	}
	post := g.postorder()
	rpo := make(map[*Block]int, len(post)) // reverse-postorder number
	for i, b := range post {
		rpo[b] = len(post) - 1 - i
	}
	g.Entry.idom = g.Entry

	intersect := func(a, b *Block) *Block {
		for a != b {
			for rpo[a] > rpo[b] {
				a = a.idom
			}
			for rpo[b] > rpo[a] {
				b = b.idom
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		// Reverse postorder: process each block after its forward preds.
		for i := len(post) - 1; i >= 0; i-- {
			b := post[i]
			if b == g.Entry {
				continue
			}
			var idom *Block
			for _, p := range b.Preds {
				if p.idom == nil {
					continue // unreachable or not yet processed
				}
				if idom == nil {
					idom = p
				} else {
					idom = intersect(idom, p)
				}
			}
			if idom != nil && b.idom != idom {
				b.idom = idom
				changed = true
			}
		}
	}
}

// Idom returns the block's immediate dominator (the entry returns
// itself; unreachable blocks return nil).
func (b *Block) Idom() *Block { return b.idom }

// Dominates reports whether b dominates d (reflexively). Both must be
// reachable, else false.
func (b *Block) Dominates(d *Block) bool {
	if b.idom == nil || d.idom == nil {
		return false
	}
	for {
		if d == b {
			return true
		}
		if d.idom == d {
			return false
		}
		d = d.idom
	}
}
