package static

import "github.com/r2r/reinforce/internal/isa"

// LiveSet is a set of dataflow components: bits 0..15 are the sixteen
// general-purpose registers (by hardware number), bit 16 is the
// six-flag arithmetic RFLAGS unit (CF PF AF ZF SF OF). The flags are
// tracked as one unit because every full writer in the ISA (arithmetic,
// logic, popfq) defines all six together; the partial writers (inc/dec
// preserve CF) are modeled as read-modify-write of the unit.
type LiveSet uint32

// Flags is the arithmetic-flags unit bit.
const Flags LiveSet = 1 << 16

// AllRegs has every general-purpose register set.
const AllRegs LiveSet = 1<<isa.NumRegs - 1

// RegBit returns the set containing one register.
func RegBit(r isa.Reg) LiveSet {
	if !r.Valid() {
		return 0
	}
	return 1 << r
}

// Has reports whether the set contains the bit(s).
func (s LiveSet) Has(b LiveSet) bool { return s&b != 0 }

// Effects is the dataflow summary of one instruction, mirroring the
// emulator's execution semantics (emu.Machine.Step and the RFLAGS
// helpers) component by component:
//
//   - Use: registers/flags the instruction reads (including address
//     registers of memory operands and the stack pointer for stack ops);
//   - Kill: components fully overwritten — and only those; a 1-byte
//     register write merges into the low byte and a shift with a zero
//     count leaves the flags untouched, so neither kills;
//   - Write: components written at all, fully or partially (the set the
//     dead-output fault screen must prove dead);
//   - StoresMem: the instruction writes memory (stack pushes included);
//   - Known: the semantics are modeled. Unknown ops are summarized as
//     reading everything and writing nothing, the conservative direction
//     for both liveness and the fault screen.
type Effects struct {
	Use       LiveSet
	Kill      LiveSet
	Write     LiveSet
	StoresMem bool
	Known     bool
}

// operandUse returns the registers an operand's evaluation reads: the
// register itself for register operands, the base and index for memory
// operands (the memory value is not a tracked component).
func operandUse(o isa.Operand) LiveSet {
	switch o.Kind {
	case isa.KindReg:
		return RegBit(o.Reg)
	case isa.KindMem:
		return RegBit(o.Mem.Base) | RegBit(o.Mem.Index)
	}
	return 0
}

// destEffects folds a value write to the destination operand into e,
// applying the emulator's setReg widths: 8-byte writes replace, 4-byte
// writes zero-extend (both full kills), 1-byte writes merge into the
// low byte (read-modify-write, no kill). Memory destinations read their
// address registers and set StoresMem.
func destEffects(e *Effects, o isa.Operand) {
	switch o.Kind {
	case isa.KindReg:
		b := RegBit(o.Reg)
		e.Write |= b
		if o.Width == 1 {
			e.Use |= b
		} else {
			e.Kill |= b
		}
	case isa.KindMem:
		e.Use |= RegBit(o.Mem.Base) | RegBit(o.Mem.Index)
		e.StoresMem = true
	}
}

// rsp is the stack-pointer bit, read and fully rewritten by every
// stack-adjusting instruction.
var rsp = RegBit(isa.RSP)

// EffectsOf computes the dataflow summary of one instruction.
func EffectsOf(in isa.Inst) Effects {
	e := Effects{Known: true}
	switch in.Op {
	case isa.NOP, isa.JMP:
		// no state beyond RIP

	case isa.MOV, isa.MOVZX, isa.MOVSX:
		e.Use |= operandUse(in.Src)
		destEffects(&e, in.Dst)

	case isa.LEA:
		// Address computation only: reads the base/index registers,
		// never memory.
		e.Use |= operandUse(in.Src)
		destEffects(&e, in.Dst)

	case isa.ADD, isa.OR, isa.AND, isa.SUB, isa.XOR:
		e.Use |= operandUse(in.Src) | operandUse(in.Dst)
		destEffects(&e, in.Dst)
		e.Kill |= Flags
		e.Write |= Flags

	case isa.ADC, isa.SBB:
		e.Use |= operandUse(in.Src) | operandUse(in.Dst) | Flags
		destEffects(&e, in.Dst)
		e.Kill |= Flags
		e.Write |= Flags

	case isa.CMP, isa.TEST:
		e.Use |= operandUse(in.Src) | operandUse(in.Dst)
		e.Kill |= Flags
		e.Write |= Flags

	case isa.NOT:
		e.Use |= operandUse(in.Dst)
		destEffects(&e, in.Dst)

	case isa.NEG:
		e.Use |= operandUse(in.Dst)
		destEffects(&e, in.Dst)
		e.Kill |= Flags
		e.Write |= Flags

	case isa.INC, isa.DEC:
		// CF is preserved: a partial write of the flags unit.
		e.Use |= operandUse(in.Dst) | Flags
		destEffects(&e, in.Dst)
		e.Write |= Flags

	case isa.SHL, isa.SHR, isa.SAR:
		// The count is an immediate (masked like hardware); a zero
		// count rewrites the destination with its own value and leaves
		// the flags untouched.
		e.Use |= operandUse(in.Dst)
		destEffects(&e, in.Dst)
		if uint(in.Src.Imm)&0x3F != 0 {
			e.Kill |= Flags
			e.Write |= Flags
		}

	case isa.IMUL:
		e.Use |= operandUse(in.Src) | operandUse(in.Dst)
		destEffects(&e, in.Dst)
		e.Kill |= Flags
		e.Write |= Flags

	case isa.PUSH:
		e.Use |= RegBit(in.Dst.Reg) | rsp
		e.Kill |= rsp
		e.Write |= rsp
		e.StoresMem = true

	case isa.POP:
		// Pops write the full 64-bit register regardless of width.
		e.Use |= rsp
		e.Kill |= RegBit(in.Dst.Reg) | rsp
		e.Write |= RegBit(in.Dst.Reg) | rsp

	case isa.PUSHFQ:
		e.Use |= Flags | rsp
		e.Kill |= rsp
		e.Write |= rsp
		e.StoresMem = true

	case isa.POPFQ:
		e.Use |= rsp
		e.Kill |= Flags | rsp
		e.Write |= Flags | rsp

	case isa.JCC:
		e.Use |= Flags

	case isa.SETCC:
		// Writes one byte: a read-modify-write of the register.
		e.Use |= Flags
		destEffects(&e, in.Dst)

	case isa.CALL:
		e.Use |= rsp
		e.Kill |= rsp
		e.Write |= rsp
		e.StoresMem = true

	case isa.RET:
		// The return continuation is not followed statically, so
		// everything the caller might read must be treated as live.
		e.Use |= AllRegs | Flags
		e.Write |= rsp

	case isa.SYSCALL:
		// read/write/exit ABI: reads the call registers, clobbers
		// RAX (result), RCX (return RIP) and R11 (saved RFLAGS); the
		// read syscall writes memory.
		e.Use |= RegBit(isa.RAX) | RegBit(isa.RDI) | RegBit(isa.RSI) | RegBit(isa.RDX) | Flags
		e.Kill |= RegBit(isa.RAX) | RegBit(isa.RCX) | RegBit(isa.R11)
		e.Write |= e.Kill
		e.StoresMem = true

	case isa.HLT, isa.UD2:
		// Terminal: the run crashes; nothing is read.

	default:
		e.Known = false
		e.Use = AllRegs | Flags
	}
	return e
}
