// Package static is the CFG + dataflow analysis engine over decoded
// programs: basic blocks, dominator tree, liveness and reaching
// definitions over the machine registers and the arithmetic-flags unit,
// plus the countermeasure verifier built on top of them (verify.go,
// verifyir.go, verifybir.go) and the sound fault-window classification
// the campaign pruner consumes (inert.go).
//
// The paper's loop only ever *measures* countermeasure strength by
// exhaustive fault simulation; this package closes the gap Rauzy &
// Guilley's provable-countermeasure line points at: the invariants the
// hardening passes construct (a step-counter cell re-read on every
// fault-response-free exit, clone spacing wider than the largest
// multi-skip window, doubled detection compares) are checked
// structurally, without running a single injection. The same dataflow
// facts yield a static fault pre-screen: instructions whose skip
// provably cannot change the campaign outcome are classified without
// simulation (ARMORY's scaling argument), with soundness enforced by
// the campaign package's pruned-vs-exhaustive differential harness.
//
// All analyses are conservative: they over-approximate reachability and
// liveness, so a "proved" fact (dead output, covered exit) is sound
// while a finding may occasionally be a false alarm on code the decoder
// cannot follow. The toolchain's own binaries are fully decodable with
// direct branches only, where the CFG is exact.
package static

import (
	"fmt"
	"sort"

	"github.com/r2r/reinforce/internal/decode"
	"github.com/r2r/reinforce/internal/elf"
	"github.com/r2r/reinforce/internal/isa"
)

// maxInsts bounds CFG construction so a fuzzed byte soup cannot make
// the worklist decode unbounded overlapping instruction streams.
const maxInsts = 1 << 20

// Program is the instruction-level view of a binary's reachable code:
// every instruction reachable from the entry point by following direct
// control flow, with per-address successor edges.
type Program struct {
	Entry uint64

	// Insts maps each reachable address to its decoded instruction.
	Insts map[uint64]isa.Inst

	// Succs maps each reachable address to its static control-flow
	// successors (branch targets and fall-throughs, in that order).
	Succs map[uint64][]uint64

	// Undecoded records reachable addresses whose bytes do not decode
	// (the emulator crashes there; they are kept as terminal nodes).
	Undecoded map[uint64]error

	// Exits classifies reachable SYSCALL instructions that may
	// terminate the process (see refineExits).
	Exits map[uint64]Exit

	// Order is every reachable address in ascending order.
	Order []uint64
}

// Exit describes a syscall statically classified as a process exit.
// Definite means RAX is a proven exit number (the instruction has no
// fall-through); otherwise RAX could not be resolved and the syscall is
// conservatively treated as a possible exit that may also fall through.
// Code is the exit status (from RDI) when CodeKnown.
type Exit struct {
	Definite  bool
	Code      int64
	CodeKnown bool
}

// Block is one basic block of the CFG.
type Block struct {
	Start uint64   // address of the leader instruction
	Addrs []uint64 // instruction addresses, in layout order
	Succs []*Block
	Preds []*Block

	// Index is the block's position in CFG.Blocks (ascending Start).
	Index int

	idom *Block
}

// End returns the address of the block's last instruction.
func (b *Block) End() uint64 { return b.Addrs[len(b.Addrs)-1] }

// CFG is the basic-block graph over a Program, rooted at the entry.
type CFG struct {
	Prog   *Program
	Entry  *Block
	Blocks []*Block // ascending by Start
	byAddr map[uint64]*Block
}

// BlockAt returns the block whose leader is addr, or nil.
func (g *CFG) BlockAt(addr uint64) *Block { return g.byAddr[addr] }

// Analysis bundles the program, its CFG and dominator tree, and the
// dataflow facts the verifier and the campaign pruner consume.
type Analysis struct {
	Bin  *elf.Binary
	Prog *Program
	CFG  *CFG

	// liveIn maps each reachable instruction address to the registers
	// and flags live immediately before it.
	liveIn map[uint64]LiveSet
}

// Analyze decodes the binary from its entry point, builds the CFG and
// dominator tree, and runs the dataflow analyses. It fails only when
// the entry itself is unmapped; unreachable or undecodable tails are
// recorded, not fatal (the emulator crashes there, which the analyses
// model as terminal nodes).
func Analyze(bin *elf.Binary) (*Analysis, error) {
	prog, err := Explore(bin)
	if err != nil {
		return nil, err
	}
	cfg := BuildCFG(prog)
	cfg.Dominators()
	return &Analysis{
		Bin:    bin,
		Prog:   prog,
		CFG:    cfg,
		liveIn: Liveness(prog),
	}, nil
}

// LiveIn returns the registers and flags live immediately before the
// instruction at addr (zero for unreachable addresses).
func (a *Analysis) LiveIn(addr uint64) LiveSet { return a.liveIn[addr] }

// Explore decodes every instruction reachable from the binary's entry
// point by following static successors: fall-through, direct branch
// targets, and both sides of calls and conditional branches. RET has no
// static successors (this ISA has no indirect branches, so the only
// unfollowed edge is the return, which the CFG over-approximates by
// giving CALL a fall-through edge).
func Explore(bin *elf.Binary) (*Program, error) {
	sec := bin.SectionAt(bin.Entry)
	if sec == nil {
		return nil, fmt.Errorf("static: entry %#x is unmapped", bin.Entry)
	}
	p := &Program{
		Entry:     bin.Entry,
		Insts:     make(map[uint64]isa.Inst),
		Succs:     make(map[uint64][]uint64),
		Undecoded: make(map[uint64]error),
	}
	work := []uint64{bin.Entry}
	seen := map[uint64]bool{bin.Entry: true}
	for len(work) > 0 {
		addr := work[len(work)-1]
		work = work[:len(work)-1]
		if len(p.Insts)+len(p.Undecoded) >= maxInsts {
			break
		}
		s := bin.SectionAt(addr)
		if s == nil || addr < s.Addr || addr-s.Addr >= uint64(len(s.Data)) {
			p.Undecoded[addr] = fmt.Errorf("static: %#x is unmapped", addr)
			continue
		}
		in, err := decode.Decode(s.Data[addr-s.Addr:], addr)
		if err != nil {
			p.Undecoded[addr] = err
			continue
		}
		p.Insts[addr] = in
		succs := successors(in)
		p.Succs[addr] = succs
		for _, t := range succs {
			if !seen[t] {
				seen[t] = true
				work = append(work, t)
			}
		}
	}
	refineExits(p)
	p.Order = make([]uint64, 0, len(p.Insts)+len(p.Undecoded))
	for a := range p.Insts {
		p.Order = append(p.Order, a)
	}
	for a := range p.Undecoded {
		p.Order = append(p.Order, a)
	}
	sort.Slice(p.Order, func(i, j int) bool { return p.Order[i] < p.Order[j] })
	return p, nil
}

// exitSyscall reports whether rax selects an exit system call.
func exitSyscall(rax int64) bool { return rax == 60 || rax == 231 }

// refineExits classifies SYSCALL instructions. The raw successor map
// gives every syscall a fall-through edge, but a syscall whose RAX is
// statically a proven exit number never returns — keeping its phantom
// edge would route liveness and reachability through a crash node and
// destroy precision right where the hardening patterns put their exit
// stubs. For each syscall, RAX (and RDI, for the exit status) is
// resolved by a bounded straight-line backward walk; proven exits lose
// their successors, and addresses only reachable through those phantom
// edges are dropped from the program.
func refineExits(p *Program) {
	preds := make(map[uint64][]uint64, len(p.Succs))
	for a, succs := range p.Succs {
		for _, s := range succs {
			preds[s] = append(preds[s], a)
		}
	}
	p.Exits = make(map[uint64]Exit)
	changed := false
	for addr, in := range p.Insts {
		if in.Op != isa.SYSCALL {
			continue
		}
		rax, raxKnown := regConstAt(p, preds, addr, isa.RAX)
		if raxKnown && !exitSyscall(rax) {
			continue // a proven read/write syscall: plain fall-through
		}
		rdi, rdiKnown := regConstAt(p, preds, addr, isa.RDI)
		e := Exit{Definite: raxKnown, Code: rdi, CodeKnown: rdiKnown}
		p.Exits[addr] = e
		if e.Definite {
			p.Succs[addr] = nil
			changed = true
		}
	}
	if !changed {
		return
	}
	// Garbage-collect addresses only reachable through removed edges.
	reach := map[uint64]bool{p.Entry: true}
	work := []uint64{p.Entry}
	for len(work) > 0 {
		a := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range p.Succs[a] {
			if !reach[s] {
				reach[s] = true
				work = append(work, s)
			}
		}
	}
	for a := range p.Insts {
		if !reach[a] {
			delete(p.Insts, a)
			delete(p.Succs, a)
			delete(p.Exits, a)
		}
	}
	for a := range p.Undecoded {
		if !reach[a] {
			delete(p.Undecoded, a)
		}
	}
}

// regConstAt resolves the value of reg immediately before addr by
// walking backwards through straight-line predecessors: the walk
// follows unique fall-through edges, stops at joins, and succeeds on a
// `mov reg, imm` (full-width, so the immediate is the whole value). Any
// other write to reg, a join, or the walk bound gives up.
func regConstAt(p *Program, preds map[uint64][]uint64, addr uint64, reg isa.Reg) (int64, bool) {
	cur := addr
	for range [64]struct{}{} {
		ps := preds[cur]
		if len(ps) != 1 {
			return 0, false
		}
		pa := ps[0]
		succs := p.Succs[pa]
		if len(succs) != 1 || succs[0] != cur {
			return 0, false // conditional edge: not straight-line
		}
		in, ok := p.Insts[pa]
		if !ok {
			return 0, false
		}
		if in.Op == isa.MOV && in.Dst.Kind == isa.KindReg && in.Dst.Reg == reg &&
			in.Dst.Width >= 4 && in.Src.Kind == isa.KindImm {
			return in.Src.Imm, true
		}
		if EffectsOf(in).Write.Has(RegBit(reg)) {
			return 0, false
		}
		cur = pa
	}
	return 0, false
}

// successors returns an instruction's static control-flow successors,
// mirroring the emulator's Step dispatch: JMP transfers to its target;
// JCC to the target or the fall-through; CALL is over-approximated with
// both the target and the return site (the callee eventually RETs
// there); RET, HLT and UD2 end the path (halt errors are crashes);
// everything else, including SYSCALL, falls through.
func successors(in isa.Inst) []uint64 {
	next := in.Addr + uint64(in.EncLen)
	switch in.Op {
	case isa.JMP:
		return []uint64{in.Target}
	case isa.JCC:
		return []uint64{in.Target, next}
	case isa.CALL:
		return []uint64{in.Target, next}
	case isa.RET, isa.HLT, isa.UD2:
		return nil
	default:
		return []uint64{next}
	}
}

// IsTerminal reports whether the address ends its path: an instruction
// with no static successors, or an undecodable/unmapped address (the
// emulator crashes there).
func (p *Program) IsTerminal(addr uint64) bool { return len(p.Succs[addr]) == 0 }

// BuildCFG groups a Program's instructions into basic blocks. Leaders
// are the entry, every branch/call target, and every successor of an
// instruction with more than one successor or with none (path ends).
// Undecoded addresses become single-instruction terminal blocks.
func BuildCFG(p *Program) *CFG {
	leader := map[uint64]bool{p.Entry: true}
	for addr := range p.Undecoded {
		leader[addr] = true
	}
	for addr, succs := range p.Succs {
		in := p.Insts[addr]
		if len(succs) != 1 || in.Op.IsBranch() {
			for _, t := range succs {
				leader[t] = true
			}
		}
	}
	// A fall-through target that some other instruction also jumps to
	// must start its own block.
	preds := map[uint64]int{}
	for _, succs := range p.Succs {
		for _, t := range succs {
			preds[t]++
		}
	}
	for t, n := range preds {
		if n > 1 {
			leader[t] = true
		}
	}

	g := &CFG{Prog: p, byAddr: make(map[uint64]*Block)}
	for _, addr := range p.Order {
		if !leader[addr] {
			continue
		}
		b := &Block{Start: addr}
		cur := addr
		for {
			b.Addrs = append(b.Addrs, cur)
			succs := p.Succs[cur]
			if len(succs) != 1 || leader[succs[0]] {
				break
			}
			if _, ok := p.Insts[succs[0]]; !ok {
				if _, und := p.Undecoded[succs[0]]; !und {
					break // truncated exploration (instruction cap)
				}
			}
			cur = succs[0]
		}
		g.Blocks = append(g.Blocks, b)
		g.byAddr[addr] = b
	}
	for i, b := range g.Blocks {
		b.Index = i
		for _, t := range p.Succs[b.End()] {
			if sb := g.byAddr[t]; sb != nil {
				b.Succs = append(b.Succs, sb)
				sb.Preds = append(sb.Preds, b)
			}
		}
	}
	g.Entry = g.byAddr[p.Entry]
	return g
}

// Reachable returns the blocks reachable from the entry block, as a
// set keyed by leader address.
func (g *CFG) Reachable() map[uint64]bool {
	seen := map[uint64]bool{}
	if g.Entry == nil {
		return seen
	}
	work := []*Block{g.Entry}
	seen[g.Entry.Start] = true
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.Succs {
			if !seen[s.Start] {
				seen[s.Start] = true
				work = append(work, s)
			}
		}
	}
	return seen
}
