// Static countermeasure verification: prove hardening invariants on
// the artifact itself, with no fault simulation. Each verifier returns
// a list of Findings; an empty list is a proof that the checked
// structural invariant holds for the artifact (under the documented
// modelling assumptions), not merely that sampled campaigns found
// nothing.
package static

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"github.com/r2r/reinforce/internal/isa"
)

// DetectorExitCode is the exit status every fault response in the
// toolchain uses (the patcher's faulthandler and the lowering's
// __faultresp both exit 42).
const DetectorExitCode = 42

// Finding is one verifier violation: a hardening invariant that does
// not hold at a specific site.
type Finding struct {
	// Check names the analysis that fired ("check-coverage",
	// "skip-window-spacing", "doubled-compare", ...).
	Check string `json:"check"`
	// Where locates the finding in artifact terms: a function/block
	// name for IR findings, a block label for bir findings, empty for
	// raw machine findings.
	Where string `json:"where,omitempty"`
	// Addr is the machine address, when the finding has one.
	Addr uint64 `json:"addr,omitempty"`
	// Detail explains the violation.
	Detail string `json:"detail"`
}

func (f Finding) String() string {
	s := f.Check
	if f.Where != "" {
		s += " at " + f.Where
	}
	if f.Addr != 0 {
		s += fmt.Sprintf(" (%#x)", f.Addr)
	}
	return s + ": " + f.Detail
}

// WriteFindingsJSON exports findings as an indented JSON array (an
// empty slice marshals as [], so clean runs still produce valid JSON).
func WriteFindingsJSON(w io.Writer, fs []Finding) error {
	if fs == nil {
		fs = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(fs)
}

// WriteFindingsCSV exports findings as CSV with a header row.
func WriteFindingsCSV(w io.Writer, fs []Finding) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"check", "where", "addr", "detail"}); err != nil {
		return err
	}
	for _, f := range fs {
		addr := ""
		if f.Addr != 0 {
			addr = fmt.Sprintf("%#x", f.Addr)
		}
		if err := cw.Write([]string{f.Check, f.Where, addr, f.Detail}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CheckCoverage proves the machine-level check-coverage invariant:
// every proven fault-response-free exit is guarded — unreachable from
// the entry point without passing a verification branch that can
// divert into a fault response.
//
// Exit classification comes from the exploration's refined exits
// (Program.Exits). A detector exit is a proven exit(42). A
// fault-response-free exit is a *definite* exit whose status is 0 or
// unresolvable — the success report a fault attack tries to reach.
// Definite exits with a known nonzero, non-detector status (a
// rejection path's exit(1)) are fail-safe: diverting execution into
// one denies the attacker exactly like a detector does, so they need
// no guard. Possible exits whose syscall number could not be resolved
// are ignored, as are crash terminators (RET, HLT, UD2, undecodable
// bytes): treating unresolved syscalls as exits would flag every
// binary that marshals syscall arguments through memory.
//
// A verification branch is a conditional branch with a detector-only
// arm: a successor from which a detector exit is reachable and no
// fault-response-free exit is. Call fall-through edges are replaced by
// return edges (callee RET block -> continuation), so code after a
// call is only considered reachable through the callee's body and the
// checks on it.
//
// When no unguarded exit is found, the verifier additionally requires
// a reachable detector exit: an artifact whose exits are all
// unresolvable and which never reaches a fault response has no
// verification site at all, and reporting it clean would let an
// unhardened binary pass.
func (a *Analysis) CheckCoverage() []Finding {
	blocks := a.CFG.Blocks
	if len(blocks) == 0 {
		return nil
	}

	// Block-level successor sets with the call/return adjustment.
	succs := make(map[*Block]map[*Block]bool, len(blocks))
	type callSite struct {
		callee *Block
		cont   *Block
	}
	var calls []callSite
	for _, b := range blocks {
		set := make(map[*Block]bool, len(b.Succs))
		last, ok := a.Prog.Insts[b.End()]
		if ok && last.Op == isa.CALL {
			target := a.CFG.BlockAt(last.Target)
			cont := a.CFG.BlockAt(last.Addr + uint64(last.EncLen))
			if target != nil {
				set[target] = true
			}
			if target != nil && cont != nil {
				calls = append(calls, callSite{callee: target, cont: cont})
			}
		} else {
			for _, s := range b.Succs {
				set[s] = true
			}
		}
		succs[b] = set
	}

	endsInRet := func(b *Block) bool {
		in, ok := a.Prog.Insts[b.End()]
		return ok && in.Op == isa.RET
	}
	forward := func(from *Block, skip func(*Block) bool) map[*Block]bool {
		seen := map[*Block]bool{}
		stack := []*Block{from}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[b] {
				continue
			}
			seen[b] = true
			if skip != nil && skip(b) {
				continue
			}
			for s := range succs[b] {
				if !seen[s] {
					stack = append(stack, s)
				}
			}
		}
		return seen
	}

	// Return edges, to a fixpoint (a callee may reach its RET only
	// through another call's return edge).
	for changed := true; changed; {
		changed = false
		for _, cs := range calls {
			for b := range forward(cs.callee, nil) {
				if endsInRet(b) && !succs[b][cs.cont] {
					succs[b][cs.cont] = true
					changed = true
				}
			}
		}
	}

	// Exit classification. Exits sit at arbitrary positions inside
	// their block (a definite exit ends it; a possible exit does not),
	// so map every instruction address to its containing block.
	owner := make(map[uint64]*Block)
	for _, b := range blocks {
		for _, addr := range b.Addrs {
			owner[addr] = b
		}
	}
	var detBlocks, freeBlocks []*Block
	freeExits := make(map[*Block][]uint64)
	for addr, e := range a.Prog.Exits {
		if !e.Definite {
			continue
		}
		b := owner[addr]
		if b == nil {
			continue
		}
		switch {
		case e.CodeKnown && e.Code == DetectorExitCode:
			detBlocks = append(detBlocks, b)
		case !e.CodeKnown || e.Code == 0:
			if len(freeExits[b]) == 0 {
				freeBlocks = append(freeBlocks, b)
			}
			freeExits[b] = append(freeExits[b], addr)
		}
		// Known nonzero non-detector exits are fail-safe rejections.
	}

	// Backward reachability over the adjusted graph.
	preds := make(map[*Block][]*Block, len(blocks))
	for b, set := range succs {
		for s := range set {
			preds[s] = append(preds[s], b)
		}
	}
	backward := func(from []*Block) map[*Block]bool {
		seen := map[*Block]bool{}
		stack := append([]*Block{}, from...)
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[b] {
				continue
			}
			seen[b] = true
			for _, p := range preds[b] {
				if !seen[p] {
					stack = append(stack, p)
				}
			}
		}
		return seen
	}
	reachDet := backward(detBlocks)
	reachFree := backward(freeBlocks)

	// Verification sites: conditional branches with a detector-only arm.
	site := make(map[*Block]bool, len(blocks))
	for _, b := range blocks {
		in, ok := a.Prog.Insts[b.End()]
		if !ok || in.Op != isa.JCC {
			continue
		}
		for s := range succs[b] {
			if reachDet[s] && !reachFree[s] {
				site[b] = true
				break
			}
		}
	}

	// Unguarded reachability: verification sites are entered (their
	// body executes, including any exit inside it) but not traversed.
	entry := a.CFG.BlockAt(a.Prog.Entry)
	if entry == nil {
		return nil
	}
	unguarded := forward(entry, func(b *Block) bool { return site[b] })

	var findings []Finding
	for _, b := range freeBlocks {
		if !unguarded[b] {
			continue
		}
		for _, addr := range freeExits[b] {
			e := a.Prog.Exits[addr]
			code := "unknown code"
			if e.CodeKnown {
				code = fmt.Sprintf("code %d", e.Code)
			}
			findings = append(findings, Finding{
				Check: "check-coverage",
				Addr:  addr,
				Detail: fmt.Sprintf("exit (%s) reachable from entry without passing a verification branch",
					code),
			})
		}
	}
	// No unguarded exit: still demand a reachable fault response, or
	// the clean verdict is vacuous (e.g. an unhardened artifact whose
	// exit codes are marshalled through memory).
	if len(findings) == 0 {
		reach := forward(entry, nil)
		detReachable := false
		for _, b := range detBlocks {
			if reach[b] {
				detReachable = true
				break
			}
		}
		if !detReachable {
			findings = append(findings, Finding{
				Check:  "check-coverage",
				Detail: fmt.Sprintf("no reachable fault response (exit %d): artifact has no verification site", DetectorExitCode),
			})
		}
	}

	sort.Slice(findings, func(i, j int) bool { return findings[i].Addr < findings[j].Addr })
	return findings
}
