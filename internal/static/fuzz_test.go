package static

import (
	"testing"

	"github.com/r2r/reinforce/internal/elf"
)

// fuzzBin wraps arbitrary bytes as an executable text section the way
// the bit-flip model produces them: any byte soup must analyze without
// panicking.
func fuzzBin(code []byte) *elf.Binary {
	return &elf.Binary{
		Entry: 0x401000,
		Sections: []*elf.Section{
			{Name: ".text", Addr: 0x401000, Data: code, Flags: elf.FlagRead | elf.FlagExec},
		},
	}
}

// FuzzCFGBuilder: decoding arbitrary bytes and building the CFG,
// dominator tree and dataflow facts must never panic, and the
// structural invariants the verifier leans on must hold: blocks
// partition the reachable instructions, edges are symmetric, the entry
// dominates every reachable block, and liveness is defined exactly on
// the program's addresses.
func FuzzCFGBuilder(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x90, 0x90, 0xC3})                               // nop; nop; ret
	f.Add([]byte{0xEB, 0xFE})                                     // jmp self
	f.Add([]byte{0x75, 0x02, 0x0F, 0x05, 0xF4})                   // jne +2; syscall; hlt
	f.Add([]byte{0x48, 0xC7, 0xC0, 0x3C, 0, 0, 0, 0x0F, 0x05})    // mov rax,60; syscall
	f.Add([]byte{0xE8, 0x00, 0x00, 0x00, 0x00, 0xC3})             // call +0; ret
	f.Add([]byte{0x06, 0x06, 0x06})                               // undecodable
	f.Add([]byte{0x74, 0xFE, 0xEB, 0xFC, 0x90, 0x48, 0xFF, 0xC0}) // tangled loops
	f.Fuzz(func(t *testing.T, code []byte) {
		if len(code) > 4096 {
			code = code[:4096]
		}
		a, err := Analyze(fuzzBin(code))
		if err != nil {
			return // only an unmapped entry fails; empty .text does
		}
		p, g := a.Prog, a.CFG

		seen := make(map[uint64]bool)
		for _, b := range g.Blocks {
			if len(b.Addrs) == 0 {
				t.Fatalf("empty block at %#x", b.Start)
			}
			if b.Addrs[0] != b.Start {
				t.Fatalf("block %#x: first addr %#x", b.Start, b.Addrs[0])
			}
			for i, addr := range b.Addrs {
				if seen[addr] {
					t.Fatalf("address %#x in two blocks", addr)
				}
				seen[addr] = true
				_, inst := p.Insts[addr]
				_, und := p.Undecoded[addr]
				if !inst && !und {
					t.Fatalf("block addr %#x not in program", addr)
				}
				// Only the last instruction may branch or terminate.
				if i < len(b.Addrs)-1 && len(p.Succs[addr]) != 1 {
					t.Fatalf("non-tail addr %#x has %d succs", addr, len(p.Succs[addr]))
				}
			}
			for _, s := range b.Succs {
				found := false
				for _, pb := range s.Preds {
					if pb == b {
						found = true
					}
				}
				if !found {
					t.Fatalf("edge %#x->%#x not in preds", b.Start, s.Start)
				}
			}
		}
		reach := g.Reachable()
		for _, b := range g.Blocks {
			if reach[b.Start] && !g.Entry.Dominates(b) {
				t.Fatalf("entry does not dominate reachable block %#x", b.Start)
			}
			if !reach[b.Start] && b.Idom() != nil {
				t.Fatalf("unreachable block %#x has an idom", b.Start)
			}
		}
		for addr := range p.Insts {
			if !seen[addr] {
				t.Fatalf("instruction %#x not in any block", addr)
			}
			a.LiveIn(addr) // must be defined, not panic
		}
	})
}
