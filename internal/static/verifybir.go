// Binary-IR-level verification of the Faulter+Patcher order-2
// patterns: structural proofs over the patched program before
// reassembly. The order-2 patterns (patch.StyleOrder2) chain two
// independent verifications per protected site; the verifier proves
// per pattern run that detection branches actually come doubled and
// that each derives its own flags, so no single skip can disarm both.
package static

import (
	"fmt"

	"github.com/r2r/reinforce/internal/bir"
	"github.com/r2r/reinforce/internal/isa"
)

// BIRConfig parameterizes VerifyBIR. The zero value uses the
// toolchain's fault handler label ("faulthandler").
type BIRConfig struct {
	// FaultHandler is the label detection branches target
	// (patch.FaulthandlerLabel).
	FaultHandler string
}

func (c BIRConfig) withDefaults() BIRConfig {
	if c.FaultHandler == "" {
		c.FaultHandler = "faulthandler"
	}
	return c
}

// VerifyBIR proves the order-2 pattern invariants on a patched
// program:
//
//   - fault response: the fault handler block exists and ends by
//     exiting with the detector code (42), so detection branches
//     actually terminate the program;
//   - flag provenance: every detection branch (conditional jump to the
//     fault handler inside an order-2 run) branches on flags derived
//     inside the run, by a compare or a flags restore — never on
//     whatever flags the surrounding code left behind;
//   - doubled compare: no two detection branches share one flag
//     derivation (each check's compare is its own), and per run the
//     compare-derived detection branches come in pairs — dropping the
//     second check of a doubled pattern leaves an odd count.
//
// A program with no order-2-marked instruction yields a program-level
// finding: VerifyBIR is only meaningful on StyleOrder2 artifacts.
func VerifyBIR(p *bir.Program, cfg BIRConfig) []Finding {
	cfg = cfg.withDefaults()
	var findings []Finding

	order2 := 0
	for _, b := range p.Blocks {
		for i := 0; i < len(b.Insts); {
			if !b.Insts[i].Order2 {
				i++
				continue
			}
			j := i
			for j < len(b.Insts) && b.Insts[j].Order2 {
				j++
			}
			order2 += j - i
			findings = append(findings, verifyOrder2Run(b, i, j, cfg)...)
			i = j
		}
	}
	if order2 == 0 {
		findings = append(findings, Finding{
			Check:  "doubled-compare",
			Detail: "no order-2 pattern instruction found in program",
		})
		return findings
	}

	findings = append(findings, verifyFaultHandler(p, cfg)...)
	return findings
}

// verifyFaultHandler checks the fault handler block's tail shape:
// mov rax, 60 ; mov rdi, 42 ; syscall.
func verifyFaultHandler(p *bir.Program, cfg BIRConfig) []Finding {
	fh := p.Block(cfg.FaultHandler)
	if fh == nil {
		return []Finding{{Check: "fault-response", Where: cfg.FaultHandler,
			Detail: "fault handler block missing"}}
	}
	n := len(fh.Insts)
	bad := func() []Finding {
		return []Finding{{Check: "fault-response", Where: cfg.FaultHandler,
			Detail: fmt.Sprintf("fault handler does not end in exit(%d)", DetectorExitCode)}}
	}
	if n < 3 {
		return bad()
	}
	movImm := func(in isa.Inst, r isa.Reg, imm int64) bool {
		return in.Op == isa.MOV && in.Dst.IsReg(r) &&
			in.Src.Kind == isa.KindImm && in.Src.Imm == imm
	}
	if fh.Insts[n-1].I.Op != isa.SYSCALL ||
		!movImm(fh.Insts[n-2].I, isa.RDI, DetectorExitCode) ||
		!movImm(fh.Insts[n-3].I, isa.RAX, 60) {
		return bad()
	}
	return nil
}

// verifyOrder2Run checks one maximal run of consecutive order-2
// instructions b.Insts[lo:hi].
func verifyOrder2Run(b *bir.Block, lo, hi int, cfg BIRConfig) []Finding {
	var findings []Finding
	fail := func(check string, idx int, format string, args ...interface{}) {
		findings = append(findings, Finding{Check: check,
			Where:  fmt.Sprintf("%s+%d", b.Label, idx),
			Addr:   b.Insts[idx].I.Addr,
			Detail: fmt.Sprintf(format, args...)})
	}
	writesFlags := func(in isa.Inst) bool {
		eff := EffectsOf(in)
		return (eff.Write|eff.Kill)&Flags != 0
	}

	prevBranch := lo - 1 // index of the previous detection branch
	cmpDerived := 0
	for i := lo; i < hi; i++ {
		in := b.Insts[i]
		if in.I.Op != isa.JCC || in.TargetLabel != cfg.FaultHandler {
			continue
		}
		// Nearest flag derivation before this detection branch.
		deriver := -1
		for k := i - 1; k >= lo; k-- {
			if writesFlags(b.Insts[k].I) {
				deriver = k
				break
			}
		}
		switch {
		case deriver < 0:
			fail("doubled-compare", i,
				"detection branch has no flag derivation inside its pattern")
		case b.Insts[deriver].I.Op != isa.CMP && b.Insts[deriver].I.Op != isa.POPFQ:
			fail("doubled-compare", i,
				"detection branch reads flags from %s, not a compare or flags restore",
				b.Insts[deriver].I.Mnemonic())
		case deriver <= prevBranch:
			fail("doubled-compare", i,
				"detection branch shares its flag derivation with the previous check")
		case b.Insts[deriver].I.Op == isa.CMP:
			cmpDerived++
		}
		prevBranch = i
	}
	if cmpDerived%2 != 0 {
		fail("doubled-compare", lo,
			"pattern run has %d compare-derived detection branches, want them doubled",
			cmpDerived)
	}
	return findings
}
