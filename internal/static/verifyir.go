// IR-level verification of the skip-window countermeasure: structural
// proofs over the hardened module, before lowering. The skip-window
// pass annotates what it builds (ir.BlockRole, ir.Instr.Dup), so the
// verifier checks the claimed structure instead of pattern-matching
// instruction soup — and any weakening of that structure (a dropped
// cell re-read, a coalesced clone, a missing counter check) surfaces
// as a Finding at the exact block.
package static

import (
	"fmt"

	"github.com/r2r/reinforce/internal/ir"
)

// IRConfig parameterizes VerifyIR with the hardening pass's cell names
// and window width. The zero value uses the toolchain defaults
// (sw.ok / sw.ctr, window 4); callers that configure the pass
// differently must pass the same parameters here.
type IRConfig struct {
	// OkCell is the cell the first validation stage parks its combined
	// agreement-and-count bit in (passes.CellSWOk).
	OkCell string
	// CtrCell is the step-counter cell (passes.CellStepCtr).
	CtrCell string
	// Window is the maximum skip-window width the artifact claims to
	// resist; clones must sit more than Window instructions after
	// their originals.
	Window int
}

func (c IRConfig) withDefaults() IRConfig {
	if c.OkCell == "" {
		c.OkCell = "sw.ok"
	}
	if c.CtrCell == "" {
		c.CtrCell = "sw.ctr"
	}
	if c.Window <= 0 {
		c.Window = 4
	}
	return c
}

// VerifyIR proves the skip-window invariants on a hardened module:
//
//   - structure: every instrumented block ends in a two-stage
//     validation chain (branch to a second-stage check re-reading the
//     parked bit from its cell, fault response on either stage's
//     failure path);
//   - step counter: the first-stage condition includes an equality
//     check of the counter cell against a constant;
//   - spacing: every duplicated computation sits more than Window
//     instructions after its original, so no single skip window covers
//     both.
//
// A module with no instrumented block at all yields a module-level
// finding: VerifyIR is only meaningful on artifacts that claim the
// countermeasure.
func VerifyIR(m *ir.Module, cfg IRConfig) []Finding {
	cfg = cfg.withDefaults()
	var findings []Finding
	hardened := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			if b.Role != ir.RoleSWBody {
				continue
			}
			hardened++
			findings = append(findings, verifySWBlock(f, b, cfg)...)
		}
	}
	if hardened == 0 {
		findings = append(findings, Finding{
			Check:  "check-coverage",
			Where:  m.Name,
			Detail: "no skip-window-instrumented block found in module",
		})
	}
	return findings
}

// verifySWBlock checks one instrumented block's validation chain and
// clone spacing.
func verifySWBlock(f *ir.Function, b *ir.Block, cfg IRConfig) []Finding {
	var findings []Finding
	where := f.Name + "/" + b.Name
	fail := func(check, format string, args ...interface{}) {
		findings = append(findings, Finding{Check: check, Where: where,
			Detail: fmt.Sprintf(format, args...)})
	}

	// Clone spacing, independent of the validation chain: a clone that
	// drifted within a skip window of its original is a violation even
	// if every check is intact.
	pos := make(map[*ir.Instr]int, len(b.Insts))
	for i, in := range b.Insts {
		pos[in] = i
	}
	for i, in := range b.Insts {
		if in.Dup == nil {
			continue
		}
		op, ok := pos[in.Dup]
		if !ok {
			fail("skip-window-spacing", "clone %%%d separated from its original (not in the same block)", in.ID())
			continue
		}
		if i-op <= cfg.Window {
			fail("skip-window-spacing",
				"clone %%%d only %d instructions after its original (need > %d)",
				in.ID(), i-op, cfg.Window)
		}
	}

	// First validation stage: br ok, chk2, flt.
	term := b.Terminator()
	if term == nil || term.Op != ir.OpBr {
		fail("check-coverage", "instrumented block does not end in a validation branch")
		return findings
	}
	chk2, flt := term.Then, term.Else
	if flt == nil || flt.Role != ir.RoleSWFault {
		fail("check-coverage", "validation branch has no fault-response arm")
	} else if ft := flt.Terminator(); ft == nil || ft.Op != ir.OpFaultResp {
		fail("check-coverage", "fault arm %s does not end in a fault response", flt.Name)
	}
	if chk2 == nil || chk2.Role != ir.RoleSWCheck2 {
		fail("second-stage-check", "validation branch does not continue into a second-stage check")
	} else {
		findings = append(findings, verifyChk2(f, chk2, cfg)...)
	}

	// Step counter: the branch condition's dag must include
	// icmp eq (cellread ctr), const.
	if cond, ok := term.Args[0].(*ir.Instr); !ok || !condIncludesCtrCheck(cond, cfg.CtrCell) {
		fail("step-counter-check",
			"validation condition does not compare cell %s against its static count", cfg.CtrCell)
	}

	// The combined bit must be parked for the second stage to re-read.
	parked := false
	for _, in := range b.Insts {
		if in.Op == ir.OpCellWrite && in.Cell == cfg.OkCell {
			parked = true
			break
		}
	}
	if !parked {
		fail("second-stage-check", "validation bit is never parked in cell %s", cfg.OkCell)
	}
	return findings
}

// verifyChk2 checks a second-stage block: it must branch on a fresh
// read of the parked cell — not on a block-local value a single fault
// could have corrupted together with the first check — and its failure
// arm must be a fault response.
func verifyChk2(f *ir.Function, b *ir.Block, cfg IRConfig) []Finding {
	var findings []Finding
	where := f.Name + "/" + b.Name
	fail := func(format string, args ...interface{}) {
		findings = append(findings, Finding{Check: "second-stage-check", Where: where,
			Detail: fmt.Sprintf(format, args...)})
	}
	term := b.Terminator()
	if term == nil || term.Op != ir.OpBr {
		fail("second-stage check does not end in a branch")
		return findings
	}
	cond, ok := term.Args[0].(*ir.Instr)
	if !ok || cond.Op != ir.OpCellRead || cond.Cell != cfg.OkCell {
		fail("second-stage check does not re-read cell %s", cfg.OkCell)
	}
	if flt := term.Else; flt == nil || flt.Role != ir.RoleSWFault {
		fail("second-stage check has no fault-response arm")
	}
	if cont := term.Then; cont == nil || cont.Role != ir.RoleSWCont {
		fail("second-stage check does not continue into the block's original terminator")
	}
	return findings
}

// condIncludesCtrCheck walks a branch condition's conjunction dag and
// reports whether some leaf is icmp eq (cellread ctrCell), const.
func condIncludesCtrCheck(v *ir.Instr, ctrCell string) bool {
	switch v.Op {
	case ir.OpBin:
		if v.Bin != ir.And {
			return false
		}
		for _, a := range v.Args {
			if in, ok := a.(*ir.Instr); ok && condIncludesCtrCheck(in, ctrCell) {
				return true
			}
		}
		return false
	case ir.OpICmp:
		if v.Pred != ir.EQ || len(v.Args) != 2 {
			return false
		}
		rd, a := v.Args[0], v.Args[1]
		if _, isConst := a.(*ir.Const); !isConst {
			rd, a = a, rd
		}
		if _, isConst := a.(*ir.Const); !isConst {
			return false
		}
		in, ok := rd.(*ir.Instr)
		return ok && in.Op == ir.OpCellRead && in.Cell == ctrCell
	}
	return false
}
