// External tests for the static countermeasure verifier: catalog
// artifacts must verify clean, and each deliberate weakening of a
// hardened artifact must be flagged at exactly the weakened site.
// The package is external (static_test) because it drives the real
// hardening pipelines, which depend on the fault engine and therefore
// on package static itself.
package static_test

import (
	"strings"
	"testing"

	"github.com/r2r/reinforce/internal/asm"
	"github.com/r2r/reinforce/internal/bir"
	"github.com/r2r/reinforce/internal/cases"
	"github.com/r2r/reinforce/internal/harden"
	"github.com/r2r/reinforce/internal/ir"
	"github.com/r2r/reinforce/internal/isa"
	"github.com/r2r/reinforce/internal/passes"
	"github.com/r2r/reinforce/internal/patch"
	"github.com/r2r/reinforce/internal/static"
)

func irCfg() static.IRConfig {
	return static.IRConfig{
		OkCell:  passes.CellSWOk,
		CtrCell: passes.CellStepCtr,
		Window:  passes.DefaultSkipWindow,
	}
}

func birCfg() static.BIRConfig {
	return static.BIRConfig{FaultHandler: patch.FaulthandlerLabel}
}

func analyzeSrc(t *testing.T, src string) *static.Analysis {
	t.Helper()
	bin, err := asm.Assemble(src, nil)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	a, err := static.Analyze(bin)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return a
}

func noFindings(t *testing.T, label string, fs []static.Finding) {
	t.Helper()
	for _, f := range fs {
		t.Errorf("%s: unexpected finding: %s", label, f)
	}
}

// --- machine-level check coverage ---

const guardedSrc = `
.text
_start:
	mov rax, 7
	cmp rax, 7
	jne detect
	mov rax, 60
	mov rdi, 0
	syscall
detect:
	mov rax, 60
	mov rdi, 42
	syscall
`

func TestCheckCoverageGuarded(t *testing.T) {
	a := analyzeSrc(t, guardedSrc)
	noFindings(t, "guarded", a.CheckCoverage())
}

func TestCheckCoverageUnguarded(t *testing.T) {
	// Same exits, but the branch to the detector is gone: the clean
	// exit is reachable with no verification site on the path.
	src := strings.Replace(guardedSrc, "\tjne detect\n", "", 1)
	a := analyzeSrc(t, src)
	fs := a.CheckCoverage()
	if len(fs) != 1 || fs[0].Check != "check-coverage" {
		t.Fatalf("findings = %v, want one check-coverage finding", fs)
	}
}

func TestCheckCoverageBaselineCatalogFlagged(t *testing.T) {
	// Unhardened case studies have no fault response at all: every
	// clean exit is an unguarded finding.
	for _, c := range cases.All() {
		a, err := static.Analyze(c.MustBuild())
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if len(a.CheckCoverage()) == 0 {
			t.Errorf("%s: baseline binary verified clean, want findings", c.Name)
		}
	}
}

func TestCheckCoverageCallReturn(t *testing.T) {
	// The exit stub after the call is only reachable through the
	// callee, whose body holds the verification branch: the call
	// fall-through edge alone must not surface it as unguarded.
	const src = `
.text
_start:
	call check
	mov rax, 60
	mov rdi, 0
	syscall
check:
	cmp rbx, 0
	jne detect
	ret
detect:
	mov rax, 60
	mov rdi, 42
	syscall
`
	a := analyzeSrc(t, src)
	noFindings(t, "call-return", a.CheckCoverage())

	// Without the check in the callee, the post-return exit is
	// unguarded again.
	weak := strings.Replace(src, "\tcmp rbx, 0\n\tjne detect\n", "", 1)
	aw := analyzeSrc(t, weak)
	if len(aw.CheckCoverage()) == 0 {
		t.Error("unchecked callee: want a check-coverage finding")
	}
}

// --- catalog artifacts verify clean ---

func hybridCase(t *testing.T, c *cases.Case) *harden.HybridResult {
	t.Helper()
	hr, err := harden.Hybrid(c.MustBuild(), harden.HybridOptions{SkipWindow: true})
	if err != nil {
		t.Fatalf("%s: hybrid: %v", c.Name, err)
	}
	return hr
}

func TestVerifyHybridCatalogClean(t *testing.T) {
	cs := cases.Corpus()
	if testing.Short() {
		cs = cases.All()
	}
	for _, c := range cs {
		hr := hybridCase(t, c)
		a, err := static.Analyze(hr.Binary)
		if err != nil {
			t.Fatalf("%s: analyze: %v", c.Name, err)
		}
		noFindings(t, c.Name+" machine", a.CheckCoverage())
		noFindings(t, c.Name+" ir", static.VerifyIR(hr.Module, irCfg()))
	}
}

func order2Program(t *testing.T, c *cases.Case) *bir.Program {
	t.Helper()
	res, err := patch.HardenAll(c.MustBuild(), patch.StyleOrder2)
	if err != nil {
		t.Fatalf("%s: order-2 blanket: %v", c.Name, err)
	}
	return res.Program
}

func TestVerifyBIRCatalogClean(t *testing.T) {
	cs := cases.Corpus()
	if testing.Short() {
		cs = cases.All()
	}
	for _, c := range cs {
		noFindings(t, c.Name+" bir", static.VerifyBIR(order2Program(t, c), birCfg()))
	}
}

func TestVerifyIRUnhardenedModuleFlagged(t *testing.T) {
	m := ir.NewModule("empty")
	fs := static.VerifyIR(m, irCfg())
	if len(fs) != 1 || fs[0].Check != "check-coverage" {
		t.Fatalf("findings = %v, want the module-level finding", fs)
	}
}

// --- mutation suite: each weakening is flagged at its exact site ---

// hardenedModule lifts and skip-window-hardens pincheck, returning the
// module (without lowering).
func hardenedModule(t *testing.T) *ir.Module {
	t.Helper()
	hr := hybridCase(t, cases.Pincheck())
	return hr.Module
}

// swBlocks returns all skip-window-instrumented blocks of a module.
func swBlocks(m *ir.Module) []*ir.Block {
	var out []*ir.Block
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			if b.Role == ir.RoleSWBody {
				out = append(out, b)
			}
		}
	}
	return out
}

func TestMutationDropSecondStageCheck(t *testing.T) {
	m := hardenedModule(t)
	bodies := swBlocks(m)
	if len(bodies) == 0 {
		t.Fatal("no instrumented blocks")
	}
	// Weaken ONE second-stage check: branch on a constant instead of
	// re-reading the parked cell.
	victim := bodies[len(bodies)/2].Terminator().Then
	if victim == nil || victim.Role != ir.RoleSWCheck2 {
		t.Fatalf("unexpected chk2 arm %v", victim)
	}
	victim.Terminator().Args[0] = ir.C1(true)

	fs := static.VerifyIR(m, irCfg())
	if len(fs) != 1 {
		t.Fatalf("findings = %v, want exactly one", fs)
	}
	if fs[0].Check != "second-stage-check" || !strings.Contains(fs[0].Where, victim.Name) {
		t.Fatalf("finding = %+v, want second-stage-check at %s", fs[0], victim.Name)
	}
}

func TestMutationDropStepCounterCheck(t *testing.T) {
	m := hardenedModule(t)
	var victim *ir.Block
	for _, b := range swBlocks(m) {
		// Strip the counter comparison out of the validation
		// conjunction: branch on the agreement chain alone.
		cond, ok := b.Terminator().Args[0].(*ir.Instr)
		if !ok || cond.Op != ir.OpBin || cond.Bin != ir.And {
			continue
		}
		b.Terminator().Args[0] = cond.Args[0]
		victim = b
		break
	}
	if victim == nil {
		t.Fatal("no block with a combined validation condition")
	}
	fs := static.VerifyIR(m, irCfg())
	if len(fs) != 1 {
		t.Fatalf("findings = %v, want exactly one", fs)
	}
	if fs[0].Check != "step-counter-check" || !strings.Contains(fs[0].Where, victim.Name) {
		t.Fatalf("finding = %+v, want step-counter-check at %s", fs[0], victim.Name)
	}
}

func TestMutationCoalesceClones(t *testing.T) {
	m := hardenedModule(t)
	var victim *ir.Block
	for _, b := range swBlocks(m) {
		ci := -1
		for i, in := range b.Insts {
			if in.Dup != nil {
				ci = i
				break
			}
		}
		if ci < 0 {
			continue
		}
		// Coalesce: move the clone to directly after its original,
		// inside one skip window.
		clone := b.Insts[ci]
		oi := -1
		for i, in := range b.Insts {
			if in == clone.Dup {
				oi = i
				break
			}
		}
		if oi < 0 {
			t.Fatal("clone's original not in block")
		}
		rest := append([]*ir.Instr{}, b.Insts[:ci]...)
		rest = append(rest, b.Insts[ci+1:]...)
		insts := append([]*ir.Instr{}, rest[:oi+1]...)
		insts = append(insts, clone)
		insts = append(insts, rest[oi+1:]...)
		b.Insts = insts
		victim = b
		break
	}
	if victim == nil {
		t.Fatal("no block with a clone")
	}
	fs := static.VerifyIR(m, irCfg())
	if len(fs) != 1 {
		t.Fatalf("findings = %v, want exactly one", fs)
	}
	if fs[0].Check != "skip-window-spacing" || !strings.Contains(fs[0].Where, victim.Name) {
		t.Fatalf("finding = %+v, want skip-window-spacing at %s", fs[0], victim.Name)
	}
}

// order2Mutation applies a StyleOrder2 pattern to one pincheck site and
// hands the run bounds to the mutator before verification.
func order2Mutation(t *testing.T, mutate func(p *bir.Program)) []static.Finding {
	t.Helper()
	prog := order2Program(t, cases.Pincheck())
	mutate(prog)
	return static.VerifyBIR(prog, birCfg())
}

// findDetectionPair locates a cmp/jne-faulthandler pair followed by its
// doubled re-derivation (cmp/jne again) inside an order-2 run.
func findDetectionPair(t *testing.T, p *bir.Program) (*bir.Block, int) {
	t.Helper()
	for _, b := range p.Blocks {
		for i := 0; i+3 < len(b.Insts); i++ {
			w := b.Insts[i : i+4]
			if w[0].Order2 && w[0].I.Op == isa.CMP &&
				w[1].Order2 && w[1].I.Op == isa.JCC && w[1].TargetLabel == patch.FaulthandlerLabel &&
				w[2].Order2 && w[2].I.Op == isa.CMP &&
				w[3].Order2 && w[3].I.Op == isa.JCC && w[3].TargetLabel == patch.FaulthandlerLabel {
				return b, i
			}
		}
	}
	t.Fatal("no doubled cmp/jne detection pair found")
	return nil, 0
}

func TestMutationDropDoubledCompare(t *testing.T) {
	// Remove the second check entirely (cmp+jne): the run's
	// compare-derived detection count goes odd.
	fs := order2Mutation(t, func(p *bir.Program) {
		b, i := findDetectionPair(t, p)
		b.Insts = append(b.Insts[:i+2], b.Insts[i+4:]...)
	})
	if len(fs) != 1 || fs[0].Check != "doubled-compare" {
		t.Fatalf("findings = %v, want one doubled-compare finding", fs)
	}
}

func TestMutationSharedFlagDerivation(t *testing.T) {
	// Remove only the second compare, leaving its branch to reuse the
	// first check's flags: both checks now share one derivation.
	fs := order2Mutation(t, func(p *bir.Program) {
		b, i := findDetectionPair(t, p)
		b.Insts = append(b.Insts[:i+2], b.Insts[i+3:]...)
	})
	// Shared derivation plus the now-odd pair count: both symptoms of
	// the same weakening, anchored at the surviving branch and run.
	if len(fs) == 0 {
		t.Fatal("no findings, want doubled-compare")
	}
	for _, f := range fs {
		if f.Check != "doubled-compare" {
			t.Errorf("unexpected finding %s", f)
		}
	}
	found := false
	for _, f := range fs {
		if strings.Contains(f.Detail, "shares its flag derivation") {
			found = true
		}
	}
	if !found {
		t.Error("no shared-derivation finding")
	}
}

func TestMutationMissingFaultHandler(t *testing.T) {
	fs := order2Mutation(t, func(p *bir.Program) {
		fh := p.Block(patch.FaulthandlerLabel)
		// Neuter the handler's exit: drop the final syscall.
		fh.Insts = fh.Insts[:len(fh.Insts)-1]
	})
	if len(fs) != 1 || fs[0].Check != "fault-response" {
		t.Fatalf("findings = %v, want one fault-response finding", fs)
	}
}

// --- machine-level mutation: weakened lowering is flagged ---

func TestMutationLoweredUnguardedExit(t *testing.T) {
	// A hybrid artifact whose hardening was skipped entirely has no
	// verification site guarding its exits.
	c := cases.Pincheck()
	hr, err := harden.Hybrid(c.MustBuild(), harden.HybridOptions{SkipHardening: true})
	if err != nil {
		t.Fatal(err)
	}
	a, err := static.Analyze(hr.Binary)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.CheckCoverage()) == 0 {
		t.Error("unhardened lowering verified clean, want findings")
	}
}

// --- findings export ---

func TestFindingsWriters(t *testing.T) {
	fs := []static.Finding{
		{Check: "check-coverage", Addr: 0x401000, Detail: "exit unguarded"},
		{Check: "skip-window-spacing", Where: "f/b", Detail: "clone too close"},
	}
	var js, cs strings.Builder
	if err := static.WriteFindingsJSON(&js, fs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"check-coverage"`) || !strings.Contains(js.String(), `"addr"`) {
		t.Errorf("json output:\n%s", js.String())
	}
	if err := static.WriteFindingsCSV(&cs, fs); err != nil {
		t.Fatal(err)
	}
	want := "check,where,addr,detail\ncheck-coverage,,0x401000,exit unguarded\nskip-window-spacing,f/b,,clone too close\n"
	if cs.String() != want {
		t.Errorf("csv output:\n%q\nwant:\n%q", cs.String(), want)
	}
	var empty strings.Builder
	if err := static.WriteFindingsJSON(&empty, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(empty.String()) != "[]" {
		t.Errorf("empty json = %q, want []", empty.String())
	}
}
