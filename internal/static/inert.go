package static

import "github.com/r2r/reinforce/internal/isa"

// Static fault-surface classification: the facts the campaign pruner
// uses to answer skip-model faults without simulation. Both screens are
// conservative — they prove the faulted run's architectural state stays
// equivalent to the reference run's, so the fault's outcome equals the
// reference outcome. Soundness is enforced end to end by the campaign
// package's pruned-vs-exhaustive differential harness.
//
// Two tiers:
//
//   - Transparent: skipping the instruction writes nothing at all (no
//     register, flag or memory component), so if the reference run fell
//     through it anyway — the caller checks trace contiguity — the
//     post-window machine state is bit-identical to the reference. This
//     tier needs no dataflow facts and is also sound as the *first*
//     fault of a pair or triple: the residual faults run against an
//     unchanged machine.
//
//   - Dead-output: skipping the instruction leaves stale values only in
//     components that liveness proves dead at the continuation point.
//     The continuation then computes the same observable results, so a
//     *solo* fault's outcome equals the reference outcome. This tier is
//     NOT sound as part of a multi-fault group (a later fault can
//     resurrect a dead component, e.g. by flipping a branch into a path
//     the liveness fixpoint proved unreachable from here).

// Transparent reports whether skipping in cannot change machine state:
// the instruction writes no register, flag, or memory component. NOP
// trivially; JMP and JCC qualify because a skip falls through — the
// caller must separately check that the reference trace fell through
// too (trace contiguity), which makes the skipped path identical.
func Transparent(in isa.Inst) bool {
	switch in.Op {
	case isa.NOP, isa.JMP, isa.JCC:
		return true
	}
	return false
}

// SkippableWrites returns the components the instruction writes and
// whether it is eligible for the dead-output screen: modeled semantics,
// no memory store, no stack-pointer adjustment, and no control transfer
// (skipping a taken branch diverges; skipping a fall-through branch is
// already covered by Transparent). Eligible instructions always fall
// through, so the skipped run rejoins the reference at the next
// address with at most the returned components differing.
func SkippableWrites(in isa.Inst) (LiveSet, bool) {
	switch in.Op {
	case isa.JMP, isa.JCC, isa.CALL, isa.RET, isa.SYSCALL, isa.HLT, isa.UD2:
		return 0, false
	}
	e := EffectsOf(in)
	if !e.Known || e.StoresMem || e.Write.Has(RegBit(isa.RSP)) {
		return 0, false
	}
	return e.Write, true
}

// OutputsDead reports whether every component of w is dead immediately
// before the instruction at addr: no modeled continuation from addr
// reads any of them before overwriting them. False for addresses the
// analysis did not reach (no facts, no claim).
func (a *Analysis) OutputsDead(w LiveSet, addr uint64) bool {
	if _, ok := a.Prog.Insts[addr]; !ok {
		return false
	}
	return a.liveIn[addr]&w == 0
}
