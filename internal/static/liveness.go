package static

// Backward liveness and forward reaching definitions at instruction
// granularity, directly over Program.Succs. Instruction granularity
// (rather than per-block summaries) keeps the transfer functions
// trivially auditable against the emulator semantics in sem.go, and the
// programs this toolchain emits are small enough that the simpler
// fixpoint wins.

// Liveness computes, for every reachable instruction address, the set
// of registers and flags live immediately before it. The result
// over-approximates: undecodable addresses (where the emulator crashes)
// are treated as reading everything, as are instructions with
// unmodeled semantics, so a component reported dead is truly dead on
// every modeled continuation.
func Liveness(p *Program) map[uint64]LiveSet {
	eff := make(map[uint64]Effects, len(p.Insts))
	for addr, in := range p.Insts {
		eff[addr] = EffectsOf(in)
	}
	liveIn := make(map[uint64]LiveSet, len(p.Insts)+len(p.Undecoded))
	for addr := range p.Undecoded {
		liveIn[addr] = AllRegs | Flags
	}
	preds := make(map[uint64][]uint64, len(p.Succs))
	for a, succs := range p.Succs {
		for _, s := range succs {
			preds[s] = append(preds[s], a)
		}
	}

	// Seed the worklist with every instruction; process in descending
	// address order first so straight-line code converges in one pass.
	work := make([]uint64, len(p.Order))
	copy(work, p.Order)
	inWork := make(map[uint64]bool, len(work))
	for _, a := range work {
		inWork[a] = true
	}
	for len(work) > 0 {
		addr := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[addr] = false
		if _, und := p.Undecoded[addr]; und {
			continue // fixed at use-all
		}
		e := eff[addr]
		var out LiveSet
		for _, s := range p.Succs[addr] {
			if _, known := p.Insts[s]; !known {
				if _, und := p.Undecoded[s]; !und {
					// Truncated exploration: unknown continuation.
					out |= AllRegs | Flags
					continue
				}
			}
			out |= liveIn[s]
		}
		in := e.Use | (out &^ e.Kill)
		if in != liveIn[addr] {
			liveIn[addr] = in
			for _, pa := range preds[addr] {
				if !inWork[pa] {
					inWork[pa] = true
					work = append(work, pa)
				}
			}
		}
	}
	return liveIn
}

// Def is one reaching definition: the instruction at Addr wrote (fully
// or partially) the components in Comps.
type Def struct {
	Addr  uint64
	Comps LiveSet
}

// ReachingDefs computes, for every reachable instruction address, the
// definitions that may reach it: writes not killed along some path from
// the definition site to the instruction. Partial writes (1-byte
// register merges, inc/dec flag updates) generate definitions but kill
// nothing, so earlier definitions flow through them — the conservative
// direction. The entry is modeled as a pseudo-definition of everything
// (Addr == ^uint64(0)) so "possibly uninitialized by any instruction"
// stays visible.
func ReachingDefs(p *Program) map[uint64][]Def {
	const entryDef = ^uint64(0)
	// in[addr] maps def-site → components of that def still reaching.
	in := make(map[uint64]map[uint64]LiveSet, len(p.Insts))
	get := func(addr uint64) map[uint64]LiveSet {
		m := in[addr]
		if m == nil {
			m = make(map[uint64]LiveSet)
			in[addr] = m
		}
		return m
	}
	get(p.Entry)[entryDef] = AllRegs | Flags

	work := make([]uint64, 0, len(p.Order))
	// Ascending order: forward problem, straight-line code converges fast.
	for i := len(p.Order) - 1; i >= 0; i-- {
		work = append(work, p.Order[i])
	}
	inWork := make(map[uint64]bool, len(work))
	for _, a := range work {
		inWork[a] = true
	}
	for len(work) > 0 {
		addr := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[addr] = false
		if _, und := p.Undecoded[addr]; und {
			continue
		}
		e := EffectsOf(p.Insts[addr])
		cur := get(addr)
		for _, s := range p.Succs[addr] {
			sm := get(s)
			changed := false
			merge := func(site uint64, comps LiveSet) {
				if comps != 0 && sm[site]&comps != comps {
					sm[site] |= comps
					changed = true
				}
			}
			for site, comps := range cur {
				merge(site, comps&^e.Kill)
			}
			merge(addr, e.Write)
			if changed && !inWork[s] {
				inWork[s] = true
				work = append(work, s)
			}
		}
	}

	out := make(map[uint64][]Def, len(in))
	for addr, m := range in {
		defs := make([]Def, 0, len(m))
		for site, comps := range m {
			defs = append(defs, Def{Addr: site, Comps: comps})
		}
		out[addr] = defs
	}
	return out
}
