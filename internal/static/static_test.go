package static

import (
	"testing"

	"github.com/r2r/reinforce/internal/asm"
	"github.com/r2r/reinforce/internal/elf"
	"github.com/r2r/reinforce/internal/isa"
)

// analyze assembles a program and runs the full analysis.
func analyze(t *testing.T, src string) *Analysis {
	t.Helper()
	bin, err := asm.Assemble(src, nil)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	a, err := Analyze(bin)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return a
}

// sym resolves a label to its address.
func sym(t *testing.T, bin *elf.Binary, name string) uint64 {
	t.Helper()
	addr, ok := bin.SymbolAddr(name)
	if !ok {
		t.Fatalf("symbol %q not found", name)
	}
	return addr
}

const diamondSrc = `
.text
_start:
	mov rax, 1
	cmp rax, 1
	jne miss
	mov rdi, 0
	jmp done
miss:
	mov rdi, 42
done:
	mov rax, 60
	syscall
`

func TestCFGDiamond(t *testing.T) {
	a := analyze(t, diamondSrc)
	g := a.CFG
	if len(g.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(g.Blocks))
	}
	entry := g.Entry
	if entry == nil || entry.Start != a.Prog.Entry {
		t.Fatalf("entry block = %+v", entry)
	}
	if len(entry.Succs) != 2 {
		t.Fatalf("entry succs = %d, want 2", len(entry.Succs))
	}
	miss := g.BlockAt(sym(t, a.Bin, "miss"))
	done := g.BlockAt(sym(t, a.Bin, "done"))
	if miss == nil || done == nil {
		t.Fatalf("miss/done blocks missing")
	}
	if len(done.Preds) != 2 {
		t.Fatalf("done preds = %d, want 2", len(done.Preds))
	}
	if !g.Reachable()[miss.Start] {
		t.Errorf("miss not reachable")
	}
	// The final syscall is a proven exit (RAX=60 is straight-line) but
	// the exit code joins from two arms, so it stays unknown.
	var sc uint64
	for addr, in := range a.Prog.Insts {
		if in.Op == isa.SYSCALL {
			sc = addr
		}
	}
	e, ok := a.Prog.Exits[sc]
	if !ok || !e.Definite || e.CodeKnown {
		t.Errorf("exit classification = %+v ok=%v, want definite unknown-code", e, ok)
	}
	if !a.Prog.IsTerminal(sc) {
		t.Errorf("proven exit syscall must be terminal")
	}
}

func TestDominators(t *testing.T) {
	a := analyze(t, diamondSrc)
	g := a.CFG
	entry := g.Entry
	miss := g.BlockAt(sym(t, a.Bin, "miss"))
	done := g.BlockAt(sym(t, a.Bin, "done"))
	if !entry.Dominates(done) || !entry.Dominates(miss) || !entry.Dominates(entry) {
		t.Errorf("entry should dominate every block")
	}
	if miss.Dominates(done) {
		t.Errorf("miss must not dominate done (fall-through path exists)")
	}
	if done.Idom() != entry {
		t.Errorf("idom(done) = %v, want entry", done.Idom())
	}
	if done.Dominates(entry) {
		t.Errorf("done must not dominate entry")
	}
}

func TestLiveness(t *testing.T) {
	a := analyze(t, diamondSrc)
	done := sym(t, a.Bin, "done")
	live := a.LiveIn(done)
	if !live.Has(RegBit(isa.RDI)) {
		t.Errorf("RDI should be live at done (exit code)")
	}
	if live.Has(RegBit(isa.RAX)) {
		t.Errorf("RAX should be dead at done (rewritten before syscall)")
	}
	// At the entry the cmp result is consumed by jne: flags dead before
	// cmp, live right after — check via the jne's LiveIn.
	var jne uint64
	for addr, in := range a.Prog.Insts {
		if in.Op == isa.JCC {
			jne = addr
		}
	}
	if !a.LiveIn(jne).Has(Flags) {
		t.Errorf("flags should be live at the jne")
	}
}

func TestDeadOutputScreen(t *testing.T) {
	a := analyze(t, `
.text
_start:
	mov rcx, 5
after:
	mov rax, 60
	mov rdi, 0
	syscall
`)
	start := a.Prog.Entry
	after := sym(t, a.Bin, "after")
	w, ok := SkippableWrites(a.Prog.Insts[start])
	if !ok || !w.Has(RegBit(isa.RCX)) {
		t.Fatalf("mov rcx,5 writes = %v ok=%v", w, ok)
	}
	if !a.OutputsDead(w, after) {
		t.Errorf("RCX should be dead after the unused mov")
	}
	// RDX is read by the (conservatively modeled) syscall and never
	// rewritten, so it is live throughout.
	if a.OutputsDead(RegBit(isa.RDX), after) {
		t.Errorf("RDX must not be dead before the exit syscall")
	}
	// No claim about addresses outside the program.
	if a.OutputsDead(w, 0xdead) {
		t.Errorf("unknown address must yield no claim")
	}
}

func TestTransparent(t *testing.T) {
	cases := []struct {
		op   isa.Op
		want bool
	}{
		{isa.NOP, true}, {isa.JMP, true}, {isa.JCC, true},
		{isa.MOV, false}, {isa.CALL, false}, {isa.PUSH, false},
	}
	for _, c := range cases {
		if got := Transparent(isa.Inst{Op: c.op}); got != c.want {
			t.Errorf("Transparent(%v) = %v, want %v", c.op, got, c.want)
		}
	}
}

func TestSkippableWritesRejects(t *testing.T) {
	reject := []isa.Inst{
		{Op: isa.CALL},
		{Op: isa.RET},
		{Op: isa.SYSCALL},
		{Op: isa.PUSH, Dst: isa.Operand{Kind: isa.KindReg, Reg: isa.RAX, Width: 8}},
		{Op: isa.POP, Dst: isa.Operand{Kind: isa.KindReg, Reg: isa.RAX, Width: 8}},
		{Op: isa.MOV, // memory store
			Dst: isa.Operand{Kind: isa.KindMem, Width: 8, Mem: isa.Mem{Base: isa.RAX}},
			Src: isa.Operand{Kind: isa.KindReg, Reg: isa.RBX, Width: 8}},
	}
	for _, in := range reject {
		if _, ok := SkippableWrites(in); ok {
			t.Errorf("SkippableWrites(%v) accepted, want rejected", in.Op)
		}
	}
}

func TestEffectsTable(t *testing.T) {
	mk := func(op isa.Op, dst, src isa.Operand) isa.Inst {
		return isa.Inst{Op: op, Dst: dst, Src: src}
	}
	reg := func(r isa.Reg, w uint8) isa.Operand {
		return isa.Operand{Kind: isa.KindReg, Reg: r, Width: w}
	}
	imm := func(v int64) isa.Operand { return isa.Operand{Kind: isa.KindImm, Imm: v} }

	// Full-width mov kills the destination and reads only the source.
	e := EffectsOf(mk(isa.MOV, reg(isa.RAX, 8), reg(isa.RBX, 8)))
	if !e.Kill.Has(RegBit(isa.RAX)) || !e.Use.Has(RegBit(isa.RBX)) || e.Use.Has(RegBit(isa.RAX)) {
		t.Errorf("mov rax, rbx effects = %+v", e)
	}
	// 1-byte writes merge: use+write, no kill.
	e = EffectsOf(mk(isa.MOV, reg(isa.RAX, 1), imm(7)))
	if e.Kill.Has(RegBit(isa.RAX)) || !e.Use.Has(RegBit(isa.RAX)) || !e.Write.Has(RegBit(isa.RAX)) {
		t.Errorf("mov al, 7 effects = %+v", e)
	}
	// inc preserves CF: flags used and written, not killed.
	e = EffectsOf(mk(isa.INC, reg(isa.RAX, 8), isa.Operand{}))
	if e.Kill.Has(Flags) || !e.Use.Has(Flags) || !e.Write.Has(Flags) {
		t.Errorf("inc rax effects = %+v", e)
	}
	// Shift by zero leaves flags untouched; nonzero kills them.
	e = EffectsOf(mk(isa.SHL, reg(isa.RAX, 8), imm(0)))
	if e.Write.Has(Flags) {
		t.Errorf("shl rax, 0 must not touch flags: %+v", e)
	}
	e = EffectsOf(mk(isa.SHL, reg(isa.RAX, 8), imm(3)))
	if !e.Kill.Has(Flags) {
		t.Errorf("shl rax, 3 must kill flags: %+v", e)
	}
	// adc reads its own flags before killing them.
	e = EffectsOf(mk(isa.ADC, reg(isa.RAX, 8), reg(isa.RBX, 8)))
	if !e.Use.Has(Flags) || !e.Kill.Has(Flags) {
		t.Errorf("adc effects = %+v", e)
	}
	// ret uses everything (unknown continuation).
	e = EffectsOf(isa.Inst{Op: isa.RET})
	if e.Use != AllRegs|Flags {
		t.Errorf("ret use = %v, want all", e.Use)
	}
	// syscall clobbers rax/rcx/r11 and reads the call registers.
	e = EffectsOf(isa.Inst{Op: isa.SYSCALL})
	if !e.Kill.Has(RegBit(isa.RCX)) || !e.Kill.Has(RegBit(isa.R11)) || !e.Use.Has(RegBit(isa.RDI)) {
		t.Errorf("syscall effects = %+v", e)
	}
}

func TestReachingDefs(t *testing.T) {
	a := analyze(t, diamondSrc)
	defs := ReachingDefs(a.Prog)
	done := sym(t, a.Bin, "done")
	var rdiDefs int
	for _, d := range defs[done] {
		if d.Comps.Has(RegBit(isa.RDI)) && d.Addr != ^uint64(0) {
			rdiDefs++
		}
	}
	if rdiDefs != 2 {
		t.Errorf("RDI defs reaching done = %d, want 2 (both branch arms)", rdiDefs)
	}
	// The entry pseudo-def of RDI must be killed on both arms.
	for _, d := range defs[done] {
		if d.Addr == ^uint64(0) && d.Comps.Has(RegBit(isa.RDI)) {
			t.Errorf("entry pseudo-def of RDI should not reach done")
		}
	}
}

func TestExploreUndecoded(t *testing.T) {
	// A jump into the data section: reachable but undecodable, recorded
	// as a terminal node rather than failing the analysis.
	a := analyze(t, `
.text
_start:
	mov rax, 1
	cmp rax, 2
	jne out
	mov rax, 60
	mov rdi, 0
	syscall
out:
	jmp blob
.rodata
blob: .byte 0x06, 0x06, 0x06, 0x06
`)
	blob := sym(t, a.Bin, "blob")
	if _, ok := a.Prog.Undecoded[blob]; !ok {
		t.Fatalf("blob should be recorded undecoded")
	}
	if !a.Prog.IsTerminal(blob) {
		t.Errorf("undecoded address must be terminal")
	}
	if b := a.CFG.BlockAt(blob); b == nil || len(b.Succs) != 0 {
		t.Errorf("undecoded block should exist with no successors")
	}
	// Conservative liveness at the crash site: everything live.
	if a.LiveIn(blob) != AllRegs|Flags {
		t.Errorf("liveIn(undecoded) = %v, want all", a.LiveIn(blob))
	}
}
