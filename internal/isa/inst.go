package isa

import (
	"fmt"
	"strings"
)

// Op is an instruction mnemonic in the supported x86-64 subset.
type Op uint8

// Supported mnemonics. ALU group order (ADD..CMP) mirrors the hardware
// /digit extension order so the encoder and decoder can share tables.
const (
	BAD Op = iota

	// Data movement.
	MOV
	MOVZX // zero-extending move (8 -> 32/64)
	MOVSX // sign-extending move (8 -> 32/64)
	LEA

	// ALU, hardware group order: /0 /1 /2 /3 /4 /5 /6 /7.
	ADD
	OR
	ADC
	SBB
	AND
	SUB
	XOR
	CMP

	TEST
	NOT
	NEG
	INC
	DEC
	SHL
	SHR
	SAR
	IMUL

	// Stack.
	PUSH
	POP
	PUSHFQ
	POPFQ

	// Control flow.
	JMP
	JCC
	CALL
	RET
	SETCC

	// System.
	SYSCALL
	NOP
	HLT
	UD2
)

var opNames = map[Op]string{
	BAD: "(bad)", MOV: "mov", MOVZX: "movzx", MOVSX: "movsx", LEA: "lea",
	ADD: "add", OR: "or", ADC: "adc", SBB: "sbb", AND: "and", SUB: "sub",
	XOR: "xor", CMP: "cmp", TEST: "test", NOT: "not", NEG: "neg",
	INC: "inc", DEC: "dec", SHL: "shl", SHR: "shr", SAR: "sar",
	IMUL: "imul", PUSH: "push", POP: "pop", PUSHFQ: "pushfq",
	POPFQ: "popfq", JMP: "jmp", JCC: "j", CALL: "call", RET: "ret",
	SETCC: "set", SYSCALL: "syscall", NOP: "nop", HLT: "hlt", UD2: "ud2",
}

// String returns the base mnemonic (condition suffixes are appended by
// Inst.String for JCC/SETCC).
func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("op?%d", uint8(o))
}

// IsBranch reports whether the op transfers control via a relative
// target operand.
func (o Op) IsBranch() bool { return o == JMP || o == JCC || o == CALL }

// IsALU reports whether the op is in the two-operand ALU group that
// shares the 80/81/83 immediate encodings.
func (o Op) IsALU() bool { return o >= ADD && o <= CMP }

// ALUDigit returns the /digit opcode extension for the ALU group
// (ADD=/0 ... CMP=/7), shared by the encoder and decoder tables.
func (o Op) ALUDigit() uint8 { return uint8(o - ADD) }

// OpKind discriminates operand variants.
type OpKind uint8

// Operand kinds.
const (
	KindNone OpKind = iota
	KindReg
	KindImm
	KindMem
)

// Mem is a memory operand: [Base + Index*Scale + Disp], or
// [RIP + Disp] when RIPRel is set (Base and Index must be NoReg).
type Mem struct {
	Base   Reg
	Index  Reg
	Scale  uint8 // 1, 2, 4 or 8; meaningful only when Index != NoReg
	Disp   int32
	RIPRel bool
}

// String renders the memory operand in Intel syntax (without a size
// prefix; Operand.String adds one where ambiguous).
func (m Mem) String() string {
	var b strings.Builder
	b.WriteByte('[')
	wrote := false
	if m.RIPRel {
		b.WriteString("rip")
		wrote = true
	}
	if m.Base != NoReg {
		b.WriteString(m.Base.Name(8))
		wrote = true
	}
	if m.Index != NoReg {
		if wrote {
			b.WriteByte('+')
		}
		fmt.Fprintf(&b, "%s*%d", m.Index.Name(8), m.Scale)
		wrote = true
	}
	switch {
	case m.Disp == 0 && !wrote:
		b.WriteByte('0')
	case m.Disp > 0 && wrote:
		fmt.Fprintf(&b, "+%d", m.Disp)
	case m.Disp < 0:
		fmt.Fprintf(&b, "-%d", -int64(m.Disp))
	case m.Disp > 0:
		fmt.Fprintf(&b, "%d", m.Disp)
	}
	b.WriteByte(']')
	return b.String()
}

// Operand is a register, immediate, or memory operand together with its
// access width in bytes (1, 4 or 8).
type Operand struct {
	Kind  OpKind
	Width uint8 // operand size in bytes: 1, 4 or 8
	Reg   Reg   // KindReg
	Imm   int64 // KindImm (sign-extended to 64 bits)
	Mem   Mem   // KindMem
}

// Convenience constructors.

// R returns a 64-bit register operand.
func R(r Reg) Operand { return Operand{Kind: KindReg, Width: 8, Reg: r} }

// Rd returns a 32-bit (dword) register operand.
func Rd(r Reg) Operand { return Operand{Kind: KindReg, Width: 4, Reg: r} }

// Rb returns an 8-bit register operand (low byte, REX-style).
func Rb(r Reg) Operand { return Operand{Kind: KindReg, Width: 1, Reg: r} }

// Imm returns a 64-bit immediate operand.
func Imm(v int64) Operand { return Operand{Kind: KindImm, Width: 8, Imm: v} }

// Imm8 returns an 8-bit immediate operand.
func Imm8(v int64) Operand { return Operand{Kind: KindImm, Width: 1, Imm: v} }

// M returns a 64-bit memory operand [base+disp].
func M(base Reg, disp int32) Operand {
	return Operand{Kind: KindMem, Width: 8, Mem: Mem{Base: base, Index: NoReg, Scale: 1, Disp: disp}}
}

// M8 returns an 8-bit memory operand [base+disp].
func M8(base Reg, disp int32) Operand {
	op := M(base, disp)
	op.Width = 1
	return op
}

// MSIB returns a 64-bit memory operand [base+index*scale+disp].
func MSIB(base, index Reg, scale uint8, disp int32) Operand {
	return Operand{Kind: KindMem, Width: 8, Mem: Mem{Base: base, Index: index, Scale: scale, Disp: disp}}
}

// MRIP returns a 64-bit RIP-relative memory operand [rip+disp].
func MRIP(disp int32) Operand {
	return Operand{Kind: KindMem, Width: 8, Mem: Mem{Base: NoReg, Index: NoReg, Scale: 1, Disp: disp, RIPRel: true}}
}

// IsReg reports whether the operand is the given 64-bit register.
func (o Operand) IsReg(r Reg) bool { return o.Kind == KindReg && o.Reg == r }

// UsesReg reports whether the operand reads the given register
// (as a register operand or as a memory base/index).
func (o Operand) UsesReg(r Reg) bool {
	switch o.Kind {
	case KindReg:
		return o.Reg == r
	case KindMem:
		return o.Mem.Base == r || o.Mem.Index == r
	}
	return false
}

// String renders the operand in Intel syntax.
func (o Operand) String() string {
	switch o.Kind {
	case KindNone:
		return ""
	case KindReg:
		return o.Reg.Name(o.Width)
	case KindImm:
		return fmt.Sprintf("%d", o.Imm)
	case KindMem:
		switch o.Width {
		case 1:
			return "byte ptr " + o.Mem.String()
		case 4:
			return "dword ptr " + o.Mem.String()
		default:
			return "qword ptr " + o.Mem.String()
		}
	}
	return "?"
}

// Inst is a decoded or to-be-encoded instruction.
//
// For branch ops (JMP/JCC/CALL) the single operand is KindImm holding
// the *relative* displacement from the end of the instruction, exactly
// as encoded. The decoder additionally materializes the absolute target
// in Target when the instruction address is known.
type Inst struct {
	Op   Op
	Cond Cond // JCC / SETCC only; NoCond otherwise

	Dst Operand // first operand (destination for two-operand forms)
	Src Operand // second operand

	// Decoder metadata (zero for hand-built instructions).
	Addr   uint64 // virtual address this instruction was decoded from
	EncLen int    // encoded length in bytes
	Target uint64 // absolute branch target (branch ops, when Addr known)
}

// NewInst builds an instruction with explicit operands.
func NewInst(op Op, operands ...Operand) Inst {
	in := Inst{Op: op, Cond: NoCond}
	if len(operands) > 0 {
		in.Dst = operands[0]
	}
	if len(operands) > 1 {
		in.Src = operands[1]
	}
	return in
}

// NewJcc builds a conditional jump with the given relative displacement.
func NewJcc(c Cond, rel int64) Inst {
	return Inst{Op: JCC, Cond: c, Dst: Operand{Kind: KindImm, Width: 8, Imm: rel}}
}

// NewSetcc builds a SETcc on an 8-bit register.
func NewSetcc(c Cond, r Reg) Inst {
	return Inst{Op: SETCC, Cond: c, Dst: Rb(r)}
}

// NumOperands reports how many operands the instruction carries.
func (in Inst) NumOperands() int {
	n := 0
	if in.Dst.Kind != KindNone {
		n++
	}
	if in.Src.Kind != KindNone {
		n++
	}
	return n
}

// Mnemonic returns the full mnemonic including any condition suffix.
func (in Inst) Mnemonic() string {
	switch in.Op {
	case JCC:
		return "j" + in.Cond.String()
	case SETCC:
		return "set" + in.Cond.String()
	default:
		return in.Op.String()
	}
}

// String renders the instruction in Intel syntax. Branch targets are
// shown as absolute addresses when known, otherwise as relative offsets.
func (in Inst) String() string {
	m := in.Mnemonic()
	if in.Op.IsBranch() {
		if in.Target != 0 || in.Addr != 0 {
			return fmt.Sprintf("%s 0x%x", m, in.Target)
		}
		return fmt.Sprintf("%s .%+d", m, in.Dst.Imm)
	}
	switch in.NumOperands() {
	case 0:
		return m
	case 1:
		return m + " " + in.Dst.String()
	default:
		return m + " " + in.Dst.String() + ", " + in.Src.String()
	}
}

// UsesReg reports whether any operand references the register.
func (in Inst) UsesReg(r Reg) bool { return in.Dst.UsesReg(r) || in.Src.UsesReg(r) }

// MemOperand returns a pointer to the instruction's memory operand, or
// nil if it has none. At most one operand can be memory in this subset.
func (in *Inst) MemOperand() *Operand {
	if in.Dst.Kind == KindMem {
		return &in.Dst
	}
	if in.Src.Kind == KindMem {
		return &in.Src
	}
	return nil
}
