package isa

import (
	"testing"
	"testing/quick"
)

func TestRegNames(t *testing.T) {
	tests := []struct {
		r     Reg
		width uint8
		want  string
	}{
		{RAX, 8, "rax"},
		{RAX, 4, "eax"},
		{RAX, 1, "al"},
		{RSP, 8, "rsp"},
		{RSP, 1, "spl"},
		{RBP, 4, "ebp"},
		{R8, 8, "r8"},
		{R8, 4, "r8d"},
		{R8, 1, "r8b"},
		{R15, 8, "r15"},
		{R15, 1, "r15b"},
		{RDI, 1, "dil"},
	}
	for _, tt := range tests {
		if got := tt.r.Name(tt.width); got != tt.want {
			t.Errorf("Reg(%d).Name(%d) = %q, want %q", tt.r, tt.width, got, tt.want)
		}
	}
}

func TestRegByName(t *testing.T) {
	for i := Reg(0); i < NumRegs; i++ {
		for _, w := range []uint8{1, 4, 8} {
			name := i.Name(w)
			r, width, ok := RegByName(name)
			if !ok || r != i || width != w {
				t.Errorf("RegByName(%q) = (%v, %d, %v), want (%v, %d, true)", name, r, width, ok, i, w)
			}
		}
	}
	if _, _, ok := RegByName("xmm0"); ok {
		t.Error("RegByName accepted xmm0")
	}
	if _, _, ok := RegByName(""); ok {
		t.Error("RegByName accepted empty name")
	}
}

func TestCondInverse(t *testing.T) {
	pairs := []struct{ a, b Cond }{
		{CondE, CondNE}, {CondL, CondGE}, {CondLE, CondG},
		{CondB, CondAE}, {CondBE, CondA}, {CondO, CondNO},
		{CondS, CondNS}, {CondP, CondNP},
	}
	for _, p := range pairs {
		if p.a.Inverse() != p.b || p.b.Inverse() != p.a {
			t.Errorf("Inverse of %v/%v wrong", p.a, p.b)
		}
	}
	// Inverse is an involution over all codes.
	for c := Cond(0); c < 16; c++ {
		if c.Inverse().Inverse() != c {
			t.Errorf("Inverse not involutive for %v", c)
		}
	}
}

// TestCondInverseProperty checks, for random flag states, that exactly
// one of (cond, inverse(cond)) holds.
func TestCondInverseProperty(t *testing.T) {
	f := func(rflags uint64, cc uint8) bool {
		c := Cond(cc % 16)
		return CondHolds(c, rflags) != CondHolds(c.Inverse(), rflags)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCondHolds(t *testing.T) {
	tests := []struct {
		c      Cond
		rflags uint64
		want   bool
	}{
		{CondE, FlagZF, true},
		{CondE, 0, false},
		{CondNE, 0, true},
		{CondB, FlagCF, true},
		{CondA, 0, true},
		{CondA, FlagCF, false},
		{CondA, FlagZF, false},
		{CondBE, FlagZF, true},
		{CondL, FlagSF, true},
		{CondL, FlagSF | FlagOF, false},
		{CondL, FlagOF, true},
		{CondGE, 0, true},
		{CondG, 0, true},
		{CondG, FlagZF, false},
		{CondLE, FlagZF, true},
		{CondS, FlagSF, true},
		{CondO, FlagOF, true},
		{CondP, FlagPF, true},
		{CondNP, FlagPF, false},
	}
	for _, tt := range tests {
		if got := CondHolds(tt.c, tt.rflags); got != tt.want {
			t.Errorf("CondHolds(%v, %#x) = %v, want %v", tt.c, tt.rflags, got, tt.want)
		}
	}
}

func TestCondByName(t *testing.T) {
	tests := []struct {
		name string
		want Cond
	}{
		{"e", CondE}, {"z", CondE}, {"ne", CondNE}, {"nz", CondNE},
		{"l", CondL}, {"nge", CondL}, {"g", CondG}, {"a", CondA},
		{"ae", CondAE}, {"nb", CondAE}, {"c", CondB},
	}
	for _, tt := range tests {
		got, ok := CondByName(tt.name)
		if !ok || got != tt.want {
			t.Errorf("CondByName(%q) = (%v,%v), want %v", tt.name, got, ok, tt.want)
		}
	}
	if _, ok := CondByName("xyz"); ok {
		t.Error("CondByName accepted bogus name")
	}
}

func TestInstString(t *testing.T) {
	tests := []struct {
		in   Inst
		want string
	}{
		{NewInst(MOV, R(RAX), M(RBX, 4)), "mov rax, qword ptr [rbx+4]"},
		{NewInst(CMP, R(RBX), M(RCX, 4)), "cmp rbx, qword ptr [rcx+4]"},
		{NewInst(MOV, M(RSP, -8), R(RDI)), "mov qword ptr [rsp-8], rdi"},
		{NewInst(LEA, R(RSP), M(RSP, -128)), "lea rsp, qword ptr [rsp-128]"},
		{NewInst(PUSH, R(RBX)), "push rbx"},
		{NewInst(PUSHFQ), "pushfq"},
		{NewJcc(CondE, 12), "je .+12"},
		{NewSetcc(CondG, RCX), "setg cl"},
		{NewInst(MOV, Rb(RCX), Imm8(0)), "mov cl, 0"},
		{NewInst(MOV, R(RAX), Imm(60)), "mov rax, 60"},
		{NewInst(SYSCALL), "syscall"},
		{NewInst(MOV, R(RAX), MRIP(256)), "mov rax, qword ptr [rip+256]"},
		{NewInst(MOV, R(RAX), MSIB(RBX, RCX, 8, -4)), "mov rax, qword ptr [rbx+rcx*8-4]"},
		{NewInst(CMP, M8(R13, 0), Imm8(1)), "cmp byte ptr [r13], 1"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestUsesReg(t *testing.T) {
	in := NewInst(MOV, R(RAX), MSIB(RBX, RCX, 2, 0))
	for _, r := range []Reg{RAX, RBX, RCX} {
		if !in.UsesReg(r) {
			t.Errorf("UsesReg(%v) = false, want true", r)
		}
	}
	if in.UsesReg(RDX) {
		t.Error("UsesReg(rdx) = true, want false")
	}
}

func TestMemOperand(t *testing.T) {
	in := NewInst(MOV, R(RAX), M(RBX, 8))
	if m := in.MemOperand(); m == nil || m.Mem.Base != RBX {
		t.Fatalf("MemOperand = %v, want [rbx+8]", m)
	}
	in2 := NewInst(MOV, R(RAX), R(RBX))
	if m := in2.MemOperand(); m != nil {
		t.Fatalf("MemOperand on reg-reg = %v, want nil", m)
	}
	in3 := NewInst(MOV, M(RDI, 0), R(RAX))
	if m := in3.MemOperand(); m == nil || m.Mem.Base != RDI {
		t.Fatalf("MemOperand = %v, want [rdi]", m)
	}
}

func TestOpQueries(t *testing.T) {
	if !JMP.IsBranch() || !JCC.IsBranch() || !CALL.IsBranch() {
		t.Error("branch ops not recognized")
	}
	if RET.IsBranch() || MOV.IsBranch() {
		t.Error("non-branch recognized as branch")
	}
	for op := ADD; op <= CMP; op++ {
		if !op.IsALU() {
			t.Errorf("%v not ALU", op)
		}
	}
	if MOV.IsALU() || TEST.IsALU() {
		t.Error("non-ALU op recognized as ALU")
	}
	if CMP.ALUDigit() != 7 || ADD.ALUDigit() != 0 || XOR.ALUDigit() != 6 {
		t.Error("ALU digits wrong")
	}
}

func TestMnemonic(t *testing.T) {
	if got := NewJcc(CondNE, 0).Mnemonic(); got != "jne" {
		t.Errorf("Mnemonic = %q, want jne", got)
	}
	if got := NewSetcc(CondLE, RAX).Mnemonic(); got != "setle" {
		t.Errorf("Mnemonic = %q, want setle", got)
	}
	if got := NewInst(PUSHFQ).Mnemonic(); got != "pushfq" {
		t.Errorf("Mnemonic = %q, want pushfq", got)
	}
}
