// Package isa models the x86-64 instruction subset used throughout the
// rewrite-to-reinforce toolchain: registers, condition codes, operands,
// and the Inst type shared by the encoder, decoder, assembler, emulator,
// binary IR, and lifter.
//
// The subset is real x86-64: REX prefixes, ModRM/SIB addressing,
// RIP-relative data access, and standard RFLAGS semantics. Keeping the
// encodings bit-exact matters because the paper's "single bit flip"
// fault model mutates instruction bytes; a flipped bit must re-decode to
// a different (or invalid) instruction exactly as it would on hardware.
package isa

import "fmt"

// Reg identifies a general-purpose register by its hardware number
// (RAX=0 ... R15=15, the encoding used in ModRM/SIB/REX fields).
// The operand width is carried by the Operand, not the register.
type Reg uint8

// General purpose registers in x86-64 hardware encoding order.
const (
	RAX Reg = iota
	RCX
	RDX
	RBX
	RSP
	RBP
	RSI
	RDI
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15

	// NoReg marks an absent base or index register in a memory operand.
	NoReg Reg = 0xFF
)

// NumRegs is the number of addressable general-purpose registers.
const NumRegs = 16

var regNames64 = [NumRegs]string{
	"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
	"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
}

var regNames32 = [NumRegs]string{
	"eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi",
	"r8d", "r9d", "r10d", "r11d", "r12d", "r13d", "r14d", "r15d",
}

var regNames8 = [NumRegs]string{
	"al", "cl", "dl", "bl", "spl", "bpl", "sil", "dil",
	"r8b", "r9b", "r10b", "r11b", "r12b", "r13b", "r14b", "r15b",
}

// Valid reports whether r names one of the sixteen GPRs.
func (r Reg) Valid() bool { return r < NumRegs }

// Name returns the conventional register name at the given width in
// bytes (1, 4 or 8). Unknown widths fall back to the 64-bit name.
func (r Reg) Name(width uint8) string {
	if !r.Valid() {
		return fmt.Sprintf("reg?%d", uint8(r))
	}
	switch width {
	case 1:
		return regNames8[r]
	case 4:
		return regNames32[r]
	default:
		return regNames64[r]
	}
}

// String returns the 64-bit name of the register.
func (r Reg) String() string { return r.Name(8) }

// RegByName resolves a register name of any supported width. The second
// return value is the operand width in bytes implied by the name
// (8 for "rax", 4 for "eax", 1 for "al"); ok is false if the name is not
// a register.
func RegByName(name string) (r Reg, width uint8, ok bool) {
	for i := 0; i < NumRegs; i++ {
		switch name {
		case regNames64[i]:
			return Reg(i), 8, true
		case regNames32[i]:
			return Reg(i), 4, true
		case regNames8[i]:
			return Reg(i), 1, true
		}
	}
	return NoReg, 0, false
}
