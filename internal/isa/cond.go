package isa

import "fmt"

// Cond is an x86 condition code, numbered exactly as in the hardware
// encoding (the low nibble of the 0F 8x / 0F 9x opcodes and of the
// short-form 7x jumps). Jcc, SETcc and the conditional-branch hardening
// pass all use this type.
type Cond uint8

// Condition codes in hardware encoding order.
const (
	CondO  Cond = 0x0 // overflow          (OF=1)
	CondNO Cond = 0x1 // not overflow      (OF=0)
	CondB  Cond = 0x2 // below             (CF=1)
	CondAE Cond = 0x3 // above or equal    (CF=0)
	CondE  Cond = 0x4 // equal             (ZF=1)
	CondNE Cond = 0x5 // not equal         (ZF=0)
	CondBE Cond = 0x6 // below or equal    (CF=1 or ZF=1)
	CondA  Cond = 0x7 // above             (CF=0 and ZF=0)
	CondS  Cond = 0x8 // sign              (SF=1)
	CondNS Cond = 0x9 // not sign          (SF=0)
	CondP  Cond = 0xA // parity            (PF=1)
	CondNP Cond = 0xB // not parity        (PF=0)
	CondL  Cond = 0xC // less              (SF!=OF)
	CondGE Cond = 0xD // greater or equal  (SF=OF)
	CondLE Cond = 0xE // less or equal     (ZF=1 or SF!=OF)
	CondG  Cond = 0xF // greater           (ZF=0 and SF=OF)

	// NoCond marks instructions that carry no condition.
	NoCond Cond = 0xFF
)

var condNames = [16]string{
	"o", "no", "b", "ae", "e", "ne", "be", "a",
	"s", "ns", "p", "np", "l", "ge", "le", "g",
}

// Valid reports whether c is one of the sixteen condition codes.
func (c Cond) Valid() bool { return c < 16 }

// String returns the condition suffix ("e", "ne", "le", ...).
func (c Cond) String() string {
	if !c.Valid() {
		return "?"
	}
	return condNames[c]
}

// Inverse returns the negated condition (e <-> ne, l <-> ge, ...).
// Hardware encodes inverse pairs as adjacent codes, so this is just a
// low-bit toggle.
func (c Cond) Inverse() Cond {
	if !c.Valid() {
		return c
	}
	return c ^ 1
}

// CondByName resolves a condition suffix to its code.
func CondByName(name string) (Cond, bool) {
	for i, n := range condNames {
		if n == name {
			return Cond(i), true
		}
	}
	// Common aliases.
	switch name {
	case "z":
		return CondE, true
	case "nz":
		return CondNE, true
	case "c":
		return CondB, true
	case "nc":
		return CondAE, true
	case "nge":
		return CondL, true
	case "nl":
		return CondGE, true
	case "ng":
		return CondLE, true
	case "nle":
		return CondG, true
	case "nae":
		return CondB, true
	case "nb":
		return CondAE, true
	case "na":
		return CondBE, true
	case "nbe":
		return CondA, true
	}
	return NoCond, false
}

// RFLAGS bit positions (the architectural layout pushed by PUSHFQ).
const (
	FlagCF uint64 = 1 << 0  // carry
	FlagPF uint64 = 1 << 2  // parity
	FlagAF uint64 = 1 << 4  // adjust
	FlagZF uint64 = 1 << 6  // zero
	FlagSF uint64 = 1 << 7  // sign
	FlagTF uint64 = 1 << 8  // trap (unused here)
	FlagIF uint64 = 1 << 9  // interrupt enable (always 1 in user code)
	FlagDF uint64 = 1 << 10 // direction (unused here)
	FlagOF uint64 = 1 << 11 // overflow

	// FlagsFixed is the always-set reserved bit 1 plus IF, the value a
	// user-mode PUSHFQ observes on Linux with no arithmetic flags set.
	FlagsFixed uint64 = 1<<1 | FlagIF

	// FlagsArithMask selects the six arithmetic flags.
	FlagsArithMask uint64 = FlagCF | FlagPF | FlagAF | FlagZF | FlagSF | FlagOF
)

// CondHolds evaluates condition c against an RFLAGS value, following
// the architectural definitions.
func CondHolds(c Cond, rflags uint64) bool {
	cf := rflags&FlagCF != 0
	pf := rflags&FlagPF != 0
	zf := rflags&FlagZF != 0
	sf := rflags&FlagSF != 0
	of := rflags&FlagOF != 0
	switch c {
	case CondO:
		return of
	case CondNO:
		return !of
	case CondB:
		return cf
	case CondAE:
		return !cf
	case CondE:
		return zf
	case CondNE:
		return !zf
	case CondBE:
		return cf || zf
	case CondA:
		return !cf && !zf
	case CondS:
		return sf
	case CondNS:
		return !sf
	case CondP:
		return pf
	case CondNP:
		return !pf
	case CondL:
		return sf != of
	case CondGE:
		return sf == of
	case CondLE:
		return zf || sf != of
	case CondG:
		return !zf && sf == of
	default:
		panic(fmt.Sprintf("isa: CondHolds on invalid condition %d", uint8(c)))
	}
}
