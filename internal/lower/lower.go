// Package lower translates IR modules back into x86-64 executables: the
// "llc" step of the Hybrid pipeline (paper §IV-C3).
//
// The code generator is deliberately simple and predictable:
//
//   - virtual CPU cells live in a dedicated writable section; register
//     R15 holds its base address for the whole program;
//   - every IR value gets a stack slot in the frame of its function;
//     RAX/RCX/RDX are scratch;
//   - two peepholes keep the size overhead in the regime the paper
//     reports for Rev.ng-based rewriting: compare/branch fusion (an
//     icmp whose only consumer is its block's br lowers to cmp+jcc) and
//     an accumulator cache that elides reloads of the value just
//     computed. Both can be disabled for the ablation benchmarks.
//
// The generated program is a real static binary for this toolchain's
// emulator, so the faulter can attack hardened Hybrid outputs exactly
// like the originals.
package lower

import (
	"errors"
	"fmt"
	"strings"

	"github.com/r2r/reinforce/internal/asm"
	"github.com/r2r/reinforce/internal/elf"
	"github.com/r2r/reinforce/internal/emu"
	"github.com/r2r/reinforce/internal/ir"
	"github.com/r2r/reinforce/internal/lift"
)

// Options tune the code generator.
type Options struct {
	// DisableFusion turns off compare/branch fusion (ablation).
	DisableFusion bool
	// DisableAccCache turns off the accumulator reuse peephole
	// (ablation).
	DisableAccCache bool
}

// Result of a lowering.
type Result struct {
	Binary *elf.Binary
	Asm    string // generated assembly (for inspection)

	VCPUBase uint64
}

// Errors.
var (
	ErrUnsupported = errors.New("lower: unsupported IR construct")
)

// cellSlotSize is the storage stride for one cell.
const cellSlotSize = 8

// Lower generates a runnable binary from a lifted (and possibly
// transformed) module.
func Lower(lr *lift.Result, opt Options) (*Result, error) {
	m := lr.Module
	if err := ir.Verify(m); err != nil {
		return nil, fmt.Errorf("lower: %w", err)
	}

	// Place the vcpu section after every existing section.
	var maxEnd uint64
	for _, s := range lr.Data {
		if end := s.Addr + s.Size(); end > maxEnd {
			maxEnd = end
		}
	}
	vcpuBase := (maxEnd + 0xFFFF) &^ 0xFFF
	if vcpuBase < 0x7E0000 {
		vcpuBase = 0x7E0000
	}

	g := &gen{
		mod:      m,
		opt:      opt,
		vcpuBase: vcpuBase,
		cellOff:  make(map[string]int32),
	}
	for i, c := range m.Cells {
		g.cellOff[c.Name] = int32(i * cellSlotSize)
	}
	g.writtenCells = map[string]bool{"rsp": true, "rax": true} // shim + syscall returns
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Insts {
				if in.Op == ir.OpCellWrite {
					g.writtenCells[in.Cell] = true
				}
			}
		}
	}

	src, err := g.generate()
	if err != nil {
		return nil, err
	}

	bin, err := asm.Assemble(src, &asm.Options{
		TextBase:   lr.TextBase,
		RodataBase: 0x4F0000, // unused by generated code
		DataBase:   0x4F8000, // unused by generated code
		BSSBase:    0x4FC000, // unused by generated code
		Entry:      "_start",
	})
	if err != nil {
		return nil, fmt.Errorf("lower: assembling generated code: %w\n%s", err, src)
	}

	// Attach the original data sections and the vcpu block.
	for _, s := range lr.Data {
		bin.Sections = append(bin.Sections, s)
	}
	vcpuSize := uint64(len(m.Cells)*cellSlotSize + cellSlotSize)
	bin.Sections = append(bin.Sections, &elf.Section{
		Name:    ".vcpu",
		Addr:    vcpuBase,
		MemSize: vcpuSize,
		Flags:   elf.FlagRead | elf.FlagWrite,
	})
	if err := bin.Validate(); err != nil {
		return nil, fmt.Errorf("lower: %w", err)
	}
	return &Result{Binary: bin, Asm: src, VCPUBase: vcpuBase}, nil
}

// gen is the per-module code generator state.
type gen struct {
	mod      *ir.Module
	opt      Options
	vcpuBase uint64
	cellOff  map[string]int32

	sb    strings.Builder
	seq   int // local label counter
	fnTag string

	// Per-function line buffer for the dead-store post-pass: every
	// emitted line, with stores to value slots tagged by slot offset so
	// stores whose slot is never loaded can be dropped.
	lines      []string
	storeSlots []int32 // parallel to lines; 0 = not a slot store
	loadedSlot map[int32]bool

	// slots: value id -> frame offset (per function).
	slotOf map[int]int32
	frame  int32

	// accumulator cache: the instruction whose result currently sits
	// in RAX, or nil.
	acc *ir.Instr

	// fused icmp instructions (lowered into their br).
	fused map[*ir.Instr]bool

	// writtenCells marks cells the module writes at least once; the
	// rest always read as zero.
	writtenCells map[string]bool
}

func (g *gen) emit(format string, args ...any) {
	g.lines = append(g.lines, fmt.Sprintf(format, args...))
	g.storeSlots = append(g.storeSlots, 0)
}

// emitSlotStore emits a spill of RAX into a value slot, tagged for the
// dead-store post-pass.
func (g *gen) emitSlotStore(slot int32) {
	g.lines = append(g.lines, fmt.Sprintf("\tmov [rbp-%d], rax", slot))
	g.storeSlots = append(g.storeSlots, slot)
}

// markSlotLoaded records that a slot's value is actually read.
func (g *gen) markSlotLoaded(slot int32) {
	if g.loadedSlot == nil {
		g.loadedSlot = make(map[int32]bool)
	}
	g.loadedSlot[slot] = true
}

// flushLines appends the buffered function body to the output, dropping
// stores to slots that are never loaded (the accumulator cache satisfies
// most single-use values, leaving their spills dead).
func (g *gen) flushLines() {
	for i, line := range g.lines {
		if s := g.storeSlots[i]; s != 0 && !g.loadedSlot[s] {
			continue
		}
		g.sb.WriteString(line)
		g.sb.WriteByte('\n')
	}
	g.lines = g.lines[:0]
	g.storeSlots = g.storeSlots[:0]
	g.loadedSlot = nil
}

func (g *gen) label() string {
	g.seq++
	return fmt.Sprintf(".Lx%d", g.seq)
}

// blockLabel returns the assembly label of a block.
func (g *gen) blockLabel(f *ir.Function, b *ir.Block) string {
	return fmt.Sprintf("fn_%s__%s", mangle(f.Name), mangle(b.Name))
}

func mangle(s string) string {
	var out strings.Builder
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			out.WriteRune(c)
		default:
			out.WriteByte('_')
		}
	}
	return out.String()
}

// generate produces the whole assembly source.
func (g *gen) generate() (string, error) {
	g.emit(".text")
	g.emit("_start:")
	// Initialize the virtual stack pointer cell to the value the
	// loader would hand the original program, then drop the real stack
	// pointer well below it so virtual and native frames cannot meet.
	g.emit("\tmov r15, %d", g.vcpuBase)
	if off, ok := g.cellOff["rsp"]; ok {
		g.emit("\tmov rax, %d", emu.DefaultStackTop-64)
		g.emit("\tmov [r15+%d], rax", off)
	}
	g.emit("\tsub rsp, %d", 1<<20)
	g.emit("\tcall fn_%s", mangle(g.mod.EntryFunc))
	// If the entry function returns (it normally exits via syscall),
	// exit cleanly.
	g.emit("\tmov rax, 60")
	g.emit("\txor rdi, rdi")
	g.emit("\tsyscall")
	g.emit("__faultresp:")
	// Same fault-response the patcher injects: FAULT\n on stderr,
	// exit 42.
	g.emit("\tmov rax, %d", 0x0A544C554146)
	g.emit("\tpush rax")
	g.emit("\tmov rax, 1")
	g.emit("\tmov rdi, 2")
	g.emit("\tmov rsi, rsp")
	g.emit("\tmov rdx, 6")
	g.emit("\tsyscall")
	g.emit("\tmov rax, 60")
	g.emit("\tmov rdi, 42")
	g.emit("\tsyscall")

	for _, f := range g.mod.Funcs {
		if err := g.genFunc(f); err != nil {
			return "", err
		}
	}
	return g.sb.String(), nil
}

// genFunc lowers one function.
func (g *gen) genFunc(f *ir.Function) error {
	g.fnTag = "fn_" + mangle(f.Name)
	g.slotOf = make(map[int]int32)
	g.fused = make(map[*ir.Instr]bool)

	// Assign slots to all value-producing instructions.
	g.frame = 0
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			if in.Type() != ir.Void {
				g.frame += 8
				g.slotOf[instID(in)] = g.frame
			}
		}
	}
	if g.frame%16 != 0 {
		g.frame += 16 - g.frame%16
	}

	// Identify fusable compare/branch pairs: an icmp (optionally
	// wrapped in an i1 `xor ..., 1` negation, the lifter's "not")
	// consumed only by the block's terminating br.
	if !g.opt.DisableFusion {
		for _, b := range f.Blocks {
			term := b.Terminator()
			if term == nil || term.Op != ir.OpBr {
				continue
			}
			icmp, _, chain := fuseCandidate(b, term)
			if icmp == nil {
				continue
			}
			ok := true
			for _, link := range chain {
				if countUses(b, link) != 1 {
					ok = false
					break
				}
			}
			if ok {
				for _, link := range chain {
					g.fused[link] = true
				}
			}
		}
	}

	g.emit("%s:", g.fnTag)
	g.emit("\tpush rbp")
	g.emit("\tmov rbp, rsp")
	if g.frame > 0 {
		g.emit("\tsub rsp, %d", g.frame)
	}

	for bi, b := range f.Blocks {
		// Every block gets a label (the entry's sits after the
		// prologue so loop back-edges re-enter past it).
		g.emit("%s:", g.blockLabel(f, b))
		g.acc = nil
		var next *ir.Block
		if bi+1 < len(f.Blocks) {
			next = f.Blocks[bi+1]
		}
		for _, in := range b.Insts {
			if err := g.genInst(f, b, in, next); err != nil {
				return err
			}
		}
	}
	g.flushLines()
	return nil
}

// instID is the slot key for a value-producing instruction.
func instID(in *ir.Instr) int { return in.ID() }
