package lower

import (
	"testing"

	"github.com/r2r/reinforce/internal/cases"
	"github.com/r2r/reinforce/internal/emu"
	"github.com/r2r/reinforce/internal/ir"
	"github.com/r2r/reinforce/internal/lift"
	"github.com/r2r/reinforce/internal/passes"
)

// TestThreeWayConsistency cross-checks the three execution paths of a
// hardened module — machine emulation of the original binary, the IR
// reference interpreter on the hardened module, and machine emulation of
// the lowered hardened binary — on both case studies and several
// inputs. Any divergence means one of the layers (lifter, passes,
// interpreter, code generator, emulator) disagrees about semantics.
func TestThreeWayConsistency(t *testing.T) {
	for _, c := range cases.All() {
		bin := c.MustBuild()
		lr, err := lift.Lift(bin)
		if err != nil {
			t.Fatal(err)
		}
		ps := append(passes.CleanupPipeline(),
			append([]passes.Pass{passes.BranchHarden{}}, passes.PostHardenCleanup()...)...)
		if err := passes.Run(lr.Module, ps...); err != nil {
			t.Fatal(err)
		}
		low, err := Lower(lr, Options{})
		if err != nil {
			t.Fatal(err)
		}

		inputs := [][]byte{c.Good, c.Bad, nil}
		half := c.Good[:len(c.Good)/2]
		inputs = append(inputs, half)

		for _, input := range inputs {
			mres, merr := emu.New(bin, emu.Config{Stdin: input}).Run()
			if merr != nil {
				t.Fatalf("%s: original crashed: %v", c.Name, merr)
			}
			ires, ierr := ir.Exec(lr.Module, ir.ExecConfig{Stdin: input, Sections: lr.Data})
			if ierr != nil {
				t.Fatalf("%s: IR interpreter: %v", c.Name, ierr)
			}
			lres, lerr := emu.New(low.Binary, emu.Config{Stdin: input, StepLimit: 32 << 20}).Run()
			if lerr != nil {
				t.Fatalf("%s: lowered binary crashed: %v", c.Name, lerr)
			}

			if mres.ExitCode != ires.ExitCode || string(mres.Stdout) != string(ires.Stdout) {
				t.Errorf("%s input %q: machine (%q,%d) vs IR (%q,%d)",
					c.Name, input, mres.Stdout, mres.ExitCode, ires.Stdout, ires.ExitCode)
			}
			if ires.ExitCode != lres.ExitCode || string(ires.Stdout) != string(lres.Stdout) {
				t.Errorf("%s input %q: IR (%q,%d) vs lowered (%q,%d)",
					c.Name, input, ires.Stdout, ires.ExitCode, lres.Stdout, lres.ExitCode)
			}
			if ires.Faulted {
				t.Errorf("%s input %q: IR fault response fired on a clean run", c.Name, input)
			}
		}
	}
}
