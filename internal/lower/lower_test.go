package lower

import (
	"strings"
	"testing"

	"github.com/r2r/reinforce/internal/asm"
	"github.com/r2r/reinforce/internal/elf"
	"github.com/r2r/reinforce/internal/emu"
	"github.com/r2r/reinforce/internal/lift"
	"github.com/r2r/reinforce/internal/passes"
)

func build(t *testing.T, src string) *elf.Binary {
	t.Helper()
	bin, err := asm.Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

// roundTrip lifts and lowers a binary, returning the new binary.
func roundTrip(t *testing.T, bin *elf.Binary, ps []passes.Pass, opt Options) *elf.Binary {
	t.Helper()
	lr, err := lift.Lift(bin)
	if err != nil {
		t.Fatalf("lift: %v", err)
	}
	if len(ps) > 0 {
		if err := passes.Run(lr.Module, ps...); err != nil {
			t.Fatalf("passes: %v", err)
		}
	}
	res, err := Lower(lr, opt)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return res.Binary
}

// diffRun compares original and round-tripped behaviour.
func diffRun(t *testing.T, orig, lowered *elf.Binary, inputs [][]byte) {
	t.Helper()
	for _, input := range inputs {
		r1, e1 := emu.New(orig, emu.Config{Stdin: input}).Run()
		r2, e2 := emu.New(lowered, emu.Config{Stdin: input, StepLimit: 16 << 20}).Run()
		if e1 != nil {
			t.Fatalf("original crashed: %v", e1)
		}
		if e2 != nil {
			t.Fatalf("input %q: lowered binary crashed: %v", input, e2)
		}
		if r1.ExitCode != r2.ExitCode || string(r1.Stdout) != string(r2.Stdout) {
			t.Errorf("input %q: (%q,%d) vs lowered (%q,%d)",
				input, r1.Stdout, r1.ExitCode, r2.Stdout, r2.ExitCode)
		}
	}
}

const pincheckSrc = `
.text
_start:
	mov rax, 0
	mov rdi, 0
	lea rsi, [rip+buf]
	mov rdx, 8
	syscall
	mov rax, [rip+buf]
	mov rbx, [rip+pin]
	cmp rax, rbx
	jne deny
grant:
	mov rax, 1
	mov rdi, 1
	lea rsi, [rip+ok]
	mov rdx, 8
	syscall
	mov rax, 60
	mov rdi, 0
	syscall
deny:
	mov rax, 1
	mov rdi, 1
	lea rsi, [rip+no]
	mov rdx, 7
	syscall
	mov rax, 60
	mov rdi, 1
	syscall
.rodata
pin: .ascii "1234ABCD"
ok:  .ascii "GRANTED\n"
no:  .ascii "DENIED\n"
.bss
buf: .zero 8
`

var pinInputs = [][]byte{
	[]byte("1234ABCD"), []byte("00000000"), []byte(""), []byte("1234ABCX"),
}

func TestLowerPincheckPlain(t *testing.T) {
	orig := build(t, pincheckSrc)
	lowered := roundTrip(t, orig, nil, Options{})
	diffRun(t, orig, lowered, pinInputs)
}

func TestLowerPincheckCleaned(t *testing.T) {
	orig := build(t, pincheckSrc)
	lowered := roundTrip(t, orig, passes.CleanupPipeline(), Options{})
	diffRun(t, orig, lowered, pinInputs)
	// Cleanup must shrink the output substantially.
	plain := roundTrip(t, orig, nil, Options{})
	if lowered.CodeSize() >= plain.CodeSize() {
		t.Errorf("cleanup did not shrink lowered code: %d vs %d",
			lowered.CodeSize(), plain.CodeSize())
	}
}

func TestLowerPincheckHardened(t *testing.T) {
	orig := build(t, pincheckSrc)
	ps := append(passes.CleanupPipeline(), append([]passes.Pass{passes.BranchHarden{}}, passes.PostHardenCleanup()...)...)
	lowered := roundTrip(t, orig, ps, Options{})
	diffRun(t, orig, lowered, pinInputs)
}

func TestLowerLoops(t *testing.T) {
	src := `
.text
_start:
	mov rax, 0
	mov rdi, 0
	lea rsi, [rip+buf]
	mov rdx, 8
	syscall
	xor rax, rax
	mov rcx, 8
	lea rbx, [rip+buf]
sum:
	movzx rdx, byte ptr [rbx]
	add rax, rdx
	inc rbx
	dec rcx
	jne sum
	and rax, 0x7f
	mov rdi, rax
	mov rax, 60
	syscall
.bss
buf: .zero 8
`
	orig := build(t, src)
	lowered := roundTrip(t, orig, passes.CleanupPipeline(), Options{})
	diffRun(t, orig, lowered, [][]byte{
		{1, 2, 3, 4, 5, 6, 7, 8},
		{255, 255, 255, 255, 255, 255, 255, 255},
		{},
	})
}

func TestLowerCalls(t *testing.T) {
	src := `
.text
_start:
	mov rdi, 3
	call triple
	call triple
	mov rdi, rax
	mov rax, 60
	syscall
triple:
	mov rax, rdi
	add rax, rax
	add rax, rdi
	mov rdi, rax
	ret
`
	orig := build(t, src)
	lowered := roundTrip(t, orig, passes.CleanupPipeline(), Options{})
	diffRun(t, orig, lowered, [][]byte{nil})
}

func TestLowerVirtualStack(t *testing.T) {
	// push/pop/pushfq must work through the virtual rsp cell.
	src := `
.text
_start:
	mov rbx, 77
	push rbx
	mov rbx, 0
	pop rbx
	cmp rbx, 77
	jne bad
	cmp rbx, 77
	pushfq
	cmp rbx, 0
	popfq
	jne bad
	mov rdi, 0
	mov rax, 60
	syscall
bad:
	mov rdi, 1
	mov rax, 60
	syscall
`
	orig := build(t, src)
	lowered := roundTrip(t, orig, passes.CleanupPipeline(), Options{})
	diffRun(t, orig, lowered, [][]byte{nil})
}

func TestLowerSignedCompares(t *testing.T) {
	src := `
.text
_start:
	mov rax, 0
	mov rdi, 0
	lea rsi, [rip+buf]
	mov rdx, 1
	syscall
	movsx rax, byte ptr [rip+buf]
	cmp rax, -5
	jl low
	mov rdi, 1
	mov rax, 60
	syscall
low:
	mov rdi, 2
	mov rax, 60
	syscall
.bss
buf: .zero 1
`
	orig := build(t, src)
	lowered := roundTrip(t, orig, passes.CleanupPipeline(), Options{})
	diffRun(t, orig, lowered, [][]byte{{0x00}, {0x80}, {0xFB}, {0xFA}, {0x7F}})
}

func TestLowerAblationOptions(t *testing.T) {
	orig := build(t, pincheckSrc)
	full := roundTrip(t, orig, passes.CleanupPipeline(), Options{})
	noFuse := roundTrip(t, orig, passes.CleanupPipeline(), Options{DisableFusion: true})
	noAcc := roundTrip(t, orig, passes.CleanupPipeline(), Options{DisableAccCache: true})
	neither := roundTrip(t, orig, passes.CleanupPipeline(), Options{DisableFusion: true, DisableAccCache: true})

	for _, bin := range []*elf.Binary{noFuse, noAcc, neither} {
		diffRun(t, orig, bin, pinInputs)
	}
	if full.CodeSize() >= noFuse.CodeSize() {
		t.Errorf("fusion saves nothing: %d vs %d", full.CodeSize(), noFuse.CodeSize())
	}
	if full.CodeSize() > neither.CodeSize() {
		t.Logf("sizes: full=%d nofuse=%d noacc=%d neither=%d",
			full.CodeSize(), noFuse.CodeSize(), noAcc.CodeSize(), neither.CodeSize())
	}
}

func TestLowerEmitsVCPUSection(t *testing.T) {
	orig := build(t, pincheckSrc)
	lr, err := lift.Lift(orig)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Lower(lr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	vcpu := res.Binary.Section(".vcpu")
	if vcpu == nil {
		t.Fatal("no .vcpu section")
	}
	if vcpu.Flags&elf.FlagWrite == 0 {
		t.Error(".vcpu not writable")
	}
	for _, s := range res.Binary.Sections {
		if s.Name != ".vcpu" && s.Contains(res.VCPUBase) {
			t.Errorf(".vcpu overlaps %s", s.Name)
		}
	}
	if !strings.Contains(res.Asm, "_start:") || !strings.Contains(res.Asm, "__faultresp:") {
		t.Error("generated asm missing runtime scaffolding")
	}
}

func TestLowerOverheadRegime(t *testing.T) {
	// The Hybrid pipeline's size overhead must stay well below blanket
	// duplication (>=300%, paper §V-C) while being clearly nonzero.
	orig := build(t, pincheckSrc)
	lowered := roundTrip(t, orig, passes.CleanupPipeline(), Options{})
	ratio := float64(lowered.CodeSize()) / float64(orig.CodeSize())
	t.Logf("lift+lower code size: %d -> %d bytes (%.2fx)", orig.CodeSize(), lowered.CodeSize(), ratio)
	if ratio < 1.0 {
		t.Errorf("lowered smaller than original (%.2fx) — suspicious", ratio)
	}
	if ratio > 4.0 {
		t.Errorf("lowered %.2fx the original — exceeds the duplication baseline", ratio)
	}
}
