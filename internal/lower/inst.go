package lower

import (
	"fmt"

	"github.com/r2r/reinforce/internal/ir"
)

// loadInto emits code placing a value into the named scratch register.
func (g *gen) loadInto(reg string, v ir.Value) error {
	switch x := v.(type) {
	case *ir.Const:
		g.emit("\tmov %s, %d", reg, int64(x.Val&x.Ty.Mask()))
		return nil
	case *ir.Instr:
		if reg == "rax" && g.acc == x && !g.opt.DisableAccCache {
			return nil // already in the accumulator
		}
		slot, ok := g.slotOf[instID(x)]
		if !ok {
			return fmt.Errorf("%w: use of unslotted value %s", ErrUnsupported, x)
		}
		g.markSlotLoaded(slot)
		g.emit("\tmov %s, [rbp-%d]", reg, slot)
		return nil
	}
	return fmt.Errorf("%w: unknown value kind", ErrUnsupported)
}

// storeResult spills RAX into the instruction's slot (elided later if
// nothing ever loads it back) and updates the accumulator cache.
func (g *gen) storeResult(in *ir.Instr) {
	g.emitSlotStore(g.slotOf[instID(in)])
	g.acc = in
}

// maskAcc truncates RAX to the given type's width.
func (g *gen) maskAcc(ty ir.Type) {
	switch ty {
	case ir.I1:
		g.emit("\tand rax, 1")
	case ir.I8:
		g.emit("\tmovzx rax, al")
	case ir.I32:
		g.emit("\tmov eax, eax")
	}
}

// signExtendAcc sign-extends RAX from the type's width to 64 bits.
func (g *gen) signExtendAcc(ty ir.Type) {
	switch ty {
	case ir.I8:
		g.emit("\tmovsx rax, al")
	case ir.I32:
		g.emit("\tshl rax, 32")
		g.emit("\tsar rax, 32")
	case ir.I1:
		g.emit("\tand rax, 1")
		g.emit("\tneg rax")
	}
}

// signExtendReg sign-extends a scratch register via RAX-free shifts.
func (g *gen) signExtendReg(reg string, ty ir.Type) {
	bits := ty.Bits()
	if bits == 64 {
		return
	}
	g.emit("\tshl %s, %d", reg, 64-bits)
	g.emit("\tsar %s, %d", reg, 64-bits)
}

// cellAddr renders the memory operand of a cell.
func (g *gen) cellAddr(cell string) string {
	off, ok := g.cellOff[cell]
	if !ok {
		panic("lower: unregistered cell " + cell)
	}
	if off == 0 {
		return "[r15]"
	}
	return fmt.Sprintf("[r15+%d]", off)
}

// predJcc maps an ICmp predicate to the jcc suffix after a cmp.
var predJcc = map[ir.Pred]string{
	ir.EQ: "e", ir.NE: "ne",
	ir.ULT: "b", ir.ULE: "be", ir.UGT: "a", ir.UGE: "ae",
	ir.SLT: "l", ir.SLE: "le", ir.SGT: "g", ir.SGE: "ge",
}

// predSigned reports whether the predicate compares signed.
func predSigned(p ir.Pred) bool { return p >= ir.SLT }

// genInst lowers one IR instruction.
func (g *gen) genInst(f *ir.Function, b *ir.Block, in *ir.Instr, next *ir.Block) error {
	if g.fused[in] {
		return nil // absorbed into the block's compare/branch
	}
	switch in.Op {
	case ir.OpBin:
		return g.genBin(in)

	case ir.OpICmp:
		return g.genICmp(in)

	case ir.OpZExt:
		// Values are stored zero-extended already.
		if err := g.loadInto("rax", in.Args[0]); err != nil {
			return err
		}
		g.storeResult(in)

	case ir.OpSExt:
		if err := g.loadInto("rax", in.Args[0]); err != nil {
			return err
		}
		g.signExtendAcc(in.Args[0].Type())
		g.maskAcc(in.Ty)
		g.storeResult(in)

	case ir.OpTrunc:
		if err := g.loadInto("rax", in.Args[0]); err != nil {
			return err
		}
		g.maskAcc(in.Ty)
		g.storeResult(in)

	case ir.OpSelect:
		if err := g.loadInto("rcx", in.Args[0]); err != nil {
			return err
		}
		if err := g.loadInto("rax", in.Args[1]); err != nil {
			return err
		}
		keep := g.label()
		g.emit("\ttest rcx, rcx")
		g.emit("\tjne %s", keep)
		if err := g.loadInto("rax", in.Args[2]); err != nil {
			return err
		}
		g.emit("%s:", keep)
		g.storeResult(in)

	case ir.OpLoad:
		if err := g.loadInto("rcx", in.Args[0]); err != nil {
			return err
		}
		switch in.Ty {
		case ir.I8, ir.I1:
			g.emit("\tmovzx rax, byte ptr [rcx]")
		case ir.I32:
			g.emit("\tmov eax, dword ptr [rcx]")
		default:
			g.emit("\tmov rax, [rcx]")
		}
		if in.Ty == ir.I1 {
			g.emit("\tand rax, 1")
		}
		g.storeResult(in)

	case ir.OpStore:
		if err := g.loadInto("rax", in.Args[0]); err != nil {
			return err
		}
		if err := g.loadInto("rcx", in.Args[1]); err != nil {
			return err
		}
		switch in.Args[0].Type() {
		case ir.I8, ir.I1:
			g.emit("\tmov byte ptr [rcx], al")
		case ir.I32:
			g.emit("\tmov dword ptr [rcx], eax")
		default:
			g.emit("\tmov [rcx], rax")
		}

	case ir.OpCellRead:
		g.emit("\tmov rax, %s", g.cellAddr(in.Cell))
		g.storeResult(in)

	case ir.OpCellWrite:
		// Constant writes go straight to memory.
		if c, ok := in.Args[0].(*ir.Const); ok {
			v := int64(c.Val & c.Ty.Mask())
			if v == int64(int32(v)) {
				g.emit("\tmov qword ptr %s, %d", g.cellAddr(in.Cell), v)
				return nil
			}
		}
		if err := g.loadInto("rax", in.Args[0]); err != nil {
			return err
		}
		g.emit("\tmov %s, rax", g.cellAddr(in.Cell))
		g.acc = nil // rax still holds the value, but keep it simple

	case ir.OpCall:
		g.emit("\tcall fn_%s", mangle(in.Callee.Name))
		g.acc = nil

	case ir.OpSyscall:
		// Marshal argument cells into real registers; R15 survives.
		// Cells the module never writes always hold zero, and the
		// kernel ignores argument registers beyond a syscall's arity,
		// so those loads are skipped.
		for _, c := range []string{"rdi", "rsi", "rdx", "r10", "r8", "r9", "rax"} {
			if g.writtenCells[c] {
				g.emit("\tmov %s, %s", c, g.cellAddr(c))
			} else if c == "rax" {
				g.emit("\txor rax, rax")
			}
		}
		g.emit("\tsyscall")
		g.emit("\tmov %s, rax", g.cellAddr("rax"))
		g.acc = nil

	case ir.OpBr:
		return g.genBr(f, b, in, next)

	case ir.OpJmp:
		if in.Then != next {
			g.emit("\tjmp %s", g.blockLabel(f, in.Then))
		}

	case ir.OpRet:
		g.emit("\tmov rsp, rbp")
		g.emit("\tpop rbp")
		g.emit("\tret")

	case ir.OpHalt:
		g.emit("\thlt")

	case ir.OpFaultResp:
		g.emit("\tjmp __faultresp")

	default:
		return fmt.Errorf("%w: opcode %s", ErrUnsupported, in.MnemonicString())
	}
	return nil
}

// genBin lowers arithmetic at 64 bits, re-normalizing narrow results.
func (g *gen) genBin(in *ir.Instr) error {
	a, x := in.Args[0], in.Args[1]
	ty := in.Ty

	// Shift counts must be constants (all lifted/generated shifts are).
	if in.Bin == ir.Shl || in.Bin == ir.LShr || in.Bin == ir.AShr {
		c, ok := x.(*ir.Const)
		if !ok {
			return fmt.Errorf("%w: variable shift count", ErrUnsupported)
		}
		count := c.Val
		if err := g.loadInto("rax", a); err != nil {
			return err
		}
		bits := uint64(ty.Bits())
		switch in.Bin {
		case ir.Shl:
			if count >= bits {
				g.emit("\txor rax, rax")
			} else {
				g.emit("\tshl rax, %d", count)
			}
		case ir.LShr:
			if count >= bits {
				g.emit("\txor rax, rax")
			} else {
				g.emit("\tshr rax, %d", count) // stored zero-extended
			}
		case ir.AShr:
			sh := count
			if sh >= bits {
				sh = bits - 1
			}
			if bits < 64 {
				g.signExtendAcc(ty)
			}
			g.emit("\tsar rax, %d", sh)
		}
		g.maskAcc(ty)
		g.storeResult(in)
		return nil
	}

	// Commutative ops reuse the accumulator when the value just
	// computed is the right-hand operand.
	if in.Bin == ir.Add || in.Bin == ir.Mul || in.Bin == ir.And || in.Bin == ir.Or || in.Bin == ir.Xor {
		if xi, ok := x.(*ir.Instr); ok && g.acc == xi && !g.opt.DisableAccCache {
			a, x = x, a
		}
	}
	if err := g.loadInto("rax", a); err != nil {
		return err
	}
	// Constant RHS folds into the instruction when it fits imm32.
	if c, ok := x.(*ir.Const); ok && int64(c.Val) == int64(int32(c.Val)) && in.Bin != ir.Mul {
		imm := int64(int32(c.Val))
		switch in.Bin {
		case ir.Add:
			g.emit("\tadd rax, %d", imm)
		case ir.Sub:
			g.emit("\tsub rax, %d", imm)
		case ir.And:
			g.emit("\tand rax, %d", imm)
		case ir.Or:
			g.emit("\tor rax, %d", imm)
		case ir.Xor:
			if imm == -1 {
				g.emit("\tnot rax") // shorter encoding, same effect
			} else {
				g.emit("\txor rax, %d", imm)
			}
		}
	} else {
		if err := g.loadInto("rcx", x); err != nil {
			return err
		}
		switch in.Bin {
		case ir.Add:
			g.emit("\tadd rax, rcx")
		case ir.Sub:
			g.emit("\tsub rax, rcx")
		case ir.Mul:
			g.emit("\timul rax, rcx")
		case ir.And:
			g.emit("\tand rax, rcx")
		case ir.Or:
			g.emit("\tor rax, rcx")
		case ir.Xor:
			g.emit("\txor rax, rcx")
		}
	}
	if ty != ir.I64 {
		g.maskAcc(ty)
	}
	g.storeResult(in)
	return nil
}

// genICmp lowers a comparison to cmp + setcc.
func (g *gen) genICmp(in *ir.Instr) error {
	if err := g.emitCmp(in); err != nil {
		return err
	}
	g.emit("\tset%s al", predJcc[in.Pred])
	g.emit("\tmovzx rax, al")
	g.storeResult(in)
	return nil
}

// emitCmp emits the flag-setting comparison for an icmp.
func (g *gen) emitCmp(in *ir.Instr) error {
	ty := in.Args[0].Type()
	signed := predSigned(in.Pred) && ty != ir.I64

	// A fused single-use cellread compared against a small constant
	// becomes one memory-operand compare (the hardening pass's
	// validation chains are exactly this shape).
	if lhs, ok := cellReadCmpFusable(in, in.Block()); ok && g.fused[lhs] {
		c := in.Args[1].(*ir.Const)
		g.emit("\tcmp qword ptr %s, %d", g.cellAddr(lhs.Cell), int64(c.Val&c.Ty.Mask()))
		return nil
	}

	if err := g.loadInto("rax", in.Args[0]); err != nil {
		return err
	}
	// Constant RHS folds into the compare when it fits imm32 (after
	// compile-time extension matching the predicate's signedness).
	if c, ok := in.Args[1].(*ir.Const); ok {
		v := int64(c.Val & c.Ty.Mask()) // zero-extended
		if signed {
			v = int64(ir.SignExtendValue(c.Val, ty))
		}
		if v == int64(int32(v)) {
			if signed {
				g.signExtendAcc(ty)
				g.acc = nil
			}
			g.emit("\tcmp rax, %d", v)
			return nil
		}
	}
	if err := g.loadInto("rcx", in.Args[1]); err != nil {
		return err
	}
	if signed {
		g.signExtendAcc(ty)
		g.signExtendReg("rcx", ty)
		g.acc = nil // rax no longer holds a tracked value after sext
	}
	g.emit("\tcmp rax, rcx")
	return nil
}

// cellReadCmpFusable reports whether an icmp's LHS is a cellread that
// can be folded into a memory-operand compare (must mirror emitCmp's
// emission conditions exactly, or a skipped cellread would leave a
// garbage slot).
func cellReadCmpFusable(icmp *ir.Instr, b *ir.Block) (*ir.Instr, bool) {
	if predSigned(icmp.Pred) && icmp.Args[0].Type() != ir.I64 {
		return nil, false
	}
	lhs, ok := icmp.Args[0].(*ir.Instr)
	if !ok || lhs.Op != ir.OpCellRead || lhs.Block() != b || lhs.Ty != ir.I64 {
		return nil, false
	}
	c, ok := icmp.Args[1].(*ir.Const)
	if !ok {
		return nil, false
	}
	v := int64(c.Val & c.Ty.Mask())
	return lhs, v == int64(int32(v))
}

// fuseCandidate recognizes the icmp behind a br condition, seeing
// through one i1 negation (`xor x, 1`). It returns the icmp, whether
// the condition is inverted, and the chain of instructions the fusion
// absorbs (possibly including a cellread folded into the compare).
func fuseCandidate(b *ir.Block, term *ir.Instr) (*ir.Instr, bool, []*ir.Instr) {
	cond, ok := term.Args[0].(*ir.Instr)
	if !ok || cond.Block() != b {
		return nil, false, nil
	}
	var icmp *ir.Instr
	inverted := false
	var chain []*ir.Instr
	switch {
	case cond.Op == ir.OpICmp:
		icmp, chain = cond, []*ir.Instr{cond}
	case cond.Op == ir.OpBin && cond.Bin == ir.Xor && cond.Ty == ir.I1:
		inner, ok := cond.Args[0].(*ir.Instr)
		c, cok := cond.Args[1].(*ir.Const)
		if !ok || !cok || c.Val&1 != 1 || inner.Op != ir.OpICmp || inner.Block() != b {
			return nil, false, nil
		}
		icmp, inverted, chain = inner, true, []*ir.Instr{cond, inner}
	default:
		return nil, false, nil
	}
	if lhs, ok := cellReadCmpFusable(icmp, b); ok {
		chain = append(chain, lhs)
	}
	return icmp, inverted, chain
}

// countUses counts block-local uses of a value.
func countUses(b *ir.Block, v *ir.Instr) int {
	uses := 0
	for _, in := range b.Insts {
		for _, a := range in.Args {
			if a == ir.Value(v) {
				uses++
			}
		}
	}
	return uses
}

// genBr lowers a conditional branch, fusing a single-use icmp.
func (g *gen) genBr(f *ir.Function, b *ir.Block, in *ir.Instr, next *ir.Block) error {
	thenL := g.blockLabel(f, in.Then)
	elseL := g.blockLabel(f, in.Else)

	if cond, ok := in.Args[0].(*ir.Instr); ok && g.fused[cond] {
		icmp, inverted, _ := fuseCandidate(b, in)
		if err := g.emitCmp(icmp); err != nil {
			return err
		}
		cc := predJcc[icmp.Pred]
		if inverted {
			cc = inverseCC(cc)
		}
		if in.Else == next {
			g.emit("\tj%s %s", cc, thenL)
			return nil
		}
		if in.Then == next {
			g.emit("\tj%s %s", inverseCC(cc), elseL)
			return nil
		}
		g.emit("\tj%s %s", cc, thenL)
		g.emit("\tjmp %s", elseL)
		return nil
	}

	if err := g.loadInto("rax", in.Args[0]); err != nil {
		return err
	}
	g.emit("\ttest rax, rax")
	switch {
	case in.Else == next:
		g.emit("\tjne %s", thenL)
	case in.Then == next:
		g.emit("\tje %s", elseL)
	default:
		g.emit("\tjne %s", thenL)
		g.emit("\tjmp %s", elseL)
	}
	return nil
}

// inverseCC negates a condition-code suffix.
func inverseCC(cc string) string {
	inv := map[string]string{
		"e": "ne", "ne": "e", "b": "ae", "ae": "b", "be": "a", "a": "be",
		"l": "ge", "ge": "l", "le": "g", "g": "le", "s": "ns", "ns": "s",
		"o": "no", "no": "o", "p": "np", "np": "p",
	}
	return inv[cc]
}
