package oracle

import (
	"strings"
	"testing"

	"github.com/r2r/reinforce/internal/cases"
)

// Variant generation is deterministic in (case, n, seed) — the fuzzed
// corpus of the variants experiment must reproduce anywhere.
func TestVariantsDeterministic(t *testing.T) {
	c := cases.Pincheck()
	a := Variants(c, 3, 1)
	b := Variants(c, 3, 1)
	if len(a) != len(b) {
		t.Fatalf("regeneration changed survivor count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Source != b[i].Source {
			t.Errorf("variant %d differs across regenerations", i)
		}
	}
	other := Variants(c, 3, 2)
	same := len(other) == len(a)
	if same {
		for i := range a {
			if a[i].Source != other[i].Source {
				same = false
				break
			}
		}
	}
	if same && len(a) > 0 {
		t.Error("seeds 1 and 2 produced identical variant sets")
	}
}

// Every survivor is a real mutant (source differs from the parent, and
// from its siblings) that still honors the parent's behavioral
// contract, under the parent's name with a ~vN suffix.
func TestVariantsSurviveScreen(t *testing.T) {
	for _, c := range cases.Corpus() {
		vs := Variants(c, 2, 1)
		if len(vs) == 0 {
			t.Errorf("%s: no variants survived the screen", c.Name)
			continue
		}
		seen := map[string]bool{c.Source: true}
		for i, v := range vs {
			if !strings.HasPrefix(v.Name, c.Name+"~v") {
				t.Errorf("%s: variant name %q lacks the ~v suffix", c.Name, v.Name)
			}
			if seen[v.Source] {
				t.Errorf("%s: variant %d duplicates the parent or a sibling", c.Name, i)
			}
			seen[v.Source] = true
			bin, err := v.Build()
			if err != nil {
				t.Errorf("%s: survivor does not assemble: %v", v.Name, err)
				continue
			}
			if err := v.Check(bin); err != nil {
				t.Errorf("%s: survivor fails its own behavioral contract: %v", v.Name, err)
			}
		}
	}
}

// The screen must actually reject things, or it is vacuous: a mutation
// that rotates a byte of an output literal changes observable stdout
// and may never survive.
func TestScreenRejectsBehaviorChanges(t *testing.T) {
	c := cases.Pincheck()
	r := &splitmix64{s: 42}
	rejected := 0
	for i := 0; i < 200; i++ {
		src, ok := mutateSource(c.Source, r)
		if !ok || src == c.Source {
			continue
		}
		v := &cases.Case{
			Name: "probe", Source: src,
			Good: c.Good, Bad: c.Bad,
			GoodStdout: c.GoodStdout, BadStdout: c.BadStdout,
			GoodExit: c.GoodExit, BadExit: c.BadExit,
		}
		bin, err := v.Build()
		if err != nil {
			rejected++
			continue
		}
		if v.Check(bin) != nil {
			rejected++
		}
	}
	if rejected == 0 {
		t.Error("200 mutants and zero rejections: the behavioral screen is vacuous")
	}
}

func TestMutateSourceShapes(t *testing.T) {
	src := ".text\nstart:\n  mov rax, 1\n  cmp rax, 2\n  ret\n.rodata\nmsg:\n  .ascii \"hello\"\n"
	r := &splitmix64{s: 7}
	dups, tweaks := 0, 0
	for i := 0; i < 64; i++ {
		m, ok := mutateSource(src, r)
		if !ok {
			continue
		}
		switch {
		case strings.Count(m, "mov rax, 1") == 2 || strings.Count(m, "cmp rax, 2") == 2:
			dups++
		case !strings.Contains(m, `"hello"`):
			tweaks++
		default:
			t.Fatalf("unclassifiable mutation:\n%s", m)
		}
		if strings.Count(m, "ret") != 1 {
			t.Error("mutator duplicated a non-duplicable instruction")
		}
	}
	if dups == 0 || tweaks == 0 {
		t.Errorf("mutation mix dups=%d tweaks=%d: both shapes must occur", dups, tweaks)
	}
}
