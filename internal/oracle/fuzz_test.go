package oracle

import (
	"bytes"
	"testing"

	"github.com/r2r/reinforce/internal/cases"
)

// FuzzOracleInputs fuzzes the input-corpus generator over (count, seed):
// for any parameters the corpus must be exactly the requested size,
// deterministic across regeneration, lead with the case's accepted
// input, and stay within the generator's length envelope. Divergence
// here would make `r2r oracle` runs irreproducible.
func FuzzOracleInputs(f *testing.F) {
	f.Add(uint16(64), uint64(1))
	f.Add(uint16(1), uint64(0))
	f.Add(uint16(9), uint64(0xdeadbeef))
	f.Add(uint16(200), uint64(1<<63))
	f.Fuzz(func(t *testing.T, n uint16, seed uint64) {
		if n == 0 || n > 512 {
			t.Skip()
		}
		c := cases.Pincheck()
		a := CaseInputs(c, int(n), seed)
		b := CaseInputs(c, int(n), seed)
		if len(a) != int(n) {
			t.Fatalf("corpus size %d, want %d", len(a), n)
		}
		if len(a) != len(b) {
			t.Fatalf("regeneration changed corpus size: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if !bytes.Equal(a[i], b[i]) {
				t.Fatalf("input %d not deterministic: %x vs %x", i, a[i], b[i])
			}
		}
		if !bytes.Equal(a[0], c.Good) {
			t.Fatalf("input 0 = %x, want the accepted input %x", a[0], c.Good)
		}
		// The generator mutates over the oracle inputs' length envelope:
		// extensions add at most 8 bytes beyond it per draw chain.
		maxLen := len(c.Good)
		if len(c.Bad) > maxLen {
			maxLen = len(c.Bad)
		}
		for i, in := range a {
			if len(in) > maxLen+16 {
				t.Fatalf("input %d is %d bytes, beyond the %d-byte envelope", i, len(in), maxLen+16)
			}
		}

		g := GenericInputs(int(n), seed, 0)
		g2 := GenericInputs(int(n), seed, 0)
		if len(g) != int(n) {
			t.Fatalf("generic corpus size %d, want %d", len(g), n)
		}
		for i := range g {
			if !bytes.Equal(g[i], g2[i]) {
				t.Fatalf("generic input %d not deterministic", i)
			}
		}
	})
}
