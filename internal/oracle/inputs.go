// Input-corpus generation: the deterministic per-case input sets the
// differential oracle sweeps. Every generator is seeded — same case,
// same seed, same corpus, on any machine and at any worker count.
package oracle

import (
	"github.com/r2r/reinforce/internal/cases"
)

// CaseInputs builds the differential corpus for a case study: the
// case's own accepted and rejected inputs, a fixed set of boundary
// shapes (empty input, truncations, an extension, all-zero and all-FF
// images), then seeded adversarial mutations — single-bit flips, byte
// substitutions, truncations, extensions, and fully random buffers over
// the input length — until n distinct inputs exist. The accepted input
// always comes first, so verdict index 0 is the case's happy path.
func CaseInputs(c *cases.Case, n int, seed uint64) [][]byte {
	r := &splitmix64{s: nameSeed(c.Name, seed)}
	g := newInputSet(n)

	good, bad := c.Good, c.Bad
	g.add(good)
	g.add(bad)
	g.add(nil) // empty: the short-read/denial path
	if len(good) > 0 {
		g.add(good[:len(good)-1])      // one byte short
		g.add(good[:(len(good)+1)/2])  // half an input
		g.add(append(clone(good), 0))  // one byte long
		g.add(make([]byte, len(good))) // all zero
		ff := make([]byte, len(good))
		for i := range ff {
			ff[i] = 0xFF
		}
		g.add(ff)
	}
	if len(bad) > 0 {
		g.add(bad[:len(bad)/2])
	}

	maxLen := len(good)
	if len(bad) > maxLen {
		maxLen = len(bad)
	}
	for g.len() < n {
		base := good
		if r.intn(2) == 1 {
			base = bad
		}
		g.add(mutate(base, maxLen, r))
	}
	return g.take()
}

// GenericInputs builds a case-agnostic corpus for differencing two
// arbitrary binaries (`r2r oracle ORIG HARDENED`): boundary shapes
// first, then seeded random buffers up to maxLen bytes (0 means 64).
func GenericInputs(n int, seed uint64, maxLen int) [][]byte {
	if maxLen <= 0 {
		maxLen = 64
	}
	r := &splitmix64{s: nameSeed("generic", seed)}
	g := newInputSet(n)
	g.add(nil)
	g.add([]byte{0x00})
	g.add([]byte{0xFF})
	for _, l := range []int{8, 16, maxLen} {
		if l > maxLen {
			continue
		}
		zero := make([]byte, l)
		g.add(zero)
		ones := make([]byte, l)
		asc := make([]byte, l)
		for i := range ones {
			ones[i] = 0xFF
			asc[i] = byte(i)
		}
		g.add(ones)
		g.add(asc)
	}
	for g.len() < n {
		buf := make([]byte, r.intn(maxLen+1))
		for i := range buf {
			buf[i] = byte(r.next())
		}
		g.add(buf)
	}
	return g.take()
}

// mutate derives one adversarial input from base: bit flip, byte
// substitution, truncation, extension, or a fully random buffer.
func mutate(base []byte, maxLen int, r *splitmix64) []byte {
	if maxLen == 0 {
		maxLen = 8
	}
	switch r.intn(5) {
	case 0: // single-bit flip
		if len(base) == 0 {
			break
		}
		m := clone(base)
		m[r.intn(len(m))] ^= 1 << uint(r.intn(8))
		return m
	case 1: // byte substitution
		if len(base) == 0 {
			break
		}
		m := clone(base)
		m[r.intn(len(m))] = byte(r.next())
		return m
	case 2: // truncation
		if len(base) == 0 {
			break
		}
		return clone(base[:r.intn(len(base))])
	case 3: // extension
		m := clone(base)
		for i, n := 0, 1+r.intn(8); i < n; i++ {
			m = append(m, byte(r.next()))
		}
		return m
	}
	// fully random buffer over the input length (+ a tail margin)
	buf := make([]byte, r.intn(maxLen+9))
	for i := range buf {
		buf[i] = byte(r.next())
	}
	return buf
}

// inputSet accumulates distinct inputs up to a target count. Dedup is
// by content; a bounded number of collisions is tolerated before
// duplicates are admitted, so generation always terminates.
type inputSet struct {
	want   int
	inputs [][]byte
	seen   map[string]bool
	misses int
}

func newInputSet(n int) *inputSet {
	return &inputSet{want: n, seen: make(map[string]bool, n)}
}

func (g *inputSet) add(in []byte) {
	if len(g.inputs) >= g.want {
		return
	}
	key := string(in)
	if g.seen[key] && g.misses < 64*g.want {
		g.misses++
		return
	}
	g.seen[key] = true
	g.inputs = append(g.inputs, clone(in))
}

func (g *inputSet) len() int       { return len(g.inputs) }
func (g *inputSet) take() [][]byte { return g.inputs }

func clone(b []byte) []byte {
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}
