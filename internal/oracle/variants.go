// Fuzz-derived case variants: evaluation coverage beyond the
// hand-written catalog.
//
// A variant is a mutated build of a catalog case whose *observable
// contract is unchanged*: seeded mutations are applied to the assembly
// source (instruction duplications, which are idempotent for the pure
// data-movement and comparison instructions the mutator targets, plus
// deliberately destructive constant tweaks), the mutant is rebuilt, and
// the behavioral screen — the case's own good/bad oracle run under the
// emulator — decides survival. Mutants that fail to assemble or change
// observable behavior are discarded; survivors are real, distinct
// binaries (different code bytes, different layout, different fault
// surface) that still honor the case's accepted/rejected contract, so
// every campaign oracle applies to them unmodified. Survivors feed
// campaign.RunCorpus (experiments.TableVariants) and `r2r oracle
// -variants`.
package oracle

import (
	"fmt"
	"strings"

	"github.com/r2r/reinforce/internal/cases"
)

// variantSalt decorrelates the variant stream from the input stream of
// the same seed.
const variantSalt = 0x5eed1e55_0ddca5e5

// maxVariantAttempts bounds mutation attempts per requested survivor,
// so a case with no mutable lines terminates quickly.
const maxVariantAttempts = 24

// Variants derives up to n oracle-screened variants of a case study.
// Generation is deterministic in (case, n, seed); fewer than n variants
// are returned only when the attempt budget runs out of distinct
// survivors. Variant names are "<case>~v1", "<case>~v2", … — not
// catalog entries, but carrying the parent's full oracle so Check,
// campaigns, and the differential oracle all apply.
func Variants(c *cases.Case, n int, seed uint64) []*cases.Case {
	r := &splitmix64{s: nameSeed(c.Name, seed) ^ variantSalt}
	var out []*cases.Case
	seen := map[string]bool{c.Source: true} // never return the parent itself
	for attempts := 0; len(out) < n && attempts < maxVariantAttempts*n; attempts++ {
		src, ok := mutateSource(c.Source, r)
		if !ok || seen[src] {
			continue
		}
		seen[src] = true
		v := &cases.Case{
			Name:       fmt.Sprintf("%s~v%d", c.Name, len(out)+1),
			Source:     src,
			Good:       clone(c.Good),
			Bad:        clone(c.Bad),
			GoodStdout: c.GoodStdout,
			BadStdout:  c.BadStdout,
			GoodExit:   c.GoodExit,
			BadExit:    c.BadExit,
		}
		bin, err := v.Build()
		if err != nil {
			continue // mutant does not assemble
		}
		if v.Check(bin) != nil {
			continue // mutant changed observable behavior — screened out
		}
		out = append(out, v)
	}
	return out
}

// duplicable reports whether duplicating the instruction is idempotent
// by construction: pure data movement, address formation, and flag
// comparisons. (The screen would also catch a bad duplication; this
// just keeps the survivor rate high.)
func duplicable(mnemonic string) bool {
	switch mnemonic {
	case "mov", "lea", "cmp", "test":
		return true
	}
	return false
}

// mutateSource applies one seeded mutation to the assembly source and
// reports whether a mutation site existed. Most draws duplicate a
// duplicable .text instruction (likely survivor); a minority rotate a
// byte of an .ascii literal (likely screened out — the rejection path
// must see traffic too, or the screen is vacuous).
func mutateSource(src string, r *splitmix64) (string, bool) {
	lines := strings.Split(src, "\n")

	var instLines, asciiLines []int
	inText := false
	for i, raw := range lines {
		line := raw
		if c := strings.IndexByte(line, ';'); c >= 0 {
			line = line[:c]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Directives may carry a leading label ("msg: .ascii ...").
		// Labelled lines are never duplication sites — the copy would
		// redefine the label.
		labelled := false
		if f := strings.Fields(line); strings.HasSuffix(f[0], ":") {
			labelled = true
			line = strings.TrimSpace(line[len(f[0]):])
			if line == "" {
				continue // bare label
			}
		}
		if strings.HasPrefix(line, ".") {
			switch strings.Fields(line)[0] {
			case ".text":
				inText = true
			case ".rodata", ".data", ".bss":
				inText = false
			}
			if strings.HasPrefix(line, ".ascii") {
				asciiLines = append(asciiLines, i)
			}
			continue
		}
		if inText && !labelled && duplicable(strings.Fields(line)[0]) {
			instLines = append(instLines, i)
		}
	}

	// 3-in-4 draws duplicate an instruction; 1-in-4 tweak a literal.
	if r.intn(4) < 3 && len(instLines) > 0 {
		at := instLines[r.intn(len(instLines))]
		dup := append([]string(nil), lines[:at+1]...)
		dup = append(dup, lines[at])
		dup = append(dup, lines[at+1:]...)
		return strings.Join(dup, "\n"), true
	}
	if len(asciiLines) > 0 {
		at := asciiLines[r.intn(len(asciiLines))]
		if mutated, ok := rotateASCII(lines[at], r); ok {
			lines[at] = mutated
			return strings.Join(lines, "\n"), true
		}
	}
	return "", false
}

// rotateASCII rotates one inner character of an .ascii "..." literal to
// the next printable character.
func rotateASCII(line string, r *splitmix64) (string, bool) {
	open := strings.IndexByte(line, '"')
	close := strings.LastIndexByte(line, '"')
	if open < 0 || close <= open+1 {
		return "", false
	}
	body := []byte(line[open+1 : close])
	// Pick a plain printable byte (leave escapes like \n alone).
	for try := 0; try < 8; try++ {
		i := r.intn(len(body))
		if body[i] >= ' ' && body[i] < '~' && body[i] != '\\' && body[i] != '"' {
			body[i]++
			return line[:open+1] + string(body) + line[close:], true
		}
	}
	return "", false
}
