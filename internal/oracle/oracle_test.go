package oracle

import (
	"reflect"
	"strings"
	"testing"

	"github.com/r2r/reinforce/internal/cases"
)

// TestCatalogEquivalence is the PR's acceptance criterion: for every
// registered case study, the hybrid-hardened binary is observationally
// equivalent to the original across at least 64 generated inputs —
// zero divergences, and the report is bit-identical whether the
// differential runs on one worker or eight.
func TestCatalogEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full catalog differential in -short")
	}
	for _, c := range cases.Corpus() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			orig, err := c.Build()
			if err != nil {
				t.Fatal(err)
			}
			hard, err := Harden(c, PipelineHybrid)
			if err != nil {
				t.Fatal(err)
			}
			inputs := CaseInputs(c, 64, 1)
			if len(inputs) != 64 {
				t.Fatalf("generated %d inputs, want 64", len(inputs))
			}
			rep1 := Diff(orig, hard, inputs, Options{Workers: 1})
			if !rep1.Equivalent() {
				t.Fatalf("hardened %s diverges on %d/%d inputs; first: %+v",
					c.Name, rep1.Divergences, rep1.Inputs, rep1.Divergent[0])
			}
			rep8 := Diff(orig, hard, inputs, Options{Workers: 8})
			if !reflect.DeepEqual(rep1, rep8) {
				t.Errorf("report differs between 1 and 8 workers:\n1: %+v\n8: %+v", rep1, rep8)
			}
		})
	}
}

// The oracle must be able to say no: differencing the pincheck original
// against a behaviorally different binary (the bootloader) reports
// divergences with the first differing field identified.
func TestDiffDetectsDivergence(t *testing.T) {
	pc := cases.Pincheck()
	orig, err := pc.Build()
	if err != nil {
		t.Fatal(err)
	}
	other, err := cases.Bootloader().Build()
	if err != nil {
		t.Fatal(err)
	}
	rep := Diff(orig, other, CaseInputs(pc, 16, 1), Options{Workers: 2})
	if rep.Equivalent() {
		t.Fatal("oracle found pincheck and bootloader equivalent")
	}
	if len(rep.Divergent) == 0 {
		t.Fatal("divergences counted but not itemized")
	}
	d := rep.Divergent[0]
	if d.Field == "" || d.Original == d.Hardened {
		t.Errorf("divergence lacks a discriminating field: %+v", d)
	}
	if d.Index < 0 || d.Index >= rep.Inputs {
		t.Errorf("divergence index %d out of range [0,%d)", d.Index, rep.Inputs)
	}
}

// A binary differenced against itself is equivalent on any corpus —
// the oracle's false-positive floor.
func TestDiffSelfEquivalence(t *testing.T) {
	c := cases.Pincheck()
	bin, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	rep := Diff(bin, bin, CaseInputs(c, 32, 7), Options{})
	if !rep.Equivalent() {
		t.Fatalf("self-diff diverges: %+v", rep.Divergent)
	}
}

// The itemized list truncates at maxDivergent but the count stays full.
func TestReportTruncation(t *testing.T) {
	orig, err := cases.Pincheck().Build()
	if err != nil {
		t.Fatal(err)
	}
	other, err := cases.Bootloader().Build()
	if err != nil {
		t.Fatal(err)
	}
	n := maxDivergent + 8
	rep := Diff(orig, other, CaseInputs(cases.Pincheck(), n, 1), Options{})
	if rep.Divergences <= maxDivergent {
		t.Skipf("only %d divergences; need more than %d to exercise truncation", rep.Divergences, maxDivergent)
	}
	if len(rep.Divergent) != maxDivergent || !rep.Truncated {
		t.Errorf("itemized %d divergences (truncated=%v), want %d itemized and truncated",
			len(rep.Divergent), rep.Truncated, maxDivergent)
	}
}

func TestCompareOrder(t *testing.T) {
	base := behavior{exit: 0, stdout: "ok", stderr: ""}
	crash := behavior{crashed: true, crash: "page fault", stdout: "ok"}
	cases := []struct {
		name  string
		o, h  behavior
		field string
	}{
		{"equal", base, base, ""},
		{"crash beats exit", crash, behavior{exit: 3, stdout: "ok"}, "crash"},
		{"crash class", crash, behavior{crashed: true, crash: "step limit", stdout: "ok"}, "crash"},
		{"exit beats stdout", base, behavior{exit: 1, stdout: "no"}, "exit"},
		{"stdout beats stderr", base, behavior{exit: 0, stdout: "no", stderr: "x"}, "stdout"},
		{"stderr last", base, behavior{exit: 0, stdout: "ok", stderr: "x"}, "stderr"},
		// Two identical crashes compare stdout — the exit code of a
		// crashed run is noise and must not be compared.
		{"crashed exits ignored", crash, behavior{crashed: true, crash: "page fault", exit: 9, stdout: "ok"}, ""},
	}
	for _, tc := range cases {
		d := compare(0, nil, tc.o, tc.h)
		got := ""
		if d != nil {
			got = d.Field
		}
		if got != tc.field {
			t.Errorf("%s: field = %q, want %q", tc.name, got, tc.field)
		}
	}
}

func TestRunCase(t *testing.T) {
	rep, err := RunCase(cases.Pincheck(), PipelineHybrid, 16, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Case != "pincheck" || rep.Pipeline != PipelineHybrid {
		t.Errorf("report identity = %s/%s", rep.Case, rep.Pipeline)
	}
	if rep.Inputs != 16 || rep.Divergences != 0 {
		t.Errorf("report = %d inputs, %d divergences; want 16, 0", rep.Inputs, rep.Divergences)
	}
	if len(rep.HardenedDigest) != 64 {
		t.Errorf("hardened digest %q is not a sha256 hex string", rep.HardenedDigest)
	}
}

func TestHardenUnknownPipeline(t *testing.T) {
	_, err := Harden(cases.Pincheck(), "nonsense")
	if err == nil || !strings.Contains(err.Error(), "unknown pipeline") {
		t.Errorf("Harden(nonsense) = %v, want unknown-pipeline error", err)
	}
}

func TestHardenPatchPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("patch pipeline in -short")
	}
	c := cases.Pincheck()
	orig, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	hard, err := Harden(c, PipelinePatch)
	if err != nil {
		t.Fatal(err)
	}
	rep := Diff(orig, hard, CaseInputs(c, 32, 1), Options{})
	if !rep.Equivalent() {
		t.Errorf("patch-hardened pincheck diverges: %+v", rep.Divergent)
	}
}
