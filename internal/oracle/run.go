// Case-level orchestration: harden a catalog case through a named
// pipeline and differentially check the result — the engine behind
// `r2r oracle`.
package oracle

import (
	"fmt"
	"time"

	"github.com/r2r/reinforce/internal/cases"
	"github.com/r2r/reinforce/internal/elf"
	"github.com/r2r/reinforce/internal/fault"
	"github.com/r2r/reinforce/internal/harden"
)

// Hardening pipelines the oracle can drive (the `r2r oracle -harden`
// values).
const (
	PipelineHybrid = "hybrid" // Hybrid lift/lower with branch hardening
	PipelineOrder2 = "order2" // Hybrid plus the skip-window pass
	PipelinePatch  = "patch"  // Faulter+Patcher fixed point
)

// Harden builds the case and runs it through the named pipeline,
// returning the hardened binary.
func Harden(c *cases.Case, pipeline string) (*elf.Binary, error) {
	bin, err := c.Build()
	if err != nil {
		return nil, err
	}
	switch pipeline {
	case PipelineHybrid:
		res, err := harden.Hybrid(bin, harden.HybridOptions{})
		if err != nil {
			return nil, err
		}
		return res.Binary, nil
	case PipelineOrder2:
		res, err := harden.Hybrid(bin, harden.HybridOptions{SkipWindow: true})
		if err != nil {
			return nil, err
		}
		return res.Binary, nil
	case PipelinePatch:
		res, err := harden.FaulterPatcher(bin, harden.FaulterPatcherOptions{
			Good:      c.Good,
			Bad:       c.Bad,
			Models:    []fault.Model{fault.ModelSkip, fault.ModelBitFlip},
			StepLimit: DefaultStepLimit,
		})
		if err != nil {
			return nil, err
		}
		return res.Binary, nil
	}
	return nil, fmt.Errorf("oracle: unknown pipeline %q: want %s, %s or %s",
		pipeline, PipelineHybrid, PipelineOrder2, PipelinePatch)
}

// CaseReport is the export-ready outcome of one case's differential
// check: the case, the pipeline that hardened it, the hardened binary's
// content address, and the divergence census.
type CaseReport struct {
	Case           string       `json:"case"`
	Pipeline       string       `json:"pipeline"`
	Variant        bool         `json:"variant,omitempty"` // fuzz-derived, not a catalog entry
	HardenedDigest string       `json:"hardened_digest"`
	Inputs         int          `json:"inputs"`
	Divergences    int          `json:"divergences"`
	Divergent      []Divergence `json:"divergent,omitempty"`
	Truncated      bool         `json:"divergent_truncated,omitempty"`
	ElapsedMS      int64        `json:"elapsed_ms"`
}

// RunCase hardens the case through the pipeline and differences the
// result against the original across n generated inputs.
func RunCase(c *cases.Case, pipeline string, n int, seed uint64, opt Options) (*CaseReport, error) {
	start := time.Now()
	orig, err := c.Build()
	if err != nil {
		return nil, fmt.Errorf("oracle: %s: %w", c.Name, err)
	}
	hard, err := Harden(c, pipeline)
	if err != nil {
		return nil, fmt.Errorf("oracle: %s: %w", c.Name, err)
	}
	rep := Diff(orig, hard, CaseInputs(c, n, seed), opt)
	return &CaseReport{
		Case:           c.Name,
		Pipeline:       pipeline,
		HardenedDigest: hard.Digest(),
		Inputs:         rep.Inputs,
		Divergences:    rep.Divergences,
		Divergent:      rep.Divergent,
		Truncated:      rep.Truncated,
		ElapsedMS:      time.Since(start).Milliseconds(),
	}, nil
}
