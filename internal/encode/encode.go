// Package encode turns isa.Inst values into real x86-64 machine code:
// REX prefixes, ModRM/SIB bytes, displacements and immediates. It is the
// single authority on byte layout; the assembler and the binary-IR
// reassembler both delegate here.
//
// Branch instructions (JMP/JCC/CALL) are always emitted with rel32
// displacements so that two-pass layout in the assembler converges
// immediately.
package encode

import (
	"errors"
	"fmt"
	"math"

	"github.com/r2r/reinforce/internal/isa"
)

// Errors returned by Encode.
var (
	ErrOperands    = errors.New("encode: unsupported operand combination")
	ErrImmRange    = errors.New("encode: immediate out of range")
	ErrDispRange   = errors.New("encode: displacement out of range")
	ErrBadScale    = errors.New("encode: scale must be 1, 2, 4 or 8")
	ErrIndexRSP    = errors.New("encode: rsp cannot be an index register")
	ErrWidth       = errors.New("encode: unsupported operand width")
	ErrUnsupported = errors.New("encode: unsupported instruction")
)

// rex prefix bits.
const (
	rexBase = 0x40
	rexW    = 0x08
	rexR    = 0x04
	rexX    = 0x02
	rexB    = 0x01
)

// enc accumulates one instruction's bytes.
type enc struct {
	rex      byte // REX bits collected so far (without the 0x40 base)
	forceREX bool // emit REX even if no bits set (SPL/BPL/SIL/DIL access)
	opcode   []byte
	modrm    byte
	hasModRM bool
	sib      byte
	hasSIB   bool
	disp     []byte
	imm      []byte
}

func (e *enc) bytes() []byte {
	out := make([]byte, 0, 15)
	if e.rex != 0 || e.forceREX {
		out = append(out, rexBase|e.rex)
	}
	out = append(out, e.opcode...)
	if e.hasModRM {
		out = append(out, e.modrm)
	}
	if e.hasSIB {
		out = append(out, e.sib)
	}
	out = append(out, e.disp...)
	out = append(out, e.imm...)
	return out
}

func (e *enc) setW(width uint8) error {
	switch width {
	case 8:
		e.rex |= rexW
	case 4, 1:
		// no REX.W
	default:
		return fmt.Errorf("%w: %d bytes", ErrWidth, width)
	}
	return nil
}

// reg8NeedsREX reports whether accessing reg as an 8-bit register
// requires a REX prefix to select SPL/BPL/SIL/DIL rather than AH/CH/DH/BH.
func reg8NeedsREX(r isa.Reg) bool { return r >= isa.RSP && r <= isa.RDI }

func (e *enc) setRegField(r uint8) {
	e.modrm |= (r & 7) << 3
	if r&8 != 0 {
		e.rex |= rexR
	}
	e.hasModRM = true
}

// setRM encodes the r/m side of ModRM from a register or memory operand.
func (e *enc) setRM(op isa.Operand) error {
	switch op.Kind {
	case isa.KindReg:
		e.modrm |= 0xC0 | uint8(op.Reg)&7
		if op.Reg&8 != 0 {
			e.rex |= rexB
		}
		if op.Width == 1 && reg8NeedsREX(op.Reg) {
			e.forceREX = true
		}
		e.hasModRM = true
		return nil
	case isa.KindMem:
		return e.setRMMem(op.Mem)
	default:
		return ErrOperands
	}
}

func (e *enc) setRMMem(m isa.Mem) error {
	e.hasModRM = true
	if m.RIPRel {
		if m.Base != isa.NoReg || m.Index != isa.NoReg {
			return fmt.Errorf("%w: rip-relative with base/index", ErrOperands)
		}
		e.modrm |= 0x05 // mod=00 rm=101 => RIP+disp32
		e.appendDisp32(m.Disp)
		return nil
	}
	if m.Index == isa.RSP {
		return ErrIndexRSP
	}
	if m.Index != isa.NoReg {
		switch m.Scale {
		case 1, 2, 4, 8:
		default:
			return ErrBadScale
		}
	}

	needSIB := m.Index != isa.NoReg || m.Base == isa.RSP || m.Base == isa.R12 || m.Base == isa.NoReg

	// Choose mod and displacement size.
	var mod byte
	switch {
	case m.Base == isa.NoReg:
		// [index*scale+disp32] or [disp32]: mod=00, SIB base=101.
		mod = 0x00
	case m.Disp == 0 && m.Base != isa.RBP && m.Base != isa.R13:
		mod = 0x00
	case m.Disp >= math.MinInt8 && m.Disp <= math.MaxInt8:
		mod = 0x40
	default:
		mod = 0x80
	}
	e.modrm |= mod

	if !needSIB {
		e.modrm |= uint8(m.Base) & 7
		if m.Base&8 != 0 {
			e.rex |= rexB
		}
	} else {
		e.modrm |= 0x04 // rm=100 => SIB follows
		e.hasSIB = true
		var ss byte
		switch m.Scale {
		case 2:
			ss = 1
		case 4:
			ss = 2
		case 8:
			ss = 3
		}
		idx := byte(0x04) // none
		if m.Index != isa.NoReg {
			idx = byte(m.Index) & 7
			if m.Index&8 != 0 {
				e.rex |= rexX
			}
		}
		base := byte(0x05) // none (with mod=00 => disp32)
		if m.Base != isa.NoReg {
			base = byte(m.Base) & 7
			if m.Base&8 != 0 {
				e.rex |= rexB
			}
		}
		e.sib = ss<<6 | idx<<3 | base
	}

	switch mod {
	case 0x00:
		if m.Base == isa.NoReg {
			e.appendDisp32(m.Disp)
		}
	case 0x40:
		e.disp = append(e.disp, byte(m.Disp))
	case 0x80:
		e.appendDisp32(m.Disp)
	}
	return nil
}

func (e *enc) appendDisp32(d int32) {
	e.disp = append(e.disp, byte(d), byte(d>>8), byte(d>>16), byte(d>>24))
}

func (e *enc) appendImm(v int64, size int) error {
	switch size {
	case 1:
		if v < math.MinInt8 || v > math.MaxInt8 {
			// Allow unsigned byte range too (e.g. mov r8, 0xFF).
			if v < 0 || v > math.MaxUint8 {
				return ErrImmRange
			}
		}
	case 4:
		if v < math.MinInt32 || v > math.MaxInt32 {
			return ErrImmRange
		}
	case 8:
		// any 64-bit value
	default:
		return ErrImmRange
	}
	for i := 0; i < size; i++ {
		e.imm = append(e.imm, byte(v>>(8*i)))
	}
	return nil
}

func fitsInt8(v int64) bool  { return v >= math.MinInt8 && v <= math.MaxInt8 }
func fitsInt32(v int64) bool { return v >= math.MinInt32 && v <= math.MaxInt32 }

// encodeModRM is the common [REX] opcode ModRM [SIB] [disp] [imm] path.
// reg is the ModRM.reg field contents: a register number or a /digit.
func encodeModRM(width uint8, opcode []byte, reg uint8, regIs8bitReg bool, regNum isa.Reg, rm isa.Operand, imm int64, immSize int) ([]byte, error) {
	var e enc
	if err := e.setW(width); err != nil {
		return nil, err
	}
	e.opcode = opcode
	e.setRegField(reg)
	if regIs8bitReg && reg8NeedsREX(regNum) {
		e.forceREX = true
	}
	if err := e.setRM(rm); err != nil {
		return nil, err
	}
	if immSize > 0 {
		if err := e.appendImm(imm, immSize); err != nil {
			return nil, err
		}
	}
	return e.bytes(), nil
}

// Encode produces the machine code for one instruction.
func Encode(in isa.Inst) ([]byte, error) {
	switch in.Op {
	case isa.MOV:
		return encodeMOV(in)
	case isa.MOVZX, isa.MOVSX:
		return encodeMOVX(in)
	case isa.LEA:
		return encodeLEA(in)
	case isa.ADD, isa.OR, isa.ADC, isa.SBB, isa.AND, isa.SUB, isa.XOR, isa.CMP:
		return encodeALU(in)
	case isa.TEST:
		return encodeTEST(in)
	case isa.NOT, isa.NEG:
		return encodeGroup3(in)
	case isa.INC, isa.DEC:
		return encodeIncDec(in)
	case isa.SHL, isa.SHR, isa.SAR:
		return encodeShift(in)
	case isa.IMUL:
		return encodeIMUL(in)
	case isa.PUSH, isa.POP:
		return encodePushPop(in)
	case isa.PUSHFQ:
		return []byte{0x9C}, nil
	case isa.POPFQ:
		return []byte{0x9D}, nil
	case isa.JMP, isa.JCC, isa.CALL:
		return encodeBranch(in)
	case isa.RET:
		return []byte{0xC3}, nil
	case isa.SETCC:
		return encodeSETcc(in)
	case isa.SYSCALL:
		return []byte{0x0F, 0x05}, nil
	case isa.NOP:
		return []byte{0x90}, nil
	case isa.HLT:
		return []byte{0xF4}, nil
	case isa.UD2:
		return []byte{0x0F, 0x0B}, nil
	default:
		return nil, fmt.Errorf("%w: %s", ErrUnsupported, in.Op)
	}
}

// MustEncode is Encode for instructions known valid by construction
// (used by templates and the lowering backend).
func MustEncode(in isa.Inst) []byte {
	b, err := Encode(in)
	if err != nil {
		panic(fmt.Sprintf("encode: must-encode %q: %v", in.String(), err))
	}
	return b
}

// Len returns the encoded length of an instruction.
func Len(in isa.Inst) (int, error) {
	b, err := Encode(in)
	if err != nil {
		return 0, err
	}
	return len(b), nil
}

func encodeMOV(in isa.Inst) ([]byte, error) {
	d, s := in.Dst, in.Src
	switch {
	case d.Kind == isa.KindReg && s.Kind == isa.KindImm:
		w := d.Width
		switch w {
		case 1:
			var e enc
			e.opcode = []byte{0xB0 | uint8(d.Reg)&7}
			if d.Reg&8 != 0 {
				e.rex |= rexB
			}
			if reg8NeedsREX(d.Reg) {
				e.forceREX = true
			}
			if err := e.appendImm(s.Imm, 1); err != nil {
				return nil, err
			}
			return e.bytes(), nil
		case 4:
			var e enc
			e.opcode = []byte{0xB8 | uint8(d.Reg)&7}
			if d.Reg&8 != 0 {
				e.rex |= rexB
			}
			if err := e.appendImm(s.Imm, 4); err != nil {
				return nil, err
			}
			return e.bytes(), nil
		case 8:
			if fitsInt32(s.Imm) {
				// REX.W C7 /0 id (sign-extended imm32).
				return encodeModRM(8, []byte{0xC7}, 0, false, 0, d, s.Imm, 4)
			}
			// B8+r io (full imm64).
			var e enc
			e.rex |= rexW
			e.opcode = []byte{0xB8 | uint8(d.Reg)&7}
			if d.Reg&8 != 0 {
				e.rex |= rexB
			}
			if err := e.appendImm(s.Imm, 8); err != nil {
				return nil, err
			}
			return e.bytes(), nil
		}
		return nil, ErrWidth

	case d.Kind == isa.KindMem && s.Kind == isa.KindImm:
		if d.Width == 1 {
			return encodeModRM(1, []byte{0xC6}, 0, false, 0, d, s.Imm, 1)
		}
		if !fitsInt32(s.Imm) {
			return nil, ErrImmRange
		}
		return encodeModRM(d.Width, []byte{0xC7}, 0, false, 0, d, s.Imm, 4)

	case s.Kind == isa.KindReg && (d.Kind == isa.KindReg || d.Kind == isa.KindMem):
		op := byte(0x89)
		if widthOf(d, s) == 1 {
			op = 0x88
		}
		return encodeModRM(widthOf(d, s), []byte{op}, uint8(s.Reg), s.Width == 1, s.Reg, d, 0, 0)

	case d.Kind == isa.KindReg && s.Kind == isa.KindMem:
		op := byte(0x8B)
		if widthOf(d, s) == 1 {
			op = 0x8A
		}
		return encodeModRM(widthOf(d, s), []byte{op}, uint8(d.Reg), d.Width == 1, d.Reg, s, 0, 0)
	}
	return nil, ErrOperands
}

func widthOf(a, b isa.Operand) uint8 {
	if a.Width != 0 {
		return a.Width
	}
	return b.Width
}

func encodeMOVX(in isa.Inst) ([]byte, error) {
	d, s := in.Dst, in.Src
	if d.Kind != isa.KindReg || (d.Width != 8 && d.Width != 4) {
		return nil, ErrOperands
	}
	if s.Width != 1 || (s.Kind != isa.KindReg && s.Kind != isa.KindMem) {
		return nil, ErrOperands
	}
	op := byte(0xB6) // MOVZX
	if in.Op == isa.MOVSX {
		op = 0xBE
	}
	return encodeModRM(d.Width, []byte{0x0F, op}, uint8(d.Reg), false, d.Reg,
		s, 0, 0)
}

func encodeLEA(in isa.Inst) ([]byte, error) {
	if in.Dst.Kind != isa.KindReg || in.Src.Kind != isa.KindMem {
		return nil, ErrOperands
	}
	if in.Dst.Width != 8 {
		return nil, ErrWidth
	}
	return encodeModRM(8, []byte{0x8D}, uint8(in.Dst.Reg), false, in.Dst.Reg, in.Src, 0, 0)
}

func encodeALU(in isa.Inst) ([]byte, error) {
	digit := in.Op.ALUDigit()
	d, s := in.Dst, in.Src
	w := widthOf(d, s)
	switch {
	case s.Kind == isa.KindImm:
		if d.Kind != isa.KindReg && d.Kind != isa.KindMem {
			return nil, ErrOperands
		}
		if w == 1 {
			return encodeModRM(1, []byte{0x80}, digit, false, 0, d, s.Imm, 1)
		}
		if fitsInt8(s.Imm) {
			return encodeModRM(w, []byte{0x83}, digit, false, 0, d, s.Imm, 1)
		}
		if !fitsInt32(s.Imm) {
			return nil, ErrImmRange
		}
		return encodeModRM(w, []byte{0x81}, digit, false, 0, d, s.Imm, 4)

	case s.Kind == isa.KindReg && (d.Kind == isa.KindReg || d.Kind == isa.KindMem):
		op := digit*8 + 1
		if w == 1 {
			op = digit * 8
		}
		return encodeModRM(w, []byte{op}, uint8(s.Reg), s.Width == 1, s.Reg, d, 0, 0)

	case d.Kind == isa.KindReg && s.Kind == isa.KindMem:
		op := digit*8 + 3
		if w == 1 {
			op = digit*8 + 2
		}
		return encodeModRM(w, []byte{op}, uint8(d.Reg), d.Width == 1, d.Reg, s, 0, 0)
	}
	return nil, ErrOperands
}

func encodeTEST(in isa.Inst) ([]byte, error) {
	d, s := in.Dst, in.Src
	w := widthOf(d, s)
	switch {
	case s.Kind == isa.KindReg:
		op := byte(0x85)
		if w == 1 {
			op = 0x84
		}
		return encodeModRM(w, []byte{op}, uint8(s.Reg), s.Width == 1, s.Reg, d, 0, 0)
	case s.Kind == isa.KindImm:
		if w == 1 {
			return encodeModRM(1, []byte{0xF6}, 0, false, 0, d, s.Imm, 1)
		}
		if !fitsInt32(s.Imm) {
			return nil, ErrImmRange
		}
		return encodeModRM(w, []byte{0xF7}, 0, false, 0, d, s.Imm, 4)
	}
	return nil, ErrOperands
}

func encodeGroup3(in isa.Inst) ([]byte, error) {
	digit := uint8(2) // NOT
	if in.Op == isa.NEG {
		digit = 3
	}
	w := in.Dst.Width
	opc := byte(0xF7)
	if w == 1 {
		opc = 0xF6
	}
	return encodeModRM(w, []byte{opc}, digit, false, 0, in.Dst, 0, 0)
}

func encodeIncDec(in isa.Inst) ([]byte, error) {
	digit := uint8(0)
	if in.Op == isa.DEC {
		digit = 1
	}
	w := in.Dst.Width
	opc := byte(0xFF)
	if w == 1 {
		opc = 0xFE
	}
	return encodeModRM(w, []byte{opc}, digit, false, 0, in.Dst, 0, 0)
}

func encodeShift(in isa.Inst) ([]byte, error) {
	var digit uint8
	switch in.Op {
	case isa.SHL:
		digit = 4
	case isa.SHR:
		digit = 5
	case isa.SAR:
		digit = 7
	}
	if in.Src.Kind != isa.KindImm {
		return nil, ErrOperands
	}
	if in.Src.Imm < 0 || in.Src.Imm > 63 {
		return nil, ErrImmRange
	}
	w := in.Dst.Width
	opc := byte(0xC1)
	if w == 1 {
		opc = 0xC0
	}
	return encodeModRM(w, []byte{opc}, digit, false, 0, in.Dst, in.Src.Imm, 1)
}

func encodeIMUL(in isa.Inst) ([]byte, error) {
	if in.Dst.Kind != isa.KindReg || in.Dst.Width == 1 {
		return nil, ErrOperands
	}
	if in.Src.Kind != isa.KindReg && in.Src.Kind != isa.KindMem {
		return nil, ErrOperands
	}
	return encodeModRM(in.Dst.Width, []byte{0x0F, 0xAF}, uint8(in.Dst.Reg), false, in.Dst.Reg, in.Src, 0, 0)
}

func encodePushPop(in isa.Inst) ([]byte, error) {
	if in.Dst.Kind != isa.KindReg || in.Dst.Width != 8 {
		return nil, ErrOperands
	}
	var e enc
	base := byte(0x50)
	if in.Op == isa.POP {
		base = 0x58
	}
	e.opcode = []byte{base | uint8(in.Dst.Reg)&7}
	if in.Dst.Reg&8 != 0 {
		e.rex |= rexB
	}
	return e.bytes(), nil
}

func encodeBranch(in isa.Inst) ([]byte, error) {
	if in.Dst.Kind != isa.KindImm {
		return nil, fmt.Errorf("%w: indirect branches", ErrUnsupported)
	}
	rel := in.Dst.Imm
	if !fitsInt32(rel) {
		return nil, ErrImmRange
	}
	var e enc
	switch in.Op {
	case isa.JMP:
		e.opcode = []byte{0xE9}
	case isa.CALL:
		e.opcode = []byte{0xE8}
	case isa.JCC:
		if !in.Cond.Valid() {
			return nil, fmt.Errorf("%w: jcc without condition", ErrOperands)
		}
		e.opcode = []byte{0x0F, 0x80 | byte(in.Cond)}
	}
	if err := e.appendImm(rel, 4); err != nil {
		return nil, err
	}
	return e.bytes(), nil
}

func encodeSETcc(in isa.Inst) ([]byte, error) {
	if !in.Cond.Valid() {
		return nil, fmt.Errorf("%w: setcc without condition", ErrOperands)
	}
	if in.Dst.Width != 1 {
		return nil, ErrWidth
	}
	// SETcc has no REX.W; width byte drives only the r/m encoding.
	var e enc
	e.opcode = []byte{0x0F, 0x90 | byte(in.Cond)}
	e.setRegField(0)
	if err := e.setRM(in.Dst); err != nil {
		return nil, err
	}
	return e.bytes(), nil
}
