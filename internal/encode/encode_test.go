package encode

import (
	"bytes"
	"errors"
	"testing"

	"github.com/r2r/reinforce/internal/isa"
)

// TestGoldenEncodings pins known-correct x86-64 byte sequences
// (cross-checked against the Intel SDM and GNU as output).
func TestGoldenEncodings(t *testing.T) {
	tests := []struct {
		name string
		in   isa.Inst
		want []byte
	}{
		{"mov rax, rbx", isa.NewInst(isa.MOV, isa.R(isa.RAX), isa.R(isa.RBX)), []byte{0x48, 0x89, 0xD8}},
		{"mov rax, [rbx+4]", isa.NewInst(isa.MOV, isa.R(isa.RAX), isa.M(isa.RBX, 4)), []byte{0x48, 0x8B, 0x43, 0x04}},
		{"mov [rbx+4], rax", isa.NewInst(isa.MOV, isa.M(isa.RBX, 4), isa.R(isa.RAX)), []byte{0x48, 0x89, 0x43, 0x04}},
		{"mov rcx, [rip+0x100]", isa.NewInst(isa.MOV, isa.R(isa.RCX), isa.MRIP(0x100)), []byte{0x48, 0x8B, 0x0D, 0x00, 0x01, 0x00, 0x00}},
		{"cmp rbx, [rcx+4]", isa.NewInst(isa.CMP, isa.R(isa.RBX), isa.M(isa.RCX, 4)), []byte{0x48, 0x3B, 0x59, 0x04}},
		{"cmp rax, [rbx+4]", isa.NewInst(isa.CMP, isa.R(isa.RAX), isa.M(isa.RBX, 4)), []byte{0x48, 0x3B, 0x43, 0x04}},
		{"push rbx", isa.NewInst(isa.PUSH, isa.R(isa.RBX)), []byte{0x53}},
		{"push r8", isa.NewInst(isa.PUSH, isa.R(isa.R8)), []byte{0x41, 0x50}},
		{"pop rcx", isa.NewInst(isa.POP, isa.R(isa.RCX)), []byte{0x59}},
		{"pushfq", isa.NewInst(isa.PUSHFQ), []byte{0x9C}},
		{"popfq", isa.NewInst(isa.POPFQ), []byte{0x9D}},
		{"mov rax, 60", isa.NewInst(isa.MOV, isa.R(isa.RAX), isa.Imm(60)), []byte{0x48, 0xC7, 0xC0, 0x3C, 0x00, 0x00, 0x00}},
		{"mov rax, imm64", isa.NewInst(isa.MOV, isa.R(isa.RAX), isa.Imm(0x123456789)), []byte{0x48, 0xB8, 0x89, 0x67, 0x45, 0x23, 0x01, 0x00, 0x00, 0x00}},
		{"xor rax, rax", isa.NewInst(isa.XOR, isa.R(isa.RAX), isa.R(isa.RAX)), []byte{0x48, 0x31, 0xC0}},
		{"lea rsp, [rsp-128]", isa.NewInst(isa.LEA, isa.R(isa.RSP), isa.M(isa.RSP, -128)), []byte{0x48, 0x8D, 0x64, 0x24, 0x80}},
		{"lea rsp, [rsp+128]", isa.NewInst(isa.LEA, isa.R(isa.RSP), isa.M(isa.RSP, 128)), []byte{0x48, 0x8D, 0xA4, 0x24, 0x80, 0x00, 0x00, 0x00}},
		{"je rel32 0", isa.NewJcc(isa.CondE, 0), []byte{0x0F, 0x84, 0x00, 0x00, 0x00, 0x00}},
		{"jne rel32 -6", isa.NewJcc(isa.CondNE, -6), []byte{0x0F, 0x85, 0xFA, 0xFF, 0xFF, 0xFF}},
		{"jmp rel32", isa.NewInst(isa.JMP, isa.Imm(0x10)), []byte{0xE9, 0x10, 0x00, 0x00, 0x00}},
		{"call rel32", isa.NewInst(isa.CALL, isa.Imm(-5)), []byte{0xE8, 0xFB, 0xFF, 0xFF, 0xFF}},
		{"ret", isa.NewInst(isa.RET), []byte{0xC3}},
		{"sete al", isa.NewSetcc(isa.CondE, isa.RAX), []byte{0x0F, 0x94, 0xC0}},
		{"setg cl", isa.NewSetcc(isa.CondG, isa.RCX), []byte{0x0F, 0x9F, 0xC1}},
		{"setne dil (REX)", isa.NewSetcc(isa.CondNE, isa.RDI), []byte{0x40, 0x0F, 0x95, 0xC7}},
		{"cmp cl, 0", isa.NewInst(isa.CMP, isa.Rb(isa.RCX), isa.Imm8(0)), []byte{0x80, 0xF9, 0x00}},
		{"cmp cl, 1", isa.NewInst(isa.CMP, isa.Rb(isa.RCX), isa.Imm8(1)), []byte{0x80, 0xF9, 0x01}},
		{"mov [rsp], rbx", isa.NewInst(isa.MOV, isa.M(isa.RSP, 0), isa.R(isa.RBX)), []byte{0x48, 0x89, 0x1C, 0x24}},
		{"cmp rbx, [rsp]", isa.NewInst(isa.CMP, isa.R(isa.RBX), isa.M(isa.RSP, 0)), []byte{0x48, 0x3B, 0x1C, 0x24}},
		{"movzx rax, cl", isa.NewInst(isa.MOVZX, isa.R(isa.RAX), isa.Rb(isa.RCX)), []byte{0x48, 0x0F, 0xB6, 0xC1}},
		{"movsx rax, cl", isa.NewInst(isa.MOVSX, isa.R(isa.RAX), isa.Rb(isa.RCX)), []byte{0x48, 0x0F, 0xBE, 0xC1}},
		{"test rax, rax", isa.NewInst(isa.TEST, isa.R(isa.RAX), isa.R(isa.RAX)), []byte{0x48, 0x85, 0xC0}},
		{"syscall", isa.NewInst(isa.SYSCALL), []byte{0x0F, 0x05}},
		{"nop", isa.NewInst(isa.NOP), []byte{0x90}},
		{"hlt", isa.NewInst(isa.HLT), []byte{0xF4}},
		{"ud2", isa.NewInst(isa.UD2), []byte{0x0F, 0x0B}},
		{"imul rax, rbx", isa.NewInst(isa.IMUL, isa.R(isa.RAX), isa.R(isa.RBX)), []byte{0x48, 0x0F, 0xAF, 0xC3}},
		{"shl rax, 5", isa.NewInst(isa.SHL, isa.R(isa.RAX), isa.Imm8(5)), []byte{0x48, 0xC1, 0xE0, 0x05}},
		{"shr rdx, 1", isa.NewInst(isa.SHR, isa.R(isa.RDX), isa.Imm8(1)), []byte{0x48, 0xC1, 0xEA, 0x01}},
		{"inc [rbp-8]", isa.NewInst(isa.INC, isa.M(isa.RBP, -8)), []byte{0x48, 0xFF, 0x45, 0xF8}},
		{"dec rcx", isa.NewInst(isa.DEC, isa.R(isa.RCX)), []byte{0x48, 0xFF, 0xC9}},
		{"cmp byte [r13], 1", isa.NewInst(isa.CMP, isa.M8(isa.R13, 0), isa.Imm8(1)), []byte{0x41, 0x80, 0x7D, 0x00, 0x01}},
		{"mov spl, 1", isa.NewInst(isa.MOV, isa.Rb(isa.RSP), isa.Imm8(1)), []byte{0x40, 0xB4, 0x01}},
		{"mov r15b, 7", isa.NewInst(isa.MOV, isa.Rb(isa.R15), isa.Imm8(7)), []byte{0x41, 0xB7, 0x07}},
		{"add rsp, 8", isa.NewInst(isa.ADD, isa.R(isa.RSP), isa.Imm(8)), []byte{0x48, 0x83, 0xC4, 0x08}},
		{"sub rsp, 0x1000", isa.NewInst(isa.SUB, isa.R(isa.RSP), isa.Imm(0x1000)), []byte{0x48, 0x81, 0xEC, 0x00, 0x10, 0x00, 0x00}},
		{"mov rax, [rbx+rcx*8]", isa.NewInst(isa.MOV, isa.R(isa.RAX), isa.MSIB(isa.RBX, isa.RCX, 8, 0)), []byte{0x48, 0x8B, 0x04, 0xCB}},
		{"mov rax, [rbp]", isa.NewInst(isa.MOV, isa.R(isa.RAX), isa.M(isa.RBP, 0)), []byte{0x48, 0x8B, 0x45, 0x00}},
		{"mov rax, [r12]", isa.NewInst(isa.MOV, isa.R(isa.RAX), isa.M(isa.R12, 0)), []byte{0x49, 0x8B, 0x04, 0x24}},
		{"mov rax, [r13]", isa.NewInst(isa.MOV, isa.R(isa.RAX), isa.M(isa.R13, 0)), []byte{0x49, 0x8B, 0x45, 0x00}},
		{"not rax", isa.NewInst(isa.NOT, isa.R(isa.RAX)), []byte{0x48, 0xF7, 0xD0}},
		{"neg rbx", isa.NewInst(isa.NEG, isa.R(isa.RBX)), []byte{0x48, 0xF7, 0xDB}},
		{"test rdi, 255", isa.NewInst(isa.TEST, isa.R(isa.RDI), isa.Imm(255)), []byte{0x48, 0xF7, 0xC7, 0xFF, 0x00, 0x00, 0x00}},
		{"mov eax, 1", isa.NewInst(isa.MOV, isa.Rd(isa.RAX), isa.Operand{Kind: isa.KindImm, Width: 4, Imm: 1}), []byte{0xB8, 0x01, 0x00, 0x00, 0x00}},
		{"mov qword [rdi], 0", isa.NewInst(isa.MOV, isa.M(isa.RDI, 0), isa.Imm(0)), []byte{0x48, 0xC7, 0x07, 0x00, 0x00, 0x00, 0x00}},
	}
	for _, tt := range tests {
		got, err := Encode(tt.in)
		if err != nil {
			t.Errorf("%s: %v", tt.name, err)
			continue
		}
		if !bytes.Equal(got, tt.want) {
			t.Errorf("%s: got % X, want % X", tt.name, got, tt.want)
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	tests := []struct {
		name string
		in   isa.Inst
		want error
	}{
		{"rsp as index", isa.NewInst(isa.MOV, isa.R(isa.RAX), isa.MSIB(isa.RBX, isa.RSP, 2, 0)), ErrIndexRSP},
		{"bad scale", isa.NewInst(isa.MOV, isa.R(isa.RAX), isa.MSIB(isa.RBX, isa.RCX, 3, 0)), ErrBadScale},
		{"mem imm64 too big", isa.NewInst(isa.MOV, isa.M(isa.RAX, 0), isa.Imm(1<<40)), ErrImmRange},
		{"alu imm64 too big", isa.NewInst(isa.ADD, isa.R(isa.RAX), isa.Imm(1<<40)), ErrImmRange},
		{"lea from reg", isa.NewInst(isa.LEA, isa.R(isa.RAX), isa.R(isa.RBX)), ErrOperands},
		{"mem-mem mov", isa.NewInst(isa.MOV, isa.M(isa.RAX, 0), isa.M(isa.RBX, 0)), ErrOperands},
		{"shift count range", isa.NewInst(isa.SHL, isa.R(isa.RAX), isa.Imm8(64)), ErrImmRange},
		{"rip with base", isa.NewInst(isa.MOV, isa.R(isa.RAX), isa.Operand{Kind: isa.KindMem, Width: 8, Mem: isa.Mem{Base: isa.RBX, Index: isa.NoReg, RIPRel: true}}), ErrOperands},
		{"branch rel out of range", isa.NewInst(isa.JMP, isa.Imm(1<<40)), ErrImmRange},
		{"jcc without cond", isa.Inst{Op: isa.JCC, Cond: isa.NoCond, Dst: isa.Imm(0)}, ErrOperands},
		{"push imm", isa.NewInst(isa.PUSH, isa.Imm(5)), ErrOperands},
		{"bad op", isa.Inst{Op: isa.BAD}, ErrUnsupported},
	}
	for _, tt := range tests {
		_, err := Encode(tt.in)
		if !errors.Is(err, tt.want) {
			t.Errorf("%s: err = %v, want %v", tt.name, err, tt.want)
		}
	}
}

func TestMustEncodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustEncode did not panic on invalid instruction")
		}
	}()
	MustEncode(isa.NewInst(isa.LEA, isa.R(isa.RAX), isa.R(isa.RBX)))
}

func TestLen(t *testing.T) {
	n, err := Len(isa.NewInst(isa.MOV, isa.R(isa.RAX), isa.Imm(60)))
	if err != nil || n != 7 {
		t.Errorf("Len = %d, %v; want 7, nil", n, err)
	}
	if _, err := Len(isa.Inst{Op: isa.BAD}); err == nil {
		t.Error("Len accepted bad instruction")
	}
}

// TestDispEncodingBoundaries exercises the disp8/disp32 switch points.
func TestDispEncodingBoundaries(t *testing.T) {
	tests := []struct {
		disp    int32
		wantLen int
	}{
		{0, 3},      // [rbx] mod=00
		{1, 4},      // disp8
		{127, 4},    // disp8 max
		{128, 7},    // disp32
		{-128, 4},   // disp8 min
		{-129, 7},   // disp32
		{100000, 7}, // disp32
	}
	for _, tt := range tests {
		in := isa.NewInst(isa.MOV, isa.R(isa.RAX), isa.M(isa.RBX, tt.disp))
		b, err := Encode(in)
		if err != nil {
			t.Fatalf("disp %d: %v", tt.disp, err)
		}
		if len(b) != tt.wantLen {
			t.Errorf("disp %d: len = %d (% X), want %d", tt.disp, len(b), b, tt.wantLen)
		}
	}
}
