// Package bir is the binary intermediate representation used by the
// Faulter+Patcher pipeline: a symbolized, relocatable view of a binary's
// code in the spirit of GTIRB (paper §IV-B2).
//
// Disassemble lifts an ELF .text section into labeled basic blocks whose
// branch operands are symbolic (labels) and whose RIP-relative data
// operands are absolute addresses. Blocks fall through in layout order.
// The patcher edits blocks freely — replacing instructions with hardened
// multi-block patterns — and Reassemble lays the result back out into a
// working executable, recomputing every displacement.
package bir

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/r2r/reinforce/internal/decode"
	"github.com/r2r/reinforce/internal/elf"
	"github.com/r2r/reinforce/internal/encode"
	"github.com/r2r/reinforce/internal/isa"
)

// Inst is an instruction with symbolized operands.
type Inst struct {
	I isa.Inst

	// TargetLabel replaces the relative displacement of branch ops.
	TargetLabel string

	// DataTarget is the absolute address a RIP-relative memory operand
	// refers to (data sections do not move during rewriting).
	DataTarget uint64

	// Protected marks countermeasure instructions inserted by the
	// patcher; the fixed-point driver will not patch them again.
	Protected bool

	// Order2 marks instructions belonging to an order-2-aware pattern
	// (patch.StyleOrder2); the pair-campaign driver escalates Protected
	// sites once but never re-patches an Order2 one.
	Order2 bool

	// OrigAddr is the address this instruction had in the source
	// binary (0 for inserted instructions).
	OrigAddr uint64
}

// Block is a labeled run of instructions. Control falls through to the
// next block in Program.Blocks unless the last instruction is an
// unconditional transfer.
type Block struct {
	Label string
	Insts []Inst
}

// Program is a relocatable program: symbolized code plus the unchanged
// data sections.
type Program struct {
	Blocks     []*Block
	EntryLabel string
	TextBase   uint64
	Data       []*elf.Section // non-executable sections, addresses fixed

	labelSeq int
}

// Errors.
var (
	ErrNoText      = errors.New("bir: no .text section")
	ErrBadTarget   = errors.New("bir: branch target outside text")
	ErrUndefLabel  = errors.New("bir: undefined label")
	ErrTextOverlap = errors.New("bir: rewritten text would overlap data")
)

// Disassemble builds a Program from a static binary produced by this
// toolchain (fully decodable .text, all branches direct).
func Disassemble(bin *elf.Binary) (*Program, error) {
	text := bin.Text()
	if text == nil {
		return nil, ErrNoText
	}

	// First sweep: decode all instructions.
	var insts []isa.Inst
	for off := 0; off < len(text.Data); {
		in, err := decode.Decode(text.Data[off:], text.Addr+uint64(off))
		if err != nil {
			return nil, fmt.Errorf("bir: at %#x: %w", text.Addr+uint64(off), err)
		}
		insts = append(insts, in)
		off += in.EncLen
	}

	// Leaders: entry, branch targets, instruction after any branch.
	leaders := map[uint64]bool{bin.Entry: true}
	if len(insts) > 0 {
		leaders[insts[0].Addr] = true
	}
	byAddr := make(map[uint64]int, len(insts))
	for i, in := range insts {
		byAddr[in.Addr] = i
		if in.Op.IsBranch() {
			if !text.Contains(in.Target) {
				return nil, fmt.Errorf("%w: %#x -> %#x", ErrBadTarget, in.Addr, in.Target)
			}
			leaders[in.Target] = true
			if i+1 < len(insts) {
				leaders[insts[i+1].Addr] = true
			}
		}
	}
	for a := range leaders {
		if _, ok := byAddr[a]; !ok {
			return nil, fmt.Errorf("%w: leader %#x is not an instruction boundary", ErrBadTarget, a)
		}
	}

	// Stable label assignment: ELF symbol name where available.
	labelFor := make(map[uint64]string)
	for a := range leaders {
		if name := bin.SymbolAt(a); name != "" {
			labelFor[a] = name
		} else {
			labelFor[a] = fmt.Sprintf("L_%x", a)
		}
	}

	p := &Program{TextBase: text.Addr}
	var cur *Block
	for _, in := range insts {
		if leaders[in.Addr] {
			cur = &Block{Label: labelFor[in.Addr]}
			p.Blocks = append(p.Blocks, cur)
		}
		bi := Inst{I: in, OrigAddr: in.Addr}
		if in.Op.IsBranch() {
			bi.TargetLabel = labelFor[in.Target]
			bi.I.Dst.Imm = 0 // displacement is symbolic now
		}
		if mo := bi.I.MemOperand(); mo != nil && mo.Mem.RIPRel {
			bi.DataTarget = in.Addr + uint64(in.EncLen) + uint64(int64(mo.Mem.Disp))
			mo.Mem.Disp = 0
		}
		cur.Insts = append(cur.Insts, bi)
	}

	entryLabel, ok := labelFor[bin.Entry]
	if !ok {
		return nil, fmt.Errorf("%w: entry %#x", ErrBadTarget, bin.Entry)
	}
	p.EntryLabel = entryLabel

	for _, s := range bin.Sections {
		if s.Flags&elf.FlagExec == 0 {
			p.Data = append(p.Data, s)
		}
	}
	return p, nil
}

// NewLabel returns a fresh label with the given prefix.
func (p *Program) NewLabel(prefix string) string {
	p.labelSeq++
	return fmt.Sprintf("%s_%d", prefix, p.labelSeq)
}

// Block returns the block with the given label, or nil.
func (p *Program) Block(label string) *Block {
	for _, b := range p.Blocks {
		if b.Label == label {
			return b
		}
	}
	return nil
}

// NextBlock returns the block following the given one in layout order
// (its fall-through successor), or nil.
func (p *Program) NextBlock(b *Block) *Block {
	for i, blk := range p.Blocks {
		if blk == b && i+1 < len(p.Blocks) {
			return p.Blocks[i+1]
		}
	}
	return nil
}

// InstRef locates an instruction inside a program.
type InstRef struct {
	Block *Block
	Index int
}

// FindByAddr locates the instruction whose last-layout address is addr.
// Reassemble refreshes the layout addresses (Inst.I.Addr).
func (p *Program) FindByAddr(addr uint64) (InstRef, bool) {
	for _, b := range p.Blocks {
		for i := range b.Insts {
			if b.Insts[i].I.Addr == addr {
				return InstRef{Block: b, Index: i}, true
			}
		}
	}
	return InstRef{}, false
}

// blockIndex returns the layout position of b, or -1.
func (p *Program) blockIndex(b *Block) int {
	for i, blk := range p.Blocks {
		if blk == b {
			return i
		}
	}
	return -1
}

// insertBlocksAfter places blocks directly after position idx.
func (p *Program) insertBlocksAfter(idx int, blocks []*Block) {
	rest := make([]*Block, len(p.Blocks[idx+1:]))
	copy(rest, p.Blocks[idx+1:])
	p.Blocks = append(p.Blocks[:idx+1], append(blocks, rest...)...)
}

// SplitAfter arranges for the instruction at ref to be the last one in
// its block, splitting the tail into a fresh fall-through block when
// necessary, and returns the label of the instruction that follows ref
// in layout order. Hardened patterns use that label as the "happy flow"
// continuation target (paper Tables I–III).
func (p *Program) SplitAfter(ref InstRef) string {
	b := ref.Block
	idx := p.blockIndex(b)
	if ref.Index == len(b.Insts)-1 {
		if idx+1 < len(p.Blocks) {
			return p.Blocks[idx+1].Label
		}
		end := &Block{Label: p.NewLabel(b.Label + "_end")}
		p.AppendBlock(end)
		return end.Label
	}
	cont := &Block{
		Label: p.NewLabel(b.Label + "_cont"),
		Insts: append([]Inst{}, b.Insts[ref.Index+1:]...),
	}
	b.Insts = b.Insts[:ref.Index+1]
	p.insertBlocksAfter(idx, []*Block{cont})
	return cont.Label
}

// ReplaceWithBlocks substitutes instruction ref with a hardened pattern:
// the instructions of the first replacement block are spliced in place
// (inheriting the enclosing block prefix), remaining replacement blocks
// are inserted after, and any tail of the original block is split into a
// fresh continuation block so in-pattern labels can exist.
//
// The label of the code that follows the pattern is returned (empty when
// the pattern ends the program). Callers that need the continuation
// label while *building* the pattern should call SplitAfter first.
func (p *Program) ReplaceWithBlocks(ref InstRef, repl []*Block) string {
	b := ref.Block
	idx := p.blockIndex(b)
	if idx < 0 || len(repl) == 0 {
		return ""
	}

	tail := append([]Inst{}, b.Insts[ref.Index+1:]...)
	head := b.Insts[:ref.Index]

	// First replacement block merges into the original block.
	b.Insts = append(append([]Inst{}, head...), repl[0].Insts...)
	newBlocks := append([]*Block{}, repl[1:]...)

	contLabel := ""
	if len(tail) > 0 {
		cont := &Block{Label: p.NewLabel(b.Label + "_cont"), Insts: tail}
		contLabel = cont.Label
		newBlocks = append(newBlocks, cont)
	} else if idx+1 < len(p.Blocks) {
		contLabel = p.Blocks[idx+1].Label
	}

	p.insertBlocksAfter(idx, newBlocks)
	return contLabel
}

// AppendBlock adds a block at the end of the layout (e.g. the fault
// handler).
func (p *Program) AppendBlock(b *Block) { p.Blocks = append(p.Blocks, b) }

// NumInsts counts instructions.
func (p *Program) NumInsts() int {
	n := 0
	for _, b := range p.Blocks {
		n += len(b.Insts)
	}
	return n
}

// Reassemble lays the program out at TextBase and produces a new binary.
// As a side effect it refreshes every instruction's layout address
// (Inst.I.Addr), which FindByAddr relies on in the next iteration.
func (p *Program) Reassemble() (*elf.Binary, error) {
	// Pass 1: sizes and addresses.
	addr := p.TextBase
	labelAddr := make(map[string]uint64, len(p.Blocks))
	for _, b := range p.Blocks {
		if _, dup := labelAddr[b.Label]; dup {
			return nil, fmt.Errorf("bir: duplicate label %q", b.Label)
		}
		labelAddr[b.Label] = addr
		for i := range b.Insts {
			in := &b.Insts[i]
			sized := in.I
			if sized.Op.IsBranch() {
				sized.Dst.Imm = 0
			}
			n, err := encode.Len(sized)
			if err != nil {
				return nil, fmt.Errorf("bir: block %s inst %d (%s): %w", b.Label, i, in.I.String(), err)
			}
			in.I.Addr = addr
			in.I.EncLen = n
			addr += uint64(n)
		}
	}

	// Guard against growing into the data sections.
	for _, s := range p.Data {
		if s.Addr < addr && s.Addr+s.Size() > p.TextBase {
			return nil, fmt.Errorf("%w: text [%#x,%#x) vs %s at %#x",
				ErrTextOverlap, p.TextBase, addr, s.Name, s.Addr)
		}
	}

	// Pass 2: encode with resolved displacements.
	var text []byte
	for _, b := range p.Blocks {
		for i := range b.Insts {
			in := b.Insts[i] // copy; patch displacements locally
			end := int64(in.I.Addr) + int64(in.I.EncLen)
			if in.I.Op.IsBranch() {
				t, ok := labelAddr[in.TargetLabel]
				if !ok {
					return nil, fmt.Errorf("%w: %q in block %s", ErrUndefLabel, in.TargetLabel, b.Label)
				}
				in.I.Dst.Imm = int64(t) - end
				b.Insts[i].I.Target = t
			}
			if mo := in.I.MemOperand(); mo != nil && mo.Mem.RIPRel {
				mo.Mem.Disp = int32(int64(in.DataTarget) - end)
			}
			bytes, err := encode.Encode(in.I)
			if err != nil {
				return nil, fmt.Errorf("bir: encode %s: %w", in.I.String(), err)
			}
			if len(bytes) != in.I.EncLen {
				return nil, fmt.Errorf("bir: %s: size changed between passes (%d -> %d)",
					in.I.String(), in.I.EncLen, len(bytes))
			}
			text = append(text, bytes...)
		}
	}

	bin := &elf.Binary{
		Sections: []*elf.Section{{
			Name:  ".text",
			Addr:  p.TextBase,
			Data:  text,
			Flags: elf.FlagRead | elf.FlagExec,
		}},
	}
	for _, s := range p.Data {
		bin.Sections = append(bin.Sections, s)
	}

	// Symbols: one per block label, sorted for determinism.
	labels := make([]string, 0, len(labelAddr))
	for l := range labelAddr {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool {
		if labelAddr[labels[i]] != labelAddr[labels[j]] {
			return labelAddr[labels[i]] < labelAddr[labels[j]]
		}
		return labels[i] < labels[j]
	})
	for _, l := range labels {
		bin.Symbols = append(bin.Symbols, elf.Symbol{Name: l, Addr: labelAddr[l], Func: true})
	}

	entry, ok := labelAddr[p.EntryLabel]
	if !ok {
		return nil, fmt.Errorf("%w: entry %q", ErrUndefLabel, p.EntryLabel)
	}
	bin.Entry = entry

	if err := bin.Validate(); err != nil {
		return nil, fmt.Errorf("bir: %w", err)
	}
	return bin, nil
}

// Listing renders the program as annotated assembly for inspection.
func (p *Program) Listing() string {
	var sb strings.Builder
	for _, b := range p.Blocks {
		fmt.Fprintf(&sb, "%s:\n", b.Label)
		for _, in := range b.Insts {
			mark := " "
			if in.Protected {
				mark = "+"
			}
			switch {
			case in.I.Op.IsBranch():
				fmt.Fprintf(&sb, " %s %s %s\n", mark, in.I.Mnemonic(), in.TargetLabel)
			case in.DataTarget != 0:
				fmt.Fprintf(&sb, " %s %s  ; data %#x\n", mark, in.I.String(), in.DataTarget)
			default:
				fmt.Fprintf(&sb, " %s %s\n", mark, in.I.String())
			}
		}
	}
	return sb.String()
}
