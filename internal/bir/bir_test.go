package bir

import (
	"errors"
	"strings"
	"testing"

	"github.com/r2r/reinforce/internal/asm"
	"github.com/r2r/reinforce/internal/elf"
	"github.com/r2r/reinforce/internal/emu"
	"github.com/r2r/reinforce/internal/isa"
)

const pincheckSrc = `
.text
_start:
	mov rax, 0
	mov rdi, 0
	lea rsi, [rip+buf]
	mov rdx, 8
	syscall
	mov rax, [rip+buf]
	mov rbx, [rip+pin]
	cmp rax, rbx
	jne deny
grant:
	mov rax, 1
	mov rdi, 1
	lea rsi, [rip+ok]
	mov rdx, 8
	syscall
	mov rax, 60
	mov rdi, 0
	syscall
deny:
	mov rax, 1
	mov rdi, 1
	lea rsi, [rip+no]
	mov rdx, 7
	syscall
	mov rax, 60
	mov rdi, 1
	syscall
.rodata
pin: .ascii "1234ABCD"
ok:  .ascii "GRANTED\n"
no:  .ascii "DENIED\n"
.bss
buf: .zero 8
`

func build(t *testing.T, src string) *elf.Binary {
	t.Helper()
	bin, err := asm.Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

func runBin(t *testing.T, bin *elf.Binary, stdin []byte) (emu.Result, error) {
	t.Helper()
	return emu.New(bin, emu.Config{Stdin: stdin}).Run()
}

func TestDisassembleBlocks(t *testing.T) {
	prog, err := Disassemble(build(t, pincheckSrc))
	if err != nil {
		t.Fatal(err)
	}
	if prog.EntryLabel != "_start" {
		t.Errorf("entry label = %q", prog.EntryLabel)
	}
	// Named blocks survive from the symbol table.
	for _, want := range []string{"_start", "grant", "deny"} {
		if prog.Block(want) == nil {
			t.Errorf("block %q missing; listing:\n%s", want, prog.Listing())
		}
	}
	// The jne must carry a symbolic target.
	var jne *Inst
	for _, b := range prog.Blocks {
		for i := range b.Insts {
			if b.Insts[i].I.Op == isa.JCC {
				jne = &b.Insts[i]
			}
		}
	}
	if jne == nil || jne.TargetLabel != "deny" {
		t.Fatalf("jne not symbolized: %+v", jne)
	}
	// RIP-relative loads must carry absolute data targets.
	bin := build(t, pincheckSrc)
	pinAddr, _ := bin.SymbolAddr("pin")
	found := false
	for _, b := range prog.Blocks {
		for _, in := range b.Insts {
			if in.DataTarget == pinAddr {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("no instruction references pin at %#x", pinAddr)
	}
}

// TestRoundTripBehaviour: disassemble + reassemble must preserve
// behaviour bit-for-bit on both inputs.
func TestRoundTripBehaviour(t *testing.T) {
	orig := build(t, pincheckSrc)
	prog, err := Disassemble(orig)
	if err != nil {
		t.Fatal(err)
	}
	re, err := prog.Reassemble()
	if err != nil {
		t.Fatal(err)
	}
	for _, input := range []string{"1234ABCD", "00000000", "", "1234ABCX"} {
		r1, e1 := runBin(t, orig, []byte(input))
		r2, e2 := runBin(t, re, []byte(input))
		if (e1 == nil) != (e2 == nil) {
			t.Fatalf("input %q: error mismatch %v vs %v", input, e1, e2)
		}
		if string(r1.Stdout) != string(r2.Stdout) || r1.ExitCode != r2.ExitCode {
			t.Errorf("input %q: (%q,%d) vs (%q,%d)", input, r1.Stdout, r1.ExitCode, r2.Stdout, r2.ExitCode)
		}
	}
}

// TestRoundTripIdenticalBytes: reassembling without edits reproduces a
// byte-identical text section (all branches were already rel32).
func TestRoundTripIdenticalBytes(t *testing.T) {
	orig := build(t, pincheckSrc)
	prog, err := Disassemble(orig)
	if err != nil {
		t.Fatal(err)
	}
	re, err := prog.Reassemble()
	if err != nil {
		t.Fatal(err)
	}
	a := orig.Text().Data
	b := re.Text().Data
	if len(a) != len(b) {
		t.Fatalf("text size %d -> %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("text differs at +%#x: %#x vs %#x", i, a[i], b[i])
		}
	}
}

// TestInsertionMovesCode: inserting instructions early in the program
// shifts everything, and the reassembler must fix all displacements.
func TestInsertionMovesCode(t *testing.T) {
	orig := build(t, pincheckSrc)
	prog, err := Disassemble(orig)
	if err != nil {
		t.Fatal(err)
	}
	// Insert a large, behaviour-neutral prefix in the entry block.
	entry := prog.Block("_start")
	nops := make([]Inst, 100)
	for i := range nops {
		nops[i] = Inst{I: isa.NewInst(isa.NOP), Protected: true}
	}
	entry.Insts = append(nops, entry.Insts...)

	re, err := prog.Reassemble()
	if err != nil {
		t.Fatal(err)
	}
	if len(re.Text().Data) <= len(orig.Text().Data) {
		t.Fatal("text did not grow")
	}
	for _, input := range []string{"1234ABCD", "00000000"} {
		r1, _ := runBin(t, orig, []byte(input))
		r2, err2 := runBin(t, re, []byte(input))
		if err2 != nil {
			t.Fatalf("input %q: rewritten binary crashed: %v", input, err2)
		}
		if string(r1.Stdout) != string(r2.Stdout) || r1.ExitCode != r2.ExitCode {
			t.Errorf("input %q: behaviour changed after insertion", input)
		}
	}
}

func TestReplaceWithBlocks(t *testing.T) {
	prog, err := Disassemble(build(t, pincheckSrc))
	if err != nil {
		t.Fatal(err)
	}
	re, err := prog.Reassemble() // refresh addresses
	if err != nil {
		t.Fatal(err)
	}
	_ = re

	// Find the cmp and replace it with cmp;cmp (a trivial "pattern").
	var ref InstRef
	found := false
	for _, b := range prog.Blocks {
		for i := range b.Insts {
			if b.Insts[i].I.Op == isa.CMP {
				ref = InstRef{Block: b, Index: i}
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no cmp found")
	}
	orig := ref.Block.Insts[ref.Index]
	dup := orig
	dup.Protected = true
	before := prog.NumInsts()
	cont := prog.ReplaceWithBlocks(ref, []*Block{{Insts: []Inst{orig, dup}}})
	if cont == "" {
		t.Fatal("no continuation label")
	}
	if prog.NumInsts() != before+1 {
		t.Errorf("inst count %d, want %d", prog.NumInsts(), before+1)
	}
	if prog.Block(cont) == nil {
		t.Errorf("continuation block %q missing", cont)
	}

	re2, err := prog.Reassemble()
	if err != nil {
		t.Fatal(err)
	}
	r, err := runBin(t, re2, []byte("1234ABCD"))
	if err != nil || string(r.Stdout) != "GRANTED\n" {
		t.Errorf("patched binary: %v %q", err, r.Stdout)
	}
}

func TestFindByAddr(t *testing.T) {
	prog, err := Disassemble(build(t, pincheckSrc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Reassemble(); err != nil {
		t.Fatal(err)
	}
	// Every instruction must be findable by its layout address.
	for _, b := range prog.Blocks {
		for i := range b.Insts {
			ref, ok := prog.FindByAddr(b.Insts[i].I.Addr)
			if !ok || ref.Block != b || ref.Index != i {
				t.Fatalf("FindByAddr(%#x) = %+v, %v", b.Insts[i].I.Addr, ref, ok)
			}
		}
	}
	if _, ok := prog.FindByAddr(0xdead); ok {
		t.Error("found instruction at bogus address")
	}
}

func TestAppendBlockAndNewLabel(t *testing.T) {
	prog, err := Disassemble(build(t, pincheckSrc))
	if err != nil {
		t.Fatal(err)
	}
	l1 := prog.NewLabel("fh")
	l2 := prog.NewLabel("fh")
	if l1 == l2 {
		t.Error("NewLabel not unique")
	}
	prog.AppendBlock(&Block{Label: "faulthandler", Insts: []Inst{
		{I: isa.NewInst(isa.MOV, isa.R(isa.RAX), isa.Imm(60)), Protected: true},
		{I: isa.NewInst(isa.MOV, isa.R(isa.RDI), isa.Imm(42)), Protected: true},
		{I: isa.NewInst(isa.SYSCALL), Protected: true},
	}})
	if _, err := prog.Reassemble(); err != nil {
		t.Fatal(err)
	}
	if prog.Block("faulthandler") == nil {
		t.Error("appended block missing")
	}
}

func TestDuplicateLabelRejected(t *testing.T) {
	prog, err := Disassemble(build(t, pincheckSrc))
	if err != nil {
		t.Fatal(err)
	}
	prog.AppendBlock(&Block{Label: "grant"})
	if _, err := prog.Reassemble(); err == nil {
		t.Error("duplicate label accepted")
	}
}

func TestUndefinedTargetRejected(t *testing.T) {
	prog, err := Disassemble(build(t, pincheckSrc))
	if err != nil {
		t.Fatal(err)
	}
	prog.Blocks[0].Insts = append(prog.Blocks[0].Insts, Inst{
		I:           isa.NewInst(isa.JMP, isa.Imm(0)),
		TargetLabel: "nowhere",
	})
	if _, err := prog.Reassemble(); !errors.Is(err, ErrUndefLabel) {
		t.Errorf("err = %v, want ErrUndefLabel", err)
	}
}

func TestNoTextSection(t *testing.T) {
	if _, err := Disassemble(&elf.Binary{}); !errors.Is(err, ErrNoText) {
		t.Errorf("err = %v, want ErrNoText", err)
	}
}

func TestListing(t *testing.T) {
	prog, err := Disassemble(build(t, pincheckSrc))
	if err != nil {
		t.Fatal(err)
	}
	l := prog.Listing()
	for _, want := range []string{"_start:", "grant:", "deny:", "jne deny", "syscall"} {
		if !strings.Contains(l, want) {
			t.Errorf("listing missing %q:\n%s", want, l)
		}
	}
}

func TestTextOverlapGuard(t *testing.T) {
	prog, err := Disassemble(build(t, pincheckSrc))
	if err != nil {
		t.Fatal(err)
	}
	// Pretend a data section sits right after the text base.
	prog.Data = append(prog.Data, &elf.Section{
		Name: ".crowded", Addr: prog.TextBase + 16, Data: make([]byte, 8), Flags: elf.FlagRead,
	})
	if _, err := prog.Reassemble(); !errors.Is(err, ErrTextOverlap) {
		t.Errorf("err = %v, want ErrTextOverlap", err)
	}
}
