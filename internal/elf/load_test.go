package elf

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// segdef describes one program header of a hand-rolled test image.
type segdef struct {
	typ   uint32
	flags uint32 // PF_* bits
	vaddr uint64
	data  []byte
	memsz uint64
}

// phdrImage hand-rolls a program-header-only ELF image: header, phdr
// table at offset 64, segment bytes appended in order. It is the
// adversary's view of what emit.Image produces — the tests below bend
// each field out of shape.
func phdrImage(entry uint64, segs []segdef) []byte {
	le := binary.LittleEndian
	img := make([]byte, ehSize+len(segs)*phentSize)
	copy(img, elfMagic)
	img[4] = elfClass64
	img[5] = elfDataLSB
	img[6] = 1                 // EI_VERSION
	le.PutUint16(img[16:], 2)  // e_type = ET_EXEC
	le.PutUint16(img[18:], 62) // e_machine = EM_X86_64
	le.PutUint32(img[20:], 1)  // e_version
	le.PutUint64(img[24:], entry)
	le.PutUint64(img[32:], ehSize) // e_phoff
	le.PutUint16(img[52:], ehSize)
	le.PutUint16(img[54:], phentSize)
	le.PutUint16(img[56:], uint16(len(segs)))
	for i, s := range segs {
		p := img[ehSize+i*phentSize:]
		le.PutUint32(p[0:], s.typ)
		le.PutUint32(p[4:], s.flags)
		le.PutUint64(p[8:], uint64(len(img))) // p_offset: will append there
		le.PutUint64(p[16:], s.vaddr)
		le.PutUint64(p[24:], s.vaddr)
		le.PutUint64(p[32:], uint64(len(s.data)))
		le.PutUint64(p[40:], s.memsz)
		le.PutUint64(p[48:], 0x1000)
		img = append(img, s.data...)
	}
	return img
}

// validSegs is a minimal well-formed segment set: exec text holding a
// `ret`, read-only data, and a data-less bss.
func validSegs() []segdef {
	return []segdef{
		{typ: ptLoad, flags: 5, vaddr: 0x401000, data: []byte{0xC3}, memsz: 1},
		{typ: ptLoad, flags: 4, vaddr: 0x402000, data: []byte("ro"), memsz: 2},
		{typ: ptLoad, flags: 6, vaddr: 0x403000, memsz: 32},
	}
}

func TestLoadSegments(t *testing.T) {
	b, err := Load(phdrImage(0x401000, validSegs()))
	if err != nil {
		t.Fatal(err)
	}
	if b.Entry != 0x401000 {
		t.Errorf("entry = %#x, want 0x401000", b.Entry)
	}
	want := []struct {
		name string
		data []byte
		size uint64
	}{
		{".text", []byte{0xC3}, 1},
		{".rodata", []byte("ro"), 2},
		{".bss", nil, 32},
	}
	if len(b.Sections) != len(want) {
		t.Fatalf("sections = %d, want %d", len(b.Sections), len(want))
	}
	for i, w := range want {
		s := b.Sections[i]
		if s.Name != w.name || !bytes.Equal(s.Data, w.data) || s.Size() != w.size {
			t.Errorf("section %d = %s %q size %d, want %s %q size %d",
				i, s.Name, s.Data, s.Size(), w.name, w.data, w.size)
		}
	}
}

// Load must dispatch section-header images to Parse — symbols intact.
func TestLoadSectionHeaderImage(t *testing.T) {
	img, err := sampleBinary().Bytes()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Load(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Symbols) != len(sampleBinary().Symbols) {
		t.Errorf("symbols = %d, want %d (Load should take the Parse path)",
			len(b.Symbols), len(sampleBinary().Symbols))
	}
	if b.Section(".rodata") == nil {
		t.Error("named .rodata section missing after Load of section-header image")
	}
}

// Repeated permission classes gain numeric suffixes so names stay
// unique (Validate requires it).
func TestLoadDuplicateClassNames(t *testing.T) {
	segs := validSegs()
	segs = append(segs, segdef{typ: ptLoad, flags: 6, vaddr: 0x404000, memsz: 8})
	b, err := Load(phdrImage(0x401000, segs))
	if err != nil {
		t.Fatal(err)
	}
	if b.Sections[2].Name != ".bss" || b.Sections[3].Name != ".bss.1" {
		t.Errorf("duplicate-class names = %q, %q, want .bss, .bss.1",
			b.Sections[2].Name, b.Sections[3].Name)
	}
}

func TestLoadErrors(t *testing.T) {
	mangle := func(f func([]byte, []segdef) ([]byte, []segdef)) []byte {
		img, segs := f(nil, validSegs())
		if img == nil {
			img = phdrImage(0x401000, segs)
		}
		return img
	}

	cases := []struct {
		name string
		img  []byte
		want error
	}{
		{"nil", nil, ErrNotELF},
		{"garbage", []byte("definitely not an executable image here"), ErrNotELF},
		{"class32", mangle(func(img []byte, s []segdef) ([]byte, []segdef) {
			img = phdrImage(0x401000, s)
			img[4] = 1
			return img, s
		}), ErrNotELF},
		{"truncated header", phdrImage(0x401000, validSegs())[:ehSize-8], ErrNotELF},
		{"no program headers", mangle(func(img []byte, s []segdef) ([]byte, []segdef) {
			img = phdrImage(0x401000, s)
			binary.LittleEndian.PutUint16(img[56:], 0) // e_phnum = 0
			return img, s
		}), ErrMalformed},
		{"wrong phentsize", mangle(func(img []byte, s []segdef) ([]byte, []segdef) {
			img = phdrImage(0x401000, s)
			binary.LittleEndian.PutUint16(img[54:], 48)
			return img, s
		}), ErrMalformed},
		{"truncated phdr table", mangle(func(img []byte, s []segdef) ([]byte, []segdef) {
			img = phdrImage(0x401000, s)
			binary.LittleEndian.PutUint16(img[56:], 200) // claims 200 phdrs
			return img, s
		}), ErrMalformed},
		{"filesz over memsz", mangle(func(img []byte, s []segdef) ([]byte, []segdef) {
			img = phdrImage(0x401000, s)
			// rodata: p_memsz 1 below its p_filesz of 2
			binary.LittleEndian.PutUint64(img[ehSize+phentSize+40:], 1)
			return img, s
		}), ErrMalformed},
		{"segment past EOF", mangle(func(img []byte, s []segdef) ([]byte, []segdef) {
			img = phdrImage(0x401000, s)
			binary.LittleEndian.PutUint64(img[ehSize+8:], uint64(len(img))) // text offset at EOF
			return img, s
		}), ErrMalformed},
		{"no loadable segments", phdrImage(0x401000, []segdef{
			{typ: 4 /* PT_NOTE */, flags: 4, vaddr: 0x401000, data: []byte{1}, memsz: 1},
			{typ: ptLoad, flags: 5, vaddr: 0x402000, memsz: 0}, // zero memsz: skipped
		}), ErrMalformed},
		{"overlapping segments", phdrImage(0x401000, []segdef{
			{typ: ptLoad, flags: 5, vaddr: 0x401000, data: []byte{0xC3, 0xC3}, memsz: 2},
			{typ: ptLoad, flags: 4, vaddr: 0x401001, data: []byte("x"), memsz: 1},
		}), ErrMalformed},
		{"entry outside text", phdrImage(0x500000, validSegs()), ErrMalformed},
		{"entry in non-exec segment", phdrImage(0x402000, validSegs()), ErrMalformed},
	}
	for _, tc := range cases {
		if _, err := Load(tc.img); !errors.Is(err, tc.want) {
			t.Errorf("Load(%s) = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// A zero-memsz PT_LOAD maps nothing: Load skips it rather than
// manufacturing an empty section.
func TestLoadSkipsZeroSizeSegments(t *testing.T) {
	segs := validSegs()
	segs = append(segs, segdef{typ: ptLoad, flags: 4, vaddr: 0x600000, memsz: 0})
	b, err := Load(phdrImage(0x401000, segs))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Sections) != 3 {
		t.Errorf("sections = %d, want 3 (zero-size segment must be skipped)", len(b.Sections))
	}
}
