package elf

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleBinary() *Binary {
	return &Binary{
		Entry: 0x401000,
		Sections: []*Section{
			{Name: ".text", Addr: 0x401000, Data: []byte{0x90, 0xC3}, Flags: FlagRead | FlagExec},
			{Name: ".rodata", Addr: 0x402000, Data: []byte("hello\x00"), Flags: FlagRead},
			{Name: ".data", Addr: 0x600000, Data: []byte{1, 2, 3, 4}, Flags: FlagRead | FlagWrite},
			{Name: ".bss", Addr: 0x601000, Data: nil, MemSize: 64, Flags: FlagRead | FlagWrite},
		},
		Symbols: []Symbol{
			{Name: "_start", Addr: 0x401000, Size: 2, Func: true},
			{Name: "msg", Addr: 0x402000, Size: 6},
			{Name: "counter", Addr: 0x601000, Size: 8},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	b := sampleBinary()
	img, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(img)
	if err != nil {
		t.Fatal(err)
	}
	if got.Entry != b.Entry {
		t.Errorf("entry = %#x, want %#x", got.Entry, b.Entry)
	}
	if len(got.Sections) != len(b.Sections) {
		t.Fatalf("sections = %d, want %d", len(got.Sections), len(b.Sections))
	}
	for _, want := range b.Sections {
		sec := got.Section(want.Name)
		if sec == nil {
			t.Fatalf("section %s missing after round trip", want.Name)
		}
		if sec.Addr != want.Addr || !bytes.Equal(sec.Data, want.Data) || sec.Flags != want.Flags {
			t.Errorf("section %s = {%#x % X flags=%b}, want {%#x % X flags=%b}",
				want.Name, sec.Addr, sec.Data, sec.Flags, want.Addr, want.Data, want.Flags)
		}
		if sec.Size() != want.Size() {
			t.Errorf("section %s size = %d, want %d", want.Name, sec.Size(), want.Size())
		}
	}
	if !reflect.DeepEqual(got.Symbols, b.Symbols) {
		t.Errorf("symbols = %+v, want %+v", got.Symbols, b.Symbols)
	}
}

func TestOffsetCongruence(t *testing.T) {
	// A loader that mmaps segments requires p_offset ≡ p_vaddr (mod page).
	b := sampleBinary()
	img, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	phoff := int(le64(img[32:]))
	phnum := int(le16(img[56:]))
	for i := 0; i < phnum; i++ {
		p := img[phoff+i*56:]
		off := le64(p[8:])
		vaddr := le64(p[16:])
		if off%0x1000 != vaddr%0x1000 {
			t.Errorf("segment %d: offset %#x not congruent to vaddr %#x", i, off, vaddr)
		}
	}
}

func le64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func le16(b []byte) uint16 { return uint16(b[0]) | uint16(b[1])<<8 }

func TestSectionQueries(t *testing.T) {
	b := sampleBinary()
	if b.Text() == nil || b.Text().Name != ".text" {
		t.Fatal("Text() lookup failed")
	}
	if got := b.SectionAt(0x401001); got == nil || got.Name != ".text" {
		t.Errorf("SectionAt(0x401001) = %v", got)
	}
	if got := b.SectionAt(0x601010); got == nil || got.Name != ".bss" {
		t.Errorf("SectionAt in bss = %v", got)
	}
	if got := b.SectionAt(0xdead); got != nil {
		t.Errorf("SectionAt(0xdead) = %v, want nil", got)
	}
	if addr, ok := b.SymbolAddr("msg"); !ok || addr != 0x402000 {
		t.Errorf("SymbolAddr(msg) = %#x, %v", addr, ok)
	}
	if _, ok := b.SymbolAddr("nope"); ok {
		t.Error("SymbolAddr(nope) succeeded")
	}
	if name := b.SymbolAt(0x401000); name != "_start" {
		t.Errorf("SymbolAt = %q, want _start", name)
	}
	if b.CodeSize() != 2 {
		t.Errorf("CodeSize = %d, want 2", b.CodeSize())
	}
}

func TestValidate(t *testing.T) {
	b := sampleBinary()
	if err := b.Validate(); err != nil {
		t.Fatalf("valid binary rejected: %v", err)
	}

	overlap := sampleBinary()
	overlap.Sections[1].Addr = 0x401001
	if err := overlap.Validate(); err == nil {
		t.Error("overlapping sections accepted")
	}

	badEntry := sampleBinary()
	badEntry.Entry = 0x600000 // in .data, not executable
	if err := badEntry.Validate(); err == nil {
		t.Error("entry in non-exec section accepted")
	}

	noEntry := sampleBinary()
	noEntry.Entry = 0x1
	if err := noEntry.Validate(); err == nil {
		t.Error("entry outside all sections accepted")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(nil); !errors.Is(err, ErrNotELF) {
		t.Errorf("Parse(nil) = %v, want ErrNotELF", err)
	}
	if _, err := Parse([]byte("not an elf at all, sorry about that......")); !errors.Is(err, ErrNotELF) {
		t.Errorf("Parse(garbage) = %v, want ErrNotELF", err)
	}
	// 32-bit class byte.
	img, _ := sampleBinary().Bytes()
	img[4] = 1
	if _, err := Parse(img); !errors.Is(err, ErrNotELF) {
		t.Errorf("Parse(class32) = %v, want ErrNotELF", err)
	}
	// Truncated section headers.
	img2, _ := sampleBinary().Bytes()
	if _, err := Parse(img2[:len(img2)-100]); err == nil {
		t.Error("Parse(truncated) succeeded")
	}
}

// TestBytesDeterministic: serialization must be reproducible so that
// code-size comparisons between pipeline stages are meaningful.
func TestBytesDeterministic(t *testing.T) {
	a, err := sampleBinary().Bytes()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sampleBinary().Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("Bytes() not deterministic")
	}
}

// TestRoundTripProperty: random section payloads survive a write/parse
// cycle bit-exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(text, data []byte, entryOff uint16) bool {
		if len(text) == 0 {
			text = []byte{0x90}
		}
		if len(text) > 1<<16 {
			text = text[:1<<16]
		}
		b := &Binary{
			Entry: 0x401000 + uint64(entryOff)%uint64(len(text)),
			Sections: []*Section{
				{Name: ".text", Addr: 0x401000, Data: text, Flags: FlagRead | FlagExec},
				{Name: ".data", Addr: 0x401000 + uint64(len(text)) + 0x1000, Data: data, Flags: FlagRead | FlagWrite},
			},
		}
		img, err := b.Bytes()
		if err != nil {
			return false
		}
		got, err := Parse(img)
		if err != nil {
			return false
		}
		t2 := got.Section(".text")
		d2 := got.Section(".data")
		return t2 != nil && d2 != nil &&
			bytes.Equal(t2.Data, text) && bytes.Equal(d2.Data, data) &&
			got.Entry == b.Entry
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
