// Package elf reads and writes the ELF64 static executables this
// toolchain produces and consumes. It is deliberately small: one loadable
// PT_LOAD segment per section, a symbol table, and no relocations or
// dynamic linking — the shape of a `-static -nostdlib` firmware-style
// binary, which is the paper's target class (legacy or third-party code
// shipped without source).
package elf

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sort"
)

// Section permission flags (SHF_* subset, mapped onto PT_LOAD p_flags).
const (
	FlagRead  uint32 = 1 << 0
	FlagWrite uint32 = 1 << 1
	FlagExec  uint32 = 1 << 2
)

// Section is a named, loadable region of the binary. MemSize may exceed
// len(Data) for BSS-style zero-initialized tails.
type Section struct {
	Name    string
	Addr    uint64
	Data    []byte
	MemSize uint64 // total in-memory size; 0 means len(Data)
	Flags   uint32
}

// Size returns the in-memory size of the section.
func (s *Section) Size() uint64 {
	if s.MemSize > uint64(len(s.Data)) {
		return s.MemSize
	}
	return uint64(len(s.Data))
}

// Contains reports whether the virtual address falls inside the section.
func (s *Section) Contains(addr uint64) bool {
	return addr >= s.Addr && addr < s.Addr+s.Size()
}

// Symbol is an address-valued name. Func distinguishes code symbols
// (STT_FUNC) from data symbols (STT_OBJECT).
type Symbol struct {
	Name string
	Addr uint64
	Size uint64
	Func bool
}

// Binary is a parsed or under-construction static executable.
type Binary struct {
	Entry    uint64
	Sections []*Section
	Symbols  []Symbol
}

// Section returns the named section, or nil.
func (b *Binary) Section(name string) *Section {
	for _, s := range b.Sections {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Text returns the .text section, or nil.
func (b *Binary) Text() *Section { return b.Section(".text") }

// SectionAt returns the section containing the virtual address, or nil.
func (b *Binary) SectionAt(addr uint64) *Section {
	for _, s := range b.Sections {
		if s.Contains(addr) {
			return s
		}
	}
	return nil
}

// SymbolAddr resolves a symbol name to its address.
func (b *Binary) SymbolAddr(name string) (uint64, bool) {
	for _, s := range b.Symbols {
		if s.Name == name {
			return s.Addr, true
		}
	}
	return 0, false
}

// SymbolAt returns the name of a symbol at exactly this address, with
// function symbols preferred, or "".
func (b *Binary) SymbolAt(addr uint64) string {
	name := ""
	for _, s := range b.Symbols {
		if s.Addr == addr {
			if s.Func {
				return s.Name
			}
			if name == "" {
				name = s.Name
			}
		}
	}
	return name
}

// Digest returns a hex SHA-256 content address of the binary: entry
// point, every section (name, address, flags, in-memory size, data),
// and the symbol table, each serialized with explicit lengths so no two
// distinct binaries collide by concatenation. Campaign result caches
// key on it — two binaries with equal digests behave identically under
// the emulator, so their campaign outcomes are interchangeable.
func (b *Binary) Digest() string {
	h := sha256.New()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	str := func(s string) {
		put(uint64(len(s)))
		io.WriteString(h, s)
	}
	put(b.Entry)
	put(uint64(len(b.Sections)))
	for _, s := range b.Sections {
		str(s.Name)
		put(s.Addr)
		put(uint64(s.Flags))
		put(s.Size())
		put(uint64(len(s.Data)))
		h.Write(s.Data)
	}
	put(uint64(len(b.Symbols)))
	for _, s := range b.Symbols {
		str(s.Name)
		put(s.Addr)
		put(s.Size)
		if s.Func {
			put(1)
		} else {
			put(0)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// CodeSize returns the total size of executable sections: the metric the
// paper's Table V reports overhead against.
func (b *Binary) CodeSize() int {
	n := 0
	for _, s := range b.Sections {
		if s.Flags&FlagExec != 0 {
			n += len(s.Data)
		}
	}
	return n
}

// Validate performs structural checks: no overlapping sections, entry
// within an executable section, symbols inside some section.
func (b *Binary) Validate() error {
	sorted := make([]*Section, len(b.Sections))
	copy(sorted, b.Sections)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Addr < sorted[j].Addr })
	for i := 1; i < len(sorted); i++ {
		prev, cur := sorted[i-1], sorted[i]
		if prev.Addr+prev.Size() > cur.Addr {
			return fmt.Errorf("elf: sections %s and %s overlap", prev.Name, cur.Name)
		}
	}
	entrySec := b.SectionAt(b.Entry)
	if entrySec == nil || entrySec.Flags&FlagExec == 0 {
		return fmt.Errorf("elf: entry %#x not in an executable section", b.Entry)
	}
	return nil
}

// ELF constants used by the writer/reader.
const (
	elfMagic     = "\x7fELF"
	elfClass64   = 2
	elfDataLSB   = 1
	elfVersion   = 1
	elfOSABINone = 0
	etExec       = 2
	emX86_64     = 62
	ptLoad       = 1
	shtNull      = 0
	shtProgbits  = 1
	shtSymtab    = 2
	shtStrtab    = 3
	shtNobits    = 8
	shfWrite     = 1
	shfAlloc     = 2
	shfExecinstr = 4
	sttObject    = 1
	sttFunc      = 2
	stbGlobal    = 1
	shnAbs       = 0xFFF1
	ehSize       = 64
	phentSize    = 56
	shentSize    = 64
	symentSize   = 24
	pageSize     = 0x1000
)

// Bytes serializes the binary into a valid ELF64 executable image.
// Layout: ELF header, program headers, section data (offset congruent to
// vaddr mod page size), .symtab, .strtab, .shstrtab, section headers.
func (b *Binary) Bytes() ([]byte, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	secs := make([]*Section, len(b.Sections))
	copy(secs, b.Sections)
	sort.Slice(secs, func(i, j int) bool { return secs[i].Addr < secs[j].Addr })

	var out []byte
	pad := func(n int) {
		for len(out)%n != 0 {
			out = append(out, 0)
		}
	}
	le := binary.LittleEndian
	put16 := func(v uint16) { out = le.AppendUint16(out, v) }
	put32 := func(v uint32) { out = le.AppendUint32(out, v) }
	put64 := func(v uint64) { out = le.AppendUint64(out, v) }

	phoff := uint64(ehSize)
	phnum := len(secs)

	// ELF header.
	out = append(out, elfMagic...)
	out = append(out, elfClass64, elfDataLSB, elfVersion, elfOSABINone)
	out = append(out, make([]byte, 8)...) // padding
	put16(etExec)
	put16(emX86_64)
	put32(elfVersion)
	put64(b.Entry)
	put64(phoff)
	shoffPos := len(out)
	put64(0) // e_shoff patched later
	put32(0) // e_flags
	put16(ehSize)
	put16(phentSize)
	put16(uint16(phnum))
	put16(shentSize)
	// e_shnum: null + progbits sections + symtab + strtab + shstrtab
	put16(uint16(1 + len(secs) + 3))
	put16(uint16(1 + len(secs) + 2)) // e_shstrndx (last)

	// Program headers (offsets patched after layout).
	phPos := len(out)
	for range secs {
		out = append(out, make([]byte, phentSize)...)
	}

	// Section data, each at an offset congruent to vaddr mod pageSize.
	offsets := make([]uint64, len(secs))
	for i, s := range secs {
		off := uint64(len(out))
		want := s.Addr % pageSize
		if off%pageSize != want {
			padBy := (want - off%pageSize + pageSize) % pageSize
			out = append(out, make([]byte, padBy)...)
		}
		offsets[i] = uint64(len(out))
		out = append(out, s.Data...)
	}

	// Patch program headers.
	for i, s := range secs {
		p := phPos + i*phentSize
		var flags uint32
		if s.Flags&FlagRead != 0 {
			flags |= 4 // PF_R
		}
		if s.Flags&FlagWrite != 0 {
			flags |= 2 // PF_W
		}
		if s.Flags&FlagExec != 0 {
			flags |= 1 // PF_X
		}
		le.PutUint32(out[p:], ptLoad)
		le.PutUint32(out[p+4:], flags)
		le.PutUint64(out[p+8:], offsets[i])
		le.PutUint64(out[p+16:], s.Addr)
		le.PutUint64(out[p+24:], s.Addr)
		le.PutUint64(out[p+32:], uint64(len(s.Data)))
		le.PutUint64(out[p+40:], s.Size())
		le.PutUint64(out[p+48:], pageSize)
	}

	// String tables.
	shstr := stringTable{}
	shstr.add("") // index 0
	str := stringTable{}
	str.add("")

	// Symbol table.
	pad(8)
	symtabOff := uint64(len(out))
	out = append(out, make([]byte, symentSize)...) // null symbol
	for _, sym := range b.Symbols {
		nameOff := str.add(sym.Name)
		put32(nameOff)
		info := byte(stbGlobal<<4) | sttObject
		if sym.Func {
			info = byte(stbGlobal<<4) | sttFunc
		}
		out = append(out, info, 0)
		// st_shndx: find containing section index (1-based among secs).
		shndx := uint16(shnAbs)
		for i, s := range secs {
			if s.Contains(sym.Addr) {
				shndx = uint16(1 + i)
				break
			}
		}
		put16(shndx)
		put64(sym.Addr)
		put64(sym.Size)
	}
	symtabSize := uint64(len(out)) - symtabOff

	strtabOff := uint64(len(out))
	out = append(out, str.bytes()...)
	strtabSize := uint64(len(out)) - strtabOff

	// Build shstrtab with all names first.
	secNameOffs := make([]uint32, len(secs))
	for i, s := range secs {
		secNameOffs[i] = shstr.add(s.Name)
	}
	symtabName := shstr.add(".symtab")
	strtabName := shstr.add(".strtab")
	shstrtabName := shstr.add(".shstrtab")

	shstrtabOff := uint64(len(out))
	out = append(out, shstr.bytes()...)
	shstrtabSize := uint64(len(out)) - shstrtabOff

	// Section headers.
	pad(8)
	shoff := uint64(len(out))
	le.PutUint64(out[shoffPos:], shoff)

	writeSh := func(name uint32, typ, flags uint32, addr, off, size uint64, link uint32, entsize uint64) {
		put32(name)
		put32(typ)
		put64(uint64(flags))
		put64(addr)
		put64(off)
		put64(size)
		put32(link)
		put32(0) // sh_info
		put64(8) // sh_addralign
		put64(entsize)
	}

	// Null section header.
	out = append(out, make([]byte, shentSize)...)
	for i, s := range secs {
		var flags uint32 = shfAlloc
		if s.Flags&FlagWrite != 0 {
			flags |= shfWrite
		}
		if s.Flags&FlagExec != 0 {
			flags |= shfExecinstr
		}
		typ := uint32(shtProgbits)
		if len(s.Data) == 0 && s.Size() > 0 {
			typ = shtNobits
		}
		writeSh(secNameOffs[i], typ, flags, s.Addr, offsets[i], s.Size(), 0, 0)
	}
	strtabIndex := uint32(1 + len(secs) + 1)
	writeSh(symtabName, shtSymtab, 0, 0, symtabOff, symtabSize, strtabIndex, symentSize)
	writeSh(strtabName, shtStrtab, 0, 0, strtabOff, strtabSize, 0, 0)
	writeSh(shstrtabName, shtStrtab, 0, 0, shstrtabOff, shstrtabSize, 0, 0)

	return out, nil
}

// stringTable builds an ELF string table with deduplication.
type stringTable struct {
	data    []byte
	indices map[string]uint32
}

func (st *stringTable) add(s string) uint32 {
	if st.indices == nil {
		st.indices = make(map[string]uint32)
	}
	if off, ok := st.indices[s]; ok {
		return off
	}
	off := uint32(len(st.data))
	st.data = append(st.data, s...)
	st.data = append(st.data, 0)
	st.indices[s] = off
	return off
}

func (st *stringTable) bytes() []byte { return st.data }

// Parse errors.
var (
	ErrNotELF    = errors.New("elf: not an ELF file")
	ErrMalformed = errors.New("elf: malformed file")
)

// Parse reads an ELF64 executable produced by Bytes (or any static
// little-endian x86-64 executable using the same simple layout).
func Parse(data []byte) (*Binary, error) {
	if len(data) < ehSize || string(data[:4]) != elfMagic {
		return nil, ErrNotELF
	}
	if data[4] != elfClass64 || data[5] != elfDataLSB {
		return nil, fmt.Errorf("%w: not ELF64 little-endian", ErrNotELF)
	}
	le := binary.LittleEndian
	at := func(off, n uint64) ([]byte, error) {
		if off+n > uint64(len(data)) || off+n < off {
			return nil, ErrMalformed
		}
		return data[off : off+n], nil
	}

	b := &Binary{Entry: le.Uint64(data[24:])}
	shoff := le.Uint64(data[40:])
	shnum := le.Uint16(data[60:])
	shstrndx := le.Uint16(data[62:])

	if shoff == 0 || shnum == 0 {
		return nil, fmt.Errorf("%w: missing section headers", ErrMalformed)
	}

	type rawSh struct {
		name                  uint32
		typ                   uint32
		flags                 uint64
		addr, off, size, ents uint64
		link                  uint32
	}
	shs := make([]rawSh, shnum)
	for i := range shs {
		hdr, err := at(shoff+uint64(i)*shentSize, shentSize)
		if err != nil {
			return nil, err
		}
		shs[i] = rawSh{
			name:  le.Uint32(hdr[0:]),
			typ:   le.Uint32(hdr[4:]),
			flags: le.Uint64(hdr[8:]),
			addr:  le.Uint64(hdr[16:]),
			off:   le.Uint64(hdr[24:]),
			size:  le.Uint64(hdr[32:]),
			link:  le.Uint32(hdr[40:]),
			ents:  le.Uint64(hdr[56:]),
		}
	}
	if int(shstrndx) >= len(shs) {
		return nil, fmt.Errorf("%w: bad shstrndx", ErrMalformed)
	}
	shstr, err := at(shs[shstrndx].off, shs[shstrndx].size)
	if err != nil {
		return nil, err
	}
	secName := func(off uint32) string {
		return cString(shstr, off)
	}

	var symtab, strtab []byte
	var symtabEnts uint64
	for _, sh := range shs {
		switch sh.typ {
		case shtProgbits, shtNobits:
			if sh.flags&shfAlloc == 0 {
				continue
			}
			var flags uint32 = FlagRead
			if sh.flags&shfWrite != 0 {
				flags |= FlagWrite
			}
			if sh.flags&shfExecinstr != 0 {
				flags |= FlagExec
			}
			sec := &Section{
				Name:    secName(sh.name),
				Addr:    sh.addr,
				Flags:   flags,
				MemSize: sh.size,
			}
			if sh.typ == shtProgbits {
				d, err := at(sh.off, sh.size)
				if err != nil {
					return nil, err
				}
				sec.Data = append([]byte(nil), d...)
			}
			b.Sections = append(b.Sections, sec)
		case shtSymtab:
			d, err := at(sh.off, sh.size)
			if err != nil {
				return nil, err
			}
			symtab = d
			symtabEnts = sh.size / symentSize
			if int(sh.link) < len(shs) {
				sd, err := at(shs[sh.link].off, shs[sh.link].size)
				if err != nil {
					return nil, err
				}
				strtab = sd
			}
		}
	}

	for i := uint64(1); i < symtabEnts; i++ {
		e := symtab[i*symentSize:]
		nameOff := le.Uint32(e[0:])
		info := e[4]
		addr := le.Uint64(e[8:])
		size := le.Uint64(e[16:])
		name := cString(strtab, nameOff)
		if name == "" {
			continue
		}
		b.Symbols = append(b.Symbols, Symbol{
			Name: name,
			Addr: addr,
			Size: size,
			Func: info&0xF == sttFunc,
		})
	}
	sort.Slice(b.Sections, func(i, j int) bool { return b.Sections[i].Addr < b.Sections[j].Addr })
	return b, nil
}

// Load parses any ELF64 executable this toolchain reads or writes, and
// structurally validates the result. Images carrying section headers
// (the assembler's Bytes layout, or any ordinary static executable)
// parse via Parse; the program-header-only images internal/emit writes
// reconstruct their sections from the PT_LOAD segments, with canonical
// names derived from segment permissions (.text for executable, .rodata
// for read-only, .data for initialized writable, .bss for zero-fill) —
// so hardened binaries emitted as standalone executables round-trip
// into the same Binary the campaign and store machinery consumes.
//
// Unlike Parse, Load runs Validate on the result: a malformed image
// (overlapping segments, entry outside executable code) fails loudly at
// load time instead of corrupting a downstream campaign.
func Load(data []byte) (*Binary, error) {
	if len(data) < ehSize || string(data[:4]) != elfMagic {
		return nil, ErrNotELF
	}
	if data[4] != elfClass64 || data[5] != elfDataLSB {
		return nil, fmt.Errorf("%w: not ELF64 little-endian", ErrNotELF)
	}
	le := binary.LittleEndian
	var b *Binary
	var err error
	if le.Uint64(data[40:]) != 0 && le.Uint16(data[60:]) != 0 {
		b, err = Parse(data)
	} else {
		b, err = parseSegments(data)
	}
	if err != nil {
		return nil, err
	}
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	return b, nil
}

// parseSegments reconstructs sections from the program-header table of
// a section-header-less image. Zero-size PT_LOAD entries are skipped
// (they map nothing), non-PT_LOAD entries are ignored, and anything
// structurally impossible — truncated header table, file sizes past the
// end of the image, p_filesz exceeding p_memsz — is ErrMalformed.
func parseSegments(data []byte) (*Binary, error) {
	le := binary.LittleEndian
	b := &Binary{Entry: le.Uint64(data[24:])}
	phoff := le.Uint64(data[32:])
	phents := le.Uint16(data[54:])
	phnum := le.Uint16(data[56:])
	if phoff == 0 || phnum == 0 {
		return nil, fmt.Errorf("%w: no program headers", ErrMalformed)
	}
	if phents != phentSize {
		return nil, fmt.Errorf("%w: program header entry size %d, want %d", ErrMalformed, phents, phentSize)
	}
	counts := map[string]int{}
	for i := uint64(0); i < uint64(phnum); i++ {
		off := phoff + i*phentSize
		if off+phentSize > uint64(len(data)) || off+phentSize < off {
			return nil, fmt.Errorf("%w: truncated program header table", ErrMalformed)
		}
		hdr := data[off : off+phentSize]
		if le.Uint32(hdr[0:]) != ptLoad {
			continue
		}
		pflags := le.Uint32(hdr[4:])
		foff := le.Uint64(hdr[8:])
		vaddr := le.Uint64(hdr[16:])
		filesz := le.Uint64(hdr[32:])
		memsz := le.Uint64(hdr[40:])
		if memsz == 0 {
			continue
		}
		if filesz > memsz {
			return nil, fmt.Errorf("%w: segment at %#x has p_filesz > p_memsz", ErrMalformed, vaddr)
		}
		if foff+filesz > uint64(len(data)) || foff+filesz < foff {
			return nil, fmt.Errorf("%w: segment at %#x extends past end of file", ErrMalformed, vaddr)
		}
		var flags uint32
		if pflags&4 != 0 {
			flags |= FlagRead
		}
		if pflags&2 != 0 {
			flags |= FlagWrite
		}
		if pflags&1 != 0 {
			flags |= FlagExec
		}
		sec := &Section{
			Addr:    vaddr,
			Flags:   flags,
			MemSize: memsz,
		}
		if filesz > 0 {
			sec.Data = append([]byte(nil), data[foff:foff+filesz]...)
		}
		sec.Name = segmentName(flags, len(sec.Data) > 0, counts)
		b.Sections = append(b.Sections, sec)
	}
	if len(b.Sections) == 0 {
		return nil, fmt.Errorf("%w: no loadable segments", ErrMalformed)
	}
	sort.Slice(b.Sections, func(i, j int) bool { return b.Sections[i].Addr < b.Sections[j].Addr })
	return b, nil
}

// segmentName assigns the canonical section name for a segment's
// permission class; repeats of a class gain a numeric suffix so names
// stay unique (and the reconstruction stays deterministic).
func segmentName(flags uint32, hasData bool, counts map[string]int) string {
	var base string
	switch {
	case flags&FlagExec != 0:
		base = ".text"
	case flags&FlagWrite != 0 && hasData:
		base = ".data"
	case flags&FlagWrite != 0:
		base = ".bss"
	default:
		base = ".rodata"
	}
	n := counts[base]
	counts[base]++
	if n == 0 {
		return base
	}
	return fmt.Sprintf("%s.%d", base, n)
}

func cString(table []byte, off uint32) string {
	if uint64(off) >= uint64(len(table)) {
		return ""
	}
	end := off
	for end < uint32(len(table)) && table[end] != 0 {
		end++
	}
	return string(table[off:end])
}
