// Package campaign orchestrates fault-injection sweeps at production
// scale. It layers batching, sharding, progress reporting, and
// structured export on top of the snapshot-cached execution engine in
// internal/fault:
//
//   - Run drives one campaign through the engine: fault sites are
//     enumerated once per binary, the golden run is memoized, and every
//     injection forks a copy-on-write machine snapshot instead of
//     re-initializing memory and registers (the state-reuse strategy
//     that makes exhaustive fault simulation tractable, cf. ARMORY).
//   - Shard{I, N} restricts a run to every N-th fault, so one campaign
//     can be split across processes or machines; Merge recombines the
//     per-shard reports into a report bit-identical to an unsharded run.
//   - RunAll sweeps many binaries/variants in one call with aggregate
//     progress callbacks — the shape of the paper's evaluation, which
//     compares the same campaign across original, Faulter+Patcher,
//     Hybrid, and duplication-baseline variants.
//
// Results are deterministic: for a given campaign, the report is
// bit-identical regardless of worker count or shard decomposition.
package campaign

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/r2r/reinforce/internal/fault"
)

// Shard selects a round-robin slice of a campaign's fault list: fault j
// is simulated iff j mod N == I. The zero value means "the whole
// campaign".
type Shard struct {
	Index int // shard number in [0, Count)
	Count int // total shards; <= 1 disables sharding
}

// String renders the shard as "i/n".
func (s Shard) String() string {
	if s.Count <= 1 {
		return "1/1"
	}
	return fmt.Sprintf("%d/%d", s.Index, s.Count)
}

// normalize clamps the zero value and validates the rest.
func (s Shard) normalize() (Shard, error) {
	if s.Count <= 1 {
		return Shard{Index: 0, Count: 1}, nil
	}
	if s.Index < 0 || s.Index >= s.Count {
		return s, fmt.Errorf("campaign: shard index %d outside [0,%d)", s.Index, s.Count)
	}
	return s, nil
}

// Progress is a point-in-time view of a running batch.
type Progress struct {
	Job      string // name of the campaign being executed
	JobIndex int    // 0-based position in the batch
	Jobs     int    // batch size (1 for Run)
	Done     int    // injections finished in this job
	Total    int    // injections in this job
}

// Options tune campaign execution without changing its results.
type Options struct {
	// Workers overrides the per-campaign worker count (default: the
	// campaign's own setting, itself defaulting to GOMAXPROCS).
	Workers int

	// Shard restricts execution to one shard of the fault list (for
	// RunOrder2, one shard of the pair list — see there).
	Shard Shard

	// MaxPairs caps order-2 pair enumeration (RunOrder2 only;
	// 0 = fault.DefaultMaxPairs).
	MaxPairs int

	// Progress, when non-nil, receives serialized updates as
	// injections complete: Done is monotonically non-decreasing and the
	// last call of a job has Done == Total. Called from the executing
	// goroutines but never concurrently. RunOrder2 reports its two
	// phases as separate jobs ("order-1", "order-2").
	Progress func(Progress)
}

// Run executes one fault campaign on the engine and assembles the
// standard report. With a non-trivial shard, the report holds only that
// shard's injections (in shard-local order); Merge recombines them.
func Run(c fault.Campaign, opt Options) (*fault.Report, error) {
	rep, _, err := run("", 0, 1, c, opt)
	return rep, err
}

func run(name string, jobIndex, jobs int, c fault.Campaign, opt Options) (*fault.Report, fault.Tally, error) {
	shard, err := opt.Shard.normalize()
	if err != nil {
		return nil, fault.Tally{}, err
	}
	s, err := fault.NewSession(c)
	if err != nil {
		return nil, fault.Tally{}, err
	}
	progress := progressFunc(opt, name, jobIndex, jobs)
	injections, tally := s.ExecuteShard(shard.Index, shard.Count, opt.Workers, progress)
	return s.Report(injections), tally, nil
}

// progressFunc adapts the Options callback to the engine's raw
// (done, total) firehose: workers race to deliver their counts, and
// dropping the stale ones keeps Done monotonic, so the final callback a
// consumer sees is always Done == Total. Returns nil when no callback
// is configured.
func progressFunc(opt Options, name string, jobIndex, jobs int) func(done, total int) {
	if opt.Progress == nil {
		return nil
	}
	var mu sync.Mutex
	last := -1
	return func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		if done < last {
			return
		}
		last = done
		opt.Progress(Progress{
			Job: name, JobIndex: jobIndex, Jobs: jobs,
			Done: done, Total: total,
		})
	}
}

// Job names one campaign of a batch.
type Job struct {
	Name     string
	Campaign fault.Campaign
}

// Result is the outcome of one batch job.
type Result struct {
	Name    string
	Report  *fault.Report // nil when Err is set
	Tally   fault.Tally
	Elapsed time.Duration
	Err     error
}

// RunAll executes a batch of campaigns — typically the same sweep over
// many binaries or hardened variants. Jobs run sequentially (each one
// already saturates the worker pool internally); a failing job records
// its error and the batch continues.
func RunAll(jobs []Job, opt Options) []Result {
	out := make([]Result, len(jobs))
	for i, job := range jobs {
		start := time.Now()
		rep, tally, err := run(job.Name, i, len(jobs), job.Campaign, opt)
		out[i] = Result{
			Name:    job.Name,
			Report:  rep,
			Tally:   tally,
			Elapsed: time.Since(start),
			Err:     err,
		}
	}
	return out
}

// Order2Report is the outcome of an order-2 multi-fault campaign: the
// order-1 sweep it was pruned from, plus the simulated fault pairs.
type Order2Report struct {
	Solo  *fault.Report         // the complete order-1 campaign
	Pairs []fault.PairInjection // simulated pairs, in enumeration order

	// PairTally is the engine-provided outcome aggregate of Pairs
	// (populated by RunOrder2 and MergeOrder2, like Result.Tally for
	// order-1 batches). PairCount and SummarizeOrder2 derive from
	// Pairs directly, so they are exact on any report.
	PairTally fault.Tally
}

// PairCount returns how many pairs had the given outcome.
func (r *Order2Report) PairCount(o fault.Outcome) int {
	n := 0
	for _, p := range r.Pairs {
		if p.Outcome == o {
			n++
		}
	}
	return n
}

// SuccessfulPairs returns the pairs that constitute order-2
// vulnerabilities.
func (r *Order2Report) SuccessfulPairs() []fault.PairInjection {
	var out []fault.PairInjection
	for _, p := range r.Pairs {
		if p.Outcome == fault.OutcomeSuccess {
			out = append(out, p)
		}
	}
	return out
}

// RunOrder2 executes an order-2 multi-fault campaign: the complete
// order-1 sweep runs first (always unsharded — pair pruning needs every
// solo outcome), then the deterministically enumerated pair list (see
// fault.EnumeratePairs) is simulated. opt.Shard applies to the pair
// list only; opt.MaxPairs caps it. Because the pair list is a pure
// function of the (deterministic) solo sweep, results are bit-identical
// across worker counts and shard decompositions.
func RunOrder2(c fault.Campaign, opt Options) (*Order2Report, error) {
	shard, err := opt.Shard.normalize()
	if err != nil {
		return nil, err
	}
	s, err := fault.NewSession(c)
	if err != nil {
		return nil, err
	}
	solo, _ := s.ExecuteShard(0, 1, opt.Workers, progressFunc(opt, "order-1", 0, 2))
	pairs := fault.EnumeratePairs(solo, opt.MaxPairs)
	injections, tally := s.ExecutePairShard(pairs, shard.Index, shard.Count, opt.Workers,
		progressFunc(opt, "order-2", 1, 2))
	return &Order2Report{
		Solo:      s.Report(solo),
		Pairs:     injections,
		PairTally: tally,
	}, nil
}

// MergeOrder2 recombines the pair shards of one order-2 campaign
// (shards[i] produced with Shard{i, len(shards)}) into a report
// bit-identical to the unsharded run. Every shard carries the same
// (unsharded) solo report; the pair lists recombine round-robin.
func MergeOrder2(shards []*Order2Report) (*Order2Report, error) {
	n := len(shards)
	if n == 0 {
		return nil, errors.New("campaign: no shards to merge")
	}
	if n == 1 {
		return shards[0], nil
	}
	total := 0
	for i, sh := range shards {
		if sh == nil {
			return nil, fmt.Errorf("campaign: shard %d is nil", i)
		}
		if sh.Solo.GoodOracle != shards[0].Solo.GoodOracle ||
			sh.Solo.BadOracle != shards[0].Solo.BadOracle ||
			len(sh.Solo.Injections) != len(shards[0].Solo.Injections) {
			return nil, fmt.Errorf("campaign: shard %d solo sweep differs — not the same campaign", i)
		}
		total += len(sh.Pairs)
	}
	for i, sh := range shards {
		want := (total - i + n - 1) / n
		if len(sh.Pairs) != want {
			return nil, fmt.Errorf("campaign: shard %d has %d pairs, want %d of %d total",
				i, len(sh.Pairs), want, total)
		}
	}
	merged := &Order2Report{
		Solo:  shards[0].Solo,
		Pairs: make([]fault.PairInjection, 0, total),
	}
	cursor := make([]int, n)
	for j := 0; j < total; j++ {
		w := j % n
		merged.Pairs = append(merged.Pairs, shards[w].Pairs[cursor[w]])
		cursor[w]++
	}
	for _, p := range merged.Pairs {
		merged.PairTally[p.Outcome]++
	}
	return merged, nil
}

// Merge recombines the reports of all Count shards of one campaign
// (shards[i] produced with Shard{i, len(shards)}) into a single report
// bit-identical to the unsharded run. The shard reports must come from
// the same campaign and be passed in shard order.
func Merge(shards []*fault.Report) (*fault.Report, error) {
	n := len(shards)
	if n == 0 {
		return nil, errors.New("campaign: no shards to merge")
	}
	if n == 1 {
		return shards[0], nil
	}
	total := 0
	for i, sh := range shards {
		if sh == nil {
			return nil, fmt.Errorf("campaign: shard %d is nil", i)
		}
		if sh.GoodOracle != shards[0].GoodOracle || sh.BadOracle != shards[0].BadOracle {
			return nil, fmt.Errorf("campaign: shard %d oracles differ — not the same campaign", i)
		}
		total += len(sh.Injections)
	}
	// Round-robin assignment means shard i holds faults i, i+n, i+2n...
	// — so shard sizes must match that decomposition exactly.
	for i, sh := range shards {
		want := (total - i + n - 1) / n
		if len(sh.Injections) != want {
			return nil, fmt.Errorf("campaign: shard %d has %d injections, want %d of %d total",
				i, len(sh.Injections), want, total)
		}
	}
	merged := &fault.Report{
		Trace:      shards[0].Trace,
		GoodOracle: shards[0].GoodOracle,
		BadOracle:  shards[0].BadOracle,
		Injections: make([]fault.Injection, 0, total),
	}
	cursor := make([]int, n)
	for j := 0; j < total; j++ {
		w := j % n
		merged.Injections = append(merged.Injections, shards[w].Injections[cursor[w]])
		cursor[w]++
	}
	return merged, nil
}
