// Package campaign orchestrates fault-injection sweeps at production
// scale. It layers batching, sharding, progress reporting, and
// structured export on top of the snapshot-cached execution engine in
// internal/fault:
//
//   - Run drives one campaign through the engine: fault sites are
//     enumerated once per binary, the golden run is memoized, and every
//     injection forks a copy-on-write machine snapshot instead of
//     re-initializing memory and registers (the state-reuse strategy
//     that makes exhaustive fault simulation tractable, cf. ARMORY).
//   - Shard{I, N} restricts a run to every N-th fault, so one campaign
//     can be split across processes or machines; Merge recombines the
//     per-shard reports into a report bit-identical to an unsharded run.
//   - RunAll sweeps many binaries/variants in one call with aggregate
//     progress callbacks — the shape of the paper's evaluation, which
//     compares the same campaign across original, Faulter+Patcher,
//     Hybrid, and duplication-baseline variants.
//
// Results are deterministic: for a given campaign, the report is
// bit-identical regardless of worker count or shard decomposition.
package campaign

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/r2r/reinforce/internal/fault"
)

// Shard selects a round-robin slice of a campaign's fault list: fault j
// is simulated iff j mod N == I. The zero value means "the whole
// campaign".
type Shard struct {
	Index int // shard number in [0, Count)
	Count int // total shards; <= 1 disables sharding
}

// String renders the shard as "i/n".
func (s Shard) String() string {
	if s.Count <= 1 {
		return "1/1"
	}
	return fmt.Sprintf("%d/%d", s.Index, s.Count)
}

// ParseShard parses the CLI's "i/n" shard syntax. The empty string is
// the whole campaign (the zero Shard); anything else must be exactly
// two base-10 integers around one slash, with n >= 1 and i in [0, n).
func ParseShard(s string) (Shard, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Shard{}, nil
	}
	idx, cnt, ok := strings.Cut(s, "/")
	if !ok {
		return Shard{}, fmt.Errorf("campaign: bad shard %q: want i/n", s)
	}
	i, err := strconv.Atoi(strings.TrimSpace(idx))
	if err != nil {
		return Shard{}, fmt.Errorf("campaign: bad shard index in %q: %v", s, err)
	}
	n, err := strconv.Atoi(strings.TrimSpace(cnt))
	if err != nil {
		return Shard{}, fmt.Errorf("campaign: bad shard count in %q: %v", s, err)
	}
	if n < 1 {
		return Shard{}, fmt.Errorf("campaign: shard count %d in %q: want >= 1", n, s)
	}
	if i < 0 || i >= n {
		return Shard{}, fmt.Errorf("campaign: shard index %d outside [0,%d)", i, n)
	}
	return Shard{Index: i, Count: n}, nil
}

// normalize clamps the zero value and validates the rest.
func (s Shard) normalize() (Shard, error) {
	if s.Count <= 1 {
		return Shard{Index: 0, Count: 1}, nil
	}
	if s.Index < 0 || s.Index >= s.Count {
		return s, fmt.Errorf("campaign: shard index %d outside [0,%d)", s.Index, s.Count)
	}
	return s, nil
}

// Progress is a point-in-time view of a running batch.
type Progress struct {
	Job      string // name of the campaign being executed
	JobIndex int    // 0-based position in the batch
	Jobs     int    // batch size (1 for Run)
	Done     int    // injections finished in this job
	Total    int    // injections in this job
}

// Options tune campaign execution without changing its results.
type Options struct {
	// Workers overrides the per-campaign worker count (default: the
	// campaign's own setting, itself defaulting to GOMAXPROCS).
	Workers int

	// Shard restricts execution to one shard of the fault list (for
	// RunOrder2, one shard of the pair list — see there).
	Shard Shard

	// MaxPairs caps order-2 pair enumeration (RunOrder2 only;
	// 0 = fault.DefaultMaxPairs).
	MaxPairs int

	// MaxTriples caps order-3 triple enumeration (RunOrder3 only;
	// 0 = fault.DefaultMaxTriples).
	MaxTriples int

	// Prune routes execution through the fault-equivalence pruning pass
	// (fault.Pruner / fault.PairPruner): statically classifiable faults
	// and state-equivalent pair forks are answered without simulation.
	// Like Workers and Store, pruning never changes results — reports
	// stay bit-identical, test-enforced by the differential harness in
	// prunediff_test.go — so it is not part of the plan key. It does
	// change the execution accounting, reported as PruneStats.
	// RunOrder3 always prunes; order 3 is infeasible without it.
	Prune bool

	// Progress, when non-nil, receives serialized updates as
	// injections complete: Done is monotonically non-decreasing and the
	// last call of a job has Done == Total. Called from the executing
	// goroutines but never concurrently. RunOrder2 reports its two
	// phases as separate jobs ("order-1", "order-2"; a corpus cell
	// labels them "<case>/o2 order-1" and "<case>/o2 order-2" under the
	// cell's job index). A campaign answered entirely from the store
	// reports a single Done == Total update.
	Progress func(Progress)

	// Store, when non-nil, is the content-addressed result cache the
	// planner consults before executing and the executor writes back
	// to (see Store). Results are bit-identical with or without it —
	// test-enforced alongside the worker/shard determinism guarantees.
	Store *Store

	// Pool, when non-nil, is the shared execution pool the run's
	// sessions execute on (see WorkerPool) instead of spawning private
	// per-stage goroutine sets — the corpus scheduler's injection
	// point. Like Workers, it never changes results, only where the
	// simulations run; it is not part of the plan key.
	Pool fault.Pool

	// newSession, when set, replaces fault.NewSession for the run —
	// the corpus runner's hook for reusing one session across the
	// orders of a cell chain (session construction replays the golden
	// runs and snapshots the trace, too expensive to repeat per cell).
	newSession func(fault.Campaign) (*fault.Session, error)
}

// session builds (or fetches, via the newSession hook) the run's
// session and injects the shared pool when one is configured.
func (opt Options) session(c fault.Campaign) (*fault.Session, error) {
	var s *fault.Session
	var err error
	if opt.newSession != nil {
		s, err = opt.newSession(c)
	} else {
		s, err = fault.NewSession(c)
	}
	if err != nil {
		return nil, err
	}
	if opt.Pool != nil {
		s.SetPool(opt.Pool)
	}
	return s, nil
}

// Run executes one fault campaign on the engine and assembles the
// standard report. With a non-trivial shard, the report holds only that
// shard's injections (in shard-local order); Merge recombines them.
// With Options.Store set, the plan is answered from the store when
// possible and recorded into it otherwise.
func Run(c fault.Campaign, opt Options) (*fault.Report, error) {
	res, err := runInc("", 0, 1, c, opt, nil, false)
	if err != nil {
		return nil, err
	}
	return res.Report, nil
}

// RunResult is the full outcome of an incremental campaign run: the
// report, the memo a follow-up run against a patched binary can reuse
// outcomes from, and the cache accounting.
type RunResult struct {
	Report *fault.Report
	Tally  fault.Tally
	Memo   *Memo
	Cache  CacheStats
	Prune  *fault.PruneStats // pruning accounting; nil unless Options.Prune
}

// RunIncremental executes one campaign through the planner → store →
// executor path. prev, when non-nil, is the memo of a previous run
// (typically against the pre-patch binary of a driver iteration): every
// fault whose recorded footprint avoids the bytes changed since is
// answered from it, and only the rest are re-simulated. Results are
// bit-identical to Run without any cache.
func RunIncremental(c fault.Campaign, opt Options, prev *Memo) (*RunResult, error) {
	return runInc("", 0, 1, c, opt, prev, true)
}

// runInc is the shared order-1 execution path. wantMemo gates the
// footprint recording and memo assembly: callers that discard the memo
// and bring no cache (Run, RunAll without a store) keep the plain
// simulation hot path.
func runInc(name string, jobIndex, jobs int, c fault.Campaign, opt Options, prev *Memo, wantMemo bool) (*RunResult, error) {
	shard, err := opt.Shard.normalize()
	if err != nil {
		return nil, err
	}
	s, err := opt.session(c)
	if err != nil {
		return nil, err
	}
	e := &executor{s: s, store: opt.Store, prune: opt.Prune}
	progress := progressFunc(opt, name, jobIndex, jobs)
	injections, tally, memo, stats, err := e.solo(c, shard, opt.Workers, prev, wantMemo, progress)
	if err != nil {
		return nil, err
	}
	return &RunResult{
		Report: s.Report(injections),
		Tally:  tally,
		Memo:   memo,
		Cache:  stats,
		Prune:  e.pruneStats(),
	}, nil
}

// progressFunc adapts the Options callback to the engine's raw
// (done, total) firehose: workers race to deliver their counts, and
// dropping the stale ones keeps Done monotonic, so the final callback a
// consumer sees is always Done == Total. Returns nil when no callback
// is configured.
func progressFunc(opt Options, name string, jobIndex, jobs int) func(done, total int) {
	if opt.Progress == nil {
		return nil
	}
	var mu sync.Mutex
	last := -1
	return func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		if done < last {
			return
		}
		last = done
		opt.Progress(Progress{
			Job: name, JobIndex: jobIndex, Jobs: jobs,
			Done: done, Total: total,
		})
	}
}

// Job names one campaign of a batch.
type Job struct {
	Name     string
	Campaign fault.Campaign
}

// Result is the outcome of one batch job.
type Result struct {
	Name    string
	Report  *fault.Report // nil when Err is set
	Tally   fault.Tally
	Elapsed time.Duration
	Cache   CacheStats        // store/memo accounting (hit/miss counters zero without Options.Store)
	Prune   *fault.PruneStats // pruning accounting; nil unless Options.Prune
	Err     error
}

// RunAll executes a batch of campaigns — typically the same sweep over
// many binaries or hardened variants. Jobs run sequentially (each one
// already saturates the worker pool internally); a failing job records
// its error and the batch continues.
func RunAll(jobs []Job, opt Options) []Result {
	out := make([]Result, len(jobs))
	for i, job := range jobs {
		start := time.Now() //lint:allow wallclock (Elapsed is reporting-only, stripped before determinism comparisons)
		res, err := runInc(job.Name, i, len(jobs), job.Campaign, opt, nil, false)
		out[i] = Result{Name: job.Name, Elapsed: time.Since(start), Err: err}
		if err == nil {
			out[i].Report = res.Report
			out[i].Tally = res.Tally
			out[i].Cache = res.Cache
			out[i].Prune = res.Prune
		}
	}
	return out
}

// Order2Report is the outcome of an order-2 multi-fault campaign: the
// order-1 sweep it was pruned from, plus the simulated fault pairs.
type Order2Report struct {
	Solo  *fault.Report         // the complete order-1 campaign
	Pairs []fault.PairInjection // simulated pairs, in enumeration order

	// PairTally is the engine-provided outcome aggregate of Pairs
	// (populated by RunOrder2 and MergeOrder2, like Result.Tally for
	// order-1 batches). PairCount and SummarizeOrder2 derive from
	// Pairs directly, so they are exact on any report.
	PairTally fault.Tally
}

// PairCount returns how many pairs had the given outcome.
func (r *Order2Report) PairCount(o fault.Outcome) int {
	n := 0
	for _, p := range r.Pairs {
		if p.Outcome == o {
			n++
		}
	}
	return n
}

// SuccessfulPairs returns the pairs that constitute order-2
// vulnerabilities.
func (r *Order2Report) SuccessfulPairs() []fault.PairInjection {
	var out []fault.PairInjection
	for _, p := range r.Pairs {
		if p.Outcome == fault.OutcomeSuccess {
			out = append(out, p)
		}
	}
	return out
}

// RunOrder2 executes an order-2 multi-fault campaign: the complete
// order-1 sweep runs first (always unsharded — pair pruning needs every
// solo outcome), then the deterministically enumerated pair list (see
// fault.EnumeratePairs) is simulated on the first-fault snapshot tree.
// opt.Shard applies to the pair list only; opt.MaxPairs caps it.
// Because the pair list is a pure function of the (deterministic) solo
// sweep, results are bit-identical across worker counts and shard
// decompositions — and across store hits and cold runs.
func RunOrder2(c fault.Campaign, opt Options) (*Order2Report, error) {
	res, err := runOrder2Inc("", 0, 1, c, opt, nil, false)
	if err != nil {
		return nil, err
	}
	return res.Report, nil
}

// Order2Result is the full outcome of an incremental order-2 run.
type Order2Result struct {
	Report *Order2Report
	Memo   *Memo // solo-sweep memo, reusable by the next incremental run
	Cache  CacheStats
	Prune  *fault.PruneStats // pruning accounting; nil unless Options.Prune
}

// RunOrder2Result is RunOrder2 returning the full result — cache and
// pruning accounting included — without the incremental memo
// machinery. The CLI surfaces these stats; the report itself is
// bit-identical to RunOrder2's.
func RunOrder2Result(c fault.Campaign, opt Options) (*Order2Result, error) {
	return runOrder2Inc("", 0, 1, c, opt, nil, false)
}

// RunOrder2Incremental is RunOrder2 through the planner → store →
// executor path. The solo sweep reuses prev like RunIncremental (and is
// stored under its own order-1 plan key, so order-1 and order-2
// campaigns of the same binary share it); the pair stage is reused on
// exact plan-key matches only, since pair runs fork mid-trace faulted
// machines whose footprints are not recorded.
func RunOrder2Incremental(c fault.Campaign, opt Options, prev *Memo) (*Order2Result, error) {
	return runOrder2Inc("", 0, 1, c, opt, prev, true)
}

// runOrder2Inc is the shared order-2 execution path. With an empty name
// the two phases report as the documented stand-alone jobs ("order-1"
// 0/2, "order-2" 1/2); a batch caller (RunCorpus) passes its own
// name/jobIndex/jobs and the phases report as "<name> order-1" and
// "<name> order-2" under that index — still separate jobs, so the
// Done-is-monotonic-per-job contract of Options.Progress holds.
func runOrder2Inc(name string, jobIndex, jobs int, c fault.Campaign, opt Options, prev *Memo, wantMemo bool) (*Order2Result, error) {
	soloProgress := progressFunc(opt, "order-1", 0, 2)
	pairProgress := progressFunc(opt, "order-2", 1, 2)
	if name != "" {
		soloProgress = progressFunc(opt, name+" order-1", jobIndex, jobs)
		pairProgress = progressFunc(opt, name+" order-2", jobIndex, jobs)
	}
	shard, err := opt.Shard.normalize()
	if err != nil {
		return nil, err
	}
	s, err := opt.session(c)
	if err != nil {
		return nil, err
	}
	e := &executor{s: s, store: opt.Store, prune: opt.Prune}
	solo, _, memo, stats, err := e.solo(c, Shard{}, opt.Workers, prev, wantMemo, soloProgress)
	if err != nil {
		return nil, err
	}
	injections, tally, pairStats, err := e.pairs(c, shard, opt.Workers, opt.MaxPairs, solo,
		pairProgress)
	if err != nil {
		return nil, err
	}
	stats.Add(pairStats)
	return &Order2Result{
		Report: &Order2Report{
			Solo:      s.Report(solo),
			Pairs:     injections,
			PairTally: tally,
		},
		Memo:  memo,
		Cache: stats,
		Prune: e.pruneStats(),
	}, nil
}

// MergeOrder2 recombines the pair shards of one order-2 campaign
// (shards[i] produced with Shard{i, len(shards)}) into a report
// bit-identical to the unsharded run. Every shard carries the same
// (unsharded) solo report; the pair lists recombine round-robin.
func MergeOrder2(shards []*Order2Report) (*Order2Report, error) {
	n := len(shards)
	if n == 0 {
		return nil, errors.New("campaign: no shards to merge")
	}
	if n == 1 {
		return shards[0], nil
	}
	total := 0
	for i, sh := range shards {
		if sh == nil {
			return nil, fmt.Errorf("campaign: shard %d is nil", i)
		}
		if sh.Solo.GoodOracle != shards[0].Solo.GoodOracle ||
			sh.Solo.BadOracle != shards[0].Solo.BadOracle ||
			len(sh.Solo.Injections) != len(shards[0].Solo.Injections) {
			return nil, fmt.Errorf("campaign: shard %d solo sweep differs — not the same campaign", i)
		}
		total += len(sh.Pairs)
	}
	for i, sh := range shards {
		want := (total - i + n - 1) / n
		if len(sh.Pairs) != want {
			return nil, fmt.Errorf("campaign: shard %d has %d pairs, want %d of %d total",
				i, len(sh.Pairs), want, total)
		}
		// An engine-populated tally must agree with the pair list it
		// came with — a cheap integrity check that catches truncated or
		// hand-edited shards the size decomposition alone cannot (a
		// shorter pair list can masquerade as a smaller campaign).
		// Hand-built reports with an unpopulated tally are exempt.
		if sh.PairTally.Total() == 0 {
			continue
		}
		var tt fault.Tally
		for _, p := range sh.Pairs {
			tt[p.Outcome]++
		}
		if tt != sh.PairTally {
			return nil, fmt.Errorf("campaign: shard %d pair tally %v inconsistent with its %d pairs",
				i, sh.PairTally, len(sh.Pairs))
		}
	}
	merged := &Order2Report{
		Solo:  shards[0].Solo,
		Pairs: make([]fault.PairInjection, 0, total),
	}
	cursor := make([]int, n)
	for j := 0; j < total; j++ {
		w := j % n
		merged.Pairs = append(merged.Pairs, shards[w].Pairs[cursor[w]])
		cursor[w]++
	}
	for _, p := range merged.Pairs {
		merged.PairTally[p.Outcome]++
	}
	return merged, nil
}

// Merge recombines the reports of all Count shards of one campaign
// (shards[i] produced with Shard{i, len(shards)}) into a single report
// bit-identical to the unsharded run. The shard reports must come from
// the same campaign and be passed in shard order.
func Merge(shards []*fault.Report) (*fault.Report, error) {
	n := len(shards)
	if n == 0 {
		return nil, errors.New("campaign: no shards to merge")
	}
	if n == 1 {
		return shards[0], nil
	}
	total := 0
	for i, sh := range shards {
		if sh == nil {
			return nil, fmt.Errorf("campaign: shard %d is nil", i)
		}
		if sh.GoodOracle != shards[0].GoodOracle || sh.BadOracle != shards[0].BadOracle {
			return nil, fmt.Errorf("campaign: shard %d oracles differ — not the same campaign", i)
		}
		total += len(sh.Injections)
	}
	// Round-robin assignment means shard i holds faults i, i+n, i+2n...
	// — so shard sizes must match that decomposition exactly.
	for i, sh := range shards {
		want := (total - i + n - 1) / n
		if len(sh.Injections) != want {
			return nil, fmt.Errorf("campaign: shard %d has %d injections, want %d of %d total",
				i, len(sh.Injections), want, total)
		}
	}
	merged := &fault.Report{
		Trace:      shards[0].Trace,
		GoodOracle: shards[0].GoodOracle,
		BadOracle:  shards[0].BadOracle,
		Injections: make([]fault.Injection, 0, total),
	}
	cursor := make([]int, n)
	for j := 0; j < total; j++ {
		w := j % n
		merged.Injections = append(merged.Injections, shards[w].Injections[cursor[w]])
		cursor[w]++
	}
	return merged, nil
}
