package campaign

import (
	"reflect"
	"testing"

	"github.com/r2r/reinforce/internal/cases"
	"github.com/r2r/reinforce/internal/fault"
)

// corpusJobs builds a small two-case corpus from the registered
// catalog (the mini pincheck used elsewhere lacks a second case).
func corpusJobs(t *testing.T, models ...fault.Model) []CorpusJob {
	t.Helper()
	var jobs []CorpusJob
	for _, name := range []string{"pincheck", "otpauth"} {
		c, err := cases.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, CorpusJob{
			Case: c.Name,
			Campaign: fault.Campaign{
				Binary: c.MustBuild(), Good: c.Good, Bad: c.Bad,
				Models: models, DedupSites: true,
			},
		})
	}
	return jobs
}

func runCorpus(t *testing.T, jobs []CorpusJob, opt CorpusOptions) *CorpusResult {
	t.Helper()
	res, err := RunCorpus(jobs, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Errs() {
		t.Fatal(e)
	}
	return res
}

// injectionsOf flattens a corpus result to the per-cell injection
// lists, the bit-identity currency of the engine's determinism tests.
func injectionsOf(res *CorpusResult) [][]fault.Injection {
	var out [][]fault.Injection
	for _, c := range res.Results {
		out = append(out, c.Report.Injections)
		if c.Order2 != nil {
			pairs := make([]fault.Injection, 0, len(c.Order2.Pairs))
			for _, p := range c.Order2.Pairs {
				pairs = append(pairs, fault.Injection{Fault: p.Pair.First, Outcome: p.Outcome})
			}
			out = append(out, pairs)
		}
	}
	return out
}

// TestCorpusWorkerInvariance: corpus results are bit-identical across
// worker counts, at both orders.
func TestCorpusWorkerInvariance(t *testing.T) {
	jobs := corpusJobs(t, fault.ModelSkip)
	opt := func(workers int) CorpusOptions {
		return CorpusOptions{
			Options: Options{Workers: workers, MaxPairs: 128},
			Orders:  []int{1, 2},
		}
	}
	serial := runCorpus(t, jobs, opt(1))
	parallel := runCorpus(t, jobs, opt(8))
	if !reflect.DeepEqual(injectionsOf(serial), injectionsOf(parallel)) {
		t.Fatal("1-worker and 8-worker corpus runs differ")
	}
}

// TestCorpusSharesStoreAcrossOrders: with Orders {1, 2}, the order-2
// cell's solo sweep is the same plan the order-1 cell stored — so even
// a cold corpus run gets store hits, proving the cells really share one
// store.
func TestCorpusSharesStoreAcrossOrders(t *testing.T) {
	jobs := corpusJobs(t, fault.ModelSkip)
	res := runCorpus(t, jobs, CorpusOptions{
		Options: Options{MaxPairs: 128},
		Orders:  []int{1, 2},
	})
	if res.Cache.Hits < len(jobs) {
		t.Fatalf("cold corpus run shared %d store hits, want >= %d (one per order-2 solo stage)",
			res.Cache.Hits, len(jobs))
	}
	for _, c := range res.Results {
		if c.Order == 2 && c.Cache.Hits < 1 {
			t.Errorf("%s order-2 cell did not reuse the order-1 sweep: %+v", c.Case, c.Cache)
		}
	}
}

// TestCorpusWarmReplayBitIdentical: a second corpus run over the same
// disk-backed store must answer every campaign from it and reproduce
// the cold run bit for bit — the `r2r corpus -cache-dir` warm-pass
// contract CI smoke-tests end to end.
func TestCorpusWarmReplayBitIdentical(t *testing.T) {
	jobs := corpusJobs(t, fault.ModelSkip, fault.ModelBitFlip)
	dir := t.TempDir()
	opt := func(st *Store) CorpusOptions {
		return CorpusOptions{Options: Options{Store: st, MaxPairs: 128}, Orders: []int{1, 2}}
	}
	cold := runCorpus(t, jobs, opt(newTestStore(t, dir)))
	warm := runCorpus(t, jobs, opt(newTestStore(t, dir))) // fresh store, same dir
	if !reflect.DeepEqual(injectionsOf(cold), injectionsOf(warm)) {
		t.Fatal("warm corpus replay differs from the cold run")
	}
	if warm.Cache.Misses != 0 {
		t.Fatalf("warm corpus run missed the store: %+v", warm.Cache)
	}
	if warm.Cache.Hits == 0 {
		t.Fatal("warm corpus run recorded no hits")
	}
	if cold.Cache.Misses == 0 {
		t.Fatal("cold corpus run reported no misses — the warm assertion is vacuous")
	}
}

// TestCorpusMemoAcrossVariants: two jobs under one case name chain the
// cross-binary memo. The second binary differs only in never-executed
// code on its own page (the store therefore *misses* — different
// digest, different plan key), so any reuse can come only from the
// memo chain; a regression dropping the per-case memo threading makes
// Reused collapse to zero and this test fail.
func TestCorpusMemoAcrossVariants(t *testing.T) {
	binA := assembleT(t, deadTailSource("mov rax, 1"))
	binB := assembleT(t, deadTailSource("mov rax, 2"))
	if binA.Digest() == binB.Digest() {
		t.Fatal("variant binaries share a digest")
	}
	res := runCorpus(t, []CorpusJob{
		{Case: "mini", Campaign: miniCampaign(binA, fault.ModelSkip)},
		{Case: "mini", Campaign: miniCampaign(binB, fault.ModelSkip)},
	}, CorpusOptions{})
	second := res.Results[1]
	if second.Cache.Hits != 0 {
		t.Fatalf("dead-tail variant hit the store (%+v) — the memo is not what answered", second.Cache)
	}
	if second.Cache.Reused == 0 {
		t.Fatalf("memo chain answered nothing across variants: %+v", second.Cache)
	}
	// The variants' outcome vectors must agree (the dead tail is
	// unreachable), and the memo-assisted run must equal a cold run of
	// the second binary.
	cold, err := Run(miniCampaign(binB, fault.ModelSkip), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold.Injections, second.Report.Injections) {
		t.Fatal("memo-assisted corpus run differs from a cold run of the variant")
	}
}

// TestCorpusDefaultsAndValidation: order defaults to {1}; orders
// outside {1, 2, 3} are rejected; a failing cell does not sink the
// sweep.
func TestCorpusDefaultsAndValidation(t *testing.T) {
	jobs := corpusJobs(t, fault.ModelSkip)
	res := runCorpus(t, jobs, CorpusOptions{})
	if len(res.Results) != len(jobs) || res.Results[0].Order != 1 {
		t.Fatalf("default orders: got %d results", len(res.Results))
	}
	if _, err := RunCorpus(jobs, CorpusOptions{Orders: []int{4}}); err == nil {
		t.Fatal("order 4 accepted")
	}
	bad := append([]CorpusJob{}, jobs...)
	bad[0].Campaign.Good = bad[0].Campaign.Bad // indistinguishable oracle
	res, err := RunCorpus(bad, CorpusOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errs()) != 1 {
		t.Fatalf("want exactly one failing cell, got %v", res.Errs())
	}
	if res.Results[1].Err != nil {
		t.Fatal("healthy cell failed alongside the broken one")
	}
}

// TestCorpusSummaries: the export path — per-cell rows plus the
// aggregate — matches the cell reports.
func TestCorpusSummaries(t *testing.T) {
	jobs := corpusJobs(t, fault.ModelSkip)
	res := runCorpus(t, jobs, CorpusOptions{Options: Options{MaxPairs: 64}, Orders: []int{1, 2}})
	sums := res.Summaries()
	if len(sums) != len(res.Results)+1 {
		t.Fatalf("got %d summaries, want %d cells + aggregate", len(sums), len(res.Results))
	}
	agg := sums[len(sums)-1]
	if agg.Name != "corpus" {
		t.Fatalf("aggregate row named %q", agg.Name)
	}
	wantInj, wantSuccess, wantPairs := 0, 0, 0
	for _, c := range res.Results {
		wantInj += len(c.Report.Injections)
		wantSuccess += c.Report.Count(fault.OutcomeSuccess)
		if c.Order2 != nil {
			wantPairs += len(c.Order2.Pairs)
		}
	}
	if agg.Injections != wantInj || agg.Success != wantSuccess {
		t.Errorf("aggregate = %d/%d injections/success, want %d/%d",
			agg.Injections, agg.Success, wantInj, wantSuccess)
	}
	if agg.Order2 == nil || agg.Order2.Pairs != wantPairs {
		t.Errorf("aggregate pairs = %+v, want %d", agg.Order2, wantPairs)
	}
	if agg.Cache == nil {
		t.Error("aggregate lost the shared-cache accounting")
	}
}
