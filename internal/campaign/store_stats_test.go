package campaign

import (
	"fmt"
	"sync"
	"testing"

	"github.com/r2r/reinforce/internal/fault"
)

// TestStoreStatsConcurrent: the lifetime counters stay exact — and
// race-free — when lookups, saves, and Stats() snapshots run
// concurrently, the access pattern of sharded campaigns executing
// against one store.
func TestStoreStatsConcurrent(t *testing.T) {
	st, err := NewStore("")
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 8
		perW    = 50
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				key := fmt.Sprintf("key-%d-%d", w, i)
				if _, ok := st.Lookup(key); ok {
					t.Errorf("lookup of unsaved %s hit", key)
				}
				if err := st.Save(&Entry{Key: key, Records: []Record{{Outcome: fault.OutcomeIgnored}}}); err != nil {
					t.Errorf("save %s: %v", key, err)
				}
				if _, ok := st.Lookup(key); !ok {
					t.Errorf("lookup of saved %s missed", key)
				}
				st.Stats() // must be safe mid-flight
			}
		}(w)
	}
	wg.Wait()
	got := st.Stats()
	want := StoreStats{
		Hits:   workers * perW,
		Misses: workers * perW,
		Saves:  workers * perW,
	}
	if got != want {
		t.Fatalf("stats %+v, want %+v", got, want)
	}
}
