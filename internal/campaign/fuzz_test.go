package campaign

import (
	"fmt"
	"strings"
	"testing"
)

// FuzzParseShard: any input either fails with an error or yields a
// shard whose invariants hold — the empty spec is the whole campaign,
// anything else has a count >= 1 and an index inside [0, count). The
// canonical "i/n" rendering of a real decomposition must reparse to
// the same shard. (Shard.String is NOT the round-trip form: it renders
// the whole campaign as "1/1", which parses to index 1 of 1 shard and
// correctly fails — the plan-key encoding is not the CLI syntax.)
func FuzzParseShard(f *testing.F) {
	for _, seed := range []string{"", "0/4", "3/4", " 1 / 2 ", "1/1", "0/1",
		"4/4", "-1/3", "a/b", "1", "1/2/3", "0x1/2", "؆/2", "9999999999999999999/3"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sh, err := ParseShard(s)
		if err != nil {
			return
		}
		if strings.TrimSpace(s) == "" {
			if sh != (Shard{}) {
				t.Fatalf("ParseShard(%q) = %+v, want the zero shard", s, sh)
			}
			return
		}
		if sh.Count < 1 {
			t.Fatalf("ParseShard(%q) accepted count %d", s, sh.Count)
		}
		if sh.Index < 0 || sh.Index >= sh.Count {
			t.Fatalf("ParseShard(%q) accepted index %d outside [0,%d)", s, sh.Index, sh.Count)
		}
		if _, err := sh.normalize(); err != nil {
			t.Fatalf("ParseShard(%q) = %+v does not normalize: %v", s, sh, err)
		}
		if sh.Count > 1 {
			again, err := ParseShard(fmt.Sprintf("%d/%d", sh.Index, sh.Count))
			if err != nil || again != sh {
				t.Fatalf("round-trip of %+v: %+v, %v", sh, again, err)
			}
		}
	})
}
