// Package campaigntest holds the shared helpers behind the campaign
// package's differential soundness harness (prunediff_test.go) and any
// other test that needs catalog-backed campaigns plus bit-identity
// assertions. It lives in its own package so experiment and CLI tests
// can reuse the same assertions without import cycles.
package campaigntest

import (
	"reflect"
	"testing"

	"github.com/r2r/reinforce/internal/campaign"
	"github.com/r2r/reinforce/internal/cases"
	"github.com/r2r/reinforce/internal/fault"
)

// StepLimit is the reference-run budget the harness uses — the same
// bound the CLI and the experiments suite run the catalog under.
const StepLimit = 32 << 20

// CaseCampaign builds a fault campaign over one catalog case study.
// maxFaults caps enumeration (0 = unlimited) so the full differential
// matrix stays affordable.
func CaseCampaign(tb testing.TB, name string, models []fault.Model, maxFaults int) fault.Campaign {
	tb.Helper()
	c, err := cases.Get(name)
	if err != nil {
		tb.Fatal(err)
	}
	return fault.Campaign{
		Binary:    c.MustBuild(),
		Good:      c.Good,
		Bad:       c.Bad,
		Models:    models,
		StepLimit: StepLimit,
		MaxFaults: maxFaults,
	}
}

// AssertReportsEqual fails unless two order-1 reports are bit-identical
// in everything the campaign's results consist of: oracles and the full
// injection list (faults and outcomes, in order).
func AssertReportsEqual(tb testing.TB, label string, want, got *fault.Report) {
	tb.Helper()
	if want.GoodOracle != got.GoodOracle || want.BadOracle != got.BadOracle {
		tb.Fatalf("%s: oracles differ: (%v,%v) vs (%v,%v)",
			label, want.GoodOracle, want.BadOracle, got.GoodOracle, got.BadOracle)
	}
	if len(want.Injections) != len(got.Injections) {
		tb.Fatalf("%s: %d injections vs %d", label, len(want.Injections), len(got.Injections))
	}
	for i := range want.Injections {
		if want.Injections[i] != got.Injections[i] {
			tb.Fatalf("%s: injection %d differs: %+v vs %+v",
				label, i, want.Injections[i], got.Injections[i])
		}
	}
}

// AssertOrder2Equal fails unless two order-2 reports are bit-identical:
// the solo stage, the pair list (pairs and outcomes, in order), and the
// engine tally.
func AssertOrder2Equal(tb testing.TB, label string, want, got *campaign.Order2Report) {
	tb.Helper()
	AssertReportsEqual(tb, label+" solo", want.Solo, got.Solo)
	if !reflect.DeepEqual(want.Pairs, got.Pairs) {
		tb.Fatalf("%s: pair stages differ (%d vs %d pairs)", label, len(want.Pairs), len(got.Pairs))
	}
	if want.PairTally != got.PairTally {
		tb.Fatalf("%s: pair tallies differ: %v vs %v", label, want.PairTally, got.PairTally)
	}
}
