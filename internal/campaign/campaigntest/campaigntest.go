// Package campaigntest holds the shared helpers behind the campaign
// package's differential soundness harness (prunediff_test.go) and any
// other test that needs catalog-backed campaigns plus bit-identity
// assertions. It lives in its own package so experiment and CLI tests
// can reuse the same assertions without import cycles.
package campaigntest

import (
	"reflect"
	"testing"

	"github.com/r2r/reinforce/internal/campaign"
	"github.com/r2r/reinforce/internal/cases"
	"github.com/r2r/reinforce/internal/fault"
	"github.com/r2r/reinforce/internal/harden"
)

// StepLimit is the reference-run budget the harness uses — the same
// bound the CLI and the experiments suite run the catalog under.
const StepLimit = 32 << 20

// CaseCampaign builds a fault campaign over one catalog case study.
// maxFaults caps enumeration (0 = unlimited) so the full differential
// matrix stays affordable.
func CaseCampaign(tb testing.TB, name string, models []fault.Model, maxFaults int) fault.Campaign {
	tb.Helper()
	c, err := cases.Get(name)
	if err != nil {
		tb.Fatal(err)
	}
	return fault.Campaign{
		Binary:    c.MustBuild(),
		Good:      c.Good,
		Bad:       c.Bad,
		Models:    models,
		StepLimit: StepLimit,
		MaxFaults: maxFaults,
	}
}

// HardenedCampaign is CaseCampaign over the hybrid-hardened build of a
// catalog case (branch hardening plus the skip-window pass) — the
// artifact shape where static screens like the inert-window tier meet
// hardening-inserted spacers, clones and validation chains, so the
// differential harness exercises them against real countermeasure code
// rather than only the unhardened originals.
func HardenedCampaign(tb testing.TB, name string, models []fault.Model, maxFaults int) fault.Campaign {
	tb.Helper()
	c, err := cases.Get(name)
	if err != nil {
		tb.Fatal(err)
	}
	hr, err := harden.Hybrid(c.MustBuild(), harden.HybridOptions{SkipWindow: true})
	if err != nil {
		tb.Fatal(err)
	}
	return fault.Campaign{
		Binary:    hr.Binary,
		Good:      c.Good,
		Bad:       c.Bad,
		Models:    models,
		StepLimit: StepLimit,
		MaxFaults: maxFaults,
	}
}

// AssertReportsEqual fails unless two order-1 reports are bit-identical
// in everything the campaign's results consist of: oracles and the full
// injection list (faults and outcomes, in order).
func AssertReportsEqual(tb testing.TB, label string, want, got *fault.Report) {
	tb.Helper()
	if want.GoodOracle != got.GoodOracle || want.BadOracle != got.BadOracle {
		tb.Fatalf("%s: oracles differ: (%v,%v) vs (%v,%v)",
			label, want.GoodOracle, want.BadOracle, got.GoodOracle, got.BadOracle)
	}
	if len(want.Injections) != len(got.Injections) {
		tb.Fatalf("%s: %d injections vs %d", label, len(want.Injections), len(got.Injections))
	}
	for i := range want.Injections {
		if want.Injections[i] != got.Injections[i] {
			tb.Fatalf("%s: injection %d differs: %+v vs %+v",
				label, i, want.Injections[i], got.Injections[i])
		}
	}
}

// AssertOrder2Equal fails unless two order-2 reports are bit-identical:
// the solo stage, the pair list (pairs and outcomes, in order), and the
// engine tally.
func AssertOrder2Equal(tb testing.TB, label string, want, got *campaign.Order2Report) {
	tb.Helper()
	AssertReportsEqual(tb, label+" solo", want.Solo, got.Solo)
	if !reflect.DeepEqual(want.Pairs, got.Pairs) {
		tb.Fatalf("%s: pair stages differ (%d vs %d pairs)", label, len(want.Pairs), len(got.Pairs))
	}
	if want.PairTally != got.PairTally {
		tb.Fatalf("%s: pair tallies differ: %v vs %v", label, want.PairTally, got.PairTally)
	}
}

// AssertOrder3Equal fails unless two order-3 reports are bit-identical:
// the full order-2 lower stages plus the triple list (triples and
// outcomes, in order) and its tally.
func AssertOrder3Equal(tb testing.TB, label string, want, got *campaign.Order3Report) {
	tb.Helper()
	AssertOrder2Equal(tb, label+" lower", want.Order2(), got.Order2())
	if !reflect.DeepEqual(want.Triples, got.Triples) {
		tb.Fatalf("%s: triple stages differ (%d vs %d triples)", label, len(want.Triples), len(got.Triples))
	}
	if want.TripleTally != got.TripleTally {
		tb.Fatalf("%s: triple tallies differ: %v vs %v", label, want.TripleTally, got.TripleTally)
	}
}

// AssertCorpusEqual fails unless two corpus results hold bit-identical
// cells: same cell order (case, order) and, per cell, identical reports
// at every order the cell ran. Execution accounting (elapsed, cache
// stats) is deliberately excluded — it varies across scheduling shapes
// while results must not.
func AssertCorpusEqual(tb testing.TB, label string, want, got *campaign.CorpusResult) {
	tb.Helper()
	if len(want.Results) != len(got.Results) {
		tb.Fatalf("%s: %d cells vs %d", label, len(want.Results), len(got.Results))
	}
	for i := range want.Results {
		w, g := &want.Results[i], &got.Results[i]
		cell := label + ": " + w.Case
		if w.Case != g.Case || w.Order != g.Order {
			tb.Fatalf("%s: cell %d is (%s, o%d) vs (%s, o%d)",
				label, i, w.Case, w.Order, g.Case, g.Order)
		}
		if (w.Err == nil) != (g.Err == nil) {
			tb.Fatalf("%s: cell %d errors differ: %v vs %v", label, i, w.Err, g.Err)
		}
		if w.Err != nil {
			continue
		}
		if (w.Order2 == nil) != (g.Order2 == nil) || (w.Order3 == nil) != (g.Order3 == nil) {
			tb.Fatalf("%s: cell %d ran different stages", label, i)
		}
		switch {
		case w.Order3 != nil:
			AssertOrder3Equal(tb, cell, w.Order3, g.Order3)
		case w.Order2 != nil:
			AssertOrder2Equal(tb, cell, w.Order2, g.Order2)
		default:
			AssertReportsEqual(tb, cell, w.Report, g.Report)
		}
	}
}
