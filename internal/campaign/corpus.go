// Corpus runner: one batched, cache-sharing campaign sweep across a
// whole case-study corpus. Where RunAll sweeps many binaries under one
// campaign shape, RunCorpus fans out the full (case × model × order)
// matrix the way the evaluation methodology papers ask for — every
// program of the corpus attacked under the same attacker model — while
// sharing one content-addressed Store and one cross-binary Memo chain
// per case, so repeated structure (the order-2 solo sweep of a case
// already swept at order 1, a hardened variant differing from its
// baseline by a few patched bytes, a warm re-run) is answered from
// cache instead of re-simulated.
//
// Cells are grouped into per-case chains (the memo chain and the
// store's order-over-order reuse both follow a case's job order, so a
// chain must run sequentially); with ParallelCells > 1 the chains run
// concurrently on one shared work-stealing WorkerPool whose budget is
// Options.Workers. Results are deterministic either way — every cell
// lands at its fixed position in Results, and every constituent
// campaign is bit-identical across worker counts, chunking, stealing,
// and store replay — so the parallel sweep's reports match the
// sequential runner's bit for bit.
package campaign

import (
	"fmt"
	"sync"
	"time"

	"github.com/r2r/reinforce/internal/fault"
)

// CorpusJob names one case study (or hardened variant) of a corpus
// sweep. Jobs with the same Case name share a memo chain: a later job's
// campaign reuses every recorded outcome whose code-page footprint
// avoids the bytes that changed since the earlier binary — the
// cross-binary rule the incremental patch driver uses.
type CorpusJob struct {
	Case     string
	Campaign fault.Campaign
}

// CorpusOptions tune a corpus run.
type CorpusOptions struct {
	// Options carries the per-campaign knobs (Workers, MaxPairs,
	// MaxTriples, Store, Progress). With a nil Store, RunCorpus creates
	// a private in-memory store for the run, so cross-campaign sharing
	// works out of the box; pass a disk-backed store (`r2r corpus
	// -cache-dir`) to persist it. Progress is remapped to corpus-wide
	// job numbering: one job per (case, order) pair, monotonic per cell
	// even when cells interleave. With ParallelCells > 1, Workers is
	// the *global* simulation budget shared by every concurrent cell.
	Options

	// Orders lists the fault orders swept per case, in order (default
	// {1}; 1, 2, and 3 are valid — order 3 always runs pruned and
	// budget-capped, see RunOrder3). An order-2 sweep stores and reuses
	// its order-1 stage under the same plan key as a plain order-1 run,
	// so Orders {1, 2} answers the second solo sweep from the store;
	// an order-3 sweep likewise reuses the order-2 cell's pair stage
	// when the pair budgets match.
	Orders []int

	// ParallelCells bounds how many case chains execute concurrently
	// (<= 1: strictly sequential, the historical behavior). The cells
	// of one case always run in sequence — the memo chain demands it —
	// so the bound is over distinct cases. All concurrent cells share
	// one WorkerPool of Options.Workers workers (or Options.Pool when
	// the caller provides one).
	ParallelCells int
}

// CorpusCaseResult is one (case, order) cell of a corpus run.
type CorpusCaseResult struct {
	Case  string
	Order int

	Report  *fault.Report // the order-1 sweep (Order2.Solo for orders 2/3)
	Order2  *Order2Report // pair stage; nil for order-1 cells (Order3.Order2() for order 3)
	Order3  *Order3Report // triple stage; nil except for order-3 cells
	Summary Summary       // export-ready digest (Name is "case/oN")
	Elapsed time.Duration
	Cache   CacheStats
	Prune   *fault.PruneStats // pruning accounting; nil unless Options.Prune
	Err     error             // the cell failed; other cells continue
}

// CorpusResult is the outcome of a corpus run.
type CorpusResult struct {
	Results []CorpusCaseResult

	// Cache aggregates every cell's store/memo accounting — the numbers
	// that prove cross-campaign sharing happened (or did not).
	Cache CacheStats
}

// corpusChain is the unit of corpus concurrency: the consecutive cells
// of one case, executed in order so the memo chain and the
// order-over-order store reuse see their predecessors.
type corpusChain struct {
	jobs  []CorpusJob
	cells []int // Results index of each (job, order) cell, job-major
}

// RunCorpus executes the corpus sweep: every job at every order,
// sharing one store and per-case memo chains. Cell numbering — and the
// Results slice — is always job-major in input order, identical for
// sequential and parallel runs. A failing cell records its error and
// the sweep continues.
func RunCorpus(jobs []CorpusJob, opt CorpusOptions) (*CorpusResult, error) {
	orders := opt.Orders
	if len(orders) == 0 {
		orders = []int{1}
	}
	for _, o := range orders {
		if o != 1 && o != 2 && o != 3 {
			return nil, fmt.Errorf("campaign: unsupported corpus order %d: want 1, 2 or 3", o)
		}
	}
	if opt.Store == nil {
		st, err := NewStore("")
		if err != nil {
			return nil, err
		}
		opt.Store = st
	}

	// Group the jobs into per-case chains, preserving first-appearance
	// order and each case's job order. Cell indices stay job-major.
	var chains []*corpusChain
	chainOf := map[string]*corpusChain{}
	for j, job := range jobs {
		ch, ok := chainOf[job.Case]
		if !ok {
			ch = &corpusChain{}
			chainOf[job.Case] = ch
			chains = append(chains, ch)
		}
		ch.jobs = append(ch.jobs, job)
		for o := range orders {
			ch.cells = append(ch.cells, j*len(orders)+o)
		}
	}

	parallel := opt.ParallelCells
	if parallel > len(chains) {
		parallel = len(chains)
	}
	if parallel > 1 {
		// All concurrent cells draw from one worker budget; chains
		// that finish early steal into the stragglers' chunk queues.
		if opt.Pool == nil {
			pool := NewWorkerPool(opt.Workers)
			defer pool.Close()
			opt.Pool = pool
		}
		// Options.Progress promises serialized delivery; with chains
		// interleaving, serialize here (per-cell monotonicity is
		// progressFunc's, which each cell stage owns privately).
		if opt.Progress != nil {
			var mu sync.Mutex
			inner := opt.Progress
			opt.Progress = func(p Progress) {
				mu.Lock()
				defer mu.Unlock()
				inner(p)
			}
		}
	}

	res := &CorpusResult{Results: make([]CorpusCaseResult, len(jobs)*len(orders))}
	if parallel > 1 {
		sem := make(chan struct{}, parallel)
		var wg sync.WaitGroup
		for _, ch := range chains {
			wg.Add(1)
			go func(ch *corpusChain) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				runChain(ch, orders, opt, res.Results)
			}(ch)
		}
		wg.Wait()
	} else {
		for _, ch := range chains {
			runChain(ch, orders, opt, res.Results)
		}
	}
	for i := range res.Results {
		if res.Results[i].Err == nil {
			res.Cache.Add(res.Results[i].Cache)
		}
	}
	return res, nil
}

// runChain executes one case chain's cells in order, threading the
// memo across jobs and reusing one fault.Session across the orders of
// each job (construction replays the golden runs — once per binary,
// not once per cell). Each cell writes its result at its fixed
// job-major index, so interleaved chains never perturb merge order.
func runChain(ch *corpusChain, orders []int, opt CorpusOptions, results []CorpusCaseResult) {
	cells := len(results)
	var memo *Memo
	cell := 0
	for _, job := range ch.jobs {
		jobOpt := opt.Options
		var cached *fault.Session
		jobOpt.newSession = func(c fault.Campaign) (*fault.Session, error) {
			if cached != nil {
				return cached, nil
			}
			s, err := fault.NewSession(c)
			if err != nil {
				return nil, err
			}
			cached = s
			return s, nil
		}
		for _, order := range orders {
			idx := ch.cells[cell]
			cell++
			name := fmt.Sprintf("%s/o%d", job.Case, order)
			start := time.Now() //lint:allow wallclock (ElapsedMS is reporting-only, stripped before determinism comparisons)
			out := CorpusCaseResult{Case: job.Case, Order: order}
			switch order {
			case 1:
				r, err := runInc(name, idx, cells, job.Campaign, jobOpt, memo, true)
				if err != nil {
					out.Err = err
					break
				}
				memo = r.Memo
				out.Report = r.Report
				out.Cache = r.Cache
				out.Prune = r.Prune
				out.Summary = Summarize(name, r.Report)
			case 2:
				r, err := runOrder2Inc(name, idx, cells, job.Campaign, jobOpt, memo, true)
				if err != nil {
					out.Err = err
					break
				}
				memo = r.Memo
				out.Report = r.Report.Solo
				out.Order2 = r.Report
				out.Cache = r.Cache
				out.Prune = r.Prune
				out.Summary = SummarizeOrder2(name, r.Report)
			case 3:
				r, err := runOrder3Inc(name, idx, cells, job.Campaign, jobOpt, memo, true)
				if err != nil {
					out.Err = err
					break
				}
				memo = r.Memo
				out.Report = r.Report.Solo
				out.Order2 = r.Report.Order2()
				out.Order3 = r.Report
				out.Cache = r.Cache
				out.Prune = r.Prune
				out.Summary = SummarizeOrder3(name, r.Report)
			}
			out.Elapsed = time.Since(start)
			if out.Err == nil {
				cache := out.Cache
				out.Summary.Cache = &cache
				if out.Prune != nil {
					prune := *out.Prune
					out.Summary.Prune = &prune
				}
				out.Summary.ElapsedMS = out.Elapsed.Milliseconds()
			}
			results[idx] = out
		}
	}
}

// Summaries returns the per-cell summaries of the successful cells,
// followed by the corpus-wide aggregate row. ElapsedMS is included per
// cell; the caller can zero it for bit-stable exports.
func (r *CorpusResult) Summaries() []Summary {
	var out []Summary
	for _, c := range r.Results {
		if c.Err == nil {
			out = append(out, c.Summary)
		}
	}
	out = append(out, r.Aggregate())
	return out
}

// Aggregate folds every successful cell into one corpus-wide survival
// row: total injections and outcome counts (TraceLen is the summed
// trace length — a corpus size measure, not one program's), the
// pair/triple stage totals when any cell ran order 2 or 3, and the
// shared-cache accounting.
func (r *CorpusResult) Aggregate() Summary {
	agg := Summary{Name: "corpus"}
	models := map[fault.Model]bool{}
	var o2 Order2Summary
	var o3 Order3Summary
	var prune fault.PruneStats
	hasO2, hasO3, hasPrune := false, false, false
	for _, c := range r.Results {
		if c.Err != nil {
			continue
		}
		s := c.Summary
		agg.TraceLen += s.TraceLen
		agg.Injections += s.Injections
		agg.Success += s.Success
		agg.Detected += s.Detected
		agg.Crash += s.Crash
		agg.Ignored += s.Ignored
		for _, m := range s.Models {
			if !models[m] {
				models[m] = true
				agg.Models = append(agg.Models, m)
			}
		}
		if s.Order2 != nil {
			hasO2 = true
			o2.Pairs += s.Order2.Pairs
			o2.Success += s.Order2.Success
			o2.Detected += s.Order2.Detected
			o2.Crash += s.Order2.Crash
			o2.Ignored += s.Order2.Ignored
		}
		if s.Order3 != nil {
			hasO3 = true
			o3.Triples += s.Order3.Triples
			o3.Success += s.Order3.Success
			o3.Detected += s.Order3.Detected
			o3.Crash += s.Order3.Crash
			o3.Ignored += s.Order3.Ignored
		}
		if s.Prune != nil {
			hasPrune = true
			prune.Add(*s.Prune)
		}
		agg.ElapsedMS += s.ElapsedMS
	}
	if hasO2 {
		agg.Order2 = &o2
	}
	if hasO3 {
		agg.Order3 = &o3
	}
	if hasPrune {
		agg.Prune = &prune
	}
	cache := r.Cache
	agg.Cache = &cache
	return agg
}

// Errs returns the errors of the failed cells, labelled by cell name.
func (r *CorpusResult) Errs() []error {
	var out []error
	for _, c := range r.Results {
		if c.Err != nil {
			out = append(out, fmt.Errorf("%s/o%d: %w", c.Case, c.Order, c.Err))
		}
	}
	return out
}
