// Corpus runner: one batched, cache-sharing campaign sweep across a
// whole case-study corpus. Where RunAll sweeps many binaries under one
// campaign shape, RunCorpus fans out the full (case × model × order)
// matrix the way the evaluation methodology papers ask for — every
// program of the corpus attacked under the same attacker model — while
// sharing one content-addressed Store and one cross-binary Memo chain
// per case, so repeated structure (the order-2 solo sweep of a case
// already swept at order 1, a hardened variant differing from its
// baseline by a few patched bytes, a warm re-run) is answered from
// cache instead of re-simulated.
//
// Jobs run sequentially (each campaign already saturates the worker
// pool internally); results are deterministic — bit-identical across
// worker counts, and across cold runs and store replays — because every
// constituent campaign is.
package campaign

import (
	"fmt"
	"time"

	"github.com/r2r/reinforce/internal/fault"
)

// CorpusJob names one case study (or hardened variant) of a corpus
// sweep. Jobs with the same Case name share a memo chain: a later job's
// campaign reuses every recorded outcome whose code-page footprint
// avoids the bytes that changed since the earlier binary — the
// cross-binary rule the incremental patch driver uses.
type CorpusJob struct {
	Case     string
	Campaign fault.Campaign
}

// CorpusOptions tune a corpus run.
type CorpusOptions struct {
	// Options carries the per-campaign knobs (Workers, MaxPairs, Store,
	// Progress). With a nil Store, RunCorpus creates a private in-memory
	// store for the run, so cross-campaign sharing works out of the box;
	// pass a disk-backed store (`r2r corpus -cache-dir`) to persist it.
	// Progress is remapped to corpus-wide job numbering: one job per
	// (case, order) pair.
	Options

	// Orders lists the fault orders swept per case, in order (default
	// {1}; only 1 and 2 are valid). An order-2 sweep stores and reuses
	// its order-1 stage under the same plan key as a plain order-1 run,
	// so Orders {1, 2} answers the second solo sweep from the store.
	Orders []int
}

// CorpusCaseResult is one (case, order) cell of a corpus run.
type CorpusCaseResult struct {
	Case  string
	Order int

	Report  *fault.Report // the order-1 sweep (Order2.Solo for order 2)
	Order2  *Order2Report // pair stage; nil for order-1 cells
	Summary Summary       // export-ready digest (Name is "case/oN")
	Elapsed time.Duration
	Cache   CacheStats
	Prune   *fault.PruneStats // pruning accounting; nil unless Options.Prune
	Err     error             // the cell failed; other cells continue
}

// CorpusResult is the outcome of a corpus run.
type CorpusResult struct {
	Results []CorpusCaseResult

	// Cache aggregates every cell's store/memo accounting — the numbers
	// that prove cross-campaign sharing happened (or did not).
	Cache CacheStats
}

// RunCorpus executes the corpus sweep: every job at every order, in
// deterministic order, sharing one store and per-case memo chains. A
// failing cell records its error and the sweep continues.
func RunCorpus(jobs []CorpusJob, opt CorpusOptions) (*CorpusResult, error) {
	orders := opt.Orders
	if len(orders) == 0 {
		orders = []int{1}
	}
	for _, o := range orders {
		if o != 1 && o != 2 {
			return nil, fmt.Errorf("campaign: unsupported corpus order %d: want 1 or 2", o)
		}
	}
	if opt.Store == nil {
		st, err := NewStore("")
		if err != nil {
			return nil, err
		}
		opt.Store = st
	}

	res := &CorpusResult{}
	memos := map[string]*Memo{}
	cell := 0
	cells := len(jobs) * len(orders)
	for _, job := range jobs {
		for _, order := range orders {
			name := fmt.Sprintf("%s/o%d", job.Case, order)
			start := time.Now()
			out := CorpusCaseResult{Case: job.Case, Order: order}
			switch order {
			case 1:
				r, err := runInc(name, cell, cells, job.Campaign, opt.Options, memos[job.Case], true)
				if err != nil {
					out.Err = err
					break
				}
				memos[job.Case] = r.Memo
				out.Report = r.Report
				out.Cache = r.Cache
				out.Prune = r.Prune
				out.Summary = Summarize(name, r.Report)
			case 2:
				r, err := runOrder2Inc(name, cell, cells, job.Campaign, opt.Options, memos[job.Case], true)
				if err != nil {
					out.Err = err
					break
				}
				memos[job.Case] = r.Memo
				out.Report = r.Report.Solo
				out.Order2 = r.Report
				out.Cache = r.Cache
				out.Prune = r.Prune
				out.Summary = SummarizeOrder2(name, r.Report)
			}
			out.Elapsed = time.Since(start)
			if out.Err == nil {
				cache := out.Cache
				out.Summary.Cache = &cache
				if out.Prune != nil {
					prune := *out.Prune
					out.Summary.Prune = &prune
				}
				out.Summary.ElapsedMS = out.Elapsed.Milliseconds()
				res.Cache.Add(out.Cache)
			}
			res.Results = append(res.Results, out)
			cell++
		}
	}
	return res, nil
}

// Summaries returns the per-cell summaries of the successful cells,
// followed by the corpus-wide aggregate row. ElapsedMS is included per
// cell; the caller can zero it for bit-stable exports.
func (r *CorpusResult) Summaries() []Summary {
	var out []Summary
	for _, c := range r.Results {
		if c.Err == nil {
			out = append(out, c.Summary)
		}
	}
	out = append(out, r.Aggregate())
	return out
}

// Aggregate folds every successful cell into one corpus-wide survival
// row: total injections and outcome counts (TraceLen is the summed
// trace length — a corpus size measure, not one program's), the pair
// stage totals when any cell ran order 2, and the shared-cache
// accounting.
func (r *CorpusResult) Aggregate() Summary {
	agg := Summary{Name: "corpus"}
	models := map[fault.Model]bool{}
	var o2 Order2Summary
	var prune fault.PruneStats
	hasO2, hasPrune := false, false
	for _, c := range r.Results {
		if c.Err != nil {
			continue
		}
		s := c.Summary
		agg.TraceLen += s.TraceLen
		agg.Injections += s.Injections
		agg.Success += s.Success
		agg.Detected += s.Detected
		agg.Crash += s.Crash
		agg.Ignored += s.Ignored
		for _, m := range s.Models {
			if !models[m] {
				models[m] = true
				agg.Models = append(agg.Models, m)
			}
		}
		if s.Order2 != nil {
			hasO2 = true
			o2.Pairs += s.Order2.Pairs
			o2.Success += s.Order2.Success
			o2.Detected += s.Order2.Detected
			o2.Crash += s.Order2.Crash
			o2.Ignored += s.Order2.Ignored
		}
		if s.Prune != nil {
			hasPrune = true
			prune.Add(*s.Prune)
		}
		agg.ElapsedMS += s.ElapsedMS
	}
	if hasO2 {
		agg.Order2 = &o2
	}
	if hasPrune {
		agg.Prune = &prune
	}
	cache := r.Cache
	agg.Cache = &cache
	return agg
}

// Errs returns the errors of the failed cells, labelled by cell name.
func (r *CorpusResult) Errs() []error {
	var out []error
	for _, c := range r.Results {
		if c.Err != nil {
			out = append(out, fmt.Errorf("%s/o%d: %w", c.Case, c.Order, c.Err))
		}
	}
	return out
}
