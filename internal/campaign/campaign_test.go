package campaign

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"github.com/r2r/reinforce/internal/asm"
	"github.com/r2r/reinforce/internal/cases"
	"github.com/r2r/reinforce/internal/elf"
	"github.com/r2r/reinforce/internal/fault"
)

const miniPincheck = `
.text
_start:
	mov rax, 0
	mov rdi, 0
	lea rsi, [rip+buf]
	mov rdx, 8
	syscall
	mov rax, [rip+buf]
	mov rbx, [rip+pin]
	cmp rax, rbx
	jne deny
grant:
	mov rax, 1
	mov rdi, 1
	lea rsi, [rip+ok]
	mov rdx, 8
	syscall
	mov rax, 60
	mov rdi, 0
	syscall
deny:
	mov rax, 1
	mov rdi, 1
	lea rsi, [rip+no]
	mov rdx, 7
	syscall
	mov rax, 60
	mov rdi, 1
	syscall
.rodata
pin: .ascii "1234ABCD"
ok:  .ascii "GRANTED\n"
no:  .ascii "DENIED\n"
.bss
buf: .zero 8
`

var (
	goodPin = []byte("1234ABCD")
	badPin  = []byte("00000000")
)

func buildMini(t *testing.T) *elf.Binary {
	t.Helper()
	bin, err := asm.Assemble(miniPincheck, nil)
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

func miniCampaign(bin *elf.Binary, models ...fault.Model) fault.Campaign {
	return fault.Campaign{Binary: bin, Good: goodPin, Bad: badPin, Models: models}
}

// TestWorkerCountInvariance: the engine's cornerstone guarantee — the
// report is bit-identical for 1 worker and N workers, across both fault
// models.
func TestWorkerCountInvariance(t *testing.T) {
	bin := buildMini(t)
	c := miniCampaign(bin, fault.ModelSkip, fault.ModelBitFlip)
	serial, err := Run(c, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(c, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Injections, parallel.Injections) {
		t.Fatal("1-worker and 8-worker reports differ")
	}
	if serial.GoodOracle != parallel.GoodOracle || serial.BadOracle != parallel.BadOracle {
		t.Fatal("oracles differ between runs")
	}
	// Outcome aggregates, not just raw slices.
	for _, o := range []fault.Outcome{fault.OutcomeSuccess, fault.OutcomeDetected,
		fault.OutcomeCrash, fault.OutcomeIgnored} {
		if serial.Count(o) != parallel.Count(o) {
			t.Errorf("%s: serial %d, parallel %d", o, serial.Count(o), parallel.Count(o))
		}
	}
}

// TestShardRecombination: running shards i/n separately and merging
// reproduces the unsharded report exactly.
func TestShardRecombination(t *testing.T) {
	bin := buildMini(t)
	c := miniCampaign(bin, fault.ModelSkip, fault.ModelBitFlip)
	full, err := Run(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 3
	shards := make([]*fault.Report, n)
	for i := 0; i < n; i++ {
		shards[i], err = Run(c, Options{Shard: Shard{Index: i, Count: n}, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
	}
	merged, err := Merge(shards)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged.Injections, full.Injections) {
		t.Fatal("merged shards differ from the unsharded run")
	}
}

func TestShardValidation(t *testing.T) {
	bin := buildMini(t)
	if _, err := Run(miniCampaign(bin, fault.ModelSkip), Options{Shard: Shard{Index: 5, Count: 3}}); err == nil {
		t.Error("out-of-range shard index accepted")
	}
	if _, err := Merge(nil); err == nil {
		t.Error("empty merge accepted")
	}
	full, err := Run(miniCampaign(bin, fault.ModelSkip), Options{})
	if err != nil {
		t.Fatal(err)
	}
	truncated := &fault.Report{
		GoodOracle: full.GoodOracle,
		BadOracle:  full.BadOracle,
		Injections: full.Injections[:1],
	}
	if _, err := Merge([]*fault.Report{truncated, full}); err == nil {
		t.Error("size-inconsistent shards accepted")
	}
}

// TestRunAllBatch: the batch API runs every job, reports progress
// monotonically per job, and tallies match the reports.
func TestRunAllBatch(t *testing.T) {
	bin := buildMini(t)
	var mu_last Progress
	calls := 0
	jobs := []Job{
		{Name: "skip", Campaign: miniCampaign(bin, fault.ModelSkip)},
		{Name: "bitflip", Campaign: miniCampaign(bin, fault.ModelBitFlip)},
	}
	results := RunAll(jobs, Options{Progress: func(p Progress) {
		calls++
		if p.Jobs != 2 {
			t.Errorf("progress Jobs = %d, want 2", p.Jobs)
		}
		mu_last = p
	}})
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	totalInjections := 0
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Name, r.Err)
		}
		if r.Tally.Total() != len(r.Report.Injections) {
			t.Errorf("%s: tally %d != injections %d", r.Name, r.Tally.Total(), len(r.Report.Injections))
		}
		totalInjections += len(r.Report.Injections)
	}
	if calls != totalInjections {
		t.Errorf("progress calls = %d, want one per injection (%d)", calls, totalInjections)
	}
	if mu_last.Job != "bitflip" || mu_last.Done != mu_last.Total {
		t.Errorf("final progress = %+v", mu_last)
	}
	if results[0].Report.Count(fault.OutcomeSuccess) == 0 {
		t.Error("skip campaign found no vulnerabilities in unprotected pincheck")
	}
}

// TestRunAllContinuesPastErrors: one bad job doesn't kill the batch.
func TestRunAllContinuesPastErrors(t *testing.T) {
	bin := buildMini(t)
	jobs := []Job{
		{Name: "broken", Campaign: fault.Campaign{Binary: bin, Good: goodPin, Bad: goodPin}},
		{Name: "ok", Campaign: miniCampaign(bin, fault.ModelSkip)},
	}
	results := RunAll(jobs, Options{})
	if results[0].Err == nil {
		t.Error("indistinguishable oracles not reported")
	}
	if results[1].Err != nil || results[1].Report == nil {
		t.Errorf("healthy job failed: %v", results[1].Err)
	}
}

// TestExportJSONAndCSV: the machine-readable exports round-trip and
// agree with the report.
func TestExportJSONAndCSV(t *testing.T) {
	c := cases.Pincheck()
	rep, err := Run(fault.Campaign{
		Binary: c.MustBuild(), Good: c.Good, Bad: c.Bad,
		Models: []fault.Model{fault.ModelSkip},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize("pincheck", rep)
	if sum.Injections != len(rep.Injections) || sum.Success != rep.Count(fault.OutcomeSuccess) {
		t.Errorf("summary counts wrong: %+v", sum)
	}
	if len(sum.Sites) != len(rep.VulnerableSites()) {
		t.Errorf("summary sites = %d, want %d", len(sum.Sites), len(rep.VulnerableSites()))
	}

	var buf bytes.Buffer
	if err := WriteJSON(&buf, []Summary{sum}); err != nil {
		t.Fatal(err)
	}
	var back []Summary
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("exported JSON invalid: %v", err)
	}
	if len(back) != 1 || back[0].Injections != sum.Injections {
		t.Errorf("JSON round-trip mismatch: %+v", back)
	}

	buf.Reset()
	if err := WriteCSV(&buf, []Summary{sum}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "name,") {
		t.Errorf("CSV shape wrong:\n%s", buf.String())
	}
}

// TestOrder2WorkerInvariance is the acceptance gate for multi-fault
// campaigns on the real pincheck case: order-2 results are bit-identical
// for 1 worker and N workers, across the paper's and the extended
// models.
func TestOrder2WorkerInvariance(t *testing.T) {
	c := cases.Pincheck()
	camp := fault.Campaign{
		Binary: c.MustBuild(), Good: c.Good, Bad: c.Bad,
		Models:     []fault.Model{fault.ModelSkip, fault.ModelRegFlip, fault.ModelMultiSkip, fault.ModelDataFlip},
		DedupSites: true,
	}
	serial, err := RunOrder2(camp, Options{Workers: 1, MaxPairs: 500})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunOrder2(camp, Options{Workers: 8, MaxPairs: 500})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Solo.Injections, parallel.Solo.Injections) {
		t.Fatal("order-1 stage not worker-invariant")
	}
	if !reflect.DeepEqual(serial.Pairs, parallel.Pairs) {
		t.Fatal("order-2 pair stage not worker-invariant")
	}
	if serial.PairTally != parallel.PairTally {
		t.Fatalf("pair tallies differ: %v vs %v", serial.PairTally, parallel.PairTally)
	}
	if len(serial.Pairs) == 0 {
		t.Fatal("no pairs simulated")
	}
}

// TestOrder2ShardRecombination: pair shards run separately merge into a
// report bit-identical to the unsharded order-2 run.
func TestOrder2ShardRecombination(t *testing.T) {
	c := cases.Pincheck()
	camp := fault.Campaign{
		Binary: c.MustBuild(), Good: c.Good, Bad: c.Bad,
		Models:     []fault.Model{fault.ModelSkip, fault.ModelBitFlip},
		DedupSites: true,
	}
	full, err := RunOrder2(camp, Options{MaxPairs: 300})
	if err != nil {
		t.Fatal(err)
	}
	const n = 3
	shards := make([]*Order2Report, n)
	for i := 0; i < n; i++ {
		shards[i], err = RunOrder2(camp, Options{Shard: Shard{Index: i, Count: n}, Workers: 2, MaxPairs: 300})
		if err != nil {
			t.Fatal(err)
		}
	}
	merged, err := MergeOrder2(shards)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged.Pairs, full.Pairs) {
		t.Fatal("merged pair shards differ from the unsharded run")
	}
	if merged.PairTally != full.PairTally {
		t.Fatalf("merged tally %v != full tally %v", merged.PairTally, full.PairTally)
	}
	// Degenerate and invalid merges.
	if _, err := MergeOrder2(nil); err == nil {
		t.Error("empty order-2 merge accepted")
	}
	truncated := &Order2Report{Solo: full.Solo, Pairs: full.Pairs[:1]}
	if _, err := MergeOrder2([]*Order2Report{truncated, full}); err == nil {
		t.Error("size-inconsistent pair shards accepted")
	}
}

// TestSummarizePerModel: the per-model breakdown partitions the
// campaign exactly, and the typed model lists marshal as the canonical
// name strings (no hand-rolled stringification).
func TestSummarizePerModel(t *testing.T) {
	bin := buildMini(t)
	rep, err := Run(miniCampaign(bin, fault.ModelSkip, fault.ModelBitFlip, fault.ModelMultiSkip), Options{})
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize("mini", rep)
	if len(sum.PerModel) != 3 {
		t.Fatalf("per-model rows = %d, want 3", len(sum.PerModel))
	}
	totals := map[string]int{}
	for _, b := range sum.PerModel {
		totals["injections"] += b.Injections
		totals["success"] += b.Success
		totals["detected"] += b.Detected
		totals["crash"] += b.Crash
		totals["ignored"] += b.Ignored
		view := rep.FilterModels(b.Model)
		if b.Injections != len(view.Injections) || b.Success != view.Count(fault.OutcomeSuccess) {
			t.Errorf("%s breakdown %+v disagrees with filtered report", b.Model, b)
		}
	}
	if totals["injections"] != sum.Injections || totals["success"] != sum.Success ||
		totals["detected"] != sum.Detected || totals["crash"] != sum.Crash ||
		totals["ignored"] != sum.Ignored {
		t.Errorf("per-model breakdown does not partition the campaign: %v vs %+v", totals, sum)
	}

	data, err := json.Marshal(sum.Models)
	if err != nil {
		t.Fatal(err)
	}
	want := `["instruction-skip","multi-instruction-skip","single-bit-flip"]`
	if string(data) != want {
		t.Errorf("models marshal to %s, want %s", data, want)
	}
}

// TestOrder2SummaryRoundTrip: order-2 summaries survive the JSON
// round trip with the pair stage intact.
func TestOrder2SummaryRoundTrip(t *testing.T) {
	bin := buildMini(t)
	rep, err := RunOrder2(miniCampaign(bin, fault.ModelSkip), Options{MaxPairs: 50})
	if err != nil {
		t.Fatal(err)
	}
	sum := SummarizeOrder2("mini", rep)
	if sum.Order2 == nil || sum.Order2.Pairs != len(rep.Pairs) {
		t.Fatalf("order-2 stage missing from summary: %+v", sum.Order2)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, []Summary{sum}); err != nil {
		t.Fatal(err)
	}
	var back []Summary
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Order2 == nil || *back[0].Order2 != *sum.Order2 {
		t.Errorf("order-2 summary did not round-trip: %+v", back)
	}
	if !reflect.DeepEqual(back[0].Models, sum.Models) || !reflect.DeepEqual(back[0].PerModel, sum.PerModel) {
		t.Errorf("typed model fields did not round-trip: %+v", back[0])
	}
}

// TestEngineAgainstHardenedVariant: campaign results on a hardened
// binary stay deterministic too (regression guard for snapshot reuse
// interacting with injected fault handlers).
func TestEngineAgainstHardenedVariant(t *testing.T) {
	if testing.Short() {
		t.Skip("hardening pipeline is slow; covered by the full suite")
	}
	c := cases.Pincheck()
	bin := c.MustBuild()
	camp := fault.Campaign{Binary: bin, Good: c.Good, Bad: c.Bad,
		Models: []fault.Model{fault.ModelSkip}}
	a, err := Run(camp, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(camp, Options{Workers: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Injections, b.Injections) {
		t.Fatal("hardened-variant campaign not worker-invariant")
	}
	if a.Count(fault.OutcomeDetected) != b.Count(fault.OutcomeDetected) {
		t.Fatal("detected counts differ")
	}
}
