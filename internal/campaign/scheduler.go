// The corpus work-stealing scheduler: one process-wide worker pool
// executing every concurrently running corpus cell's campaign stages
// on a single global worker budget.
//
// Each fault.Session stage (solo sweep, pair tree, triple tree)
// submits its work as one source — a dynamic chunk cursor over the
// stage's units (see fault.ChunkCursor). A cell runs its stages
// sequentially, so at any moment each cell owns at most one live
// source: the source list is the set of per-cell deques. Workers
// prefer the source they last drew from (affinity keeps a worker on
// one cell's warm session state) and steal from any other source with
// unclaimed work the moment their own drains, so an expensive cell's
// tail is finished by the whole pool instead of straggling alone.
//
// Determinism: the scheduler only decides *which goroutine* runs a
// chunk and *when*; every chunk writes its results at fixed,
// schedule-independent positions (see fault.runShard and the
// pair/triple unit loops), so corpus reports are bit-identical to the
// sequential runner no matter the budget, the chunking, or who stole
// what.
package campaign

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/r2r/reinforce/internal/fault"
)

// WorkerPool is a shared execution pool implementing fault.Pool: a
// fixed set of worker goroutines draining dynamically chunked work
// sources submitted by concurrent Execute calls. Safe for concurrent
// use; create with NewWorkerPool and release with Close.
type WorkerPool struct {
	workers int
	mu      sync.Mutex
	cond    *sync.Cond
	sources []*poolSource
	closed  bool
	wg      sync.WaitGroup
}

// poolSource is one submitted batch: a chunk cursor over its units
// plus the count still unfinished. When outstanding hits zero the
// batch's Execute call is released.
type poolSource struct {
	cur         *fault.ChunkCursor
	run         func(lo, hi int)
	outstanding atomic.Int64
	done        chan struct{}
}

// NewWorkerPool starts a pool with the given global worker budget
// (values <= 0 mean GOMAXPROCS). The budget is the total simulation
// concurrency across every campaign sharing the pool.
func NewWorkerPool(workers int) *WorkerPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &WorkerPool{workers: workers}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.worker()
	}
	return p
}

// Workers returns the pool's global worker budget.
func (p *WorkerPool) Workers() int { return p.workers }

// Execute submits a batch and blocks until every unit has run —
// possibly interleaved with other cells' batches on the shared
// workers. On a closed pool it degrades to running the batch inline
// on the calling goroutine.
func (p *WorkerPool) Execute(n int, run func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		run(0, n)
		return
	}
	src := &poolSource{
		cur:  fault.NewChunkCursor(n, p.workers),
		run:  run,
		done: make(chan struct{}),
	}
	src.outstanding.Store(int64(n))
	p.sources = append(p.sources, src)
	p.cond.Broadcast()
	p.mu.Unlock()
	<-src.done
}

// Close drains nothing — callers must let their Execute calls return
// first — then stops the workers and waits for them to exit. After
// Close, Execute runs batches inline.
func (p *WorkerPool) Close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// pickLocked chooses a source with unclaimed work, preferring the
// affinity hint *last (the source this worker drew from before) and
// scanning — stealing — from there. Returns nil when every live
// source is fully claimed.
func (p *WorkerPool) pickLocked(last *int) *poolSource {
	n := len(p.sources)
	if n == 0 {
		return nil
	}
	start := *last % n
	if start < 0 {
		start = 0
	}
	for off := 0; off < n; off++ {
		i := (start + off) % n
		if p.sources[i].cur.Remaining() > 0 {
			*last = i
			return p.sources[i]
		}
	}
	return nil
}

// remove drops a finished source from the live list.
func (p *WorkerPool) remove(src *poolSource) {
	p.mu.Lock()
	for i, s := range p.sources {
		if s == src {
			p.sources = append(p.sources[:i], p.sources[i+1:]...)
			break
		}
	}
	p.mu.Unlock()
}

// finish retires units of a source; the goroutine that retires the
// last unit deregisters the source and releases its Execute call.
func (p *WorkerPool) finish(src *poolSource, units int) {
	if src.outstanding.Add(-int64(units)) == 0 {
		p.remove(src)
		close(src.done)
	}
}

// worker is the pool's drain loop: sleep until a source has unclaimed
// work, then claim and run chunks — staying on one source while it
// lasts, stealing from another when it drains.
func (p *WorkerPool) worker() {
	defer p.wg.Done()
	last := 0
	for {
		p.mu.Lock()
		src := p.pickLocked(&last)
		for src == nil && !p.closed {
			p.cond.Wait()
			src = p.pickLocked(&last)
		}
		p.mu.Unlock()
		if src == nil {
			return
		}
		for {
			lo, hi, ok := src.cur.Grab()
			if !ok {
				break
			}
			src.run(lo, hi)
			p.finish(src, hi-lo)
		}
	}
}
