// The differential soundness harness for the fault-equivalence pruning
// pass: every cell of the (catalog case × registered model × order)
// matrix is executed exhaustively and pruned, and the reports must be
// bit-identical — the contract that makes -prune safe to use anywhere.
// The harness also pins the invariances the engine guarantees around
// pruning: worker count, shard decomposition, and warm-store replay.
//
// External test package: the harness consumes campaigntest, which
// imports campaign.
package campaign_test

import (
	"fmt"
	"testing"

	"github.com/r2r/reinforce/internal/campaign"
	"github.com/r2r/reinforce/internal/campaign/campaigntest"
	"github.com/r2r/reinforce/internal/cases"
	"github.com/r2r/reinforce/internal/fault"
)

// Matrix budgets: wide enough that every reduction fires on real
// catalog campaigns, small enough that the full matrix stays minutes,
// not hours.
const (
	diffMaxFaults = 400
	diffMaxPairs  = 256
)

// diffMatrix yields the harness's (case, models) cells: every catalog
// case crossed with every registered model singly. Short mode keeps
// the paper pair × two structurally distinct models as a smoke matrix;
// the dedicated non-short CI job runs the whole thing.
func diffMatrix(t *testing.T) (names []string, modelSets [][]fault.Model) {
	t.Helper()
	names = cases.Names()
	if len(names) < 5 {
		t.Fatalf("catalog has %d cases, want >= 5", len(names))
	}
	for _, m := range fault.RegisteredModels() {
		modelSets = append(modelSets, []fault.Model{m})
	}
	if testing.Short() {
		names = names[:2]
		modelSets = [][]fault.Model{{fault.ModelSkip}, {fault.ModelBitFlip}}
	}
	return names, modelSets
}

// TestPruneDifferentialOrder1: pruned order-1 campaigns are
// bit-identical to exhaustive ones across the whole matrix.
func TestPruneDifferentialOrder1(t *testing.T) {
	names, modelSets := diffMatrix(t)
	for _, name := range names {
		for _, models := range modelSets {
			label := fmt.Sprintf("%s/%v", name, models)
			c := campaigntest.CaseCampaign(t, name, models, diffMaxFaults)
			plain, err := campaign.Run(c, campaign.Options{})
			if err != nil {
				t.Fatalf("%s: exhaustive: %v", label, err)
			}
			pruned, err := campaign.Run(c, campaign.Options{Prune: true})
			if err != nil {
				t.Fatalf("%s: pruned: %v", label, err)
			}
			campaigntest.AssertReportsEqual(t, label, plain, pruned)
		}
	}
}

// TestPruneDifferentialOrder2: pruned order-2 campaigns are
// bit-identical to exhaustive ones across the whole matrix, and the
// pruning accounting covers every pair.
func TestPruneDifferentialOrder2(t *testing.T) {
	names, modelSets := diffMatrix(t)
	for _, name := range names {
		for _, models := range modelSets {
			label := fmt.Sprintf("%s/%v", name, models)
			c := campaigntest.CaseCampaign(t, name, models, diffMaxFaults)
			opt := campaign.Options{MaxPairs: diffMaxPairs}
			plain, err := campaign.RunOrder2(c, opt)
			if err != nil {
				t.Fatalf("%s: exhaustive: %v", label, err)
			}
			opt.Prune = true
			pruned, err := campaign.RunOrder2Result(c, opt)
			if err != nil {
				t.Fatalf("%s: pruned: %v", label, err)
			}
			campaigntest.AssertOrder2Equal(t, label, plain, pruned.Report)
			if pruned.Prune == nil {
				t.Fatalf("%s: pruned run reported no PruneStats", label)
			}
			want := len(plain.Solo.Injections) + len(plain.Pairs)
			if got := pruned.Prune.Total(); got != want {
				t.Fatalf("%s: prune stats cover %d of %d injections", label, got, want)
			}
		}
	}
}

// TestPruneWorkerShardInvariance: one pruned campaign, many execution
// shapes — 1 worker, 8 workers, and a 3-shard decomposition — all
// bit-identical to the exhaustive unsharded run.
func TestPruneWorkerShardInvariance(t *testing.T) {
	c := campaigntest.CaseCampaign(t, "pincheck", fault.RegisteredModels(), diffMaxFaults)
	baseOpt := campaign.Options{MaxPairs: diffMaxPairs}
	plain, err := campaign.RunOrder2(c, baseOpt)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		opt := baseOpt
		opt.Prune = true
		opt.Workers = workers
		pruned, err := campaign.RunOrder2(c, opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		campaigntest.AssertOrder2Equal(t, fmt.Sprintf("workers=%d", workers), plain, pruned)
	}
	const n = 3
	shards := make([]*campaign.Order2Report, n)
	for i := 0; i < n; i++ {
		opt := baseOpt
		opt.Prune = true
		opt.Shard = campaign.Shard{Index: i, Count: n}
		rep, err := campaign.RunOrder2(c, opt)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		shards[i] = rep
	}
	merged, err := campaign.MergeOrder2(shards)
	if err != nil {
		t.Fatal(err)
	}
	campaigntest.AssertOrder2Equal(t, "3-shard merge", plain, merged)
}

// TestPruneWarmStoreReplay: a pruned campaign stored cold replays
// bit-identically warm — and exhaustive and pruned executions share
// the plan key, so a warm exhaustive run is answered by a cold pruned
// one and vice versa.
func TestPruneWarmStoreReplay(t *testing.T) {
	c := campaigntest.CaseCampaign(t, "bootloader", []fault.Model{fault.ModelSkip, fault.ModelRegFlip}, diffMaxFaults)
	st, err := campaign.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opt := campaign.Options{MaxPairs: diffMaxPairs, Prune: true, Store: st}
	cold, err := campaign.RunOrder2Result(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cache.Misses == 0 {
		t.Fatal("cold pruned run reported no store misses")
	}
	warm, err := campaign.RunOrder2Result(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	campaigntest.AssertOrder2Equal(t, "warm replay", cold.Report, warm.Report)
	if warm.Cache.Hits == 0 {
		t.Fatal("warm pruned run reported no store hits")
	}
	// Cross-mode: an exhaustive run against the same store replays the
	// pruned run's entries — one plan key for both execution modes.
	optPlain := campaign.Options{MaxPairs: diffMaxPairs, Store: st}
	crossed, err := campaign.RunOrder2Result(c, optPlain)
	if err != nil {
		t.Fatal(err)
	}
	campaigntest.AssertOrder2Equal(t, "cross-mode replay", cold.Report, crossed.Report)
	if crossed.Cache.Hits == 0 {
		t.Fatal("exhaustive warm run did not hit the pruned run's entries")
	}
}

// TestPruneBudgetGateDifferential: with an injection budget short
// enough that the static budget gate fires, pruned and exhaustive
// order-1 reports still match bit for bit.
func TestPruneBudgetGateDifferential(t *testing.T) {
	c := campaigntest.CaseCampaign(t, "pincheck", []fault.Model{fault.ModelSkip}, 0)
	// A budget of a few steps lands inside the fault list's trace-index
	// range, so later faults hit the gate while earlier ones simulate.
	// The gate lives on the plain-simulation path (RunAll without a
	// store), not the evidence-recording one — see Pruner.SimulateRecord.
	c.InjectionStepLimit = 10
	plain, err := campaign.Run(c, campaign.Options{})
	if err != nil {
		t.Fatal(err)
	}
	results := campaign.RunAll([]campaign.Job{{Name: "gate", Campaign: c}}, campaign.Options{Prune: true})
	if results[0].Err != nil {
		t.Fatal(results[0].Err)
	}
	campaigntest.AssertReportsEqual(t, "short budget", plain, results[0].Report)
	st := results[0].Prune
	if st == nil || st.StaticBudget == 0 {
		t.Fatalf("budget gate never fired (stats %+v)", st)
	}
	if st.Simulated == 0 {
		t.Fatalf("every fault gated — the budget misses the trace (stats %+v)", st)
	}
}

// TestPruneStaticInertDifferential: the inert-window dataflow tier
// fires on hybrid-hardened catalog binaries under the skip models it
// covers, and the pruned reports stay bit-identical to exhaustive —
// orders 1 and 2 here, order 3 below via direct per-triple validation.
// Hardened artifacts are the tier's home turf: the passes insert the
// NOP spacers, fall-through checks and dead re-computations whose skip
// windows the screen proves inert.
func TestPruneStaticInertDifferential(t *testing.T) {
	models := []fault.Model{fault.ModelSkip, fault.ModelMultiSkip}
	names := []string{"pincheck", "bootloader"}
	if testing.Short() {
		names = names[:1]
	}
	for _, name := range names {
		// The eligible windows (hardening-inserted spacers and
		// fall-through checks) sit deeper in the trace than the default
		// differential budget reaches, so this test runs a wider fault
		// cap — 800 is the smallest round budget where the tier fires
		// on every hardened catalog case under both skip models.
		c := campaigntest.HardenedCampaign(t, name, models, 2*diffMaxFaults)
		plain, err := campaign.Run(c, campaign.Options{})
		if err != nil {
			t.Fatalf("%s: exhaustive: %v", name, err)
		}
		results := campaign.RunAll([]campaign.Job{{Name: name, Campaign: c}}, campaign.Options{Prune: true})
		if results[0].Err != nil {
			t.Fatal(results[0].Err)
		}
		campaigntest.AssertReportsEqual(t, name+" order-1", plain, results[0].Report)
		if st := results[0].Prune; st == nil || st.StaticInert == 0 {
			t.Errorf("%s: inert tier never fired on the hardened binary (stats %+v)", name, results[0].Prune)
		}

		opt := campaign.Options{MaxPairs: diffMaxPairs}
		plain2, err := campaign.RunOrder2(c, opt)
		if err != nil {
			t.Fatalf("%s: exhaustive order-2: %v", name, err)
		}
		opt.Prune = true
		pruned2, err := campaign.RunOrder2Result(c, opt)
		if err != nil {
			t.Fatalf("%s: pruned order-2: %v", name, err)
		}
		campaigntest.AssertOrder2Equal(t, name+" order-2", plain2, pruned2.Report)
		if pruned2.Prune == nil || pruned2.Prune.StaticInert == 0 {
			t.Errorf("%s: inert tier never fired at order 2 (stats %+v)", name, pruned2.Prune)
		}
	}
}

// TestPruneStaticInertOrder3: a pruned order-3 campaign over a
// hardened binary with skip models — every triple outcome re-validated
// by direct simulation, lower stages bit-identical to a plain order-2
// run, and the transparent-first fast path accounted for.
func TestPruneStaticInertOrder3(t *testing.T) {
	maxTriples := 256
	if testing.Short() {
		maxTriples = 64
	}
	c := campaigntest.HardenedCampaign(t, "pincheck", []fault.Model{fault.ModelSkip, fault.ModelMultiSkip}, diffMaxFaults)
	res, err := campaign.RunOrder3(c, campaign.Options{MaxPairs: diffMaxPairs, MaxTriples: maxTriples})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if len(rep.Triples) == 0 {
		t.Fatal("order-3 campaign enumerated no triples")
	}
	plain2, err := campaign.RunOrder2(c, campaign.Options{MaxPairs: diffMaxPairs})
	if err != nil {
		t.Fatal(err)
	}
	campaigntest.AssertOrder2Equal(t, "hardened order-3 lower stages", plain2, rep.Order2())

	s, err := fault.NewSession(c)
	if err != nil {
		t.Fatal(err)
	}
	for i, ti := range rep.Triples {
		if want := s.SimulateTriple(ti.Triple); ti.Outcome != want {
			t.Fatalf("triple %d (%v): campaign says %v, direct simulation %v",
				i, ti.Triple, ti.Outcome, want)
		}
	}
}

// TestRunOrder3Differential: the pruned order-3 campaign classifies
// every triple exactly as direct per-triple simulation, and its lower
// stages match a plain order-2 run.
func TestRunOrder3Differential(t *testing.T) {
	maxTriples := 512
	if testing.Short() {
		maxTriples = 128
	}
	c := campaigntest.CaseCampaign(t, "pincheck", []fault.Model{fault.ModelSkip, fault.ModelBitFlip}, diffMaxFaults)
	res, err := campaign.RunOrder3(c, campaign.Options{MaxPairs: diffMaxPairs, MaxTriples: maxTriples})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if len(rep.Triples) == 0 {
		t.Fatal("order-3 campaign enumerated no triples")
	}
	if res.Prune == nil || res.Prune.Total() == 0 {
		t.Fatal("order-3 campaign reported no pruning accounting")
	}

	plain2, err := campaign.RunOrder2(c, campaign.Options{MaxPairs: diffMaxPairs})
	if err != nil {
		t.Fatal(err)
	}
	campaigntest.AssertOrder2Equal(t, "order-3 lower stages", plain2, rep.Order2())

	s, err := fault.NewSession(c)
	if err != nil {
		t.Fatal(err)
	}
	var tally fault.Tally
	for i, ti := range rep.Triples {
		if want := s.SimulateTriple(ti.Triple); ti.Outcome != want {
			t.Fatalf("triple %d (%v): campaign says %v, direct simulation %v",
				i, ti.Triple, ti.Outcome, want)
		}
		tally[ti.Outcome]++
	}
	if tally != rep.TripleTally {
		t.Fatalf("triple tally %v inconsistent with the %d triples", rep.TripleTally, len(rep.Triples))
	}

	// Warm-store replay of the triple stage.
	st, err := campaign.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opt := campaign.Options{MaxPairs: diffMaxPairs, MaxTriples: maxTriples, Store: st}
	cold, err := campaign.RunOrder3(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := campaign.RunOrder3(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	campaigntest.AssertOrder2Equal(t, "order-3 store lower stages", cold.Report.Order2(), warm.Report.Order2())
	for i := range cold.Report.Triples {
		if cold.Report.Triples[i] != warm.Report.Triples[i] {
			t.Fatalf("warm triple %d differs from cold", i)
		}
	}
	if warm.Cache.Hits == 0 {
		t.Fatal("warm order-3 run reported no store hits")
	}
}
