// Planner: the first stage of the campaign engine's plan → execute →
// store architecture. A Plan is a content-addressed description of one
// campaign execution — everything that determines its results, digested
// into a key — so the Store can answer "has this exact work been done
// before?" across driver iterations, repeated experiment runs, and
// separate processes, and the Executor only simulates what the store
// cannot answer.
package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"github.com/r2r/reinforce/internal/fault"
)

// planSchema versions the key derivation, the store entry layout, and
// the simulation semantics behind the stored outcomes. Bump it whenever
// any of them changes shape or meaning — including emulator behavior
// changes (syscall ABI, fault hook semantics) that would make a
// replayed outcome differ from a fresh simulation: old cache entries
// become unreachable instead of wrong.
//
// History: 1 = initial plan/execute/store split; 2 = read/write counts
// above maxIOChunk clamp to a partial transfer (Linux MAX_RW_COUNT
// semantics) instead of returning -EFAULT, changing outcomes of faults
// that corrupt a length register.
const planSchema = 2

// Plan is a content-addressed campaign execution: the campaign itself
// plus the execution parameters that change its results (shard, fault
// order, pair budget — but not worker count or Options.Prune, which
// the engine guarantees are result-invariant: pruned and exhaustive
// executions of one plan share one key and one store entry, enforced
// by the differential harness in prunediff_test.go).
type Plan struct {
	Campaign fault.Campaign
	Shard    Shard
	Order    int // 1 = solo faults, 2 = + fault pairs, 3 = + fault triples
	MaxPairs int // enumeration budget of the plan's top order (0 = the order's default)

	// Key is the hex SHA-256 content address of everything above.
	Key string
}

// NewPlan builds the plan for one campaign execution, digesting every
// result-determining input into the content address. The shard must be
// normalized (see Shard.normalize) before planning so equivalent
// zero-value spellings map to one key.
func NewPlan(c fault.Campaign, shard Shard, order, maxPairs int) Plan {
	h := sha256.New()
	put := func(format string, args ...any) { fmt.Fprintf(h, format, args...) }
	put("schema %d\n", planSchema)
	put("binary %s\n", c.Binary.Digest())
	put("good %d:", len(c.Good))
	h.Write(c.Good)
	put("\nbad %d:", len(c.Bad))
	h.Write(c.Bad)
	put("\nmodels")
	for _, m := range c.Models {
		put(" %d", m)
	}
	put("\nsteplimit %d injlimit %d dedup %t transient %t maxfaults %d\n",
		c.StepLimit, c.InjectionStepLimit, c.DedupSites, c.Transient, c.MaxFaults)
	put("shard %s order %d maxpairs %d\n", shard, order, maxPairs)
	return Plan{
		Campaign: c,
		Shard:    shard,
		Order:    order,
		MaxPairs: maxPairs,
		Key:      hex.EncodeToString(h.Sum(nil)),
	}
}

// digestFaults content-addresses an enumerated fault list. Store
// entries record it so a cached outcome vector is never zipped against
// a fault list it was not computed from (a second line of defense
// behind the plan key, guarding schema drift in enumeration itself).
func digestFaults(faults []fault.Fault) string {
	h := sha256.New()
	for _, f := range faults {
		writeFault(h, f)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// digestPairs content-addresses an enumerated pair list.
func digestPairs(pairs []fault.FaultPair) string {
	h := sha256.New()
	for _, p := range pairs {
		writeFault(h, p.First)
		writeFault(h, p.Second)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// digestTriples content-addresses an enumerated triple list.
func digestTriples(triples []fault.FaultTriple) string {
	h := sha256.New()
	for _, t := range triples {
		writeFault(h, t.First)
		writeFault(h, t.Second)
		writeFault(h, t.Third)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// writeFault serializes every identity field of a fault, explicitly —
// adding a Fault field without extending this list is caught by the
// store round-trip tests.
func writeFault(w io.Writer, f fault.Fault) {
	fmt.Fprintf(w, "%d|%d|%x|%d|%d|%d|%t|%d|%d\n",
		f.Model, f.TraceIndex, f.Addr, f.Op, f.Cond, f.Bit, f.Transient, f.Reg, f.Window)
}
