// Executor: the middle stage of the plan → execute → store
// architecture. It drives a fault.Session for one plan, answering as
// many injections as possible without simulating:
//
//   - a whole-plan store hit rebuilds the report from the stored
//     outcome vector (the session still provides the trace, oracles,
//     and fault list — all cheap relative to the injections);
//   - on a miss, a Memo from a previous campaign against a *different*
//     binary answers individual injections whose evidence still holds:
//     a cached outcome is reused iff none of the code pages its run
//     fetched (including the golden prefix its snapshot inherited)
//     overlap the bytes changed since, and its step count fits the new
//     injection budget. This is the patch driver's incremental rule —
//     only faults whose reference-trace window overlaps the last patch
//     round's changed bytes are re-simulated.
//
// The reuse rule leans on the same assumption binary rewriting itself
// makes (reassembleable disassembly): code is not read as data. A
// changed page that any non-executable section overlaps disables the
// memo entirely, because data reads are not part of the recorded
// footprint.
package campaign

import (
	"bytes"
	"sync/atomic"

	"github.com/r2r/reinforce/internal/elf"
	"github.com/r2r/reinforce/internal/emu"
	"github.com/r2r/reinforce/internal/fault"
)

// Memo carries the per-fault simulation records of one finished
// campaign, together with the context they were computed in (binary
// page image, oracles, inputs, injection budget), so a later campaign
// against a patched variant of the binary can reuse every outcome the
// patch round did not touch.
type Memo struct {
	image     map[uint64][]byte // page address → page bytes, all sections overlaid
	dataPages map[uint64]bool   // pages overlapped by a non-executable section
	good      fault.Observable
	goodIn    string // campaign inputs the records assume
	badIn     string
	limit     uint64 // injection step budget the records ran under
	records   map[fault.Fault]Record
}

// buildImage lays a binary's sections into zero-filled page images and
// marks the pages any non-executable section overlaps.
func buildImage(bin *elf.Binary) (map[uint64][]byte, map[uint64]bool) {
	img := make(map[uint64][]byte)
	data := make(map[uint64]bool)
	for _, s := range bin.Sections {
		for a := s.Addr &^ uint64(emu.PageSize-1); a < s.Addr+s.Size(); a += emu.PageSize {
			if _, ok := img[a]; !ok {
				img[a] = make([]byte, emu.PageSize)
			}
			if s.Flags&elf.FlagExec == 0 {
				data[a] = true
			}
		}
		for i, b := range s.Data {
			addr := s.Addr + uint64(i)
			img[addr&^uint64(emu.PageSize-1)][addr&uint64(emu.PageSize-1)] = b
		}
	}
	return img, data
}

// newMemo assembles the memo for a finished campaign: the shard-local
// fault selection zipped with its records. img/data is the binary's
// page image (from buildImage), passed in so one solo() pass builds it
// exactly once.
func newMemo(c fault.Campaign, good fault.Observable, limit uint64, sel []fault.Fault, records []Record, img map[uint64][]byte, data map[uint64]bool) *Memo {
	m := &Memo{
		image:     img,
		dataPages: data,
		good:      good,
		goodIn:    string(c.Good),
		badIn:     string(c.Bad),
		limit:     limit,
		records:   make(map[fault.Fault]Record, len(sel)),
	}
	for i, f := range sel {
		m.records[f] = records[i]
	}
	return m
}

// diff compares the memo's binary image against a new campaign's and
// returns the set of changed pages (differing bytes, or present in only
// one image) plus whether any changed page carries data — in which case
// the memo must not be used at all (data reads are outside the recorded
// footprint).
func (m *Memo) diff(img map[uint64][]byte, data map[uint64]bool) (changed map[uint64]bool, dataChanged bool) {
	changed = make(map[uint64]bool)
	for a, p := range m.image {
		if q, ok := img[a]; !ok || !bytes.Equal(p, q) {
			changed[a] = true
		}
	}
	for a := range img {
		if _, ok := m.image[a]; !ok {
			changed[a] = true
		}
	}
	for a := range changed {
		if m.dataPages[a] || data[a] {
			dataChanged = true
		}
	}
	return changed, dataChanged
}

// lookup decides whether a cached record still answers fault f against
// the changed-page set and the new injection budget:
//
//   - any footprint page among the changed pages invalidates the record
//     (the run would fetch different bytes somewhere);
//   - a budget-cut run is only valid under a budget that cuts at least
//     as early (a larger budget could let it progress further);
//   - a finished non-crash run is only valid under a budget it fits in
//     (a smaller budget would cut it into a crash); a crash stays a
//     crash under any budget — cutting it earlier still crashes it.
func (m *Memo) lookup(f fault.Fault, changed map[uint64]bool, limit uint64) (Record, bool) {
	rec, ok := m.records[f]
	if !ok {
		return Record{}, false
	}
	for _, pa := range rec.Pages {
		if changed[pa] {
			return Record{}, false
		}
	}
	if rec.LimitHit {
		if limit > m.limit {
			return Record{}, false
		}
	} else if rec.Outcome != fault.OutcomeCrash && rec.Steps > limit {
		return Record{}, false
	}
	return rec, true
}

// executor runs one plan on a session, consulting the store and a memo.
// With prune set, simulation routes through the fault-equivalence
// pruning pass; the accumulated accounting lands in stats. The stage
// methods (solo, pairs, triples) are called sequentially by one
// goroutine — the pruners they build handle the intra-stage
// concurrency — so stats and pairPruner need no locking here.
type executor struct {
	s     *fault.Session
	store *Store
	prune bool

	stats      fault.PruneStats
	pairPruner *fault.PairPruner // built by pairs(), reused by triples()
}

// pruneStats returns the accumulated pruning accounting, or nil when
// pruning was off (so exports omit the block entirely). The pair
// pruner's share is read live rather than accumulated into stats: the
// pair and triple stages deliberately share one pruner, and snapshotting
// it once here keeps their joint accounting from double-counting.
func (e *executor) pruneStats() *fault.PruneStats {
	if !e.prune {
		return nil
	}
	st := e.stats
	if e.pairPruner != nil {
		st.Add(e.pairPruner.Stats())
	}
	return &st
}

// soloSim returns the order-1 simulation functions for this run:
// pruned or plain. flush adds the pruner's accounting to the
// executor's after the sweep (no-op when unpruned).
func (e *executor) soloSim() (sim func(fault.Fault) fault.Outcome, rec func(fault.Fault) fault.SimRecord, flush func()) {
	if !e.prune {
		return e.s.Simulate, e.s.SimulateRecord, func() {}
	}
	pr := e.s.NewPruner()
	return pr.Simulate, pr.SimulateRecord, func() { e.stats.Add(pr.Stats()) }
}

// shardSelect adapts the engine's single round-robin decomposition
// (fault.ShardSelect — also behind runShard and ExecutePairShard) to
// the campaign Shard type, so stored outcome vectors are always zipped
// back against exactly the selection the engine executed.
func shardSelect[T any](items []T, shard Shard) []T {
	return fault.ShardSelect(items, shard.Index, shard.Count)
}

// solo executes the order-1 stage of a plan: store lookup first, then
// memo-assisted simulation of the misses. It returns the shard-local
// injections, the memo for the next incremental run (nil when
// wantMemo is false and nothing needed recording), and the cache
// accounting. With no store, no previous memo, and no memo requested,
// it takes the plain-simulation fast path — the pre-existing hot path,
// with no footprint recording or image copying.
func (e *executor) solo(c fault.Campaign, shard Shard, workers int, prev *Memo, wantMemo bool, progress func(done, total int)) ([]fault.Injection, fault.Tally, *Memo, CacheStats, error) {
	if e.store == nil && prev == nil && !wantMemo {
		sim, _, flush := e.soloSim()
		injections, tally := e.s.ExecuteShardSim(shard.Index, shard.Count, workers, sim, progress)
		flush()
		return injections, tally, nil, CacheStats{Resimulated: len(injections)}, nil
	}

	plan := NewPlan(c, shard, 1, 0)
	fd := digestFaults(e.s.Faults())
	sel := shardSelect(e.s.Faults(), shard)
	good, bad := e.s.Oracles()
	limit := e.s.InjectionLimit()

	// The binary's page image serves the memo gate and any memo built
	// below; construct it lazily and at most once per run.
	var img map[uint64][]byte
	var dataPages map[uint64]bool
	image := func() (map[uint64][]byte, map[uint64]bool) {
		if img == nil {
			img, dataPages = buildImage(c.Binary)
		}
		return img, dataPages
	}

	// Singleflight: concurrent cells computing the same plan key (same
	// binary, options, shard, order) elect one leader; the rest are
	// served its committed entry as a hit.
	var commit func(*Entry) error
	if e.store != nil {
		entry, lead := e.store.Acquire(plan.Key)
		if entry != nil {
			inj, tally, err := rebuildSolo(entry, fd, good, bad, limit, sel)
			if err == nil {
				if progress != nil {
					progress(len(sel), len(sel))
				}
				var memo *Memo
				if wantMemo {
					hitImg, hitData := image()
					memo = newMemo(c, good, limit, sel, entry.Records, hitImg, hitData)
				}
				return inj, tally, memo, CacheStats{Hits: 1}, nil
			}
			// Stale entry (schema drift): fall through and re-simulate.
		}
		commit = lead
	}

	var changed map[uint64]bool
	useMemo := false
	if prev != nil {
		gateImg, gateData := image()
		changed, useMemo = memoGate(c, prev, good, gateImg, gateData)
	}
	pos := make(map[fault.Fault]int, len(sel))
	for i, f := range sel {
		pos[f] = i
	}
	records := make([]Record, len(sel))
	var reused, resim atomic.Int64
	_, simRecord, flush := e.soloSim()
	sim := func(f fault.Fault) fault.Outcome {
		i := pos[f]
		if useMemo {
			if rec, ok := prev.lookup(f, changed, limit); ok {
				records[i] = rec
				reused.Add(1)
				return rec.Outcome
			}
		}
		sr := simRecord(f)
		records[i] = Record{Outcome: sr.Outcome, Steps: sr.Steps, LimitHit: sr.LimitHit, Pages: sr.Pages}
		resim.Add(1)
		return sr.Outcome
	}
	injections, tally := e.s.ExecuteShardSim(shard.Index, shard.Count, workers, sim, progress)
	flush()

	stats := CacheStats{Reused: int(reused.Load()), Resimulated: int(resim.Load())}
	if e.store != nil {
		stats.Misses = 1
		entry := &Entry{
			Key: plan.Key, FaultsDigest: fd,
			GoodOracle: good, BadOracle: bad, Limit: limit,
			Records: records,
		}
		err := error(nil)
		if commit != nil {
			err = commit(entry)
		} else {
			// Stale-hit resimulation: no flight held, save directly.
			err = e.store.Save(entry)
		}
		if err != nil {
			stats.WriteErrors++
		}
	}
	var memo *Memo
	if wantMemo {
		memoImg, memoData := image()
		memo = newMemo(c, good, limit, sel, records, memoImg, memoData)
	}
	return injections, tally, memo, stats, nil
}

// memoGate decides whether the previous memo applies to this campaign
// at all, and computes the changed-page set if so. img/data is the new
// binary's page image.
func memoGate(c fault.Campaign, prev *Memo, good fault.Observable, img map[uint64][]byte, data map[uint64]bool) (map[uint64]bool, bool) {
	if prev == nil || prev.good != good ||
		prev.goodIn != string(c.Good) || prev.badIn != string(c.Bad) {
		return nil, false
	}
	changed, dataChanged := prev.diff(img, data)
	if dataChanged {
		return nil, false
	}
	return changed, true
}

// rebuildSolo zips a stored entry against the session's shard-local
// fault selection, after verifying every guard that makes the zip
// sound.
func rebuildSolo(entry *Entry, faultsDigest string, good, bad fault.Observable, limit uint64, sel []fault.Fault) ([]fault.Injection, fault.Tally, error) {
	if entry.FaultsDigest != faultsDigest || entry.GoodOracle != good ||
		entry.BadOracle != bad || entry.Limit != limit || len(entry.Records) != len(sel) {
		return nil, fault.Tally{}, errStale
	}
	injections := make([]fault.Injection, len(sel))
	var tally fault.Tally
	for i, f := range sel {
		injections[i] = fault.Injection{Fault: f, Outcome: entry.Records[i].Outcome}
		tally[entry.Records[i].Outcome]++
	}
	return injections, tally, nil
}

// pairs executes the order-2 stage of a plan over an already-executed
// solo sweep: exact-key store reuse only (pair runs fork mid-trace
// snapshots of a faulted machine, so no per-pair footprint is
// recorded).
func (e *executor) pairs(c fault.Campaign, shard Shard, workers, maxPairs int, solo []fault.Injection, progress func(done, total int)) ([]fault.PairInjection, fault.Tally, CacheStats, error) {
	if maxPairs <= 0 {
		maxPairs = fault.DefaultMaxPairs
	}
	pairs := fault.EnumeratePairs(solo, maxPairs)
	if e.store == nil {
		// No cache: skip the plan/pair digests entirely — the plain
		// simulation hot path, like solo()'s.
		injections, tally := e.executePairShard(pairs, shard, workers, solo, progress)
		return injections, tally, CacheStats{}, nil
	}

	plan := NewPlan(c, shard, 2, maxPairs)
	pd := digestPairs(pairs)
	sel := shardSelect(pairs, shard)
	good, bad := e.s.Oracles()
	limit := e.s.InjectionLimit()

	entry, commit := e.store.Acquire(plan.Key)
	if entry != nil {
		if entry.PairsDigest == pd && entry.GoodOracle == good && entry.BadOracle == bad &&
			entry.Limit == limit && len(entry.PairRecords) == len(sel) {
			out := make([]fault.PairInjection, len(sel))
			var tally fault.Tally
			for i, p := range sel {
				o := entry.PairRecords[i]
				out[i] = fault.PairInjection{Pair: p, Outcome: o}
				tally[o]++
			}
			if progress != nil {
				progress(len(sel), len(sel))
			}
			return out, tally, CacheStats{Hits: 1}, nil
		}
		// Stale entry: fall through and re-simulate.
	}

	injections, tally := e.executePairShard(pairs, shard, workers, solo, progress)
	stats := CacheStats{Misses: 1}
	outcomes := make([]fault.Outcome, len(injections))
	for i, pi := range injections {
		outcomes[i] = pi.Outcome
	}
	saved := &Entry{
		Key: plan.Key, FaultsDigest: digestFaults(e.s.Faults()), PairsDigest: pd,
		GoodOracle: good, BadOracle: bad, Limit: limit,
		PairRecords: outcomes,
	}
	err := error(nil)
	if commit != nil {
		err = commit(saved)
	} else {
		err = e.store.Save(saved)
	}
	if err != nil {
		stats.WriteErrors++
	}
	return injections, tally, stats, nil
}

// executePairShard runs the engine's pair sweep, pruned or plain. A
// pruned run keeps its PairPruner on the executor so a following
// order-3 stage shares the reference digests and equivalence classes
// already discovered.
func (e *executor) executePairShard(pairs []fault.FaultPair, shard Shard, workers int, solo []fault.Injection, progress func(done, total int)) ([]fault.PairInjection, fault.Tally) {
	if !e.prune {
		return e.s.ExecutePairShard(pairs, shard.Index, shard.Count, workers, progress)
	}
	pr := e.s.NewPairPruner(solo)
	e.pairPruner = pr
	return e.s.ExecutePairShardPruned(pairs, pr, shard.Index, shard.Count, workers, progress)
}
