package campaign

import (
	"fmt"
	"io"
	"sort"

	"github.com/r2r/reinforce/internal/fault"
	"github.com/r2r/reinforce/internal/report"
)

// SiteSummary is one vulnerable instruction site in machine-readable
// form.
type SiteSummary struct {
	Addr      uint64 `json:"addr"`
	Mnemonic  string `json:"mnemonic"`
	Class     string `json:"class"`
	Successes int    `json:"successes"`
}

// ModelBreakdown is one fault model's share of a campaign. fault.Model
// marshals as its canonical name, so the JSON reads as
// {"model": "register-bit-flip", ...}.
type ModelBreakdown struct {
	Model      fault.Model `json:"model"`
	Injections int         `json:"injections"`
	Success    int         `json:"success"`
	Detected   int         `json:"detected"`
	Crash      int         `json:"crash"`
	Ignored    int         `json:"ignored"`
}

// Order2Summary digests the pair stage of an order-2 campaign.
type Order2Summary struct {
	Pairs    int `json:"pairs"`
	Success  int `json:"success"`
	Detected int `json:"detected"`
	Crash    int `json:"crash"`
	Ignored  int `json:"ignored"`
}

// Order3Summary digests the triple stage of an order-3 campaign.
type Order3Summary struct {
	Triples  int `json:"triples"`
	Success  int `json:"success"`
	Detected int `json:"detected"`
	Crash    int `json:"crash"`
	Ignored  int `json:"ignored"`
}

// Summary is the machine-readable digest of one campaign, shaped for
// JSON/CSV export and dashboard ingestion. Models and PerModel rely on
// fault.Model's JSON marshaling (string forms) instead of hand-rolled
// stringification.
type Summary struct {
	Name       string           `json:"name,omitempty"`
	Models     []fault.Model    `json:"models"`
	TraceLen   int              `json:"trace_len"`
	Injections int              `json:"injections"`
	Success    int              `json:"success"`
	Detected   int              `json:"detected"`
	Crash      int              `json:"crash"`
	Ignored    int              `json:"ignored"`
	PerModel   []ModelBreakdown `json:"per_model,omitempty"`
	Order2     *Order2Summary   `json:"order2,omitempty"`
	Order3     *Order3Summary   `json:"order3,omitempty"`
	Sites      []SiteSummary    `json:"vulnerable_sites"`
	GoodExit   int              `json:"good_exit"`
	BadExit    int              `json:"bad_exit"`
	ElapsedMS  int64            `json:"elapsed_ms,omitempty"`

	// Cache reports how the run's work was answered by the
	// content-addressed store (absent when no store was configured).
	Cache *CacheStats `json:"cache,omitempty"`

	// Prune reports how the run's injections were classified by the
	// fault-equivalence pruning pass (absent when pruning was off).
	// Execution accounting like Cache: pruning never changes results.
	Prune *fault.PruneStats `json:"prune,omitempty"`
}

// Summarize digests a report for export.
func Summarize(name string, rep *fault.Report) Summary {
	s := Summary{
		Name:       name,
		TraceLen:   rep.Trace.Len(),
		Injections: len(rep.Injections),
		Success:    rep.Count(fault.OutcomeSuccess),
		Detected:   rep.Count(fault.OutcomeDetected),
		Crash:      rep.Count(fault.OutcomeCrash),
		Ignored:    rep.Count(fault.OutcomeIgnored),
		GoodExit:   rep.GoodOracle.ExitCode,
		BadExit:    rep.BadOracle.ExitCode,
	}
	byModel := map[fault.Model]*ModelBreakdown{}
	for _, inj := range rep.Injections {
		b, ok := byModel[inj.Fault.Model]
		if !ok {
			b = &ModelBreakdown{Model: inj.Fault.Model}
			byModel[inj.Fault.Model] = b
			s.Models = append(s.Models, inj.Fault.Model)
		}
		b.Injections++
		switch inj.Outcome {
		case fault.OutcomeSuccess:
			b.Success++
		case fault.OutcomeDetected:
			b.Detected++
		case fault.OutcomeCrash:
			b.Crash++
		case fault.OutcomeIgnored:
			b.Ignored++
		}
	}
	sort.Slice(s.Models, func(i, j int) bool { return s.Models[i].String() < s.Models[j].String() })
	for _, m := range s.Models {
		s.PerModel = append(s.PerModel, *byModel[m])
	}
	for _, site := range rep.VulnerableSites() {
		s.Sites = append(s.Sites, SiteSummary{
			Addr:      site.Addr,
			Mnemonic:  site.Mnemonic,
			Class:     string(fault.Classify(site.Op)),
			Successes: site.Count,
		})
	}
	return s
}

// SummarizeOrder2 digests an order-2 campaign: the solo sweep summary
// with the pair stage attached. Counts derive from the pair list itself
// (one pass), so summaries stay correct for any Order2Report, not just
// ones whose tally the engine populated.
func SummarizeOrder2(name string, rep *Order2Report) Summary {
	s := Summarize(name, rep.Solo)
	o2 := &Order2Summary{Pairs: len(rep.Pairs)}
	for _, p := range rep.Pairs {
		switch p.Outcome {
		case fault.OutcomeSuccess:
			o2.Success++
		case fault.OutcomeDetected:
			o2.Detected++
		case fault.OutcomeCrash:
			o2.Crash++
		case fault.OutcomeIgnored:
			o2.Ignored++
		}
	}
	s.Order2 = o2
	return s
}

// SummarizeOrder3 digests an order-3 campaign: the order-2 summary of
// the lower stages with the triple stage attached.
func SummarizeOrder3(name string, rep *Order3Report) Summary {
	s := SummarizeOrder2(name, rep.Order2())
	o3 := &Order3Summary{Triples: len(rep.Triples)}
	for _, t := range rep.Triples {
		switch t.Outcome {
		case fault.OutcomeSuccess:
			o3.Success++
		case fault.OutcomeDetected:
			o3.Detected++
		case fault.OutcomeCrash:
			o3.Crash++
		case fault.OutcomeIgnored:
			o3.Ignored++
		}
	}
	s.Order3 = o3
	return s
}

// SummaryTable renders a batch of summaries as the standard text table
// (also the source for CSV export). Order-2 summaries grow pair-stage
// columns, so no result is visible in one output format but not
// another.
func SummaryTable(sums []Summary) *report.Table {
	order2, order3, cached, pruned := false, false, false, false
	for _, s := range sums {
		if s.Order2 != nil {
			order2 = true
		}
		if s.Order3 != nil {
			order3 = true
		}
		if s.Cache != nil {
			cached = true
		}
		if s.Prune != nil {
			pruned = true
		}
	}
	tab := &report.Table{
		Title:  "fault campaign results",
		Header: []string{"name", "trace", "injections", "success", "detected", "crash", "ignored", "sites"},
	}
	if order2 {
		tab.Header = append(tab.Header,
			"pairs", "pair_success", "pair_detected", "pair_crash", "pair_ignored")
	}
	if order3 {
		tab.Header = append(tab.Header,
			"triples", "triple_success", "triple_detected", "triple_crash", "triple_ignored")
	}
	if cached {
		tab.Header = append(tab.Header, "cache_hits", "cache_misses", "reused", "resimulated")
	}
	if pruned {
		tab.Header = append(tab.Header, "prune_static", "prune_inert", "prune_ref", "prune_class", "simulated")
	}
	for _, s := range sums {
		row := []string{s.Name,
			fmt.Sprintf("%d", s.TraceLen),
			fmt.Sprintf("%d", s.Injections),
			fmt.Sprintf("%d", s.Success),
			fmt.Sprintf("%d", s.Detected),
			fmt.Sprintf("%d", s.Crash),
			fmt.Sprintf("%d", s.Ignored),
			fmt.Sprintf("%d", len(s.Sites))}
		switch {
		case s.Order2 != nil:
			row = append(row,
				fmt.Sprintf("%d", s.Order2.Pairs),
				fmt.Sprintf("%d", s.Order2.Success),
				fmt.Sprintf("%d", s.Order2.Detected),
				fmt.Sprintf("%d", s.Order2.Crash),
				fmt.Sprintf("%d", s.Order2.Ignored))
		case order2:
			row = append(row, "", "", "", "", "")
		}
		switch {
		case s.Order3 != nil:
			row = append(row,
				fmt.Sprintf("%d", s.Order3.Triples),
				fmt.Sprintf("%d", s.Order3.Success),
				fmt.Sprintf("%d", s.Order3.Detected),
				fmt.Sprintf("%d", s.Order3.Crash),
				fmt.Sprintf("%d", s.Order3.Ignored))
		case order3:
			row = append(row, "", "", "", "", "")
		}
		switch {
		case s.Cache != nil:
			row = append(row,
				fmt.Sprintf("%d", s.Cache.Hits),
				fmt.Sprintf("%d", s.Cache.Misses),
				fmt.Sprintf("%d", s.Cache.Reused),
				fmt.Sprintf("%d", s.Cache.Resimulated))
		case cached:
			row = append(row, "", "", "", "")
		}
		switch {
		case s.Prune != nil:
			row = append(row,
				fmt.Sprintf("%d", s.Prune.StaticBudget+s.Prune.StaticDecode),
				fmt.Sprintf("%d", s.Prune.StaticInert),
				fmt.Sprintf("%d", s.Prune.RefEquiv),
				fmt.Sprintf("%d", s.Prune.ClassEquiv),
				fmt.Sprintf("%d", s.Prune.Simulated))
		case pruned:
			row = append(row, "", "", "", "", "")
		}
		tab.AddRow(row...)
	}
	return tab
}

// WriteJSON exports summaries as an indented JSON array.
func WriteJSON(w io.Writer, sums []Summary) error {
	return report.WriteJSON(w, sums)
}

// WriteCSV exports the summary table as CSV.
func WriteCSV(w io.Writer, sums []Summary) error {
	return SummaryTable(sums).WriteCSV(w)
}
