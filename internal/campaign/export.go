package campaign

import (
	"fmt"
	"io"
	"sort"

	"github.com/r2r/reinforce/internal/fault"
	"github.com/r2r/reinforce/internal/report"
)

// SiteSummary is one vulnerable instruction site in machine-readable
// form.
type SiteSummary struct {
	Addr      uint64 `json:"addr"`
	Mnemonic  string `json:"mnemonic"`
	Class     string `json:"class"`
	Successes int    `json:"successes"`
}

// Summary is the machine-readable digest of one campaign, shaped for
// JSON/CSV export and dashboard ingestion.
type Summary struct {
	Name       string        `json:"name,omitempty"`
	Models     []string      `json:"models"`
	TraceLen   int           `json:"trace_len"`
	Injections int           `json:"injections"`
	Success    int           `json:"success"`
	Detected   int           `json:"detected"`
	Crash      int           `json:"crash"`
	Ignored    int           `json:"ignored"`
	Sites      []SiteSummary `json:"vulnerable_sites"`
	GoodExit   int           `json:"good_exit"`
	BadExit    int           `json:"bad_exit"`
	ElapsedMS  int64         `json:"elapsed_ms,omitempty"`
}

// Summarize digests a report for export.
func Summarize(name string, rep *fault.Report) Summary {
	s := Summary{
		Name:       name,
		TraceLen:   rep.Trace.Len(),
		Injections: len(rep.Injections),
		Success:    rep.Count(fault.OutcomeSuccess),
		Detected:   rep.Count(fault.OutcomeDetected),
		Crash:      rep.Count(fault.OutcomeCrash),
		Ignored:    rep.Count(fault.OutcomeIgnored),
		GoodExit:   rep.GoodOracle.ExitCode,
		BadExit:    rep.BadOracle.ExitCode,
	}
	seen := map[fault.Model]bool{}
	for _, inj := range rep.Injections {
		if !seen[inj.Fault.Model] {
			seen[inj.Fault.Model] = true
			s.Models = append(s.Models, inj.Fault.Model.String())
		}
	}
	sort.Strings(s.Models)
	for _, site := range rep.VulnerableSites() {
		s.Sites = append(s.Sites, SiteSummary{
			Addr:      site.Addr,
			Mnemonic:  site.Mnemonic,
			Class:     string(fault.Classify(site.Op)),
			Successes: site.Count,
		})
	}
	return s
}

// SummaryTable renders a batch of summaries as the standard text table
// (also the source for CSV export).
func SummaryTable(sums []Summary) *report.Table {
	tab := &report.Table{
		Title:  "fault campaign results",
		Header: []string{"name", "trace", "injections", "success", "detected", "crash", "ignored", "sites"},
	}
	for _, s := range sums {
		tab.AddRow(s.Name,
			fmt.Sprintf("%d", s.TraceLen),
			fmt.Sprintf("%d", s.Injections),
			fmt.Sprintf("%d", s.Success),
			fmt.Sprintf("%d", s.Detected),
			fmt.Sprintf("%d", s.Crash),
			fmt.Sprintf("%d", s.Ignored),
			fmt.Sprintf("%d", len(s.Sites)))
	}
	return tab
}

// WriteJSON exports summaries as an indented JSON array.
func WriteJSON(w io.Writer, sums []Summary) error {
	return report.WriteJSON(w, sums)
}

// WriteCSV exports the summary table as CSV.
func WriteCSV(w io.Writer, sums []Summary) error {
	return SummaryTable(sums).WriteCSV(w)
}
