// The differential soundness harness for the work-stealing corpus
// scheduler: the same corpus sweep executed sequentially and with
// concurrent case chains on a shared worker pool must produce
// bit-identical results — every cell, every order, regardless of the
// worker budget, chunk sizing, steal interleavings, or store state.
// This is the contract that makes `-parallel-cells` safe to use
// anywhere the sequential runner was.
//
// External test package, like prunediff_test.go: the harness consumes
// campaigntest, which imports campaign.
package campaign_test

import (
	"fmt"
	"sync"
	"testing"

	"github.com/r2r/reinforce/internal/campaign"
	"github.com/r2r/reinforce/internal/campaign/campaigntest"
	"github.com/r2r/reinforce/internal/fault"
)

// Scheduler-matrix budgets, sized like the prune harness's: wide enough
// that the order-2 and order-3 stages do real work on every catalog
// case, small enough that the matrix stays affordable.
const (
	schedMaxFaults  = 400
	schedMaxPairs   = 256
	schedMaxTriples = 128
)

// schedCorpusJobs builds one corpus job per catalog case under the
// given models, reusing the prune harness's case/model matrix so the
// scheduler is exercised on exactly the campaigns the rest of the
// differential suite trusts.
func schedCorpusJobs(t *testing.T, modelSets [][]fault.Model) []campaign.CorpusJob {
	t.Helper()
	names, _ := diffMatrix(t)
	var jobs []campaign.CorpusJob
	for i, name := range names {
		// Rotate through the model sets so the sweep covers every
		// registered model without squaring the matrix.
		models := modelSets[i%len(modelSets)]
		jobs = append(jobs, campaign.CorpusJob{
			Case:     name,
			Campaign: campaigntest.CaseCampaign(t, name, models, schedMaxFaults),
		})
	}
	return jobs
}

// runSchedCorpus executes a corpus sweep and fails the test on any
// error — sweep-level or per-cell.
func runSchedCorpus(t *testing.T, label string, jobs []campaign.CorpusJob, opt campaign.CorpusOptions) *campaign.CorpusResult {
	t.Helper()
	res, err := campaign.RunCorpus(jobs, opt)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	for _, e := range res.Errs() {
		t.Fatalf("%s: %v", label, e)
	}
	return res
}

// TestSchedulerDifferentialCorpus: the full (case × model) corpus at
// orders {1, 2, 3}, sequential vs parallel cells at worker budgets 1
// and 8 — all four scheduling shapes bit-identical.
func TestSchedulerDifferentialCorpus(t *testing.T) {
	_, modelSets := diffMatrix(t)
	jobs := schedCorpusJobs(t, modelSets)
	opt := func(parallelCells, workers int) campaign.CorpusOptions {
		return campaign.CorpusOptions{
			Options: campaign.Options{
				Workers:    workers,
				MaxPairs:   schedMaxPairs,
				MaxTriples: schedMaxTriples,
			},
			Orders:        []int{1, 2, 3},
			ParallelCells: parallelCells,
		}
	}
	sequential := runSchedCorpus(t, "sequential", jobs, opt(1, 1))
	for _, workers := range []int{1, 8} {
		label := fmt.Sprintf("parallel-cells workers=%d", workers)
		parallel := runSchedCorpus(t, label, jobs, opt(len(jobs), workers))
		campaigntest.AssertCorpusEqual(t, label, sequential, parallel)
	}
}

// TestSchedulerSharedPoolInvariance: an explicit caller-owned
// WorkerPool shared across the whole sweep (the `r2r corpus` shape,
// where -workers is a global budget, not a per-cell one) changes
// nothing about the results.
func TestSchedulerSharedPoolInvariance(t *testing.T) {
	jobs := schedCorpusJobs(t, [][]fault.Model{{fault.ModelSkip}})
	base := campaign.CorpusOptions{
		Options: campaign.Options{MaxPairs: schedMaxPairs},
		Orders:  []int{1, 2},
	}
	sequential := runSchedCorpus(t, "sequential", jobs, base)

	pool := campaign.NewWorkerPool(4)
	defer pool.Close()
	shared := base
	shared.Pool = pool
	shared.ParallelCells = len(jobs)
	parallel := runSchedCorpus(t, "shared pool", jobs, shared)
	campaigntest.AssertCorpusEqual(t, "shared pool", sequential, parallel)
}

// TestSchedulerWarmStoreReplay: a parallel-cells sweep over a
// disk-backed write-behind store, replayed warm, answers everything
// from the store and reproduces the cold run bit for bit — the
// cold-then-warm CI smoke in library form.
func TestSchedulerWarmStoreReplay(t *testing.T) {
	jobs := schedCorpusJobs(t, [][]fault.Model{{fault.ModelSkip}, {fault.ModelBitFlip}})
	dir := t.TempDir()
	run := func(label string) *campaign.CorpusResult {
		st, err := campaign.NewStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		st.EnableWriteBehind(0, 0)
		defer st.Close()
		opt := campaign.CorpusOptions{
			Options:       campaign.Options{Workers: 8, MaxPairs: schedMaxPairs, MaxTriples: schedMaxTriples, Store: st},
			Orders:        []int{1, 2, 3},
			ParallelCells: len(jobs),
		}
		res := runSchedCorpus(t, label, jobs, opt)
		st.Close() // flush before the warm run opens the same dir
		if res.Cache.WriteErrors != 0 {
			t.Fatalf("%s: %d write-behind flushes failed", label, res.Cache.WriteErrors)
		}
		return res
	}
	cold := run("cold")
	if cold.Cache.Misses == 0 {
		t.Fatal("cold sweep reported no store misses — the warm assertion is vacuous")
	}
	warm := run("warm")
	campaigntest.AssertCorpusEqual(t, "warm replay", cold, warm)
	if warm.Cache.Misses != 0 {
		t.Fatalf("warm parallel sweep missed the store: %+v", warm.Cache)
	}
	if warm.Cache.Hits == 0 {
		t.Fatal("warm parallel sweep recorded no hits")
	}
}

// TestSchedulerProgressMonotonic: with cells interleaving on the shared
// pool, every cell's progress stream must stay monotonic (done never
// decreases, job identity never flickers mid-stream) and end complete
// — the corpus progress-remapping contract under concurrency.
func TestSchedulerProgressMonotonic(t *testing.T) {
	jobs := schedCorpusJobs(t, [][]fault.Model{{fault.ModelSkip}})
	var mu sync.Mutex
	type stream struct {
		last  campaign.Progress
		count int
	}
	streams := map[string]*stream{}
	var violations []string
	progress := func(p campaign.Progress) {
		// Options.Progress promises serialized delivery; assert it
		// anyway by doing the bookkeeping under our own lock and
		// checking per-stream invariants.
		mu.Lock()
		defer mu.Unlock()
		s, ok := streams[p.Job]
		if !ok {
			s = &stream{}
			streams[p.Job] = s
		}
		if s.count > 0 {
			if p.Done < s.last.Done {
				violations = append(violations,
					fmt.Sprintf("%s: done went backwards (%d after %d)", p.Job, p.Done, s.last.Done))
			}
			if p.Total != s.last.Total || p.JobIndex != s.last.JobIndex {
				violations = append(violations,
					fmt.Sprintf("%s: job identity flickered mid-stream", p.Job))
			}
		}
		s.last = p
		s.count++
	}
	runSchedCorpus(t, "progress", jobs, campaign.CorpusOptions{
		Options:       campaign.Options{Workers: 8, MaxPairs: schedMaxPairs, Progress: progress},
		Orders:        []int{1, 2},
		ParallelCells: len(jobs),
	})
	mu.Lock()
	defer mu.Unlock()
	for _, v := range violations {
		t.Error(v)
	}
	if len(streams) == 0 {
		t.Fatal("no progress delivered")
	}
	for job, s := range streams {
		if s.last.Done != s.last.Total {
			t.Errorf("%s: stream ended at %d/%d", job, s.last.Done, s.last.Total)
		}
	}
}
