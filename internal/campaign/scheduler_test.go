package campaign

import (
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestWorkerPoolExecute: Execute covers [0, n) exactly once, for unit
// counts around the chunking thresholds and worker budgets above and
// below the unit count.
func TestWorkerPoolExecute(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		pool := NewWorkerPool(workers)
		for _, n := range []int{0, 1, 7, 64, 1000} {
			hits := make([]atomic.Int32, n)
			pool.Execute(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					hits[i].Add(1)
				}
			})
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: unit %d ran %d times", workers, n, i, got)
				}
			}
		}
		pool.Close()
	}
}

// TestWorkerPoolConcurrentSources: many goroutines submit Executes at
// once — the corpus shape, one source per concurrently running cell
// stage — and every unit of every source runs exactly once.
func TestWorkerPoolConcurrentSources(t *testing.T) {
	pool := NewWorkerPool(4)
	defer pool.Close()
	const sources, units = 16, 257
	counts := make([][]atomic.Int32, sources)
	var wg sync.WaitGroup
	for s := 0; s < sources; s++ {
		counts[s] = make([]atomic.Int32, units)
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			pool.Execute(units, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					counts[s][i].Add(1)
				}
			})
		}(s)
	}
	wg.Wait()
	for s := range counts {
		for i := range counts[s] {
			if got := counts[s][i].Load(); got != 1 {
				t.Fatalf("source %d unit %d ran %d times", s, i, got)
			}
		}
	}
}

// TestWorkerPoolClosedRunsInline: Execute on a closed pool degrades to
// inline execution instead of deadlocking or dropping work.
func TestWorkerPoolClosedRunsInline(t *testing.T) {
	pool := NewWorkerPool(2)
	pool.Close()
	ran := 0
	pool.Execute(10, func(lo, hi int) { ran += hi - lo })
	if ran != 10 {
		t.Fatalf("closed pool ran %d of 10 units", ran)
	}
}

// TestStoreSingleflight: N concurrent Acquires of one absent key elect
// exactly one leader; after its commit every waiter gets the entry as
// a hit, and the store performed one Save total.
func TestStoreSingleflight(t *testing.T) {
	st, err := NewStore("")
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	var computations atomic.Int32
	var wg sync.WaitGroup
	entries := make([]*Entry, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			e, commit := st.Acquire("shared-key")
			if commit != nil {
				computations.Add(1)
				e = &Entry{Key: "shared-key", FaultsDigest: "fd"}
				if err := commit(e); err != nil {
					t.Errorf("commit: %v", err)
				}
			}
			entries[g] = e
		}(g)
	}
	wg.Wait()
	if got := computations.Load(); got != 1 {
		t.Fatalf("%d computations for one key, want 1", got)
	}
	for g, e := range entries {
		if e == nil || e.FaultsDigest != "fd" {
			t.Fatalf("goroutine %d got entry %+v", g, e)
		}
	}
	if s := st.Stats(); s.Saves != 1 {
		t.Fatalf("store saved %d entries, want 1 (stats %+v)", s.Saves, s)
	}
}

// TestStoreSingleflightAbandon: a leader that commits nil releases its
// waiters to re-race; a later leader can still complete the key, so a
// failed computation never wedges it.
func TestStoreSingleflightAbandon(t *testing.T) {
	st, err := NewStore("")
	if err != nil {
		t.Fatal(err)
	}
	_, commit := st.Acquire("k")
	if commit == nil {
		t.Fatal("first Acquire of an absent key did not lead")
	}
	waited := make(chan *Entry)
	go func() {
		e, c := st.Acquire("k")
		if c != nil {
			e = &Entry{Key: "k"}
			c(e)
		}
		waited <- e
	}()
	if err := commit(nil); err != nil {
		t.Fatalf("abandoning commit errored: %v", err)
	}
	select {
	case e := <-waited:
		if e == nil {
			t.Fatal("waiter got no entry after re-racing an abandoned flight")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("waiter wedged on an abandoned flight")
	}
	if e, c := st.Acquire("k"); c != nil || e == nil {
		t.Fatal("completed key not answered from the store")
	}
}

// TestStoreWriteBehind: with write-behind enabled, Save defers disk
// I/O (lookups still hit from memory), repeated saves of one key
// dedup, reaching the batch size kicks a flush, and Close drains the
// rest so a fresh store over the same directory sees everything.
func TestStoreWriteBehind(t *testing.T) {
	dir := t.TempDir()
	st := newTestStore(t, dir)
	// A huge interval isolates the size-triggered and Close-triggered
	// flush paths from timer luck.
	st.EnableWriteBehind(4, time.Hour)

	onDisk := func() int {
		files, err := filepath.Glob(filepath.Join(dir, "*.json"))
		if err != nil {
			t.Fatal(err)
		}
		return len(files)
	}
	if err := st.Save(&Entry{Key: "a", FaultsDigest: "v1"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(&Entry{Key: "a", FaultsDigest: "v2"}); err != nil {
		t.Fatal(err) // same key: dedup, newest wins
	}
	if n := onDisk(); n != 0 {
		t.Fatalf("%d entries on disk before any flush trigger", n)
	}
	if e, ok := st.Lookup("a"); !ok || e.FaultsDigest != "v2" {
		t.Fatalf("pending entry not visible to Lookup: %+v", e)
	}
	// Fill to the batch size; the flusher should drain without Flush.
	for _, k := range []string{"b", "c", "d"} {
		if err := st.Save(&Entry{Key: k}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for onDisk() < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("batch-size flush never happened (%d files)", onDisk())
		}
		time.Sleep(time.Millisecond)
	}
	if err := st.Save(&Entry{Key: "e"}); err != nil {
		t.Fatal(err)
	}
	st.Close() // drains "e"
	if n := onDisk(); n != 5 {
		t.Fatalf("%d entries on disk after Close, want 5", n)
	}
	if s := st.Stats(); s.WriteErrors != 0 {
		t.Fatalf("write errors: %+v", s)
	}
	// Newest-wins reached the disk, and a fresh store reads it back.
	fresh := newTestStore(t, dir)
	if e, ok := fresh.Lookup("a"); !ok || e.FaultsDigest != "v2" {
		t.Fatalf("fresh store read %+v for deduped key", e)
	}
	// The store stays usable after Close, with synchronous saves.
	if err := st.Save(&Entry{Key: "f"}); err != nil {
		t.Fatal(err)
	}
	if n := onDisk(); n != 6 {
		t.Fatalf("post-Close save not synchronous (%d files)", n)
	}
}

// TestStoreWriteBehindErrorCounting: flush failures land in
// Stats().WriteErrors instead of surfacing from Save — and do not
// poison the in-memory copy.
func TestStoreWriteBehindErrorCounting(t *testing.T) {
	dir := t.TempDir()
	st := newTestStore(t, dir)
	st.EnableWriteBehind(4, time.Hour)
	if err := st.Save(&Entry{Key: "x"}); err != nil {
		t.Fatal(err)
	}
	// Make the directory unwritable so the deferred write fails.
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	st.Close()
	if os.Getuid() == 0 {
		// Root ignores permission bits; the failure path is untestable
		// this way, but the accounting fields still must exist.
		t.Skip("running as root: cannot provoke a write failure via permissions")
	}
	if s := st.Stats(); s.WriteErrors == 0 {
		t.Fatalf("failed flush not counted: %+v", s)
	}
	if _, ok := st.Lookup("x"); !ok {
		t.Fatal("in-memory entry lost on flush failure")
	}
}
