// Order-3 campaign orchestration. The cubic triple space is only
// tractable through the fault-equivalence pruning pass (fault.Pruner /
// fault.PairPruner), so RunOrder3 always prunes — Options.Prune is
// implied — and shares one PairPruner between its pair and triple
// stages so the reference digests and equivalence classes discovered
// at order 2 keep paying at order 3. Determinism guarantees match the
// lower orders: the triple list is a pure function of the solo sweep,
// and reports are bit-identical across worker counts, shard
// decompositions, pruning, and store replay.
package campaign

import (
	"github.com/r2r/reinforce/internal/fault"
)

// Order3Report is the outcome of an order-3 multi-fault campaign: the
// complete order-1 and order-2 stages it was pruned from, plus the
// simulated fault triples.
type Order3Report struct {
	Solo      *fault.Report
	Pairs     []fault.PairInjection
	PairTally fault.Tally

	Triples     []fault.TripleInjection // simulated triples, in enumeration order
	TripleTally fault.Tally
}

// TripleCount returns how many triples had the given outcome.
func (r *Order3Report) TripleCount(o fault.Outcome) int {
	n := 0
	for _, t := range r.Triples {
		if t.Outcome == o {
			n++
		}
	}
	return n
}

// SuccessfulTriples returns the triples that constitute order-3
// vulnerabilities.
func (r *Order3Report) SuccessfulTriples() []fault.TripleInjection {
	var out []fault.TripleInjection
	for _, t := range r.Triples {
		if t.Outcome == fault.OutcomeSuccess {
			out = append(out, t)
		}
	}
	return out
}

// Order2 views the report's lower orders as an Order2Report.
func (r *Order3Report) Order2() *Order2Report {
	return &Order2Report{Solo: r.Solo, Pairs: r.Pairs, PairTally: r.PairTally}
}

// Order3Result is the full outcome of an order-3 run.
type Order3Result struct {
	Report *Order3Report
	Memo   *Memo // solo-sweep memo, reusable by the next incremental run
	Cache  CacheStats
	Prune  *fault.PruneStats
}

// RunOrder3 executes a budget-capped order-3 multi-fault campaign:
// the complete order-1 sweep, the order-2 pair stage (opt.MaxPairs),
// then the deterministically enumerated triple list (see
// fault.EnumerateTriples, opt.MaxTriples) on the pruned first-fault
// snapshot tree. opt.Shard applies to the triple list only — the lower
// stages run unsharded, since triple pruning wants every solo and pair
// outcome. Pruning is always on. With Options.Store, each stage is
// answered from its own plan key when possible.
func RunOrder3(c fault.Campaign, opt Options) (*Order3Result, error) {
	return runOrder3Inc("", 0, 1, c, opt, nil, false)
}

// runOrder3Inc is the shared order-3 execution path, mirroring
// runOrder2Inc: with an empty name the three phases report as
// stand-alone jobs ("order-1" 0/3 ... "order-3" 2/3); a batch caller
// (RunCorpus) passes its own name/jobIndex/jobs and the phases report
// as "<name> order-N" under that index. The solo sweep participates in
// the per-case memo chain like the lower orders; the pair stage stores
// under the same plan key as an order-2 run with the same budget, so a
// corpus cell chain {2, 3} answers the order-3 pair stage from the
// order-2 cell's entry.
func runOrder3Inc(name string, jobIndex, jobs int, c fault.Campaign, opt Options, prev *Memo, wantMemo bool) (*Order3Result, error) {
	opt.Prune = true
	soloProgress := progressFunc(opt, "order-1", 0, 3)
	pairProgress := progressFunc(opt, "order-2", 1, 3)
	tripleProgress := progressFunc(opt, "order-3", 2, 3)
	if name != "" {
		soloProgress = progressFunc(opt, name+" order-1", jobIndex, jobs)
		pairProgress = progressFunc(opt, name+" order-2", jobIndex, jobs)
		tripleProgress = progressFunc(opt, name+" order-3", jobIndex, jobs)
	}
	shard, err := opt.Shard.normalize()
	if err != nil {
		return nil, err
	}
	s, err := opt.session(c)
	if err != nil {
		return nil, err
	}
	e := &executor{s: s, store: opt.Store, prune: true}
	solo, _, memo, stats, err := e.solo(c, Shard{}, opt.Workers, prev, wantMemo, soloProgress)
	if err != nil {
		return nil, err
	}
	pairInj, pairTally, pairStats, err := e.pairs(c, Shard{}, opt.Workers, opt.MaxPairs, solo, pairProgress)
	if err != nil {
		return nil, err
	}
	stats.Add(pairStats)
	tripleInj, tripleTally, tripleStats, err := e.triples(c, shard, opt.Workers, opt.MaxTriples, solo, pairInj, tripleProgress)
	if err != nil {
		return nil, err
	}
	stats.Add(tripleStats)
	return &Order3Result{
		Report: &Order3Report{
			Solo:        s.Report(solo),
			Pairs:       pairInj,
			PairTally:   pairTally,
			Triples:     tripleInj,
			TripleTally: tripleTally,
		},
		Memo:  memo,
		Cache: stats,
		Prune: e.pruneStats(),
	}, nil
}

// triples executes the order-3 stage of a plan over the completed
// lower stages. Store reuse is exact-key only, like pairs(): triple
// runs fork mid-trace faulted machines, so no per-triple footprint is
// recorded. The plan's budget slot carries maxTriples — sound because
// the triple list derives from the solo sweep alone, independent of
// the pair budget.
func (e *executor) triples(c fault.Campaign, shard Shard, workers, maxTriples int, solo []fault.Injection, pairs []fault.PairInjection, progress func(done, total int)) ([]fault.TripleInjection, fault.Tally, CacheStats, error) {
	if maxTriples <= 0 {
		maxTriples = fault.DefaultMaxTriples
	}
	triples := fault.EnumerateTriples(solo, maxTriples)

	pruner := func() *fault.PairPruner {
		pr := e.pairPruner
		if pr == nil {
			// The pair stage was answered from the store (or skipped);
			// build the pruner the triple tree needs here.
			pr = e.s.NewPairPruner(solo)
			e.pairPruner = pr
		}
		pr.SetPairOutcomes(pairs)
		return pr
	}

	if e.store == nil {
		injections, tally := e.s.ExecuteTripleShard(triples, pruner(), shard.Index, shard.Count, workers, progress)
		return injections, tally, CacheStats{}, nil
	}

	plan := NewPlan(c, shard, 3, maxTriples)
	td := digestTriples(triples)
	sel := shardSelect(triples, shard)
	good, bad := e.s.Oracles()
	limit := e.s.InjectionLimit()

	entry, commit := e.store.Acquire(plan.Key)
	if entry != nil {
		if entry.TriplesDigest == td && entry.GoodOracle == good && entry.BadOracle == bad &&
			entry.Limit == limit && len(entry.TripleRecords) == len(sel) {
			out := make([]fault.TripleInjection, len(sel))
			var tally fault.Tally
			for i, t := range sel {
				o := entry.TripleRecords[i]
				out[i] = fault.TripleInjection{Triple: t, Outcome: o}
				tally[o]++
			}
			if progress != nil {
				progress(len(sel), len(sel))
			}
			return out, tally, CacheStats{Hits: 1}, nil
		}
		// Stale entry: fall through and re-simulate.
	}

	injections, tally := e.s.ExecuteTripleShard(triples, pruner(), shard.Index, shard.Count, workers, progress)
	stats := CacheStats{Misses: 1}
	outcomes := make([]fault.Outcome, len(injections))
	for i, ti := range injections {
		outcomes[i] = ti.Outcome
	}
	saved := &Entry{
		Key: plan.Key, FaultsDigest: digestFaults(e.s.Faults()), TriplesDigest: td,
		GoodOracle: good, BadOracle: bad, Limit: limit,
		TripleRecords: outcomes,
	}
	err := error(nil)
	if commit != nil {
		err = commit(saved)
	} else {
		err = e.store.Save(saved)
	}
	if err != nil {
		stats.WriteErrors++
	}
	return injections, tally, stats, nil
}
