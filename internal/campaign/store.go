// Store: the persistence stage of the plan → execute → store
// architecture. Campaign results are content-addressed by their plan
// key (binary digest + campaign options + shard + order), so any
// execution of the same plan — a patch-driver fixed point re-verifying
// its final binary, a re-run experiment suite, a warm second `r2r
// patch` invocation — is answered from the store instead of
// re-simulated. Entries carry the per-fault simulation records
// (footprint pages, step counts), so a stored campaign also rehydrates
// the cross-binary Memo the incremental executor uses for partial
// reuse after a patch round.
package campaign

import (
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/r2r/reinforce/internal/fault"
)

// Record is the stored evidence behind one fault's outcome — the
// serialized form of a fault.SimRecord. Pages is the run's code
// footprint; Steps/LimitHit qualify the outcome against a different
// injection step budget (see Memo.lookup for the reuse rule).
type Record struct {
	Outcome  fault.Outcome `json:"outcome"`
	Steps    uint64        `json:"steps,omitempty"`
	LimitHit bool          `json:"limit_hit,omitempty"`
	Pages    []uint64      `json:"pages,omitempty"`
}

// Entry is one stored campaign result: the outcome of every injection
// of one plan, in shard-local order, plus the digests and oracles that
// gate its reuse. Order-2 entries additionally carry the pair stage;
// order-3 entries the triple stage.
type Entry struct {
	Schema       int    `json:"schema"`
	Key          string `json:"key"`
	FaultsDigest string `json:"faults_digest"`

	GoodOracle fault.Observable `json:"good_oracle"`
	BadOracle  fault.Observable `json:"bad_oracle"`
	Limit      uint64           `json:"injection_step_limit"`

	Records []Record `json:"records"`

	PairsDigest string          `json:"pairs_digest,omitempty"`
	PairRecords []fault.Outcome `json:"pair_outcomes,omitempty"`

	TriplesDigest string          `json:"triples_digest,omitempty"`
	TripleRecords []fault.Outcome `json:"triple_outcomes,omitempty"`
}

// CacheStats counts how a run's work was answered. Hits/Misses count
// whole-campaign store lookups; Reused/Resimulated count individual
// injections inside a miss that the incremental Memo could and could
// not answer (on a store hit nothing is simulated, so all four stay
// meaningful side by side). WriteErrors counts store entries that
// failed to persist — results are unaffected, but a later run will
// re-execute those plans instead of replaying them.
type CacheStats struct {
	Hits        int `json:"hits"`
	Misses      int `json:"misses"`
	Reused      int `json:"reused,omitempty"`
	Resimulated int `json:"resimulated,omitempty"`
	WriteErrors int `json:"write_errors,omitempty"`
}

// Add accumulates another stats record.
func (s *CacheStats) Add(o CacheStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Reused += o.Reused
	s.Resimulated += o.Resimulated
	s.WriteErrors += o.WriteErrors
}

// DefaultMemEntries is the in-memory entry cap of a disk-backed store.
// A corpus-scale warm run touches every campaign of every binary; the
// cap keeps the hot entries resident and lets the rest live on disk
// (the source of truth) instead of accumulating every campaign of the
// run in RAM.
const DefaultMemEntries = 512

// Store is a content-addressed campaign result cache: a bounded
// in-memory LRU map, mirrored to one JSON file per key under a
// directory when one is configured (`r2r ... -cache-dir`), so results
// persist across processes. Evicted entries survive on disk and are
// transparently re-read on the next Lookup; results are identical with
// any cap, only re-read (or, for a purely in-memory store,
// re-execution) cost changes. Safe for concurrent use.
type Store struct {
	dir   string
	limit int // max in-memory entries; <= 0 means unbounded

	mu  sync.Mutex
	mem map[string]*list.Element // key → element; Value is *memEntry
	lru *list.List               // front = most recently used

	// Lifetime counters, atomic so Stats() can be read while shards
	// execute (Lookup/Save run concurrently from worker goroutines).
	hits, misses, saves atomic.Int64

	// Singleflight state: concurrent Acquire calls for one plan key
	// elect a single computing leader; the rest wait for its commit.
	flightMu sync.Mutex
	inflight map[string]*flight

	// Write-behind state (see EnableWriteBehind). pending holds
	// entries accepted by Save but not yet persisted, deduped by key;
	// order preserves first-enqueue order for the flusher.
	wbMu       sync.Mutex
	wbEnabled  bool
	wbBatch    int
	wbInterval time.Duration
	pending    map[string]*Entry
	pendingKey []string
	wbKick     chan struct{}
	wbStop     chan struct{}
	wbDone     chan struct{}
	writeErrs  atomic.Int64
}

// flight is one in-progress computation of a plan key's entry. done is
// closed at commit; e is the committed entry (nil when the leader
// abandoned the flight).
type flight struct {
	done chan struct{}
	e    *Entry
}

// StoreStats is a point-in-time snapshot of a store's lifetime
// counters: lookups answered (from memory or disk), lookups that found
// nothing usable, and entries saved. Unlike CacheStats — per-run
// accounting that also knows when a returned entry was rejected as
// stale — these are raw store-level counts across every run sharing
// the store.
type StoreStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Saves  int64 `json:"saves"`

	// WriteErrors counts write-behind flushes that failed to persist
	// an entry (results unaffected; the plan re-executes next run).
	WriteErrors int64 `json:"write_errors,omitempty"`
}

// Stats snapshots the store's lifetime counters. Safe to call at any
// time, including while campaigns execute against the store.
func (st *Store) Stats() StoreStats {
	return StoreStats{
		Hits:        st.hits.Load(),
		Misses:      st.misses.Load(),
		Saves:       st.saves.Load(),
		WriteErrors: st.writeErrs.Load(),
	}
}

// memEntry is one resident cache entry.
type memEntry struct {
	key string
	e   *Entry
}

// NewStore opens (creating if needed) a store backed by dir; an empty
// dir means in-memory only. Disk-backed stores cap their resident set
// at DefaultMemEntries (disk stays the source of truth); purely
// in-memory stores stay unbounded, since evicting their entries would
// discard results outright. NewStoreCapped overrides either default.
func NewStore(dir string) (*Store, error) {
	limit := 0
	if dir != "" {
		limit = DefaultMemEntries
	}
	return NewStoreCapped(dir, limit)
}

// NewStoreCapped opens a store with an explicit in-memory entry cap
// (<= 0 means unbounded). Capping an in-memory-only store is allowed —
// evicted results are simply re-executed later — but the usual callers
// are disk-backed stores bounding their resident set.
func NewStoreCapped(dir string, memEntries int) (*Store, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("campaign: cache dir: %w", err)
		}
	}
	return &Store{
		dir:      dir,
		limit:    memEntries,
		mem:      make(map[string]*list.Element),
		lru:      list.New(),
		inflight: make(map[string]*flight),
	}, nil
}

// MemEntries reports the resident in-memory entry count.
func (st *Store) MemEntries() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.lru.Len()
}

// insert makes an entry resident (most recently used) and evicts the
// coldest entries beyond the cap. Callers hold st.mu.
func (st *Store) insert(key string, e *Entry) {
	if el, ok := st.mem[key]; ok {
		el.Value.(*memEntry).e = e
		st.lru.MoveToFront(el)
	} else {
		st.mem[key] = st.lru.PushFront(&memEntry{key: key, e: e})
	}
	for st.limit > 0 && st.lru.Len() > st.limit {
		coldest := st.lru.Back()
		st.lru.Remove(coldest)
		delete(st.mem, coldest.Value.(*memEntry).key)
	}
}

// path maps a key to its backing file.
func (st *Store) path(key string) string {
	return filepath.Join(st.dir, key+".json")
}

// Lookup returns the stored entry for a plan key, consulting memory
// first and then the backing directory. A malformed or
// schema-mismatched file is treated as absent, never as an error: a
// cache can only decline to help. Hit/miss accounting lives with the
// executor (CacheStats), which also knows when a returned entry was
// rejected as stale.
func (st *Store) Lookup(key string) (*Entry, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if el, ok := st.mem[key]; ok {
		st.lru.MoveToFront(el)
		st.hits.Add(1)
		return el.Value.(*memEntry).e, true
	}
	if st.dir != "" {
		data, err := os.ReadFile(st.path(key))
		if err == nil {
			var e Entry
			if json.Unmarshal(data, &e) == nil && e.Schema == planSchema && e.Key == key {
				st.insert(key, &e)
				st.hits.Add(1)
				return &e, true
			}
		}
	}
	st.misses.Add(1)
	return nil, false
}

// Save records an entry under its key, in memory and (when configured)
// on disk. The memory insert is always synchronous, so subsequent
// Lookups hit. The disk write is synchronous and atomic (temp file +
// rename) by default; with write-behind enabled (EnableWriteBehind) it
// is deferred to the flusher and Save never blocks on I/O.
func (st *Store) Save(e *Entry) error {
	e.Schema = planSchema
	st.saves.Add(1)
	st.mu.Lock()
	st.insert(e.Key, e)
	dir := st.dir
	st.mu.Unlock()
	if dir == "" {
		return nil
	}
	st.wbMu.Lock()
	if st.wbEnabled {
		if _, queued := st.pending[e.Key]; !queued {
			st.pendingKey = append(st.pendingKey, e.Key)
		}
		st.pending[e.Key] = e
		kick := len(st.pending) >= st.wbBatch
		st.wbMu.Unlock()
		if kick {
			select {
			case st.wbKick <- struct{}{}:
			default:
			}
		}
		return nil
	}
	st.wbMu.Unlock()
	return st.writeFile(e)
}

// writeFile persists one entry atomically (temp file + rename), so a
// crashed or racing process never leaves a half-written entry that
// Lookup could misread.
func (st *Store) writeFile(e *Entry) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(st.dir, "entry-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), st.path(e.Key)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Acquire is the singleflight entry point concurrent corpus cells use:
// it either returns the stored entry (commit == nil), or elects the
// caller the key's computing leader and returns a commit function the
// leader must invoke exactly once — with the computed entry to Save
// and release the waiters (commit returns the Save error), or with nil
// to abandon the flight (waiters then re-race for leadership, so a
// failed leader never wedges a key). Concurrent Acquires of one key
// thus cost one computation total.
func (st *Store) Acquire(key string) (*Entry, func(*Entry) error) {
	for {
		st.flightMu.Lock()
		if f, ok := st.inflight[key]; ok {
			st.flightMu.Unlock()
			<-f.done
			if f.e != nil {
				st.hits.Add(1)
				return f.e, nil
			}
			continue
		}
		// No flight in progress: consult the cache while still holding
		// the flight lock, so a committing leader cannot slip between
		// our miss and our own leadership claim.
		if e, ok := st.Lookup(key); ok {
			st.flightMu.Unlock()
			return e, nil
		}
		f := &flight{done: make(chan struct{})}
		st.inflight[key] = f
		st.flightMu.Unlock()
		commit := func(e *Entry) error {
			var err error
			if e != nil {
				err = st.Save(e)
			}
			st.flightMu.Lock()
			delete(st.inflight, key)
			f.e = e
			st.flightMu.Unlock()
			close(f.done)
			return err
		}
		return nil, commit
	}
}

// EnableWriteBehind switches a disk-backed store to asynchronous
// batched persistence: Save queues entries (deduped by key, newest
// wins) and a flusher goroutine writes them out when the batch reaches
// maxBatch entries or interval elapses, whichever comes first
// (defaults: 16 entries, 100ms). Failed writes count into
// Stats().WriteErrors instead of surfacing from Save. Call Flush or
// Close before reading the directory from another process. No-op on
// an in-memory store or when already enabled.
func (st *Store) EnableWriteBehind(maxBatch int, interval time.Duration) {
	if maxBatch <= 0 {
		maxBatch = 16
	}
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	st.wbMu.Lock()
	defer st.wbMu.Unlock()
	if st.dir == "" || st.wbEnabled {
		return
	}
	st.wbEnabled = true
	st.wbBatch = maxBatch
	st.wbInterval = interval
	st.pending = make(map[string]*Entry)
	st.wbKick = make(chan struct{}, 1)
	st.wbStop = make(chan struct{})
	st.wbDone = make(chan struct{})
	go st.flusher()
}

// flusher is the write-behind drain loop: flush on batch-size kicks,
// on the interval tick, and once more on Close.
func (st *Store) flusher() {
	defer close(st.wbDone)
	ticker := time.NewTicker(st.wbInterval)
	defer ticker.Stop()
	for {
		select {
		case <-st.wbKick:
			st.flushPending()
		case <-ticker.C:
			st.flushPending()
		case <-st.wbStop:
			st.flushPending()
			return
		}
	}
}

// flushPending grabs the queued batch and persists it outside the
// queue lock; write failures count into writeErrs. Safe to call from
// any goroutine — concurrent calls drain disjoint batches.
func (st *Store) flushPending() {
	st.wbMu.Lock()
	keys := st.pendingKey
	st.pendingKey = nil
	batch := make([]*Entry, 0, len(keys))
	for _, k := range keys {
		batch = append(batch, st.pending[k])
		delete(st.pending, k)
	}
	st.wbMu.Unlock()
	for _, e := range batch {
		if err := st.writeFile(e); err != nil {
			st.writeErrs.Add(1)
		}
	}
}

// Flush synchronously persists every queued write-behind entry. No-op
// without write-behind.
func (st *Store) Flush() {
	st.wbMu.Lock()
	enabled := st.wbEnabled
	st.wbMu.Unlock()
	if enabled {
		st.flushPending()
	}
}

// Close flushes queued writes and stops the write-behind flusher; the
// store remains usable afterwards with synchronous saves. No-op
// without write-behind.
func (st *Store) Close() {
	st.wbMu.Lock()
	if !st.wbEnabled {
		st.wbMu.Unlock()
		return
	}
	st.wbEnabled = false
	stop, done := st.wbStop, st.wbDone
	st.wbMu.Unlock()
	close(stop)
	<-done
	st.flushPending()
}

// errStale marks a store entry that no longer matches the session it
// would be zipped against (enumeration drift, oracle change); callers
// treat it as a miss.
var errStale = errors.New("campaign: stale cache entry")
