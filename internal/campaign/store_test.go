package campaign

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"github.com/r2r/reinforce/internal/asm"
	"github.com/r2r/reinforce/internal/elf"
	"github.com/r2r/reinforce/internal/fault"
)

// newTestStore builds a disk-backed store in a test temp dir.
func newTestStore(t *testing.T, dir string) *Store {
	t.Helper()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestCachedRunBitIdentity: a campaign run through the store — cold
// (populating) and warm (answered from it) — must be bit-identical to
// an uncached run. This is the store's core guarantee, alongside the
// worker/shard determinism tests.
func TestCachedRunBitIdentity(t *testing.T) {
	bin := buildMini(t)
	c := miniCampaign(bin, fault.ModelSkip, fault.ModelBitFlip)
	plain, err := Run(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := newTestStore(t, t.TempDir())
	cold, err := RunIncremental(c, Options{Store: st}, nil)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := RunIncremental(c, Options{Store: st}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Injections, cold.Report.Injections) {
		t.Fatal("cold cached run differs from uncached run")
	}
	if !reflect.DeepEqual(plain.Injections, warm.Report.Injections) {
		t.Fatal("warm cached run differs from uncached run")
	}
	if cold.Cache.Hits != 0 || cold.Cache.Misses != 1 {
		t.Errorf("cold stats = %+v, want 1 miss", cold.Cache)
	}
	if warm.Cache.Hits != 1 || warm.Cache.Misses != 0 {
		t.Errorf("warm stats = %+v, want 1 hit", warm.Cache)
	}
	if warm.Report.GoodOracle != plain.GoodOracle || warm.Report.BadOracle != plain.BadOracle {
		t.Error("oracles drifted through the cache")
	}
}

// TestCachedRunAcrossStores: a second store over the same directory (a
// separate process, in effect) must answer the campaign from disk.
func TestCachedRunAcrossStores(t *testing.T) {
	bin := buildMini(t)
	c := miniCampaign(bin, fault.ModelSkip)
	dir := t.TempDir()
	first, err := RunIncremental(c, Options{Store: newTestStore(t, dir)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	second := newTestStore(t, dir)
	warm, err := RunIncremental(c, Options{Store: second}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cache.Hits != 1 {
		t.Fatalf("fresh store over a warm dir missed: %+v", warm.Cache)
	}
	if !reflect.DeepEqual(first.Report.Injections, warm.Report.Injections) {
		t.Fatal("disk round-trip changed the report")
	}
}

// TestCachedOrder2BitIdentity: order-2 campaigns reuse through the
// store too, bit-identically, and the warm run answers both stages
// (solo entry + pair entry) without simulating.
func TestCachedOrder2BitIdentity(t *testing.T) {
	bin := buildMini(t)
	c := miniCampaign(bin, fault.ModelSkip)
	opt := Options{MaxPairs: 256}
	plain, err := RunOrder2(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	st := newTestStore(t, t.TempDir())
	opt.Store = st
	cold, err := RunOrder2Incremental(c, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := RunOrder2Incremental(c, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, got := range map[string]*Order2Report{"cold": cold.Report, "warm": warm.Report} {
		if !reflect.DeepEqual(plain.Solo.Injections, got.Solo.Injections) {
			t.Errorf("%s solo sweep differs from uncached", name)
		}
		if !reflect.DeepEqual(plain.Pairs, got.Pairs) {
			t.Errorf("%s pair sweep differs from uncached", name)
		}
		if got.PairTally != plain.PairTally {
			t.Errorf("%s pair tally %v, want %v", name, got.PairTally, plain.PairTally)
		}
	}
	if warm.Cache.Hits != 2 || warm.Cache.Misses != 0 || warm.Cache.Resimulated != 0 {
		t.Errorf("warm order-2 stats = %+v, want 2 hits and no simulation", warm.Cache)
	}
}

// deadTailSource builds the mini pincheck with a page-spanning dead
// tail whose final instruction is caller-chosen — two variants differ
// only in bytes no run ever fetches, on a page of their own.
func deadTailSource(tail string) string {
	var sb strings.Builder
	sb.WriteString(miniPincheck[:strings.Index(miniPincheck, ".rodata")])
	sb.WriteString("deadcode:\n")
	for i := 0; i < 4200; i++ {
		sb.WriteString("\tnop\n")
	}
	sb.WriteString("\t" + tail + "\n")
	sb.WriteString(miniPincheck[strings.Index(miniPincheck, ".rodata"):])
	return sb.String()
}

func assembleT(t *testing.T, src string) *elf.Binary {
	t.Helper()
	bin, err := asm.Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

// TestIncrementalReuseAcrossBinaries is the driver's invalidation rule
// in isolation: two binaries differing only in never-executed code on
// a page outside every footprint must reuse every outcome, while a
// change to live code re-simulates (and both stay bit-identical to
// cold runs of the new binary).
func TestIncrementalReuseAcrossBinaries(t *testing.T) {
	binA := assembleT(t, deadTailSource("mov rax, 1"))
	binB := assembleT(t, deadTailSource("mov rax, 2"))
	campA := miniCampaign(binA, fault.ModelSkip)
	campB := miniCampaign(binB, fault.ModelSkip)
	if binA.Digest() == binB.Digest() {
		t.Fatal("variant binaries share a digest — dead tail not encoded?")
	}

	first, err := RunIncremental(campA, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Unchanged binary: the memo answers everything.
	same, err := RunIncremental(campA, Options{}, first.Memo)
	if err != nil {
		t.Fatal(err)
	}
	if same.Cache.Resimulated != 0 || same.Cache.Reused != len(first.Report.Injections) {
		t.Errorf("unchanged binary: %+v, want all %d reused", same.Cache, len(first.Report.Injections))
	}
	if !reflect.DeepEqual(first.Report.Injections, same.Report.Injections) {
		t.Fatal("memo replay differs from original run")
	}

	// Dead-code-only change: footprints avoid the changed page, so the
	// memo still answers everything — and the result must equal a cold
	// run of the changed binary.
	cold, err := Run(campB, Options{})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := RunIncremental(campB, Options{}, first.Memo)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold.Injections, inc.Report.Injections) {
		t.Fatal("incremental run differs from cold run of the changed binary")
	}
	// Nearly everything reuses. Not literally everything: skipping the
	// final exit syscall falls through *into* the dead tail, so that
	// one fault's footprint rightly includes the changed page — the
	// invalidation rule catching a reachable "dead" byte is exactly the
	// soundness this test guards.
	if inc.Cache.Reused <= inc.Cache.Resimulated {
		t.Errorf("dead-code change should mostly reuse: %+v", inc.Cache)
	}
}

// TestIncrementalInvalidatesLiveCode: changing an executed instruction
// must invalidate the faults whose runs fetch its page — correctness
// first, reuse second.
func TestIncrementalInvalidatesLiveCode(t *testing.T) {
	binA := buildMini(t)
	// Same program with a different denial exit code: live .text change.
	src := strings.Replace(miniPincheck, "mov rdi, 1\n\tsyscall", "mov rdi, 3\n\tsyscall", 1)
	if src == miniPincheck {
		t.Fatal("source surgery failed")
	}
	binB := assembleT(t, src)

	first, err := RunIncremental(miniCampaign(binA, fault.ModelSkip), Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Run(miniCampaign(binB, fault.ModelSkip), Options{})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := RunIncremental(miniCampaign(binB, fault.ModelSkip), Options{}, first.Memo)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold.Injections, inc.Report.Injections) {
		t.Fatal("incremental run differs from cold run after live-code change")
	}
	if inc.Cache.Resimulated == 0 {
		t.Error("live-code change re-simulated nothing — invalidation rule broken")
	}
}

// TestParseShard covers the CLI shard syntax's edge cases.
func TestParseShard(t *testing.T) {
	good := map[string]Shard{
		"":      {},
		"0/1":   {Index: 0, Count: 1},
		"0/4":   {Index: 0, Count: 4},
		"3/4":   {Index: 3, Count: 4},
		" 1/2 ": {Index: 1, Count: 2},
	}
	for in, want := range good {
		got, err := ParseShard(in)
		if err != nil {
			t.Errorf("ParseShard(%q): %v", in, err)
		} else if got != want {
			t.Errorf("ParseShard(%q) = %+v, want %+v", in, got, want)
		}
	}
	bad := []string{"1", "/", "1/", "/2", "a/b", "1/b", "a/2", "1/0", "2/2", "-1/2", "1/-2", "0/1/2", "1.5/2"}
	for _, in := range bad {
		if got, err := ParseShard(in); err == nil {
			t.Errorf("ParseShard(%q) = %+v, want error", in, got)
		}
	}
}

// TestMergeErrorPaths: every rejection reason of Merge fires with a
// precise message — empty input, nil shard, mismatched campaigns,
// wrong round-robin decomposition.
func TestMergeErrorPaths(t *testing.T) {
	bin := buildMini(t)
	c := miniCampaign(bin, fault.ModelSkip)
	full, err := Run(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]*fault.Report, 2)
	for i := range shards {
		if shards[i], err = Run(c, Options{Shard: Shard{Index: i, Count: 2}}); err != nil {
			t.Fatal(err)
		}
	}

	if _, err := Merge(nil); err == nil {
		t.Error("Merge(nil) succeeded")
	}
	if _, err := Merge([]*fault.Report{}); err == nil {
		t.Error("Merge(empty) succeeded")
	}
	if _, err := Merge([]*fault.Report{shards[0], nil}); err == nil || !strings.Contains(err.Error(), "nil") {
		t.Errorf("Merge with nil shard: %v", err)
	}
	// Mismatched campaigns: different oracles.
	other := *shards[1]
	other.GoodOracle.ExitCode++
	if _, err := Merge([]*fault.Report{shards[0], &other}); err == nil || !strings.Contains(err.Error(), "not the same campaign") {
		t.Errorf("Merge with foreign shard: %v", err)
	}
	// Mismatched fault sets: a truncated shard breaks the round-robin
	// size decomposition.
	trunc := *shards[1]
	trunc.Injections = trunc.Injections[:len(trunc.Injections)-1]
	if _, err := Merge([]*fault.Report{shards[0], &trunc}); err == nil ||
		!strings.Contains(err.Error(), "injections") {
		t.Errorf("Merge with truncated shard: %v", err)
	}
	// Sanity: the healthy path still recombines to the full run.
	merged, err := Merge([]*fault.Report{shards[0], shards[1]})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged.Injections, full.Injections) {
		t.Error("healthy merge no longer matches the unsharded run")
	}
}

// TestMergeOrder2ErrorPaths mirrors the error coverage for the order-2
// recombiner.
func TestMergeOrder2ErrorPaths(t *testing.T) {
	bin := buildMini(t)
	c := miniCampaign(bin, fault.ModelSkip)
	opt := Options{MaxPairs: 128}
	full, err := RunOrder2(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]*Order2Report, 2)
	for i := range shards {
		o := opt
		o.Shard = Shard{Index: i, Count: 2}
		if shards[i], err = RunOrder2(c, o); err != nil {
			t.Fatal(err)
		}
	}

	if _, err := MergeOrder2(nil); err == nil {
		t.Error("MergeOrder2(nil) succeeded")
	}
	if _, err := MergeOrder2([]*Order2Report{shards[0], nil}); err == nil || !strings.Contains(err.Error(), "nil") {
		t.Errorf("MergeOrder2 with nil shard: %v", err)
	}
	// Mismatched solo sweeps (different fault sets).
	foreign := &Order2Report{Solo: &fault.Report{
		GoodOracle: shards[0].Solo.GoodOracle,
		BadOracle:  shards[0].Solo.BadOracle,
		Injections: shards[0].Solo.Injections[:1],
	}}
	if _, err := MergeOrder2([]*Order2Report{shards[0], foreign}); err == nil || !strings.Contains(err.Error(), "not the same campaign") {
		t.Errorf("MergeOrder2 with foreign solo sweep: %v", err)
	}
	// Truncated pair list: caught by the size decomposition or, when
	// the sizes still happen to add up, by the tally integrity check.
	trunc := *shards[1]
	trunc.Pairs = trunc.Pairs[:len(trunc.Pairs)-1]
	if _, err := MergeOrder2([]*Order2Report{shards[0], &trunc}); err == nil ||
		!strings.Contains(err.Error(), "pair") {
		t.Errorf("MergeOrder2 with truncated shard: %v", err)
	}
	merged, err := MergeOrder2([]*Order2Report{shards[0], shards[1]})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged.Pairs, full.Pairs) {
		t.Error("healthy order-2 merge no longer matches the unsharded run")
	}
}

// TestStoreEviction: the in-memory LRU honors its cap, evicts coldest
// first, and keeps serving evicted entries from disk.
func TestStoreEviction(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStoreCapped(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	entry := func(key string) *Entry {
		return &Entry{Key: key, FaultsDigest: "fd-" + key, Limit: 7,
			Records: []Record{{Outcome: fault.OutcomeIgnored, Steps: 3}}}
	}
	for _, k := range []string{"a", "b", "c"} {
		if err := st.Save(entry(k)); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.MemEntries(); got != 2 {
		t.Fatalf("resident entries = %d, want 2", got)
	}
	// "a" was evicted but must come back from disk, bit-identical.
	got, ok := st.Lookup("a")
	if !ok {
		t.Fatal("evicted entry lost (disk should be the source of truth)")
	}
	want := entry("a")
	want.Schema = planSchema
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("disk round-trip of evicted entry drifted: %+v != %+v", got, want)
	}
	// The re-read displaced the coldest resident ("b"); "c" survived.
	if st.MemEntries() != 2 {
		t.Fatalf("resident entries = %d after re-read, want 2", st.MemEntries())
	}
	if _, ok := st.Lookup("c"); !ok {
		t.Fatal("recently used entry evicted out of order")
	}
}

// TestStoreEvictionLRUOrder: touching an entry via Lookup protects it
// from the next eviction.
func TestStoreEvictionLRUOrder(t *testing.T) {
	st, err := NewStoreCapped("", 2) // in-memory: eviction really discards
	if err != nil {
		t.Fatal(err)
	}
	save := func(key string) {
		if err := st.Save(&Entry{Key: key}); err != nil {
			t.Fatal(err)
		}
	}
	save("a")
	save("b")
	st.Lookup("a") // a is now hotter than b
	save("c")      // evicts b
	if _, ok := st.Lookup("a"); !ok {
		t.Error("touched entry evicted")
	}
	if _, ok := st.Lookup("b"); ok {
		t.Error("coldest entry survived over the touched one")
	}
}

// TestCappedStoreReplaysBitIdentically: a campaign run against a store
// whose cap forces every entry out of memory still replays warm runs
// bit-identically — the reads just come from disk.
func TestCappedStoreReplaysBitIdentically(t *testing.T) {
	bin := buildMini(t)
	c := miniCampaign(bin, fault.ModelSkip, fault.ModelBitFlip)
	dir := t.TempDir()
	tiny, err := NewStoreCapped(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := RunIncremental(c, Options{Store: tiny}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Churn the store so the campaign's entry is evicted from memory.
	for i := 0; i < 4; i++ {
		if err := tiny.Save(&Entry{Key: fmt.Sprintf("churn-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	warm, err := RunIncremental(c, Options{Store: tiny}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cache.Hits != 1 || warm.Cache.Misses != 0 {
		t.Fatalf("warm run against churned capped store: %+v, want a pure hit", warm.Cache)
	}
	for _, rep := range []*fault.Report{cold.Report, warm.Report} {
		if !reflect.DeepEqual(plain.Injections, rep.Injections) {
			t.Fatal("capped store run differs from the uncached run")
		}
	}
}

// TestNewStoreDefaults: disk-backed stores are capped by default;
// in-memory stores stay unbounded (their eviction would discard work).
func TestNewStoreDefaults(t *testing.T) {
	disk := newTestStore(t, t.TempDir())
	if disk.limit != DefaultMemEntries {
		t.Errorf("disk-backed default cap = %d, want %d", disk.limit, DefaultMemEntries)
	}
	mem := newTestStore(t, "")
	if mem.limit != 0 {
		t.Errorf("in-memory default cap = %d, want unbounded", mem.limit)
	}
}
