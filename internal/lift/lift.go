// Package lift translates x86-64 subset binaries into the compiler IR
// (paper §IV-C1): the "full translation" step of the Hybrid pipeline,
// playing the role Rev.ng plays in the paper.
//
// Machine state maps onto IR cells (16 GPRs as i64, the six arithmetic
// flags as i1), flag effects are materialized explicitly, and functions
// are recovered from the call graph (entry point plus every direct call
// target). Calls lift to IR calls — the virtual stack holds no return
// addresses — and RIP-relative addresses become constants, since data
// sections do not move during rewriting.
//
// Documented deviations from exact x86 semantics (none observable by
// the case-study programs):
//
//   - IMUL lifts CF/OF from an explicit high-part computation, but the
//     architecturally-undefined SF/ZF/PF after IMUL follow this
//     toolchain's deterministic emulator (set from the result).
//   - SYSCALL clobbers the rcx/r11 cells with zero rather than the
//     return RIP / RFLAGS.
package lift

import (
	"errors"
	"fmt"
	"sort"

	"github.com/r2r/reinforce/internal/decode"
	"github.com/r2r/reinforce/internal/elf"
	"github.com/r2r/reinforce/internal/ir"
	"github.com/r2r/reinforce/internal/isa"
)

// Lift errors.
var (
	ErrNoText     = errors.New("lift: no .text section")
	ErrBadCall    = errors.New("lift: call into the middle of a function")
	ErrSharedCode = errors.New("lift: block reachable from two functions")
	ErrUnsupInst  = errors.New("lift: unsupported instruction")
)

// Result is a lifted program: the IR module plus everything needed to
// rebuild a runnable binary after transformation.
type Result struct {
	Module *ir.Module

	// Data carries the original non-executable sections; their
	// addresses are part of the IR's constant pool.
	Data []*elf.Section

	// TextBase is the original code base (the lowering reuses it).
	TextBase uint64
}

// FlagCells lists the i1 flag cells in RFLAGS bit order.
var FlagCells = []struct {
	Name string
	Bit  uint64
}{
	{"cf", isa.FlagCF},
	{"pf", isa.FlagPF},
	{"af", isa.FlagAF},
	{"zf", isa.FlagZF},
	{"sf", isa.FlagSF},
	{"of", isa.FlagOF},
}

// RegCell returns the canonical cell name of a register.
func RegCell(r isa.Reg) string { return r.Name(8) }

// Lift translates a binary into an IR module.
func Lift(bin *elf.Binary) (*Result, error) {
	text := bin.Text()
	if text == nil {
		return nil, ErrNoText
	}

	// Decode the full text.
	insts := make(map[uint64]isa.Inst)
	order := []uint64{}
	for off := 0; off < len(text.Data); {
		in, err := decode.Decode(text.Data[off:], text.Addr+uint64(off))
		if err != nil {
			return nil, fmt.Errorf("lift: at %#x: %w", text.Addr+uint64(off), err)
		}
		insts[in.Addr] = in
		order = append(order, in.Addr)
		off += in.EncLen
	}
	next := make(map[uint64]uint64, len(order))
	for i, a := range order {
		if i+1 < len(order) {
			next[a] = order[i+1]
		}
	}

	// Function entries: program entry + call targets.
	entrySet := map[uint64]bool{bin.Entry: true}
	for _, a := range order {
		in := insts[a]
		if in.Op == isa.CALL {
			if _, ok := insts[in.Target]; !ok {
				return nil, fmt.Errorf("%w: call %#x -> %#x", ErrBadCall, a, in.Target)
			}
			entrySet[in.Target] = true
		}
	}
	entries := make([]uint64, 0, len(entrySet))
	for a := range entrySet {
		entries = append(entries, a)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i] < entries[j] })

	l := &lifter{
		bin:     bin,
		insts:   insts,
		next:    next,
		mod:     ir.NewModule(moduleName(bin)),
		owner:   make(map[uint64]uint64),
		funcOf:  make(map[uint64]*ir.Function),
		entries: entrySet,
	}
	l.registerCells()

	// Discover each function's blocks, then lift.
	for _, e := range entries {
		if err := l.discover(e); err != nil {
			return nil, err
		}
	}
	for _, e := range entries {
		if err := l.liftFunc(e); err != nil {
			return nil, err
		}
	}
	l.mod.EntryFunc = l.funcOf[bin.Entry].Name

	if err := ir.Verify(l.mod); err != nil {
		return nil, fmt.Errorf("lift: produced invalid IR: %w", err)
	}

	res := &Result{Module: l.mod, TextBase: text.Addr}
	for _, s := range bin.Sections {
		if s.Flags&elf.FlagExec == 0 {
			res.Data = append(res.Data, s)
		}
	}
	return res, nil
}

func moduleName(bin *elf.Binary) string {
	if name := bin.SymbolAt(bin.Entry); name != "" {
		return name
	}
	return "lifted"
}

type lifter struct {
	bin   *elf.Binary
	insts map[uint64]isa.Inst
	next  map[uint64]uint64
	mod   *ir.Module

	// owner maps an instruction address to its function entry.
	owner map[uint64]uint64
	// leaders per function entry.
	leaders map[uint64]map[uint64]bool
	funcOf  map[uint64]*ir.Function
	// entries marks function entry addresses; straight-line execution
	// that would fall into another function's entry is modeled as a
	// halt (it cannot happen dynamically in a well-formed program —
	// typically the predecessor is a never-returning exit syscall).
	entries map[uint64]bool
}

func (l *lifter) registerCells() {
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		l.mod.EnsureCell(RegCell(r), ir.I64)
	}
	for _, f := range FlagCells {
		l.mod.EnsureCell(f.Name, ir.I1)
	}
}

// discover walks a function's intraprocedural CFG collecting leaders and
// ownership.
func (l *lifter) discover(entry uint64) error {
	if l.leaders == nil {
		l.leaders = make(map[uint64]map[uint64]bool)
	}
	leaders := map[uint64]bool{entry: true}
	l.leaders[entry] = leaders

	work := []uint64{entry}
	seen := map[uint64]bool{}
	for len(work) > 0 {
		a := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[a] {
			continue
		}
		seen[a] = true
		if owner, ok := l.owner[a]; ok && owner != entry {
			return fmt.Errorf("%w: %#x owned by %#x and %#x", ErrSharedCode, a, owner, entry)
		}
		l.owner[a] = entry

		in, ok := l.insts[a]
		if !ok {
			return fmt.Errorf("lift: control reaches non-instruction %#x", a)
		}
		nx, hasNext := l.next[a]

		push := func(t uint64) {
			work = append(work, t)
		}
		// fallthrough successors stop at other functions' entries.
		fallTo := func(a uint64, leader bool) {
			if l.entries[a] && a != entry {
				return
			}
			if leader {
				leaders[a] = true
			}
			push(a)
		}
		switch in.Op {
		case isa.JMP:
			leaders[in.Target] = true
			push(in.Target)
		case isa.JCC:
			leaders[in.Target] = true
			push(in.Target)
			if hasNext {
				fallTo(nx, true)
			}
		case isa.CALL:
			// Call returns to the next instruction; the callee belongs
			// to another function.
			if hasNext {
				fallTo(nx, true)
			}
		case isa.RET, isa.HLT, isa.UD2:
			// terminal
		default:
			// Plain instructions — including syscall, whose exit form
			// never returns but is statically indistinguishable.
			if hasNext {
				fallTo(nx, false)
			}
		}
	}
	return nil
}

// blockName picks a stable name for a block address.
func (l *lifter) blockName(addr uint64) string {
	if name := l.bin.SymbolAt(addr); name != "" {
		return name
	}
	return fmt.Sprintf("L_%x", addr)
}

// funcName picks the function name.
func (l *lifter) funcName(entry uint64) string {
	if name := l.bin.SymbolAt(entry); name != "" {
		return name
	}
	return fmt.Sprintf("sub_%x", entry)
}

// liftFunc materializes one function's IR. All functions must already
// be discovered so calls can reference them; function objects are
// created lazily here in entry order.
func (l *lifter) liftFunc(entry uint64) error {
	f := l.ensureFunc(entry)
	leaders := l.leaders[entry]

	// Create blocks in address order for readable output.
	addrs := make([]uint64, 0, len(leaders))
	for a := range leaders {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	blocks := make(map[uint64]*ir.Block, len(addrs))
	for _, a := range addrs {
		if a == entry {
			blocks[a] = f.Entry()
			continue
		}
		blocks[a] = f.NewBlock(l.blockName(a))
	}

	for _, start := range addrs {
		b := ir.NewBuilder(blocks[start])
		a := start
		for {
			in, ok := l.insts[a]
			if !ok {
				return fmt.Errorf("lift: fell off text at %#x", a)
			}
			done, err := l.liftInst(b, f, in, blocks)
			if err != nil {
				return err
			}
			if done {
				break
			}
			nx, hasNext := l.next[a]
			if !hasNext || (l.entries[nx] && nx != entry) {
				// Falling off the end of text or into another
				// function's entry cannot happen dynamically (the
				// typical predecessor is an exit syscall); model the
				// impossible edge as a machine halt.
				b.Halt()
				break
			}
			if leaders[nx] {
				// Fall through into the next block.
				b.Jmp(blocks[nx])
				break
			}
			a = nx
		}
	}
	return nil
}

func (l *lifter) ensureFunc(entry uint64) *ir.Function {
	if f, ok := l.funcOf[entry]; ok {
		return f
	}
	f := l.mod.NewFunc(l.funcName(entry))
	f.NewBlock(l.blockName(entry))
	l.funcOf[entry] = f
	return f
}
