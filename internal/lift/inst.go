package lift

import (
	"fmt"

	"github.com/r2r/reinforce/internal/ir"
	"github.com/r2r/reinforce/internal/isa"
)

// widthType maps an operand width to an IR type.
func widthType(w uint8) ir.Type {
	switch w {
	case 1:
		return ir.I8
	case 4:
		return ir.I32
	default:
		return ir.I64
	}
}

// liftInst appends the IR for one machine instruction. It returns true
// when the instruction terminates its block.
func (l *lifter) liftInst(b *ir.Builder, f *ir.Function, in isa.Inst, blocks map[uint64]*ir.Block) (bool, error) {
	switch in.Op {
	case isa.MOV:
		v := l.readOp(b, in, in.Src)
		l.writeOp(b, in, in.Dst, v)

	case isa.MOVZX:
		v := l.readOp(b, in, in.Src) // i8
		l.writeReg(b, in.Dst, b.ZExt(v, widthType(in.Dst.Width)))

	case isa.MOVSX:
		v := l.readOp(b, in, in.Src)
		l.writeReg(b, in.Dst, b.SExt(v, widthType(in.Dst.Width)))

	case isa.LEA:
		l.writeReg(b, in.Dst, l.effAddr(b, in, in.Src.Mem))

	case isa.ADD, isa.ADC, isa.SUB, isa.SBB, isa.CMP, isa.AND, isa.OR, isa.XOR, isa.TEST:
		l.liftALU(b, in)

	case isa.NOT:
		v := l.readOp(b, in, in.Dst)
		l.writeOp(b, in, in.Dst, b.Not(v))

	case isa.NEG:
		l.liftNeg(b, in)

	case isa.INC, isa.DEC:
		l.liftIncDec(b, in)

	case isa.SHL, isa.SHR, isa.SAR:
		l.liftShift(b, in)

	case isa.IMUL:
		l.liftIMul(b, in)

	case isa.PUSH:
		l.push64(b, b.CellRead(RegCell(in.Dst.Reg)))

	case isa.POP:
		b.CellWrite(RegCell(in.Dst.Reg), l.pop64(b))

	case isa.PUSHFQ:
		l.push64(b, l.composeFlags(b))

	case isa.POPFQ:
		l.decomposeFlags(b, l.pop64(b))

	case isa.SETCC:
		v := b.ZExt(l.condValue(b, in.Cond), ir.I8)
		l.writeOp(b, in, in.Dst, v)

	case isa.SYSCALL:
		b.Syscall()
		// Deterministic clobbers (see package comment).
		b.CellWrite("rcx", ir.C64(0))
		b.CellWrite("r11", ir.C64(0))

	case isa.NOP:
		// nothing

	case isa.JMP:
		t, ok := blocks[in.Target]
		if !ok {
			return false, fmt.Errorf("lift: jmp %#x -> %#x leaves function", in.Addr, in.Target)
		}
		b.Jmp(t)
		return true, nil

	case isa.JCC:
		t, ok := blocks[in.Target]
		if !ok {
			return false, fmt.Errorf("lift: jcc %#x -> %#x leaves function", in.Addr, in.Target)
		}
		nx, ok := l.next[in.Addr]
		if !ok {
			return false, fmt.Errorf("lift: jcc at %#x has no fall-through", in.Addr)
		}
		ft, ok := blocks[nx]
		if !ok {
			return false, fmt.Errorf("lift: jcc fall-through %#x is not a leader", nx)
		}
		b.Br(l.condValue(b, in.Cond), t, ft)
		return true, nil

	case isa.CALL:
		callee := l.ensureFunc(in.Target)
		b.Call(callee)

	case isa.RET:
		b.Ret()
		return true, nil

	case isa.HLT, isa.UD2:
		b.Halt()
		return true, nil

	default:
		return false, fmt.Errorf("%w: %s at %#x", ErrUnsupInst, in.Mnemonic(), in.Addr)
	}
	return false, nil
}

// effAddr computes a memory operand's effective address as an i64 value.
func (l *lifter) effAddr(b *ir.Builder, in isa.Inst, m isa.Mem) ir.Value {
	if m.RIPRel {
		return ir.C64(in.Addr + uint64(in.EncLen) + uint64(int64(m.Disp)))
	}
	var v ir.Value
	if m.Base != isa.NoReg {
		v = b.CellRead(RegCell(m.Base))
	}
	if m.Index != isa.NoReg {
		idx := b.CellRead(RegCell(m.Index))
		if m.Scale > 1 {
			shift := uint64(0)
			for s := m.Scale; s > 1; s >>= 1 {
				shift++
			}
			idx = b.Bin(ir.Shl, idx, ir.C64(shift))
		}
		if v == nil {
			v = idx
		} else {
			v = b.Add(v, idx)
		}
	}
	disp := ir.C64(uint64(int64(m.Disp)))
	if v == nil {
		return disp
	}
	if m.Disp != 0 {
		v = b.Add(v, disp)
	}
	return v
}

// readOp loads an operand value at its width's IR type.
func (l *lifter) readOp(b *ir.Builder, in isa.Inst, op isa.Operand) ir.Value {
	ty := widthType(op.Width)
	switch op.Kind {
	case isa.KindReg:
		v := b.CellRead(RegCell(op.Reg))
		if ty != ir.I64 {
			return b.Trunc(v, ty)
		}
		return v
	case isa.KindImm:
		return &ir.Const{Ty: ty, Val: uint64(op.Imm) & ty.Mask()}
	case isa.KindMem:
		return b.Load(ty, l.effAddr(b, in, op.Mem))
	}
	panic("lift: empty operand")
}

// writeReg stores a value into a register cell with x86-64 width
// semantics (64-bit replace, 32-bit zero-extend, 8-bit merge).
func (l *lifter) writeReg(b *ir.Builder, op isa.Operand, v ir.Value) {
	cell := RegCell(op.Reg)
	switch op.Width {
	case 8:
		b.CellWrite(cell, v)
	case 4:
		b.CellWrite(cell, b.ZExt(v, ir.I64))
	case 1:
		old := b.CellRead(cell)
		masked := b.And(old, ir.C64(^uint64(0xFF)))
		b.CellWrite(cell, b.Or(masked, b.ZExt(v, ir.I64)))
	}
}

// writeOp stores a value to a register or memory operand.
func (l *lifter) writeOp(b *ir.Builder, in isa.Inst, op isa.Operand, v ir.Value) {
	switch op.Kind {
	case isa.KindReg:
		l.writeReg(b, op, v)
	case isa.KindMem:
		b.Store(v, l.effAddr(b, in, op.Mem))
	default:
		panic("lift: write to bad operand")
	}
}

// push64 lifts a stack push of an i64 value.
func (l *lifter) push64(b *ir.Builder, v ir.Value) {
	sp := b.Sub(b.CellRead("rsp"), ir.C64(8))
	b.CellWrite("rsp", sp)
	b.Store(v, sp)
}

// pop64 lifts a stack pop.
func (l *lifter) pop64(b *ir.Builder) ir.Value {
	sp := b.CellRead("rsp")
	v := b.Load(ir.I64, sp)
	b.CellWrite("rsp", b.Add(sp, ir.C64(8)))
	return v
}

// setSZP writes the sign/zero/parity flags from a result.
func (l *lifter) setSZP(b *ir.Builder, r ir.Value) {
	ty := r.Type()
	zero := &ir.Const{Ty: ty, Val: 0}
	b.CellWrite("zf", b.ICmp(ir.EQ, r, zero))
	b.CellWrite("sf", b.ICmp(ir.SLT, r, zero))
	// Parity of the low byte: fold bits with xor.
	lowByte := r
	if ty != ir.I8 {
		lowByte = b.Trunc(r, ir.I8)
	}
	p := b.Xor(lowByte, b.Bin(ir.LShr, lowByte, ir.C8(4)))
	p = b.Xor(p, b.Bin(ir.LShr, p, ir.C8(2)))
	p = b.Xor(p, b.Bin(ir.LShr, p, ir.C8(1)))
	one := b.And(p, ir.C8(1))
	b.CellWrite("pf", b.ICmp(ir.EQ, one, ir.C8(0)))
}

// setAF writes the adjust flag from operands and result.
func (l *lifter) setAF(b *ir.Builder, a, x, r ir.Value) {
	ty := r.Type()
	t := b.Xor(b.Xor(a, x), r)
	bit := b.And(t, &ir.Const{Ty: ty, Val: 0x10})
	b.CellWrite("af", b.ICmp(ir.NE, bit, &ir.Const{Ty: ty, Val: 0}))
}

// liftALU lifts the two-operand ALU group (including CMP/TEST).
func (l *lifter) liftALU(b *ir.Builder, in isa.Inst) {
	a := l.readOp(b, in, in.Dst)
	x := l.readOp(b, in, in.Src)
	ty := a.Type()
	zero := &ir.Const{Ty: ty, Val: 0}

	var r ir.Value
	switch in.Op {
	case isa.ADD, isa.ADC:
		var cext ir.Value = &ir.Const{Ty: ty, Val: 0}
		if in.Op == isa.ADC {
			cext = b.ZExt(b.CellRead("cf"), ty)
		}
		t := b.Add(a, x)
		c1 := b.ICmp(ir.ULT, t, a)
		r = b.Add(t, cext)
		c2 := b.ICmp(ir.ULT, r, t)
		b.CellWrite("cf", b.Or(c1, c2))
		// OF: sign of (~(a^x) & (a^r)).
		t2 := b.And(b.Not(b.Xor(a, x)), b.Xor(a, r))
		b.CellWrite("of", b.ICmp(ir.SLT, t2, zero))
		l.setAF(b, a, x, r)
		l.setSZP(b, r)

	case isa.SUB, isa.SBB, isa.CMP:
		var bext ir.Value = &ir.Const{Ty: ty, Val: 0}
		if in.Op == isa.SBB {
			bext = b.ZExt(b.CellRead("cf"), ty)
		}
		t := b.Sub(a, x)
		b1 := b.ICmp(ir.ULT, a, x)
		r = b.Sub(t, bext)
		b2 := b.ICmp(ir.ULT, t, bext)
		b.CellWrite("cf", b.Or(b1, b2))
		// OF: sign of ((a^x) & (a^r)).
		t2 := b.And(b.Xor(a, x), b.Xor(a, r))
		b.CellWrite("of", b.ICmp(ir.SLT, t2, zero))
		l.setAF(b, a, x, r)
		l.setSZP(b, r)

	case isa.AND, isa.OR, isa.XOR, isa.TEST:
		switch in.Op {
		case isa.AND, isa.TEST:
			r = b.And(a, x)
		case isa.OR:
			r = b.Or(a, x)
		case isa.XOR:
			r = b.Xor(a, x)
		}
		b.CellWrite("cf", ir.C1(false))
		b.CellWrite("of", ir.C1(false))
		b.CellWrite("af", ir.C1(false))
		l.setSZP(b, r)
	}

	if in.Op != isa.CMP && in.Op != isa.TEST {
		l.writeOp(b, in, in.Dst, r)
	}
}

func (l *lifter) liftNeg(b *ir.Builder, in isa.Inst) {
	v := l.readOp(b, in, in.Dst)
	ty := v.Type()
	zero := &ir.Const{Ty: ty, Val: 0}
	r := b.Sub(zero, v)
	b.CellWrite("cf", b.ICmp(ir.NE, v, zero))
	t2 := b.And(b.Xor(zero, v), b.Xor(zero, r))
	b.CellWrite("of", b.ICmp(ir.SLT, t2, zero))
	l.setAF(b, zero, v, r)
	l.setSZP(b, r)
	l.writeOp(b, in, in.Dst, r)
}

func (l *lifter) liftIncDec(b *ir.Builder, in isa.Inst) {
	v := l.readOp(b, in, in.Dst)
	ty := v.Type()
	one := &ir.Const{Ty: ty, Val: 1}
	var r ir.Value
	if in.Op == isa.INC {
		r = b.Add(v, one)
		// OF iff result is exactly the minimum negative value.
		b.CellWrite("of", b.ICmp(ir.EQ, r, &ir.Const{Ty: ty, Val: 1 << (ty.Bits() - 1)}))
	} else {
		r = b.Sub(v, one)
		b.CellWrite("of", b.ICmp(ir.EQ, v, &ir.Const{Ty: ty, Val: 1 << (ty.Bits() - 1)}))
	}
	l.setAF(b, v, one, r)
	l.setSZP(b, r)
	l.writeOp(b, in, in.Dst, r)
}

func (l *lifter) liftShift(b *ir.Builder, in isa.Inst) {
	count := uint64(in.Src.Imm) & 0x3F
	if count == 0 {
		return // no value or flag change
	}
	v := l.readOp(b, in, in.Dst)
	ty := v.Type()
	bits := uint64(ty.Bits())
	cnt := &ir.Const{Ty: ty, Val: count}
	zero := &ir.Const{Ty: ty, Val: 0}

	var r, cf ir.Value
	switch in.Op {
	case isa.SHL:
		r = b.Bin(ir.Shl, v, cnt)
		if count <= bits {
			bit := b.And(v, &ir.Const{Ty: ty, Val: 1 << (bits - count)})
			cf = b.ICmp(ir.NE, bit, zero)
		} else {
			cf = ir.C1(false)
		}
		if count == 1 {
			sign := b.ICmp(ir.SLT, r, zero)
			b.CellWrite("of", b.Xor(sign, cf))
		} else {
			b.CellWrite("of", ir.C1(false))
		}
	case isa.SHR:
		r = b.Bin(ir.LShr, v, cnt)
		if count <= bits {
			bit := b.And(v, &ir.Const{Ty: ty, Val: 1 << (count - 1)})
			cf = b.ICmp(ir.NE, bit, zero)
		} else {
			cf = ir.C1(false)
		}
		if count == 1 {
			b.CellWrite("of", b.ICmp(ir.SLT, v, zero))
		} else {
			b.CellWrite("of", ir.C1(false))
		}
	case isa.SAR:
		r = b.Bin(ir.AShr, v, cnt)
		sh := count - 1
		if sh >= bits {
			sh = bits - 1
		}
		bit := b.Bin(ir.AShr, v, &ir.Const{Ty: ty, Val: sh})
		cf = b.ICmp(ir.NE, b.And(bit, &ir.Const{Ty: ty, Val: 1}), zero)
		b.CellWrite("of", ir.C1(false))
	}
	b.CellWrite("cf", cf)
	b.CellWrite("af", ir.C1(false))
	l.setSZP(b, r)
	l.writeOp(b, in, in.Dst, r)
}

// liftIMul lifts the two-operand signed multiply with an exact CF/OF
// computation via 32x32 partial products.
func (l *lifter) liftIMul(b *ir.Builder, in isa.Inst) {
	a := l.readOp(b, in, in.Dst)
	x := l.readOp(b, in, in.Src)
	ty := a.Type()
	r := b.Mul(a, x)

	var overflow ir.Value
	if ty == ir.I64 {
		// Unsigned high 64 bits via 32-bit limbs.
		mask32 := ir.C64(0xFFFFFFFF)
		c32 := ir.C64(32)
		aL := b.And(a, mask32)
		aH := b.Bin(ir.LShr, a, c32)
		xL := b.And(x, mask32)
		xH := b.Bin(ir.LShr, x, c32)
		t1 := b.Mul(aL, xL)
		t2 := b.Mul(aL, xH)
		t3 := b.Mul(aH, xL)
		t4 := b.Mul(aH, xH)
		mid := b.Add(b.Add(b.Bin(ir.LShr, t1, c32), b.And(t2, mask32)), b.And(t3, mask32))
		uhi := b.Add(b.Add(t4, b.Bin(ir.LShr, t2, c32)),
			b.Add(b.Bin(ir.LShr, t3, c32), b.Bin(ir.LShr, mid, c32)))
		// Signed high: subtract x when a<0 and a when x<0.
		zero := ir.C64(0)
		aNeg := b.ICmp(ir.SLT, a, zero)
		xNeg := b.ICmp(ir.SLT, x, zero)
		hi := b.Sub(uhi, b.Select(aNeg, x, zero))
		hi = b.Sub(hi, b.Select(xNeg, a, zero))
		// Product fits iff hi == sign-extension of the low half.
		signFill := b.Bin(ir.AShr, r, ir.C64(63))
		overflow = b.ICmp(ir.NE, hi, signFill)
	} else {
		// Narrow widths: widen, multiply, compare round trip.
		wa := b.SExt(a, ir.I64)
		wx := b.SExt(x, ir.I64)
		wr := b.Mul(wa, wx)
		back := b.SExt(r, ir.I64)
		overflow = b.ICmp(ir.NE, wr, back)
	}
	b.CellWrite("cf", overflow)
	b.CellWrite("of", overflow)
	b.CellWrite("af", ir.C1(false))
	l.setSZP(b, r)
	l.writeReg(b, in.Dst, r)
}

// composeFlags builds the RFLAGS image PUSHFQ stores.
func (l *lifter) composeFlags(b *ir.Builder) ir.Value {
	v := ir.Value(ir.C64(isa.FlagsFixed))
	for _, fc := range FlagCells {
		bit := b.ZExt(b.CellRead(fc.Name), ir.I64)
		shift := uint64(0)
		for m := fc.Bit; m > 1; m >>= 1 {
			shift++
		}
		if shift > 0 {
			bit = b.Bin(ir.Shl, bit, ir.C64(shift))
		}
		v = b.Or(v, bit)
	}
	return v
}

// decomposeFlags splits an RFLAGS image into the flag cells (POPFQ).
func (l *lifter) decomposeFlags(b *ir.Builder, v ir.Value) {
	for _, fc := range FlagCells {
		bit := b.And(v, ir.C64(fc.Bit))
		b.CellWrite(fc.Name, b.ICmp(ir.NE, bit, ir.C64(0)))
	}
}

// condValue materializes a condition code as an i1 from the flag cells.
func (l *lifter) condValue(b *ir.Builder, c isa.Cond) ir.Value {
	cf := func() ir.Value { return b.CellRead("cf") }
	zf := func() ir.Value { return b.CellRead("zf") }
	sf := func() ir.Value { return b.CellRead("sf") }
	of := func() ir.Value { return b.CellRead("of") }
	pf := func() ir.Value { return b.CellRead("pf") }
	not := func(v ir.Value) ir.Value { return b.Xor(v, ir.C1(true)) }

	switch c {
	case isa.CondO:
		return of()
	case isa.CondNO:
		return not(of())
	case isa.CondB:
		return cf()
	case isa.CondAE:
		return not(cf())
	case isa.CondE:
		return zf()
	case isa.CondNE:
		return not(zf())
	case isa.CondBE:
		return b.Or(cf(), zf())
	case isa.CondA:
		return not(b.Or(cf(), zf()))
	case isa.CondS:
		return sf()
	case isa.CondNS:
		return not(sf())
	case isa.CondP:
		return pf()
	case isa.CondNP:
		return not(pf())
	case isa.CondL:
		return b.Xor(sf(), of())
	case isa.CondGE:
		return not(b.Xor(sf(), of()))
	case isa.CondLE:
		return b.Or(zf(), b.Xor(sf(), of()))
	case isa.CondG:
		return not(b.Or(zf(), b.Xor(sf(), of())))
	}
	panic(fmt.Sprintf("lift: bad condition %d", c))
}
