package lift

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/r2r/reinforce/internal/asm"
	"github.com/r2r/reinforce/internal/elf"
	"github.com/r2r/reinforce/internal/emu"
	"github.com/r2r/reinforce/internal/ir"
)

func build(t *testing.T, src string) *elf.Binary {
	t.Helper()
	bin, err := asm.Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

// diffTest runs a program on the machine emulator and its lifted IR on
// the reference interpreter and requires identical observable behaviour.
func diffTest(t *testing.T, src string, inputs ...[]byte) {
	t.Helper()
	bin := build(t, src)
	res, err := Lift(bin)
	if err != nil {
		t.Fatalf("lift: %v", err)
	}
	if len(inputs) == 0 {
		inputs = [][]byte{nil}
	}
	for _, input := range inputs {
		mres, merr := emu.New(bin, emu.Config{Stdin: input}).Run()
		ires, ierr := ir.Exec(res.Module, ir.ExecConfig{Stdin: input, Sections: res.Data})
		if (merr == nil) != (ierr == nil) {
			t.Fatalf("input %q: machine err %v, ir err %v", input, merr, ierr)
		}
		if merr != nil {
			continue
		}
		if mres.ExitCode != ires.ExitCode {
			t.Errorf("input %q: exit %d (machine) vs %d (ir)\n%s",
				input, mres.ExitCode, ires.ExitCode, res.Module)
		}
		if string(mres.Stdout) != string(ires.Stdout) {
			t.Errorf("input %q: stdout %q vs %q", input, mres.Stdout, ires.Stdout)
		}
	}
}

const pincheckSrc = `
.text
_start:
	mov rax, 0
	mov rdi, 0
	lea rsi, [rip+buf]
	mov rdx, 8
	syscall
	mov rax, [rip+buf]
	mov rbx, [rip+pin]
	cmp rax, rbx
	jne deny
grant:
	mov rax, 1
	mov rdi, 1
	lea rsi, [rip+ok]
	mov rdx, 8
	syscall
	mov rax, 60
	mov rdi, 0
	syscall
deny:
	mov rax, 1
	mov rdi, 1
	lea rsi, [rip+no]
	mov rdx, 7
	syscall
	mov rax, 60
	mov rdi, 1
	syscall
.rodata
pin: .ascii "1234ABCD"
ok:  .ascii "GRANTED\n"
no:  .ascii "DENIED\n"
.bss
buf: .zero 8
`

func TestLiftPincheckStructure(t *testing.T) {
	res, err := Lift(build(t, pincheckSrc))
	if err != nil {
		t.Fatal(err)
	}
	m := res.Module
	if m.EntryFunc != "_start" {
		t.Errorf("entry func = %q", m.EntryFunc)
	}
	f := m.Func("_start")
	if f == nil {
		t.Fatal("_start missing")
	}
	for _, want := range []string{"_start", "grant", "deny"} {
		if f.Block(want) == nil {
			t.Errorf("block %q missing:\n%s", want, f)
		}
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	// The printout should contain a conditional branch on the zero flag.
	s := m.String()
	for _, want := range []string{"cellread i1 @zf", "br ", "label %deny", "syscall"} {
		if !strings.Contains(s, want) {
			t.Errorf("module missing %q", want)
		}
	}
}

func TestDiffPincheck(t *testing.T) {
	diffTest(t, pincheckSrc,
		[]byte("1234ABCD"), []byte("00000000"), []byte(""), []byte("1234ABC"))
}

func TestDiffArithmetic(t *testing.T) {
	diffTest(t, `
.text
_start:
	mov rax, 1000
	add rax, 234
	sub rax, 34
	imul rax, rax
	shr rax, 9
	and rax, 0xff
	mov rdi, rax
	mov rax, 60
	syscall
`)
}

func TestDiffLoopAndConds(t *testing.T) {
	// Exercises jcc on several conditions plus setcc.
	diffTest(t, `
.text
_start:
	xor rax, rax
	mov rcx, 37
loop:
	add rax, rcx
	dec rcx
	jne loop
	cmp rax, 700
	setg bl
	seta cl
	setle dl
	movzx rdi, bl
	movzx rsi, cl
	add rdi, rsi
	movzx rsi, dl
	add rdi, rsi
	mov rax, 60
	syscall
`)
}

func TestDiffStackOps(t *testing.T) {
	diffTest(t, `
.text
_start:
	mov rbx, 111
	push rbx
	mov rbx, 0
	pop rbx
	cmp rbx, 111
	jne bad
	cmp rbx, 111
	pushfq
	cmp rbx, 0
	popfq
	jne bad
	mov rdi, 0
	mov rax, 60
	syscall
bad:
	mov rdi, 1
	mov rax, 60
	syscall
`)
}

func TestDiffCalls(t *testing.T) {
	diffTest(t, `
.text
_start:
	mov rdi, 10
	call square
	call square
	mov rdi, rax
	cmp rax, 10000
	je fine
	mov rdi, 99
fine:
	mov rax, 60
	syscall
square:
	mov rax, rdi
	imul rax, rax
	mov rdi, rax
	ret
`)
}

func TestDiffByteOps(t *testing.T) {
	diffTest(t, `
.text
_start:
	mov rax, 0
	mov rdi, 0
	lea rsi, [rip+buf]
	mov rdx, 2
	syscall
	movzx rax, byte ptr [rip+buf]
	movsx rbx, byte ptr [rip+buf+1]
	add rax, rbx
	and rax, 0x7f
	mov rdi, rax
	mov rax, 60
	syscall
.bss
buf: .zero 2
`, []byte{10, 20}, []byte{0xFF, 0x80}, []byte{0, 0})
}

func TestDiffShiftsAndFlags(t *testing.T) {
	diffTest(t, `
.text
_start:
	mov rax, 0x8000000000000000
	shl rax, 1
	setc bl          ; CF from the shifted-out bit
	mov rax, 3
	shr rax, 1
	setc cl
	mov rax, -16
	sar rax, 2
	cmp rax, -4
	sete dl
	movzx rdi, bl
	movzx rsi, cl
	add rdi, rsi
	movzx rsi, dl
	add rdi, rsi
	mov rax, 60
	syscall
`)
}

func TestDiffNegNotIncDec(t *testing.T) {
	diffTest(t, `
.text
_start:
	mov rax, 5
	neg rax
	not rax
	inc rax
	inc rax
	dec rax
	cmp rax, 5
	jne bad
	mov rdi, 0
	mov rax, 60
	syscall
bad:
	mov rdi, 1
	mov rax, 60
	syscall
`)
}

func TestDiffMemoryWrites(t *testing.T) {
	diffTest(t, `
.text
_start:
	lea rbx, [rip+slots]
	mov qword ptr [rbx], 17
	mov rcx, 1
	mov qword ptr [rbx+rcx*8], 25
	mov rax, [rbx]
	add rax, [rbx+8]
	mov rdi, rax
	mov rax, 60
	syscall
.data
slots: .zero 16
`)
}

// TestDiffRandomPrograms lifts randomly generated (structured)
// arithmetic programs and checks behavioural equivalence.
func TestDiffRandomPrograms(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	regs := []string{"rax", "rbx", "rcx", "rdx", "rsi", "r8", "r9", "r10"}
	ops := []string{"add", "sub", "and", "or", "xor", "imul"}
	for trial := 0; trial < 30; trial++ {
		var sb strings.Builder
		sb.WriteString(".text\n_start:\n")
		for i, reg := range regs {
			fmt.Fprintf(&sb, "\tmov %s, %d\n", reg, r.Intn(1<<16)-1<<15+i)
		}
		n := 10 + r.Intn(20)
		for i := 0; i < n; i++ {
			op := ops[r.Intn(len(ops))]
			a := regs[r.Intn(len(regs))]
			bReg := regs[r.Intn(len(regs))]
			switch r.Intn(3) {
			case 0:
				fmt.Fprintf(&sb, "\t%s %s, %s\n", op, a, bReg)
			case 1:
				if op == "imul" { // imul reg, imm is outside the subset
					op = "add"
				}
				fmt.Fprintf(&sb, "\t%s %s, %d\n", op, a, r.Intn(1<<12))
			case 2:
				sh := []string{"shl", "shr", "sar"}[r.Intn(3)]
				fmt.Fprintf(&sb, "\t%s %s, %d\n", sh, a, 1+r.Intn(8))
			}
		}
		// Derive the exit code from the state so divergence is visible.
		sb.WriteString("\txor rdi, rdi\n")
		for _, reg := range regs {
			fmt.Fprintf(&sb, "\txor rdi, %s\n", reg)
		}
		sb.WriteString("\tand rdi, 0xff\n\tmov rax, 60\n\tsyscall\n")
		diffTest(t, sb.String())
	}
}

// TestDiffRandomBranchPrograms adds data-dependent branches.
func TestDiffRandomBranchPrograms(t *testing.T) {
	r := rand.New(rand.NewSource(88))
	conds := []string{"e", "ne", "l", "g", "le", "ge", "a", "b", "ae", "be", "s", "ns"}
	for trial := 0; trial < 30; trial++ {
		cond := conds[r.Intn(len(conds))]
		threshold := r.Intn(256)
		src := fmt.Sprintf(`
.text
_start:
	mov rax, 0
	mov rdi, 0
	lea rsi, [rip+buf]
	mov rdx, 1
	syscall
	movzx rax, byte ptr [rip+buf]
	cmp rax, %d
	j%s taken
	mov rdi, 1
	mov rax, 60
	syscall
taken:
	mov rdi, 2
	mov rax, 60
	syscall
.bss
buf: .zero 1
`, threshold, cond)
		inputs := [][]byte{{0}, {byte(threshold)}, {byte(threshold + 1)}, {byte(r.Intn(256))}, {255}}
		diffTest(t, src, inputs...)
	}
}

func TestLiftRejectsIndirectControlFlow(t *testing.T) {
	// A binary whose call target is not an instruction boundary.
	bin := &elf.Binary{
		Entry: 0x401000,
		Sections: []*elf.Section{{
			Name: ".text", Addr: 0x401000,
			// call +1 (into the middle of itself), then ret
			Data:  []byte{0xE8, 0xFC, 0xFF, 0xFF, 0xFF, 0xC3},
			Flags: elf.FlagRead | elf.FlagExec,
		}},
	}
	if _, err := Lift(bin); !errors.Is(err, ErrBadCall) {
		t.Errorf("err = %v, want ErrBadCall", err)
	}
}

func TestLiftNoText(t *testing.T) {
	if _, err := Lift(&elf.Binary{}); !errors.Is(err, ErrNoText) {
		t.Errorf("err = %v, want ErrNoText", err)
	}
}

func TestLiftFunctionRecovery(t *testing.T) {
	res, err := Lift(build(t, `
.text
_start:
	call helper
	call helper2
	mov rax, 60
	mov rdi, 0
	syscall
helper:
	nop
	ret
helper2:
	nop
	ret
`))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Module.Funcs) != 3 {
		t.Fatalf("functions = %d, want 3:\n%s", len(res.Module.Funcs), res.Module)
	}
	for _, name := range []string{"_start", "helper", "helper2"} {
		if res.Module.Func(name) == nil {
			t.Errorf("function %q missing", name)
		}
	}
}

func TestLiftDataCarried(t *testing.T) {
	res, err := Lift(build(t, pincheckSrc))
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, s := range res.Data {
		names[s.Name] = true
	}
	if !names[".rodata"] || !names[".bss"] {
		t.Errorf("data sections missing: %v", names)
	}
	if res.TextBase != 0x401000 {
		t.Errorf("text base = %#x", res.TextBase)
	}
}
