package asm

import (
	"strings"
	"testing"

	"github.com/r2r/reinforce/internal/decode"
	"github.com/r2r/reinforce/internal/elf"
	"github.com/r2r/reinforce/internal/isa"
)

// disasmText decodes the .text section into rendered instructions.
func disasmText(t *testing.T, bin *elf.Binary) []isa.Inst {
	t.Helper()
	text := bin.Text()
	if text == nil {
		t.Fatal("no .text section")
	}
	var out []isa.Inst
	for off := 0; off < len(text.Data); {
		in, err := decode.Decode(text.Data[off:], text.Addr+uint64(off))
		if err != nil {
			t.Fatalf("decode at +%#x: %v", off, err)
		}
		out = append(out, in)
		off += in.EncLen
	}
	return out
}

func TestAssembleBasic(t *testing.T) {
	src := `
.text
.global _start
_start:
	mov rax, 60
	mov rdi, 7
	syscall
`
	bin, err := Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	insts := disasmText(t, bin)
	want := []string{"mov rax, 60", "mov rdi, 7", "syscall"}
	if len(insts) != len(want) {
		t.Fatalf("got %d instructions, want %d", len(insts), len(want))
	}
	for i, w := range want {
		if insts[i].String() != w {
			t.Errorf("inst %d = %q, want %q", i, insts[i].String(), w)
		}
	}
	if bin.Entry != bin.Sections[0].Addr {
		t.Errorf("entry %#x, want start of .text %#x", bin.Entry, bin.Sections[0].Addr)
	}
}

func TestBranchesForwardBackward(t *testing.T) {
	src := `
.text
_start:
top:
	dec rax
	jne top
	jmp done
	hlt
done:
	ret
`
	bin, err := Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	insts := disasmText(t, bin)
	// insts: dec rax; jne top; jmp done; hlt; ret
	topAddr, _ := bin.SymbolAddr("top")
	doneAddr, _ := bin.SymbolAddr("done")
	if insts[1].Target != topAddr {
		t.Errorf("jne target = %#x, want %#x", insts[1].Target, topAddr)
	}
	if insts[2].Target != doneAddr {
		t.Errorf("jmp target = %#x, want %#x", insts[2].Target, doneAddr)
	}
}

func TestRIPRelativeData(t *testing.T) {
	src := `
.text
_start:
	mov rax, [rip+value]
	lea rsi, [rip+value]
	mov rbx, [rip+value+8]
	ret
.data
value: .quad 0x1122334455667788
second: .quad 42
`
	bin, err := Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	insts := disasmText(t, bin)
	valAddr, _ := bin.SymbolAddr("value")
	for i, wantTarget := range []uint64{valAddr, valAddr, valAddr + 8} {
		in := insts[i]
		mo := in.MemOperand()
		if mo == nil || !mo.Mem.RIPRel {
			t.Fatalf("inst %d: expected rip-relative operand, got %v", i, in)
		}
		got := in.Addr + uint64(in.EncLen) + uint64(int64(mo.Mem.Disp))
		if got != wantTarget {
			t.Errorf("inst %d: rip target = %#x, want %#x", i, got, wantTarget)
		}
	}
	// Check data bytes landed.
	data := bin.Section(".data")
	if data == nil || len(data.Data) != 16 {
		t.Fatalf("bad .data: %+v", data)
	}
	if data.Data[0] != 0x88 || data.Data[7] != 0x11 {
		t.Errorf(".data quad wrong: % X", data.Data[:8])
	}
}

func TestSymbolImmediate(t *testing.T) {
	src := `
.text
_start:
	mov rsi, buf
	mov rdx, buflen
	ret
.data
buf: .zero 16
buflen = 16
`
	bin, err := Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	insts := disasmText(t, bin)
	bufAddr, _ := bin.SymbolAddr("buf")
	if uint64(insts[0].Src.Imm) != bufAddr {
		t.Errorf("mov rsi, buf = %#x, want %#x", insts[0].Src.Imm, bufAddr)
	}
	if insts[1].Src.Imm != 16 {
		t.Errorf("mov rdx, buflen = %d, want 16", insts[1].Src.Imm)
	}
}

func TestEquLocationCounter(t *testing.T) {
	src := `
.text
_start:
	ret
.rodata
msg: .ascii "hello, world\n"
.equ msg_len, . - msg
.data
x: .quad msg_len
`
	bin, err := Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	data := bin.Section(".data")
	if data.Data[0] != 13 {
		t.Errorf("msg_len = %d, want 13", data.Data[0])
	}
}

func TestQuadSymbolRef(t *testing.T) {
	src := `
.text
_start:
	ret
.data
table: .quad _start
       .quad table+8
`
	bin, err := Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	data := bin.Section(".data").Data
	start, _ := bin.SymbolAddr("_start")
	tbl, _ := bin.SymbolAddr("table")
	if got := le64(data[0:]); got != start {
		t.Errorf("table[0] = %#x, want %#x", got, start)
	}
	if got := le64(data[8:]); got != tbl+8 {
		t.Errorf("table[1] = %#x, want %#x", got, tbl+8)
	}
}

func le64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func TestBytePtrAndWidths(t *testing.T) {
	src := `
.text
_start:
	cmp byte ptr [rcx+4], 1
	mov byte ptr [rax], 0
	mov cl, 5
	cmp cl, 0
	movzx rax, cl
	setg dl
	ret
`
	bin, err := Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	insts := disasmText(t, bin)
	want := []string{
		"cmp byte ptr [rcx+4], 1",
		"mov byte ptr [rax], 0",
		"mov cl, 5",
		"cmp cl, 0",
		"movzx rax, cl",
		"setg dl",
		"ret",
	}
	for i, w := range want {
		if insts[i].String() != w {
			t.Errorf("inst %d = %q, want %q", i, insts[i].String(), w)
		}
	}
}

func TestSIBOperands(t *testing.T) {
	src := `
.text
_start:
	mov rax, [rbx+rcx*8]
	mov rdx, [rbx+rcx*8+16]
	mov rsi, [rsp]
	mov rdi, [rbp-8]
	lea rsp, [rsp-128]
	ret
`
	bin, err := Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	insts := disasmText(t, bin)
	want := []string{
		"mov rax, qword ptr [rbx+rcx*8]",
		"mov rdx, qword ptr [rbx+rcx*8+16]",
		"mov rsi, qword ptr [rsp]",
		"mov rdi, qword ptr [rbp-8]",
		"lea rsp, qword ptr [rsp-128]",
		"ret",
	}
	for i, w := range want {
		if insts[i].String() != w {
			t.Errorf("inst %d = %q, want %q", i, insts[i].String(), w)
		}
	}
}

func TestBSS(t *testing.T) {
	src := `
.text
_start:
	ret
.bss
buf: .zero 4096
`
	bin, err := Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	bss := bin.Section(".bss")
	if bss == nil || bss.Size() != 4096 || len(bss.Data) != 0 {
		t.Fatalf("bss = %+v", bss)
	}
}

func TestAlign(t *testing.T) {
	src := `
.text
_start:
	ret
.align 16
after:
	nop
`
	bin, err := Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	after, _ := bin.SymbolAddr("after")
	if after%16 != 0 {
		t.Errorf("after = %#x, not 16-aligned", after)
	}
	// Alignment padding in .text must be NOPs, not zeros.
	text := bin.Text()
	if text.Data[1] != 0x90 {
		t.Errorf("padding byte = %#x, want nop", text.Data[1])
	}
}

func TestComments(t *testing.T) {
	src := `
.text
; full line comment
# hash comment
_start:           // trailing comment styles
	mov rax, 1  ; semicolon
	mov rdi, 2  # hash
	syscall     // slashes
.rodata
s: .ascii "a;b#c//d"  ; punctuation inside strings survives
`
	bin, err := Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(bin.Section(".rodata").Data); got != "a;b#c//d" {
		t.Errorf("string = %q", got)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown mnemonic", ".text\n_start:\n\tfrobnicate rax\n", "unknown mnemonic"},
		{"undefined symbol", ".text\n_start:\n\tjmp nowhere\n", "undefined symbol"},
		{"redefined label", ".text\n_start:\na:\na:\n\tret\n", "redefined"},
		{"no entry", ".text\nfoo:\n\tret\n", "entry symbol"},
		{"bad directive", ".text\n_start:\nret\n.bogus 4\n", "unknown directive"},
		{"two symbols", ".text\n_start:\n\tmov rax, a\n\tret\n.data\na: .quad b\nb: .quad 0\n", ""},
		{"mem without rip", ".text\n_start:\n\tmov rax, [value]\n\tret\n.data\nvalue: .quad 0\n", "requires rip"},
		{"bad string", ".text\n_start:\nret\n.rodata\ns: .ascii hello\n", "bad string"},
		{"nonzero bss", ".text\n_start:\nret\n.bss\nb: .byte 7\n", "non-zero data in .bss"},
		{"size conflict", ".text\n_start:\n\tmov byte ptr rax, 1\n\tret\n", "conflicts"},
	}
	for _, tc := range cases {
		_, err := Assemble(tc.src, nil)
		if tc.wantSub == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantSub)
		}
	}
}

func TestErrorsHaveLineNumbers(t *testing.T) {
	_, err := Assemble(".text\n_start:\n\tret\n\tbadop rax\n", nil)
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Errorf("err = %v, want line 4 reference", err)
	}
}

func TestRoundTripThroughELF(t *testing.T) {
	src := `
.text
_start:
	mov rax, 1
	mov rdi, 1
	lea rsi, [rip+msg]
	mov rdx, msg_len
	syscall
	mov rax, 60
	xor rdi, rdi
	syscall
.rodata
msg: .ascii "hello\n"
.equ msg_len, . - msg
`
	bin, err := Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	img, err := bin.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	back, err := elf.Parse(img)
	if err != nil {
		t.Fatal(err)
	}
	if back.Entry != bin.Entry {
		t.Errorf("entry mismatch after ELF round trip")
	}
	if string(back.Section(".rodata").Data) != "hello\n" {
		t.Errorf("rodata mismatch")
	}
	// All original instructions decode identically.
	a := disasmText(t, bin)
	b := disasmText(t, back)
	if len(a) != len(b) {
		t.Fatalf("inst count %d != %d", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Errorf("inst %d: %q != %q", i, a[i].String(), b[i].String())
		}
	}
}

func TestMultipleLabelsSameLine(t *testing.T) {
	src := ".text\n_start: top:\n\tjmp top\n"
	bin, err := Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := bin.SymbolAddr("_start")
	tp, _ := bin.SymbolAddr("top")
	if s != tp {
		t.Errorf("_start %#x != top %#x", s, tp)
	}
}
