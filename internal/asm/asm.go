// Package asm is a two-pass assembler for the x86-64 subset, producing
// static ELF64 executables. It exists so the case-study programs
// (pincheck, secure bootloader) and the lowered output of the Hybrid
// pipeline can be built entirely inside this repository, with full
// control over layout and symbols.
//
// Syntax is Intel-flavoured:
//
//	; comment (also # and //)
//	.text
//	.global _start
//	_start:
//	        mov rax, 0          ; immediates: dec, 0x hex, 'c' chars
//	        lea rsi, [rip+buf]  ; RIP-relative symbol reference
//	        mov rdx, msg_len    ; bare symbol in imm position = its value
//	        cmp byte ptr [rcx+4], 1
//	        jne deny
//	.data
//	buf:    .zero 8
//	msg:    .ascii "hello\n"
//	.equ msg_len, . - msg       ; '.' is the current location counter
//	buflen = 16                 ; alternative constant syntax
//
// Directives: .text .rodata .data .bss .global/.globl .byte .quad .ascii
// .asciz .zero .align .equ.
//
// Branches always assemble to rel32 and RIP-relative references to
// disp32, so pass-1 layout is immediately stable.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/r2r/reinforce/internal/elf"
	"github.com/r2r/reinforce/internal/encode"
	"github.com/r2r/reinforce/internal/isa"
)

// Options control section placement and entry symbol.
type Options struct {
	TextBase   uint64
	RodataBase uint64
	DataBase   uint64
	BSSBase    uint64
	Entry      string // entry symbol, default "_start"
}

// DefaultOptions returns the standard memory layout used across the
// toolchain. Section bases are far apart so hardened .text can grow
// considerably without colliding with data.
func DefaultOptions() *Options {
	return &Options{
		TextBase:   0x401000,
		RodataBase: 0x500000,
		DataBase:   0x600000,
		BSSBase:    0x700000,
		Entry:      "_start",
	}
}

// fixupKind describes how a symbol reference patches an instruction.
type fixupKind uint8

const (
	fixNone   fixupKind = iota
	fixImm              // Dst or Src immediate = symbol value (+addend)
	fixBranch           // branch rel32 = target - end of instruction
	fixRIP              // memory disp32 = target - end of instruction
)

// symRef is an unresolved symbol reference with an addend.
type symRef struct {
	name   string
	addend int64
}

// item is one assembled unit: an instruction or a data blob.
type item struct {
	line int

	// Instruction items.
	inst     isa.Inst
	isInst   bool
	fix      fixupKind
	fixInSrc bool // immediate fixup applies to Src (not Dst)
	ref      symRef

	// Data items.
	data []byte

	// Layout (both kinds).
	addr uint64
	size int
}

type section struct {
	name  string
	base  uint64
	items []*item
	pc    uint64 // running offset during parse
	flags uint32
	bss   bool
}

type assembler struct {
	opts     *Options
	sections map[string]*section
	order    []string
	cur      *section
	symbols  map[string]*symbol
	globals  map[string]bool
	equs     []equ
}

type symbol struct {
	section *section
	offset  uint64
	value   int64 // for .equ
	isEqu   bool
	defined bool
}

type equ struct {
	name string
	expr string
	line int
	sec  *section
	pc   uint64 // location counter at the .equ site (for '.')
}

// Assemble assembles source into a static ELF binary.
func Assemble(src string, opts *Options) (*elf.Binary, error) {
	if opts == nil {
		opts = DefaultOptions()
	}
	if opts.Entry == "" {
		opts.Entry = "_start"
	}
	a := &assembler{
		opts:     opts,
		sections: make(map[string]*section),
		symbols:  make(map[string]*symbol),
		globals:  make(map[string]bool),
	}
	a.sections[".text"] = &section{name: ".text", base: opts.TextBase, flags: elf.FlagRead | elf.FlagExec}
	a.sections[".rodata"] = &section{name: ".rodata", base: opts.RodataBase, flags: elf.FlagRead}
	a.sections[".data"] = &section{name: ".data", base: opts.DataBase, flags: elf.FlagRead | elf.FlagWrite}
	a.sections[".bss"] = &section{name: ".bss", base: opts.BSSBase, flags: elf.FlagRead | elf.FlagWrite, bss: true}
	a.order = []string{".text", ".rodata", ".data", ".bss"}
	a.cur = a.sections[".text"]

	if err := a.parse(src); err != nil {
		return nil, err
	}
	if err := a.resolveEqus(); err != nil {
		return nil, err
	}
	return a.emit()
}

// MustAssemble assembles a source known to be valid (used by embedded
// case studies and templates).
func MustAssemble(src string, opts *Options) *elf.Binary {
	b, err := Assemble(src, opts)
	if err != nil {
		panic("asm: " + err.Error())
	}
	return b
}

func (a *assembler) errf(line int, format string, args ...any) error {
	return fmt.Errorf("asm: line %d: %s", line, fmt.Sprintf(format, args...))
}

func (a *assembler) parse(src string) error {
	lines := strings.Split(src, "\n")
	for i, raw := range lines {
		lineNo := i + 1
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels: "name:" prefixes, possibly several.
		for {
			idx := labelEnd(line)
			if idx < 0 {
				break
			}
			name := strings.TrimSpace(line[:idx])
			if !validIdent(name) {
				return a.errf(lineNo, "invalid label %q", name)
			}
			if err := a.defineLabel(name, lineNo); err != nil {
				return err
			}
			line = strings.TrimSpace(line[idx+1:])
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}
		// ".equ"-style alternative syntax: name = expr.
		if eq := strings.Index(line, "="); eq > 0 {
			if name := strings.TrimSpace(line[:eq]); validIdent(name) {
				a.addEqu(name, strings.TrimSpace(line[eq+1:]), lineNo)
				continue
			}
		}
		if strings.HasPrefix(line, ".") {
			if err := a.directive(line, lineNo); err != nil {
				return err
			}
			continue
		}
		if err := a.instruction(line, lineNo); err != nil {
			return err
		}
	}
	return nil
}

func stripComment(line string) string {
	// Respect string literals when searching for comment starts.
	inStr := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		if inStr {
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
			continue
		}
		switch {
		case c == '"':
			inStr = true
		case c == ';' || c == '#':
			return line[:i]
		case c == '/' && i+1 < len(line) && line[i+1] == '/':
			return line[:i]
		}
	}
	return line
}

// labelEnd returns the index of a label-terminating ':' at the start of
// the line, or -1.
func labelEnd(line string) int {
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case c == ':':
			return i
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '.':
			// keep scanning
		default:
			return -1
		}
	}
	return -1
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (a *assembler) defineLabel(name string, line int) error {
	if s, ok := a.symbols[name]; ok && s.defined {
		return a.errf(line, "label %q redefined", name)
	}
	a.symbols[name] = &symbol{section: a.cur, offset: a.cur.pc, defined: true}
	return nil
}

func (a *assembler) addEqu(name, expr string, line int) {
	a.symbols[name] = &symbol{isEqu: true, defined: true}
	a.equs = append(a.equs, equ{name: name, expr: expr, line: line, sec: a.cur, pc: a.cur.pc})
}

func (a *assembler) directive(line string, lineNo int) error {
	fields := strings.SplitN(line, " ", 2)
	dir := fields[0]
	rest := ""
	if len(fields) > 1 {
		rest = strings.TrimSpace(fields[1])
	}
	switch dir {
	case ".text", ".rodata", ".data", ".bss":
		a.cur = a.sections[dir]
		return nil
	case ".global", ".globl":
		for _, n := range splitOperands(rest) {
			a.globals[strings.TrimSpace(n)] = true
		}
		return nil
	case ".byte":
		return a.dataDirective(rest, 1, lineNo)
	case ".quad":
		return a.dataDirective(rest, 8, lineNo)
	case ".ascii", ".asciz":
		s, err := parseString(rest)
		if err != nil {
			return a.errf(lineNo, "%v", err)
		}
		if dir == ".asciz" {
			s = append(s, 0)
		}
		a.addData(s, lineNo)
		return nil
	case ".zero":
		n, err := parseNumber(rest)
		if err != nil || n < 0 || n > 1<<24 {
			return a.errf(lineNo, "bad .zero size %q", rest)
		}
		a.addData(make([]byte, n), lineNo)
		return nil
	case ".align":
		n, err := parseNumber(rest)
		if err != nil || n <= 0 || n&(n-1) != 0 {
			return a.errf(lineNo, "bad .align %q", rest)
		}
		pad := (uint64(n) - a.cur.pc%uint64(n)) % uint64(n)
		if a.cur.name == ".text" {
			nops := make([]byte, pad)
			for i := range nops {
				nops[i] = 0x90
			}
			a.addData(nops, lineNo)
		} else {
			a.addData(make([]byte, pad), lineNo)
		}
		return nil
	case ".equ":
		parts := strings.SplitN(rest, ",", 2)
		if len(parts) != 2 {
			return a.errf(lineNo, ".equ wants name, expression")
		}
		name := strings.TrimSpace(parts[0])
		if !validIdent(name) {
			return a.errf(lineNo, "invalid .equ name %q", name)
		}
		a.addEqu(name, strings.TrimSpace(parts[1]), lineNo)
		return nil
	}
	return a.errf(lineNo, "unknown directive %q", dir)
}

func (a *assembler) dataDirective(rest string, width int, lineNo int) error {
	for _, f := range splitOperands(rest) {
		f = strings.TrimSpace(f)
		// Symbol reference in .quad: emit a fixup-like deferred value.
		if width == 8 && !isNumberStart(f) {
			it := &item{line: lineNo, data: make([]byte, 8)}
			name, addend, err := parseSymExpr(f)
			if err != nil {
				return a.errf(lineNo, "%v", err)
			}
			it.ref = symRef{name: name, addend: addend}
			it.fix = fixImm // reuse: patch 8 data bytes with symbol value
			a.push(it, 8)
			continue
		}
		v, err := parseNumber(f)
		if err != nil {
			return a.errf(lineNo, "bad value %q", f)
		}
		buf := make([]byte, width)
		for i := 0; i < width; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		a.addData(buf, lineNo)
	}
	return nil
}

func (a *assembler) addData(b []byte, lineNo int) {
	a.push(&item{line: lineNo, data: b}, len(b))
}

func (a *assembler) push(it *item, size int) {
	it.size = size
	a.cur.items = append(a.cur.items, it)
	a.cur.pc += uint64(size)
}

// placeholderAddr stands in for unresolved symbol values during pass-1
// sizing. All real addresses in our layout fit in int32, and so does
// this, so instruction lengths are stable across passes.
const placeholderAddr = 0x400000

func (a *assembler) instruction(line string, lineNo int) error {
	mnem, rest := splitMnemonic(line)
	it := &item{line: lineNo, isInst: true}

	in, fix, ref, err := a.parseInst(mnem, rest, lineNo)
	if err != nil {
		return err
	}
	it.inst = in
	it.fix = fix.kind
	it.fixInSrc = fix.inSrc
	it.ref = ref

	// Pass-1 sizing with placeholder values.
	sized := it.inst
	switch it.fix {
	case fixImm:
		if it.fixInSrc {
			sized.Src.Imm = placeholderAddr + it.ref.addend
		} else {
			sized.Dst.Imm = placeholderAddr + it.ref.addend
		}
	case fixBranch:
		sized.Dst.Imm = 0
	case fixRIP:
		// disp32 always; nothing to adjust for sizing
	}
	n, err := encode.Len(sized)
	if err != nil {
		return a.errf(lineNo, "%q: %v", line, err)
	}
	a.push(it, n)
	return nil
}

func splitMnemonic(line string) (string, string) {
	i := strings.IndexAny(line, " \t")
	if i < 0 {
		return strings.ToLower(line), ""
	}
	return strings.ToLower(line[:i]), strings.TrimSpace(line[i+1:])
}

// fixupSpec pairs a fixup kind with its operand position.
type fixupSpec struct {
	kind  fixupKind
	inSrc bool
}

var mnemonics = map[string]isa.Op{
	"mov": isa.MOV, "movzx": isa.MOVZX, "movsx": isa.MOVSX, "lea": isa.LEA,
	"add": isa.ADD, "or": isa.OR, "adc": isa.ADC, "sbb": isa.SBB,
	"and": isa.AND, "sub": isa.SUB, "xor": isa.XOR, "cmp": isa.CMP,
	"test": isa.TEST, "not": isa.NOT, "neg": isa.NEG, "inc": isa.INC,
	"dec": isa.DEC, "shl": isa.SHL, "shr": isa.SHR, "sar": isa.SAR,
	"imul": isa.IMUL, "push": isa.PUSH, "pop": isa.POP,
	"pushfq": isa.PUSHFQ, "popfq": isa.POPFQ, "jmp": isa.JMP,
	"call": isa.CALL, "ret": isa.RET, "syscall": isa.SYSCALL,
	"nop": isa.NOP, "hlt": isa.HLT, "ud2": isa.UD2,
}

func (a *assembler) parseInst(mnem, rest string, lineNo int) (isa.Inst, fixupSpec, symRef, error) {
	var none fixupSpec
	var noref symRef

	// Conditional families first: jCC / setCC.
	if strings.HasPrefix(mnem, "j") && mnem != "jmp" {
		cond, ok := isa.CondByName(mnem[1:])
		if !ok {
			return isa.Inst{}, none, noref, a.errf(lineNo, "unknown mnemonic %q", mnem)
		}
		name, addend, err := parseSymExpr(rest)
		if err != nil {
			return isa.Inst{}, none, noref, a.errf(lineNo, "branch target: %v", err)
		}
		return isa.NewJcc(cond, 0), fixupSpec{kind: fixBranch}, symRef{name, addend}, nil
	}
	if strings.HasPrefix(mnem, "set") {
		cond, ok := isa.CondByName(mnem[3:])
		if !ok {
			return isa.Inst{}, none, noref, a.errf(lineNo, "unknown mnemonic %q", mnem)
		}
		op, _, err := a.parseOperand(rest, 1, lineNo)
		if err != nil {
			return isa.Inst{}, none, noref, err
		}
		in := isa.Inst{Op: isa.SETCC, Cond: cond, Dst: op}
		return in, none, noref, nil
	}

	op, ok := mnemonics[mnem]
	if !ok {
		return isa.Inst{}, none, noref, a.errf(lineNo, "unknown mnemonic %q", mnem)
	}

	if op.IsBranch() { // jmp / call with a label target
		name, addend, err := parseSymExpr(rest)
		if err != nil {
			return isa.Inst{}, none, noref, a.errf(lineNo, "branch target: %v", err)
		}
		return isa.NewInst(op, isa.Imm(0)), fixupSpec{kind: fixBranch}, symRef{name, addend}, nil
	}

	operands := splitOperands(rest)
	switch len(operands) {
	case 0:
		return isa.NewInst(op), none, noref, nil
	case 1:
		o, ref, err := a.parseOperand(operands[0], 8, lineNo)
		if err != nil {
			return isa.Inst{}, none, noref, err
		}
		in := isa.NewInst(op, o)
		if ref.name != "" {
			kind := fixImm
			if o.Kind == isa.KindMem {
				kind = fixRIP
			}
			return in, fixupSpec{kind: kind}, ref, nil
		}
		return in, none, noref, nil
	case 2:
		// Parse dst first to establish default width for src.
		dst, dref, err := a.parseOperand(operands[0], 8, lineNo)
		if err != nil {
			return isa.Inst{}, none, noref, err
		}
		defWidth := uint8(8)
		if dst.Kind == isa.KindReg || (dst.Kind == isa.KindMem && dst.Width != 0) {
			defWidth = dst.Width
		}
		src, sref, err := a.parseOperand(operands[1], defWidth, lineNo)
		if err != nil {
			return isa.Inst{}, none, noref, err
		}
		// Back-propagate width from a register src to an unsized dst mem.
		if dst.Kind == isa.KindMem && src.Kind == isa.KindReg {
			dst.Width = src.Width
		}
		// movzx/movsx: source is byte-sized.
		if op == isa.MOVZX || op == isa.MOVSX {
			src.Width = 1
		}
		in := isa.NewInst(op, dst, src)
		if dref.name != "" && sref.name != "" {
			return isa.Inst{}, none, noref, a.errf(lineNo, "two symbol references in one instruction")
		}
		if dref.name != "" {
			kind := fixImm
			if dst.Kind == isa.KindMem {
				kind = fixRIP
			}
			return in, fixupSpec{kind: kind}, dref, nil
		}
		if sref.name != "" {
			kind := fixImm
			inSrc := true
			if src.Kind == isa.KindMem {
				kind = fixRIP
			}
			return in, fixupSpec{kind: kind, inSrc: inSrc}, sref, nil
		}
		return in, none, noref, nil
	}
	return isa.Inst{}, none, noref, a.errf(lineNo, "too many operands")
}

// splitOperands splits on top-level commas (commas inside [] or strings
// do not split).
func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var out []string
	depth := 0
	start := 0
	inStr := false
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
		case c == '"':
			inStr = true
		case c == '[':
			depth++
		case c == ']':
			depth--
		case c == ',' && depth == 0:
			out = append(out, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

// parseOperand parses a register, immediate, memory operand or symbol
// immediate. defWidth applies to memory operands without a size prefix
// and symbol immediates.
func (a *assembler) parseOperand(s string, defWidth uint8, lineNo int) (isa.Operand, symRef, error) {
	s = strings.TrimSpace(s)
	var noref symRef

	// Size prefixes.
	width := uint8(0)
	lower := strings.ToLower(s)
	for _, p := range []struct {
		prefix string
		w      uint8
	}{
		{"byte ptr ", 1}, {"dword ptr ", 4}, {"qword ptr ", 8},
		{"byte ", 1}, {"dword ", 4}, {"qword ", 8},
	} {
		if strings.HasPrefix(lower, p.prefix) {
			width = p.w
			s = strings.TrimSpace(s[len(p.prefix):])
			break
		}
	}

	if s == "" {
		return isa.Operand{}, noref, a.errf(lineNo, "empty operand")
	}

	// Register.
	if r, w, ok := isa.RegByName(strings.ToLower(s)); ok {
		if width != 0 && width != w {
			return isa.Operand{}, noref, a.errf(lineNo, "size prefix conflicts with register %s", s)
		}
		return isa.Operand{Kind: isa.KindReg, Width: w, Reg: r}, noref, nil
	}

	// Memory.
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return isa.Operand{}, noref, a.errf(lineNo, "unterminated memory operand %q", s)
		}
		if width == 0 {
			width = defWidth
		}
		m, ref, err := a.parseMem(s[1:len(s)-1], lineNo)
		if err != nil {
			return isa.Operand{}, noref, err
		}
		return isa.Operand{Kind: isa.KindMem, Width: width, Mem: m}, ref, nil
	}

	// Numeric immediate.
	if isNumberStart(s) {
		v, err := parseNumber(s)
		if err != nil {
			return isa.Operand{}, noref, a.errf(lineNo, "bad immediate %q", s)
		}
		w := defWidth
		if width != 0 {
			w = width
		}
		return isa.Operand{Kind: isa.KindImm, Width: w, Imm: v}, noref, nil
	}

	// Symbol immediate (address or .equ value).
	name, addend, err := parseSymExpr(s)
	if err != nil {
		return isa.Operand{}, noref, a.errf(lineNo, "%v", err)
	}
	w := defWidth
	if width != 0 {
		w = width
	}
	return isa.Operand{Kind: isa.KindImm, Width: w}, symRef{name, addend}, nil
}

// parseMem parses the inside of a bracketed memory operand.
func (a *assembler) parseMem(s string, lineNo int) (isa.Mem, symRef, error) {
	m := isa.Mem{Base: isa.NoReg, Index: isa.NoReg, Scale: 1}
	var ref symRef
	terms, err := splitTerms(s)
	if err != nil {
		return m, ref, a.errf(lineNo, "%v", err)
	}
	for _, t := range terms {
		body := strings.TrimSpace(t.body)
		lower := strings.ToLower(body)
		switch {
		case lower == "rip":
			if t.neg {
				return m, ref, a.errf(lineNo, "negative rip term")
			}
			m.RIPRel = true
		case strings.Contains(body, "*"):
			parts := strings.SplitN(body, "*", 2)
			rn, w, ok := isa.RegByName(strings.ToLower(strings.TrimSpace(parts[0])))
			if !ok || w != 8 {
				return m, ref, a.errf(lineNo, "bad index register in %q", body)
			}
			sc, err := parseNumber(strings.TrimSpace(parts[1]))
			if err != nil {
				return m, ref, a.errf(lineNo, "bad scale in %q", body)
			}
			if t.neg {
				return m, ref, a.errf(lineNo, "negative index term")
			}
			m.Index = rn
			m.Scale = uint8(sc)
		case isNumberStart(body):
			v, err := parseNumber(body)
			if err != nil {
				return m, ref, a.errf(lineNo, "bad displacement %q", body)
			}
			if t.neg {
				v = -v
			}
			m.Disp += int32(v)
		default:
			if rn, w, ok := isa.RegByName(lower); ok {
				if w != 8 {
					return m, ref, a.errf(lineNo, "memory base must be 64-bit: %q", body)
				}
				if t.neg {
					return m, ref, a.errf(lineNo, "negative base register")
				}
				if m.Base == isa.NoReg {
					m.Base = rn
				} else if m.Index == isa.NoReg {
					m.Index = rn
					m.Scale = 1
				} else {
					return m, ref, a.errf(lineNo, "too many registers in %q", s)
				}
				continue
			}
			// Symbol displacement.
			if ref.name != "" {
				return m, ref, a.errf(lineNo, "multiple symbols in memory operand")
			}
			if t.neg {
				return m, ref, a.errf(lineNo, "negative symbol term")
			}
			if !validIdent(body) {
				return m, ref, a.errf(lineNo, "bad memory term %q", body)
			}
			ref.name = body
		}
	}
	if ref.name != "" {
		if !m.RIPRel {
			return m, ref, a.errf(lineNo, "symbol memory reference requires rip: [rip+%s]", ref.name)
		}
		ref.addend = int64(m.Disp)
		m.Disp = 0
	}
	return m, ref, nil
}

type term struct {
	body string
	neg  bool
}

func splitTerms(s string) ([]term, error) {
	var out []term
	neg := false
	start := 0
	flush := func(end int) {
		body := strings.TrimSpace(s[start:end])
		if body != "" {
			out = append(out, term{body: body, neg: neg})
		}
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '+':
			flush(i)
			neg = false
			start = i + 1
		case '-':
			// A '-' can be a sign inside a displacement term start.
			if strings.TrimSpace(s[start:i]) == "" {
				continue
			}
			flush(i)
			neg = true
			start = i + 1
		}
	}
	flush(len(s))
	// Handle leading '-' of the first term.
	for i := range out {
		if strings.HasPrefix(out[i].body, "-") {
			out[i].body = out[i].body[1:]
			out[i].neg = !out[i].neg
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty memory operand")
	}
	return out, nil
}

// parseString parses a quoted string literal with \n \t \0 \\ \" escapes.
func parseString(s string) ([]byte, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return nil, fmt.Errorf("bad string literal %q", s)
	}
	body := s[1 : len(s)-1]
	var out []byte
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			out = append(out, c)
			continue
		}
		i++
		if i >= len(body) {
			return nil, fmt.Errorf("trailing backslash in string")
		}
		switch body[i] {
		case 'n':
			out = append(out, '\n')
		case 't':
			out = append(out, '\t')
		case '0':
			out = append(out, 0)
		case '\\':
			out = append(out, '\\')
		case '"':
			out = append(out, '"')
		default:
			return nil, fmt.Errorf("unknown escape \\%c", body[i])
		}
	}
	return out, nil
}

func isNumberStart(s string) bool {
	if s == "" {
		return false
	}
	c := s[0]
	return c >= '0' && c <= '9' || c == '-' || c == '\''
}

func parseNumber(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if len(s) >= 3 && s[0] == '\'' && s[len(s)-1] == '\'' {
		body := s[1 : len(s)-1]
		if body == "\\n" {
			return '\n', nil
		}
		if body == "\\t" {
			return '\t', nil
		}
		if body == "\\0" {
			return 0, nil
		}
		if len(body) == 1 {
			return int64(body[0]), nil
		}
		return 0, fmt.Errorf("bad char literal %s", s)
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		// Accept full-range unsigned literals like 0x8000000000000000.
		if u, uerr := strconv.ParseUint(s, 0, 64); uerr == nil {
			return int64(u), nil
		}
	}
	return v, err
}

// parseSymExpr parses "sym", "sym+n", "sym-n", or ". - sym" (location
// minus label, handled by resolveEqus), returning name and addend. The
// special name "." refers to the current location counter.
func parseSymExpr(s string) (string, int64, error) {
	s = strings.TrimSpace(s)
	for i := 1; i < len(s); i++ {
		if s[i] == '+' || s[i] == '-' {
			name := strings.TrimSpace(s[:i])
			if !validIdent(name) {
				return "", 0, fmt.Errorf("bad symbol %q", name)
			}
			v, err := parseNumber(s[i+1:])
			if err != nil {
				return "", 0, fmt.Errorf("bad addend in %q", s)
			}
			if s[i] == '-' {
				v = -v
			}
			return name, v, nil
		}
	}
	if !validIdent(s) {
		return "", 0, fmt.Errorf("bad symbol %q", s)
	}
	return s, 0, nil
}

// resolveEqus computes .equ values after layout is known. Supports
// integer literals, "a - b" label differences, and ". - label".
func (a *assembler) resolveEqus() error {
	for _, e := range a.equs {
		v, err := a.evalEqu(e)
		if err != nil {
			return err
		}
		a.symbols[e.name].value = v
	}
	return nil
}

func (a *assembler) evalEqu(e equ) (int64, error) {
	expr := strings.TrimSpace(e.expr)
	if isNumberStart(expr) {
		return parseNumber(expr)
	}
	// a - b or . - b
	if i := strings.LastIndex(expr, "-"); i > 0 {
		lhs := strings.TrimSpace(expr[:i])
		rhs := strings.TrimSpace(expr[i+1:])
		lv, err := a.termValue(lhs, e)
		if err != nil {
			return 0, a.errf(e.line, "%v", err)
		}
		rv, err := a.termValue(rhs, e)
		if err != nil {
			return 0, a.errf(e.line, "%v", err)
		}
		return lv - rv, nil
	}
	v, err := a.termValue(expr, e)
	if err != nil {
		return 0, a.errf(e.line, "%v", err)
	}
	return v, nil
}

func (a *assembler) termValue(name string, e equ) (int64, error) {
	if name == "." {
		return int64(e.sec.base + e.pc), nil
	}
	if isNumberStart(name) {
		return parseNumber(name)
	}
	sym, ok := a.symbols[name]
	if !ok || !sym.defined {
		return 0, fmt.Errorf("undefined symbol %q in .equ", name)
	}
	if sym.isEqu {
		return sym.value, nil
	}
	return int64(sym.section.base + sym.offset), nil
}

// symValue resolves any symbol to its final numeric value.
func (a *assembler) symValue(name string, line int) (int64, error) {
	sym, ok := a.symbols[name]
	if !ok || !sym.defined {
		return 0, a.errf(line, "undefined symbol %q", name)
	}
	if sym.isEqu {
		return sym.value, nil
	}
	return int64(sym.section.base + sym.offset), nil
}

// emit runs pass 2: resolve fixups, encode, build the ELF binary.
func (a *assembler) emit() (*elf.Binary, error) {
	bin := &elf.Binary{}

	for _, name := range a.order {
		sec := a.sections[name]
		if len(sec.items) == 0 {
			continue
		}
		// Assign addresses.
		pc := sec.base
		for _, it := range sec.items {
			it.addr = pc
			pc += uint64(it.size)
		}
		var data []byte
		for _, it := range sec.items {
			if !it.isInst {
				blob := it.data
				if it.fix == fixImm && it.ref.name != "" { // .quad symbol
					v, err := a.symValue(it.ref.name, it.line)
					if err != nil {
						return nil, err
					}
					v += it.ref.addend
					blob = make([]byte, 8)
					for i := 0; i < 8; i++ {
						blob[i] = byte(uint64(v) >> (8 * i))
					}
				}
				data = append(data, blob...)
				continue
			}
			in := it.inst
			switch it.fix {
			case fixImm:
				v, err := a.symValue(it.ref.name, it.line)
				if err != nil {
					return nil, err
				}
				if it.fixInSrc {
					in.Src.Imm = v + it.ref.addend
				} else {
					in.Dst.Imm = v + it.ref.addend
				}
			case fixBranch:
				v, err := a.symValue(it.ref.name, it.line)
				if err != nil {
					return nil, err
				}
				end := int64(it.addr) + int64(it.size)
				in.Dst.Imm = v + it.ref.addend - end
			case fixRIP:
				v, err := a.symValue(it.ref.name, it.line)
				if err != nil {
					return nil, err
				}
				end := int64(it.addr) + int64(it.size)
				mo := in.MemOperand()
				if mo == nil {
					return nil, a.errf(it.line, "internal: rip fixup without memory operand")
				}
				mo.Mem.Disp = int32(v + it.ref.addend - end)
			}
			b, err := encode.Encode(in)
			if err != nil {
				return nil, a.errf(it.line, "%v", err)
			}
			if len(b) != it.size {
				return nil, a.errf(it.line, "internal: size changed between passes (%d -> %d)", it.size, len(b))
			}
			data = append(data, b...)
		}
		s := &elf.Section{Name: sec.name, Addr: sec.base, Flags: sec.flags}
		if sec.bss {
			s.MemSize = uint64(len(data))
			// BSS data must be all zero.
			for _, b := range data {
				if b != 0 {
					return nil, fmt.Errorf("asm: non-zero data in .bss")
				}
			}
		} else {
			s.Data = data
		}
		bin.Sections = append(bin.Sections, s)
	}

	// Symbols.
	for name, sym := range a.symbols {
		if sym.isEqu {
			continue
		}
		bin.Symbols = append(bin.Symbols, elf.Symbol{
			Name: name,
			Addr: sym.section.base + sym.offset,
			Func: sym.section.name == ".text",
		})
	}
	sortSymbols(bin.Symbols)

	entry, ok := bin.SymbolAddr(a.opts.Entry)
	if !ok {
		return nil, fmt.Errorf("asm: entry symbol %q not defined", a.opts.Entry)
	}
	bin.Entry = entry

	if err := bin.Validate(); err != nil {
		return nil, fmt.Errorf("asm: %w", err)
	}
	return bin, nil
}

func sortSymbols(syms []elf.Symbol) {
	// Sort by address then name for deterministic output.
	for i := 1; i < len(syms); i++ {
		for j := i; j > 0; j-- {
			a, b := syms[j-1], syms[j]
			if a.Addr < b.Addr || (a.Addr == b.Addr && a.Name <= b.Name) {
				break
			}
			syms[j-1], syms[j] = b, a
		}
	}
}
