package experiments

import (
	"testing"

	"github.com/r2r/reinforce/internal/campaign"
	"github.com/r2r/reinforce/internal/cases"
	"github.com/r2r/reinforce/internal/fault"
)

// TestTableBeyond2 enforces the shape of the order-2 hardening
// evaluation — the tentpole claim of the multi-fault countermeasures:
//
//   - the order-1 Faulter+Patcher baseline retains a nonzero pair (and
//     multi-skip) surface on pincheck — the gap being closed;
//   - both order-2 pipelines (f+p order2, hybrid+skipwindow) drive
//     pair successes to zero on every case, and multi-skip successes
//     to zero as well;
//   - the naive blanket-duplication baseline falls to the sustained
//     skip window (an instruction and its duplicate skipped together);
//   - order-2 protection costs more than its order-1 counterpart.
func TestTableBeyond2(t *testing.T) {
	if testing.Short() {
		t.Skip("runs order-2 pipelines and campaigns on every variant; run without -short")
	}
	tab, data, err := TableBeyond2()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab)
	if len(data) != 10 {
		t.Fatalf("rows = %d, want 2 cases x 5 pipelines", len(data))
	}
	byKey := map[string]Beyond2Data{}
	for _, d := range data {
		byKey[d.Case+"/"+d.Pipeline] = d
		if d.Pairs == 0 || d.MultiSkipInj == 0 {
			t.Errorf("%s/%s: empty sweep (%d pairs, %d multi-skip)", d.Case, d.Pipeline, d.Pairs, d.MultiSkipInj)
		}
		switch d.Pipeline {
		case "f+p order2", "hybrid+skipwindow":
			if d.PairSuccess != 0 {
				t.Errorf("%s/%s: %d successful pairs remain", d.Case, d.Pipeline, d.PairSuccess)
			}
			if d.MultiSkipSuccess != 0 {
				t.Errorf("%s/%s: %d multi-skip successes remain", d.Case, d.Pipeline, d.MultiSkipSuccess)
			}
		}
	}
	// The motivating residual: single-fault F+P hardening leaves an
	// order-2 pair and a sustained-window success on pincheck.
	if d := byKey["pincheck/f+p"]; d.PairSuccess == 0 && d.MultiSkipSuccess == 0 {
		t.Error("pincheck/f+p: no residual multi-fault surface; the order-2 stage has nothing to close")
	}
	// Naive blanket duplication falls to the wide glitch.
	for _, c := range []string{"pincheck", "bootloader"} {
		if d := byKey[c+"/dup-ir (naive)"]; d.MultiSkipSuccess == 0 {
			t.Errorf("%s/dup-ir: naive duplication shows no multi-skip surface", c)
		}
	}
	// Order-2 protection is not free.
	for _, c := range []string{"pincheck", "bootloader"} {
		if byKey[c+"/f+p order2"].OverheadPct <= byKey[c+"/f+p"].OverheadPct {
			t.Errorf("%s: f+p order2 overhead not above order-1 f+p", c)
		}
		if byKey[c+"/hybrid+skipwindow"].OverheadPct <= byKey[c+"/hybrid"].OverheadPct {
			t.Errorf("%s: hybrid+skipwindow overhead not above hybrid", c)
		}
	}
}

// TestBeyond2Determinism: the order-2 campaign on the skip-window
// hardened pincheck binary is bit-identical across worker counts and
// recombines exactly from pair shards — the engine guarantees hold on
// the new hardened variants too.
func TestBeyond2Determinism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the order-2 hybrid pipeline plus repeated campaigns; run without -short")
	}
	c := cases.Pincheck()
	hySW, err := memo.hybridSWFor(c)
	if err != nil {
		t.Fatal(err)
	}
	camp := fault.Campaign{
		Binary: hySW.Binary, Good: c.Good, Bad: c.Bad,
		Models: []fault.Model{fault.ModelSkip}, StepLimit: stepLimit, DedupSites: true,
	}
	opt := campaign.Options{MaxPairs: beyond2MaxPairs}

	ref, err := campaign.RunOrder2(camp, opt)
	if err != nil {
		t.Fatal(err)
	}
	if n := ref.PairCount(fault.OutcomeSuccess); n != 0 {
		t.Fatalf("%d successful pairs on the skip-window binary", n)
	}

	// Worker invariance.
	for _, workers := range []int{1, 4} {
		o := opt
		o.Workers = workers
		got, err := campaign.RunOrder2(camp, o)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Pairs) != len(ref.Pairs) {
			t.Fatalf("workers=%d: %d pairs vs %d", workers, len(got.Pairs), len(ref.Pairs))
		}
		for i := range got.Pairs {
			if got.Pairs[i] != ref.Pairs[i] {
				t.Fatalf("workers=%d: pair %d differs: %+v vs %+v", workers, i, got.Pairs[i], ref.Pairs[i])
			}
		}
	}

	// Shard recombination.
	const shards = 3
	parts := make([]*campaign.Order2Report, shards)
	for i := 0; i < shards; i++ {
		o := opt
		o.Shard = campaign.Shard{Index: i, Count: shards}
		if parts[i], err = campaign.RunOrder2(camp, o); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := campaign.MergeOrder2(parts)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Pairs) != len(ref.Pairs) {
		t.Fatalf("merged %d pairs vs %d", len(merged.Pairs), len(ref.Pairs))
	}
	for i := range merged.Pairs {
		if merged.Pairs[i] != ref.Pairs[i] {
			t.Fatalf("merged pair %d differs: %+v vs %+v", i, merged.Pairs[i], ref.Pairs[i])
		}
	}
}
