// The corpus experiment: the paper's evaluation, scaled from two
// hand-picked programs to the full registered case-study corpus, run as
// one batched cache-sharing sweep (campaign.RunCorpus). This is the
// evaluation shape the tool-assisted methodology papers ask for —
// hardening claims checked across a program corpus under one attacker
// model — and the numbers show where the paper's countermeasures hold
// up and where richer workloads (the CRT-RSA-style sign-then-verify,
// the anti-rollback updater) leave residual surface.
package experiments

import (
	"fmt"
	"math"

	"github.com/r2r/reinforce/internal/campaign"
	"github.com/r2r/reinforce/internal/cases"
	"github.com/r2r/reinforce/internal/elf"
	"github.com/r2r/reinforce/internal/fault"
	"github.com/r2r/reinforce/internal/report"
	"github.com/r2r/reinforce/internal/static"
)

// corpusMaxPairs bounds the order-2 pair stage per corpus cell, like
// beyondMaxPairs does for the beyond tables.
const corpusMaxPairs = 1024

// CorpusData is the survival census of one (case, pipeline) pair under
// the corpus sweep: the paper's two fault models at order 1, plus the
// order-2 pair stage, site-deduplicated.
type CorpusData struct {
	Case     string
	Pipeline string

	Injections int
	Success    int
	Detected   int

	Pairs       int
	PairSuccess int

	// SurvivalPct is the share of injections the binary survived
	// (everything but a successful fault), the corpus headline number.
	SurvivalPct float64

	// OverheadPct is the pipeline's code-size price (0 for baseline).
	OverheadPct float64

	// VerifyFindings is the static check-coverage verdict on the swept
	// binary: 0 means the verifier proved every fault-response-free
	// exit guarded (all hardened rows, plus crtsign's baseline — its
	// source embeds sign-then-verify), nonzero counts the violations.
	VerifyFindings int
}

// TableCorpus regenerates the corpus table: baseline vs Faulter+Patcher
// vs Hybrid across every registered case study, swept at order 1 (skip
// + bit flip) and order 2 (fault pairs) as one batched, cache-sharing
// corpus run. Results are deterministic — bit-identical across worker
// counts (test-enforced via tableCorpus).
func TableCorpus() (*report.Table, []CorpusData, error) {
	return tableCorpus(campOptions(corpusMaxPairs))
}

// tableCorpus is TableCorpus with the campaign options exposed, so the
// determinism test can pin worker counts against private stores.
func tableCorpus(opt campaign.Options) (*report.Table, []CorpusData, error) {
	var jobs []campaign.CorpusJob
	type rowKey struct {
		pipeline string
		overhead float64
		verify   int
	}
	keys := make([]rowKey, 0, 3*len(cases.Names()))
	for _, c := range cases.Corpus() {
		fp, err := memo.fpFor(c, bothModels)
		if err != nil {
			return nil, nil, err
		}
		hy, err := memo.hybridFor(c)
		if err != nil {
			return nil, nil, err
		}
		variants := []struct {
			name     string
			bin      *elf.Binary
			overhead float64
		}{
			{"original", c.MustBuild(), 0},
			{"faulter+patcher", fp.Binary, fp.Overhead()},
			{"hybrid", hy.Binary, hy.Overhead()},
		}
		for _, v := range variants {
			an, err := static.Analyze(v.bin)
			if err != nil {
				return nil, nil, fmt.Errorf("%s/%s: static analysis: %w", c.Name, v.name, err)
			}
			jobs = append(jobs, campaign.CorpusJob{
				// One memo chain per case: the hardened variants reuse
				// every baseline outcome their patches did not disturb.
				Case: c.Name,
				Campaign: fault.Campaign{
					Binary: v.bin, Good: c.Good, Bad: c.Bad,
					Models: bothModels, StepLimit: stepLimit, DedupSites: true,
				},
			})
			keys = append(keys, rowKey{pipeline: v.name, overhead: v.overhead,
				verify: len(an.CheckCoverage())})
		}
	}

	res, err := campaign.RunCorpus(jobs, campaign.CorpusOptions{
		Options: opt,
		Orders:  []int{1, 2},
		// Distinct cases run concurrently on one shared worker pool;
		// results are bit-identical to the sequential sweep.
		ParallelCells: 3,
	})
	if err != nil {
		return nil, nil, err
	}
	if errs := res.Errs(); len(errs) > 0 {
		return nil, nil, errs[0]
	}

	tab := &report.Table{
		Title: "Corpus — baseline vs F+P vs Hybrid across the full case-study corpus (successful/total)",
		Header: []string{"case study", "pipeline", "order-1 faults", "skip+flip pairs (order 2)",
			"survival", "overhead", "static verify"},
	}
	var out []CorpusData
	totals := map[string]*CorpusData{}
	var pipelineOrder []string
	// Cells arrive in job order, two per job (order 1, then order 2).
	for i, key := range keys {
		o1 := res.Results[2*i]
		o2 := res.Results[2*i+1]
		d := CorpusData{
			Case:           o1.Case,
			Pipeline:       key.pipeline,
			Injections:     len(o1.Report.Injections),
			Success:        o1.Report.Count(fault.OutcomeSuccess),
			Detected:       o1.Report.Count(fault.OutcomeDetected),
			Pairs:          len(o2.Order2.Pairs),
			PairSuccess:    o2.Order2.PairCount(fault.OutcomeSuccess),
			OverheadPct:    key.overhead * 100,
			VerifyFindings: key.verify,
		}
		d.SurvivalPct = survivalPct(d.Success, d.Injections)
		out = append(out, d)
		tab.AddRow(d.Case, d.Pipeline,
			fmt.Sprintf("%d/%d", d.Success, d.Injections),
			fmt.Sprintf("%d/%d", d.PairSuccess, d.Pairs),
			pctFloor(d.SurvivalPct), report.Pct(d.OverheadPct), verifyCell(d.VerifyFindings))
		tot, ok := totals[key.pipeline]
		if !ok {
			tot = &CorpusData{Case: "corpus", Pipeline: key.pipeline}
			totals[key.pipeline] = tot
			pipelineOrder = append(pipelineOrder, key.pipeline)
		}
		tot.Injections += d.Injections
		tot.Success += d.Success
		tot.Detected += d.Detected
		tot.Pairs += d.Pairs
		tot.PairSuccess += d.PairSuccess
		tot.VerifyFindings += d.VerifyFindings
	}
	for _, p := range pipelineOrder {
		tot := totals[p]
		tot.SurvivalPct = survivalPct(tot.Success, tot.Injections)
		out = append(out, *tot)
		tab.AddRow(tot.Case, tot.Pipeline,
			fmt.Sprintf("%d/%d", tot.Success, tot.Injections),
			fmt.Sprintf("%d/%d", tot.PairSuccess, tot.Pairs),
			pctFloor(tot.SurvivalPct), "", verifyCell(tot.VerifyFindings))
	}
	tab.AddNote(fmt.Sprintf(
		"one shared store across all %d campaigns: %d hits / %d misses, %d outcomes memo-reused",
		len(res.Results), res.Cache.Hits, res.Cache.Misses, res.Cache.Reused))
	tab.AddNote("both pipelines cut the corpus-wide successful-fault count; the richer cases (fwupdate, crtsign) keep residual surface the paper's pair never showed")
	tab.AddNote("static verify proves check coverage, not fault immunity: crtsign's built-in sign-then-verify already passes it, yet data faults still slip through")
	return tab, out, nil
}

// survivalPct is the share of injections that did not become a
// successful fault.
func survivalPct(success, injections int) float64 {
	if injections == 0 {
		return 100
	}
	return 100 * float64(injections-success) / float64(injections)
}

// verifyCell renders the static check-coverage verdict for one row.
func verifyCell(findings int) string {
	if findings == 0 {
		return "clean"
	}
	return fmt.Sprintf("%d finding(s)", findings)
}

// pctFloor renders a percentage floored at two decimals, so a row with
// any successful faults can never round up to a deceptive "100.00%".
func pctFloor(p float64) string {
	return fmt.Sprintf("%.2f%%", math.Floor(p*100)/100)
}
