// Package experiments regenerates every table, figure, and claim of the
// paper's evaluation section (§V) plus the beyond-the-paper tables
// (extended fault models, order-2 hardening), shared by
// `r2r experiments` and the root benchmark suite. Each function runs
// the relevant pipeline(s) and returns a rendered table with
// paper-vs-measured columns plus the raw numbers for assertions.
package experiments

import (
	"fmt"

	"github.com/r2r/reinforce/internal/asm"
	"github.com/r2r/reinforce/internal/campaign"
	"github.com/r2r/reinforce/internal/cases"
	"github.com/r2r/reinforce/internal/core"
	"github.com/r2r/reinforce/internal/decode"
	"github.com/r2r/reinforce/internal/elf"
	"github.com/r2r/reinforce/internal/fault"
	"github.com/r2r/reinforce/internal/harden"
	"github.com/r2r/reinforce/internal/ir"
	"github.com/r2r/reinforce/internal/isa"
	"github.com/r2r/reinforce/internal/lift"
	"github.com/r2r/reinforce/internal/passes"
	"github.com/r2r/reinforce/internal/report"
)

// bothModels is the default fault-model set used by the campaigns.
var bothModels = []fault.Model{fault.ModelSkip, fault.ModelBitFlip}

// stepLimit generous enough for hardened hybrid binaries.
const stepLimit = 32 << 20

// oneBranch is the canonical single-conditional-branch program Table IV
// and Figures 4/5 are measured on.
const oneBranch = `
.text
_start:
	mov rax, 0
	mov rdi, 0
	lea rsi, [rip+buf]
	mov rdx, 1
	syscall
	movzx rax, byte ptr [rip+buf]
	cmp rax, 42
	jne no
yes:
	mov rax, 60
	mov rdi, 0
	syscall
no:
	mov rax, 60
	mov rdi, 1
	syscall
.bss
buf: .zero 1
`

func buildOneBranch() (*elf.Binary, error) {
	return asm.Assemble(oneBranch, nil)
}

// TableIVData carries the measured instruction mixes.
type TableIVData struct {
	IRBefore, IRAfter   map[string]int
	X86Before, X86After map[string]int
}

// TableIV regenerates the paper's Table IV: the qualitative overhead of
// hardening one conditional branch, as instruction mixes at the IR and
// x86-64 levels.
func TableIV() (*report.Table, *TableIVData, error) {
	bin, err := buildOneBranch()
	if err != nil {
		return nil, nil, err
	}

	// IR level.
	mixIR := func(hardenIt bool) (map[string]int, error) {
		lr, err := lift.Lift(bin)
		if err != nil {
			return nil, err
		}
		if err := passes.Run(lr.Module, passes.CleanupPipeline()...); err != nil {
			return nil, err
		}
		if hardenIt {
			if err := passes.Run(lr.Module, passes.BranchHarden{}); err != nil {
				return nil, err
			}
			if err := passes.Run(lr.Module, passes.PostHardenCleanup()...); err != nil {
				return nil, err
			}
		}
		return lr.Module.InstMix(), nil
	}
	irBefore, err := mixIR(false)
	if err != nil {
		return nil, nil, err
	}
	irAfter, err := mixIR(true)
	if err != nil {
		return nil, nil, err
	}

	// x86-64 level (lowered binaries, decoded and tallied).
	mixX86 := func(hardenIt bool) (map[string]int, error) {
		res, err := harden.Hybrid(bin, harden.HybridOptions{SkipHardening: !hardenIt})
		if err != nil {
			return nil, err
		}
		return decodeMix(res.Binary)
	}
	x86Before, err := mixX86(false)
	if err != nil {
		return nil, nil, err
	}
	x86After, err := mixX86(true)
	if err != nil {
		return nil, nil, err
	}

	data := &TableIVData{
		IRBefore:  report.MixDelta(map[string]int{}, branchMixIR(irBefore)),
		IRAfter:   report.MixDelta(map[string]int{}, branchMixIR(irAfter)),
		X86Before: report.MixDelta(map[string]int{}, branchMixX86(x86Before)),
		X86After:  report.MixDelta(map[string]int{}, branchMixX86(x86After)),
	}

	keysIR := []string{"icmp", "zext", "sub", "xor", "or", "and", "br", "cellread", "cellwrite"}
	keysX86 := []string{"cmp", "mov", "movzx", "sub", "xor", "or", "and", "test", "setcc", "jx", "jmp", "lea", "shl", "shr"}

	tab := &report.Table{
		Title:  "Table IV — qualitative overhead of conditional branch hardening (one protected branch)",
		Header: []string{"level", "paper (before)", "paper (after)", "measured (before)", "measured (after)"},
	}
	tab.AddRow("compiler IR",
		paperMix(core.PaperTableIV.IRBefore), paperMix(core.PaperTableIV.IRAfter),
		report.MixString(data.IRBefore, keysIR), report.MixString(data.IRAfter, keysIR))
	tab.AddRow("x86-64",
		paperMix(core.PaperTableIV.X86Before), paperMix(core.PaperTableIV.X86After),
		report.MixString(data.X86Before, keysX86), report.MixString(data.X86After, keysX86))
	tab.AddNote("measured mixes are whole-branch-construct counts; absolute numbers differ from LLVM's lowering, the shape (≈10x instruction growth per protected branch) matches")
	return tab, data, nil
}

// branchMixIR restricts an IR mix to the branch-relevant opcodes
// (excludes the program's I/O scaffolding, mirroring how Table IV counts
// only the branch construct).
func branchMixIR(mix map[string]int) map[string]int {
	keep := map[string]bool{
		"icmp": true, "zext": true, "sub": true, "xor": true, "or": true,
		"and": true, "br": true, "select": true, "trunc": true, "sext": true,
	}
	out := map[string]int{}
	for k, v := range mix {
		if keep[k] {
			out[k] = v
		}
	}
	return out
}

// branchMixX86 restricts an x86 mix to branch-construct mnemonics.
func branchMixX86(mix map[string]int) map[string]int {
	keep := map[string]bool{
		"cmp": true, "test": true, "jx": true, "jmp": true, "setcc": true,
		"xor": true, "and": true, "or": true, "sub": true, "zext": true,
		"movzx": true, "shl": true, "shr": true,
	}
	out := map[string]int{}
	for k, v := range mix {
		if keep[k] {
			out[k] = v
		}
	}
	return out
}

func paperMix(counts []core.InstCount) string {
	s := ""
	for i, c := range counts {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%d %s", c.N, c.Mnemonic)
	}
	return s
}

// decodeMix decodes a binary's text section and tallies mnemonics
// (jcc grouped as "jx", setcc as "setcc").
func decodeMix(bin *elf.Binary) (map[string]int, error) {
	text := bin.Text()
	mix := map[string]int{}
	for off := 0; off < len(text.Data); {
		in, err := decode.Decode(text.Data[off:], text.Addr+uint64(off))
		if err != nil {
			return nil, err
		}
		switch in.Op {
		case isa.JCC:
			mix["jx"]++
		case isa.SETCC:
			mix["setcc"]++
		default:
			mix[in.Op.String()]++
		}
		off += in.EncLen
	}
	return mix, nil
}

// TableVData carries the measured overheads per case study.
type TableVData struct {
	Case           string
	FaulterPatcher float64 // percent
	Hybrid         float64 // percent
	FPConverged    bool
}

// TableV regenerates the paper's Table V: code-size overhead of both
// pipelines on both case studies.
func TableV() (*report.Table, []TableVData, error) {
	tab := &report.Table{
		Title:  "Table V — code-size overhead of the inserted countermeasures",
		Header: []string{"case study", "F+P (paper)", "F+P (measured)", "Hybrid (paper)", "Hybrid (measured)"},
	}
	var out []TableVData
	for _, c := range cases.All() {
		fp, err := memo.fpFor(c, bothModels)
		if err != nil {
			return nil, nil, err
		}
		hy, err := memo.hybridFor(c)
		if err != nil {
			return nil, nil, err
		}

		d := TableVData{
			Case:           c.Name,
			FaulterPatcher: fp.Overhead() * 100,
			Hybrid:         hy.Overhead() * 100,
			FPConverged:    len(fp.Final.Successful()) == 0 || fp.Overhead() > 0,
		}
		out = append(out, d)
		paper := core.PaperTableV[c.Name]
		tab.AddRow(c.Name,
			report.Pct(paper.FaulterPatcher), report.Pct(d.FaulterPatcher),
			report.Pct(paper.Hybrid), report.Pct(d.Hybrid))
	}
	tab.AddNote("shape preserved: targeted F+P patching costs a fraction of the holistic Hybrid rewrite on both cases")
	return tab, out, nil
}

// ClaimData is a generic before/after record.
type ClaimData struct {
	Case          string
	Pipeline      string
	PointsBefore  int
	PointsAfter   int
	SitesBefore   int
	SitesAfter    int
	DetectedAfter int
}

// ClaimSkip regenerates §V-C: under the instruction-skip model both
// pipelines resolve all vulnerabilities.
func ClaimSkip() (*report.Table, []ClaimData, error) {
	tab := &report.Table{
		Title:  "Claim (§V-C) — instruction-skip vulnerabilities are fully resolved",
		Header: []string{"case study", "pipeline", "points before", "points after", "detected after"},
	}
	var out []ClaimData
	models := []fault.Model{fault.ModelSkip}
	for _, c := range cases.All() {
		variants, baseline, err := hardenBoth(c, models)
		if err != nil {
			return nil, nil, err
		}
		for _, v := range variants {
			ev, err := harden.EvaluateAgainst(baseline, v.bin, c.Good, c.Bad, models, stepLimit)
			if err != nil {
				return nil, nil, err
			}
			d := ClaimData{
				Case: c.Name, Pipeline: v.name,
				PointsBefore: ev.SuccessBefore(), PointsAfter: ev.SuccessAfter(),
				SitesBefore: ev.SitesBefore(), SitesAfter: ev.SitesAfter(),
				DetectedAfter: ev.After.Count(fault.OutcomeDetected),
			}
			out = append(out, d)
			tab.AddRow(c.Name, v.name,
				fmt.Sprintf("%d", d.PointsBefore), fmt.Sprintf("%d", d.PointsAfter),
				fmt.Sprintf("%d", d.DetectedAfter))
		}
	}
	tab.AddNote("paper: \"we were able to resolve all the vulnerabilities using the mentioned countermeasures\"")
	return tab, out, nil
}

// ClaimBitflip regenerates §V-C: bit-flip vulnerable points reduced by
// about half.
func ClaimBitflip() (*report.Table, []ClaimData, error) {
	tab := &report.Table{
		Title:  "Claim (§V-C) — single-bit-flip vulnerable points reduced by ~50%",
		Header: []string{"case study", "pipeline", "points", "sites", "reduction"},
	}
	var out []ClaimData
	models := []fault.Model{fault.ModelBitFlip}
	for _, c := range cases.All() {
		variants, baseline, err := hardenBoth(c, models)
		if err != nil {
			return nil, nil, err
		}
		for _, v := range variants {
			ev, err := harden.EvaluateAgainst(baseline, v.bin, c.Good, c.Bad, models, stepLimit)
			if err != nil {
				return nil, nil, err
			}
			d := ClaimData{
				Case: c.Name, Pipeline: v.name,
				PointsBefore: ev.SuccessBefore(), PointsAfter: ev.SuccessAfter(),
				SitesBefore: ev.SitesBefore(), SitesAfter: ev.SitesAfter(),
				DetectedAfter: ev.After.Count(fault.OutcomeDetected),
			}
			out = append(out, d)
			tab.AddRow(c.Name, v.name,
				report.Ratio(d.PointsBefore, d.PointsAfter),
				report.Ratio(d.SitesBefore, d.SitesAfter),
				report.Pct(ev.Reduction()*100))
		}
	}
	tab.AddNote("paper: \"we were able to reduce the number of vulnerable points by 50%% using both methodologies\"")
	return tab, out, nil
}

type variant struct {
	name string
	bin  *elf.Binary
}

// hardenBoth produces the F+P and Hybrid hardened binaries for a case
// (memoized) along with the case's baseline campaign report under the
// same models, so evaluations share one baseline sweep per case.
func hardenBoth(c *cases.Case, models []fault.Model) ([]variant, *fault.Report, error) {
	fp, err := memo.fpFor(c, models)
	if err != nil {
		return nil, nil, err
	}
	hy, err := memo.hybridFor(c)
	if err != nil {
		return nil, nil, err
	}
	baseline, err := memo.baselineFor(c, models)
	if err != nil {
		return nil, nil, err
	}
	return []variant{
		{"faulter+patcher", fp.Binary},
		{"hybrid", hy.Binary},
	}, baseline, nil
}

// ClaimClassData records the vulnerability class census.
type ClaimClassData struct {
	Case   string
	Counts map[fault.VulnClass]int
}

// ClaimClass regenerates §V-C: all baseline vulnerabilities sit on the
// conditional-jump cluster (mov/cmp/jcc).
func ClaimClass() (*report.Table, []ClaimClassData, error) {
	tab := &report.Table{
		Title:  "Claim (§V-C) — vulnerabilities cluster on the conditional-jump instructions",
		Header: []string{"case study", "mov-class", "cmp-class", "branch-class", "other"},
	}
	var out []ClaimClassData
	for _, c := range cases.All() {
		rep, err := memo.baselineFor(c, bothModels)
		if err != nil {
			return nil, nil, err
		}
		counts := rep.ClassCounts()
		out = append(out, ClaimClassData{Case: c.Name, Counts: counts})
		tab.AddRow(c.Name,
			fmt.Sprintf("%d", counts[fault.ClassMov]),
			fmt.Sprintf("%d", counts[fault.ClassCmp]),
			fmt.Sprintf("%d", counts[fault.ClassBranch]),
			fmt.Sprintf("%d", counts[fault.ClassOther]))
	}
	tab.AddNote("paper: \"All of these vulnerabilities were caused by the conditional jumps (mov, cmp, and jmp instructions related to a jump operation)\"")
	return tab, out, nil
}

// ClaimDupData records the duplication baseline comparison. Both of the
// paper's methods are compared against the blanket-duplication scheme on
// their own rewriting substrate, so the numbers isolate the
// countermeasure cost from the rewriter-intrinsic cost (§IV-D notes the
// Hybrid route pays a lift/lower tax regardless of countermeasure).
type ClaimDupData struct {
	Case string

	// Reassembly substrate.
	FPPct  float64 // targeted Faulter+Patcher
	DupPct float64 // blanket Table-I-style duplication of every instruction
	// Hybrid substrate.
	HybridPct float64 // conditional branch hardening
	DupIRPct  float64 // every IR computation duplicated and checked
}

// ClaimDup regenerates §V-C: blanket duplication costs around the
// paper's >=300% bound and loses to the targeted method on the
// reassembly substrate and to branch hardening on the IR substrate.
func ClaimDup() (*report.Table, []ClaimDupData, error) {
	tab := &report.Table{
		Title:  "Claim (§V-C) — duplication baseline comparison, per rewriting substrate",
		Header: []string{"case study", "F+P (targeted)", "duplication (reasm)", "Hybrid (branch-harden)", "duplication (IR)"},
	}
	var out []ClaimDupData
	for _, c := range cases.All() {
		bin := c.MustBuild()
		fp, err := memo.fpFor(c, bothModels)
		if err != nil {
			return nil, nil, err
		}
		hy, err := memo.hybridFor(c)
		if err != nil {
			return nil, nil, err
		}
		dup, err := harden.Duplication(bin)
		if err != nil {
			return nil, nil, err
		}
		dupIR, err := harden.DuplicationIR(bin)
		if err != nil {
			return nil, nil, err
		}
		for _, hb := range []*elf.Binary{dup.Binary, dupIR.Binary} {
			if err := c.Check(hb); err != nil {
				return nil, nil, err
			}
		}
		d := ClaimDupData{
			Case:      c.Name,
			FPPct:     fp.Overhead() * 100,
			DupPct:    dup.Overhead() * 100,
			HybridPct: hy.Overhead() * 100,
			DupIRPct:  dupIR.Overhead() * 100,
		}
		out = append(out, d)
		tab.AddRow(c.Name, report.Pct(d.FPPct), report.Pct(d.DupPct),
			report.Pct(d.HybridPct), report.Pct(d.DupIRPct))
	}
	tab.AddNote("paper bound: duplication >= 300%%; both targeted methods must beat the blanket scheme on their substrate")
	return tab, out, nil
}

// beyondModels are the beyond-the-paper fault models TableBeyond
// sweeps: register bit flips, 2-4 instruction skip windows, and
// transient data flips — the catalog ARMORY argues exhaustive
// simulation is really for.
var beyondModels = []fault.Model{fault.ModelRegFlip, fault.ModelMultiSkip, fault.ModelDataFlip}

// beyondMaxPairs bounds the order-2 pair stage per variant; the pair
// list is deterministic, so the cap only trades coverage for time.
const beyondMaxPairs = 1024

// BeyondData is the residual-vulnerability census of one case/pipeline
// pair under the beyond-the-paper fault models.
type BeyondData struct {
	Case     string
	Pipeline string

	// Per-model order-1 sweep (site-deduplicated).
	Injections map[fault.Model]int
	Success    map[fault.Model]int

	// Order-2 instruction-skip pairs.
	Pairs        int
	PairSuccess  int
	PairDetected int
}

// TableBeyond goes beyond the paper's evaluation: the same case
// studies and hardened variants, attacked under the register-flip /
// multi-skip / data-flip models and under order-2 instruction-skip
// pairs. The paper's countermeasures target single instruction-stream
// faults, so this table shows where their protection ends — the
// residual attack surface that motivates the extended fault catalog.
//
// Campaigns run site-deduplicated (every static site faulted once per
// variant) to keep the sweep tractable; results are deterministic.
func TableBeyond() (*report.Table, []BeyondData, error) {
	tab := &report.Table{
		Title: "Beyond the paper — residual vulnerability under extended fault models (successful/injections)",
		Header: []string{"case study", "pipeline", "reg-flip", "multi-skip", "data-flip",
			"skip pairs (order 2)"},
	}
	var out []BeyondData
	for _, c := range cases.All() {
		fp, err := memo.fpFor(c, bothModels)
		if err != nil {
			return nil, nil, err
		}
		hy, err := memo.hybridFor(c)
		if err != nil {
			return nil, nil, err
		}
		variants := []variant{
			{"original", c.MustBuild()},
			{"faulter+patcher", fp.Binary},
			{"hybrid", hy.Binary},
		}
		for _, v := range variants {
			camp := fault.Campaign{
				Binary: v.bin, Good: c.Good, Bad: c.Bad,
				StepLimit: stepLimit, DedupSites: true,
			}
			camp.Models = beyondModels
			rep, err := campaign.Run(camp, campOptions(0))
			if err != nil {
				return nil, nil, fmt.Errorf("%s/%s beyond campaign: %w", c.Name, v.name, err)
			}
			camp.Models = []fault.Model{fault.ModelSkip}
			o2, err := campaign.RunOrder2(camp, campOptions(beyondMaxPairs))
			if err != nil {
				return nil, nil, fmt.Errorf("%s/%s order-2 campaign: %w", c.Name, v.name, err)
			}
			d := BeyondData{
				Case: c.Name, Pipeline: v.name,
				Injections:   map[fault.Model]int{},
				Success:      map[fault.Model]int{},
				Pairs:        len(o2.Pairs),
				PairSuccess:  o2.PairCount(fault.OutcomeSuccess),
				PairDetected: o2.PairCount(fault.OutcomeDetected),
			}
			for _, m := range beyondModels {
				view := rep.FilterModels(m)
				d.Injections[m] = len(view.Injections)
				d.Success[m] = view.Count(fault.OutcomeSuccess)
			}
			out = append(out, d)
			cell := func(m fault.Model) string {
				return fmt.Sprintf("%d/%d", d.Success[m], d.Injections[m])
			}
			tab.AddRow(c.Name, v.name,
				cell(fault.ModelRegFlip), cell(fault.ModelMultiSkip), cell(fault.ModelDataFlip),
				fmt.Sprintf("%d/%d", d.PairSuccess, d.Pairs))
		}
	}
	tab.AddNote("single-fault countermeasures leave residual reg/data/multi-fault and order-2 surface — the scenario catalog argument of ARMORY and Boespflug et al.")
	return tab, out, nil
}

// beyond2MaxPairs bounds the order-2 pair stage of the beyond2 table
// and of the order-2 Faulter+Patcher driver, like beyondMaxPairs does
// for the beyond table.
const beyond2MaxPairs = 1024

// Beyond2Data is the order-2 hardening census of one case/pipeline
// pair: residual pair and multi-skip surface plus the code-size price.
type Beyond2Data struct {
	Case     string
	Pipeline string

	// Order-1 multi-instruction-skip sweep (site-deduplicated).
	MultiSkipInj     int
	MultiSkipSuccess int

	// Order-2 instruction-skip pairs.
	Pairs        int
	PairSuccess  int
	PairDetected int

	// OverheadPct is the .text growth over the unhardened binary.
	OverheadPct float64
}

// TableBeyond2 is the evaluation of the order-2 countermeasures: the
// `beyond` table showed that the paper's single-fault hardening leaves
// a residual surface under skip pairs and sustained skip windows; this
// table shows both order-2-hardened pipelines closing it, at their
// measured price, against the naive blanket-duplication baseline that
// order-2 attacks were designed to defeat.
//
// Pipelines, per case study:
//
//   - f+p: the single-fault Faulter+Patcher fixed point (skip model) —
//     the baseline whose residual pairs motivate the rest;
//   - f+p order2: the same driver with Order=2 — sites of successful
//     pairs escalated to the chained StyleOrder2 patterns;
//   - dup-ir (naive): blanket IR duplication, the classic scheme a
//     skip pair (computation + check) defeats;
//   - hybrid: branch hardening alone;
//   - hybrid+skipwindow: branch hardening plus the SkipWindowHarden
//     pass (spaced duplicates, step counters, two-stage validation).
//
// Campaigns run site-deduplicated with the pair budget capped at
// beyond2MaxPairs; results are deterministic (bit-identical across
// worker counts and shard decompositions, like every campaign).
func TableBeyond2() (*report.Table, []Beyond2Data, error) {
	tab := &report.Table{
		Title: "Beyond the paper — order-2 hardening closes the multi-fault gap (successful/total)",
		Header: []string{"case study", "pipeline", "multi-skip", "skip pairs (order 2)",
			"overhead"},
	}
	var out []Beyond2Data
	skipOnly := []fault.Model{fault.ModelSkip}
	for _, c := range cases.All() {
		fp, err := memo.fpFor(c, skipOnly)
		if err != nil {
			return nil, nil, err
		}
		fpo2, err := memo.fpOrder2For(c)
		if err != nil {
			return nil, nil, err
		}
		dupIR, err := harden.DuplicationIR(c.MustBuild())
		if err != nil {
			return nil, nil, err
		}
		hy, err := memo.hybridFor(c)
		if err != nil {
			return nil, nil, err
		}
		hySW, err := memo.hybridSWFor(c)
		if err != nil {
			return nil, nil, err
		}
		variants := []struct {
			name     string
			bin      *elf.Binary
			overhead float64
		}{
			{"f+p", fp.Binary, fp.Overhead()},
			{"f+p order2", fpo2.Binary, fpo2.Overhead()},
			{"dup-ir (naive)", dupIR.Binary, dupIR.Overhead()},
			{"hybrid", hy.Binary, hy.Overhead()},
			{"hybrid+skipwindow", hySW.Binary, hySW.Overhead()},
		}
		for _, v := range variants {
			camp := fault.Campaign{
				Binary: v.bin, Good: c.Good, Bad: c.Bad,
				StepLimit: stepLimit, DedupSites: true,
			}
			camp.Models = []fault.Model{fault.ModelMultiSkip}
			ms, err := campaign.Run(camp, campOptions(0))
			if err != nil {
				return nil, nil, fmt.Errorf("%s/%s multi-skip campaign: %w", c.Name, v.name, err)
			}
			camp.Models = skipOnly
			o2, err := campaign.RunOrder2(camp, campOptions(beyond2MaxPairs))
			if err != nil {
				return nil, nil, fmt.Errorf("%s/%s order-2 campaign: %w", c.Name, v.name, err)
			}
			d := Beyond2Data{
				Case: c.Name, Pipeline: v.name,
				MultiSkipInj:     len(ms.Injections),
				MultiSkipSuccess: ms.Count(fault.OutcomeSuccess),
				Pairs:            len(o2.Pairs),
				PairSuccess:      o2.PairCount(fault.OutcomeSuccess),
				PairDetected:     o2.PairCount(fault.OutcomeDetected),
				OverheadPct:      v.overhead * 100,
			}
			out = append(out, d)
			tab.AddRow(c.Name, v.name,
				fmt.Sprintf("%d/%d", d.MultiSkipSuccess, d.MultiSkipInj),
				fmt.Sprintf("%d/%d", d.PairSuccess, d.Pairs),
				report.Pct(d.OverheadPct))
		}
	}
	tab.AddNote("order-2 hardening (f+p order2, hybrid+skipwindow) drives pair successes to zero; redundancy only resists higher-order faults when checks are spaced and chained (Boespflug et al., Moro et al.)")
	return tab, out, nil
}

// FigureData is the CFG census for Figures 4/5.
type FigureData struct {
	BlocksBefore, BlocksAfter int
	BranchesProtected         int
	ValidationBlocks          int
	FaultRespBlocks           int
}

// Figures regenerates Figures 4 and 5: the CFG of one conditional
// branch before and after hardening.
func Figures() (*report.Table, *FigureData, error) {
	bin, err := buildOneBranch()
	if err != nil {
		return nil, nil, err
	}
	lr, err := lift.Lift(bin)
	if err != nil {
		return nil, nil, err
	}
	if err := passes.Run(lr.Module, passes.CleanupPipeline()...); err != nil {
		return nil, nil, err
	}
	f := lr.Module.Func("_start")
	before := len(f.Blocks)

	var stats passes.HardenStats
	if err := passes.Run(lr.Module, passes.BranchHarden{Stats: &stats}); err != nil {
		return nil, nil, err
	}
	data := &FigureData{
		BlocksBefore:      before,
		BlocksAfter:       len(f.Blocks),
		BranchesProtected: stats.BranchesProtected,
	}
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t != nil && t.Op == ir.OpFaultResp {
			data.FaultRespBlocks++
		}
	}
	data.ValidationBlocks = data.BlocksAfter - data.BlocksBefore - data.FaultRespBlocks

	shape := core.PaperFigure5
	tab := &report.Table{
		Title:  "Figures 4 & 5 — CFG of one conditional branch, before and after hardening",
		Header: []string{"metric", "paper", "measured"},
	}
	tab.AddRow("basic blocks (fig. 4)", "3 (src + 2 dst)", fmt.Sprintf("%d", data.BlocksBefore))
	tab.AddRow("validation blocks per branch (fig. 5)",
		fmt.Sprintf("%d", shape.ValidationPerEdge*shape.EdgesPerBranch),
		fmt.Sprintf("%d", data.ValidationBlocks))
	tab.AddRow("fault-response blocks per branch (fig. 5)",
		fmt.Sprintf("%d", shape.FaultRespPerEdge*shape.EdgesPerBranch),
		fmt.Sprintf("%d", data.FaultRespBlocks))
	return tab, data, nil
}
