package experiments

import (
	"testing"

	"github.com/r2r/reinforce/internal/campaign"
	"github.com/r2r/reinforce/internal/cases"
)

func TestTableCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("runs both pipelines plus order-1/2 campaigns across the whole corpus; run without -short")
	}
	tab, data, err := TableCorpus()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab)

	nCases := len(cases.Names())
	wantRows := 3*nCases + 3 // one row per (case, pipeline) + 3 totals
	if len(data) != wantRows {
		t.Fatalf("rows = %d, want %d", len(data), wantRows)
	}

	perCase := map[string]map[string]CorpusData{}
	totals := map[string]CorpusData{}
	for _, d := range data {
		if d.Case == "corpus" {
			totals[d.Pipeline] = d
			continue
		}
		if perCase[d.Case] == nil {
			perCase[d.Case] = map[string]CorpusData{}
		}
		perCase[d.Case][d.Pipeline] = d
	}
	if len(perCase) != nCases {
		t.Fatalf("cases covered = %d, want %d", len(perCase), nCases)
	}

	for name, rows := range perCase {
		base, fp, hy := rows["original"], rows["faulter+patcher"], rows["hybrid"]
		if base.Injections == 0 {
			t.Errorf("%s: empty baseline sweep", name)
		}
		if base.Success == 0 {
			t.Errorf("%s: baseline shows no vulnerabilities — the case is not a case study", name)
		}
		// The static verifier must agree with the sweep: the unhardened
		// baseline has no provable check coverage (except crtsign, whose
		// source embeds the sign-then-verify countermeasure with its own
		// exit(42) path), both hardened pipelines do.
		if base.VerifyFindings == 0 && name != "crtsign" {
			t.Errorf("%s: baseline verified clean — the static verifier is vacuous", name)
		}
		if name == "crtsign" && base.VerifyFindings != 0 {
			t.Errorf("crtsign: %d finding(s) on a baseline with a built-in sign-then-verify check",
				base.VerifyFindings)
		}
		for _, d := range []CorpusData{fp, hy} {
			if d.VerifyFindings != 0 {
				t.Errorf("%s/%s: %d static verify finding(s) on a hardened binary",
					name, d.Pipeline, d.VerifyFindings)
			}
		}
		// Hardening must not create new order-1 vulnerabilities, and must
		// detect some faults the baseline could not.
		for _, d := range []CorpusData{fp, hy} {
			if d.Success > base.Success {
				t.Errorf("%s/%s: hardened successes %d exceed baseline %d",
					name, d.Pipeline, d.Success, base.Success)
			}
			if d.Detected == 0 {
				t.Errorf("%s/%s: hardening detected nothing", name, d.Pipeline)
			}
			if d.OverheadPct <= 0 {
				t.Errorf("%s/%s: non-positive overhead %.1f%%", name, d.Pipeline, d.OverheadPct)
			}
		}
	}

	// The corpus-wide headline: both pipelines strictly cut the total
	// successful-fault count, and survival improves.
	base := totals["original"]
	for _, p := range []string{"faulter+patcher", "hybrid"} {
		tot := totals[p]
		if tot.Success >= base.Success {
			t.Errorf("corpus/%s: successes %d not below baseline %d", p, tot.Success, base.Success)
		}
		if tot.SurvivalPct <= base.SurvivalPct {
			t.Errorf("corpus/%s: survival %.2f%% not above baseline %.2f%%",
				p, tot.SurvivalPct, base.SurvivalPct)
		}
	}
}

// TestTableCorpusWorkerInvariance: the corpus table renders
// bit-identically regardless of worker count — the acceptance guarantee
// that the batched runner inherits the engine's determinism.
func TestTableCorpusWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the corpus sweep twice; run without -short")
	}
	render := func(workers int) string {
		t.Helper()
		// A private store per run: shared state between the two sweeps
		// would let a replay mask a real worker-count dependence.
		st, err := campaign.NewStore("")
		if err != nil {
			t.Fatal(err)
		}
		tab, _, err := tableCorpus(campaign.Options{
			Workers: workers, MaxPairs: corpusMaxPairs, Store: st,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tab.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Errorf("corpus table differs between 1 and 8 workers:\n%s\n---\n%s", serial, parallel)
	}
}
