package experiments

import (
	"testing"

	"github.com/r2r/reinforce/internal/campaign"
	"github.com/r2r/reinforce/internal/cases"
)

func TestTableVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("generates and sweeps the fuzz-variant corpus; run without -short")
	}
	tab, data, err := TableVariants()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab)

	perCase := map[string][]VariantData{}
	for _, d := range data {
		perCase[d.Case] = append(perCase[d.Case], d)
	}
	if len(perCase) != len(cases.Names()) {
		t.Fatalf("cases covered = %d, want %d", len(perCase), len(cases.Names()))
	}
	for name, rows := range perCase {
		if rows[0].Variant != "original" {
			t.Errorf("%s: first row is %q, want the original", name, rows[0].Variant)
		}
		if len(rows) < 2 {
			t.Errorf("%s: no fuzz variants survived the screen", name)
		}
		for _, d := range rows {
			if d.Injections == 0 {
				t.Errorf("%s/%s: empty sweep", name, d.Variant)
			}
			if d.CodeSize == 0 {
				t.Errorf("%s/%s: zero code size", name, d.Variant)
			}
		}
		// A variant is a different binary: instruction duplication grows
		// the text, so at least one variant's code size must differ from
		// the original's.
		grew := false
		for _, d := range rows[1:] {
			if d.CodeSize != rows[0].CodeSize {
				grew = true
			}
		}
		if len(rows) > 1 && !grew {
			t.Errorf("%s: every variant has the original's code size — mutation is vacuous", name)
		}
	}
}

// The variants table renders bit-identically regardless of worker
// count: generation is seeded and the campaign engine is deterministic.
func TestTableVariantsWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the variant sweep twice; run without -short")
	}
	render := func(workers int) string {
		t.Helper()
		st, err := campaign.NewStore("")
		if err != nil {
			t.Fatal(err)
		}
		tab, _, err := tableVariants(campaign.Options{Workers: workers, Store: st})
		if err != nil {
			t.Fatal(err)
		}
		return tab.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Errorf("variants table differs between 1 and 8 workers:\n%s\n---\n%s", serial, parallel)
	}
}
