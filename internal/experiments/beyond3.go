package experiments

import (
	"fmt"

	"github.com/r2r/reinforce/internal/campaign"
	"github.com/r2r/reinforce/internal/cases"
	"github.com/r2r/reinforce/internal/elf"
	"github.com/r2r/reinforce/internal/fault"
	"github.com/r2r/reinforce/internal/report"
)

// beyond3MaxTriples caps each order-3 campaign of the beyond3 table.
// The unpruned triple space is cubic; the cap keeps the table a
// regenerate-on-every-run experiment while still exercising thousands
// of triples per variant.
const beyond3MaxTriples = 1024

// Beyond3Data is the order-3 census of one case/pipeline cell.
type Beyond3Data struct {
	Case     string
	Pipeline string

	Pairs       int
	PairSuccess int

	Triples       int
	TripleSuccess int
	TripleDetect  int

	// Pruned/Simulated split the campaign's injections (all orders) by
	// how the equivalence pruner classified them.
	Pruned    int
	Simulated int
}

// PrunedPct is the share of injections answered without simulation.
func (d Beyond3Data) PrunedPct() float64 {
	total := d.Pruned + d.Simulated
	if total == 0 {
		return 0
	}
	return 100 * float64(d.Pruned) / float64(total)
}

// TableBeyond3 pushes the multi-fault evaluation past the paper's
// order: a budget-capped order-3 campaign (fault triples) on both
// paper case studies, at the attack order the order-2 tables stop at.
// The sweep is only tractable because of the fault-equivalence pruning
// pass — the table therefore also reports how much of each campaign
// the pruner answered statically or by state-equivalence inheritance
// (the ARMORY scaling argument, measured).
//
// Pipelines, per case study: the unhardened baseline, the single-fault
// Faulter+Patcher fixed point, and the order-2-hardened hybrid
// (branch hardening + skip-window pass) — does hardening against
// orders 1-2 also shrink the order-3 surface, and what survives it?
//
// Campaigns run the skip model, site-deduplicated, with the pair
// budget at beyond2MaxPairs and the triple budget at beyond3MaxTriples.
// Results are deterministic and — pruned or not — bit-identical, the
// property the differential harness in internal/campaign enforces.
func TableBeyond3() (*report.Table, []Beyond3Data, error) {
	tab := &report.Table{
		Title: "Beyond the paper — budget-capped order-3 campaigns via equivalence pruning (successful/total)",
		Header: []string{"case study", "pipeline", "skip pairs (order 2)",
			"skip triples (order 3)", "pruned"},
	}
	var out []Beyond3Data
	skipOnly := []fault.Model{fault.ModelSkip}
	for _, c := range cases.All() {
		fp, err := memo.fpFor(c, skipOnly)
		if err != nil {
			return nil, nil, err
		}
		hySW, err := memo.hybridSWFor(c)
		if err != nil {
			return nil, nil, err
		}
		variants := []struct {
			name string
			bin  *elf.Binary
		}{
			{"original", c.MustBuild()},
			{"f+p", fp.Binary},
			{"hybrid+skipwindow", hySW.Binary},
		}
		for _, v := range variants {
			camp := fault.Campaign{
				Binary: v.bin, Good: c.Good, Bad: c.Bad, Models: skipOnly,
				StepLimit: stepLimit, DedupSites: true,
			}
			opt := campOptions(beyond2MaxPairs)
			opt.MaxTriples = beyond3MaxTriples
			res, err := campaign.RunOrder3(camp, opt)
			if err != nil {
				return nil, nil, fmt.Errorf("%s/%s order-3 campaign: %w", c.Name, v.name, err)
			}
			rep := res.Report
			d := Beyond3Data{
				Case: c.Name, Pipeline: v.name,
				Pairs:         len(rep.Pairs),
				PairSuccess:   rep.Order2().PairCount(fault.OutcomeSuccess),
				Triples:       len(rep.Triples),
				TripleSuccess: rep.TripleCount(fault.OutcomeSuccess),
				TripleDetect:  rep.TripleCount(fault.OutcomeDetected),
			}
			if res.Prune != nil {
				d.Pruned = res.Prune.Pruned()
				d.Simulated = res.Prune.Simulated
			}
			out = append(out, d)
			tab.AddRow(c.Name, v.name,
				fmt.Sprintf("%d/%d", d.PairSuccess, d.Pairs),
				fmt.Sprintf("%d/%d", d.TripleSuccess, d.Triples),
				report.Pct(d.PrunedPct()))
		}
	}
	tab.AddNote(fmt.Sprintf("triple budget %d per variant; 'pruned' is the share of injections classified without simulation (static reachability + state-hash equivalence), the reduction that makes order 3 tractable (ARMORY, Boespflug et al.)", beyond3MaxTriples))
	return tab, out, nil
}
