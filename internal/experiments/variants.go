// The variants experiment: evaluation coverage beyond the hand-written
// catalog. The oracle package fuzz-derives variants of every registered
// case study (seeded source mutations, screened against each case's
// behavioral contract under the emulator), and the survivors — real,
// distinct binaries honoring the same accepted/rejected oracle — run
// through the same batched corpus campaign as the catalog itself. The
// table answers a question the five hand-written cases cannot: does the
// measured attack surface survive incidental code-layout and
// instruction-stream perturbations, or was it an artifact of one
// particular encoding?
package experiments

import (
	"fmt"

	"github.com/r2r/reinforce/internal/campaign"
	"github.com/r2r/reinforce/internal/cases"
	"github.com/r2r/reinforce/internal/fault"
	"github.com/r2r/reinforce/internal/oracle"
	"github.com/r2r/reinforce/internal/report"
)

const (
	// variantsPerCase is how many screened survivors each catalog case
	// contributes (plus the unmutated parent as its own row).
	variantsPerCase = 2

	// variantSeed pins the generator stream: the table is reproducible.
	variantSeed = 1

	// variantMaxFaults caps injections per campaign — the variants
	// sweep is a breadth experiment, not an exhaustive one.
	variantMaxFaults = 1500
)

// VariantData is one (binary, campaign) row of the variants sweep.
type VariantData struct {
	Case        string // parent catalog case
	Variant     string // "original" or the variant name
	CodeSize    int
	Injections  int
	Success     int
	Detected    int
	SurvivalPct float64
}

// TableVariants regenerates the fuzz-variant corpus table: every
// registered case study plus its oracle-screened fuzz variants, swept
// under the paper's two fault models at order 1 as one batched,
// cache-sharing corpus run. Deterministic — generation is seeded and
// the campaign engine is worker-count invariant (test-enforced).
func TableVariants() (*report.Table, []VariantData, error) {
	return tableVariants(campOptions(0))
}

// tableVariants is TableVariants with the campaign options exposed, so
// the determinism test can pin worker counts against private stores.
func tableVariants(opt campaign.Options) (*report.Table, []VariantData, error) {
	type rowKey struct {
		parent  string
		variant string
		size    int
	}
	var jobs []campaign.CorpusJob
	var keys []rowKey
	screened := 0
	for _, c := range cases.Corpus() {
		vs := oracle.Variants(c, variantsPerCase, variantSeed)
		screened += len(vs)
		for i, v := range append([]*cases.Case{c}, vs...) {
			bin, err := v.Build()
			if err != nil {
				return nil, nil, fmt.Errorf("%s: %w", v.Name, err)
			}
			label := "original"
			if i > 0 {
				label = v.Name
			}
			keys = append(keys, rowKey{parent: c.Name, variant: label, size: bin.CodeSize()})
			jobs = append(jobs, campaign.CorpusJob{
				Case: v.Name,
				Campaign: fault.Campaign{
					Binary: bin, Good: v.Good, Bad: v.Bad,
					Models: bothModels, StepLimit: stepLimit,
					DedupSites: true, MaxFaults: variantMaxFaults,
				},
			})
		}
	}
	res, err := campaign.RunCorpus(jobs, campaign.CorpusOptions{Options: opt, Orders: []int{1}})
	if err != nil {
		return nil, nil, err
	}

	tab := &report.Table{
		Title:  "Fuzz-variant corpus — oracle-screened case mutations under the order-1 sweep",
		Header: []string{"case", "variant", "code bytes", "injections", "success", "detected", "survival %"},
	}
	var data []VariantData
	for i, cell := range res.Results {
		if cell.Err != nil {
			return nil, nil, fmt.Errorf("%s: %w", cell.Case, cell.Err)
		}
		s := cell.Summary
		d := VariantData{
			Case:       keys[i].parent,
			Variant:    keys[i].variant,
			CodeSize:   keys[i].size,
			Injections: s.Injections,
			Success:    s.Success,
			Detected:   s.Detected,
		}
		if s.Injections > 0 {
			d.SurvivalPct = 100 * float64(s.Injections-s.Success) / float64(s.Injections)
		}
		data = append(data, d)
		tab.AddRow(d.Case, d.Variant, fmt.Sprint(d.CodeSize), fmt.Sprint(d.Injections),
			fmt.Sprint(d.Success), fmt.Sprint(d.Detected), fmt.Sprintf("%.1f", d.SurvivalPct))
	}
	tab.AddNote("%d fuzz variants survived the behavioral screen (%d requested per case, seed %d)",
		screened, variantsPerCase, variantSeed)
	tab.AddNote("variants mutate the assembly source (idempotent duplications + literal tweaks); the screen keeps only mutants whose good/bad contract is unchanged")
	return tab, data, nil
}
