package experiments

import (
	"testing"

	"github.com/r2r/reinforce/internal/core"
	"github.com/r2r/reinforce/internal/fault"
)

func TestTableIV(t *testing.T) {
	tab, data, err := TableIV()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab)
	// Shape: before is a bare compare+branch; after grows ~10x.
	sum := func(m map[string]int) int {
		n := 0
		for _, v := range m {
			n += v
		}
		return n
	}
	before, after := sum(data.IRBefore), sum(data.IRAfter)
	if before == 0 || after < 5*before {
		t.Errorf("IR growth %d -> %d: expected ~10x", before, after)
	}
	// Algorithm 1's fingerprint: zext, sub, and, or appear.
	for _, k := range []string{"zext", "sub", "and", "or"} {
		if data.IRAfter[k] <= data.IRBefore[k] {
			t.Errorf("hardening added no %s (Algorithm 1 fingerprint)", k)
		}
	}
	x86Before, x86After := sum(data.X86Before), sum(data.X86After)
	if x86After < 5*x86Before {
		t.Errorf("x86 growth %d -> %d: expected ~10x", x86Before, x86After)
	}
}

func TestTableV(t *testing.T) {
	if testing.Short() {
		t.Skip("runs both hardening pipelines on both cases; run without -short")
	}
	tab, data, err := TableV()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab)
	if len(data) != 2 {
		t.Fatalf("rows = %d", len(data))
	}
	for _, d := range data {
		// Core shape of Table V: Hybrid costs several times more than
		// the targeted Faulter+Patcher, and both stay under blanket
		// duplication (300%).
		if d.FaulterPatcher <= 0 || d.Hybrid <= 0 {
			t.Errorf("%s: non-positive overheads: %+v", d.Case, d)
		}
		if d.Hybrid <= d.FaulterPatcher {
			t.Errorf("%s: hybrid (%.1f%%) not costlier than F+P (%.1f%%)",
				d.Case, d.Hybrid, d.FaulterPatcher)
		}
		if d.FaulterPatcher >= core.PaperDuplicationMinPct {
			t.Errorf("%s: F+P overhead %.1f%% at duplication level", d.Case, d.FaulterPatcher)
		}
	}
}

func TestClaimSkip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs both hardening pipelines plus campaigns; run without -short")
	}
	tab, data, err := ClaimSkip()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab)
	for _, d := range data {
		if d.PointsBefore == 0 {
			t.Errorf("%s/%s: no baseline skip vulnerabilities", d.Case, d.Pipeline)
		}
		if d.PointsAfter != 0 {
			t.Errorf("%s/%s: %d skip vulnerabilities remain", d.Case, d.Pipeline, d.PointsAfter)
		}
	}
}

func TestClaimBitflip(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive bit-flip sweeps over hardened binaries; run without -short")
	}
	tab, data, err := ClaimBitflip()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab)
	for _, d := range data {
		if d.PointsBefore == 0 {
			t.Errorf("%s/%s: no baseline bitflip vulnerabilities", d.Case, d.Pipeline)
			continue
		}
		reduction := 1 - float64(d.PointsAfter)/float64(d.PointsBefore)
		if reduction < core.PaperBitflipReduction {
			t.Errorf("%s/%s: bitflip reduction %.0f%% below the paper's 50%% (%d -> %d)",
				d.Case, d.Pipeline, reduction*100, d.PointsBefore, d.PointsAfter)
		}
	}
}

func TestClaimClass(t *testing.T) {
	tab, data, err := ClaimClass()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab)
	for _, d := range data {
		if d.Counts[fault.ClassOther] != 0 {
			t.Errorf("%s: %d vulnerable sites outside the mov/cmp/branch cluster",
				d.Case, d.Counts[fault.ClassOther])
		}
		total := 0
		for _, n := range d.Counts {
			total += n
		}
		if total == 0 {
			t.Errorf("%s: no vulnerable sites at all", d.Case)
		}
	}
}

func TestClaimDup(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every rewriting pipeline on both cases; run without -short")
	}
	tab, data, err := ClaimDup()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab)
	for _, d := range data {
		// Same-substrate orderings: targeted beats blanket on the
		// reassembly substrate; branch hardening beats whole-program
		// duplication on the IR substrate.
		if d.FPPct >= d.DupPct {
			t.Errorf("%s: targeted F+P %.1f%% not below blanket duplication %.1f%%",
				d.Case, d.FPPct, d.DupPct)
		}
		if d.HybridPct >= d.DupIRPct {
			t.Errorf("%s: branch hardening %.1f%% not below IR duplication %.1f%%",
				d.Case, d.HybridPct, d.DupIRPct)
		}
		if d.DupPct < 150 {
			t.Errorf("%s: duplication %.1f%% implausibly cheap vs the paper's 300%% bound", d.Case, d.DupPct)
		}
	}
}

func TestTableBeyond(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps every variant under the extended fault catalog; run without -short")
	}
	tab, data, err := TableBeyond()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab)
	if len(data) != 6 {
		t.Fatalf("rows = %d, want 2 cases x 3 pipelines", len(data))
	}
	for _, d := range data {
		for _, m := range beyondModels {
			if d.Injections[m] == 0 {
				t.Errorf("%s/%s: no %s injections enumerated", d.Case, d.Pipeline, m)
			}
		}
		if d.Pairs == 0 {
			t.Errorf("%s/%s: no order-2 pairs enumerated", d.Case, d.Pipeline)
		}
		// Shape: the original binaries fall to the wide-skip model the
		// countermeasures were never designed against.
		if d.Pipeline == "original" && d.Success[fault.ModelMultiSkip] == 0 {
			t.Errorf("%s/original: multi-skip found no vulnerabilities", d.Case)
		}
	}
}

func TestFigures(t *testing.T) {
	tab, data, err := Figures()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab)
	shape := core.PaperFigure5
	if data.ValidationBlocks != shape.ValidationPerEdge*shape.EdgesPerBranch {
		t.Errorf("validation blocks = %d, want %d", data.ValidationBlocks,
			shape.ValidationPerEdge*shape.EdgesPerBranch)
	}
	if data.FaultRespBlocks != shape.FaultRespPerEdge*shape.EdgesPerBranch {
		t.Errorf("fault-response blocks = %d, want %d", data.FaultRespBlocks,
			shape.FaultRespPerEdge*shape.EdgesPerBranch)
	}
	if data.BranchesProtected != 1 {
		t.Errorf("protected %d branches, want 1", data.BranchesProtected)
	}
}
