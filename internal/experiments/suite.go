package experiments

import (
	"fmt"
	"sync"

	"github.com/r2r/reinforce/internal/campaign"
	"github.com/r2r/reinforce/internal/cases"
	"github.com/r2r/reinforce/internal/fault"
	"github.com/r2r/reinforce/internal/harden"
)

// suite memoizes the expensive pipeline artifacts shared by several
// experiments. The paper's evaluation reuses the same building blocks
// over and over — the Hybrid rewrite of a case study is identical in
// Table V and every §V-C claim, the Faulter+Patcher result is shared by
// Table V and the duplication comparison, and the baseline campaign of
// a case is the same sweep the skip/bitflip/class claims each need —
// so regenerating the full evaluation does each unit of work exactly
// once per process.
//
// Baseline campaigns are run once under both fault models and served
// to single-model experiments through fault.Report.FilterModels, which
// is bit-identical to running the narrower campaign (campaigns
// enumerate each model independently).
type suite struct {
	mu       sync.Mutex
	hybrid   map[string]*harden.HybridResult
	hybridSW map[string]*harden.HybridResult
	fp       map[string]*harden.FaulterPatcherResult
	fpO2     map[string]*harden.FaulterPatcherResult
	baseline map[string]*fault.Report
}

// memo is the process-wide suite shared by every experiment entry
// point.
var memo = &suite{
	hybrid:   make(map[string]*harden.HybridResult),
	hybridSW: make(map[string]*harden.HybridResult),
	fp:       make(map[string]*harden.FaulterPatcherResult),
	fpO2:     make(map[string]*harden.FaulterPatcherResult),
	baseline: make(map[string]*fault.Report),
}

// campStore is the process-wide in-memory campaign store behind every
// experiment sweep: campaigns shared between experiments — a variant's
// skip sweep run both stand-alone and as an order-2 pruning stage —
// are content-addressed and execute once per process.
var campStore = func() *campaign.Store {
	st, err := campaign.NewStore("")
	if err != nil {
		panic(err)
	}
	return st
}()

// campOptions returns the standing experiment option set (the shared
// store plus a pair budget).
func campOptions(maxPairs int) campaign.Options {
	return campaign.Options{Store: campStore, MaxPairs: maxPairs}
}

func modelsKey(models []fault.Model) string {
	k := ""
	for _, m := range models {
		k += "|" + m.String()
	}
	return k
}

// hybridFor returns the (memoized) Hybrid rewrite of a case study.
func (s *suite) hybridFor(c *cases.Case) (*harden.HybridResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.hybrid[c.Name]; ok {
		return r, nil
	}
	r, err := harden.Hybrid(c.MustBuild(), harden.HybridOptions{})
	if err != nil {
		return nil, fmt.Errorf("%s hybrid: %w", c.Name, err)
	}
	if err := c.Check(r.Binary); err != nil {
		return nil, err
	}
	s.hybrid[c.Name] = r
	return r, nil
}

// fpFor returns the (memoized) Faulter+Patcher result of a case study
// hardened under the given fault models.
func (s *suite) fpFor(c *cases.Case, models []fault.Model) (*harden.FaulterPatcherResult, error) {
	key := c.Name + modelsKey(models)
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.fp[key]; ok {
		return r, nil
	}
	r, err := harden.FaulterPatcher(c.MustBuild(), harden.FaulterPatcherOptions{
		Good: c.Good, Bad: c.Bad, Models: models, StepLimit: stepLimit,
	})
	if err != nil {
		return nil, fmt.Errorf("%s faulter+patcher: %w", c.Name, err)
	}
	if err := c.Check(r.Binary); err != nil {
		return nil, err
	}
	s.fp[key] = r
	return r, nil
}

// hybridSWFor returns the (memoized) order-2 Hybrid rewrite — branch
// hardening plus the skip-window pass — of a case study.
func (s *suite) hybridSWFor(c *cases.Case) (*harden.HybridResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.hybridSW[c.Name]; ok {
		return r, nil
	}
	r, err := harden.Hybrid(c.MustBuild(), harden.HybridOptions{SkipWindow: true})
	if err != nil {
		return nil, fmt.Errorf("%s hybrid+skipwindow: %w", c.Name, err)
	}
	if err := c.Check(r.Binary); err != nil {
		return nil, err
	}
	s.hybridSW[c.Name] = r
	return r, nil
}

// fpOrder2For returns the (memoized) order-2 Faulter+Patcher result of
// a case study: the skip-model fixed point followed by the pair
// escalation stage.
func (s *suite) fpOrder2For(c *cases.Case) (*harden.FaulterPatcherResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.fpO2[c.Name]; ok {
		return r, nil
	}
	r, err := harden.FaulterPatcher(c.MustBuild(), harden.FaulterPatcherOptions{
		Good: c.Good, Bad: c.Bad, Models: []fault.Model{fault.ModelSkip},
		StepLimit: stepLimit, DedupSites: true,
		Order: 2, MaxPairs: beyond2MaxPairs,
	})
	if err != nil {
		return nil, fmt.Errorf("%s faulter+patcher order-2: %w", c.Name, err)
	}
	if err := c.Check(r.Binary); err != nil {
		return nil, err
	}
	s.fpO2[c.Name] = r
	return r, nil
}

// baselineFor returns the baseline (unhardened) campaign report of a
// case study restricted to the given models. The underlying sweep runs
// once per case under both models and is filtered per request.
func (s *suite) baselineFor(c *cases.Case, models []fault.Model) (*fault.Report, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	full, ok := s.baseline[c.Name]
	if !ok {
		var err error
		full, err = campaign.Run(fault.Campaign{
			Binary: c.MustBuild(), Good: c.Good, Bad: c.Bad,
			Models: bothModels, StepLimit: stepLimit,
		}, campOptions(0))
		if err != nil {
			return nil, fmt.Errorf("%s baseline campaign: %w", c.Name, err)
		}
		s.baseline[c.Name] = full
	}
	return full.FilterModels(models...), nil
}
