package experiments

import "testing"

// TestTableBeyond3 enforces the shape of the order-3 extension — the
// budget-capped triple campaigns that equivalence pruning makes
// tractable:
//
//   - every case/pipeline cell completes its order-3 campaign within
//     the triple budget and sweeps a nonzero triple space;
//   - the pruner actually participates: each cell reports pruning
//     accounting, and at least one cell answers injections without
//     simulating them;
//   - hardening monotonicity at order 3: the hardened pipelines never
//     show more successful triples than the unhardened baseline.
func TestTableBeyond3(t *testing.T) {
	if testing.Short() {
		t.Skip("runs order-1/2 pipelines plus order-3 campaigns on every variant; run without -short")
	}
	tab, data, err := TableBeyond3()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab)
	if len(data) != 6 {
		t.Fatalf("rows = %d, want 2 cases x 3 pipelines", len(data))
	}
	byKey := map[string]Beyond3Data{}
	pruned := 0
	for _, d := range data {
		byKey[d.Case+"/"+d.Pipeline] = d
		if d.Triples == 0 {
			t.Errorf("%s/%s: order-3 campaign enumerated no triples", d.Case, d.Pipeline)
		}
		if d.Triples > beyond3MaxTriples {
			t.Errorf("%s/%s: %d triples exceed the %d budget", d.Case, d.Pipeline, d.Triples, beyond3MaxTriples)
		}
		if d.Pruned+d.Simulated == 0 {
			t.Errorf("%s/%s: no pruning accounting", d.Case, d.Pipeline)
		}
		pruned += d.Pruned
	}
	if pruned == 0 {
		t.Error("pruner answered no injection across the whole table")
	}
	for _, c := range []string{"pincheck", "bootloader"} {
		base := byKey[c+"/original"]
		for _, p := range []string{"f+p", "hybrid+skipwindow"} {
			if d := byKey[c+"/"+p]; d.TripleSuccess > base.TripleSuccess {
				t.Errorf("%s/%s: %d successful triples, above the unhardened %d",
					c, p, d.TripleSuccess, base.TripleSuccess)
			}
		}
	}
}
