package harden

import (
	"testing"

	"github.com/r2r/reinforce/internal/cases"
	"github.com/r2r/reinforce/internal/fault"
)

// TestEvaluateOrder2: the order-2 evaluation runs the same pair
// campaign on both binaries; hardening against single skips must
// resolve the order-1 successes while the pair stage reports the
// residual multi-fault surface.
func TestEvaluateOrder2(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the Faulter+Patcher pipeline plus two order-2 campaigns; run without -short")
	}
	c := cases.Pincheck()
	bin := c.MustBuild()
	fp, err := FaulterPatcher(bin, FaulterPatcherOptions{
		Good: c.Good, Bad: c.Bad, Models: []fault.Model{fault.ModelSkip},
	})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := EvaluateOrder2(bin, fp.Binary, c.Good, c.Bad,
		[]fault.Model{fault.ModelSkip}, 32<<20, 500)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Before.Solo.Count(fault.OutcomeSuccess) == 0 {
		t.Error("no order-1 skip successes on the unprotected binary")
	}
	if after := ev.After.Solo.Count(fault.OutcomeSuccess); after != 0 {
		t.Errorf("%d order-1 skip successes remain after hardening", after)
	}
	if len(ev.Before.Pairs) == 0 || len(ev.After.Pairs) == 0 {
		t.Fatalf("pair stages empty: before %d, after %d", len(ev.Before.Pairs), len(ev.After.Pairs))
	}
	t.Logf("order-2 pairs: before %d/%d successful, after %d/%d successful",
		ev.PairSuccessBefore(), len(ev.Before.Pairs),
		ev.PairSuccessAfter(), len(ev.After.Pairs))
}

// TestHybridPincheckBehaviour: the Hybrid output must satisfy the case
// oracle.
func TestHybridPincheckBehaviour(t *testing.T) {
	c := cases.Pincheck()
	bin := c.MustBuild()
	res, err := Hybrid(bin, HybridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Check(res.Binary); err != nil {
		t.Fatal(err)
	}
	if res.Stats.BranchesProtected == 0 {
		t.Error("no branches protected")
	}
	if res.Overhead() <= 0 {
		t.Error("hybrid overhead not positive")
	}
	t.Logf("pincheck hybrid: %d branches, overhead %.1f%%",
		res.Stats.BranchesProtected, res.Overhead()*100)
}

func TestHybridBootloaderBehaviour(t *testing.T) {
	c := cases.Bootloader()
	bin := c.MustBuild()
	res, err := Hybrid(bin, HybridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Check(res.Binary); err != nil {
		t.Fatal(err)
	}
	t.Logf("bootloader hybrid: %d branches, overhead %.1f%%",
		res.Stats.BranchesProtected, res.Overhead()*100)
}

// TestHybridLiftLowerOnlyCost measures the §IV-D observation: the mere
// act of lifting and lowering adds overhead before any countermeasure.
func TestHybridLiftLowerOnlyCost(t *testing.T) {
	c := cases.Pincheck()
	bin := c.MustBuild()
	plain, err := Hybrid(bin, HybridOptions{SkipHardening: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Check(plain.Binary); err != nil {
		t.Fatal(err)
	}
	hardened, err := Hybrid(bin, HybridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Overhead() <= 0 {
		t.Error("lift+lower alone should cost something")
	}
	if hardened.Overhead() <= plain.Overhead() {
		t.Error("hardening should cost more than lift+lower alone")
	}
	t.Logf("lift+lower only: %.1f%%, with countermeasure: %.1f%%",
		plain.Overhead()*100, hardened.Overhead()*100)
}

// TestFaulterPatcherPipeline runs the other pipeline through the facade.
func TestFaulterPatcherPipeline(t *testing.T) {
	c := cases.Pincheck()
	bin := c.MustBuild()
	res, err := FaulterPatcher(bin, FaulterPatcherOptions{
		Good:   c.Good,
		Bad:    c.Bad,
		Models: []fault.Model{fault.ModelSkip},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged() {
		t.Errorf("skip model did not converge:\n%s", res.Summary())
	}
	if err := c.Check(res.Binary); err != nil {
		t.Fatal(err)
	}
}

// TestDuplicationBaseline checks the §V-C bound: blanket duplication
// costs much more than either targeted pipeline.
func TestDuplicationBaseline(t *testing.T) {
	c := cases.Pincheck()
	bin := c.MustBuild()
	dup, err := Duplication(bin)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Check(dup.Binary); err != nil {
		t.Fatalf("duplicated binary misbehaves: %v", err)
	}
	if dup.Patched == 0 {
		t.Fatal("nothing duplicated")
	}
	t.Logf("duplication: %d patched, %d skipped, overhead %.1f%%",
		dup.Patched, dup.Skipped, dup.Overhead()*100)
	if dup.Overhead() < 1.0 {
		t.Errorf("duplication overhead %.1f%% suspiciously low", dup.Overhead()*100)
	}
}

// TestEvaluateSkipResolved reproduces claim C1 end to end through the
// facade: the Hybrid pipeline resolves all instruction-skip
// vulnerabilities of pincheck.
func TestEvaluateSkipResolvedHybrid(t *testing.T) {
	c := cases.Pincheck()
	bin := c.MustBuild()
	res, err := Hybrid(bin, HybridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(bin, res.Binary, c.Good, c.Bad, []fault.Model{fault.ModelSkip}, 32<<20)
	if err != nil {
		t.Fatal(err)
	}
	if ev.SuccessBefore() == 0 {
		t.Fatal("baseline has no skip vulnerabilities")
	}
	if ev.SuccessAfter() != 0 {
		t.Errorf("hybrid left %d skip vulnerabilities (of %d): %v",
			ev.SuccessAfter(), ev.SuccessBefore(), ev.After.Successful())
	}
	if ev.Reduction() != 1.0 {
		t.Errorf("reduction = %.2f, want 1.0", ev.Reduction())
	}
}
