package harden

import (
	"math/rand"
	"testing"

	"github.com/r2r/reinforce/internal/cases"
	"github.com/r2r/reinforce/internal/elf"
	"github.com/r2r/reinforce/internal/emu"
	"github.com/r2r/reinforce/internal/fault"
)

// runPair executes original and hardened binaries on the same input and
// compares observables.
func runPair(t *testing.T, label string, orig, hardened *elf.Binary, input []byte) {
	t.Helper()
	r1, e1 := emu.New(orig, emu.Config{Stdin: input}).Run()
	r2, e2 := emu.New(hardened, emu.Config{Stdin: input, StepLimit: 32 << 20}).Run()
	if e1 != nil {
		t.Fatalf("%s: original crashed on %q: %v", label, input, e1)
	}
	if e2 != nil {
		t.Fatalf("%s: hardened crashed on %q: %v", label, input, e2)
	}
	if r1.ExitCode != r2.ExitCode || string(r1.Stdout) != string(r2.Stdout) {
		t.Errorf("%s: input %q: (%q,%d) vs (%q,%d)",
			label, input, r1.Stdout, r1.ExitCode, r2.Stdout, r2.ExitCode)
	}
	if r2.ExitCode == fault.DetectedExitCode {
		t.Errorf("%s: faulthandler fired on a clean run", label)
	}
}

// TestPipelinesEquivalentOnRandomInputs is the global functional-safety
// property: every hardening pipeline must preserve the program's
// observable behaviour on arbitrary inputs, not just the oracle pair.
func TestPipelinesEquivalentOnRandomInputs(t *testing.T) {
	r := rand.New(rand.NewSource(2021))

	for _, c := range cases.All() {
		bin := c.MustBuild()

		fp, err := FaulterPatcher(bin, FaulterPatcherOptions{Good: c.Good, Bad: c.Bad})
		if err != nil {
			t.Fatal(err)
		}
		hy, err := Hybrid(bin, HybridOptions{})
		if err != nil {
			t.Fatal(err)
		}
		dup, err := Duplication(bin)
		if err != nil {
			t.Fatal(err)
		}
		dupIR, err := DuplicationIR(bin)
		if err != nil {
			t.Fatal(err)
		}

		variants := []struct {
			name string
			bin  *elf.Binary
		}{
			{"faulter-patcher", fp.Binary},
			{"hybrid", hy.Binary},
			{"duplication", dup.Binary},
			{"duplication-ir", dupIR.Binary},
		}

		// Oracle inputs plus random ones (random inputs are almost
		// always rejections; near-miss inputs poke the comparison
		// boundary).
		inputs := [][]byte{c.Good, c.Bad, nil, c.Good[:len(c.Good)/2]}
		for i := 0; i < 12; i++ {
			in := make([]byte, len(c.Good))
			r.Read(in)
			inputs = append(inputs, in)
		}
		nearMiss := append([]byte(nil), c.Good...)
		nearMiss[r.Intn(len(nearMiss))] ^= 1 << r.Intn(8)
		inputs = append(inputs, nearMiss)

		for _, v := range variants {
			for _, in := range inputs {
				runPair(t, c.Name+"/"+v.name, bin, v.bin, in)
			}
		}
	}
}

// TestHardenedBinariesDetectNotGrant: for every pipeline, re-running the
// skip campaign on the hardened binary must produce zero successes; any
// fault either behaves like the bad input, crashes, or is detected.
func TestHardenedBinariesDetectNotGrant(t *testing.T) {
	models := []fault.Model{fault.ModelSkip}
	for _, c := range cases.All() {
		bin := c.MustBuild()
		fp, err := FaulterPatcher(bin, FaulterPatcherOptions{Good: c.Good, Bad: c.Bad, Models: models})
		if err != nil {
			t.Fatal(err)
		}
		hy, err := Hybrid(bin, HybridOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range []struct {
			name string
			bin  *elf.Binary
		}{
			{"faulter-patcher", fp.Binary},
			{"hybrid", hy.Binary},
		} {
			rep, err := fault.Run(fault.Campaign{
				Binary: v.bin, Good: c.Good, Bad: c.Bad, Models: models,
			})
			if err != nil {
				t.Fatal(err)
			}
			if n := len(rep.Successful()); n != 0 {
				t.Errorf("%s/%s: %d successful skip faults on hardened binary",
					c.Name, v.name, n)
			}
			if rep.Count(fault.OutcomeDetected) == 0 {
				t.Errorf("%s/%s: countermeasures never fired under attack", c.Name, v.name)
			}
		}
	}
}
