// Package harden wires the paper's two countermeasure-insertion
// pipelines end to end (§IV, Fig. 3):
//
//   - FaulterPatcher: the simulation-driven iterative rewriting loop
//     (reassembleable-disassembly route, lower half of Fig. 3), with
//     an order-2 pair-escalation mode (Options.Order);
//   - Hybrid: lift to IR, apply the conditional branch hardening pass
//     — and, with HybridOptions.SkipWindow, the order-2 skip-window
//     pass — then lower back to a binary (compiler-IR route, upper
//     half of Fig. 3);
//   - Duplication / DuplicationIR: the blanket duplication baselines.
//
// Evaluate runs the same fault campaign against any binary so the
// pipelines can be compared on equal terms; EvaluateOrder2 does the
// same for order-2 pair campaigns.
package harden

import (
	"fmt"

	"github.com/r2r/reinforce/internal/campaign"
	"github.com/r2r/reinforce/internal/elf"
	"github.com/r2r/reinforce/internal/fault"
	"github.com/r2r/reinforce/internal/ir"
	"github.com/r2r/reinforce/internal/lift"
	"github.com/r2r/reinforce/internal/lower"
	"github.com/r2r/reinforce/internal/passes"
	"github.com/r2r/reinforce/internal/patch"
)

// FaulterPatcherOptions re-exports the patch driver's options.
type FaulterPatcherOptions = patch.Options

// FaulterPatcherResult re-exports the patch driver's result.
type FaulterPatcherResult = patch.Result

// FaulterPatcher runs the iterative Faulter+Patcher pipeline (§IV-B).
func FaulterPatcher(bin *elf.Binary, opt FaulterPatcherOptions) (*FaulterPatcherResult, error) {
	return patch.Harden(bin, opt)
}

// HybridOptions configure the Hybrid pipeline.
type HybridOptions struct {
	// Checksum selects the h function of the branch hardening pass.
	Checksum passes.ChecksumKind

	// SkipHardening runs lift+lower without the countermeasure — the
	// "mere act of lifting the binary and translating it back" cost
	// the paper discusses in §IV-D.
	SkipHardening bool

	// SkipWindow additionally applies the multi-fault-resistant
	// SkipWindowHarden pass after branch hardening: spaced duplicate
	// computations, interleaved step counters, and two-stage validation
	// chains that survive order-2 fault pairs and sustained skip
	// windows (the `-harden order2` pipeline).
	SkipWindow bool

	// SkipWindowSize overrides the widest skip window the pass defends
	// against (0 = passes.DefaultSkipWindow).
	SkipWindowSize int

	// SkipCleanup disables the optimization pipelines (ablation).
	SkipCleanup bool

	// Lower passes through code generator ablation switches.
	Lower lower.Options
}

// HybridResult is the outcome of the Hybrid pipeline.
type HybridResult struct {
	Binary *elf.Binary
	Asm    string

	// Module is the hardened IR the binary was lowered from, kept so
	// the static verifier can prove countermeasure invariants on the
	// exact module that produced the artifact.
	Module *ir.Module

	Stats passes.HardenStats

	// SWStats reports the skip-window pass (zero unless
	// HybridOptions.SkipWindow was set).
	SWStats passes.SkipWindowStats

	OriginalCodeSize int
	IRInstsLifted    int // after cleanup, before hardening
	IRInstsHardened  int
}

// Overhead returns the code-size overhead fraction vs the original.
func (r *HybridResult) Overhead() float64 {
	if r.OriginalCodeSize == 0 {
		return 0
	}
	return float64(r.Binary.CodeSize()-r.OriginalCodeSize) / float64(r.OriginalCodeSize)
}

// Hybrid runs the full-translation pipeline (§IV-C): lift to IR, clean
// up, apply conditional branch hardening, clean up again
// (countermeasure-safely), and lower back to an executable.
func Hybrid(bin *elf.Binary, opt HybridOptions) (*HybridResult, error) {
	lr, err := lift.Lift(bin)
	if err != nil {
		return nil, fmt.Errorf("harden: %w", err)
	}
	if !opt.SkipCleanup {
		if err := passes.Run(lr.Module, passes.CleanupPipeline()...); err != nil {
			return nil, fmt.Errorf("harden: %w", err)
		}
	}
	res := &HybridResult{
		OriginalCodeSize: bin.CodeSize(),
		IRInstsLifted:    lr.Module.NumInsts(),
	}
	if !opt.SkipHardening {
		hp := passes.BranchHarden{Checksum: opt.Checksum, Stats: &res.Stats}
		if err := passes.Run(lr.Module, hp); err != nil {
			return nil, fmt.Errorf("harden: %w", err)
		}
		if opt.SkipWindow {
			sw := passes.SkipWindowHarden{Window: opt.SkipWindowSize, Stats: &res.SWStats}
			if err := passes.Run(lr.Module, sw); err != nil {
				return nil, fmt.Errorf("harden: %w", err)
			}
		}
		if !opt.SkipCleanup {
			if err := passes.Run(lr.Module, passes.PostHardenCleanup()...); err != nil {
				return nil, fmt.Errorf("harden: %w", err)
			}
		}
	}
	res.IRInstsHardened = lr.Module.NumInsts()
	res.Module = lr.Module

	low, err := lower.Lower(lr, opt.Lower)
	if err != nil {
		return nil, fmt.Errorf("harden: %w", err)
	}
	res.Binary = low.Binary
	res.Asm = low.Asm
	return res, nil
}

// DuplicationResult re-exports the blanket baseline result.
type DuplicationResult = patch.BlanketResult

// Duplication applies the blanket duplication baseline on the
// reassembly substrate (§V-C): every patchable instruction gets a
// Table-I-style duplicate-and-compare, vulnerable or not.
func Duplication(bin *elf.Binary) (*DuplicationResult, error) {
	return patch.HardenAll(bin, patch.StyleFallthrough)
}

// DuplicationIR runs the duplication baseline on the Hybrid substrate:
// lift, duplicate every computational IR instruction with per-block
// agreement checks, lower. Comparing its output size against the branch
// hardening pass's output isolates the countermeasure cost from the
// rewriter-intrinsic lift/lower overhead (paper §IV-D).
func DuplicationIR(bin *elf.Binary) (*HybridResult, error) {
	lr, err := lift.Lift(bin)
	if err != nil {
		return nil, fmt.Errorf("harden: %w", err)
	}
	if err := passes.Run(lr.Module, passes.CleanupPipeline()...); err != nil {
		return nil, fmt.Errorf("harden: %w", err)
	}
	res := &HybridResult{
		OriginalCodeSize: bin.CodeSize(),
		IRInstsLifted:    lr.Module.NumInsts(),
	}
	if err := passes.Run(lr.Module, passes.DuplicateAll{}); err != nil {
		return nil, fmt.Errorf("harden: %w", err)
	}
	if err := passes.Run(lr.Module, passes.PostHardenCleanup()...); err != nil {
		return nil, fmt.Errorf("harden: %w", err)
	}
	res.IRInstsHardened = lr.Module.NumInsts()
	res.Module = lr.Module
	low, err := lower.Lower(lr, lower.Options{})
	if err != nil {
		return nil, fmt.Errorf("harden: %w", err)
	}
	res.Binary = low.Binary
	res.Asm = low.Asm
	return res, nil
}

// Evaluation compares fault campaigns before and after hardening.
type Evaluation struct {
	Before *fault.Report
	After  *fault.Report
}

// SuccessBefore returns the count of successful faults pre-hardening.
func (e *Evaluation) SuccessBefore() int { return len(e.Before.Successful()) }

// SuccessAfter returns the count of successful faults post-hardening.
func (e *Evaluation) SuccessAfter() int { return len(e.After.Successful()) }

// SitesBefore returns distinct vulnerable sites pre-hardening.
func (e *Evaluation) SitesBefore() int { return len(e.Before.VulnerableSites()) }

// SitesAfter returns distinct vulnerable sites post-hardening.
func (e *Evaluation) SitesAfter() int { return len(e.After.VulnerableSites()) }

// Reduction returns the fraction of successful-fault points removed
// (1.0 = all resolved; the paper reports 1.0 for instruction skip and
// about 0.5 for single bit flips).
func (e *Evaluation) Reduction() float64 {
	if e.SuccessBefore() == 0 {
		return 0
	}
	return 1 - float64(e.SuccessAfter())/float64(e.SuccessBefore())
}

// Evaluate runs the same campaign on the original and hardened binaries
// through the batch engine. EvaluateAgainst avoids re-running the
// baseline when it is already known.
func Evaluate(original, hardened *elf.Binary, good, bad []byte, models []fault.Model, stepLimit uint64) (*Evaluation, error) {
	camp := func(b *elf.Binary) fault.Campaign {
		return fault.Campaign{
			Binary:    b,
			Good:      good,
			Bad:       bad,
			Models:    models,
			StepLimit: stepLimit,
		}
	}
	results := campaign.RunAll([]campaign.Job{
		{Name: "original", Campaign: camp(original)},
		{Name: "hardened", Campaign: camp(hardened)},
	}, campaign.Options{})
	for _, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("harden: %s campaign: %w", r.Name, r.Err)
		}
	}
	return &Evaluation{Before: results[0].Report, After: results[1].Report}, nil
}

// Order2Evaluation compares order-2 multi-fault campaigns before and
// after hardening — the evaluation that shows where single-fault
// countermeasures stop: a binary whose order-1 sweep comes back clean
// can still fall to a coordinated fault pair.
type Order2Evaluation struct {
	Before *campaign.Order2Report
	After  *campaign.Order2Report
}

// PairSuccessBefore returns the successful fault pairs pre-hardening.
func (e *Order2Evaluation) PairSuccessBefore() int {
	return e.Before.PairCount(fault.OutcomeSuccess)
}

// PairSuccessAfter returns the successful fault pairs post-hardening.
func (e *Order2Evaluation) PairSuccessAfter() int {
	return e.After.PairCount(fault.OutcomeSuccess)
}

// EvaluateOrder2 runs the same order-2 campaign (see campaign.RunOrder2)
// on the original and hardened binaries: identical models, step budget,
// and pair cap, so the two pair sweeps are comparable.
func EvaluateOrder2(original, hardened *elf.Binary, good, bad []byte, models []fault.Model, stepLimit uint64, maxPairs int) (*Order2Evaluation, error) {
	run := func(b *elf.Binary) (*campaign.Order2Report, error) {
		return campaign.RunOrder2(fault.Campaign{
			Binary:    b,
			Good:      good,
			Bad:       bad,
			Models:    models,
			StepLimit: stepLimit,
		}, campaign.Options{MaxPairs: maxPairs})
	}
	before, err := run(original)
	if err != nil {
		return nil, fmt.Errorf("harden: original order-2 campaign: %w", err)
	}
	after, err := run(hardened)
	if err != nil {
		return nil, fmt.Errorf("harden: hardened order-2 campaign: %w", err)
	}
	return &Order2Evaluation{Before: before, After: after}, nil
}

// EvaluateAgainst compares a memoized baseline report against a fresh
// campaign on the hardened binary — the batch-evaluation fast path when
// many hardened variants share one baseline.
func EvaluateAgainst(before *fault.Report, hardened *elf.Binary, good, bad []byte, models []fault.Model, stepLimit uint64) (*Evaluation, error) {
	after, err := campaign.Run(fault.Campaign{
		Binary:    hardened,
		Good:      good,
		Bad:       bad,
		Models:    models,
		StepLimit: stepLimit,
	}, campaign.Options{})
	if err != nil {
		return nil, fmt.Errorf("harden: hardened campaign: %w", err)
	}
	return &Evaluation{Before: before, After: after}, nil
}
