package harden

import (
	"testing"

	"github.com/r2r/reinforce/internal/campaign"
	"github.com/r2r/reinforce/internal/cases"
	"github.com/r2r/reinforce/internal/fault"
)

// TestHybridSkipWindowBehaviour: the order-2 Hybrid output (branch
// hardening + skip-window pass) must still satisfy the case oracle.
func TestHybridSkipWindowBehaviour(t *testing.T) {
	c := cases.Pincheck()
	bin := c.MustBuild()
	res, err := Hybrid(bin, HybridOptions{SkipWindow: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Check(res.Binary); err != nil {
		t.Fatal(err)
	}
	if res.SWStats.BlocksInstrumented == 0 || res.SWStats.Duplicated == 0 {
		t.Errorf("skip-window pass did nothing: %+v", res.SWStats)
	}
	plain, err := Hybrid(bin, HybridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Overhead() <= plain.Overhead() {
		t.Errorf("skip-window overhead %.1f%% not above plain hybrid %.1f%%",
			res.Overhead()*100, plain.Overhead()*100)
	}
	t.Logf("pincheck hybrid+skipwindow: overhead %.1f%% (plain %.1f%%), %+v",
		res.Overhead()*100, plain.Overhead()*100, res.SWStats)
}

// TestHybridSkipWindowOrder2 is the tentpole claim on the Hybrid
// substrate: the skip-window-hardened binary resists order-2 skip pairs
// and the sustained multi-instruction-skip model.
func TestHybridSkipWindowOrder2(t *testing.T) {
	if testing.Short() {
		t.Skip("runs hybrid pipelines plus order-2 campaigns; run without -short")
	}
	c := cases.Pincheck()
	bin := c.MustBuild()
	res, err := Hybrid(bin, HybridOptions{SkipWindow: true})
	if err != nil {
		t.Fatal(err)
	}
	camp := fault.Campaign{
		Binary: res.Binary, Good: c.Good, Bad: c.Bad,
		Models: []fault.Model{fault.ModelSkip}, StepLimit: 32 << 20, DedupSites: true,
	}
	o2, err := campaign.RunOrder2(camp, campaign.Options{MaxPairs: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if n := o2.Solo.Count(fault.OutcomeSuccess); n != 0 {
		t.Errorf("%d order-1 skip successes on skip-window hybrid", n)
	}
	if n := o2.PairCount(fault.OutcomeSuccess); n != 0 {
		t.Errorf("%d order-2 pair successes on skip-window hybrid (of %d pairs)",
			n, len(o2.Pairs))
	}

	camp.Models = []fault.Model{fault.ModelMultiSkip}
	ms, err := campaign.Run(camp, campaign.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n := ms.Count(fault.OutcomeSuccess); n != 0 {
		t.Errorf("%d multi-skip successes on skip-window hybrid (of %d)",
			n, len(ms.Injections))
	}
	t.Logf("pincheck hybrid+skipwindow: pairs %d success %d, multi-skip %d/%d",
		len(o2.Pairs), o2.PairCount(fault.OutcomeSuccess),
		ms.Count(fault.OutcomeSuccess), len(ms.Injections))
}
