package emit

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/r2r/reinforce/internal/cases"
	"github.com/r2r/reinforce/internal/elf"
	"github.com/r2r/reinforce/internal/harden"
)

var update = flag.Bool("update", false, "rewrite the golden emission images")

// fixture is a hand-assembled binary whose emitted image is pinned byte
// for byte by a golden file: any change to the writer's layout shows up
// as a golden diff, not a silent format drift.
func fixture() *elf.Binary {
	return &elf.Binary{
		Entry: 0x401000,
		Sections: []*elf.Section{
			{Name: ".text", Addr: 0x401000, Data: []byte{0x90, 0x90, 0xC3}, Flags: elf.FlagRead | elf.FlagExec},
			{Name: ".rodata", Addr: 0x402000, Data: []byte("golden\x00"), Flags: elf.FlagRead},
			{Name: ".data", Addr: 0x600000, Data: []byte{1, 2, 3, 4}, Flags: elf.FlagRead | elf.FlagWrite},
			{Name: ".bss", Addr: 0x601000, MemSize: 64, Flags: elf.FlagRead | elf.FlagWrite},
		},
	}
}

func checkGoldenBytes(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		i := 0
		for i < len(got) && i < len(want) && got[i] == want[i] {
			i++
		}
		t.Errorf("%s: emitted image differs from golden at byte %d (got %d bytes, want %d)",
			name, i, len(got), len(want))
	}
}

func TestImageGolden(t *testing.T) {
	img, err := Image(fixture())
	if err != nil {
		t.Fatal(err)
	}
	checkGoldenBytes(t, "fixture.elf", img)
}

// The emitted header region is also pinned field by field: the golden
// file catches drift, this catches a golden regenerated around a bug.
func TestImageHeader(t *testing.T) {
	img, err := Image(fixture())
	if err != nil {
		t.Fatal(err)
	}
	le := func(b []byte, n int) (v uint64) {
		for i := 0; i < n; i++ {
			v |= uint64(b[i]) << (8 * i)
		}
		return
	}
	if string(img[:4]) != elfMagic || img[4] != elfClass64 || img[5] != elfDataLSB {
		t.Fatalf("bad ident % X", img[:6])
	}
	checks := []struct {
		name string
		got  uint64
		want uint64
	}{
		{"e_type", le(img[16:], 2), etExec},
		{"e_machine", le(img[18:], 2), emX86_64},
		{"e_entry", le(img[24:], 8), 0x401000},
		{"e_phoff", le(img[32:], 8), ehSize},
		{"e_shoff", le(img[40:], 8), 0},
		{"e_phentsize", le(img[54:], 2), phentSize},
		{"e_phnum", le(img[56:], 2), 4},
		{"e_shentsize", le(img[58:], 2), 0},
		{"e_shnum", le(img[60:], 2), 0},
		{"e_shstrndx", le(img[62:], 2), 0},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %#x, want %#x", c.name, c.got, c.want)
		}
	}
	// Every program header: PT_LOAD, offset congruent to vaddr mod page.
	for i := 0; i < 4; i++ {
		p := img[ehSize+i*phentSize:]
		if le(p, 4) != ptLoad {
			t.Errorf("phdr %d type = %d, want PT_LOAD", i, le(p, 4))
		}
		off, vaddr := le(p[8:], 8), le(p[16:], 8)
		if off%pageSize != vaddr%pageSize {
			t.Errorf("phdr %d: offset %#x not congruent to vaddr %#x", i, off, vaddr)
		}
		if end := off + le(p[32:], 8); end > uint64(len(img)) {
			t.Errorf("phdr %d extends past image: %#x > %#x", i, end, len(img))
		}
		if le(p[32:], 8) > le(p[40:], 8) {
			t.Errorf("phdr %d: p_filesz > p_memsz", i)
		}
	}
}

// Emit→Load→emit must be a byte-identical fixed point for every
// registered case study, and the loaded binary's digest must be stable
// across repeated round trips: the digest is the content address the
// campaign store keys emitted artifacts under.
func TestFixedPointCatalog(t *testing.T) {
	for _, c := range cases.Corpus() {
		bin, err := c.Build()
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		img1, re, err := RoundTrip(bin)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if err := re.Validate(); err != nil {
			t.Errorf("%s: loaded image fails Validate: %v", c.Name, err)
		}
		img2, re2, err := RoundTrip(re)
		if err != nil {
			t.Fatalf("%s: second round trip: %v", c.Name, err)
		}
		if !bytes.Equal(img1, img2) {
			t.Errorf("%s: round trip not a fixed point across iterations", c.Name)
		}
		if re.Digest() != re2.Digest() {
			t.Errorf("%s: digest unstable across round trips: %s vs %s",
				c.Name, re.Digest(), re2.Digest())
		}
	}
}

// The hardened outputs of the hybrid pipeline — the binaries `-emit`
// actually writes — must round-trip too.
func TestFixedPointHardened(t *testing.T) {
	if testing.Short() {
		t.Skip("hardening pipeline in -short")
	}
	for _, c := range []*cases.Case{cases.Pincheck(), cases.Bootloader()} {
		bin, err := c.Build()
		if err != nil {
			t.Fatal(err)
		}
		res, err := harden.Hybrid(bin, harden.HybridOptions{})
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if _, _, err := RoundTrip(res.Binary); err != nil {
			t.Errorf("%s hardened: %v", c.Name, err)
		}
	}
}

func TestImageDropsEmptySections(t *testing.T) {
	b := fixture()
	b.Sections = append(b.Sections, &elf.Section{
		Name: ".empty", Addr: 0x700000, Flags: elf.FlagRead,
	})
	img, err := Image(b)
	if err != nil {
		t.Fatal(err)
	}
	re, err := elf.Load(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(re.Sections) != 4 {
		t.Errorf("sections after reload = %d, want 4 (zero-size section must be dropped)", len(re.Sections))
	}
}

func TestImageErrors(t *testing.T) {
	// Invalid binary: overlap rejected by Validate before any bytes move.
	b := fixture()
	b.Sections[1].Addr = b.Sections[0].Addr + 1
	if _, err := Image(b); err == nil {
		t.Error("Image accepted overlapping sections")
	}

	// No loadable bytes at all.
	empty := &elf.Binary{Entry: 0x401000}
	if _, err := Image(empty); err == nil {
		t.Error("Image accepted a binary with no sections")
	}
}

func TestImageDeterministic(t *testing.T) {
	a, err := Image(fixture())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Image(fixture())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("Image not deterministic")
	}
}

func TestWriteFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.elf")
	digest, err := WriteFile(path, fixture())
	if err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm()&0o100 == 0 {
		t.Errorf("emitted file not executable: %v", info.Mode())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	re, err := elf.Load(data)
	if err != nil {
		t.Fatal(err)
	}
	if re.Digest() != digest {
		t.Errorf("WriteFile digest %s does not match reloaded digest %s", digest, re.Digest())
	}
}
