package emit

import (
	"bytes"
	"testing"

	"github.com/r2r/reinforce/internal/elf"
)

// FuzzEmitRoundTrip drives the writer with fuzz-shaped binaries: the
// input bytes are split into text and data payloads plus a bss size,
// and every binary that Validate accepts must survive emit→load→emit as
// a byte-identical fixed point with a stable digest. The fuzzer hunts
// for payload shapes where layout, padding, or reconstruction lose
// information.
func FuzzEmitRoundTrip(f *testing.F) {
	f.Add([]byte{0xC3}, []byte("hello"), uint16(64))
	f.Add([]byte{0x90, 0x90, 0xC3}, []byte{}, uint16(0))
	f.Add(bytes.Repeat([]byte{0x90}, 4096), []byte{0xFF}, uint16(1))
	f.Add([]byte{0xC3}, bytes.Repeat([]byte{0xAA}, 5000), uint16(9999))
	f.Fuzz(func(t *testing.T, text, data []byte, bss uint16) {
		if len(text) == 0 || len(text) > 1<<16 || len(data) > 1<<16 {
			t.Skip()
		}
		b := &elf.Binary{
			Entry: 0x401000,
			Sections: []*elf.Section{
				{Name: ".text", Addr: 0x401000, Data: text, Flags: elf.FlagRead | elf.FlagExec},
			},
		}
		if len(data) > 0 {
			b.Sections = append(b.Sections, &elf.Section{
				Name: ".data", Addr: 0x600000, Data: data, Flags: elf.FlagRead | elf.FlagWrite,
			})
		}
		if bss > 0 {
			b.Sections = append(b.Sections, &elf.Section{
				Name: ".bss", Addr: 0x700000, MemSize: uint64(bss), Flags: elf.FlagRead | elf.FlagWrite,
			})
		}
		if b.Validate() != nil {
			t.Skip()
		}
		img, re, err := RoundTrip(b)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !bytes.Equal(re.Text().Data, text) {
			t.Fatal("text bytes corrupted by emit round trip")
		}
		if len(data) > 0 && !bytes.Equal(re.Section(".data").Data, data) {
			t.Fatal("data bytes corrupted by emit round trip")
		}
		img2, re2, err := RoundTrip(re)
		if err != nil {
			t.Fatalf("second round trip failed: %v", err)
		}
		if !bytes.Equal(img, img2) || re.Digest() != re2.Digest() {
			t.Fatal("emit round trip is not a stable fixed point")
		}
	})
}
