// Package emit writes standalone, program-header-only static x86-64
// ELF executables: the final stage of the hardening pipelines, turning
// a rewritten Binary back into an artifact the operating system can run
// directly (`r2r hybrid -emit`, `r2r patch -emit`).
//
// The writer is deliberately minimal — an ELF header, one PT_LOAD
// program header per section, and the raw segment bytes at offsets
// congruent to their virtual addresses modulo the page size. No section
// headers, no symbol table, no string tables: nothing the loader does
// not need. This is the classic direct-emission shape (a hand-rolled
// assembler writing ELF headers straight to disk), and it is exactly
// what the paper's pipeline promises: a *rewritten binary*, not just
// hardened IR.
//
// Emitted images round-trip through elf.Load: section names and symbols
// are not serialized, so Load reconstructs sections from the PT_LOAD
// table with canonical permission-derived names (.text/.rodata/.data/
// .bss). The round trip is a fixed point — Image(Load(Image(b))) ==
// Image(b) byte for byte, and the loaded Binary's Digest is stable —
// so the campaign engine, the content-addressed store, and both
// hardening pipelines run on emitted binaries unchanged.
package emit

import (
	"encoding/binary"
	"fmt"
	"os"
	"sort"

	"github.com/r2r/reinforce/internal/elf"
)

// ELF constants the writer needs (the elf package keeps its own copies;
// these are fixed ABI values, not tunables).
const (
	elfMagic   = "\x7fELF"
	elfClass64 = 2
	elfDataLSB = 1
	elfVersion = 1
	etExec     = 2
	emX86_64   = 62
	ptLoad     = 1
	ehSize     = 64
	phentSize  = 56
	pageSize   = 0x1000
)

// Image serializes the binary as a minimal standalone executable. The
// binary must Validate; sections with zero in-memory size are dropped
// (a zero-size PT_LOAD maps nothing and would not survive the
// Load round trip). Layout is deterministic: segments are written in
// ascending virtual-address order, each at the lowest file offset
// congruent to its address modulo the page size.
func Image(b *elf.Binary) ([]byte, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	var secs []*elf.Section
	for _, s := range b.Sections {
		if s.Size() > 0 {
			secs = append(secs, s)
		}
	}
	if len(secs) == 0 {
		return nil, fmt.Errorf("emit: binary has no loadable sections")
	}
	sort.Slice(secs, func(i, j int) bool { return secs[i].Addr < secs[j].Addr })

	le := binary.LittleEndian
	var out []byte
	put16 := func(v uint16) { out = le.AppendUint16(out, v) }
	put32 := func(v uint32) { out = le.AppendUint32(out, v) }
	put64 := func(v uint64) { out = le.AppendUint64(out, v) }

	// ELF header: e_shoff/e_shnum/e_shstrndx all zero — there are no
	// section headers to point at.
	out = append(out, elfMagic...)
	out = append(out, elfClass64, elfDataLSB, elfVersion, 0)
	out = append(out, make([]byte, 8)...) // EI_PAD
	put16(etExec)
	put16(emX86_64)
	put32(elfVersion)
	put64(b.Entry)
	put64(ehSize) // e_phoff: program headers follow immediately
	put64(0)      // e_shoff
	put32(0)      // e_flags
	put16(ehSize)
	put16(phentSize)
	put16(uint16(len(secs)))
	put16(0) // e_shentsize
	put16(0) // e_shnum
	put16(0) // e_shstrndx

	// Program headers, patched after layout.
	phPos := len(out)
	out = append(out, make([]byte, len(secs)*phentSize)...)

	// Segment bytes at offsets congruent to vaddr mod page size.
	offsets := make([]uint64, len(secs))
	for i, s := range secs {
		off := uint64(len(out))
		want := s.Addr % pageSize
		if off%pageSize != want {
			padBy := (want - off%pageSize + pageSize) % pageSize
			out = append(out, make([]byte, padBy)...)
		}
		offsets[i] = uint64(len(out))
		out = append(out, s.Data...)
	}

	for i, s := range secs {
		p := phPos + i*phentSize
		var flags uint32
		if s.Flags&elf.FlagRead != 0 {
			flags |= 4 // PF_R
		}
		if s.Flags&elf.FlagWrite != 0 {
			flags |= 2 // PF_W
		}
		if s.Flags&elf.FlagExec != 0 {
			flags |= 1 // PF_X
		}
		le.PutUint32(out[p:], ptLoad)
		le.PutUint32(out[p+4:], flags)
		le.PutUint64(out[p+8:], offsets[i])
		le.PutUint64(out[p+16:], s.Addr) // p_vaddr
		le.PutUint64(out[p+24:], s.Addr) // p_paddr
		le.PutUint64(out[p+32:], uint64(len(s.Data)))
		le.PutUint64(out[p+40:], s.Size())
		le.PutUint64(out[p+48:], pageSize)
	}
	return out, nil
}

// RoundTrip emits the binary, re-loads the image through elf.Load, and
// proves the emit→load→emit fixed point before returning the image and
// the loaded Binary (whose Digest is the stable content address of the
// emitted artifact). This is the integrity check `-emit` runs on every
// write: an image that does not survive its own round trip never
// reaches disk.
func RoundTrip(b *elf.Binary) ([]byte, *elf.Binary, error) {
	img, err := Image(b)
	if err != nil {
		return nil, nil, err
	}
	re, err := elf.Load(img)
	if err != nil {
		return nil, nil, fmt.Errorf("emit: emitted image does not load back: %w", err)
	}
	img2, err := Image(re)
	if err != nil {
		return nil, nil, fmt.Errorf("emit: re-emitting the loaded image failed: %w", err)
	}
	if string(img) != string(img2) {
		return nil, nil, fmt.Errorf("emit: emit→load→emit is not a fixed point (%d vs %d bytes)", len(img), len(img2))
	}
	return img, re, nil
}

// WriteFile emits the binary to path as an executable file, after the
// RoundTrip integrity check. It returns the loaded Binary's digest —
// the content address campaign stores will key the artifact under.
func WriteFile(path string, b *elf.Binary) (digest string, err error) {
	img, re, err := RoundTrip(b)
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, img, 0o755); err != nil {
		return "", err
	}
	return re.Digest(), nil
}
