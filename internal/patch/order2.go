// Order-2-aware protection patterns: the StyleOrder2 variants of the
// paper's Tables I–III. The as-printed patterns verify once, so a pair
// of single-instruction skips — one on the protected computation, one
// on the verification branch — defeats them (the residual surface the
// `beyond` experiments measure). The order-2 variants chain *two*
// independent verifications, re-deriving the checked state between them
// (a second compare, a flag reload, a re-executed authoritative
// instruction), so any two coordinated skips leave at least one check
// standing: defeating them needs an order-3 attack.
package patch

import (
	"fmt"
	"math"

	"github.com/r2r/reinforce/internal/bir"
	"github.com/r2r/reinforce/internal/isa"
)

// order2PatternFor dispatches a site to its order-2-aware pattern.
func order2PatternFor(p *bir.Program, site bir.Inst, followLabel string) ([]*bir.Block, error) {
	switch site.I.Op {
	case isa.MOV, isa.MOVZX, isa.MOVSX, isa.LEA:
		return movPatternOrder2(p, site, followLabel)
	case isa.CMP, isa.TEST:
		return cmpPatternOrder2(p, site)
	case isa.JCC:
		return jccPatternOrder2(p, site, followLabel)
	default:
		if blocks, err := aluPatternOrder2(p, site); err == nil {
			return blocks, nil
		}
		return nil, fmt.Errorf("%w: %s (order 2)", ErrUnpatchable, site.I.Mnemonic())
	}
}

// movPatternOrder2 doubles the Table I verification, re-executing the
// comparison itself between the checks:
//
//	mov D, S
//	cmp D, S
//	jne faulthandler     ; check 1
//	cmp D, S             ; re-derived, not just re-tested
//	jne faulthandler     ; check 2
//
// Skipping the mov plus either check still fails the other, because
// each check's flags come from its own compare. The scratch-register
// flavour (movzx/movsx/lea) recomputes into the scratch twice for the
// same reason.
func movPatternOrder2(p *bir.Program, site bir.Inst, happyLabel string) ([]*bir.Block, error) {
	in := site.I
	switch in.Op {
	case isa.MOV:
		if in.Src.Kind == isa.KindImm && (in.Src.Imm < math.MinInt32 || in.Src.Imm > math.MaxInt32) {
			return nil, fmt.Errorf("%w: mov with 64-bit immediate", ErrUnpatchable)
		}
		if aliasesDst(in) {
			return nil, fmt.Errorf("%w: destination aliases source address", ErrUnpatchable)
		}
		cmp := isa.NewInst(isa.CMP, in.Dst, in.Src)
		insts := []bir.Inst{
			{I: in, Protected: true, Order2: true, DataTarget: site.DataTarget, OrigAddr: site.OrigAddr},
			order2(protData(cmp, site.DataTarget)),
			order2(protBranch(isa.NewJcc(isa.CondNE, 0), FaulthandlerLabel)),
			order2(protData(cmp, site.DataTarget)),
			order2(protBranch(isa.NewJcc(isa.CondNE, 0), FaulthandlerLabel)),
		}
		return []*bir.Block{{Insts: insts}}, nil
	case isa.MOVZX, isa.MOVSX, isa.LEA:
		return movScratchOrder2(p, site)
	default:
		return nil, fmt.Errorf("%w: %s is not a mov-class op", ErrUnpatchable, in.Op)
	}
}

// order2 marks a protected instruction as part of an order-2 pattern.
func order2(in bir.Inst) bir.Inst {
	in.Order2 = true
	return in
}

// movScratchOrder2 is the scratch-register mov variant with two
// independent recompute-and-compare rounds, built on the same
// scaffold as the order-1 pattern.
func movScratchOrder2(p *bir.Program, site bir.Inst) ([]*bir.Block, error) {
	in := site.I
	scr, redo, dstFull, scrOp, err := movScratchScaffold(in)
	if err != nil {
		return nil, err
	}

	insts := []bir.Inst{
		{I: in, Protected: true, Order2: true, DataTarget: site.DataTarget, OrigAddr: site.OrigAddr},
		order2(prot(isa.NewInst(isa.PUSH, isa.R(scr)))),
		order2(protData(redo, site.DataTarget)),
		order2(prot(isa.NewInst(isa.CMP, dstFull, scrOp))),
		order2(protBranch(isa.NewJcc(isa.CondNE, 0), FaulthandlerLabel)),
		order2(protData(redo, site.DataTarget)), // recompute again
		order2(prot(isa.NewInst(isa.CMP, dstFull, scrOp))),
		order2(protBranch(isa.NewJcc(isa.CondNE, 0), FaulthandlerLabel)),
		order2(prot(isa.NewInst(isa.POP, isa.R(scr)))),
	}
	return []*bir.Block{{Insts: insts}}, nil
}

// cmpPatternOrder2 extends the Table II fallthrough pattern with a
// third comparison execution verified against the first flags snapshot,
// and re-executes the authoritative final comparison twice:
//
//	lea rsp, [rsp-128]
//	cmp X, Y               ; #1 -> flags1 (saved)
//	push SCR
//	pushfq
//	cmp X, Y               ; #2
//	pushfq / pop SCR       ; SCR = flags2
//	cmp SCR, [rsp]
//	jne faulthandler       ; check 1: flags2 == flags1
//	cmp X, Y               ; #3
//	pushfq / pop SCR       ; SCR = flags3
//	cmp SCR, [rsp]
//	jne faulthandler       ; check 2: flags3 == flags1
//	popfq / pop SCR / lea rsp, [rsp+128]
//	cmp X, Y               ; authoritative
//	cmp X, Y               ; authoritative, doubled
//
// The doubled authoritative tail closes the order-2 hole of the
// single-check pattern: skipping the popfq together with the (single)
// final compare would hand the consumer the verification compare's
// "equal" flags. Here any two skips still leave the consumer with
// correctly derived flags.
func cmpPatternOrder2(p *bir.Program, site bir.Inst) ([]*bir.Block, error) {
	in := site.I
	if in.Op != isa.CMP && in.Op != isa.TEST {
		return nil, fmt.Errorf("%w: %s is not a compare", ErrUnpatchable, in.Op)
	}
	scr, err := pickScratch(in)
	if err != nil {
		return nil, err
	}
	adjusted := func(delta int32) (isa.Inst, error) {
		c := in
		d, err := adjustRSP(c.Dst, delta)
		if err != nil {
			return c, err
		}
		s, err := adjustRSP(c.Src, delta)
		if err != nil {
			return c, err
		}
		c.Dst, c.Src = d, s
		return c, nil
	}
	cmp1, err := adjusted(redZone)
	if err != nil {
		return nil, err
	}
	cmp2, err := adjusted(redZone + 16) // after push SCR + pushfq
	if err != nil {
		return nil, err
	}

	insts := []bir.Inst{
		order2(prot(isa.NewInst(isa.LEA, isa.R(isa.RSP), isa.M(isa.RSP, -redZone)))),
		order2(protData(cmp1, site.DataTarget)),
		order2(prot(isa.NewInst(isa.PUSH, isa.R(scr)))),
		order2(prot(isa.NewInst(isa.PUSHFQ))),
		order2(protData(cmp2, site.DataTarget)),
		order2(prot(isa.NewInst(isa.PUSHFQ))),
		order2(prot(isa.NewInst(isa.POP, isa.R(scr)))),
		order2(prot(isa.NewInst(isa.CMP, isa.R(scr), isa.M(isa.RSP, 0)))),
		order2(protBranch(isa.NewJcc(isa.CondNE, 0), FaulthandlerLabel)),
		order2(protData(cmp2, site.DataTarget)), // third execution
		order2(prot(isa.NewInst(isa.PUSHFQ))),
		order2(prot(isa.NewInst(isa.POP, isa.R(scr)))),
		order2(prot(isa.NewInst(isa.CMP, isa.R(scr), isa.M(isa.RSP, 0)))),
		order2(protBranch(isa.NewJcc(isa.CondNE, 0), FaulthandlerLabel)),
		order2(prot(isa.NewInst(isa.POPFQ))),
		order2(prot(isa.NewInst(isa.POP, isa.R(scr)))),
		order2(prot(isa.NewInst(isa.LEA, isa.R(isa.RSP), isa.M(isa.RSP, redZone)))),
		order2(protData(in, site.DataTarget)),
		order2(protData(in, site.DataTarget)),
	}
	return []*bir.Block{{Insts: insts}}, nil
}

// jccPatternOrder2 is the Table III fallthrough pattern with the
// SETcc verification performed twice per side, reloading the saved
// original flags between the checks (the first check's compare
// clobbers them):
//
//	j!cc newfallthrough
//	; taken side
//	lea rsp,[rsp-128]; push rcx; pushfq
//	setcc cl; cmp cl,1; jne faulthandler     ; check 1
//	popfq; pushfq                            ; reload original flags
//	setcc cl; cmp cl,1; jne faulthandler     ; check 2
//	popfq; pop rcx; lea rsp,[rsp+128]
//	jcc target
//	call faulthandler
//	newfallthrough:                          ; same, expecting 0
//	...
//	jcc faulthandler
func jccPatternOrder2(p *bir.Program, site bir.Inst, fallLabel string) ([]*bir.Block, error) {
	in := site.I
	if in.Op != isa.JCC {
		return nil, fmt.Errorf("%w: %s is not a conditional jump", ErrUnpatchable, in.Op)
	}
	cond := in.Cond
	target := site.TargetLabel

	verify2 := func(expect int64) []bir.Inst {
		return []bir.Inst{
			order2(prot(isa.NewInst(isa.LEA, isa.R(isa.RSP), isa.M(isa.RSP, -redZone)))),
			order2(prot(isa.NewInst(isa.PUSH, isa.R(isa.RCX)))),
			order2(prot(isa.NewInst(isa.PUSHFQ))),
			order2(prot(isa.NewSetcc(cond, isa.RCX))),
			order2(prot(isa.NewInst(isa.CMP, isa.Rb(isa.RCX), isa.Imm8(expect)))),
			order2(protBranch(isa.NewJcc(isa.CondNE, 0), FaulthandlerLabel)),
			order2(prot(isa.NewInst(isa.POPFQ))), // reload the original flags
			order2(prot(isa.NewInst(isa.PUSHFQ))),
			order2(prot(isa.NewSetcc(cond, isa.RCX))),
			order2(prot(isa.NewInst(isa.CMP, isa.Rb(isa.RCX), isa.Imm8(expect)))),
			order2(protBranch(isa.NewJcc(isa.CondNE, 0), FaulthandlerLabel)),
		}
	}
	unwind := []bir.Inst{
		order2(prot(isa.NewInst(isa.POPFQ))),
		order2(prot(isa.NewInst(isa.POP, isa.R(isa.RCX)))),
		order2(prot(isa.NewInst(isa.LEA, isa.R(isa.RSP), isa.M(isa.RSP, redZone)))),
	}

	nft := p.NewLabel("newfallthrough")
	jtSide := &bir.Block{Insts: append([]bir.Inst{
		order2(protBranch(isa.NewJcc(cond.Inverse(), 0), nft)),
	}, append(verify2(1), append(append([]bir.Inst{}, unwind...),
		order2(protBranch(isa.NewJcc(cond, 0), target)),
		order2(callFaulthandler()),
	)...)...)}
	ftSide := &bir.Block{Label: nft, Insts: append(verify2(0), append(append([]bir.Inst{}, unwind...),
		order2(protBranch(isa.NewJcc(cond, 0), FaulthandlerLabel)),
	)...)}
	_ = fallLabel // the driver lays the continuation directly after
	return []*bir.Block{jtSide, ftSide}, nil
}

// aluPatternOrder2 is the ALU duplication scheme with the result
// comparison verified twice (same operands; the second compare
// re-derives the flags, so skipping the first compare or its branch is
// caught by the second):
//
//	push SCR
//	mov SCR, D ; op SCR, S    ; expected result
//	push SCR
//	mov SCR, D ; op SCR, S    ; recomputed result
//	cmp SCR, [rsp]
//	jne faulthandler          ; check 1
//	cmp SCR, [rsp]
//	jne faulthandler          ; check 2
//	lea rsp,[rsp+8] ; pop SCR
//	op D, S                   ; authoritative update
func aluPatternOrder2(p *bir.Program, site bir.Inst) ([]*bir.Block, error) {
	in := site.I
	scr, mov1, op1, mov2, op2, err := aluScaffold(in)
	if err != nil {
		return nil, err
	}

	insts := []bir.Inst{
		order2(prot(isa.NewInst(isa.PUSH, isa.R(scr)))),
		order2(protData(mov1, site.DataTarget)),
		order2(protData(op1, site.DataTarget)),
		order2(prot(isa.NewInst(isa.PUSH, isa.R(scr)))),
		order2(protData(mov2, site.DataTarget)),
		order2(protData(op2, site.DataTarget)),
		order2(prot(isa.NewInst(isa.CMP, isa.R(scr), isa.M(isa.RSP, 0)))),
		order2(protBranch(isa.NewJcc(isa.CondNE, 0), FaulthandlerLabel)),
		order2(prot(isa.NewInst(isa.CMP, isa.R(scr), isa.M(isa.RSP, 0)))),
		order2(protBranch(isa.NewJcc(isa.CondNE, 0), FaulthandlerLabel)),
		order2(prot(isa.NewInst(isa.LEA, isa.R(isa.RSP), isa.M(isa.RSP, 8)))),
		order2(prot(isa.NewInst(isa.POP, isa.R(scr)))),
		{I: in, Protected: true, Order2: true, DataTarget: site.DataTarget, OrigAddr: site.OrigAddr},
	}
	return []*bir.Block{{Insts: insts}}, nil
}
