package patch

import (
	"testing"

	"github.com/r2r/reinforce/internal/cases"
	"github.com/r2r/reinforce/internal/fault"
)

// order2Harden runs the full order-2 driver on a case study.
func order2Harden(t *testing.T, c *cases.Case) *Result {
	t.Helper()
	res, err := Harden(c.MustBuild(), Options{
		Good: c.Good, Bad: c.Bad, Models: []fault.Model{fault.ModelSkip},
		StepLimit: 32 << 20, DedupSites: true,
		Order: 2, MaxPairs: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestOrder2DriverConverges: the escalation loop must drive the pair
// success count to zero on both case studies while preserving the
// oracle behaviour — the tentpole claim on the reassembly substrate.
func TestOrder2DriverConverges(t *testing.T) {
	for _, c := range cases.All() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			res := order2Harden(t, c)
			if err := c.Check(res.Binary); err != nil {
				t.Fatal(err)
			}
			if !res.Converged() {
				t.Errorf("order-1 faults remain:\n%s", res.Summary())
			}
			if len(res.PairIterations) == 0 {
				t.Fatal("pair stage never ran")
			}
			if !res.PairConverged() {
				t.Errorf("successful pairs remain:\n%s", res.Summary())
			}
			// The first pair round must have found the order-2 residual
			// the single-fault patterns leave (otherwise the escalation
			// stage is vacuous and this test proves nothing).
			if res.PairIterations[0].Successes == 0 {
				t.Error("no successful pairs on the order-1-hardened binary; escalation untested")
			}
			last := res.PairIterations[len(res.PairIterations)-1]
			if last.Successes != 0 {
				t.Errorf("last pair iteration still has %d successes", last.Successes)
			}
			t.Logf("%s: %s", c.Name, res.Summary())
		})
	}
}

// TestOrder2DriverEscalatesInPlace: escalated sites carry the Order2
// marker so a later round cannot patch them again.
func TestOrder2DriverEscalates(t *testing.T) {
	res := order2Harden(t, cases.Pincheck())
	order2Insts := 0
	for _, b := range res.Program.Blocks {
		for _, in := range b.Insts {
			if in.Order2 {
				order2Insts++
			}
		}
	}
	if order2Insts == 0 {
		t.Error("no Order2-marked instructions in the final program")
	}
	escalated := 0
	for _, it := range res.PairIterations {
		escalated += it.Escalated
	}
	if escalated == 0 {
		t.Error("driver never escalated a site")
	}
}

// TestOrder2BlanketBehaviour: the StyleOrder2 patterns, applied
// blanket-style to every instruction of both case studies, must
// preserve the oracle (this exercises every order-2 pattern on real
// code, not just the sites the driver picked).
func TestOrder2BlanketBehaviour(t *testing.T) {
	for _, c := range cases.All() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			res, err := HardenAll(c.MustBuild(), StyleOrder2)
			if err != nil {
				t.Fatal(err)
			}
			if res.Patched == 0 {
				t.Fatal("nothing patched")
			}
			if err := c.Check(res.Binary); err != nil {
				t.Errorf("order-2 blanket binary misbehaves: %v", err)
			}
			t.Logf("%s: %d patched, %d skipped, overhead %.1f%%",
				c.Name, res.Patched, res.Skipped, res.Overhead()*100)
		})
	}
}

// TestOrder2PatternDoubleChecks: every order-2 pattern must emit at
// least two detection branches to the fault handler (the property that
// makes a single pair insufficient).
func TestOrder2PatternDoubleChecks(t *testing.T) {
	c := cases.Pincheck()
	res := order2Harden(t, c)
	// Find a block containing Order2 instructions and count its
	// detection branches.
	for _, b := range res.Program.Blocks {
		checks := 0
		order2 := false
		for _, in := range b.Insts {
			if in.Order2 {
				order2 = true
			}
			if in.Order2 && in.TargetLabel == FaulthandlerLabel {
				checks++
			}
		}
		if order2 && checks > 0 && checks < 2 {
			t.Errorf("block %s: order-2 pattern with only %d detection branch(es)", b.Label, checks)
		}
	}
}
