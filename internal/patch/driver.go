package patch

import (
	"errors"
	"fmt"
	"strings"

	"github.com/r2r/reinforce/internal/bir"
	"github.com/r2r/reinforce/internal/elf"
	"github.com/r2r/reinforce/internal/fault"
)

// Options configure the Faulter+Patcher loop.
type Options struct {
	Good []byte // input the program accepts
	Bad  []byte // input the program rejects

	Models     []fault.Model // default: skip + bitflip
	StepLimit  uint64
	Workers    int
	DedupSites bool

	// MaxIterations bounds the rinse-and-repeat loop (§IV-B3).
	MaxIterations int // default 10

	// Style selects the pattern flavour (StyleFallthrough default).
	Style Style

	// Log receives one line per iteration when non-nil.
	Log func(string)
}

// IterationStats records one faulter+patcher round.
type IterationStats struct {
	Iteration  int
	Injections int
	Successes  int // successful faults (vulnerability instances)
	Sites      int // distinct vulnerable instruction addresses
	Patched    int // sites replaced with hardened patterns this round
	Residual   int // vulnerable sites that could not be (re)patched
	Detected   int
	CodeSize   int // .text bytes after this round's patching
}

// Result is the outcome of the iterative hardening.
type Result struct {
	Binary     *elf.Binary  // final hardened binary
	Program    *bir.Program // its symbolized form
	Iterations []IterationStats
	Final      *fault.Report // campaign on the final binary

	OriginalCodeSize int
}

// Converged reports whether the loop ended with zero successful faults.
func (r *Result) Converged() bool {
	return r.Final != nil && len(r.Final.Successful()) == 0
}

// Overhead returns the code-size overhead fraction (e.g. 0.17 = 17%),
// the paper's Table V metric.
func (r *Result) Overhead() float64 {
	if r.OriginalCodeSize == 0 {
		return 0
	}
	return float64(r.Binary.CodeSize()-r.OriginalCodeSize) / float64(r.OriginalCodeSize)
}

// Harden runs the simulation-driven iterative hardening of §IV-B: run
// the faulter, patch every vulnerable site with the matching Table I–III
// pattern, reassemble, and repeat until no successful faults remain, no
// further sites are patchable, or the iteration budget is exhausted.
func Harden(bin *elf.Binary, opt Options) (*Result, error) {
	if opt.MaxIterations <= 0 {
		opt.MaxIterations = 10
	}
	logf := func(format string, args ...any) {
		if opt.Log != nil {
			opt.Log(fmt.Sprintf(format, args...))
		}
	}

	prog, err := bir.Disassemble(bin)
	if err != nil {
		return nil, err
	}
	res := &Result{Program: prog, OriginalCodeSize: bin.CodeSize()}

	cur, err := prog.Reassemble() // refresh layout addresses
	if err != nil {
		return nil, err
	}

	var rep *fault.Report
	for iter := 1; iter <= opt.MaxIterations; iter++ {
		rep, err = fault.Run(fault.Campaign{
			Binary:     cur,
			Good:       opt.Good,
			Bad:        opt.Bad,
			Models:     opt.Models,
			StepLimit:  opt.StepLimit,
			Workers:    opt.Workers,
			DedupSites: opt.DedupSites,
		})
		if err != nil {
			return nil, fmt.Errorf("patch: iteration %d: %w", iter, err)
		}

		sites := rep.VulnerableSites()
		stats := IterationStats{
			Iteration:  iter,
			Injections: len(rep.Injections),
			Successes:  len(rep.Successful()),
			Sites:      len(sites),
			Detected:   rep.Count(fault.OutcomeDetected),
			CodeSize:   cur.CodeSize(),
		}
		if len(sites) == 0 {
			res.Iterations = append(res.Iterations, stats)
			logf("iteration %d: no successful faults — converged", iter)
			break
		}

		EnsureFaulthandler(prog)
		for _, site := range sites {
			ref, ok := prog.FindByAddr(site.Addr)
			if !ok {
				return nil, fmt.Errorf("patch: vulnerable site %#x not found in program", site.Addr)
			}
			inst := &ref.Block.Insts[ref.Index]
			if inst.Protected {
				stats.Residual++
				continue
			}
			if err := Apply(prog, ref, opt.Style); err != nil {
				if errors.Is(err, ErrUnpatchable) {
					inst.Protected = true // do not retry
					stats.Residual++
					continue
				}
				return nil, err
			}
			stats.Patched++
		}

		cur, err = prog.Reassemble()
		if err != nil {
			return nil, err
		}
		stats.CodeSize = cur.CodeSize()
		res.Iterations = append(res.Iterations, stats)
		logf("iteration %d: %d injections, %d successes at %d sites, %d patched, %d residual, text %dB",
			iter, stats.Injections, stats.Successes, stats.Sites, stats.Patched, stats.Residual, stats.CodeSize)

		if stats.Patched == 0 {
			logf("iteration %d: fixed point (nothing left to patch)", iter)
			break
		}
	}

	// Final verification campaign.
	final, err := fault.Run(fault.Campaign{
		Binary:     cur,
		Good:       opt.Good,
		Bad:        opt.Bad,
		Models:     opt.Models,
		StepLimit:  opt.StepLimit,
		Workers:    opt.Workers,
		DedupSites: opt.DedupSites,
	})
	if err != nil {
		return nil, fmt.Errorf("patch: final verification: %w", err)
	}
	res.Final = final
	res.Binary = cur
	return res, nil
}

// Apply replaces the instruction at ref with its hardened pattern.
func Apply(prog *bir.Program, ref bir.InstRef, style Style) error {
	site := ref.Block.Insts[ref.Index]
	follow := prog.SplitAfter(ref)
	blocks, err := PatternFor(prog, site, follow, style)
	if err != nil {
		return err
	}
	prog.ReplaceWithBlocks(ref, blocks)
	return nil
}

// Summary renders the iteration history.
func (r *Result) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "original code size: %d bytes\n", r.OriginalCodeSize)
	for _, it := range r.Iterations {
		fmt.Fprintf(&sb, "iter %d: injections=%d successes=%d sites=%d patched=%d residual=%d detected=%d text=%dB\n",
			it.Iteration, it.Injections, it.Successes, it.Sites, it.Patched, it.Residual, it.Detected, it.CodeSize)
	}
	if r.Final != nil {
		fmt.Fprintf(&sb, "final: %s\n", r.Final.Summary())
	}
	fmt.Fprintf(&sb, "hardened code size: %d bytes (%.2f%% overhead)\n",
		r.Binary.CodeSize(), r.Overhead()*100)
	return sb.String()
}
