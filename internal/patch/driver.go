package patch

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/r2r/reinforce/internal/bir"
	"github.com/r2r/reinforce/internal/campaign"
	"github.com/r2r/reinforce/internal/elf"
	"github.com/r2r/reinforce/internal/fault"
)

// Options configure the Faulter+Patcher loop.
type Options struct {
	Good []byte // input the program accepts
	Bad  []byte // input the program rejects

	Models     []fault.Model // default: skip + bitflip
	StepLimit  uint64
	Workers    int
	DedupSites bool

	// MaxIterations bounds the rinse-and-repeat loop (§IV-B3), and the
	// order-2 escalation loop separately.
	MaxIterations int // default 10

	// Style selects the pattern flavour (StyleFallthrough default).
	Style Style

	// Order selects the fault order the driver drives to a fixed
	// point: 1 (default) single faults only; 2 additionally runs pair
	// campaigns (fault.EnumeratePairs over the order-1 survivors) after
	// the single-fault fixed point, escalating every site involved in a
	// successful pair to the order-2-aware StyleOrder2 pattern, until
	// no pair succeeds, nothing is left to escalate, or MaxIterations
	// rounds have run.
	Order int

	// MaxPairs caps each pair campaign's enumeration
	// (0 = fault.DefaultMaxPairs).
	MaxPairs int

	// Store, when non-nil, persists campaign results content-addressed
	// by binary digest + campaign options, so a repeated `r2r patch`
	// invocation (or any other campaign over the same binaries) replays
	// from the cache. Independent of the store, the driver always
	// reuses outcomes *across its own iterations* through the
	// footprint memo: after each patch round, only faults whose
	// recorded execution window overlaps the changed bytes are
	// re-simulated.
	Store *campaign.Store

	// Log receives one line per iteration when non-nil.
	Log func(string)
}

// IterationStats records one faulter+patcher round.
type IterationStats struct {
	Iteration  int
	Injections int
	Successes  int // successful faults (vulnerability instances)
	Sites      int // distinct vulnerable instruction addresses
	Patched    int // sites replaced with hardened patterns this round
	Residual   int // vulnerable sites that could not be (re)patched
	Detected   int
	CodeSize   int // .text bytes after this round's patching

	Reused      int  // injections answered from the previous round's memo
	Resimulated int  // injections actually simulated this round
	CacheHit    bool // the whole campaign was answered from the store
}

// PairIterationStats records one order-2 escalation round.
type PairIterationStats struct {
	Iteration int
	Solo      int // order-1 faults in the pruning sweep
	Pairs     int // pairs simulated
	Successes int // successful pairs (order-2 vulnerabilities)
	Escalated int // sites re-patched with order-2 patterns this round
	Residual  int // pair sites that could not be escalated
	CodeSize  int // .text bytes after this round's escalation

	Reused      int // solo injections answered from the previous memo
	Resimulated int // solo injections actually simulated
	CacheHits   int // store hits across the round's solo + pair stages
}

// Result is the outcome of the iterative hardening.
type Result struct {
	Binary     *elf.Binary  // final hardened binary
	Program    *bir.Program // its symbolized form
	Iterations []IterationStats
	Final      *fault.Report // campaign on the final binary

	// PairIterations and FinalPairs record the order-2 escalation
	// stage (Options.Order >= 2); FinalPairs is the pair campaign on
	// the final binary.
	PairIterations []PairIterationStats
	FinalPairs     []fault.PairInjection

	// Cache is the cumulative store/memo accounting over every
	// campaign the driver ran (iterations, escalation rounds, final
	// verification).
	Cache campaign.CacheStats

	OriginalCodeSize int
}

// Converged reports whether the loop ended with zero successful faults.
func (r *Result) Converged() bool {
	return r.Final != nil && len(r.Final.Successful()) == 0
}

// PairConverged reports whether the order-2 stage ended with zero
// successful fault pairs (vacuously false when it never ran).
func (r *Result) PairConverged() bool {
	if len(r.PairIterations) == 0 {
		return false
	}
	for _, p := range r.FinalPairs {
		if p.Outcome == fault.OutcomeSuccess {
			return false
		}
	}
	return true
}

// Overhead returns the code-size overhead fraction (e.g. 0.17 = 17%),
// the paper's Table V metric.
func (r *Result) Overhead() float64 {
	if r.OriginalCodeSize == 0 {
		return 0
	}
	return float64(r.Binary.CodeSize()-r.OriginalCodeSize) / float64(r.OriginalCodeSize)
}

// faulter runs the driver's campaigns through the incremental
// plan → execute → store engine, threading one footprint memo across
// iterations: every campaign reuses the previous round's outcomes for
// faults whose recorded execution window avoids the bytes that round
// changed, and (with a store) whole campaigns are answered
// content-addressed — which makes the driver's final verification
// sweep, and any warm re-invocation over the same binary, nearly free.
type faulter struct {
	opt   Options
	memo  *campaign.Memo
	cache campaign.CacheStats
}

// campaignFor shapes the driver's standing campaign for a binary.
func (fl *faulter) campaignFor(bin *elf.Binary) fault.Campaign {
	return fault.Campaign{
		Binary:     bin,
		Good:       fl.opt.Good,
		Bad:        fl.opt.Bad,
		Models:     fl.opt.Models,
		StepLimit:  fl.opt.StepLimit,
		Workers:    fl.opt.Workers,
		DedupSites: fl.opt.DedupSites,
	}
}

// run executes the order-1 campaign for a binary incrementally.
func (fl *faulter) run(bin *elf.Binary) (*fault.Report, campaign.CacheStats, error) {
	res, err := campaign.RunIncremental(fl.campaignFor(bin),
		campaign.Options{Store: fl.opt.Store}, fl.memo)
	if err != nil {
		return nil, campaign.CacheStats{}, err
	}
	fl.memo = res.Memo
	fl.cache.Add(res.Cache)
	return res.Report, res.Cache, nil
}

// runOrder2 executes the order-2 campaign for a binary incrementally
// (memo-assisted solo sweep, store-cached pair stage).
func (fl *faulter) runOrder2(bin *elf.Binary) (*campaign.Order2Report, campaign.CacheStats, error) {
	res, err := campaign.RunOrder2Incremental(fl.campaignFor(bin),
		campaign.Options{Store: fl.opt.Store, MaxPairs: fl.opt.MaxPairs}, fl.memo)
	if err != nil {
		return nil, campaign.CacheStats{}, err
	}
	fl.memo = res.Memo
	fl.cache.Add(res.Cache)
	return res.Report, res.Cache, nil
}

// Harden runs the simulation-driven iterative hardening of §IV-B: run
// the faulter, patch every vulnerable site with the matching Table I–III
// pattern, reassemble, and repeat until no successful faults remain, no
// further sites are patchable, or the iteration budget is exhausted.
func Harden(bin *elf.Binary, opt Options) (*Result, error) {
	if opt.MaxIterations <= 0 {
		opt.MaxIterations = 10
	}
	logf := func(format string, args ...any) {
		if opt.Log != nil {
			opt.Log(fmt.Sprintf(format, args...))
		}
	}

	prog, err := bir.Disassemble(bin)
	if err != nil {
		return nil, err
	}
	res := &Result{Program: prog, OriginalCodeSize: bin.CodeSize()}

	cur, err := prog.Reassemble() // refresh layout addresses
	if err != nil {
		return nil, err
	}

	fl := &faulter{opt: opt}
	var rep *fault.Report
	for iter := 1; iter <= opt.MaxIterations; iter++ {
		var cs campaign.CacheStats
		rep, cs, err = fl.run(cur)
		if err != nil {
			return nil, fmt.Errorf("patch: iteration %d: %w", iter, err)
		}

		sites := rep.VulnerableSites()
		stats := IterationStats{
			Iteration:   iter,
			Injections:  len(rep.Injections),
			Successes:   len(rep.Successful()),
			Sites:       len(sites),
			Detected:    rep.Count(fault.OutcomeDetected),
			CodeSize:    cur.CodeSize(),
			Reused:      cs.Reused,
			Resimulated: cs.Resimulated,
			CacheHit:    cs.Hits > 0,
		}
		if len(sites) == 0 {
			res.Iterations = append(res.Iterations, stats)
			logf("iteration %d: no successful faults — converged", iter)
			break
		}

		EnsureFaulthandler(prog)
		for _, site := range sites {
			ref, ok := prog.FindByAddr(site.Addr)
			if !ok {
				return nil, fmt.Errorf("patch: vulnerable site %#x not found in program", site.Addr)
			}
			inst := &ref.Block.Insts[ref.Index]
			if inst.Protected {
				stats.Residual++
				continue
			}
			if err := Apply(prog, ref, opt.Style); err != nil {
				if errors.Is(err, ErrUnpatchable) {
					inst.Protected = true // do not retry
					stats.Residual++
					continue
				}
				return nil, err
			}
			stats.Patched++
		}

		cur, err = prog.Reassemble()
		if err != nil {
			return nil, err
		}
		stats.CodeSize = cur.CodeSize()
		res.Iterations = append(res.Iterations, stats)
		logf("iteration %d: %d injections (%d reused, %d simulated), %d successes at %d sites, %d patched, %d residual, text %dB",
			iter, stats.Injections, stats.Reused, stats.Resimulated, stats.Successes,
			stats.Sites, stats.Patched, stats.Residual, stats.CodeSize)

		if stats.Patched == 0 {
			logf("iteration %d: fixed point (nothing left to patch)", iter)
			break
		}
	}

	// Order-2 escalation stage: only after the single-fault fixed
	// point, so pair campaigns prune from a binary that is already
	// clean under solo faults.
	if opt.Order >= 2 {
		if cur, err = hardenPairs(prog, cur, opt, res, fl, logf); err != nil {
			return nil, err
		}
	}

	// Final verification campaign. The binary is unchanged since the
	// last converged iteration, so the memo (and any store) answers it
	// without re-simulating.
	final, _, err := fl.run(cur)
	if err != nil {
		return nil, fmt.Errorf("patch: final verification: %w", err)
	}
	res.Final = final
	res.Binary = cur
	res.Cache = fl.cache
	return res, nil
}

// hardenPairs is the order-2 escalation loop: simulate fault pairs
// (pruned from a fresh order-1 sweep, as in fault.EnumeratePairs),
// escalate every site involved in a successful pair to the
// order-2-aware StyleOrder2 pattern, reassemble, and repeat until no
// pair succeeds, nothing is left to escalate, or the iteration budget
// is exhausted. Returns the (possibly re-patched) current binary.
func hardenPairs(prog *bir.Program, cur *elf.Binary, opt Options, res *Result, fl *faulter, logf func(string, ...any)) (*elf.Binary, error) {
	for iter := 1; iter <= opt.MaxIterations; iter++ {
		o2, cs, err := fl.runOrder2(cur)
		if err != nil {
			return nil, fmt.Errorf("patch: pair iteration %d: %w", iter, err)
		}
		solo, injs := o2.Solo.Injections, o2.Pairs
		res.FinalPairs = injs
		stats := PairIterationStats{
			Iteration: iter, Solo: len(solo), Pairs: len(injs), CodeSize: cur.CodeSize(),
			Reused: cs.Reused, Resimulated: cs.Resimulated, CacheHits: cs.Hits,
		}

		// Distinct sites of successful pairs, in address order: both
		// components are escalated — protecting either alone leaves the
		// pair exploitable through a different partner.
		siteSet := map[uint64]bool{}
		for _, pi := range injs {
			if pi.Outcome != fault.OutcomeSuccess {
				continue
			}
			stats.Successes++
			siteSet[pi.Pair.First.Addr] = true
			siteSet[pi.Pair.Second.Addr] = true
		}
		if stats.Successes == 0 {
			res.PairIterations = append(res.PairIterations, stats)
			logf("pair iteration %d: %d pairs, no successes — converged", iter, stats.Pairs)
			return cur, nil
		}
		// The order-1 loop only inserts the fault handler when it
		// patched something; a binary clean under solo faults but
		// vulnerable to a pair reaches here without one.
		EnsureFaulthandler(prog)
		sites := make([]uint64, 0, len(siteSet))
		for a := range siteSet {
			sites = append(sites, a)
		}
		sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
		for _, addr := range sites {
			ref, ok := prog.FindByAddr(addr)
			if !ok {
				return nil, fmt.Errorf("patch: pair site %#x not found in program", addr)
			}
			inst := &ref.Block.Insts[ref.Index]
			if inst.Order2 {
				stats.Residual++
				continue
			}
			if err := Apply(prog, ref, StyleOrder2); err != nil {
				if errors.Is(err, ErrUnpatchable) {
					inst.Order2 = true // do not retry
					stats.Residual++
					continue
				}
				return nil, err
			}
			stats.Escalated++
		}
		if cur, err = prog.Reassemble(); err != nil {
			return nil, err
		}
		stats.CodeSize = cur.CodeSize()
		res.PairIterations = append(res.PairIterations, stats)
		logf("pair iteration %d: %d solo (%d reused, %d simulated), %d pairs, %d successes, %d escalated, %d residual, text %dB",
			iter, stats.Solo, stats.Reused, stats.Resimulated, stats.Pairs,
			stats.Successes, stats.Escalated, stats.Residual, stats.CodeSize)
		if stats.Escalated == 0 {
			logf("pair iteration %d: fixed point (nothing left to escalate)", iter)
			return cur, nil
		}
	}
	// Budget exhausted right after an escalation round: refresh the
	// final pair report so it describes the binary actually returned.
	o2, _, err := fl.runOrder2(cur)
	if err != nil {
		return nil, fmt.Errorf("patch: final pair verification: %w", err)
	}
	res.FinalPairs = o2.Pairs
	return cur, nil
}

// Apply replaces the instruction at ref with its hardened pattern.
func Apply(prog *bir.Program, ref bir.InstRef, style Style) error {
	site := ref.Block.Insts[ref.Index]
	follow := prog.SplitAfter(ref)
	blocks, err := PatternFor(prog, site, follow, style)
	if err != nil {
		return err
	}
	prog.ReplaceWithBlocks(ref, blocks)
	return nil
}

// Summary renders the iteration history.
func (r *Result) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "original code size: %d bytes\n", r.OriginalCodeSize)
	for _, it := range r.Iterations {
		fmt.Fprintf(&sb, "iter %d: injections=%d successes=%d sites=%d patched=%d residual=%d detected=%d text=%dB\n",
			it.Iteration, it.Injections, it.Successes, it.Sites, it.Patched, it.Residual, it.Detected, it.CodeSize)
	}
	for _, it := range r.PairIterations {
		fmt.Fprintf(&sb, "pair iter %d: solo=%d pairs=%d successes=%d escalated=%d residual=%d text=%dB\n",
			it.Iteration, it.Solo, it.Pairs, it.Successes, it.Escalated, it.Residual, it.CodeSize)
	}
	if r.Final != nil {
		fmt.Fprintf(&sb, "final: %s\n", r.Final.Summary())
	}
	if len(r.PairIterations) > 0 {
		succ := 0
		for _, p := range r.FinalPairs {
			if p.Outcome == fault.OutcomeSuccess {
				succ++
			}
		}
		fmt.Fprintf(&sb, "final pairs: %d/%d successful\n", succ, len(r.FinalPairs))
	}
	fmt.Fprintf(&sb, "hardened code size: %d bytes (%.2f%% overhead)\n",
		r.Binary.CodeSize(), r.Overhead()*100)
	return sb.String()
}
