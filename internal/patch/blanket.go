package patch

import (
	"errors"

	"github.com/r2r/reinforce/internal/bir"
	"github.com/r2r/reinforce/internal/elf"
)

// BlanketResult reports a whole-program duplication run.
type BlanketResult struct {
	Binary *elf.Binary
	// Program is the patched symbolized form the binary was
	// reassembled from, kept so the static verifier can prove pattern
	// invariants on the exact program that produced the artifact.
	Program          *bir.Program
	Patched          int // instructions protected
	Skipped          int // instructions with no applicable pattern
	OriginalCodeSize int
}

// Overhead returns the code-size overhead fraction.
func (r *BlanketResult) Overhead() float64 {
	if r.OriginalCodeSize == 0 {
		return 0
	}
	return float64(r.Binary.CodeSize()-r.OriginalCodeSize) / float64(r.OriginalCodeSize)
}

// HardenAll is the blanket-duplication baseline the paper compares
// against in §V-C ("duplicating every instruction, which is the go-to
// protection scheme against fault injection, implies at least 300%
// overhead in code size"): every instruction with an applicable local
// pattern is protected, regardless of whether the faulter found it
// vulnerable.
func HardenAll(bin *elf.Binary, style Style) (*BlanketResult, error) {
	prog, err := bir.Disassemble(bin)
	if err != nil {
		return nil, err
	}
	res := &BlanketResult{OriginalCodeSize: bin.CodeSize()}
	EnsureFaulthandler(prog)

	// Patch one site at a time, rescanning after each structural edit
	// (patterns split blocks, invalidating earlier references).
	for {
		ref, ok := nextUnprotected(prog)
		if !ok {
			break
		}
		inst := &ref.Block.Insts[ref.Index]
		if err := Apply(prog, ref, style); err != nil {
			if errors.Is(err, ErrUnpatchable) {
				inst.Protected = true
				res.Skipped++
				continue
			}
			return nil, err
		}
		res.Patched++
	}

	out, err := prog.Reassemble()
	if err != nil {
		return nil, err
	}
	res.Binary = out
	res.Program = prog
	return res, nil
}

// nextUnprotected finds the first instruction not yet marked protected.
func nextUnprotected(prog *bir.Program) (bir.InstRef, bool) {
	for _, b := range prog.Blocks {
		for i := range b.Insts {
			if !b.Insts[i].Protected {
				return bir.InstRef{Block: b, Index: i}, true
			}
		}
	}
	return bir.InstRef{}, false
}
