package patch

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/r2r/reinforce/internal/asm"
	"github.com/r2r/reinforce/internal/bir"
	"github.com/r2r/reinforce/internal/elf"
	"github.com/r2r/reinforce/internal/emu"
	"github.com/r2r/reinforce/internal/fault"
	"github.com/r2r/reinforce/internal/isa"
)

const pincheckSrc = `
.text
_start:
	mov rax, 0
	mov rdi, 0
	lea rsi, [rip+buf]
	mov rdx, 8
	syscall
	mov rax, [rip+buf]
	mov rbx, [rip+pin]
	cmp rax, rbx
	jne deny
grant:
	mov rax, 1
	mov rdi, 1
	lea rsi, [rip+ok]
	mov rdx, 8
	syscall
	mov rax, 60
	mov rdi, 0
	syscall
deny:
	mov rax, 1
	mov rdi, 1
	lea rsi, [rip+no]
	mov rdx, 7
	syscall
	mov rax, 60
	mov rdi, 1
	syscall
.rodata
pin: .ascii "1234ABCD"
ok:  .ascii "GRANTED\n"
no:  .ascii "DENIED\n"
.bss
buf: .zero 8
`

var (
	goodPin = []byte("1234ABCD")
	badPin  = []byte("00000000")
)

func build(t *testing.T, src string) *elf.Binary {
	t.Helper()
	bin, err := asm.Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

func runBin(t *testing.T, bin *elf.Binary, stdin []byte) (emu.Result, error) {
	t.Helper()
	return emu.New(bin, emu.Config{Stdin: stdin}).Run()
}

// findOp locates the first instruction with the given op (after a
// Reassemble refreshed addresses).
func findOp(t *testing.T, prog *bir.Program, op isa.Op) bir.InstRef {
	t.Helper()
	for _, b := range prog.Blocks {
		for i := range b.Insts {
			if b.Insts[i].I.Op == op && !b.Insts[i].Protected {
				return bir.InstRef{Block: b, Index: i}
			}
		}
	}
	t.Fatalf("no %v instruction found", op)
	return bir.InstRef{}
}

func disassembled(t *testing.T, src string) (*bir.Program, *elf.Binary) {
	t.Helper()
	bin := build(t, src)
	prog, err := bir.Disassemble(bin)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Reassemble(); err != nil {
		t.Fatal(err)
	}
	return prog, bin
}

// TestTableIMovPattern checks the structure of the mov protection.
func TestTableIMovPattern(t *testing.T) {
	prog, _ := disassembled(t, pincheckSrc)
	EnsureFaulthandler(prog)

	// Find "mov rax, [rip+buf]" — a mov with a memory source.
	var ref bir.InstRef
	found := false
	for _, b := range prog.Blocks {
		for i := range b.Insts {
			in := b.Insts[i]
			if in.I.Op == isa.MOV && in.I.Src.Kind == isa.KindMem && !found {
				ref = bir.InstRef{Block: b, Index: i}
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no mov reg, [mem] site")
	}
	if err := Apply(prog, ref, StylePaper); err != nil {
		t.Fatal(err)
	}
	l := prog.Listing()
	// Table I shape: mov; cmp (same operands); je; call faulthandler.
	for _, want := range []string{"cmp rax,", "je ", "call faulthandler"} {
		if !strings.Contains(l, want) {
			t.Errorf("listing missing %q:\n%s", want, l)
		}
	}
	bin2, err := prog.Reassemble()
	if err != nil {
		t.Fatal(err)
	}
	// Behaviour preserved on both inputs.
	for _, in := range [][]byte{goodPin, badPin} {
		r, err := runBin(t, bin2, in)
		if err != nil {
			t.Fatalf("patched run crashed: %v", err)
		}
		if r.ExitCode == DetectedExit {
			t.Fatal("faulthandler fired without a fault")
		}
	}
}

// DetectedExit mirrors fault.DetectedExitCode without the import cycle.
const DetectedExit = 42

// TestTableIICmpPattern checks the structure of the cmp protection.
func TestTableIICmpPattern(t *testing.T) {
	prog, _ := disassembled(t, pincheckSrc)
	EnsureFaulthandler(prog)
	ref := findOp(t, prog, isa.CMP)
	if err := Apply(prog, ref, StylePaper); err != nil {
		t.Fatal(err)
	}
	l := prog.Listing()
	for _, want := range []string{
		"lea rsp, qword ptr [rsp-128]",
		"pushfq",
		"popfq",
		"lea rsp, qword ptr [rsp+128]",
		"call faulthandler",
	} {
		if !strings.Contains(l, want) {
			t.Errorf("listing missing %q:\n%s", want, l)
		}
	}
	// Exactly two copies of the original comparison must exist.
	if got := strings.Count(l, "cmp rax, rbx"); got != 2 {
		t.Errorf("comparison duplicated %d times, want 2\n%s", got, l)
	}
	bin2, err := prog.Reassemble()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		in   []byte
		out  string
		code int
	}{
		{goodPin, "GRANTED\n", 0},
		{badPin, "DENIED\n", 1},
	} {
		r, err := runBin(t, bin2, tc.in)
		if err != nil {
			t.Fatalf("patched run crashed: %v", err)
		}
		if string(r.Stdout) != tc.out || r.ExitCode != tc.code {
			t.Errorf("input %q: got (%q,%d), want (%q,%d)", tc.in, r.Stdout, r.ExitCode, tc.out, tc.code)
		}
	}
}

// TestTableIIIJccPattern checks the structure of the conditional-jump
// protection and that both branch directions still work.
func TestTableIIIJccPattern(t *testing.T) {
	prog, _ := disassembled(t, pincheckSrc)
	EnsureFaulthandler(prog)
	ref := findOp(t, prog, isa.JCC)
	if err := Apply(prog, ref, StylePaper); err != nil {
		t.Fatal(err)
	}
	l := prog.Listing()
	for _, want := range []string{
		"newjumptarget", "newfallthroughjmp",
		"setne cl", "cmp cl, 0", "cmp cl, 1",
		"jne deny", // re-executed original branch on the taken side
		"je grant", // inverted re-check on the fall-through side
	} {
		if !strings.Contains(l, want) {
			t.Errorf("listing missing %q:\n%s", want, l)
		}
	}
	bin2, err := prog.Reassemble()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		in   []byte
		out  string
		code int
	}{
		{goodPin, "GRANTED\n", 0},
		{badPin, "DENIED\n", 1},
	} {
		r, err := runBin(t, bin2, tc.in)
		if err != nil {
			t.Fatalf("patched run crashed: %v", err)
		}
		if string(r.Stdout) != tc.out || r.ExitCode != tc.code {
			t.Errorf("input %q: got (%q,%d), want (%q,%d)", tc.in, r.Stdout, r.ExitCode, tc.out, tc.code)
		}
	}
}

// TestCmpPatternPreservesAllConditions: after a patched cmp, every
// conditional consumer must see identical flags. The program materializes
// eight conditions via setcc and prints the bitmask; patched and
// unpatched binaries must agree on random inputs.
func TestCmpPatternPreservesAllConditions(t *testing.T) {
	src := `
.text
_start:
	mov rax, 0
	mov rdi, 0
	lea rsi, [rip+buf]
	mov rdx, 2
	syscall
	movzx rax, byte ptr [rip+buf]
	movzx rbx, byte ptr [rip+buf+1]
	cmp rax, rbx
	setb r8b
	setbe r9b
	sete r10b
	setle r11b
	movzx rdi, r8b
	shl rdi, 1
	movzx rdx, r9b
	or rdi, rdx
	shl rdi, 1
	movzx rdx, r10b
	or rdi, rdx
	shl rdi, 1
	movzx rdx, r11b
	or rdi, rdx
	mov rax, 60
	syscall
.bss
buf: .zero 2
`
	orig := build(t, src)
	prog, err := bir.Disassemble(orig)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Reassemble(); err != nil {
		t.Fatal(err)
	}
	EnsureFaulthandler(prog)
	// Patch the 64-bit cmp rax, rbx.
	var ref bir.InstRef
	found := false
	for _, b := range prog.Blocks {
		for i := range b.Insts {
			if b.Insts[i].I.Op == isa.CMP && b.Insts[i].I.Src.IsReg(isa.RBX) {
				ref = bir.InstRef{Block: b, Index: i}
				found = true
			}
		}
	}
	if !found {
		t.Fatal("cmp rax, rbx not found")
	}
	if err := Apply(prog, ref, StylePaper); err != nil {
		t.Fatal(err)
	}
	patched, err := prog.Reassemble()
	if err != nil {
		t.Fatal(err)
	}

	r := rand.New(rand.NewSource(99))
	for i := 0; i < 300; i++ {
		input := []byte{byte(r.Intn(256)), byte(r.Intn(256))}
		r1, e1 := runBin(t, orig, input)
		r2, e2 := runBin(t, patched, input)
		if e1 != nil || e2 != nil {
			t.Fatalf("input % X: errors %v / %v", input, e1, e2)
		}
		if r1.ExitCode != r2.ExitCode {
			t.Fatalf("input % X: flags diverged: %d vs %d", input, r1.ExitCode, r2.ExitCode)
		}
	}
}

func TestUnpatchableImm64(t *testing.T) {
	prog, _ := disassembled(t, pincheckSrc)
	site := bir.Inst{I: isa.NewInst(isa.MOV, isa.R(isa.RAX), isa.Imm(1<<40))}
	if _, err := MovPattern(prog, site, "x", StylePaper); !errors.Is(err, ErrUnpatchable) {
		t.Errorf("imm64 mov: err = %v, want ErrUnpatchable", err)
	}
}

func TestUnpatchableAliasing(t *testing.T) {
	prog, _ := disassembled(t, pincheckSrc)
	site := bir.Inst{I: isa.NewInst(isa.MOV, isa.R(isa.RAX), isa.M(isa.RAX, 8))}
	if _, err := MovPattern(prog, site, "x", StylePaper); !errors.Is(err, ErrUnpatchable) {
		t.Errorf("aliasing mov: err = %v, want ErrUnpatchable", err)
	}
	lea := bir.Inst{I: isa.NewInst(isa.LEA, isa.R(isa.RSP), isa.M(isa.RSP, -128))}
	if _, err := MovPattern(prog, lea, "x", StylePaper); !errors.Is(err, ErrUnpatchable) {
		t.Errorf("aliasing lea: err = %v, want ErrUnpatchable", err)
	}
}

func TestUnsupportedOpUnpatchable(t *testing.T) {
	prog, _ := disassembled(t, pincheckSrc)
	site := bir.Inst{I: isa.NewInst(isa.SYSCALL)}
	if _, err := PatternFor(prog, site, "x", StylePaper); !errors.Is(err, ErrUnpatchable) {
		t.Errorf("syscall: err = %v, want ErrUnpatchable", err)
	}
}

func TestEnsureFaulthandlerIdempotent(t *testing.T) {
	prog, _ := disassembled(t, pincheckSrc)
	EnsureFaulthandler(prog)
	n := len(prog.Blocks)
	EnsureFaulthandler(prog)
	if len(prog.Blocks) != n {
		t.Error("EnsureFaulthandler appended twice")
	}
}

// TestHardenPincheckSkipModel is the paper's headline Faulter+Patcher
// result (§V-C): under the instruction-skip model, iterative patching
// resolves ALL vulnerabilities.
func TestHardenPincheckSkipModel(t *testing.T) {
	res, err := Harden(build(t, pincheckSrc), Options{
		Good:   goodPin,
		Bad:    badPin,
		Models: []fault.Model{fault.ModelSkip},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged() {
		t.Fatalf("skip-model hardening did not converge:\n%s", res.Summary())
	}
	if len(res.Iterations) < 2 {
		t.Errorf("expected at least 2 iterations, got %d", len(res.Iterations))
	}
	if res.Overhead() <= 0 {
		t.Error("no code-size overhead recorded")
	}
	// Hardened binary still behaves correctly.
	for _, tc := range []struct {
		in   []byte
		out  string
		code int
	}{
		{goodPin, "GRANTED\n", 0},
		{badPin, "DENIED\n", 1},
	} {
		r, err := runBin(t, res.Binary, tc.in)
		if err != nil {
			t.Fatalf("hardened binary crashed: %v", err)
		}
		if string(r.Stdout) != tc.out || r.ExitCode != tc.code {
			t.Errorf("input %q: got (%q,%d), want (%q,%d)", tc.in, r.Stdout, r.ExitCode, tc.out, tc.code)
		}
	}
	// The final campaign must see detections (countermeasures firing).
	if res.Final.Count(fault.OutcomeDetected) == 0 {
		t.Error("no detected faults in final campaign; countermeasures inert?")
	}
}

// TestHardenPincheckBitflipReduces reproduces the §V-C bit-flip claim:
// hardening reduces vulnerable points by at least half.
func TestHardenPincheckBitflipReduces(t *testing.T) {
	bin := build(t, pincheckSrc)
	baseline, err := fault.Run(fault.Campaign{
		Binary: bin, Good: goodPin, Bad: badPin,
		Models: []fault.Model{fault.ModelBitFlip},
	})
	if err != nil {
		t.Fatal(err)
	}
	before := len(baseline.VulnerableSites())
	if before == 0 {
		t.Fatal("baseline has no bitflip vulnerabilities")
	}

	res, err := Harden(bin, Options{
		Good:   goodPin,
		Bad:    badPin,
		Models: []fault.Model{fault.ModelBitFlip},
	})
	if err != nil {
		t.Fatal(err)
	}
	after := len(res.Final.VulnerableSites())
	t.Logf("bitflip vulnerable sites: %d -> %d (overhead %.1f%%)", before, after, res.Overhead()*100)
	if float64(after) > 0.5*float64(before) {
		t.Errorf("bitflip sites %d -> %d: reduction below 50%%", before, after)
	}
}

// TestHardenOverheadModest: targeted patching must stay far below the
// >=300%% blanket-duplication overhead the paper compares against.
func TestHardenOverheadModest(t *testing.T) {
	res, err := Harden(build(t, pincheckSrc), Options{
		Good:   goodPin,
		Bad:    badPin,
		Models: []fault.Model{fault.ModelSkip},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Overhead() >= 3.0 {
		t.Errorf("overhead %.1f%% not better than blanket duplication", res.Overhead()*100)
	}
}

func TestHardenLogging(t *testing.T) {
	var lines []string
	_, err := Harden(build(t, pincheckSrc), Options{
		Good:   goodPin,
		Bad:    badPin,
		Models: []fault.Model{fault.ModelSkip},
		Log:    func(s string) { lines = append(lines, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Error("no log lines emitted")
	}
}

func TestSummaryRendering(t *testing.T) {
	res, err := Harden(build(t, pincheckSrc), Options{
		Good:   goodPin,
		Bad:    badPin,
		Models: []fault.Model{fault.ModelSkip},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary()
	for _, want := range []string{"original code size", "iter 1", "hardened code size", "overhead"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

// TestFaulthandlerRoutineWorks executes the injected handler directly.
func TestFaulthandlerRoutineWorks(t *testing.T) {
	prog, _ := disassembled(t, pincheckSrc)
	EnsureFaulthandler(prog)
	// Redirect entry to the faulthandler.
	prog.EntryLabel = FaulthandlerLabel
	bin, err := prog.Reassemble()
	if err != nil {
		t.Fatal(err)
	}
	r, err := runBin(t, bin, nil)
	if err != nil {
		t.Fatalf("faulthandler crashed: %v", err)
	}
	if r.ExitCode != 42 {
		t.Errorf("exit = %d, want 42", r.ExitCode)
	}
	if string(r.Stderr) != "FAULT\n" {
		t.Errorf("stderr = %q, want FAULT\\n", r.Stderr)
	}
}

// TestPatternsComposable: patching all three classes in one program.
func TestAllPatternsTogether(t *testing.T) {
	prog, orig := disassembled(t, pincheckSrc)
	EnsureFaulthandler(prog)
	for _, op := range []isa.Op{isa.CMP, isa.JCC, isa.MOV} {
		ref := findOp(t, prog, op)
		if err := Apply(prog, ref, StylePaper); err != nil {
			t.Fatalf("%v: %v", op, err)
		}
	}
	bin, err := prog.Reassemble()
	if err != nil {
		t.Fatal(err)
	}
	for _, input := range [][]byte{goodPin, badPin} {
		r1, _ := runBin(t, orig, input)
		r2, err := runBin(t, bin, input)
		if err != nil {
			t.Fatalf("crashed: %v", err)
		}
		if string(r1.Stdout) != string(r2.Stdout) || r1.ExitCode != r2.ExitCode {
			t.Errorf("input %q: behaviour changed", input)
		}
	}
	if bin.CodeSize() <= orig.CodeSize() {
		t.Error("patched binary not larger")
	}
	fmt.Fprintf(new(strings.Builder), "%s", prog.Listing()) // smoke the listing path
}
