package patch

import (
	"errors"
	"strings"
	"testing"

	"github.com/r2r/reinforce/internal/bir"
	"github.com/r2r/reinforce/internal/isa"
)

// loopProgram sums stdin bytes with a dec/jne loop whose ALU
// instructions feed flags directly into the branch — the hard case for
// ALU duplication (the verification compare must not disturb the
// consumer's flags).
const loopProgram = `
.text
_start:
	mov rax, 0
	mov rdi, 0
	lea rsi, [rip+buf]
	mov rdx, 8
	syscall
	xor rax, rax
	mov rcx, 8
	lea rbx, [rip+buf]
acc:
	movzx rdx, byte ptr [rbx]
	add rax, rdx
	imul rax, rax
	shr rax, 3
	inc rbx
	dec rcx
	jne acc
	and rax, 0x7f
	mov rdi, rax
	mov rax, 60
	syscall
.bss
buf: .zero 8
`

func applyAluAt(t *testing.T, src string, op isa.Op, style Style) *bir.Program {
	t.Helper()
	prog, _ := disassembled(t, src)
	EnsureFaulthandler(prog)
	for _, b := range prog.Blocks {
		for i := range b.Insts {
			if b.Insts[i].I.Op == op && !b.Insts[i].Protected {
				ref := bir.InstRef{Block: b, Index: i}
				site := b.Insts[i]
				follow := prog.SplitAfter(ref)
				blocks, err := AluPattern(prog, site, follow, style)
				if err != nil {
					t.Fatalf("%v: %v", op, err)
				}
				prog.ReplaceWithBlocks(ref, blocks)
				return prog
			}
		}
	}
	t.Fatalf("no %v site", op)
	return nil
}

func TestAluPatternPreservesLoopFlags(t *testing.T) {
	orig := build(t, loopProgram)
	inputs := [][]byte{
		{1, 2, 3, 4, 5, 6, 7, 8},
		{0, 0, 0, 0, 0, 0, 0, 0},
		{255, 254, 253, 252, 251, 250, 249, 248},
	}
	// Protect each ALU op (incl. the dec feeding jne) independently and
	// check behaviour is untouched.
	for _, op := range []isa.Op{isa.ADD, isa.IMUL, isa.SHR, isa.DEC, isa.INC, isa.XOR, isa.AND} {
		for _, style := range []Style{StylePaper, StyleFallthrough} {
			prog := applyAluAt(t, loopProgram, op, style)
			patched, err := prog.Reassemble()
			if err != nil {
				t.Fatalf("%v: %v", op, err)
			}
			for _, in := range inputs {
				r1, e1 := runBin(t, orig, in)
				r2, e2 := runBin(t, patched, in)
				if e1 != nil || e2 != nil {
					t.Fatalf("%v style %d input %v: %v / %v", op, style, in, e1, e2)
				}
				if r1.ExitCode != r2.ExitCode {
					t.Errorf("%v style %d input %v: exit %d vs %d",
						op, style, in, r1.ExitCode, r2.ExitCode)
				}
				if r2.ExitCode == DetectedExit {
					t.Errorf("%v: faulthandler fired without a fault", op)
				}
			}
		}
	}
}

func TestAluPatternStructure(t *testing.T) {
	prog := applyAluAt(t, loopProgram, isa.IMUL, StyleFallthrough)
	l := prog.Listing()
	// Two scratch computations, one verify compare, authoritative op
	// last.
	if got := strings.Count(l, "imul"); got != 3 {
		t.Errorf("imul count = %d, want 3 (expected + recomputed + authoritative)\n%s", got, l)
	}
	if !strings.Contains(l, "cmp ") || !strings.Contains(l, "jne faulthandler") {
		t.Errorf("verification missing:\n%s", l)
	}
}

func TestAluPatternRejects(t *testing.T) {
	prog, _ := disassembled(t, loopProgram)
	// Carry-consuming ops.
	adc := bir.Inst{I: isa.NewInst(isa.ADC, isa.R(isa.RAX), isa.R(isa.RBX))}
	if _, err := AluPattern(prog, adc, "x", StyleFallthrough); !errors.Is(err, ErrUnpatchable) {
		t.Errorf("adc: err = %v, want ErrUnpatchable", err)
	}
	// Narrow destinations.
	addB := bir.Inst{I: isa.NewInst(isa.ADD, isa.Rb(isa.RCX), isa.Imm8(1))}
	if _, err := AluPattern(prog, addB, "x", StyleFallthrough); !errors.Is(err, ErrUnpatchable) {
		t.Errorf("byte add: err = %v, want ErrUnpatchable", err)
	}
	// Non-ALU op.
	mov := bir.Inst{I: isa.NewInst(isa.MOV, isa.R(isa.RAX), isa.R(isa.RBX))}
	if _, err := AluPattern(prog, mov, "x", StyleFallthrough); !errors.Is(err, ErrUnpatchable) {
		t.Errorf("mov: err = %v, want ErrUnpatchable", err)
	}
}

func TestHardenAllOnLoopProgram(t *testing.T) {
	orig := build(t, loopProgram)
	res, err := HardenAll(orig, StyleFallthrough)
	if err != nil {
		t.Fatal(err)
	}
	if res.Patched == 0 {
		t.Fatal("nothing patched")
	}
	t.Logf("blanket: %d patched, %d skipped, overhead %.1f%%",
		res.Patched, res.Skipped, res.Overhead()*100)
	for _, in := range [][]byte{{1, 2, 3, 4, 5, 6, 7, 8}, {9, 9, 9, 9, 9, 9, 9, 9}} {
		r1, _ := runBin(t, orig, in)
		r2, err := runBin(t, res.Binary, in)
		if err != nil {
			t.Fatalf("input %v: %v", in, err)
		}
		if r1.ExitCode != r2.ExitCode {
			t.Errorf("input %v: exit %d vs %d", in, r1.ExitCode, r2.ExitCode)
		}
	}
	// The blanket scheme on an ALU-heavy program should land in the
	// paper's >=300% regime.
	if res.Overhead() < 2.0 {
		t.Errorf("blanket overhead %.1f%% below the expected regime", res.Overhead()*100)
	}
}
